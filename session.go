package ncast

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ncast/internal/obs"
	"ncast/internal/protocol"
	"ncast/internal/transport"
)

// Session is an in-process broadcast: a server and its clients communicate
// over an in-memory message fabric with configurable loss and latency.
// Sessions are the unit of the examples and of churn simulations; the same
// protocol runs over TCP via ListenAndServe / Dial.
type Session struct {
	cfg Config
	net *transport.Network
	// dataNet is the second fabric of a datagram-mode session (see
	// Config.DatagramData): data frames ride it with the session's loss,
	// control stays on the loss-free net. Nil in single-fabric sessions.
	dataNet      *transport.Network
	tracker      *protocol.Tracker
	source       *protocol.Source
	obs          *obs.Registry
	genSink      GenSink
	cancel       context.CancelFunc
	sourceCancel context.CancelFunc
	wg           sync.WaitGroup

	mu      sync.Mutex
	nextID  int
	clients map[string]*Client
	closed  bool
}

// GenEvent is one generation-lifecycle transition at one node: first
// packet seen, a rank quartile crossed, or decode completion (with
// end-to-end delay and coding overhead). Re-exported from the obs layer
// for timeline observers.
type GenEvent = obs.GenEvent

// GenSink consumes lifecycle transitions; it must be safe for concurrent
// calls (distinct generations decode on independent workers).
type GenSink = obs.GenSink

// SessionOption configures the in-memory fabric.
type SessionOption func(*sessionSettings)

type sessionSettings struct {
	loss    float64
	latency time.Duration
	netSeed int64
	genSink GenSink
}

// WithGenEvents subscribes sink to every client's generation-lifecycle
// transitions — the feed behind ncast-sim's -timeline flag.
func WithGenEvents(sink GenSink) SessionOption {
	return func(s *sessionSettings) { s.genSink = sink }
}

// WithLoss drops each in-memory frame with probability p (§2's ergodic
// failures).
func WithLoss(p float64) SessionOption {
	return func(s *sessionSettings) { s.loss = p }
}

// WithLatency adds per-frame delivery delay.
func WithLatency(d time.Duration) SessionOption {
	return func(s *sessionSettings) { s.latency = d }
}

// WithNetworkSeed seeds the fabric's loss coin.
func WithNetworkSeed(seed int64) SessionOption {
	return func(s *sessionSettings) { s.netSeed = seed }
}

// NewSession creates and starts an in-process broadcast of content.
// The returned session runs until Close.
func NewSession(content []byte, cfg Config, opts ...SessionOption) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var settings sessionSettings
	for _, o := range opts {
		o(&settings)
	}
	netOpts := []transport.NetworkOption{transport.WithSeed(settings.netSeed)}
	if settings.latency > 0 {
		netOpts = append(netOpts, transport.WithLatency(settings.latency))
	}
	// In datagram mode the loss knob models the data plane only: control
	// rides a loss-free fabric, like TCP under a dual-plane socket
	// session. Single-fabric sessions keep the historical behavior of
	// loss on everything.
	var dataNet *transport.Network
	if cfg.DatagramData {
		dataOpts := append(append([]transport.NetworkOption(nil), netOpts...),
			transport.WithLoss(settings.loss))
		dataNet = transport.NewNetwork(dataOpts...)
	} else if settings.loss > 0 {
		netOpts = append(netOpts, transport.WithLoss(settings.loss))
	}
	net := transport.NewNetwork(netOpts...)
	closeNets := func() {
		net.Close()
		if dataNet != nil {
			dataNet.Close()
		}
	}

	var reg *obs.Registry
	if !cfg.DisableObs {
		reg = obs.NewRegistry(obs.WithTraceCapacity(cfg.TraceCap))
	}
	ep, err := sessionEndpoint(net, dataNet, "server", reg, nil)
	if err != nil {
		closeNets()
		return nil, err
	}
	source, err := cfg.newSource(ep, content)
	if err != nil {
		closeNets()
		return nil, err
	}
	source.RoundInterval = cfg.SourceInterval
	source.Obs = obs.NewSourceMetrics(reg)
	source.TraceRate = cfg.TraceRate
	source.Systematic = cfg.Systematic
	source.LinkSeq = cfg.DatagramData
	trackerCfg := cfg.trackerConfig(source.Session())
	trackerCfg.Obs = obs.NewTrackerMetrics(reg)
	trackerCfg.TraceObs = obs.NewTraceMetrics(reg)
	trackerCfg.LinkObs = obs.NewLinkMetrics(reg)
	obs.NewRuntimeMetrics(reg)
	tracker, err := protocol.NewTracker(ep, source, trackerCfg)
	if err != nil {
		closeNets()
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	sourceCtx, sourceCancel := context.WithCancel(ctx)
	s := &Session{
		cfg:          cfg,
		net:          net,
		dataNet:      dataNet,
		tracker:      tracker,
		source:       source,
		obs:          reg,
		genSink:      settings.genSink,
		cancel:       cancel,
		sourceCancel: sourceCancel,
		clients:      make(map[string]*Client),
	}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer s.wg.Done(); _ = source.Run(sourceCtx) }()
	return s, nil
}

// DisconnectSource stops the server's data pump while keeping the tracker
// (membership authority) alive — the §6 file-download scenario: "it may be
// possible eventually for the server to disconnect itself completely from
// the network after the content has been delivered to a small fraction of
// the population". Peers that hold rank keep re-mixing and forwarding, so
// the swarm becomes self-sustaining. Irreversible for the session.
func (s *Session) DisconnectSource() {
	s.sourceCancel()
}

// NumNodes returns the current overlay population.
func (s *Session) NumNodes() int { return s.tracker.NumNodes() }

// CompletedCount returns how many clients reported a full decode.
func (s *Session) CompletedCount() int { return s.tracker.CompletedCount() }

// Events exposes tracker events (join/leave/repair/complete).
func (s *Session) Events() <-chan protocol.TrackerEvent { return s.tracker.Events() }

// Observability returns the session's metrics registry (nil when disabled
// via DisableObs). Pass it to obs.Serve to expose /metrics and
// /debug/overlay over HTTP.
func (s *Session) Observability() *obs.Registry { return s.obs }

// Snapshot captures the session's current health: overlay matrix-M state
// (population, degree distribution, hanging threads), every metric series,
// and the most recent trace events.
func (s *Session) Snapshot() obs.OverlaySnapshot {
	snap := obs.OverlaySnapshot{At: time.Now()}
	h := s.tracker.Health()
	snap.Overlay = &h
	if s.obs != nil {
		snap.Metrics = s.obs.Snapshot()
		snap.Recent = s.obs.Trace().Events()
		snap.DroppedEvents = s.obs.Trace().Dropped()
	}
	return snap
}

// ClusterSnapshot returns the server-aggregated fleet telemetry view:
// every node's latest stats report with freshness, per-generation decode
// status with straggler detection, and fleet-wide decode-delay quantiles.
// Nodes report only when Config.StatsInterval is positive.
func (s *Session) ClusterSnapshot() obs.ClusterSnapshot {
	return s.tracker.ClusterSnapshot()
}

// TraceSnapshot returns the assembled dissemination-tracing view (hop
// trees per sampled generation, fleet hop-depth distribution). Empty
// unless Config.TraceRate is positive and traced reports have arrived.
// Pass it to obs.WithTraceSnapshot to serve it at /debug/trace.
func (s *Session) TraceSnapshot() obs.TraceSnapshot {
	return s.tracker.TraceSnapshot()
}

// LinkSnapshot returns the aggregated fleet link matrix: every reported
// (reporter, peer) edge with its loss estimate, RTT/jitter EWMAs,
// innovation rate and goodput, plus the worst-links digest. Edges appear
// only when Config.StatsInterval is positive; loss and RTT need
// Config.DatagramData (sequence stamping and probe keepalives ride the
// datagram encodings). Pass it to obs.WithLinkSnapshot to serve it at
// /debug/links.
func (s *Session) LinkSnapshot() obs.LinkSnapshot {
	return s.tracker.LinkSnapshot()
}

// ClientOption configures one client.
type ClientOption func(*clientSettings)

type clientSettings struct {
	degree    int
	seed      int64
	behavior  protocol.Behavior
	genSink   GenSink
	dataLoss  float64
	dataDelay time.Duration
}

// WithClientGenEvents subscribes sink to this client's generation-
// lifecycle transitions (Dial clients have no session-level
// WithGenEvents to inherit from).
func WithClientGenEvents(sink GenSink) ClientOption {
	return func(c *clientSettings) { c.genSink = sink }
}

// WithDegree requests a non-default degree (heterogeneous bandwidth, §5).
func WithDegree(d int) ClientOption {
	return func(c *clientSettings) { c.degree = d }
}

// WithClientSeed seeds the client's recoding randomness.
func WithClientSeed(seed int64) ClientOption {
	return func(c *clientSettings) { c.seed = seed }
}

// Byzantine behaviors for attack experiments (§5/§7): see the protocol
// package for semantics.
const (
	// BehaviorHonest re-mixes and forwards (the default).
	BehaviorHonest = protocol.Honest
	// BehaviorEntropyAttacker forwards information-free replays.
	BehaviorEntropyAttacker = protocol.EntropyAttacker
	// BehaviorFreeloader forwards nothing and sends no liveness.
	BehaviorFreeloader = protocol.Freeloader
)

// WithBehavior makes the client adversarial (attack experiments).
func WithBehavior(b protocol.Behavior) ClientOption {
	return func(c *clientSettings) { c.behavior = b }
}

// WithClientDataLoss drops each of this client's inbound data-plane frames
// with probability p — one-way loss localized to exactly this peer, the
// lossy-peer drill behind the link-telemetry estimators. Datagram-mode
// sessions only; single-fabric sessions ignore it (use WithLoss there).
func WithClientDataLoss(p float64) ClientOption {
	return func(c *clientSettings) { c.dataLoss = p }
}

// WithClientDataDelay adds d to each of this client's inbound data-plane
// frame deliveries, so its keepalive-probe RTT EWMAs reflect a slow link.
// The delay is applied serially on the receive path — keep the inbound
// frame rate well under 1/d or the injection itself becomes the
// bottleneck. Datagram-mode sessions only.
func WithClientDataDelay(d time.Duration) ClientOption {
	return func(c *clientSettings) { c.dataDelay = d }
}

// AddClient joins a new client to the session and waits for the tracker to
// accept it.
func (s *Session) AddClient(ctx context.Context, opts ...ClientOption) (*Client, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.nextID++
	addr := fmt.Sprintf("client-%d", s.nextID)
	settings := clientSettings{seed: int64(s.nextID)}
	s.mu.Unlock()
	for _, o := range opts {
		o(&settings)
	}

	var fault *transport.FaultConfig
	if settings.dataLoss > 0 || settings.dataDelay > 0 {
		fault = &transport.FaultConfig{
			RecvLoss:  settings.dataLoss,
			RecvDelay: settings.dataDelay,
			Seed:      settings.seed,
		}
	}
	ep, err := sessionEndpoint(s.net, s.dataNet, addr, s.obs, fault)
	if err != nil {
		return nil, err
	}
	sink := settings.genSink
	if sink == nil {
		sink = s.genSink
	}
	node := protocol.NewNode(ep, protocol.NodeConfig{
		TrackerAddr:      "server",
		Degree:           settings.degree,
		ComplaintTimeout: s.cfg.ComplaintTimeout,
		Behavior:         settings.behavior,
		Seed:             settings.seed,
		DecodeWorkers:    s.cfg.DecodeWorkers,
		LinkSeq:          s.cfg.DatagramData,
		Obs:              obs.NewNodeMetrics(s.obs, addr),
		GenSink:          sink,
	})
	runCtx, cancel := context.WithCancel(context.Background())
	c := &Client{node: node, addr: addr, session: s, cancel: cancel}
	s.wg.Add(1)
	go func() { defer s.wg.Done(); _ = node.Run(runCtx) }()

	select {
	case err := <-node.Joined():
		if err != nil {
			cancel()
			ep.Close()
			return nil, err
		}
	case <-ctx.Done():
		cancel()
		ep.Close()
		return nil, ctx.Err()
	}
	s.mu.Lock()
	s.clients[addr] = c
	s.mu.Unlock()
	return c, nil
}

// Close tears the session down: all clients, the fabric, the server.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	clients := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	for _, c := range clients {
		c.cancel()
	}
	s.cancel()
	s.net.Close()
	if s.dataNet != nil {
		s.dataNet.Close()
	}
	s.wg.Wait()
	return nil
}

// sessionEndpoint registers addr on the session fabric(s): a plain
// instrumented endpoint, or — in datagram mode — a Dual splitting data
// frames onto the lossy data fabric, each plane instrumented as its own
// transport kind. A non-nil fault plan wraps the data plane only, so
// per-client loss/delay injection never touches control traffic (exactly
// like real UDP loss under a TCP control channel).
func sessionEndpoint(ctrlNet, dataNet *transport.Network, addr string, reg *obs.Registry, fault *transport.FaultConfig) (transport.Endpoint, error) {
	ctrl, err := ctrlNet.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	if dataNet == nil {
		transport.Instrument(ctrl, obs.NewTransportMetrics(reg, addr))
		return ctrl, nil
	}
	data, err := dataNet.Endpoint(addr)
	if err != nil {
		ctrl.Close()
		return nil, err
	}
	var dataEP transport.Endpoint = data
	if fault != nil {
		dataEP = transport.NewFaulty(data, *fault)
	}
	transport.Instrument(ctrl, obs.NewTransportMetricsKind(reg, addr, "ctrl"))
	transport.Instrument(dataEP, obs.NewTransportMetricsKind(reg, addr, "data"))
	return transport.NewDual(ctrl, dataEP, protocol.DataPlaneFrame), nil
}

// Client is one overlay node of a session.
type Client struct {
	node    *protocol.Node
	addr    string
	session *Session
	cancel  context.CancelFunc
}

// ID returns the overlay node id assigned by the tracker.
func (c *Client) ID() uint64 { return c.node.ID() }

// Progress returns the decoded-rank fraction in [0,1].
func (c *Client) Progress() float64 { return c.node.Progress() }

// Stats returns (received, innovative) packet counts.
func (c *Client) Stats() (received, innovative int) { return c.node.Stats() }

// Completed closes when the full content has been decoded.
func (c *Client) Completed() <-chan struct{} { return c.node.Completed() }

// Wait blocks until completion or context cancellation.
func (c *Client) Wait(ctx context.Context) error {
	select {
	case <-c.node.Completed():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Content returns the decoded blob once complete.
func (c *Client) Content() ([]byte, error) { return c.node.Content() }

// Leave performs the §3 good-bye protocol and waits for the ack.
func (c *Client) Leave(ctx context.Context) error {
	if err := c.node.Leave(ctx); err != nil {
		return err
	}
	select {
	case <-c.node.Left():
	case <-ctx.Done():
		return ctx.Err()
	}
	c.session.detach(c)
	return nil
}

// Crash kills the client without a good-bye: its endpoint closes, its
// streams go silent, and its children must detect the failure and complain
// — the §3 repair path.
func (c *Client) Crash() {
	c.cancel()
	c.session.net.CloseEndpoint(c.addr)
	if c.session.dataNet != nil {
		c.session.dataNet.CloseEndpoint(c.addr)
	}
	c.session.detach(c)
}

func (s *Session) detach(c *Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.clients, c.addr)
}

// CompletedLayers returns, for layered sessions, the number of consecutive
// priority layers fully decoded (the playable resolution).
func (c *Client) CompletedLayers() int { return c.node.CompletedLayers() }

// Layer returns the decoded bytes of priority layer l once complete.
func (c *Client) Layer(l int) ([]byte, error) { return c.node.Layer(l) }

// Congest asks for §5 congestion relief: the client drops one thread and
// its parent is joined directly to its child. Asynchronous; observe the
// effect via Degree.
func (c *Client) Congest(ctx context.Context) error { return c.node.Congest(ctx) }

// Uncongest regrows one previously dropped thread (§5 recovery).
func (c *Client) Uncongest(ctx context.Context) error { return c.node.Uncongest(ctx) }

// Degree returns the client's current thread count.
func (c *Client) Degree() int { return c.node.Degree() }
