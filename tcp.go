package ncast

import (
	"context"
	"sync"
	"time"

	"ncast/internal/obs"
	"ncast/internal/protocol"
	"ncast/internal/transport"
)

// Server is a socket-facing broadcast server: the tracker (overlay
// authority) and the data source bound to one listening address. With
// Config.DatagramData the address serves two planes — control over TCP,
// coded data over UDP on the same port.
type Server struct {
	ep      transport.Endpoint
	tracker *protocol.Tracker
	source  *protocol.Source
	obs     *obs.Registry
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// listenEndpoint builds the session transport bound to addr: plain TCP,
// or — with cfg.DatagramData — a dual-plane endpoint whose control half
// is TCP and whose data half is UDP on the same port, each instrumented
// as its own transport kind so scrapes can tell the planes apart.
// metricsName labels the endpoint in obs; empty means the bound address.
func listenEndpoint(addr, metricsName string, cfg Config, reg *obs.Registry) (transport.Endpoint, error) {
	if !cfg.DatagramData {
		ep, err := transport.ListenTCP(addr)
		if err != nil {
			return nil, err
		}
		if metricsName == "" {
			metricsName = ep.Addr()
		}
		// Single-plane sessions keep the historical label set (endpoint
		// only); the transport kind label exists to tell two planes apart.
		transport.Instrument(ep, obs.NewTransportMetrics(reg, metricsName))
		return ep, nil
	}
	tcp, udp, err := transport.ListenSamePort(addr, transport.UDPConfig{MTU: cfg.mtu()})
	if err != nil {
		return nil, err
	}
	if metricsName == "" {
		metricsName = tcp.Addr()
	}
	// The chaos wrapper goes under the instrumentation so injected drops
	// land on the same per-kind bundle real UDP losses do.
	var data transport.Endpoint = udp
	if cfg.DataLoss > 0 {
		data = transport.NewFaulty(udp, transport.FaultConfig{SendLoss: cfg.DataLoss, Seed: cfg.Seed})
	}
	transport.Instrument(tcp, obs.NewTransportMetricsKind(reg, metricsName, "tcp"))
	transport.Instrument(data, obs.NewTransportMetricsKind(reg, metricsName, "udp"))
	return transport.NewDual(tcp, data, protocol.DataPlaneFrame), nil
}

// ListenAndServe starts a broadcast server for content on addr
// (e.g. "127.0.0.1:0"; use Addr to learn the bound address).
func ListenAndServe(addr string, content []byte, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var reg *obs.Registry
	if !cfg.DisableObs {
		reg = obs.NewRegistry(obs.WithTraceCapacity(cfg.TraceCap))
	}
	ep, err := listenEndpoint(addr, "server", cfg, reg)
	if err != nil {
		return nil, err
	}
	source, err := cfg.newSource(ep, content)
	if err != nil {
		ep.Close()
		return nil, err
	}
	source.RoundInterval = cfg.SourceInterval
	source.Obs = obs.NewSourceMetrics(reg)
	source.TraceRate = cfg.TraceRate
	source.Systematic = cfg.Systematic
	source.LinkSeq = cfg.DatagramData
	trackerCfg := cfg.trackerConfig(source.Session())
	trackerCfg.Obs = obs.NewTrackerMetrics(reg)
	trackerCfg.TraceObs = obs.NewTraceMetrics(reg)
	trackerCfg.LinkObs = obs.NewLinkMetrics(reg)
	obs.NewRuntimeMetrics(reg)
	tracker, err := protocol.NewTracker(ep, source, trackerCfg)
	if err != nil {
		ep.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{ep: ep, tracker: tracker, source: source, obs: reg, cancel: cancel}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer s.wg.Done(); _ = source.Run(ctx) }()
	return s, nil
}

// Addr returns the server's listening address.
func (s *Server) Addr() string { return s.ep.Addr() }

// NumNodes returns the overlay population.
func (s *Server) NumNodes() int { return s.tracker.NumNodes() }

// CompletedCount returns how many nodes reported a full decode.
func (s *Server) CompletedCount() int { return s.tracker.CompletedCount() }

// Events exposes tracker events.
func (s *Server) Events() <-chan protocol.TrackerEvent { return s.tracker.Events() }

// Observability returns the server's metrics registry (nil when disabled).
func (s *Server) Observability() *obs.Registry { return s.obs }

// Snapshot captures the server's current overlay health, metrics, and
// recent trace events.
func (s *Server) Snapshot() obs.OverlaySnapshot {
	snap := obs.OverlaySnapshot{At: time.Now()}
	h := s.tracker.Health()
	snap.Overlay = &h
	if s.obs != nil {
		snap.Metrics = s.obs.Snapshot()
		snap.Recent = s.obs.Trace().Events()
		snap.DroppedEvents = s.obs.Trace().Dropped()
	}
	return snap
}

// ClusterSnapshot returns the server-aggregated fleet telemetry view (see
// Session.ClusterSnapshot). Pass it to obs.WithClusterSnapshot to serve it
// at /debug/cluster.
func (s *Server) ClusterSnapshot() obs.ClusterSnapshot {
	return s.tracker.ClusterSnapshot()
}

// TraceSnapshot returns the assembled dissemination-tracing view (see
// Session.TraceSnapshot). Pass it to obs.WithTraceSnapshot to serve it at
// /debug/trace.
func (s *Server) TraceSnapshot() obs.TraceSnapshot {
	return s.tracker.TraceSnapshot()
}

// LinkSnapshot returns the aggregated fleet link matrix (see
// Session.LinkSnapshot). Pass it to obs.WithLinkSnapshot to serve it at
// /debug/links.
func (s *Server) LinkSnapshot() obs.LinkSnapshot {
	return s.tracker.LinkSnapshot()
}

// Close stops the server.
func (s *Server) Close() error {
	s.cancel()
	err := s.ep.Close()
	s.wg.Wait()
	return err
}

// RemoteClient is a socket-connected overlay node.
type RemoteClient struct {
	node   *protocol.Node
	ep     transport.Endpoint
	obs    *obs.Registry
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Dial joins the broadcast at serverAddr, listening on listenAddr
// (typically "127.0.0.1:0" or ":0"). cfg supplies the complaint timeout;
// opts may request a degree.
func Dial(ctx context.Context, serverAddr, listenAddr string, cfg Config, opts ...ClientOption) (*RemoteClient, error) {
	settings := clientSettings{seed: cfg.Seed}
	for _, o := range opts {
		o(&settings)
	}
	var reg *obs.Registry
	if !cfg.DisableObs {
		reg = obs.NewRegistry(obs.WithTraceCapacity(cfg.TraceCap))
	}
	ep, err := listenEndpoint(listenAddr, "", cfg, reg)
	if err != nil {
		return nil, err
	}
	node := protocol.NewNode(ep, protocol.NodeConfig{
		TrackerAddr:      serverAddr,
		Degree:           settings.degree,
		ComplaintTimeout: cfg.ComplaintTimeout,
		Seed:             settings.seed,
		DecodeWorkers:    cfg.DecodeWorkers,
		LinkSeq:          cfg.DatagramData,
		Obs:              obs.NewNodeMetrics(reg, ep.Addr()),
		GenSink:          settings.genSink,
	})
	runCtx, cancel := context.WithCancel(context.Background())
	c := &RemoteClient{node: node, ep: ep, obs: reg, cancel: cancel}
	c.wg.Add(1)
	go func() { defer c.wg.Done(); _ = node.Run(runCtx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			c.Close()
			return nil, err
		}
	case <-ctx.Done():
		c.Close()
		return nil, ctx.Err()
	}
	return c, nil
}

// ID returns the node's overlay id.
func (c *RemoteClient) ID() uint64 { return c.node.ID() }

// Progress returns the decoded-rank fraction in [0,1].
func (c *RemoteClient) Progress() float64 { return c.node.Progress() }

// Completed closes when the content is fully decoded.
func (c *RemoteClient) Completed() <-chan struct{} { return c.node.Completed() }

// Wait blocks until completion or context cancellation.
func (c *RemoteClient) Wait(ctx context.Context) error {
	select {
	case <-c.node.Completed():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Content returns the decoded blob once complete.
func (c *RemoteClient) Content() ([]byte, error) { return c.node.Content() }

// Observability returns the client's metrics registry (nil when disabled).
func (c *RemoteClient) Observability() *obs.Registry { return c.obs }

// Snapshot captures the client's download health, metrics, and recent
// trace events.
func (c *RemoteClient) Snapshot() obs.OverlaySnapshot {
	snap := obs.OverlaySnapshot{At: time.Now()}
	h := c.node.Health()
	snap.Node = &h
	if c.obs != nil {
		snap.Metrics = c.obs.Snapshot()
		snap.Recent = c.obs.Trace().Events()
		snap.DroppedEvents = c.obs.Trace().Dropped()
	}
	return snap
}

// Leave performs the good-bye protocol, then closes the client.
func (c *RemoteClient) Leave(ctx context.Context) error {
	if err := c.node.Leave(ctx); err != nil {
		return err
	}
	select {
	case <-c.node.Left():
	case <-ctx.Done():
		return ctx.Err()
	}
	return c.Close()
}

// Close tears the client down without a good-bye (a crash, from the
// overlay's perspective — the repair protocol will splice around it).
func (c *RemoteClient) Close() error {
	c.cancel()
	err := c.ep.Close()
	c.wg.Wait()
	return err
}

// Congest asks for §5 congestion relief (drop one thread).
func (c *RemoteClient) Congest(ctx context.Context) error { return c.node.Congest(ctx) }

// Uncongest regrows one previously dropped thread.
func (c *RemoteClient) Uncongest(ctx context.Context) error { return c.node.Uncongest(ctx) }

// Degree returns the client's current thread count.
func (c *RemoteClient) Degree() int { return c.node.Degree() }

// CompletedLayers returns the playable priority-layer count (layered
// sessions; flat sessions report 1 when complete).
func (c *RemoteClient) CompletedLayers() int { return c.node.CompletedLayers() }
