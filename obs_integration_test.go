package ncast

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ncast/internal/obs"
)

// TestSnapshotConsistency downloads through an instrumented session and
// checks that the snapshot numbers agree with the protocol's invariants:
// at completion every node has absorbed exactly generations × generation
// size innovative packets, no more and no fewer.
func TestSnapshotConsistency(t *testing.T) {
	t.Parallel()
	cfg := testConfig() // GenSize=8, PacketSize=64
	content := testContent(1536)
	gens := 3 // 1536 bytes / (8 packets × 64 bytes)
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients = 3
	for i := 0; i < clients; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		defer func() { _ = c }()
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// The tracker learns about completions asynchronously.
	var snap obs.OverlaySnapshot
	waitFor(t, 10*time.Second, "every completion to reach the tracker", func() bool {
		snap = s.Snapshot()
		return snap.Overlay != nil && snap.Overlay.Completed == clients
	})

	if snap.Overlay.Nodes != clients {
		t.Errorf("Overlay.Nodes = %d, want %d", snap.Overlay.Nodes, clients)
	}
	if snap.Overlay.K != cfg.K || snap.Overlay.DefaultDegree != cfg.D {
		t.Errorf("Overlay k/d = %d/%d, want %d/%d",
			snap.Overlay.K, snap.Overlay.DefaultDegree, cfg.K, cfg.D)
	}
	total := 0
	for _, n := range snap.Overlay.DegreeDist {
		total += n
	}
	if total != clients {
		t.Errorf("degree distribution covers %d nodes, want %d", total, clients)
	}

	// Every node needs exactly full rank in innovative packets; the
	// counters are final once all generations decoded.
	wantInnovative := float64(clients * gens * cfg.GenSize)
	if got := snap.SumMetric("ncast_node_innovative_total"); got != wantInnovative {
		t.Errorf("sum innovative = %v, want %v", got, wantInnovative)
	}
	if got := snap.SumMetric("ncast_node_rank"); got != wantInnovative {
		t.Errorf("sum rank gauges = %v, want %v", got, wantInnovative)
	}
	if got := snap.SumMetric("ncast_node_generations_done"); got != float64(clients*gens) {
		t.Errorf("sum generations done = %v, want %d", got, clients*gens)
	}
	if got := snap.SumMetric("ncast_tracker_hellos_total"); got < float64(clients) {
		t.Errorf("hellos = %v, want >= %d", got, clients)
	}
	if got := snap.SumMetric("ncast_rlnc_generations_completed_total"); got != float64(clients*gens) {
		t.Errorf("rlnc generations completed = %v, want %d", got, clients*gens)
	}
	// Every received packet is either innovative or redundant. Packets
	// keep flowing after completion (heartbeats, source pump), and the
	// snapshot reads the two counters at slightly different instants, so
	// only the one-sided bound is exact: redundant is read after
	// received and can only have grown in between.
	recv := snap.SumMetric("ncast_node_received_total")
	redundant := snap.SumMetric("ncast_node_redundant_total")
	if recv < wantInnovative {
		t.Errorf("received %v < innovative %v", recv, wantInnovative)
	}
	if recv > wantInnovative+redundant {
		t.Errorf("received %v > innovative %v + redundant %v", recv, wantInnovative, redundant)
	}
	if snap.SumMetric("ncast_transport_frames_sent_total") == 0 {
		t.Error("transport sent counter stayed zero")
	}
	if len(snap.Recent) == 0 {
		t.Error("no trace events recorded")
	}
}

// TestSnapshotDisabled checks the DisableObs path: no registry, but the
// overlay health part of the snapshot still works.
func TestSnapshotDisabled(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.DisableObs = true
	s, err := NewSession(testContent(512), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Observability() != nil {
		t.Fatal("registry present despite DisableObs")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := s.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Overlay == nil || snap.Overlay.Nodes != 1 {
		t.Fatalf("overlay health = %+v", snap.Overlay)
	}
	if snap.Metrics != nil || snap.Recent != nil {
		t.Fatal("disabled session produced metric data")
	}
}

// TestObsHTTPEndpointLive runs the acceptance scenario end to end: a TCP
// server with a live observability endpoint, a client downloading through
// it, and /metrics + /debug/overlay reflecting the traffic.
func TestObsHTTPEndpointLive(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	content := testContent(1024)
	srv, err := ListenAndServe("127.0.0.1:0", content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs, err := obs.Serve("127.0.0.1:0", srv.Observability(), srv.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()

	before := fetch(t, "http://"+hs.Addr()+"/metrics")
	if !strings.Contains(before, "ncast_overlay_nodes 0") {
		t.Fatalf("expected empty overlay before join:\n%s", firstLines(before, 20))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := Dial(ctx, srv.Addr(), "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	after := fetch(t, "http://"+hs.Addr()+"/metrics")
	for _, want := range []string{
		"ncast_overlay_nodes 1",
		"ncast_tracker_hellos_total",
		"ncast_source_packets_total",
		`ncast_transport_frames_sent_total{endpoint="server"}`,
	} {
		if !strings.Contains(after, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err := http.Get("http://" + hs.Addr() + "/debug/overlay")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.OverlaySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Overlay == nil || snap.Overlay.Nodes != 1 {
		t.Fatalf("overlay = %+v", snap.Overlay)
	}
	if snap.SumMetric("ncast_source_packets_total") == 0 {
		t.Error("source packet counter zero in /debug/overlay")
	}

	// The client side serves its own registry with node-level health.
	chs, err := obs.Serve("127.0.0.1:0", client.Observability(), client.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer chs.Close()
	resp, err = http.Get("http://" + chs.Addr() + "/debug/overlay")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var csnap obs.OverlaySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&csnap); err != nil {
		t.Fatal(err)
	}
	if csnap.Node == nil || !csnap.Node.Complete || csnap.Node.Progress != 1 {
		t.Fatalf("node health = %+v", csnap.Node)
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
