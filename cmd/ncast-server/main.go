// Command ncast-server broadcasts a file over TCP: it runs the tracker
// (the curtain authority) and the network-coded data source on one
// address, and reports joins, leaves, repairs, and completions.
//
// Usage:
//
//	ncast-server -addr 127.0.0.1:9000 -file movie.bin -k 16 -d 4
//	ncast-node   -server 127.0.0.1:9000 -out copy.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ncast"
	"ncast/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address serving /metrics, /debug/overlay, and /debug/cluster (empty = off)")
	obsPprof := flag.Bool("obs-pprof", false, "also mount net/http/pprof under /debug/pprof/ on the observability address")
	traceCap := flag.Int("obs-trace", 0, "trace-event ring capacity (0 = default 256)")
	statsEvery := flag.Duration("stats-interval", time.Second, "per-node telemetry reporting interval behind /debug/cluster (0 = off)")
	traceRate := flag.Int("trace-rate", 0, "dissemination-tracing sample rate: 1-in-n generations (0 = off)")
	file := flag.String("file", "", "content file to broadcast (required)")
	k := flag.Int("k", 16, "server threads (unit streams)")
	d := flag.Int("d", 4, "default node degree")
	genSize := flag.Int("gen", 16, "generation size (packets)")
	pktSize := flag.Int("pkt", 1024, "packet payload bytes")
	insert := flag.String("insert", "append", "row insertion: append or random")
	layers := flag.Int("layers", 0, "priority layers (0 = flat broadcast)")
	interval := flag.Duration("interval", time.Millisecond, "source pump round interval")
	seed := flag.Int64("seed", 1, "server seed")
	datagram := flag.Bool("datagram", false, "serve coded data frames over UDP on the listen port (control stays on TCP)")
	mtu := flag.Int("mtu", 0, "datagram payload budget in bytes (0 = 1452 default; caps -pkt)")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "-file is required")
		os.Exit(2)
	}
	content, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = *k, *d
	cfg.GenSize, cfg.PacketSize = *genSize, *pktSize
	cfg.Seed = *seed
	cfg.SourceInterval = *interval
	cfg.TraceCap = *traceCap
	cfg.StatsInterval = *statsEvery
	cfg.TraceRate = *traceRate
	if *datagram {
		ncast.WithDatagramData()(&cfg)
	}
	if *mtu > 0 {
		ncast.WithDatagramMTU(*mtu)(&cfg)
	}
	if *insert == "random" {
		cfg.Insert = ncast.InsertRandom
	}
	if *layers > 0 {
		// Halving weights per layer: the base gets the biggest share.
		w := float64(int(1) << (*layers - 1))
		for l := 0; l < *layers; l++ {
			cfg.LayerWeights = append(cfg.LayerWeights, w)
			if w > 1 {
				w /= 2
			}
		}
	}

	srv, err := ncast.ListenAndServe(*addr, content, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("serving %d bytes on %s (k=%d d=%d gen=%d pkt=%d)\n",
		len(content), srv.Addr(), *k, *d, *genSize, *pktSize)

	if *obsAddr != "" {
		hs, err := obs.Serve(*obsAddr, srv.Observability(), srv.Snapshot,
			obs.WithClusterSnapshot(srv.ClusterSnapshot),
			obs.WithTraceSnapshot(srv.TraceSnapshot),
			obs.WithLinkSnapshot(srv.LinkSnapshot),
			obs.WithProfiling(*obsPprof))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer hs.Close()
		fmt.Printf("observability on http://%s/metrics, /debug/overlay, /debug/cluster, /debug/trace, /debug/links\n", hs.Addr())
		if *obsPprof {
			fmt.Printf("profiling on http://%s/debug/pprof/\n", hs.Addr())
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case ev := <-srv.Events():
			fmt.Printf("[%s] %-8s node=%d addr=%s (population %d, completed %d)\n",
				time.Now().Format("15:04:05"), ev.Kind, ev.ID, ev.Addr,
				srv.NumNodes(), srv.CompletedCount())
		case <-sigCh:
			fmt.Println("shutting down")
			return
		}
	}
}
