// Command ncast-bench runs the experiment harness: one experiment per
// claim of the paper (see DESIGN.md's per-experiment index), printing the
// table the paper's theorem predicts the shape of.
//
// Usage:
//
//	ncast-bench -exp all            # run every experiment (slow)
//	ncast-bench -exp e2,e6          # run a subset
//	ncast-bench -exp e3 -quick      # reduced configs for a fast pass
//	ncast-bench -list               # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ncast/internal/metrics"
	"ncast/internal/sim"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool) (*metrics.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"e1", "failure-free connectivity = d (§3)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE1Config()
			if quick {
				cfg.Sizes = []int{100, 400}
			}
			res, err := sim.RunE1(cfg)
			return res.Table(), err
		}},
		{"e2", "Theorem 4: E[B]/A vs p·d", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE2Config()
			if quick {
				cfg.Steps, cfg.BurnIn, cfg.Ps = 1200, 400, []float64{0.01, 0.05}
			}
			res, err := sim.RunE2(cfg)
			return res.Table(), err
		}},
		{"e3", "Theorem 5: collapse time exponential in k/d³", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE3Config()
			if quick {
				cfg.Ks, cfg.Trials, cfg.MaxSteps = []int{4, 6, 8}, 6, 6000
			}
			res, err := sim.RunE3(cfg)
			return res.Table(), err
		}},
		{"e4", "Lemma 6: max defect jump per arrival", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE4Config()
			if quick {
				cfg.Steps = 150
			}
			res, err := sim.RunE4(cfg)
			return res.Table(), err
		}},
		{"e5", "Lemma 1: graceful-leave distribution invariance", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE5Config()
			if quick {
				cfg.Trials = 120
			}
			res, err := sim.RunE5(cfg)
			return res.Table(), err
		}},
		{"e6", "locality & scalability: P(loss) flat in N", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE6Config()
			if quick {
				cfg.Sizes, cfg.Trials = []int{200, 800}, 3
			}
			res, err := sim.RunE6(cfg)
			return res.Table(), err
		}},
		{"e7", "throughput: RLNC vs routing baselines", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE7Config()
			if quick {
				cfg.N, cfg.Trials = 80, 8
			}
			res, err := sim.RunE7(cfg)
			return res.Table(), err
		}},
		{"e8", "adversarial batch failures: §5 insert-mode defense", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE8Config()
			if quick {
				cfg.N, cfg.Trials = 200, 5
			}
			res, err := sim.RunE8(cfg)
			return res.Table(), err
		}},
		{"e9", "delay: linear (curtain) vs logarithmic (§6 random graph)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE9Config()
			if quick {
				cfg.Sizes, cfg.Trials = []int{100, 400, 1600}, 2
			}
			res, err := sim.RunE9(cfg)
			return res.Table(), err
		}},
		{"e10", "degree sweep: E[loss]≈p ∀d, Var[loss]~1/d (§7)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE10Config()
			if quick {
				cfg.Ds, cfg.Trials, cfg.N = []int{2, 8}, 4, 200
			}
			res, err := sim.RunE10(cfg)
			return res.Table(), err
		}},
		{"e11", "heterogeneous degrees (DSL vs T1, §5)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE11Config()
			if quick {
				cfg.Trials, cfg.N = 4, 200
			}
			res, err := sim.RunE11(cfg)
			return res.Table(), err
		}},
		{"e12", "field-size ablation: decode waste & overhead", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE12Config()
			if quick {
				cfg.GenSizes, cfg.Trials = []int{16, 64}, 5
			}
			res, err := sim.RunE12(cfg)
			return res.Table(), err
		}},
		{"e13", "congestion episode: degree backoff + regrowth (§5)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE13Config()
			if quick {
				cfg.Trials, cfg.N = 4, 100
			}
			res, err := sim.RunE13(cfg)
			return res.Table(), err
		}},
		{"e14", "§7 conjecture: P(lose κ threads) ≈ P(lose κ parents)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE14Config()
			if quick {
				cfg.N, cfg.Trials = 300, 3
			}
			res, err := sim.RunE14(cfg)
			return res.Table(), err
		}},
		{"e15", "tracker-free gossip overlay vs central designs (§7)", func(quick bool) (*metrics.Table, error) {
			cfg := sim.DefaultE15Config()
			if quick {
				cfg.N, cfg.Trials = 200, 3
			}
			res, err := sim.RunE15(cfg)
			return res.Table(), err
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (e1..e15) or 'all'")
	quick := flag.Bool("quick", false, "reduced configurations for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	ran := 0
	for _, e := range exps {
		if *expFlag != "all" && !want[e.id] {
			continue
		}
		ran++
		start := time.Now()
		table, err := e.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n[%s finished in %v]\n\n", table, e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; use -list\n", *expFlag)
		os.Exit(2)
	}
}
