// Command ncast-node joins a broadcast over TCP, downloads the content
// through the network-coded overlay (re-serving it to later joiners while
// connected), and writes it to a file.
//
// Usage:
//
//	ncast-node -server 127.0.0.1:9000 -out copy.bin
//	ncast-node -server 127.0.0.1:9000 -out copy.bin -degree 6 -stay 1m
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ncast"
	"ncast/internal/obs"
)

func main() {
	server := flag.String("server", "", "server address (required)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address serving /metrics and /debug/overlay (empty = off)")
	obsPprof := flag.Bool("obs-pprof", false, "also mount net/http/pprof under /debug/pprof/ on the observability address")
	traceCap := flag.Int("obs-trace", 0, "trace-event ring capacity (0 = default 256)")
	listen := flag.String("listen", "127.0.0.1:0", "local listen address")
	out := flag.String("out", "", "output file (required)")
	degree := flag.Int("degree", 0, "requested degree (0 = session default)")
	stay := flag.Duration("stay", 10*time.Second, "how long to keep seeding after completion")
	timeout := flag.Duration("timeout", 5*time.Minute, "download timeout")
	seed := flag.Int64("seed", time.Now().UnixNano(), "recoding seed")
	datagram := flag.Bool("datagram", false, "receive coded data frames over UDP on the listen port (must match the server)")
	mtu := flag.Int("mtu", 0, "datagram payload budget in bytes (0 = 1452 default; must match the server)")
	dataLoss := flag.Float64("data-loss", 0, "inject seeded random loss on outbound datagrams (chaos testing)")
	flag.Parse()

	if *server == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "-server and -out are required")
		os.Exit(2)
	}

	cfg := ncast.DefaultConfig()
	cfg.ComplaintTimeout = time.Second
	cfg.Seed = *seed
	cfg.TraceCap = *traceCap
	if *datagram {
		ncast.WithDatagramData()(&cfg)
	}
	if *mtu > 0 {
		ncast.WithDatagramMTU(*mtu)(&cfg)
	}
	cfg.DataLoss = *dataLoss

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var opts []ncast.ClientOption
	if *degree > 0 {
		opts = append(opts, ncast.WithDegree(*degree))
	}
	client, err := ncast.Dial(ctx, *server, *listen, cfg, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()
	fmt.Printf("joined as node %d\n", client.ID())

	if *obsAddr != "" {
		hs, err := obs.Serve(*obsAddr, client.Observability(), client.Snapshot,
			obs.WithProfiling(*obsPprof))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer hs.Close()
		fmt.Printf("observability on http://%s/metrics and http://%s/debug/overlay\n", hs.Addr(), hs.Addr())
		if *obsPprof {
			fmt.Printf("profiling on http://%s/debug/pprof/\n", hs.Addr())
		}
	}

	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
download:
	for {
		select {
		case <-client.Completed():
			break download
		case <-ticker.C:
			fmt.Printf("progress %.1f%%\n", 100*client.Progress())
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "download timed out at %.1f%%\n", 100*client.Progress())
			os.Exit(1)
		}
	}

	content, err := client.Content()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, content, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bytes to %s; seeding for %v\n", len(content), *out, *stay)
	time.Sleep(*stay)
	if err := client.Leave(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "graceful leave failed: %v\n", err)
	}
}
