// Command ncast-perf measures the data-plane fast path and writes the
// results as JSON (default BENCH_rlnc.json) so kernel and pipeline
// regressions show up as a diff. It records, per field:
//
//   - bulk-kernel throughput (AddSlice / AddMulSlice) for the dispatched
//     implementation and the scalar reference, with the speedup ratio;
//   - steady-state codec emit cost (Encoder.Packet, Recoder.Packet) in
//     ns/op and allocs/op — the zero-allocation budget of the pipeline;
//   - whole-file decode throughput, serial FileDecoder vs the
//     generation-sharded ParallelFileDecoder worker pool.
//
// Usage:
//
//	ncast-perf                 # write BENCH_rlnc.json and print a summary
//	ncast-perf -o results.json # choose the output path
//	ncast-perf -size 8192      # payload bytes for the kernel benchmarks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
)

// report is the schema of BENCH_rlnc.json.
type report struct {
	Accel      string        `json:"accel"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	SliceBytes int           `json:"slice_bytes"`
	Kernels    []kernelRow   `json:"kernels"`
	Codec      []codecRow    `json:"codec"`
	FileDecode fileDecodeRow `json:"file_decode"`
}

type kernelRow struct {
	Name    string  `json:"name"`
	MBps    float64 `json:"mb_per_s"`
	RefMBps float64 `json:"ref_mb_per_s"`
	Speedup float64 `json:"speedup"`
}

type codecRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type fileDecodeRow struct {
	ContentBytes int     `json:"content_bytes"`
	Generations  int     `json:"generations"`
	Workers      int     `json:"workers"`
	SerialMBps   float64 `json:"serial_mb_per_s"`
	ParallelMBps float64 `json:"parallel_mb_per_s"`
	Speedup      float64 `json:"speedup"`
}

// mbps converts a benchmark over size-byte operations to MB/s.
func mbps(r testing.BenchmarkResult, size int) float64 {
	if r.NsPerOp() <= 0 {
		return 0
	}
	return float64(size) / float64(r.NsPerOp()) * 1e9 / 1e6
}

// benchKernel measures one dst/src bulk kernel at the given payload size.
func benchKernel(size int, fn func(dst, src []byte)) testing.BenchmarkResult {
	dst, src := make([]byte, size), make([]byte, size)
	rand.New(rand.NewSource(1)).Read(src)
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			fn(dst, src)
		}
	})
}

func kernelRows(size int) []kernelRow {
	const c256 = uint16(0x5A)
	const c65536 = uint16(0x1234)
	cases := []struct {
		name string
		opt  func(dst, src []byte)
		ref  func(dst, src []byte)
	}{
		{"AddSlice(GF2)",
			func(d, s []byte) { gf.F2.AddSlice(d, s) },
			func(d, s []byte) { gf.RefAddSlice(gf.F2, d, s) }},
		{"AddMulSlice(GF256)",
			func(d, s []byte) { gf.F256.AddMulSlice(d, s, c256) },
			func(d, s []byte) { gf.RefAddMulSlice(gf.F256, d, s, c256) }},
		{"AddMulSlice(GF65536)",
			func(d, s []byte) { gf.F65536.AddMulSlice(d, s, c65536) },
			func(d, s []byte) { gf.RefAddMulSlice(gf.F65536, d, s, c65536) }},
	}
	rows := make([]kernelRow, 0, len(cases))
	for _, tc := range cases {
		opt := benchKernel(size, tc.opt)
		ref := benchKernel(size, tc.ref)
		row := kernelRow{Name: tc.name, MBps: mbps(opt, size), RefMBps: mbps(ref, size)}
		if row.RefMBps > 0 {
			row.Speedup = row.MBps / row.RefMBps
		}
		rows = append(rows, row)
	}
	return rows
}

// codecRows measures the pooled emit paths at h=16, 1 KiB payloads.
func codecRows() []codecRow {
	const h, size = 16, 1024
	r := rand.New(rand.NewSource(2))
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		r.Read(src[i])
	}
	enc, err := rlnc.NewEncoder(gf.F256, 0, src)
	check(err)
	rc, err := rlnc.NewRecoder(gf.F256, 0, h, size)
	check(err)
	for rc.Rank() < h {
		p := enc.Packet(r)
		_, err := rc.Add(p)
		check(err)
		p.Release()
	}
	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := enc.Packet(r)
			p.Release()
		}
	})
	rcRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, ok := rc.Packet(r)
			if !ok {
				b.Fatal("recoder empty")
			}
			p.Release()
		}
	})
	return []codecRow{
		{"Encoder.Packet(GF256,h=16,1KiB)", float64(encRes.NsPerOp()), encRes.AllocsPerOp()},
		{"Recoder.Packet(GF256,h=16,1KiB)", float64(rcRes.NsPerOp()), rcRes.AllocsPerOp()},
	}
}

// fileDecode measures serial vs parallel whole-blob decode over 8
// generations of h=16, 1 KiB packets.
func fileDecode() fileDecodeRow {
	params := rlnc.Params{Field: gf.F256, GenSize: 16, PacketSize: 1024}
	const gens = 8
	content := make([]byte, gens*params.GenSize*params.PacketSize)
	rand.New(rand.NewSource(3)).Read(content)
	fe, err := rlnc.NewFileEncoder(params, content)
	check(err)
	r := rand.New(rand.NewSource(4))
	perGen := params.GenSize + 2
	pkts := make([]*rlnc.Packet, 0, gens*perGen)
	for g := 0; g < gens; g++ {
		for i := 0; i < perGen; i++ {
			p, err := fe.Packet(g, r)
			check(err)
			pkts = append(pkts, p.Clone())
			p.Release()
		}
	}
	serial := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			fd, err := rlnc.NewFileDecoder(params, len(content))
			check(err)
			for _, p := range pkts {
				if fd.Complete() {
					break
				}
				_, err := fd.Add(p)
				check(err)
			}
			if !fd.Complete() {
				panic("serial decode incomplete")
			}
		}
	})
	workers := runtime.GOMAXPROCS(0)
	if workers > gens {
		workers = gens
	}
	parallel := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			pd, err := rlnc.NewParallelFileDecoder(params, len(content), workers, nil)
			check(err)
			for _, p := range pkts {
				check(pd.Add(p.Clone()))
			}
			pd.Close()
			if !pd.Complete() {
				panic("parallel decode incomplete")
			}
		}
	})
	row := fileDecodeRow{
		ContentBytes: len(content),
		Generations:  gens,
		Workers:      workers,
		SerialMBps:   mbps(serial, len(content)),
		ParallelMBps: mbps(parallel, len(content)),
	}
	if row.SerialMBps > 0 {
		row.Speedup = row.ParallelMBps / row.SerialMBps
	}
	return row
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncast-perf:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "BENCH_rlnc.json", "output path for the JSON report")
	size := flag.Int("size", 4096, "payload bytes for the kernel benchmarks")
	flag.Parse()

	rep := report{
		Accel:      gf.Accel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SliceBytes: *size,
	}
	fmt.Printf("accel=%s gomaxprocs=%d %s\n", rep.Accel, rep.GOMAXPROCS, rep.GoVersion)
	rep.Kernels = kernelRows(*size)
	for _, k := range rep.Kernels {
		fmt.Printf("%-24s %9.0f MB/s (ref %7.0f MB/s, %5.1fx)\n", k.Name, k.MBps, k.RefMBps, k.Speedup)
	}
	rep.Codec = codecRows()
	for _, c := range rep.Codec {
		fmt.Printf("%-32s %8.0f ns/op %3d allocs/op\n", c.Name, c.NsPerOp, c.AllocsPerOp)
	}
	rep.FileDecode = fileDecode()
	fd := rep.FileDecode
	fmt.Printf("file decode %d B / %d gens: serial %.0f MB/s, parallel(%d) %.0f MB/s (%.2fx)\n",
		fd.ContentBytes, fd.Generations, fd.SerialMBps, fd.Workers, fd.ParallelMBps, fd.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	data = append(data, '\n')
	check(os.WriteFile(*out, data, 0o644))
	fmt.Println("wrote", *out)
}
