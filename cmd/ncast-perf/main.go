// Command ncast-perf measures the data-plane fast path and writes the
// results as JSON (default BENCH_rlnc.json) so kernel and pipeline
// regressions show up as a diff. It records, per field:
//
//   - bulk-kernel throughput (AddSlice / AddMulSlice) for the dispatched
//     implementation and the scalar reference, with the speedup ratio;
//   - steady-state codec emit cost (Encoder.Packet, Recoder.Packet) in
//     ns/op and allocs/op — the zero-allocation budget of the pipeline;
//   - whole-file decode throughput, serial FileDecoder vs the
//     generation-sharded ParallelFileDecoder worker pool, as a matrix of
//     worker counts (1/2/4/8) by content size (1–64 MiB);
//   - systematic fast-path throughput: serial decode of a loss-free
//     all-systematic feed, where elimination degenerates to copying.
//
// Usage:
//
//	ncast-perf                 # write BENCH_rlnc.json and print a summary
//	ncast-perf -o results.json # choose the output path
//	ncast-perf -size 8192      # payload bytes for the kernel benchmarks
//	ncast-perf -gate           # regression gate: exit 1 unless the
//	                           # parallel decoder beats serial at
//	                           # workers>=2 and emit stays zero-alloc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
)

// report is the schema of BENCH_rlnc.json.
type report struct {
	Accel            string          `json:"accel"`
	GOMAXPROCS       int             `json:"gomaxprocs"`
	GoVersion        string          `json:"go_version"`
	SliceBytes       int             `json:"slice_bytes"`
	Kernels          []kernelRow     `json:"kernels"`
	Codec            []codecRow      `json:"codec"`
	FileDecode       fileDecodeRow   `json:"file_decode"`
	FileDecodeMatrix []fileDecodeRow `json:"file_decode_matrix"`
	SystematicDecode sysDecodeRow    `json:"systematic_decode"`
}

type kernelRow struct {
	Name    string  `json:"name"`
	MBps    float64 `json:"mb_per_s"`
	RefMBps float64 `json:"ref_mb_per_s"`
	Speedup float64 `json:"speedup"`
}

type codecRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type fileDecodeRow struct {
	ContentBytes int     `json:"content_bytes"`
	Generations  int     `json:"generations"`
	Workers      int     `json:"workers"`
	SerialMBps   float64 `json:"serial_mb_per_s"`
	ParallelMBps float64 `json:"parallel_mb_per_s"`
	Speedup      float64 `json:"speedup"`
}

type sysDecodeRow struct {
	ContentBytes int     `json:"content_bytes"`
	Generations  int     `json:"generations"`
	MBps         float64 `json:"mb_per_s"`
}

// mbps converts a benchmark over size-byte operations to MB/s.
func mbps(r testing.BenchmarkResult, size int) float64 {
	if r.NsPerOp() <= 0 {
		return 0
	}
	return float64(size) / float64(r.NsPerOp()) * 1e9 / 1e6
}

// benchKernel measures one dst/src bulk kernel at the given payload size.
func benchKernel(size int, fn func(dst, src []byte)) testing.BenchmarkResult {
	dst, src := make([]byte, size), make([]byte, size)
	rand.New(rand.NewSource(1)).Read(src)
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			fn(dst, src)
		}
	})
}

func kernelRows(size int) []kernelRow {
	const c256 = uint16(0x5A)
	const c65536 = uint16(0x1234)
	cases := []struct {
		name string
		opt  func(dst, src []byte)
		ref  func(dst, src []byte)
	}{
		{"AddSlice(GF2)",
			func(d, s []byte) { gf.F2.AddSlice(d, s) },
			func(d, s []byte) { gf.RefAddSlice(gf.F2, d, s) }},
		{"AddMulSlice(GF256)",
			func(d, s []byte) { gf.F256.AddMulSlice(d, s, c256) },
			func(d, s []byte) { gf.RefAddMulSlice(gf.F256, d, s, c256) }},
		{"AddMulSlice(GF65536)",
			func(d, s []byte) { gf.F65536.AddMulSlice(d, s, c65536) },
			func(d, s []byte) { gf.RefAddMulSlice(gf.F65536, d, s, c65536) }},
	}
	rows := make([]kernelRow, 0, len(cases))
	for _, tc := range cases {
		opt := benchKernel(size, tc.opt)
		ref := benchKernel(size, tc.ref)
		row := kernelRow{Name: tc.name, MBps: mbps(opt, size), RefMBps: mbps(ref, size)}
		if row.RefMBps > 0 {
			row.Speedup = row.MBps / row.RefMBps
		}
		rows = append(rows, row)
	}
	return rows
}

// codecRows measures the pooled emit paths at h=16, 1 KiB payloads.
func codecRows() []codecRow {
	const h, size = 16, 1024
	r := rand.New(rand.NewSource(2))
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		r.Read(src[i])
	}
	enc, err := rlnc.NewEncoder(gf.F256, 0, src)
	check(err)
	rc, err := rlnc.NewRecoder(gf.F256, 0, h, size)
	check(err)
	for rc.Rank() < h {
		p := enc.Packet(r)
		_, err := rc.Add(p)
		check(err)
		p.Release()
	}
	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := enc.Packet(r)
			p.Release()
		}
	})
	rcRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, ok := rc.Packet(r)
			if !ok {
				b.Fatal("recoder empty")
			}
			p.Release()
		}
	})
	return []codecRow{
		{"Encoder.Packet(GF256,h=16,1KiB)", float64(encRes.NsPerOp()), encRes.AllocsPerOp()},
		{"Recoder.Packet(GF256,h=16,1KiB)", float64(rcRes.NsPerOp()), rcRes.AllocsPerOp()},
	}
}

// decodeParams is the decode-benchmark coding configuration — the
// library default of h=16 source packets of 1 KiB.
var decodeParams = rlnc.Params{Field: gf.F256, GenSize: 16, PacketSize: 1024}

// codedFeed builds seeded content of the given size plus a coded packet
// schedule with two redundant packets per generation, the same surplus a
// lossless overlay path delivers.
func codedFeed(params rlnc.Params, contentBytes int) ([]byte, []*rlnc.Packet) {
	content := make([]byte, contentBytes)
	rand.New(rand.NewSource(3)).Read(content)
	fe, err := rlnc.NewFileEncoder(params, content)
	check(err)
	r := rand.New(rand.NewSource(4))
	gens := fe.NumGenerations()
	perGen := params.GenSize + 2
	pkts := make([]*rlnc.Packet, 0, gens*perGen)
	for g := 0; g < gens; g++ {
		for i := 0; i < perGen; i++ {
			p, err := fe.Packet(g, r)
			check(err)
			pkts = append(pkts, p)
		}
	}
	return content, pkts
}

// benchSerialDecode measures the serial FileDecoder over the feed. The
// serial decoder copies packets on Add, so the feed is reused as-is.
func benchSerialDecode(params rlnc.Params, content []byte, pkts []*rlnc.Packet) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			fd, err := rlnc.NewFileDecoder(params, len(content))
			check(err)
			for _, p := range pkts {
				if fd.Complete() {
					break
				}
				_, err := fd.Add(p)
				check(err)
			}
			if !fd.Complete() {
				panic("serial decode incomplete")
			}
		}
	})
	return mbps(res, len(content))
}

// benchParallelDecode measures the worker-pool decoder. The pool takes
// ownership of (and releases) every packet, so each iteration feeds
// pooled clones made outside the timed region — the caller of a real
// session hands over packets it already owns, so the clone cost is not
// part of the decode path.
func benchParallelDecode(params rlnc.Params, content []byte, pkts []*rlnc.Packet, workers int) float64 {
	feed := make([]*rlnc.Packet, len(pkts))
	res := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j, p := range pkts {
				feed[j] = p.ClonePooled()
			}
			b.StartTimer()
			pd, err := rlnc.NewParallelFileDecoder(params, len(content), workers, nil)
			check(err)
			for _, p := range feed {
				check(pd.Add(p))
			}
			pd.Close()
			if !pd.Complete() {
				panic("parallel decode incomplete")
			}
		}
	})
	return mbps(res, len(content))
}

func decodeRow(params rlnc.Params, content []byte, pkts []*rlnc.Packet, workers int, serialMBps float64) fileDecodeRow {
	row := fileDecodeRow{
		ContentBytes: len(content),
		Generations:  (len(content) + params.GenSize*params.PacketSize - 1) / (params.GenSize * params.PacketSize),
		Workers:      workers,
		SerialMBps:   serialMBps,
		ParallelMBps: benchParallelDecode(params, content, pkts, workers),
	}
	if row.SerialMBps > 0 {
		row.Speedup = row.ParallelMBps / row.SerialMBps
	}
	return row
}

// fileDecode is the headline serial-vs-parallel row: 8 generations,
// GOMAXPROCS workers.
func fileDecode() fileDecodeRow {
	params := decodeParams
	const gens = 8
	content, pkts := codedFeed(params, gens*params.GenSize*params.PacketSize)
	defer releaseAll(pkts)
	workers := runtime.GOMAXPROCS(0)
	if workers > gens {
		workers = gens
	}
	return decodeRow(params, content, pkts, workers, benchSerialDecode(params, content, pkts))
}

// fileDecodeMatrix sweeps worker count against content size. Serial
// throughput is measured once per size and shared across that size's
// rows.
func fileDecodeMatrix() []fileDecodeRow {
	params := decodeParams
	const mib = 1 << 20
	var rows []fileDecodeRow
	for _, size := range []int{1 * mib, 4 * mib, 16 * mib, 64 * mib} {
		content, pkts := codedFeed(params, size)
		serial := benchSerialDecode(params, content, pkts)
		for _, workers := range []int{1, 2, 4, 8} {
			rows = append(rows, decodeRow(params, content, pkts, workers, serial))
		}
		releaseAll(pkts)
	}
	return rows
}

// systematicDecode measures the serial decoder on a loss-free
// all-systematic feed: every packet takes the identity fast path, so the
// decode degenerates to copying payloads into place.
func systematicDecode() sysDecodeRow {
	params := decodeParams
	const mib = 1 << 20
	contentBytes := 16 * mib
	content := make([]byte, contentBytes)
	rand.New(rand.NewSource(5)).Read(content)
	fe, err := rlnc.NewFileEncoder(params, content)
	check(err)
	gens := fe.NumGenerations()
	pkts := make([]*rlnc.Packet, 0, gens*params.GenSize)
	for g := 0; g < gens; g++ {
		for i := 0; i < params.GenSize; i++ {
			p, err := fe.Systematic(g, i)
			check(err)
			pkts = append(pkts, p)
		}
	}
	defer releaseAll(pkts)
	return sysDecodeRow{
		ContentBytes: contentBytes,
		Generations:  gens,
		MBps:         benchSerialDecode(params, content, pkts),
	}
}

func releaseAll(pkts []*rlnc.Packet) {
	for _, p := range pkts {
		p.Release()
	}
}

// runGate is the `-gate` regression check wired into `make check`: the
// emit paths must stay zero-alloc, and the parallel decoder must be at
// least as fast as serial once it has two or more workers. Throughput
// comparisons on a loaded machine are noisy, so the decode leg gets
// three attempts; allocation counts are deterministic and get none.
func runGate() int {
	failed := false
	for _, c := range codecRows() {
		status := "ok"
		if c.AllocsPerOp != 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("gate %-32s %3d allocs/op (want 0) %s\n", c.Name, c.AllocsPerOp, status)
	}
	params := decodeParams
	content, pkts := codedFeed(params, 4<<20)
	defer releaseAll(pkts)
	for _, workers := range []int{2, 4} {
		ok := false
		for attempt := 1; attempt <= 3 && !ok; attempt++ {
			serial := benchSerialDecode(params, content, pkts)
			row := decodeRow(params, content, pkts, workers, serial)
			ok = row.ParallelMBps >= row.SerialMBps
			fmt.Printf("gate file decode workers=%d attempt %d: serial %.0f MB/s, parallel %.0f MB/s (%.2fx)\n",
				workers, attempt, row.SerialMBps, row.ParallelMBps, row.Speedup)
		}
		if !ok {
			fmt.Printf("gate FAIL: parallel decode slower than serial at workers=%d\n", workers)
			failed = true
		}
	}
	if failed {
		return 1
	}
	fmt.Println("gate ok")
	return 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncast-perf:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "BENCH_rlnc.json", "output path for the JSON report")
	size := flag.Int("size", 4096, "payload bytes for the kernel benchmarks")
	gate := flag.Bool("gate", false, "run the perf regression gate instead of the full report")
	flag.Parse()

	if *gate {
		os.Exit(runGate())
	}

	rep := report{
		Accel:      gf.Accel(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		SliceBytes: *size,
	}
	fmt.Printf("accel=%s gomaxprocs=%d %s\n", rep.Accel, rep.GOMAXPROCS, rep.GoVersion)
	rep.Kernels = kernelRows(*size)
	for _, k := range rep.Kernels {
		fmt.Printf("%-24s %9.0f MB/s (ref %7.0f MB/s, %5.1fx)\n", k.Name, k.MBps, k.RefMBps, k.Speedup)
	}
	rep.Codec = codecRows()
	for _, c := range rep.Codec {
		fmt.Printf("%-32s %8.0f ns/op %3d allocs/op\n", c.Name, c.NsPerOp, c.AllocsPerOp)
	}
	rep.FileDecode = fileDecode()
	fd := rep.FileDecode
	fmt.Printf("file decode %d B / %d gens: serial %.0f MB/s, parallel(%d) %.0f MB/s (%.2fx)\n",
		fd.ContentBytes, fd.Generations, fd.SerialMBps, fd.Workers, fd.ParallelMBps, fd.Speedup)
	rep.FileDecodeMatrix = fileDecodeMatrix()
	for _, row := range rep.FileDecodeMatrix {
		fmt.Printf("file decode %4d MiB workers=%d: serial %.0f MB/s, parallel %.0f MB/s (%.2fx)\n",
			row.ContentBytes>>20, row.Workers, row.SerialMBps, row.ParallelMBps, row.Speedup)
	}
	rep.SystematicDecode = systematicDecode()
	sd := rep.SystematicDecode
	fmt.Printf("systematic decode %d MiB / %d gens: %.0f MB/s\n",
		sd.ContentBytes>>20, sd.Generations, sd.MBps)

	data, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	data = append(data, '\n')
	check(os.WriteFile(*out, data, 0o644))
	fmt.Println("wrote", *out)
}
