package main

import (
	"fmt"
	"log"
	"time"

	"ncast/internal/swarm"
)

// SwarmReport is the swarm phase's section of BENCH_control.json: the
// four hostile-world drills run at full scale against a live tracker,
// each with its gate verdicts and trend metrics.
type SwarmReport struct {
	Nodes     int                 `json:"nodes"`
	Shards    int                 `json:"shards"`
	AllPassed bool                `json:"all_passed"`
	Drills    []swarm.DrillResult `json:"drills"`
}

// runSwarmPhase joins a 100k-class swarm of protocol-correct virtual
// nodes against the real tracker and walks it through the four scenario
// drills (flash crowd, churn+rejoin, heterogeneous fleet, adversarial
// batch failure). Gate failures are recorded in the report and surfaced
// as an error after all drills have run, so the JSON still lands for
// trending even on a red run.
func runSwarmPhase(nodes, shards, k, d int, seed int64) (*SwarmReport, error) {
	// Budgets scale with the fleet: a 100k join wave is seconds of work
	// even at full batch throughput, and the flash-crowd p99 is by
	// construction close to the whole wave's duration (every hello is
	// sent at t=0, so the last welcome defines the tail). The hello
	// retry clock stretches accordingly — see DrillConfig.HelloRetry.
	// The lease/stats cadences also stretch: every joined node renews
	// at LeaseTimeout/4 and reports every StatsInterval, so fixed
	// cadences would turn a 100k fleet into tens of thousands of
	// background control messages per second, starving the very
	// admission waves under test.
	perNode := time.Duration(nodes) * time.Millisecond // 1ms/node of slack
	cfg := swarm.DrillConfig{
		N:             nodes,
		Shards:        shards,
		Seed:          seed,
		K:             k,
		D:             d,
		LeaseTimeout:  scaleDur(10*time.Second, nodes) + time.Duration(nodes)*300*time.Microsecond,
		StatsInterval: scaleDur(5*time.Second, nodes) + time.Duration(nodes)*150*time.Microsecond,
		Timeout:       60*time.Second + 2*perNode,
		AdmissionP99:  30*time.Second + perNode,
		HelloRetry:    2*time.Second + perNode/4,
	}
	rep := &SwarmReport{Nodes: nodes, Shards: shards, AllPassed: true}
	for _, phase := range []struct {
		name string
		run  func(swarm.DrillConfig) (swarm.DrillResult, error)
	}{
		{"flash-crowd", swarm.RunFlashCrowd},
		{"churn-rejoin", swarm.RunChurnRejoin},
		{"heterogeneous", swarm.RunHeterogeneous},
		{"adversarial-batch", swarm.RunAdversarialBatch},
	} {
		log.Printf("swarm drill %s: starting (N=%d)", phase.name, nodes)
		r, err := phase.run(cfg)
		if err != nil {
			return rep, fmt.Errorf("drill %s: %w", phase.name, err)
		}
		rep.Drills = append(rep.Drills, r)
		if !r.Passed {
			rep.AllPassed = false
		}
		for _, g := range r.Gates {
			status := "ok"
			if !g.Pass {
				status = "FAIL"
			}
			log.Printf("swarm drill %s: gate %s %s (%s)", r.Name, g.Name, status, g.Detail)
		}
	}
	if !rep.AllPassed {
		return rep, fmt.Errorf("swarm phase: one or more drill gates failed (see report)")
	}
	return rep, nil
}

// scaleDur keeps sweep/telemetry cadences sane for small smoke runs:
// full-size intervals would dominate a -quick run's wall clock, so
// fleets under 10k get proportionally shorter clocks (floored at 1/10).
func scaleDur(full time.Duration, nodes int) time.Duration {
	if nodes >= 10_000 {
		return full
	}
	d := full * time.Duration(nodes) / 10_000
	if d < full/10 {
		d = full / 10
	}
	return d
}
