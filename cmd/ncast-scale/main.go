// ncast-scale is the control-plane capacity harness: it measures whether
// hello/good-bye/repair really cost O(d·log N) — the paper's §3 constant
// message cost made concrete — by driving millions of synthetic membership
// ops against the curtain at two population sizes and comparing per-op
// latency tails. A second phase drives a live in-process tracker (real
// wire frames over the in-memory transport, batched admission, outboxes)
// to measure end-to-end control-plane throughput.
//
// Usage:
//
//	go run ./cmd/ncast-scale -o BENCH_control.json
//	go run ./cmd/ncast-scale -quick          # CI-sized smoke run
//
// The JSON report records, per population size: ops/sec, p50/p99/max
// latency per op kind, and resident curtain bytes. The acceptance gate is
// the adjacent-pair p99 ratios staying near 2x per population decade —
// per-op cost must not scale with N. (The smallest population fits in
// L3 while the largest lives in DRAM, so the pair that crosses that
// cliff carries a one-time memory-latency step on top; see DESIGN.md.)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ncast"
	"ncast/internal/core"
	"ncast/internal/obs"
	"ncast/internal/protocol"
	"ncast/internal/transport"
)

func main() {
	var (
		out         = flag.String("o", "BENCH_control.json", "report output path")
		rowsFlag    = flag.String("rows", "10000,100000,1000000", "comma-separated population sizes for the core phase")
		ops         = flag.Int("ops", 1_000_000, "steady-state ops per core phase")
		k           = flag.Int("k", 32, "server threads")
		d           = flag.Int("d", 4, "node degree")
		seed        = flag.Int64("seed", 1, "workload seed")
		mode        = flag.String("mode", "append", "row insert mode: append or random")
		trackerPop  = flag.Int("tracker-nodes", 10_000, "population for the live-tracker phase (0 skips it)")
		trackerOps  = flag.Int("tracker-ops", 50_000, "churn ops for the live-tracker phase")
		tracePop    = flag.Int("trace-nodes", 24, "receivers for the dissemination-trace phase (0 skips it)")
		traceLoss   = flag.Float64("trace-loss", 0.05, "per-frame loss for the dissemination-trace phase")
		swarmPop    = flag.Int("swarm-nodes", 100_000, "virtual nodes for the swarm drill phase (0 skips it)")
		swarmShards = flag.Int("swarm-shards", 16, "event-loop shards carrying the swarm phase")
		quick       = flag.Bool("quick", false, "CI-sized smoke run (shrinks every knob)")
		checkEveryN = flag.Int("check-every", 0, "run CheckInvariants every N core ops (0 disables)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *quick {
		*rowsFlag = "1000,20000"
		*ops = 50_000
		*trackerPop = 1_000
		*trackerOps = 5_000
		*tracePop = 12
		*swarmPop = 2_000
		*swarmShards = 8
	}

	insertMode := core.InsertAppend
	if *mode == "random" {
		insertMode = core.InsertRandom
	}

	var sizes []int
	for _, s := range strings.Split(*rowsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bad -rows entry %q", s)
		}
		sizes = append(sizes, n)
	}

	report := Report{
		Config: Config{
			K: *k, D: *d, Mode: *mode, Seed: *seed, Ops: *ops, Rows: sizes,
		},
		GoVersion: runtime.Version(),
	}
	for _, n := range sizes {
		log.Printf("core phase: N=%d, %d steady-state ops", n, *ops)
		report.CorePhases = append(report.CorePhases,
			runCorePhase(n, *ops, *k, *d, *seed, insertMode, *checkEveryN))
	}
	if len(report.CorePhases) >= 2 {
		pairRatio := func(lo, hi CorePhase) P99Ratio {
			return P99Ratio{
				RowsLow:  lo.Rows,
				RowsHigh: hi.Rows,
				Hello:    ratio(hi.Hello.P99Nanos, lo.Hello.P99Nanos),
				Goodbye:  ratio(hi.Goodbye.P99Nanos, lo.Goodbye.P99Nanos),
				Repair:   ratio(hi.Repair.P99Nanos, lo.Repair.P99Nanos),
			}
		}
		// Adjacent pairs separate the one-time cache-residency cliff (the
		// state outgrowing L3 somewhere between the sizes) from genuine
		// per-op scaling; the overall first-to-last ratio is kept last.
		for i := 1; i < len(report.CorePhases); i++ {
			report.P99Ratios = append(report.P99Ratios,
				pairRatio(report.CorePhases[i-1], report.CorePhases[i]))
		}
		if len(report.CorePhases) > 2 {
			report.P99Ratios = append(report.P99Ratios,
				pairRatio(report.CorePhases[0], report.CorePhases[len(report.CorePhases)-1]))
		}
	}
	if *trackerPop > 0 {
		log.Printf("tracker phase: %d nodes, %d churn ops over in-memory transport", *trackerPop, *trackerOps)
		tp, err := runTrackerPhase(*trackerPop, *trackerOps, *k, *d, *seed)
		if err != nil {
			log.Fatalf("tracker phase: %v", err)
		}
		report.Tracker = tp
	}
	if *tracePop > 0 {
		log.Printf("trace phase: %d receivers, loss=%v, full dissemination tracing", *tracePop, *traceLoss)
		tr, err := runTracePhase(*tracePop, *traceLoss, *seed)
		if err != nil {
			log.Fatalf("trace phase: %v", err)
		}
		report.Trace = tr
	}
	// The swarm phase writes its (possibly red) results into the report
	// before the run fails, so gate regressions still land in the JSON.
	var swarmErr error
	if *swarmPop > 0 {
		log.Printf("swarm phase: %d virtual nodes on %d shards, four scenario drills", *swarmPop, *swarmShards)
		report.Swarm, swarmErr = runSwarmPhase(*swarmPop, *swarmShards, *k, *d, *seed)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", raw)
	log.Printf("wrote %s", *out)
	if swarmErr != nil {
		log.Fatalf("swarm phase: %v", swarmErr)
	}
}

// Report is the BENCH_control.json schema.
type Report struct {
	Config     Config         `json:"config"`
	GoVersion  string         `json:"go_version"`
	CorePhases []CorePhase    `json:"core_phases"`
	P99Ratios  []P99Ratio     `json:"p99_ratios,omitempty"`
	Tracker    *TrackerReport `json:"tracker,omitempty"`
	Trace      *TraceReport   `json:"trace,omitempty"`
	Swarm      *SwarmReport   `json:"swarm,omitempty"`
}

// Config echoes the knobs the run used.
type Config struct {
	K    int    `json:"k"`
	D    int    `json:"d"`
	Mode string `json:"mode"`
	Seed int64  `json:"seed"`
	Ops  int    `json:"ops"`
	Rows []int  `json:"rows"`
}

// CorePhase is one population size's steady-state measurement.
type CorePhase struct {
	Rows         int     `json:"rows"`
	Ops          int     `json:"ops"`
	BuildSeconds float64 `json:"build_seconds"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	Hello        OpStats `json:"hello"`
	Goodbye      OpStats `json:"goodbye"`
	Repair       OpStats `json:"repair"`
	StateBytes   uint64  `json:"state_bytes"`
	BytesPerRow  float64 `json:"bytes_per_row"`
}

// OpStats summarises one op kind's latency samples.
type OpStats struct {
	Count    int   `json:"count"`
	P50Nanos int64 `json:"p50_ns"`
	P90Nanos int64 `json:"p90_ns"`
	P99Nanos int64 `json:"p99_ns"`
	MaxNanos int64 `json:"max_ns"`
}

// P99Ratio is the acceptance gate: tail latency of the larger population
// over the smaller. Flat (≤2x) means per-op cost no longer scales with N.
type P99Ratio struct {
	RowsLow  int     `json:"rows_low"`
	RowsHigh int     `json:"rows_high"`
	Hello    float64 `json:"hello"`
	Goodbye  float64 `json:"goodbye"`
	Repair   float64 `json:"repair"`
}

// TrackerReport is the live-tracker phase: real frames, batched admission.
type TrackerReport struct {
	Nodes           int     `json:"nodes"`
	JoinOpsPerSec   float64 `json:"join_ops_per_sec"`
	ChurnOps        int     `json:"churn_ops"`
	ChurnOpsPerSec  float64 `json:"churn_ops_per_sec"`
	HelloMeanNanos  float64 `json:"hello_mean_ns"`
	GoodbyeMeanNano float64 `json:"goodbye_mean_ns"`
	BatchCount      uint64  `json:"admit_batches"`
	BatchMeanSize   float64 `json:"admit_batch_mean"`
}

func ratio(hi, lo int64) float64 {
	if lo <= 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

func (s *OpStats) fill(samples []int64) {
	s.Count = len(samples)
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	s.P50Nanos = q(0.50)
	s.P90Nanos = q(0.90)
	s.P99Nanos = q(0.99)
	s.MaxNanos = samples[len(samples)-1]
}

// heapBytes returns the live heap after a forced collection.
func heapBytes() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// runCorePhase grows a curtain to n rows, then runs a steady-state mix of
// 40% hello / 40% good-bye / 20% fail+repair at stable population,
// timing every operation.
func runCorePhase(n, ops, k, d int, seed int64, mode core.InsertMode, checkEvery int) CorePhase {
	before := heapBytes()
	c, err := core.New(k, d, rand.New(rand.NewSource(seed)), core.WithInsertMode(mode))
	if err != nil {
		log.Fatal(err)
	}
	alive := make([]core.NodeID, 0, n+1)
	buildStart := time.Now()
	for i := 0; i < n; i++ {
		alive = append(alive, c.Join())
	}
	build := time.Since(buildStart)
	state := heapBytes() - before

	wl := rand.New(rand.NewSource(seed ^ 0x5ca1e))
	hello := make([]int64, 0, ops/2)
	goodbye := make([]int64, 0, ops/2)
	repair := make([]int64, 0, ops/4)
	// pick removes and returns a random live id in O(1) (order-free
	// swap-remove; the curtain itself maintains row order).
	pick := func() core.NodeID {
		i := wl.Intn(len(alive))
		id := alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		return id
	}
	// doOp runs one random membership op, recording its latency when asked.
	doOp := func(op int, record bool) {
		switch r := wl.Intn(100); {
		case r < 40 || len(alive) == 0: // hello
			t0 := time.Now()
			id := c.Join()
			if record {
				hello = append(hello, int64(time.Since(t0)))
			}
			alive = append(alive, id)
		case r < 80: // good-bye
			id := pick()
			t0 := time.Now()
			if err := c.Leave(id); err != nil {
				log.Fatalf("leave: %v", err)
			}
			if record {
				goodbye = append(goodbye, int64(time.Since(t0)))
			}
		default: // failure + repair
			id := pick()
			t0 := time.Now()
			if err := c.Fail(id); err != nil {
				log.Fatalf("fail: %v", err)
			}
			if err := c.Repair(id); err != nil {
				log.Fatalf("repair: %v", err)
			}
			if record {
				repair = append(repair, int64(time.Since(t0)))
			}
		}
		if checkEvery > 0 && op%checkEvery == 0 {
			if err := c.CheckInvariants(); err != nil {
				log.Fatalf("invariants after op %d: %v", op, err)
			}
		}
	}
	// The measured loop runs with the collector off, from a freshly marked
	// heap: a concurrent mark cycle over hundreds of MB of live rows lands
	// in the sampled op tails (on a single-core runner it preempts the
	// mutator outright) and records the collector, not the matrix
	// transaction under test. The churn mix allocates far less than the
	// live set, so the pause costs memory, not fidelity. A short unrecorded
	// warmup lets the allocator and caches reach steady state first.
	runtime.GC()
	oldGC := debug.SetGCPercent(-1)
	warmup := ops / 10
	if warmup > 100_000 {
		warmup = 100_000
	}
	for op := 0; op < warmup; op++ {
		doOp(op, false)
	}
	start := time.Now()
	for op := 0; op < ops; op++ {
		doOp(op, true)
	}
	elapsed := time.Since(start)
	debug.SetGCPercent(oldGC)

	p := CorePhase{
		Rows:         n,
		Ops:          ops,
		BuildSeconds: build.Seconds(),
		OpsPerSec:    float64(ops) / elapsed.Seconds(),
		StateBytes:   state,
		BytesPerRow:  float64(state) / float64(n),
	}
	p.Hello.fill(hello)
	p.Goodbye.fill(goodbye)
	p.Repair.fill(repair)
	if err := c.CheckInvariants(); err != nil {
		log.Fatalf("invariants after phase: %v", err)
	}
	return p
}

// joined is one admission observed by a node's drainer goroutine.
type joined struct {
	addr string
	id   uint64
}

// runTrackerPhase drives a live tracker over the in-memory transport.
// Every synthetic node has its own endpoint and sends its own hellos and
// good-byes, exactly like real clients, so welcomes and acks ride each
// node's private outbox (the control plane's per-peer queues) instead of
// funneling through one bottleneck address. A drainer goroutine per node
// consumes redirects and surfaces welcomes/acks to the coordinator. All
// frames are real wire frames through Run's batched-admission loop.
func runTrackerPhase(pop, ops, k, d int, seed int64) (*TrackerReport, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewNetwork()
	defer net.Close()

	trackerEp, err := net.Endpoint("tracker")
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	tracker, err := protocol.NewTracker(trackerEp, nil, protocol.TrackerConfig{
		K: k, D: d, Seed: seed,
		Session: protocol.SessionParams{FieldBits: 8, GenSize: 8, PacketSize: 64, ContentLen: 512},
		Obs:     obs.NewTrackerMetrics(reg),
	})
	if err != nil {
		return nil, err
	}
	go tracker.Run(ctx)

	// joinedCh carries admissions (welcome received at the node), freed
	// carries addresses whose good-bye was acked and may re-join.
	joinedCh := make(chan joined, pop)
	freed := make(chan string, pop)
	var acks atomic.Int64
	eps := make(map[string]transport.Endpoint, pop)
	for i := 0; i < pop; i++ {
		addr := fmt.Sprintf("n%d", i)
		ep, err := net.Endpoint(addr)
		if err != nil {
			return nil, err
		}
		eps[addr] = ep
		go func(addr string, ep transport.Endpoint) {
			for {
				_, frame, err := ep.Recv(ctx)
				if err != nil {
					return
				}
				typ, payload, err := protocol.DecodeControl(frame)
				if err != nil {
					continue
				}
				switch typ {
				case protocol.MsgWelcome:
					var w protocol.Welcome
					if json.Unmarshal(payload, &w) == nil {
						select {
						case joinedCh <- joined{addr: addr, id: w.ID}:
						case <-ctx.Done():
							return
						}
					}
				case protocol.MsgGoodbyeAck:
					acks.Add(1)
					select {
					case freed <- addr:
					case <-ctx.Done():
						return
					}
				}
			}
		}(addr, ep)
	}

	sendFrom := func(addr string, typ protocol.MsgType, payload interface{}) error {
		frame, err := protocol.EncodeControl(typ, payload)
		if err != nil {
			return err
		}
		return eps[addr].Send(ctx, "tracker", frame)
	}

	// Phase A: admit the whole population.
	joinStart := time.Now()
	ids := make(map[string]uint64, pop)
	admitted := make([]string, 0, pop)
	for i := 0; i < pop; i++ {
		addr := fmt.Sprintf("n%d", i)
		if err := sendFrom(addr, protocol.MsgHello, protocol.Hello{Addr: addr}); err != nil {
			return nil, err
		}
	}
	for len(ids) < pop {
		select {
		case j := <-joinedCh:
			ids[j.addr] = j.id
			admitted = append(admitted, j.addr)
		case <-time.After(60 * time.Second):
			return nil, fmt.Errorf("join phase stalled at %d/%d", len(ids), pop)
		}
	}
	joinElapsed := time.Since(joinStart)

	// Phase B: churn — alternate good-bye of a random admitted node and a
	// re-join on an address freed by an acked good-bye.
	wl := rand.New(rand.NewSource(seed ^ 0xc412))
	churnStart := time.Now()
	goodbyes, hellos := 0, 0
	for op := 0; op < ops; op++ {
		drainJoins(joinedCh, ids, &admitted)
		if op%2 == 0 && len(admitted) > 0 {
			i := wl.Intn(len(admitted))
			addr := admitted[i]
			admitted[i] = admitted[len(admitted)-1]
			admitted = admitted[:len(admitted)-1]
			if err := sendFrom(addr, protocol.MsgGoodbye, protocol.Goodbye{ID: ids[addr]}); err != nil {
				return nil, err
			}
			delete(ids, addr)
			goodbyes++
		} else {
			var addr string
			select {
			case addr = <-freed:
			case <-time.After(30 * time.Second):
				return nil, fmt.Errorf("churn stalled waiting for a freed address at op %d", op)
			}
			if err := sendFrom(addr, protocol.MsgHello, protocol.Hello{Addr: addr}); err != nil {
				return nil, err
			}
			hellos++
		}
	}
	// Drain: every good-bye acked, every hello welcomed.
	deadline := time.Now().Add(60 * time.Second)
	for int(acks.Load()) < goodbyes || len(ids) < pop-goodbyes+hellos {
		drainJoins(joinedCh, ids, &admitted)
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("churn drain stalled: %d/%d acks, %d/%d ids",
				acks.Load(), goodbyes, len(ids), pop-goodbyes+hellos)
		}
		time.Sleep(200 * time.Microsecond)
	}
	churnElapsed := time.Since(churnStart)

	if err := tracker.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("tracker invariants after churn: %w", err)
	}

	rep := &TrackerReport{
		Nodes:          pop,
		JoinOpsPerSec:  float64(pop) / joinElapsed.Seconds(),
		ChurnOps:       goodbyes + hellos,
		ChurnOpsPerSec: float64(goodbyes+hellos) / churnElapsed.Seconds(),
	}
	for _, p := range reg.Snapshot() {
		switch p.Name {
		case "ncast_tracker_hello_nanos":
			if p.Count > 0 {
				rep.HelloMeanNanos = p.Sum / float64(p.Count)
			}
		case "ncast_tracker_goodbye_nanos":
			if p.Count > 0 {
				rep.GoodbyeMeanNano = p.Sum / float64(p.Count)
			}
		case "ncast_tracker_admit_batch_size":
			rep.BatchCount = p.Count
			if p.Count > 0 {
				rep.BatchMeanSize = p.Sum / float64(p.Count)
			}
		}
	}
	return rep, nil
}

// TraceReport is the dissemination-trace phase: a real coded broadcast
// with every generation traced, reporting how deep the overlay's forwarding
// tree actually ran and how innovation decayed per hop.
type TraceReport struct {
	Nodes              int              `json:"nodes"`
	Loss               float64          `json:"loss"`
	SampledGenerations int              `json:"sampled_generations"`
	MaxHopDepth        int              `json:"max_hop_depth"`
	WorstPathNanos     int64            `json:"worst_path_ns,omitempty"`
	HopDepthDist       []obs.TraceDepth `json:"hop_depth_dist"`
}

// runTracePhase runs a small in-process broadcast with dissemination
// tracing on every generation and records the fleet hop-depth distribution.
func runTracePhase(nodes int, loss float64, seed int64) (*TraceReport, error) {
	content := make([]byte, 64<<10)
	rand.New(rand.NewSource(seed)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 8, 2 // narrow curtain so the overlay grows real depth
	cfg.Seed = seed
	cfg.TraceRate = 1
	cfg.StatsInterval = 200 * time.Millisecond
	cfg.ComplaintTimeout = 300 * time.Millisecond

	opts := []ncast.SessionOption{ncast.WithNetworkSeed(seed)}
	if loss > 0 {
		opts = append(opts, ncast.WithLoss(loss))
	}
	sess, err := ncast.NewSession(content, cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	clients := make([]*ncast.Client, 0, nodes)
	for i := 0; i < nodes; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			return nil, err
		}
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			return nil, fmt.Errorf("trace phase node %d incomplete at %.1f%%: %w", i, 100*c.Progress(), err)
		}
	}
	// Hop spans ride the periodic stats reports; poll until multi-hop
	// structure shows up (or the deadline passes).
	snap := sess.TraceSnapshot()
	for (snap.SampledGenerations == 0 || snap.MaxHopDepth < 2) && ctx.Err() == nil {
		time.Sleep(100 * time.Millisecond)
		snap = sess.TraceSnapshot()
	}
	rep := &TraceReport{
		Nodes:              nodes,
		Loss:               loss,
		SampledGenerations: snap.SampledGenerations,
		MaxHopDepth:        snap.MaxHopDepth,
		HopDepthDist:       snap.Depths,
	}
	for _, g := range snap.Generations {
		if g.WorstPathNanos > rep.WorstPathNanos {
			rep.WorstPathNanos = g.WorstPathNanos
		}
	}
	return rep, nil
}

// drainJoins consumes any queued admissions without blocking.
func drainJoins(ch <-chan joined, ids map[string]uint64, admitted *[]string) {
	for {
		select {
		case j := <-ch:
			ids[j.addr] = j.id
			*admitted = append(*admitted, j.addr)
		default:
			return
		}
	}
}
