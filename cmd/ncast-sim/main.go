// Command ncast-sim drives a curtain overlay through the §4 churn process
// and reports overlay health over time: population, failures in flight,
// normalized defect b = B/A, and working-node connectivity.
//
// Usage:
//
//	ncast-sim -k 24 -d 2 -p 0.02 -steps 5000 -report 500
//	ncast-sim -k 16 -d 4 -p 0.05 -repair 200 -max 1000 -insert random
//	ncast-sim -mode gossip -k 16 -d 2 -p 0.03 -steps 2000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/gossip"
	"ncast/internal/metrics"
	"ncast/internal/obs"
	"ncast/internal/sim"
)

func main() {
	k := flag.Int("k", 24, "server threads")
	d := flag.Int("d", 2, "node degree")
	p := flag.Float64("p", 0.02, "per-arrival failure probability")
	steps := flag.Int("steps", 5000, "arrivals to simulate")
	report := flag.Int("report", 500, "report interval in steps")
	repair := flag.Int("repair", 0, "repair delay in steps (0 = no repairs)")
	maxNodes := flag.Int("max", 0, "population cap via graceful leaves (0 = unbounded)")
	insert := flag.String("insert", "append", "row insertion: append or random")
	mode := flag.String("mode", "curtain", "overlay: curtain (central) or gossip (tracker-free)")
	samples := flag.Int("samples", 200, "defect tuples sampled per report (0 = exact)")
	snapshots := flag.Bool("snapshots", false, "also print an overlay-health JSON snapshot at each report step (curtain mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	insertMode := core.InsertAppend
	switch *insert {
	case "append":
	case "random":
		insertMode = core.InsertRandom
	default:
		fmt.Fprintf(os.Stderr, "unknown insert mode %q\n", *insert)
		os.Exit(2)
	}

	if *mode == "gossip" {
		runGossip(*k, *d, *p, *steps, *report, *seed)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	curtain, err := core.New(*k, *d, rng, core.WithInsertMode(insertMode))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	churn, err := sim.NewChurn(curtain, sim.ChurnConfig{
		P:           *p,
		RepairDelay: *repair,
		MaxNodes:    *maxNodes,
	}, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	table := metrics.NewTable(
		fmt.Sprintf("churn: k=%d d=%d p=%v repair=%d cap=%d insert=%s",
			*k, *d, *p, *repair, *maxNodes, *insert),
		"step", "nodes", "failed", "b=B/A", "P(defective)", "frac(conn=d)", "min conn")
	for s := 1; s <= *steps; s++ {
		churn.Advance()
		if s%*report != 0 && s != *steps {
			continue
		}
		top := curtain.Snapshot()
		m, err := defect.NewMeasurer(top, *d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var dres defect.Result
		if *samples == 0 || float64(*samples) >= defect.Binomial(*k, *d) {
			dres, err = m.Exact()
		} else {
			dres, err = m.Sample(*samples, rng)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn := sim.MeasureConnectivity(top)
		fullFrac := 0.0
		if conn.Working > 0 {
			fullFrac = float64(conn.FullCount) / float64(conn.Working)
		}
		table.AddRow(s, curtain.NumNodes(), curtain.NumFailed(),
			dres.NormalizedDefect(), dres.FractionDefective(), fullFrac, conn.MinConn)
		if *snapshots {
			printHealth(curtain, *k, *d, s)
		}
	}
	fmt.Print(table)
	fmt.Printf("reference p*d = %v\n", *p*float64(*d))
}

// printHealth emits the curtain's state as an obs.OverlayHealth JSON line,
// the same schema the live /debug/overlay endpoint serves.
func printHealth(curtain *core.Curtain, k, d, step int) {
	h := obs.OverlayHealth{
		K:             k,
		DefaultDegree: d,
		Nodes:         curtain.NumNodes(),
		Failed:        curtain.NumFailed(),
		DegreeDist:    make(map[int]int),
	}
	for _, id := range curtain.Nodes() {
		if deg, err := curtain.Degree(id); err == nil {
			h.DegreeDist[deg]++
		}
	}
	for _, id := range curtain.HangingThreads() {
		if id == core.ServerID {
			h.EmptyThreads++
		}
	}
	out, err := json.Marshal(struct {
		Step int `json:"step"`
		obs.OverlayHealth
	}{Step: step, OverlayHealth: h})
	if err != nil {
		return
	}
	fmt.Printf("snapshot %s\n", out)
}

// runGossip drives the tracker-free overlay (§7): joins with view-guided
// attachment, iid failures, shuffles, and purely local repair.
func runGossip(k, d int, p float64, steps, report int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g, err := gossip.New(gossip.DefaultConfig(k, d), rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table := metrics.NewTable(
		fmt.Sprintf("gossip churn: k=%d d=%d p=%v", k, d, p),
		"step", "peers", "rehomed", "view CV", "frac connected", "max depth")
	var ids []core.NodeID
	for s := 1; s <= steps; s++ {
		ids = append(ids, g.Join())
		if rng.Float64() < p {
			live := ids[rng.Intn(len(ids))]
			if g.Contains(live) && !g.IsFailed(live) {
				if err := g.Fail(live); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		rehomed := 0
		if s%10 == 0 {
			g.Shuffle()
			rehomed = g.RepairAll()
		}
		if s%report != 0 && s != steps {
			continue
		}
		top := g.Snapshot()
		conns := defect.NodeConnectivity(top, 1)
		connected, working := 0, 0
		for gi := 1; gi < top.Graph.NumNodes(); gi++ {
			if !top.Working[gi] {
				continue
			}
			working++
			if conns[gi] >= 1 {
				connected++
			}
		}
		frac := 0.0
		if working > 0 {
			frac = float64(connected) / float64(working)
		}
		depths := top.Graph.Depths(0)
		maxDepth := 0
		for _, dd := range depths {
			if dd > maxDepth {
				maxDepth = dd
			}
		}
		table.AddRow(s, g.NumPeers(), rehomed, g.ViewUniformity(), frac, maxDepth)
	}
	fmt.Print(table)
}
