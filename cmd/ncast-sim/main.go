// Command ncast-sim drives a curtain overlay through the §4 churn process
// and reports overlay health over time: population, failures in flight,
// normalized defect b = B/A, and working-node connectivity. In broadcast
// mode it instead runs a real in-process coded broadcast and can record
// every generation-lifecycle transition as JSONL.
//
// Usage:
//
//	ncast-sim -k 24 -d 2 -p 0.02 -steps 5000 -report 500
//	ncast-sim -k 16 -d 4 -p 0.05 -repair 200 -max 1000 -insert random
//	ncast-sim -mode gossip -k 16 -d 2 -p 0.03 -steps 2000
//	ncast-sim -mode broadcast -nodes 6 -bytes 65536 -loss 0.05 -timeline out.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"ncast"
	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/gossip"
	"ncast/internal/metrics"
	"ncast/internal/obs"
	"ncast/internal/sim"
)

func main() {
	k := flag.Int("k", 24, "server threads")
	d := flag.Int("d", 2, "node degree")
	p := flag.Float64("p", 0.02, "per-arrival failure probability")
	steps := flag.Int("steps", 5000, "arrivals to simulate")
	report := flag.Int("report", 500, "report interval in steps")
	repair := flag.Int("repair", 0, "repair delay in steps (0 = no repairs)")
	maxNodes := flag.Int("max", 0, "population cap via graceful leaves (0 = unbounded)")
	insert := flag.String("insert", "append", "row insertion: append or random")
	mode := flag.String("mode", "curtain", "overlay: curtain (central), gossip (tracker-free), or broadcast (real coded data plane)")
	nodes := flag.Int("nodes", 6, "broadcast mode: receiver count")
	bytesFlag := flag.Int("bytes", 65536, "broadcast mode: content size")
	loss := flag.Float64("loss", 0, "broadcast mode: per-frame loss probability")
	datagram := flag.Bool("datagram", false, "broadcast mode: split planes — loss hits only the datagram data fabric, control stays reliable")
	timeline := flag.String("timeline", "", "broadcast mode: write generation-lifecycle events as JSONL to this file (\"-\" = stdout)")
	trace := flag.String("trace", "", "broadcast mode: trace every generation and write assembled dissemination trees as JSONL to this file (\"-\" = stdout)")
	waitFor := flag.Duration("wait", 2*time.Minute, "broadcast mode: completion deadline")
	samples := flag.Int("samples", 200, "defect tuples sampled per report (0 = exact)")
	snapshots := flag.Bool("snapshots", false, "also print an overlay-health JSON snapshot at each report step (curtain mode)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	insertMode := core.InsertAppend
	switch *insert {
	case "append":
	case "random":
		insertMode = core.InsertRandom
	default:
		fmt.Fprintf(os.Stderr, "unknown insert mode %q\n", *insert)
		os.Exit(2)
	}

	if *mode == "gossip" {
		runGossip(*k, *d, *p, *steps, *report, *seed)
		return
	}
	if *mode == "broadcast" {
		runBroadcast(*k, *d, *nodes, *bytesFlag, *loss, *datagram, *timeline, *trace, *waitFor, *seed)
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	curtain, err := core.New(*k, *d, rng, core.WithInsertMode(insertMode))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	churn, err := sim.NewChurn(curtain, sim.ChurnConfig{
		P:           *p,
		RepairDelay: *repair,
		MaxNodes:    *maxNodes,
	}, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	table := metrics.NewTable(
		fmt.Sprintf("churn: k=%d d=%d p=%v repair=%d cap=%d insert=%s",
			*k, *d, *p, *repair, *maxNodes, *insert),
		"step", "nodes", "failed", "b=B/A", "P(defective)", "frac(conn=d)", "min conn")
	for s := 1; s <= *steps; s++ {
		churn.Advance()
		if s%*report != 0 && s != *steps {
			continue
		}
		top := curtain.Snapshot()
		m, err := defect.NewMeasurer(top, *d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var dres defect.Result
		if *samples == 0 || float64(*samples) >= defect.Binomial(*k, *d) {
			dres, err = m.Exact()
		} else {
			dres, err = m.Sample(*samples, rng)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conn := sim.MeasureConnectivity(top)
		fullFrac := 0.0
		if conn.Working > 0 {
			fullFrac = float64(conn.FullCount) / float64(conn.Working)
		}
		table.AddRow(s, curtain.NumNodes(), curtain.NumFailed(),
			dres.NormalizedDefect(), dres.FractionDefective(), fullFrac, conn.MinConn)
		if *snapshots {
			printHealth(curtain, *k, *d, s)
		}
	}
	fmt.Print(table)
	fmt.Printf("reference p*d = %v\n", *p*float64(*d))
}

// printHealth emits the curtain's state as an obs.OverlayHealth JSON line,
// the same schema the live /debug/overlay endpoint serves.
func printHealth(curtain *core.Curtain, k, d, step int) {
	h := obs.OverlayHealth{
		K:             k,
		DefaultDegree: d,
		Nodes:         curtain.NumNodes(),
		Failed:        curtain.NumFailed(),
		DegreeDist:    make(map[int]int),
	}
	for _, id := range curtain.Nodes() {
		if deg, err := curtain.Degree(id); err == nil {
			h.DegreeDist[deg]++
		}
	}
	for _, id := range curtain.HangingThreads() {
		if id == core.ServerID {
			h.EmptyThreads++
		}
	}
	out, err := json.Marshal(struct {
		Step int `json:"step"`
		obs.OverlayHealth
	}{Step: step, OverlayHealth: h})
	if err != nil {
		return
	}
	fmt.Printf("snapshot %s\n", out)
}

// runBroadcast runs a real in-process coded broadcast (source + tracker +
// receivers over the in-memory fabric) and optionally records every
// generation-lifecycle transition — first packet, rank quartiles, decode
// with end-to-end delay — as one JSON line per event, and/or the assembled
// per-generation dissemination trees (one JSON line per traced generation).
func runBroadcast(k, d, nodes, size int, loss float64, datagram bool, timeline, trace string, wait time.Duration, seed int64) {
	content := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = k, d
	cfg.Seed = seed
	cfg.ComplaintTimeout = 300 * time.Millisecond
	cfg.StatsInterval = 250 * time.Millisecond
	if trace != "" {
		cfg.TraceRate = 1
		cfg.StatsInterval = 100 * time.Millisecond
	}
	if datagram {
		ncast.WithDatagramData()(&cfg)
	}

	var sessionOpts []ncast.SessionOption
	if loss > 0 {
		sessionOpts = append(sessionOpts, ncast.WithLoss(loss), ncast.WithNetworkSeed(seed))
	}
	var (
		out    *os.File
		outMu  sync.Mutex
		events int
	)
	if timeline != "" {
		if timeline == "-" {
			out = os.Stdout
		} else {
			f, err := os.Create(timeline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		sessionOpts = append(sessionOpts, ncast.WithGenEvents(func(ev ncast.GenEvent) {
			outMu.Lock()
			defer outMu.Unlock()
			events++
			_ = enc.Encode(ev) //nolint:errcheck // diagnostics stream
		}))
	}

	sess, err := ncast.NewSession(content, cfg, sessionOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sess.Close()

	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	clients := make([]*ncast.Client, 0, nodes)
	for i := 0; i < nodes; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		clients = append(clients, c)
	}
	start := time.Now()
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "node %d incomplete at %.1f%%: %v\n", i, 100*c.Progress(), err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	// Fast runs can finish before the first telemetry tick; wait until
	// every node's report has landed (or the deadline passes) so the fleet
	// summary below is populated.
	snap := sess.ClusterSnapshot()
	for len(snap.Nodes) < nodes && ctx.Err() == nil {
		time.Sleep(50 * time.Millisecond)
		snap = sess.ClusterSnapshot()
	}
	fmt.Printf("broadcast: %d nodes decoded %d bytes in %v (loss=%v)\n", nodes, size, elapsed.Round(time.Millisecond), loss)
	fmt.Printf("fleet decode delay p50=%v p90=%v p99=%v\n",
		time.Duration(snap.FleetDelayP50Nanos).Round(time.Microsecond),
		time.Duration(snap.FleetDelayP90Nanos).Round(time.Microsecond),
		time.Duration(snap.FleetDelayP99Nanos).Round(time.Microsecond))
	if timeline != "" {
		// One row per reported overlay link, after the lifecycle events, so
		// the lossy-peer drill is replayable offline: each line carries the
		// edge's loss estimate, RTT/jitter EWMAs, innovation rate and
		// goodput as the tracker last saw them.
		links := sess.LinkSnapshot()
		outMu.Lock()
		enc := json.NewEncoder(out)
		for _, e := range links.Edges {
			_ = enc.Encode(struct { //nolint:errcheck // diagnostics stream
				Kind string       `json:"kind"`
				Link obs.LinkEdge `json:"link"`
			}{Kind: "link", Link: e})
		}
		n := events
		outMu.Unlock()
		fmt.Printf("timeline: %d lifecycle events, %d link rows\n", n, len(links.Edges))
	}
	if trace != "" {
		dumpTrace(ctx, sess, trace)
	}
}

// dumpTrace waits for per-node hop reports to reach the tracker, then
// writes every assembled dissemination tree as one JSON line and prints
// the fleet hop-depth distribution.
func dumpTrace(ctx context.Context, sess *ncast.Session, path string) {
	// Hop spans ride the periodic stats reports, so the assembled view
	// lags the broadcast: poll until multi-hop structure appears (any
	// overlay deeper than the source's direct children) or the deadline.
	snap := sess.TraceSnapshot()
	for (snap.SampledGenerations == 0 || snap.MaxHopDepth < 2) && ctx.Err() == nil {
		time.Sleep(100 * time.Millisecond)
		snap = sess.TraceSnapshot()
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	for _, g := range snap.Generations {
		_ = enc.Encode(g) //nolint:errcheck // diagnostics stream
	}
	fmt.Printf("trace: %d generations assembled, max hop depth %d\n",
		snap.SampledGenerations, snap.MaxHopDepth)
	for _, lvl := range snap.Depths {
		fmt.Printf("  depth %d: %d nodes, %d pkts, innovation %d‰",
			lvl.Depth, lvl.Nodes, lvl.Received, lvl.InnovationPermille)
		if lvl.MeanHopLatencyNanos > 0 {
			fmt.Printf(", per-hop latency %v", time.Duration(lvl.MeanHopLatencyNanos).Round(time.Microsecond))
		}
		fmt.Println()
	}
}

// runGossip drives the tracker-free overlay (§7): joins with view-guided
// attachment, iid failures, shuffles, and purely local repair.
func runGossip(k, d int, p float64, steps, report int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g, err := gossip.New(gossip.DefaultConfig(k, d), rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table := metrics.NewTable(
		fmt.Sprintf("gossip churn: k=%d d=%d p=%v", k, d, p),
		"step", "peers", "rehomed", "view CV", "frac connected", "max depth")
	var ids []core.NodeID
	for s := 1; s <= steps; s++ {
		ids = append(ids, g.Join())
		if rng.Float64() < p {
			live := ids[rng.Intn(len(ids))]
			if g.Contains(live) && !g.IsFailed(live) {
				if err := g.Fail(live); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		rehomed := 0
		if s%10 == 0 {
			g.Shuffle()
			rehomed = g.RepairAll()
		}
		if s%report != 0 && s != steps {
			continue
		}
		top := g.Snapshot()
		conns := defect.NodeConnectivity(top, 1)
		connected, working := 0, 0
		for gi := 1; gi < top.Graph.NumNodes(); gi++ {
			if !top.Working[gi] {
				continue
			}
			working++
			if conns[gi] >= 1 {
				connected++
			}
		}
		frac := 0.0
		if working > 0 {
			frac = float64(connected) / float64(working)
		}
		depths := top.Graph.Depths(0)
		maxDepth := 0
		for _, dd := range depths {
			if dd > maxDepth {
				maxDepth = dd
			}
		}
		table.AddRow(s, g.NumPeers(), rehomed, g.ViewUniformity(), frac, maxDepth)
	}
	fmt.Print(table)
}
