# Developer checks. `make check` is the gate every change should pass.

GO ?= go
RACE_PKGS := ./internal/obs ./internal/protocol ./internal/transport

.PHONY: check build vet fmt test race bench

check: vet fmt build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (atomics in obs, the tracker
# and node state machines, both transports).
race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test . -run NONE -bench . -benchmem
