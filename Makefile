# Developer checks. `make check` is the gate every change should pass.

GO ?= go
RACE_PKGS := ./internal/core ./internal/obs ./internal/protocol ./internal/rlnc ./internal/swarm ./internal/transport
# Packages with build-tag-gated accelerated kernels; purego forces the
# scalar reference implementations so both dispatch arms stay tested.
PUREGO_PKGS := ./internal/gf/... ./internal/rlnc/...

.PHONY: check build crossbuild vet fmt lint test purego race churn lossy fuzz allocguard bench-gate swarm scale bench

check: vet fmt lint build crossbuild test purego race churn lossy fuzz allocguard bench-gate swarm

build:
	$(GO) build ./...

# The arm64 NEON kernels have no execution leg in CI; cross-compiling
# keeps the assembly and its dispatch glue at least building on every
# change.
crossbuild:
	GOARCH=arm64 $(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Metric naming contract: every exported series matches ^ncast_[a-z0-9_]+$.
lint:
	$(GO) test -run 'TestMetricNameLint|TestSessionMetricNames' .

test:
	$(GO) test ./...

purego:
	$(GO) test -tags purego $(PUREGO_PKGS)

# Race-check the concurrency-heavy packages (atomics in obs, the tracker
# and node state machines, the parallel decoder, both transports).
race:
	$(GO) test -race $(RACE_PKGS)

# Control-plane fault-tolerance suite under the race detector: lease
# sweep of crashed leaves, outbox behavior behind stalled peers, churn
# over the fault-injection transport, and the send-deadline regression.
churn:
	$(GO) test -race -run 'Churn|Lease|Stalled|Faulty|Goodbye|SendDeadline|LeafCrash|Telemetry|Timeline|ClusterSnapshot|TraceLive' ./internal/protocol ./internal/transport .

# Datagram-plane suite under the race detector: the UDP endpoint and its
# batched I/O, same-port dual-plane binding, the end-to-end broadcasts
# that run at 5% injected datagram loss (the loss-as-normal regime), and
# the link-telemetry drill that must localize a 10%-lossy peer to ±3pp.
lossy:
	$(GO) test -race -run 'UDP|SamePort|Dual|Datagram|SplitSender|Lossy|Link' ./internal/transport ./internal/protocol ./internal/obs .

# Short deterministic fuzz budgets over the wire decoders and the stream
# framing; go's fuzzer accepts one -fuzz pattern per invocation, so each
# target runs alone.
fuzz:
	$(GO) test ./internal/protocol -run xxx -fuzz FuzzDecodeControl -fuzztime 10s
	$(GO) test ./internal/protocol -run xxx -fuzz FuzzDecodeData -fuzztime 10s
	$(GO) test ./internal/protocol -run xxx -fuzz FuzzDecodeKeepalive -fuzztime 5s
	$(GO) test ./internal/transport -run xxx -fuzz FuzzSplitSender -fuzztime 5s

# Allocation guards: with sampling off, the traced emit/receive hot path
# must allocate nothing beyond the untraced baseline, and the decode
# steady state (redundant packets, systematic installs) must be
# zero-alloc.
allocguard:
	$(GO) test ./internal/protocol -run TestTracedHotPathAllocs -count=1
	$(GO) test ./internal/protocol -run TestLinkHotPathAllocs -count=1
	$(GO) test ./internal/rlnc -run TestDecodeHotPathAllocs -count=1

# Perf regression gate: emit paths stay zero-alloc and the parallel
# decoder beats serial at workers>=2 (the property the batch engine
# exists for).
bench-gate:
	$(GO) run ./cmd/ncast-perf -gate

# Swarm harness drill matrix under the race detector: 1000 virtual
# nodes walk all four hostile-world scenarios (flash crowd, churn with
# rejoin, heterogeneous fleet, adversarial batch failure) against a live
# tracker, plus the lifecycle/determinism/goroutine-footprint suite.
# The 100k-node version of the same drills is the bench path:
#   $(GO) run ./cmd/ncast-scale -o BENCH_control.json
swarm:
	$(GO) test -race -count=1 ./internal/swarm

# Control-plane capacity trajectory (quick shape: small populations).
# The committed BENCH_control.json comes from the full run:
#   $(GO) run ./cmd/ncast-scale -o BENCH_control.json
scale:
	$(GO) run ./cmd/ncast-scale -quick -o /dev/null

# Data-plane fast-path trajectory: kernel throughput, emit-path allocs,
# and serial-vs-parallel file decode, recorded in BENCH_rlnc.json.
bench:
	$(GO) run ./cmd/ncast-perf -o BENCH_rlnc.json
	$(GO) test . -run NONE -bench . -benchmem
