module ncast

go 1.22
