package ncast

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ncast/internal/obs"
)

// TestDatagramBroadcastWithLoss is the acceptance run for the split-plane
// transport through the public API: ListenAndServe and Dial with
// DatagramData put control on TCP and coded data on UDP sharing the port,
// while DataLoss drops 5% of outbound datagrams. The broadcast must
// complete anyway, and the per-kind metrics must show data actually
// flowed over UDP — and was actually lost there — rather than silently
// falling back to TCP.
func TestDatagramBroadcastWithLoss(t *testing.T) {
	t.Parallel()
	content := testContent(2000)
	cfg := testConfig()
	cfg.SourceInterval = time.Millisecond
	cfg.Seed = 42
	WithDatagramData()(&cfg)
	WithDataLoss(0.05)(&cfg)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	srv, err := ListenAndServe("127.0.0.1:0", content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var clients []*RemoteClient
	for i := 0; i < 3; i++ {
		c, err := Dial(ctx, srv.Addr(), "127.0.0.1:0", cfg, WithClientSeed(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, c.Progress())
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over datagram data plane")
		}
	}

	// The planes must be distinguishable in the scrape, and each must have
	// carried its own traffic: coded data over UDP, control over TCP.
	snap := srv.Snapshot()
	udp := obs.Label{Key: "transport", Value: "udp"}
	tcp := obs.Label{Key: "transport", Value: "tcp"}
	udpSent := snap.Metric("ncast_transport_frames_sent_total", udp)
	if udpSent == nil || udpSent.Value == 0 {
		t.Fatalf("no data frames sent over UDP: %+v", udpSent)
	}
	tcpSent := snap.Metric("ncast_transport_frames_sent_total", tcp)
	if tcpSent == nil || tcpSent.Value == 0 {
		t.Fatalf("no control frames sent over TCP: %+v", tcpSent)
	}
	// Injected loss lands on the UDP bundle (the chaos wrapper sits under
	// the instrumentation), proving data frames were genuinely dropped and
	// never retransmitted over TCP.
	udpDrops := snap.Metric("ncast_transport_frames_dropped_total", udp)
	if udpDrops == nil || udpDrops.Value == 0 {
		t.Fatalf("no injected datagram drops recorded: %+v", udpDrops)
	}
	// The hot path is vectorized: sends leave in coalesced batches.
	batch := snap.Metric("ncast_transport_send_batch_size", udp)
	if batch == nil || batch.Count == 0 {
		t.Fatalf("no batched sends observed: %+v", batch)
	}
}

// TestSessionDatagramMode exercises the in-memory analogue: with
// DatagramData the session runs two fabrics, and the loss knob applies
// only to the data fabric — control stays reliable, mirroring TCP+UDP.
func TestSessionDatagramMode(t *testing.T) {
	t.Parallel()
	content := testContent(1500)
	cfg := testConfig()
	WithDatagramData()(&cfg)
	s, err := NewSession(content, cfg, WithLoss(0.05), WithNetworkSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, c.Progress())
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch in lossy datagram session")
		}
	}
	// Both planes are labeled in the session registry.
	snap := s.Snapshot()
	if p := snap.Metric("ncast_transport_frames_sent_total", obs.Label{Key: "transport", Value: "data"}); p == nil || p.Value == 0 {
		t.Fatalf("no frames on the data fabric: %+v", p)
	}
	if p := snap.Metric("ncast_transport_frames_sent_total", obs.Label{Key: "transport", Value: "ctrl"}); p == nil || p.Value == 0 {
		t.Fatalf("no frames on the control fabric: %+v", p)
	}
}
