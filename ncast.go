// Package ncast is a peer-to-peer content broadcasting library built on
// randomized linear network coding, implementing the overlay construction
// of Jain, Lovász, and Chou, "Building Scalable and Robust Peer-to-Peer
// Overlay Networks for Broadcasting using Network Coding" (PODC 2005).
//
// A broadcast session consists of a Server — the paper's curtain rod: the
// tracker that owns the overlay matrix M plus the data source that emits k
// unit-bandwidth coded streams — and any number of Clients, each of which
// clips onto d random threads, re-mixes the packets it receives with
// random linear network coding, forwards one unit stream per thread, and
// decodes the content once it has gathered full rank.
//
// Two deployment styles are supported:
//
//   - In-process sessions (NewSession) over an in-memory message fabric
//     with configurable loss and latency — for simulations, tests, and
//     the examples/ programs.
//   - TCP sessions (ListenAndServe, Dial) — the same protocol over real
//     sockets, used by the cmd/ncast-server and cmd/ncast-node tools.
//
// The analysis-plane packages (overlay defect measurement, the experiment
// harness regenerating the paper's claims) live under internal/ and are
// exercised through cmd/ncast-bench and the repository's benchmarks.
package ncast

import (
	"errors"
	"fmt"
	"time"

	"ncast/internal/core"
	"ncast/internal/gf"
	"ncast/internal/protocol"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// Field selects the network-coding field.
type Field int

// Supported coding fields. GF256 is the practical default (near-zero
// decode waste at one byte per coefficient); GF2 is cheap but wasteful;
// GF65536 trades double coefficient overhead for marginally fewer
// non-innovative packets.
const (
	GF2 Field = iota + 1
	GF256
	GF65536
)

func (f Field) field() (gf.Field, error) {
	switch f {
	case GF2:
		return gf.F2, nil
	case GF256:
		return gf.F256, nil
	case GF65536:
		return gf.F65536, nil
	default:
		return nil, fmt.Errorf("ncast: unknown field %d", f)
	}
}

// InsertMode selects how the server places joining nodes in the overlay.
type InsertMode int

// InsertAppend is the paper's §3 scheme (new rows at the bottom);
// InsertRandom is the §5 hardening that makes coordinated adversarial
// arrivals no more harmful than random failures.
const (
	InsertAppend InsertMode = InsertMode(core.InsertAppend)
	InsertRandom InsertMode = InsertMode(core.InsertRandom)
)

// Config collects session parameters. The zero value is unusable; obtain
// defaults through the options on NewSession / ListenAndServe.
type Config struct {
	// K is the server's bandwidth in unit streams (threads).
	K int
	// D is the default node degree (incoming/outgoing unit streams).
	D int
	// Field is the coding field.
	Field Field
	// GenSize is the number of source packets per generation.
	GenSize int
	// PacketSize is the coded-packet payload size in bytes.
	PacketSize int
	// Insert selects append or random row insertion.
	Insert InsertMode
	// ComplaintTimeout is how long a client waits on a silent thread
	// before reporting the parent to the tracker.
	ComplaintTimeout time.Duration
	// LeaseTimeout enables server-side liveness leases: a node silent for
	// longer than this is presumed crashed and spliced out of the overlay
	// via the repair procedure. Complaints only detect failed nodes that
	// have children; the lease sweep is what reclaims a crashed bottom
	// clip (a node with no children) whose row would otherwise dangle
	// forever. Clients renew at a quarter of this timeout (announced in
	// the welcome), and any control message also renews. Zero disables.
	LeaseTimeout time.Duration
	// SendDeadline bounds each of the server's control-plane send
	// attempts so one stalled peer cannot clog overlay maintenance for
	// the rest. Zero means the 2-second default.
	SendDeadline time.Duration
	// Seed drives the server's randomness (thread assignment).
	Seed int64
	// SourceInterval throttles the source pump (0 = backpressure only).
	SourceInterval time.Duration
	// LayerWeights, when non-empty, enables §5 priority-layered
	// broadcasting: the content is split into len(LayerWeights) equal
	// priority layers, and the coded stream is weighted toward lower
	// layers so degraded receivers finish the base layer first.
	LayerWeights []float64
	// DisableObs turns runtime observability off: no metrics registry is
	// created and every layer runs uninstrumented (one nil check per hot
	// path). Snapshot then returns an empty snapshot.
	DisableObs bool
	// TraceCap sizes the observability trace-event ring (the diagnostic
	// replay window served at /debug/overlay). 0 means the obs default
	// (256 events); larger rings trade memory for a longer history.
	TraceCap int
	// StatsInterval, when positive, makes every node send the server one
	// compact telemetry report per interval (rank vector, decode-delay
	// quantiles, flow counters), which the server aggregates into the
	// ClusterSnapshot fleet view. Zero disables fleet telemetry.
	StatsInterval time.Duration
	// DecodeWorkers sets each client's decode worker pool size: packets
	// are sharded to workers by generation, so distinct generations run
	// their Gaussian elimination concurrently while each generation
	// stays single-threaded. 0 or 1 decodes inline on the receive loop;
	// values above 1 help multi-generation sessions on multi-core hosts.
	DecodeWorkers int
	// Systematic makes the source emit each generation's GenSize source
	// packets uncoded (flagged on the wire) before switching to random
	// coding. Receivers install such packets without any Gaussian
	// elimination, so on loss-free paths decode runs at copy speed and
	// only the repair tail pays field arithmetic. Ignored in layered
	// mode.
	Systematic bool
	// DatagramData splits the session's transport into two planes: control
	// messages (hello/goodbye/repair/stats/leases) stay on the reliable
	// transport, while coded data frames and keepalives move to lossy
	// datagrams (UDP for socket sessions, a second in-memory fabric for
	// NewSession). RLNC makes datagram loss harmless by construction, and
	// dropping TCP from the data path removes head-of-line blocking and
	// per-connection state — the paper's operating regime.
	DatagramData bool
	// MTU bounds one datagram's payload when DatagramData is set (0 means
	// the 1452-byte default). Validate rejects configurations whose
	// worst-case data frame cannot fit; see MaxPacketSize.
	MTU int
	// DataLoss, with DatagramData, injects seeded random loss on the data
	// plane (socket sessions; NewSession uses the fabric's own loss knob).
	// It exists so the loss-as-normal regime is reproducible in tests and
	// demos without a misbehaving network. Zero injects nothing.
	DataLoss float64
	// TraceRate enables dissemination tracing: the source samples roughly
	// one generation in TraceRate (1 = every generation) and stamps its
	// frames with a trace context that nodes propagate through recoding
	// and report to the server, which assembles per-generation hop trees
	// served at /debug/trace and summarized in ClusterSnapshot. 0 (the
	// default) disables sampling; the data path then emits the exact
	// frames it always did, at zero extra cost.
	TraceRate int
}

// DefaultConfig returns the baseline configuration: k=16 threads, degree
// d=4, GF(256), 16-packet generations of 1 KiB packets, append insertion.
func DefaultConfig() Config {
	return Config{
		K:                16,
		D:                4,
		Field:            GF256,
		GenSize:          16,
		PacketSize:       1024,
		Insert:           InsertAppend,
		ComplaintTimeout: 500 * time.Millisecond,
		LeaseTimeout:     2 * time.Second,
		SendDeadline:     2 * time.Second,
		Seed:             1,
		SourceInterval:   200 * time.Microsecond,
		StatsInterval:    time.Second,
		Systematic:       true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 || c.D <= 0 || c.D > c.K {
		return fmt.Errorf("ncast: invalid k=%d d=%d (need 0 < d <= k)", c.K, c.D)
	}
	f, err := c.Field.field()
	if err != nil {
		return err
	}
	params := rlnc.Params{Field: f, GenSize: c.GenSize, PacketSize: c.PacketSize}
	if err := params.Validate(); err != nil {
		return err
	}
	switch c.Insert {
	case InsertAppend, InsertRandom:
	default:
		return fmt.Errorf("ncast: invalid insert mode %d", c.Insert)
	}
	if len(c.LayerWeights) > 0 {
		lp := rlnc.LayeredParams{Params: params, Weights: c.LayerWeights}
		if err := lp.Validate(); err != nil {
			return err
		}
	}
	if c.DataLoss < 0 || c.DataLoss >= 1 {
		return fmt.Errorf("ncast: data loss %v outside [0,1)", c.DataLoss)
	}
	if c.DatagramData {
		if maxPkt := MaxPacketSize(c.mtu(), c.Field, c.GenSize); c.PacketSize > maxPkt {
			return fmt.Errorf("ncast: packet size %d exceeds %d, the largest fitting a %d-byte datagram (shrink packets or raise the MTU)",
				c.PacketSize, maxPkt, c.mtu())
		}
	}
	return nil
}

// mtu returns the effective datagram payload budget.
func (c Config) mtu() int {
	if c.MTU > 0 {
		return c.MTU
	}
	return transport.DefaultMTU
}

// senderPrefixBudget reserves datagram room for the transport's
// [4B len][sender addr] prefix: 4 bytes plus a host:port of up to 64
// characters (an IPv6 literal with brackets and port fits).
const senderPrefixBudget = 4 + 64

// MaxPacketSize returns the largest coded-packet payload whose worst-case
// data frame (traced header, packet header, coefficient vector, sender
// prefix) still fits one datagram of the given MTU, for a session over
// the given field and generation size. It returns 0 for an unknown field.
func MaxPacketSize(mtu int, field Field, genSize int) int {
	f, err := field.field()
	if err != nil {
		return 0
	}
	n := mtu - senderPrefixBudget - protocol.DataFrameOverhead(f, genSize)
	if n < 0 {
		return 0
	}
	return n
}

func (c Config) params() (rlnc.Params, error) {
	f, err := c.Field.field()
	if err != nil {
		return rlnc.Params{}, err
	}
	return rlnc.Params{Field: f, GenSize: c.GenSize, PacketSize: c.PacketSize}, nil
}

func (c Config) trackerConfig(session protocol.SessionParams) protocol.TrackerConfig {
	return protocol.TrackerConfig{
		K:             c.K,
		D:             c.D,
		Session:       session,
		InsertMode:    core.InsertMode(c.Insert),
		Seed:          c.Seed,
		LeaseTimeout:  c.LeaseTimeout,
		SendDeadline:  c.SendDeadline,
		StatsInterval: c.StatsInterval,
	}
}

// Option mutates a Config.
type Option func(*Config)

// WithKD sets the server thread count and default node degree.
func WithKD(k, d int) Option {
	return func(c *Config) { c.K, c.D = k, d }
}

// WithField selects the coding field.
func WithField(f Field) Option {
	return func(c *Config) { c.Field = f }
}

// WithGeneration sets the generation size (packets) and packet size
// (bytes).
func WithGeneration(genSize, packetSize int) Option {
	return func(c *Config) { c.GenSize, c.PacketSize = genSize, packetSize }
}

// WithInsertMode selects append (§3) or random (§5) row insertion.
func WithInsertMode(m InsertMode) Option {
	return func(c *Config) { c.Insert = m }
}

// WithComplaintTimeout tunes failure detection latency.
func WithComplaintTimeout(d time.Duration) Option {
	return func(c *Config) { c.ComplaintTimeout = d }
}

// WithLeaseTimeout tunes (or, with 0, disables) the server's liveness
// lease sweep — the detector for nodes that crash without a good-bye and
// have no children to complain about them.
func WithLeaseTimeout(d time.Duration) Option {
	return func(c *Config) { c.LeaseTimeout = d }
}

// WithSendDeadline bounds each server control-plane send attempt.
func WithSendDeadline(d time.Duration) Option {
	return func(c *Config) { c.SendDeadline = d }
}

// WithSeed makes the session deterministic.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithSourceInterval throttles the source pump.
func WithSourceInterval(d time.Duration) Option {
	return func(c *Config) { c.SourceInterval = d }
}

// WithLayers enables §5 priority-layered broadcasting with the given
// per-layer stream weights (base layer first).
func WithLayers(weights ...float64) Option {
	return func(c *Config) { c.LayerWeights = append([]float64(nil), weights...) }
}

// WithoutObservability disables the runtime metrics layer entirely.
func WithoutObservability() Option {
	return func(c *Config) { c.DisableObs = true }
}

// WithTraceCap sizes the trace-event ring (see Config.TraceCap).
func WithTraceCap(n int) Option {
	return func(c *Config) { c.TraceCap = n }
}

// WithStatsInterval sets (or, with 0, disables) the per-node telemetry
// reporting cadence behind the fleet ClusterSnapshot view.
func WithStatsInterval(d time.Duration) Option {
	return func(c *Config) { c.StatsInterval = d }
}

// WithDecodeWorkers sets the per-client decode worker pool size (see
// Config.DecodeWorkers).
func WithDecodeWorkers(n int) Option {
	return func(c *Config) { c.DecodeWorkers = n }
}

// WithTraceRate enables dissemination tracing at a 1-in-n generation
// sampling rate (see Config.TraceRate; 0 disables).
func WithTraceRate(n int) Option {
	return func(c *Config) { c.TraceRate = n }
}

// WithSystematic toggles systematic seeding: each generation's source
// packets are sent once uncoded before random coding begins (see
// Config.Systematic; on by default).
func WithSystematic(on bool) Option {
	return func(c *Config) { c.Systematic = on }
}

// WithDatagramData moves coded data frames and keepalives onto a lossy
// datagram data plane, keeping control traffic on the reliable transport
// (see Config.DatagramData). It also clamps the packet size to what the
// MTU admits, so the default configuration stays valid out of the box.
func WithDatagramData() Option {
	return func(c *Config) {
		c.DatagramData = true
		if maxPkt := MaxPacketSize(c.mtu(), c.Field, c.GenSize); maxPkt > 0 && c.PacketSize > maxPkt {
			c.PacketSize = maxPkt
		}
	}
}

// WithDatagramMTU sets the datagram payload budget (see Config.MTU) and
// re-clamps the packet size to fit it. Apply after WithGeneration and
// WithField so the clamp sees the final coding parameters.
func WithDatagramMTU(mtu int) Option {
	return func(c *Config) {
		c.MTU = mtu
		if maxPkt := MaxPacketSize(c.mtu(), c.Field, c.GenSize); maxPkt > 0 && c.PacketSize > maxPkt {
			c.PacketSize = maxPkt
		}
	}
}

// WithDataLoss injects seeded random loss on the datagram data plane of
// socket sessions (see Config.DataLoss).
func WithDataLoss(p float64) Option {
	return func(c *Config) { c.DataLoss = p }
}

// newSource builds the flat or layered data source for cfg.
func (c Config) newSource(ep sourceEndpoint, content []byte) (*protocol.Source, error) {
	params, err := c.params()
	if err != nil {
		return nil, err
	}
	if len(c.LayerWeights) > 0 {
		lp := rlnc.LayeredParams{Params: params, Weights: c.LayerWeights}
		return protocol.NewLayeredSource(ep, c.K, lp, content, c.Seed)
	}
	return protocol.NewSource(ep, c.K, params, content, c.Seed)
}

// ErrClosed is returned by operations on a closed session.
var ErrClosed = errors.New("ncast: closed")

// sourceEndpoint is the transport dependency of newSource, satisfied by
// both in-memory and TCP endpoints.
type sourceEndpoint = transport.Endpoint
