package ncast_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncast"
)

// Example broadcasts a small blob to three peers through the curtain
// overlay and verifies every peer decodes it bit-exactly.
func Example() {
	content := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 8, 2                 // 8 server streams, degree-2 peers
	cfg.GenSize, cfg.PacketSize = 8, 64 // small generations for the example

	session, err := ncast.NewSession(content, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	peers := make([]*ncast.Client, 0, 3)
	for i := 0; i < 3; i++ {
		peer, err := session.AddClient(ctx)
		if err != nil {
			log.Fatal(err)
		}
		peers = append(peers, peer)
	}
	for _, peer := range peers {
		if err := peer.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		got, err := peer.Content()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("decoded ok:", bytes.Equal(got, content))
	}
	// Output:
	// decoded ok: true
	// decoded ok: true
	// decoded ok: true
}

// ExampleConfig_layered shows §5 priority-layered broadcasting: the blob
// splits into two layers and a receiver reads the base layer on its own.
func ExampleConfig_layered() {
	content := make([]byte, 2048)
	rand.New(rand.NewSource(2)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 8, 2
	cfg.GenSize, cfg.PacketSize = 8, 64
	cfg.LayerWeights = []float64{3, 1} // base layer gets 3/4 of the stream

	session, err := ncast.NewSession(content, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	peer, err := session.AddClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := peer.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	base, err := peer.Layer(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layers:", peer.CompletedLayers())
	fmt.Println("base layer ok:", bytes.Equal(base, content[:1024]))
	// Output:
	// layers: 2
	// base layer ok: true
}
