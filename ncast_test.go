package ncast

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.K, cfg.D = 8, 2
	cfg.GenSize, cfg.PacketSize = 8, 64
	cfg.ComplaintTimeout = 200 * time.Millisecond
	return cfg
}

func testContent(n int) []byte {
	r := rand.New(rand.NewSource(7))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// waitFor polls cond until it holds or the timeout passes, then fails
// the test naming what never happened. The condition, not elapsed time,
// decides the outcome — the timeout only bounds a hung run.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			if cond() {
				return
			}
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(*Config) {}, false},
		{"zero k", func(c *Config) { c.K = 0 }, true},
		{"d above k", func(c *Config) { c.D = c.K + 1 }, true},
		{"bad field", func(c *Config) { c.Field = Field(99) }, true},
		{"zero gen", func(c *Config) { c.GenSize = 0 }, true},
		{"bad insert", func(c *Config) { c.Insert = InsertMode(42) }, true},
		{"gf2 ok", func(c *Config) { c.Field = GF2 }, false},
		{"gf65536 ok", func(c *Config) { c.Field = GF65536 }, false},
		{"random insert ok", func(c *Config) { c.Insert = InsertRandom }, false},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSessionBroadcast(t *testing.T) {
	t.Parallel()
	content := testContent(3000)
	s, err := NewSession(content, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var clients []*Client
	for i := 0; i < 6; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if s.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, c.Progress())
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("client %d content mismatch", i)
		}
		if c.Progress() != 1 {
			t.Fatalf("client %d progress = %v", i, c.Progress())
		}
		received, innovative := c.Stats()
		if received == 0 || innovative == 0 {
			t.Fatalf("client %d stats: %d/%d", i, received, innovative)
		}
	}
}

func TestSessionChurnLeaveAndCrash(t *testing.T) {
	t.Parallel()
	content := testContent(2000)
	s, err := NewSession(content, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()

	var clients []*Client
	for i := 0; i < 6; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	// One graceful leave, one crash.
	if err := clients[1].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	clients[2].Crash()
	// The rest still finish and the tracker population converges to 4.
	for _, i := range []int{0, 3, 4, 5} {
		if err := clients[i].Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, clients[i].Progress())
		}
		got, err := clients[i].Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("client %d content mismatch", i)
		}
	}
	waitFor(t, 10*time.Second, "population to converge to 4 after leave+crash repair", func() bool {
		return s.NumNodes() == 4
	})
}

func TestSessionLossyAndLatency(t *testing.T) {
	t.Parallel()
	content := testContent(1500)
	s, err := NewSession(content, testConfig(),
		WithLoss(0.05), WithLatency(time.Millisecond), WithNetworkSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over lossy fabric")
		}
	}
}

func TestSessionHeterogeneousDegrees(t *testing.T) {
	t.Parallel()
	content := testContent(1000)
	s, err := NewSession(content, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dsl, err := s.AddClient(ctx, WithDegree(2))
	if err != nil {
		t.Fatal(err)
	}
	t1, err := s.AddClient(ctx, WithDegree(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Client{dsl, t1} {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch")
		}
	}
	if _, err := s.AddClient(ctx, WithDegree(99)); err == nil {
		t.Fatal("degree beyond k accepted")
	}
}

func TestSessionRandomInsertMode(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.Insert = InsertRandom
	content := testContent(1200)
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 5; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch in random-insert session")
		}
	}
}

func TestSessionAddAfterClose(t *testing.T) {
	t.Parallel()
	s, err := NewSession(testContent(100), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddClient(context.Background()); err == nil {
		t.Fatal("AddClient after Close succeeded")
	}
	// Double close is fine.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerAndDialOverTCP(t *testing.T) {
	t.Parallel()
	content := testContent(2000)
	cfg := testConfig()
	cfg.SourceInterval = time.Millisecond
	srv, err := ListenAndServe("127.0.0.1:0", content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()
	var clients []*RemoteClient
	for i := 0; i < 3; i++ {
		c, err := Dial(ctx, srv.Addr(), "127.0.0.1:0", cfg, WithClientSeed(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	if srv.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", srv.NumNodes())
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, c.Progress())
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over TCP")
		}
	}
	// Graceful leave via the public API.
	if err := clients[0].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "census to drop to 2 after the leave", func() bool {
		return srv.NumNodes() == 2
	})
}

// TestSessionLeafCrashSwept exercises the public-API liveness path: a
// crashed client with no children is invisible to the complaint protocol,
// so only the tracker's lease sweep (DefaultConfig enables it) can
// reclaim its row.
func TestSessionLeafCrashSwept(t *testing.T) {
	t.Parallel()
	content := testContent(800)
	cfg := testConfig()
	cfg.LeaseTimeout = 500 * time.Millisecond
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	defer cancel()

	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	// The latest joiner holds the bottom row: a leaf with no children.
	clients[3].Crash()

	waitFor(t, 10*time.Second, "lease sweep to reclaim the crashed leaf", func() bool {
		return s.NumNodes() == 3
	})
	for i, c := range clients[:3] {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d: %v (progress %.2f)", i, err, c.Progress())
		}
	}
	if h := s.Snapshot().Overlay; h.Nodes != 3 || h.Failed != 0 {
		t.Fatalf("overlay health = %+v, want 3 live rows and no failures", h)
	}
}
