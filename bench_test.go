package ncast

// bench_test.go holds the reproduction benchmarks: one Benchmark per
// experiment E1–E15 (the paper's claims; see DESIGN.md for the index) plus
// end-to-end system benchmarks of the public API. Each experiment bench
// runs its reduced configuration once per iteration and reports the key
// measured figure via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates every table's headline numbers.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ncast/internal/sim"
)

func BenchmarkE1Connectivity(b *testing.B) {
	cfg := sim.DefaultE1Config()
	cfg.Sizes = []int{100, 400}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		frac := 0.0
		for _, row := range res.Rows {
			frac += row.FracFullConn
		}
		b.ReportMetric(frac/float64(len(res.Rows)), "fracFullConn")
	}
}

func BenchmarkE2Theorem4(b *testing.B) {
	cfg := sim.DefaultE2Config()
	cfg.Steps, cfg.BurnIn, cfg.Ps = 1500, 500, []float64{0.02}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Ratio, "E[B]/A÷pd")
	}
}

func BenchmarkE3Collapse(b *testing.B) {
	cfg := sim.DefaultE3Config()
	cfg.Ks, cfg.Trials, cfg.MaxSteps = []int{4, 6, 8}, 5, 5000
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Slope, "lnStepsSlope")
	}
}

func BenchmarkE4Lemma6(b *testing.B) {
	cfg := sim.DefaultE4Config()
	cfg.Steps = 200
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxJump)/res.Bound, "jump÷bound")
	}
}

func BenchmarkE5LeaveInvariance(b *testing.B) {
	cfg := sim.DefaultE5Config()
	cfg.Trials = 150
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KSDefect/res.Threshold, "KS÷threshold")
	}
}

func BenchmarkE6Locality(b *testing.B) {
	cfg := sim.DefaultE6Config()
	cfg.Sizes, cfg.Trials = []int{200, 800}, 3
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.PLoss, "P(loss)")
		b.ReportMetric(last.PLossNoParent, "P(loss|noParentFail)")
	}
}

func BenchmarkE7Throughput(b *testing.B) {
	cfg := sim.DefaultE7Config()
	cfg.N, cfg.Trials, cfg.Ps = 80, 8, []float64{0.1}
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Means["rlnc"], "rlncGoodput")
		b.ReportMetric(res.Rows[0].Means["chain"], "chainGoodput")
	}
}

func BenchmarkE8Adversarial(b *testing.B) {
	cfg := sim.DefaultE8Config()
	cfg.N, cfg.Trials = 200, 5
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		attack := res.Row("append/contiguous").MeanLossFrac
		defended := res.Row("random-insert/contiguous").MeanLossFrac
		if defended > 0 {
			b.ReportMetric(attack/defended, "attack÷defended")
		}
	}
}

func BenchmarkE9Delay(b *testing.B) {
	cfg := sim.DefaultE9Config()
	cfg.Sizes, cfg.Trials = []int{100, 400, 1600}, 2
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		if last.RandMax > 0 {
			b.ReportMetric(last.CurtainMax/last.RandMax, "curtain÷randDepth")
		}
	}
}

func BenchmarkE10DegreeSweep(b *testing.B) {
	cfg := sim.DefaultE10Config()
	cfg.Ds, cfg.Trials, cfg.N = []int{2, 8}, 4, 200
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if v := res.Rows[1].VarLoss; v > 0 {
			b.ReportMetric(res.Rows[0].VarLoss/v, "var(d=2)÷var(d=8)")
		}
	}
}

func BenchmarkE11Heterogeneous(b *testing.B) {
	cfg := sim.DefaultE11Config()
	cfg.Trials, cfg.N = 4, 200
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].DeliveredFrac, "dslDelivered")
		b.ReportMetric(res.Rows[1].DeliveredFrac, "t1Delivered")
	}
}

func BenchmarkE12FieldSize(b *testing.B) {
	cfg := sim.DefaultE12Config()
	cfg.GenSizes, cfg.Trials = []int{32}, 5
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Field == "GF(2)" {
				b.ReportMetric(row.MeanExtra, "gf2ExtraPkts")
			}
			if row.Field == "GF(256)" {
				b.ReportMetric(row.MeanExtra, "gf256ExtraPkts")
			}
		}
	}
}

func BenchmarkE13Congestion(b *testing.B) {
	cfg := sim.DefaultE13Config()
	cfg.Trials, cfg.N = 4, 100
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Phase("recovered").NodeConn, "recoveredConn")
	}
}

func BenchmarkE14Conjecture(b *testing.B) {
	cfg := sim.DefaultE14Config()
	cfg.N, cfg.Trials = 300, 3
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) > 1 && res.Rows[1].PParents > 0 {
			b.ReportMetric(res.Rows[1].Ratio, "κ=1ratio")
		}
	}
}

func BenchmarkE15Gossip(b *testing.B) {
	cfg := sim.DefaultE15Config()
	cfg.N, cfg.Trials = 200, 3
	for i := 0; i < b.N; i++ {
		res, err := sim.RunE15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Row("gossip"); row != nil {
			b.ReportMetric(row.FracConnected, "gossipConnected")
		}
	}
}

// BenchmarkObsOverhead compares an in-memory download with observability
// enabled against the same download with DisableObs, isolating the cost of
// the instrumentation (atomic counters plus a few clock reads per packet).
// Compare the two sub-benchmark ns/op figures; the acceptance budget for
// the obs layer is 5%.
func BenchmarkObsOverhead(b *testing.B) {
	content := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(content)
	run := func(b *testing.B, disable bool) {
		cfg := DefaultConfig()
		cfg.K, cfg.D = 8, 2
		cfg.GenSize, cfg.PacketSize = 8, 512
		cfg.DisableObs = disable
		b.SetBytes(int64(len(content) * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := NewSession(content, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			clients := make([]*Client, 0, 4)
			for j := 0; j < 4; j++ {
				c, err := s.AddClient(ctx)
				if err != nil {
					b.Fatal(err)
				}
				clients = append(clients, c)
			}
			for _, c := range clients {
				if err := c.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			cancel()
			s.Close()
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, false) })
	b.Run("uninstrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkSessionBroadcast measures end-to-end goodput of the public API:
// one server, 8 peers, 64 KiB content per iteration.
func BenchmarkSessionBroadcast(b *testing.B) {
	content := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(content)
	cfg := DefaultConfig()
	cfg.K, cfg.D = 8, 2
	cfg.GenSize, cfg.PacketSize = 8, 512
	b.SetBytes(int64(len(content) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(content, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		clients := make([]*Client, 0, 8)
		for j := 0; j < 8; j++ {
			c, err := s.AddClient(ctx)
			if err != nil {
				b.Fatal(err)
			}
			clients = append(clients, c)
		}
		for _, c := range clients {
			if err := c.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
		cancel()
		s.Close()
	}
}
