// Package matrix implements dense linear algebra over the finite fields in
// internal/gf. It provides exactly the operations the coding layers need:
// rank, reduced row-echelon form, inversion, and linear solving, all via
// in-place Gaussian elimination.
//
// Elements are uint16 regardless of field, matching gf.Field. Matrices are
// small (network-coding generations are at most a few hundred symbols), so
// the implementation favours clarity and determinism over blocking or
// cache tricks; the hot path for bulk payload data lives in internal/gf,
// not here.
package matrix

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"ncast/internal/gf"
)

// ErrSingular is returned when an operation requires an invertible matrix
// but the input is rank-deficient.
var ErrSingular = errors.New("matrix: singular matrix")

// ErrNoSolution is returned by Solve when the system is inconsistent.
var ErrNoSolution = errors.New("matrix: no solution")

// Matrix is a dense rows×cols matrix over a finite field.
type Matrix struct {
	f    gf.Field
	rows int
	cols int
	data []uint16 // row-major
}

// New returns a zero rows×cols matrix over field f.
func New(f gf.Field, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{f: f, rows: rows, cols: cols, data: make([]uint16, rows*cols)}
}

// Identity returns the n×n identity matrix over field f.
func Identity(f gf.Field, n int) *Matrix {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(f gf.Field, rows [][]uint16) *Matrix {
	if len(rows) == 0 {
		return New(f, 0, 0)
	}
	m := New(f, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: len %d, want %d", i, len(r), m.cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Random returns a rows×cols matrix with uniformly random entries.
func Random(f gf.Field, rows, cols int, r *rand.Rand) *Matrix {
	m := New(f, rows, cols)
	for i := range m.data {
		m.data[i] = f.Rand(r)
	}
	return m
}

// Field returns the field the matrix is defined over.
func (m *Matrix) Field() gf.Field { return m.f }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) uint16 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v uint16) { m.data[i*m.cols+j] = v }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []uint16 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.f, m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%3d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Mul returns m×o. It panics on a dimension mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: mul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.f, m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for l := 0; l < m.cols; l++ {
			a := m.At(i, l)
			if a == 0 {
				continue
			}
			orow := o.Row(l)
			prow := p.Row(i)
			for j, b := range orow {
				if b != 0 {
					prow[j] = m.f.Add(prow[j], m.f.Mul(a, b))
				}
			}
		}
	}
	return p
}

// MulVec returns m×v for a column vector v of length Cols.
func (m *Matrix) MulVec(v []uint16) []uint16 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: vec length %d, want %d", len(v), m.cols))
	}
	out := make([]uint16, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var acc uint16
		for j, a := range row {
			if a != 0 && v[j] != 0 {
				acc = m.f.Add(acc, m.f.Mul(a, v[j]))
			}
		}
		out[i] = acc
	}
	return out
}

// addMulRowFrom adds c times row src to row dst through the field's bulk
// kernel, starting at column from. Elimination always knows the columns
// left of the pivot are zero in both rows, so operating on the suffix
// keeps row updates proportional to the live part of the row.
func (m *Matrix) addMulRowFrom(dst, src, from int, c uint16) {
	m.f.AddMulCoeff(m.Row(dst)[from:], m.Row(src)[from:], c)
}

// swapRows exchanges rows i and j.
func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// REF reduces the matrix in place to (unreduced) row-echelon form and
// returns the rank and the pivot column of each of the first rank rows.
// Only rows below the pivot row are eliminated, and every row update runs
// on the suffix starting at the pivot column, so forward elimination does
// roughly half the work of full RREF maintenance; pair with BackSub when
// the reduced form is needed.
func (m *Matrix) REF() (rank int, pivots []int) {
	pivots = make([]int, 0, min(m.rows, m.cols))
	r := 0
	for c := 0; c < m.cols && r < m.rows; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for i := r; i < m.rows; i++ {
			if m.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.swapRows(r, p)
		if v := m.At(r, c); v != 1 {
			m.f.MulCoeff(m.Row(r)[c:], m.f.Inv(v))
		}
		for i := r + 1; i < m.rows; i++ {
			if v := m.At(i, c); v != 0 {
				m.addMulRowFrom(i, r, c, v)
			}
		}
		pivots = append(pivots, c)
		r++
	}
	return r, pivots
}

// BackSub back-substitutes a matrix left in row-echelon form by REF,
// completing the reduction to RREF. pivots must be REF's return value.
// Pivot rows are processed bottom-up, so each source row is already fully
// reduced when it is used to clear its pivot column above — the same
// deferred schedule the rlnc decode engine runs when a generation closes
// rank.
func (m *Matrix) BackSub(pivots []int) {
	for r := len(pivots) - 1; r > 0; r-- {
		c := pivots[r]
		for i := 0; i < r; i++ {
			if v := m.At(i, c); v != 0 {
				m.addMulRowFrom(i, r, c, v)
			}
		}
	}
}

// RREF reduces the matrix in place to reduced row-echelon form and returns
// the rank and the pivot column of each of the first rank rows.
func (m *Matrix) RREF() (rank int, pivots []int) {
	rank, pivots = m.REF()
	m.BackSub(pivots)
	return rank, pivots
}

// Rank returns the rank of the matrix without modifying it.
func (m *Matrix) Rank() int {
	c := m.Clone()
	rank, _ := c.RREF()
	return rank
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	// Augment [m | I] and reduce.
	aug := New(m.f, n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], m.Row(i))
		aug.Set(i, n+i, 1)
	}
	_, pivots := aug.RREF()
	// The augmented matrix always has rank n; m is invertible only when
	// all n pivots land in the left block, i.e. pivot i is column i.
	if len(pivots) < n || pivots[n-1] != n-1 {
		return nil, ErrSingular
	}
	inv := New(m.f, n, n)
	for i := 0; i < n; i++ {
		copy(inv.Row(i), aug.Row(i)[n:])
	}
	return inv, nil
}

// Solve returns one solution x of m·x = b, or ErrNoSolution when the
// system is inconsistent. Free variables are set to zero.
func (m *Matrix) Solve(b []uint16) ([]uint16, error) {
	if len(b) != m.rows {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), m.rows)
	}
	aug := New(m.f, m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		copy(aug.Row(i)[:m.cols], m.Row(i))
		aug.Set(i, m.cols, b[i])
	}
	rank, pivots := aug.RREF()
	// Inconsistent if any pivot landed in the augmented column.
	for _, p := range pivots {
		if p == m.cols {
			return nil, ErrNoSolution
		}
	}
	x := make([]uint16, m.cols)
	for r := 0; r < rank; r++ {
		x[pivots[r]] = aug.At(r, m.cols)
	}
	return x, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
