package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ncast/internal/gf"
)

var fields = []gf.Field{gf.F2, gf.F256, gf.F65536}

func TestIdentityProperties(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		id := Identity(f, 5)
		if got := id.Rank(); got != 5 {
			t.Errorf("%s: rank(I5) = %d, want 5", f.Name(), got)
		}
		inv, err := id.Inverse()
		if err != nil {
			t.Fatalf("%s: Inverse(I) error: %v", f.Name(), err)
		}
		if !inv.Equal(id) {
			t.Errorf("%s: inverse of identity is not identity", f.Name())
		}
	}
}

func TestRandomSquareInverse(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(11))
			inverted := 0
			for trial := 0; trial < 40; trial++ {
				n := 1 + r.Intn(12)
				m := Random(f, n, n, r)
				inv, err := m.Inverse()
				if errors.Is(err, ErrSingular) {
					continue // random matrices over GF(2) are often singular
				}
				if err != nil {
					t.Fatalf("Inverse: %v", err)
				}
				inverted++
				if p := m.Mul(inv); !p.Equal(Identity(f, n)) {
					t.Fatalf("m * m^-1 != I for n=%d:\n%v", n, p)
				}
				if p := inv.Mul(m); !p.Equal(Identity(f, n)) {
					t.Fatalf("m^-1 * m != I for n=%d", n)
				}
			}
			if inverted == 0 {
				t.Fatal("no random matrix was invertible; suspicious")
			}
		})
	}
}

func TestSingularInverse(t *testing.T) {
	t.Parallel()
	m := FromRows(gf.F256, [][]uint16{
		{1, 2, 3},
		{2, 4, 6}, // 2 * row 0 over GF(256) is {2,4,6}: x2 in GF(2^8) doubles via carry-less shift
		{0, 0, 0},
	})
	// Row 2 of zeros alone forces rank < 3.
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Inverse of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestNonSquareInverseErrors(t *testing.T) {
	t.Parallel()
	if _, err := New(gf.F256, 2, 3).Inverse(); err == nil {
		t.Fatal("Inverse of non-square matrix succeeded")
	}
}

func TestRankProperties(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(5))
	for _, f := range fields {
		for trial := 0; trial < 30; trial++ {
			rows := 1 + r.Intn(8)
			cols := 1 + r.Intn(8)
			m := Random(f, rows, cols, r)
			rank := m.Rank()
			if rank > rows || rank > cols {
				t.Fatalf("%s: rank %d exceeds dims %dx%d", f.Name(), rank, rows, cols)
			}
			// Duplicating a row never increases rank.
			dup := New(f, rows+1, cols)
			for i := 0; i < rows; i++ {
				copy(dup.Row(i), m.Row(i))
			}
			copy(dup.Row(rows), m.Row(0))
			if got := dup.Rank(); got != rank {
				t.Fatalf("%s: rank changed from %d to %d after duplicating a row", f.Name(), rank, got)
			}
		}
	}
}

func TestRREFIdempotent(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(9))
	for _, f := range fields {
		m := Random(f, 6, 9, r)
		rank1, piv1 := m.RREF()
		snapshot := m.Clone()
		rank2, piv2 := m.RREF()
		if rank1 != rank2 || len(piv1) != len(piv2) {
			t.Fatalf("%s: RREF not stable: rank %d->%d", f.Name(), rank1, rank2)
		}
		if !m.Equal(snapshot) {
			t.Fatalf("%s: second RREF changed an already-reduced matrix", f.Name())
		}
	}
}

func TestSolveConsistent(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(13))
			for trial := 0; trial < 40; trial++ {
				rows := 1 + r.Intn(8)
				cols := 1 + r.Intn(8)
				m := Random(f, rows, cols, r)
				// Construct a guaranteed-consistent RHS from a known x.
				x := make([]uint16, cols)
				for i := range x {
					x[i] = f.Rand(r)
				}
				b := m.MulVec(x)
				got, err := m.Solve(b)
				if err != nil {
					t.Fatalf("Solve on consistent system: %v", err)
				}
				// The solution need not equal x, but must satisfy m·got = b.
				check := m.MulVec(got)
				for i := range b {
					if check[i] != b[i] {
						t.Fatalf("solution does not satisfy system at row %d", i)
					}
				}
			}
		})
	}
}

func TestSolveInconsistent(t *testing.T) {
	t.Parallel()
	m := FromRows(gf.F256, [][]uint16{
		{1, 1},
		{1, 1},
	})
	if _, err := m.Solve([]uint16{1, 2}); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("Solve on inconsistent system: err = %v, want ErrNoSolution", err)
	}
}

func TestMulAssociativityQuick(t *testing.T) {
	t.Parallel()
	f := gf.F256
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := Random(f, n, n, r)
		b := Random(f, n, n, r)
		c := Random(f, n, n, r)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(17))
	f := gf.F65536
	m := Random(f, 5, 7, r)
	v := make([]uint16, 7)
	for i := range v {
		v[i] = f.Rand(r)
	}
	col := New(f, 7, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := m.Mul(col)
	got := m.MulVec(v)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec[%d] = %d, want %d", i, got[i], want.At(i, 0))
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("FromRows with ragged rows did not panic")
		}
	}()
	FromRows(gf.F256, [][]uint16{{1, 2}, {3}})
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	m := Identity(gf.F256, 3)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("mutating clone changed original")
	}
}

func BenchmarkRREF64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := Random(gf.F256, 64, 64, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Clone().RREF()
	}
}

func BenchmarkInverse32(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var m *Matrix
	for {
		m = Random(gf.F256, 32, 32, r)
		if m.Rank() == 32 {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestREFBackSubMatchesRREF checks the split pipeline (REF then BackSub)
// produces exactly the canonical reduced form, across fields, shapes, and
// rank-deficient inputs.
func TestREFBackSubMatchesRREF(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, f := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		for trial := 0; trial < 30; trial++ {
			rows, cols := 1+r.Intn(20), 1+r.Intn(20)
			m := Random(f, rows, cols, r)
			if trial%3 == 0 && rows > 1 {
				// Force rank deficiency: duplicate a random row.
				copy(m.Row(r.Intn(rows-1)+1), m.Row(0))
			}
			split := m.Clone()
			rank, pivots := split.REF()
			// REF invariants: unit pivots, zeros below each pivot.
			for ri, c := range pivots {
				if split.At(ri, c) != 1 {
					t.Fatalf("%s: REF pivot (%d,%d) = %d, want 1", f.Name(), ri, c, split.At(ri, c))
				}
				for i := ri + 1; i < rows; i++ {
					if split.At(i, c) != 0 {
						t.Fatalf("%s: REF nonzero below pivot at (%d,%d)", f.Name(), i, c)
					}
				}
			}
			split.BackSub(pivots)
			wantRank, wantPivots := m.RREF()
			if rank != wantRank {
				t.Fatalf("%s: REF rank %d, RREF rank %d", f.Name(), rank, wantRank)
			}
			if len(pivots) != len(wantPivots) {
				t.Fatalf("%s: pivots %v vs %v", f.Name(), pivots, wantPivots)
			}
			for i := range pivots {
				if pivots[i] != wantPivots[i] {
					t.Fatalf("%s: pivots %v vs %v", f.Name(), pivots, wantPivots)
				}
			}
			if !split.Equal(m) {
				t.Fatalf("%s: REF+BackSub != RREF\nsplit:\n%srref:\n%s", f.Name(), split, m)
			}
		}
	}
}

// BenchmarkREF64 measures forward elimination alone on the same shape as
// BenchmarkRREF64, exposing the cost split with BackSub.
func BenchmarkREF64(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	src := Random(gf.F256, 64, 64, r)
	m := New(gf.F256, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(m.data, src.data)
		m.REF()
	}
}
