// Package metrics provides the small statistics toolkit the experiment
// harness uses: streaming summaries (mean/variance/min/max), quantiles,
// histograms, and fixed-width table rendering for experiment reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates scalar observations with Welford's online algorithm,
// so variance is numerically stable even for long runs.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	vals []float64 // retained for quantiles
	// sorted caches sort.Float64s(vals); Add invalidates it so repeated
	// Quantile calls (the common report pattern: p50, p90, p99 in a row)
	// sort once instead of once per call.
	sorted []float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.vals = append(s.vals, x)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation of
// the sorted sample. It returns 0 when empty.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.vals...)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Histogram counts observations into fixed-width buckets over [lo, hi);
// out-of-range observations land in clamped edge buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int
	n       int
}

// NewHistogram creates a histogram with the given range and bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("metrics: bucket count %d, want > 0", buckets)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: invalid range [%v,%v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, buckets)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		bar := 0
		if maxC > 0 {
			bar = c * 40 / maxC
		}
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n",
			h.lo+float64(i)*width, h.lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Table renders experiment results as an aligned fixed-width text table,
// the output format of every E-experiment in the harness.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It returns ok=false when fewer than two distinct x values exist.
func LinearFit(x, y []float64) (slope, intercept float64, ok bool) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, true
}
