package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	t.Parallel()
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-3) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Median()-3) > 1e-12 {
		t.Fatalf("Median = %v", s.Median())
	}
	if math.Abs(s.Quantile(0)-1) > 1e-12 || math.Abs(s.Quantile(1)-5) > 1e-12 {
		t.Fatal("extreme quantiles wrong")
	}
	if math.Abs(s.Quantile(0.25)-2) > 1e-12 {
		t.Fatalf("Q1 = %v", s.Quantile(0.25))
	}
}

func TestSummaryMatchesNaiveVariance(t *testing.T) {
	t.Parallel()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		var s Summary
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
			s.Add(vals[i])
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		varSum := 0.0
		for _, v := range vals {
			varSum += (v - mean) * (v - mean)
		}
		naive := varSum / float64(n-1)
		return math.Abs(s.Var()-naive) < 1e-6*math.Max(1, naive)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantileClamping(t *testing.T) {
	t.Parallel()
	var s Summary
	s.Add(7)
	if s.Quantile(-1) != 7 || s.Quantile(2) != 7 {
		t.Fatal("quantile clamp failed")
	}
	var empty Summary
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestQuantileCacheInvalidation(t *testing.T) {
	t.Parallel()
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.Median(); got != 2 {
		t.Fatalf("median of {1,3} = %v, want 2", got)
	}
	// A later Add must invalidate the cached sorted slice.
	s.Add(100)
	if got := s.Median(); got != 3 {
		t.Fatalf("median of {1,3,100} = %v, want 3", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("max quantile = %v, want 100", got)
	}
	// Repeated reads without Add keep returning consistent values.
	if a, b := s.Quantile(0.5), s.Quantile(0.5); a != b {
		t.Fatalf("repeated quantile differs: %v vs %v", a, b)
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	// -5, 0, 1.9 in bucket 0; 2 in bucket 1; 9.9, 10, 100 in bucket 4.
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(4) != 3 {
		t.Fatalf("buckets: %d %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3), h.Bucket(4))
	}
	if h.NumBuckets() != 5 {
		t.Fatal("NumBuckets")
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("String has no bars")
	}
}

func TestHistogramValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.23456789)
	tb.AddRow("b", 42)
	if tb.NumRows() != 2 {
		t.Fatal("NumRows")
	}
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.235") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestLinearFit(t *testing.T) {
	t.Parallel()
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, ok := LinearFit(x, y)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if _, _, ok := LinearFit([]float64{1}, []float64{1}); ok {
		t.Error("fit with one point succeeded")
	}
	if _, _, ok := LinearFit([]float64{2, 2}, []float64{1, 3}); ok {
		t.Error("fit with constant x succeeded")
	}
	if _, _, ok := LinearFit([]float64{1, 2}, []float64{1}); ok {
		t.Error("fit with mismatched lengths succeeded")
	}
}
