package core

import (
	"fmt"
	"strings"
)

// MatrixString renders M's rows in order as "id:threads[:failed]" lines —
// a canonical, byte-comparable topology dump. The differential suite uses
// it to compare the indexed curtain against the retained reference
// implementation, and the swarm harness's seed-determinism gate compares
// two same-seed runs' tracker topologies with it.
func (c *Curtain) MatrixString() string {
	var b strings.Builder
	for _, id := range c.Nodes() {
		ts, err := c.Threads(id)
		if err != nil {
			fmt.Fprintf(&b, "%d:ERR(%v)\n", id, err)
			continue
		}
		fmt.Fprintf(&b, "%d:%v", id, ts)
		if c.IsFailed(id) {
			b.WriteString(":failed")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
