package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ncast/internal/graph"
)

func newRandGraph(t testing.TB, k, d int, seed int64) *RandGraph {
	t.Helper()
	g, err := NewRandGraph(k, d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewRandGraph(%d,%d): %v", k, d, err)
	}
	return g
}

func TestRandGraphValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(1))
	if _, err := NewRandGraph(0, 1, r); !errors.Is(err, ErrDegree) {
		t.Error("k=0 accepted")
	}
	if _, err := NewRandGraph(4, 0, r); !errors.Is(err, ErrDegree) {
		t.Error("d=0 accepted")
	}
	if _, err := NewRandGraph(4, 5, r); !errors.Is(err, ErrDegree) {
		t.Error("d>k accepted")
	}
	if _, err := NewRandGraph(4, 2, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRandGraphJoinInvariants(t *testing.T) {
	t.Parallel()
	g := newRandGraph(t, 8, 3, 2)
	for i := 0; i < 100; i++ {
		g.Join()
		if err := g.Validate(); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
}

func TestRandGraphChurn(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	g := newRandGraph(t, 8, 2, 4)
	var alive []NodeID
	for step := 0; step < 400; step++ {
		switch {
		case r.Intn(3) > 0 || len(alive) == 0:
			alive = append(alive, g.Join())
		case r.Intn(2) == 0:
			i := r.Intn(len(alive))
			id := alive[i]
			var err error
			if g.IsFailed(id) {
				err = g.Repair(id)
			} else {
				err = g.Leave(id)
			}
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			alive = append(alive[:i], alive[i+1:]...)
		default:
			id := alive[r.Intn(len(alive))]
			if !g.IsFailed(id) {
				if err := g.Fail(id); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestRandGraphErrors(t *testing.T) {
	t.Parallel()
	g := newRandGraph(t, 4, 2, 5)
	id := g.Join()
	if err := g.Leave(999); !errors.Is(err, ErrUnknownNode) {
		t.Error("Leave unknown")
	}
	if err := g.Fail(999); !errors.Is(err, ErrUnknownNode) {
		t.Error("Fail unknown")
	}
	if err := g.Repair(id); !errors.Is(err, ErrNodeWorking) {
		t.Error("Repair working")
	}
	if err := g.Fail(id); err != nil {
		t.Fatal(err)
	}
	if err := g.Fail(id); !errors.Is(err, ErrNodeFailed) {
		t.Error("double fail")
	}
	if err := g.Leave(id); !errors.Is(err, ErrNodeFailed) {
		t.Error("Leave failed node")
	}
	if err := g.Repair(id); err != nil {
		t.Fatal(err)
	}
	if g.Contains(id) {
		t.Error("present after repair")
	}
}

func TestRandGraphLogDelayVsCurtainLinearDelay(t *testing.T) {
	t.Parallel()
	// §6's headline: curtain delay grows linearly in N (with k = d the
	// curtain is a chain), the random graph logarithmically. Compare max
	// BFS depth at N = 200 with k=8, d=2.
	const n = 200

	cur := newCurtain(t, 8, 2, 6)
	for i := 0; i < n; i++ {
		cur.Join()
	}
	topC := cur.Snapshot()
	maxC := maxDepth(topC.Graph)

	rg := newRandGraph(t, 8, 2, 7)
	for i := 0; i < n; i++ {
		rg.Join()
	}
	topR := rg.Snapshot()
	maxR := maxDepth(topR.Graph)

	// Expander depth should be O(log n) ~ small multiple of log2(200)≈7.6;
	// curtain depth is Θ(n·d/k) = Θ(50). Demand a clear separation.
	if maxR*3 > maxC {
		t.Fatalf("random-graph depth %d not clearly below curtain depth %d", maxR, maxC)
	}
	if float64(maxR) > 8*math.Log2(n) {
		t.Fatalf("random-graph depth %d not logarithmic", maxR)
	}
}

func maxDepth(g *graph.Digraph) int {
	d := g.Depths(0)
	max := 0
	for _, x := range d {
		if x > max {
			max = x
		}
	}
	return max
}

func TestRandGraphConnectivityNoFailures(t *testing.T) {
	t.Parallel()
	// Without failures every node should have connectivity d from the
	// server with high probability (random graphs are well connected).
	g := newRandGraph(t, 8, 2, 8)
	for i := 0; i < 60; i++ {
		g.Join()
	}
	top := g.Snapshot()
	fs := graph.NewFlowSolver(top.Effective())
	low := 0
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if fs.MaxFlow(0, gi, -1) < 2 {
			low++
		}
	}
	// Splitting preserves flow: every node keeps d edge-disjoint paths
	// through the streams it clipped. Expect zero deficient nodes.
	if low != 0 {
		t.Fatalf("%d of 60 nodes below connectivity 2", low)
	}
}

func BenchmarkRandGraphJoin(b *testing.B) {
	g, err := NewRandGraph(64, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Join()
	}
}
