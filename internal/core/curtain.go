// Package core implements the paper's primary contribution: the
// "curtain-rod" scheme for building and maintaining a peer-to-peer
// broadcast overlay (§3), together with the §5 extensions (random row
// insertion against adversaries, congestion degree changes, heterogeneous
// degrees).
//
// The server maintains a matrix M with one column per thread (k unit
// streams hanging from the server) and one row per node, containing d ones
// marking the threads that node clipped together. The network topology is
// fully determined by M: there is an edge from node i to node j on thread
// c when rows i and j both have a one in column c and no intervening row
// does. New rows are appended at the bottom (or, in random-insert mode,
// spliced in at a uniformly random position), a graceful leave deletes the
// row, and the repair procedure for a failed node performs the same
// deletion on the node's behalf.
//
// Curtain is the server-side authority's data structure; it is purely
// topological. The data plane (network-coded streams flowing along the
// threads) lives in internal/rlnc and the protocol layer; the analysis
// plane (connectivity, defects) consumes Snapshot().
//
// Internally the matrix is fully indexed (see index.go): the row order is
// an order-statistic treap and each thread's occupancy is a treap ordered
// by row labels, so hello/good-bye/repair and the §5 degree changes cost
// O(d·log N) instead of the naive O(N·d) slice surgery. The paper's
// randomness contract is untouched: the caller's rng is consumed in
// exactly the same sequence as the original linear implementation (the
// differential tests in curtain_diff_test.go pin this).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ncast/internal/graph"
)

// NodeID identifies an overlay participant. The server is ServerID; client
// nodes get strictly positive ids, never reused.
type NodeID uint64

// ServerID is the NodeID of the broadcast server (the curtain rod).
const ServerID NodeID = 0

// InsertMode selects where a joining node's row is placed in M.
type InsertMode int

const (
	// InsertAppend places new rows at the bottom of M (§3): later nodes
	// receive streams from earlier nodes.
	InsertAppend InsertMode = iota + 1
	// InsertRandom splices new rows at a uniformly random position (§5),
	// which makes coordinated adversarial arrivals equivalent to random
	// failures.
	InsertRandom
)

// Common errors returned by Curtain operations.
var (
	// ErrUnknownNode is returned when an operation names an id not in M.
	ErrUnknownNode = errors.New("core: unknown node")
	// ErrDegree is returned for invalid degree transitions or values.
	ErrDegree = errors.New("core: invalid degree")
	// ErrNodeFailed is returned when an operation requires a working node.
	ErrNodeFailed = errors.New("core: node is failed")
	// ErrNodeWorking is returned when an operation requires a failed node.
	ErrNodeWorking = errors.New("core: node is not failed")
)

type row struct {
	id      NodeID
	threads []int    // sorted, distinct thread indices; len == degree
	slots   []*tnode // slots[i] is this row's clip in thread threads[i]'s treap
	failed  bool
	on      *onode // handle into the global row-order treap
	pos     int    // scratch row index, valid only during Snapshot/walks
}

// Curtain is the server-side overlay state (the matrix M plus failure
// tags). It is not safe for concurrent use; the protocol layer serialises
// access.
type Curtain struct {
	k      int
	d      int
	mode   InsertMode
	rng    *rand.Rand
	list   olist   // global row order
	occ    []tlist // per-thread occupancy, in row order
	index  map[NodeID]*row
	failed int // count of failure-tagged rows
	nextID NodeID
	// freeRows recycles removed rows (and their thread/slot storage) so
	// steady-state churn — hello balancing good-bye/repair — allocates
	// nothing and never pressures the collector at million-row scale.
	// The treaps pool their nodes the same way (olist.free, tlist.free).
	freeRows []*row
}

// Option configures a Curtain.
type Option func(*Curtain)

// WithInsertMode selects append (default) or random row insertion.
func WithInsertMode(m InsertMode) Option {
	return func(c *Curtain) { c.mode = m }
}

// New creates an empty curtain with k threads and default node degree d.
// The paper's analysis assumes d >= 2 and k >= c·d² for a constant c;
// New only enforces the structural requirement 1 <= d <= k and leaves the
// analytic regime to callers (the chain baseline legitimately uses d = 1).
// rng drives all randomness (thread selection, insert positions) and must
// not be shared concurrently.
func New(k, d int, rng *rand.Rand, opts ...Option) (*Curtain, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d, want > 0", ErrDegree, k)
	}
	if d < 1 || d > k {
		return nil, fmt.Errorf("%w: d = %d, want in [1, k=%d]", ErrDegree, d, k)
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	c := &Curtain{
		k:      k,
		d:      d,
		mode:   InsertAppend,
		rng:    rng,
		occ:    make([]tlist, k),
		index:  make(map[NodeID]*row),
		nextID: 1,
	}
	for _, o := range opts {
		o(c)
	}
	if c.mode != InsertAppend && c.mode != InsertRandom {
		return nil, fmt.Errorf("core: invalid insert mode %d", c.mode)
	}
	return c, nil
}

// K returns the number of server threads.
func (c *Curtain) K() int { return c.k }

// D returns the default node degree.
func (c *Curtain) D() int { return c.d }

// Mode returns the insert mode.
func (c *Curtain) Mode() InsertMode { return c.mode }

// NumNodes returns the number of rows in M (working + failed).
func (c *Curtain) NumNodes() int { return c.list.len() }

// NumFailed returns the number of failure-tagged rows.
func (c *Curtain) NumFailed() int { return c.failed }

// Contains reports whether id currently has a row in M.
func (c *Curtain) Contains(id NodeID) bool {
	_, ok := c.index[id]
	return ok
}

// IsFailed reports whether id is failure-tagged. Unknown ids report false.
func (c *Curtain) IsFailed(id NodeID) bool {
	r, ok := c.index[id]
	return ok && r.failed
}

// Degree returns the current degree of id, or an error for unknown ids.
func (c *Curtain) Degree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return len(r.threads), nil
}

// Threads returns a copy of the thread indices id is clipped to.
func (c *Curtain) Threads(id NodeID) ([]int, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return append([]int(nil), r.threads...), nil
}

// Nodes returns all node ids in row order (top of the curtain first).
func (c *Curtain) Nodes() []NodeID {
	out := make([]NodeID, 0, c.list.len())
	c.list.inorder(func(x *onode) {
		out = append(out, x.r.id)
	})
	return out
}

// Join adds a working node with the default degree (the hello protocol)
// and returns its id.
func (c *Curtain) Join() NodeID {
	id, err := c.join(c.d, false)
	if err != nil {
		panic(err) // default degree is validated at construction
	}
	return id
}

// JoinDegree adds a working node with an explicit degree (heterogeneous
// bandwidths, §5).
func (c *Curtain) JoinDegree(d int) (NodeID, error) {
	return c.join(d, false)
}

// JoinTagged adds a node pre-tagged as failed or working. The analysis of
// §4 interchanges the order of joining and failing — "the node tosses a
// coin before joining" — and JoinTagged is that coin toss made explicit
// for the experiment harness.
func (c *Curtain) JoinTagged(failed bool) NodeID {
	id, err := c.join(c.d, failed)
	if err != nil {
		panic(err)
	}
	return id
}

func (c *Curtain) join(d int, failed bool) (NodeID, error) {
	if d < 1 || d > c.k {
		return 0, fmt.Errorf("%w: join degree %d, want in [1, k=%d]", ErrDegree, d, c.k)
	}
	var r *row
	if n := len(c.freeRows); n > 0 {
		r = c.freeRows[n-1]
		c.freeRows[n-1] = nil
		c.freeRows = c.freeRows[:n-1]
	} else {
		r = &row{}
	}
	r.id = c.nextID
	r.threads = sampleDistinctInto(c.rng, c.k, d, r.threads)
	r.failed = failed
	c.nextID++
	pos := c.list.len()
	if c.mode == InsertRandom {
		pos = c.rng.Intn(c.list.len() + 1)
	}
	c.insertRow(r, pos)
	c.index[r.id] = r
	if failed {
		c.failed++
	}
	return r.id, nil
}

// Leave removes a working node gracefully (the good-bye protocol): its row
// is deleted, which matches each of its children to one of its parents
// along every thread.
func (c *Curtain) Leave(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d (use Repair)", ErrNodeFailed, id)
	}
	c.removeRow(r)
	return nil
}

// Fail tags a node as failed (a non-ergodic failure or the start of an
// ergodic outage). The row remains in M — the failed node still occupies
// its slots and blocks its threads — until Repair or Recover.
func (c *Curtain) Fail(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d", ErrNodeFailed, id)
	}
	r.failed = true
	c.failed++
	return nil
}

// Recover clears a failure tag (the end of an ergodic outage such as
// transient congestion).
func (c *Curtain) Recover(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d", ErrNodeWorking, id)
	}
	r.failed = false
	c.failed--
	return nil
}

// Repair removes a failed node's row (the server-side repair procedure:
// the failed node's parents are redirected to its children, exactly as in
// a graceful leave performed on the node's behalf).
func (c *Curtain) Repair(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d (use Leave)", ErrNodeWorking, id)
	}
	c.removeRow(r)
	return nil
}

// ReduceDegree handles congestion (§5): the node picks one of its threads
// at random and joins that parent and child directly, dropping its own
// degree by one. A node cannot drop below degree 1. It returns the thread
// index that was dropped, so the control plane can redirect its streams.
func (c *Curtain) ReduceDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) <= 1 {
		return 0, fmt.Errorf("%w: node %d already at degree 1", ErrDegree, id)
	}
	i := c.rng.Intn(len(r.threads))
	t := r.threads[i]
	c.occ[t].remove(r.slots[i])
	r.threads = append(r.threads[:i], r.threads[i+1:]...)
	r.slots = append(r.slots[:i], r.slots[i+1:]...)
	return t, nil
}

// IncreaseDegree re-grows a previously reduced node (§5): the server turns
// one of the zeroes in the node's row into a one at random. It returns the
// thread index gained, so the control plane can splice the node in.
func (c *Curtain) IncreaseDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) >= c.k {
		return 0, fmt.Errorf("%w: node %d already on all %d threads", ErrDegree, id, c.k)
	}
	// Pick a uniform random thread the node is not on.
	have := make(map[int]bool, len(r.threads))
	for _, t := range r.threads {
		have[t] = true
	}
	pick := c.rng.Intn(c.k - len(r.threads))
	for t := 0; t < c.k; t++ {
		if have[t] {
			continue
		}
		if pick == 0 {
			i := sort.SearchInts(r.threads, t)
			r.threads = append(r.threads, 0)
			copy(r.threads[i+1:], r.threads[i:])
			r.threads[i] = t
			slot := c.occ[t].insert(r, c.list.nextPrio())
			r.slots = append(r.slots, nil)
			copy(r.slots[i+1:], r.slots[i:])
			r.slots[i] = slot
			return t, nil
		}
		pick--
	}
	panic("core: unreachable thread selection")
}

// Parents returns, per thread the node is clipped to, the id of the stream
// provider on that thread (ServerID when the node is the topmost clip).
// The slice is ordered by thread index and may repeat ids.
func (c *Curtain) Parents(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, slot := range r.slots {
		if p := tprev(slot); p != nil {
			out = append(out, p.r.id)
		} else {
			out = append(out, ServerID)
		}
	}
	return out, nil
}

// Children returns, per thread, the id of the node receiving this node's
// stream on that thread. Threads on which the node is the bottom clip
// contribute nothing.
func (c *Curtain) Children(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, slot := range r.slots {
		if s := tnext(slot); s != nil {
			out = append(out, s.r.id)
		}
	}
	return out, nil
}

// ThreadChildren returns, aligned with Threads(id), the id of the node
// receiving this node's stream on each of its threads, with 0 marking
// threads on which the node is the bottom clip. This is the O(d·log N)
// accessor the control plane uses to hand a departing node's streams over
// without reconstructing the neighborhood from Children+Parents.
func (c *Curtain) ThreadChildren(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, len(r.threads))
	for i, slot := range r.slots {
		if s := tnext(slot); s != nil {
			out[i] = s.r.id
		}
	}
	return out, nil
}

// HangingThreads returns, per thread, the id of its current bottom clip
// (ServerID for threads no node is on). These are the k slots a new node's
// d-tuple is drawn from.
func (c *Curtain) HangingThreads() []NodeID {
	out := make([]NodeID, c.k)
	for t := 0; t < c.k; t++ {
		if b := c.occ[t].last(); b != nil {
			out[t] = b.r.id
		}
	}
	return out
}

// --- internal row plumbing ---

// sampleDistinct draws d distinct ints from [0,k) uniformly, sorted.
func sampleDistinct(rng *rand.Rand, k, d int) []int {
	if d*3 >= k {
		// Dense: partial Fisher-Yates over all k.
		perm := rng.Perm(k)[:d]
		sort.Ints(perm)
		return perm
	}
	seen := make(map[int]bool, d)
	out := make([]int, 0, d)
	for len(out) < d {
		t := rng.Intn(k)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// sampleDistinctInto is sampleDistinct writing into out's storage, so the
// hot join path can reuse a pooled row's thread slice. It consumes the
// rng stream exactly as sampleDistinct does (same draws, same order; only
// the duplicate check differs — a linear scan over ≤ d elements instead
// of a map), which the differential suite pins against the reference.
func sampleDistinctInto(rng *rand.Rand, k, d int, out []int) []int {
	out = out[:0]
	if d*3 >= k {
		perm := rng.Perm(k)
		out = append(out, perm[:d]...)
		sort.Ints(out)
		return out
	}
	for len(out) < d {
		t := rng.Intn(k)
		dup := false
		for _, s := range out {
			if s == t {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

func (c *Curtain) insertRow(r *row, pos int) {
	c.list.insertAt(pos, r)
	if cap(r.slots) >= len(r.threads) {
		r.slots = r.slots[:len(r.threads)]
	} else {
		r.slots = make([]*tnode, len(r.threads))
	}
	for i, t := range r.threads {
		r.slots[i] = c.occ[t].insert(r, c.list.nextPrio())
	}
}

func (c *Curtain) removeRow(r *row) {
	for i, t := range r.threads {
		c.occ[t].remove(r.slots[i])
	}
	c.list.remove(r.on)
	if r.failed {
		c.failed--
	}
	delete(c.index, r.id)
	// Recycle the row: clear everything but keep the thread/slot storage.
	for i := range r.slots {
		r.slots[i] = nil
	}
	*r = row{threads: r.threads[:0], slots: r.slots[:0]}
	c.freeRows = append(c.freeRows, r)
}

// Validate checks internal consistency; it is used by tests and costs
// O(N·d + k·occ). It returns the first inconsistency found.
// It is an alias for CheckInvariants, kept for callers of the original
// linear implementation.
func (c *Curtain) Validate() error { return c.CheckInvariants() }

// CheckInvariants verifies the §3 structural invariants and the internal
// index consistency, returning the first violation found:
//
//   - every live row holds a sorted set of distinct threads in [0,k) — no
//     thread is hosted twice by one node — and its degree matches;
//   - the per-thread occupancy treaps contain exactly the rows clipped to
//     them, in row order, so hanging-thread accounting balances (the
//     bottom clip of each thread is the last row hosting it, and total
//     occupancy equals the sum of degrees);
//   - the order treap's sizes, heap priorities, parent links and order
//     labels are mutually consistent.
//
// It costs O(N·d + k) and is meant for tests and debug assertions, not
// the hot path.
func (c *Curtain) CheckInvariants() error {
	// Global order treap: structure, sizes, heap property, label order.
	n := 0
	var lastLabel uint64
	var structErr error
	c.list.inorder(func(x *onode) {
		n++
		if structErr != nil {
			return
		}
		if x.size != 1+osize(x.left)+osize(x.right) {
			structErr = fmt.Errorf("core: order treap size mismatch at node %d", x.r.id)
			return
		}
		if x.left != nil && x.left.parent != x || x.right != nil && x.right.parent != x {
			structErr = fmt.Errorf("core: order treap parent link broken at node %d", x.r.id)
			return
		}
		if x.parent != nil && x.prio > x.parent.prio {
			structErr = fmt.Errorf("core: order treap heap violation at node %d", x.r.id)
			return
		}
		if n > 1 && x.label <= lastLabel {
			structErr = fmt.Errorf("core: order labels not increasing at node %d", x.r.id)
			return
		}
		lastLabel = x.label
		if x.r.on != x {
			structErr = fmt.Errorf("core: row handle out of sync for node %d", x.r.id)
		}
	})
	if structErr != nil {
		return structErr
	}
	if n != c.list.len() {
		return fmt.Errorf("core: order treap walk saw %d rows, size says %d", n, c.list.len())
	}
	if len(c.index) != n {
		return fmt.Errorf("core: index size %d, rows %d", len(c.index), n)
	}

	// Per-row invariants: distinct sorted threads, aligned slots, failure
	// accounting.
	failed := 0
	want := 0
	for id, r := range c.index {
		if r.id != id {
			return fmt.Errorf("core: index key %d maps to row %d", id, r.id)
		}
		if r.failed {
			failed++
		}
		if len(r.threads) == 0 {
			return fmt.Errorf("core: node %d has no threads", r.id)
		}
		if len(r.slots) != len(r.threads) {
			return fmt.Errorf("core: node %d has %d slots for %d threads", r.id, len(r.slots), len(r.threads))
		}
		want += len(r.threads)
		for j, t := range r.threads {
			if t < 0 || t >= c.k {
				return fmt.Errorf("core: node %d on out-of-range thread %d", r.id, t)
			}
			if j > 0 && t <= r.threads[j-1] {
				return fmt.Errorf("core: node %d threads not sorted/distinct", r.id)
			}
			if r.slots[j] == nil || r.slots[j].r != r {
				return fmt.Errorf("core: node %d slot %d points at the wrong row", r.id, j)
			}
		}
	}
	if failed != c.failed {
		return fmt.Errorf("core: failed count %d, tagged rows %d", c.failed, failed)
	}

	// Per-thread occupancy: row order, membership, slot identity, hanging
	// accounting.
	total := 0
	for t := 0; t < c.k; t++ {
		var prev *tnode
		var threadErr error
		var bottom *tnode
		c.occ[t].inorder(func(x *tnode) {
			total++
			bottom = x
			if threadErr != nil {
				return
			}
			if x.left != nil && x.left.parent != x || x.right != nil && x.right.parent != x {
				threadErr = fmt.Errorf("core: thread %d treap parent link broken at node %d", t, x.r.id)
				return
			}
			if x.parent != nil && x.prio > x.parent.prio {
				threadErr = fmt.Errorf("core: thread %d treap heap violation at node %d", t, x.r.id)
				return
			}
			if prev != nil && x.r.on.label <= prev.r.on.label {
				threadErr = fmt.Errorf("core: thread %d occupancy out of order", t)
				return
			}
			prev = x
			i := sort.SearchInts(x.r.threads, t)
			if i >= len(x.r.threads) || x.r.threads[i] != t {
				threadErr = fmt.Errorf("core: node %d in thread %d occupancy without membership", x.r.id, t)
				return
			}
			if x.r.slots[i] != x {
				threadErr = fmt.Errorf("core: node %d slot for thread %d is a stale clip", x.r.id, t)
			}
		})
		if threadErr != nil {
			return threadErr
		}
		if bottom != c.occ[t].last() {
			return fmt.Errorf("core: thread %d bottom clip out of sync", t)
		}
	}
	if total != want {
		return fmt.Errorf("core: occupancy total %d, want %d", total, want)
	}
	return nil
}

// Topology is an analysis-plane snapshot of the overlay as a DAG. Graph
// node 0 is the server; node i+1 is row i of M at snapshot time.
type Topology struct {
	// Graph holds every structural edge, including edges incident to
	// failed nodes (a failed node still occupies its slots).
	Graph *graph.Digraph
	// IDs maps graph index -> NodeID (IDs[0] == ServerID).
	IDs []NodeID
	// Index maps NodeID -> graph index.
	Index map[NodeID]int
	// Working[i] reports whether graph node i forwards data. Working[0]
	// (the server) is always true.
	Working []bool
	// ThreadBottom[t] is the graph index of thread t's bottom clip (0
	// when the thread hangs from the server directly).
	ThreadBottom []int
}

// Snapshot exports the current overlay.
func (c *Curtain) Snapshot() *Topology {
	n := c.list.len()
	t := &Topology{
		Graph:        graph.NewDigraph(n + 1),
		IDs:          make([]NodeID, n+1),
		Index:        make(map[NodeID]int, n+1),
		Working:      make([]bool, n+1),
		ThreadBottom: make([]int, c.k),
	}
	t.IDs[0] = ServerID
	t.Index[ServerID] = 0
	t.Working[0] = true
	i := 0
	c.list.inorder(func(x *onode) {
		r := x.r
		r.pos = i
		t.IDs[i+1] = r.id
		t.Index[r.id] = i + 1
		t.Working[i+1] = !r.failed
		i++
	})
	for th := 0; th < c.k; th++ {
		prev := 0
		c.occ[th].inorder(func(x *tnode) {
			cur := x.r.pos + 1
			if _, err := t.Graph.AddEdge(prev, cur); err != nil {
				panic(err) // indices valid by construction
			}
			prev = cur
		})
		t.ThreadBottom[th] = prev
	}
	return t
}

// Effective returns the data-plane graph: the structural graph with every
// edge incident to a failed node removed. Failed nodes remain as isolated
// vertices so indices line up with the snapshot.
func (t *Topology) Effective() *graph.Digraph {
	g := graph.NewDigraph(t.Graph.NumNodes())
	for id := 0; id < t.Graph.NumEdges(); id++ {
		e := t.Graph.Edge(id)
		if t.Working[e.From] && t.Working[e.To] {
			if _, err := g.AddEdge(e.From, e.To); err != nil {
				panic(err)
			}
		}
	}
	return g
}
