// Package core implements the paper's primary contribution: the
// "curtain-rod" scheme for building and maintaining a peer-to-peer
// broadcast overlay (§3), together with the §5 extensions (random row
// insertion against adversaries, congestion degree changes, heterogeneous
// degrees).
//
// The server maintains a matrix M with one column per thread (k unit
// streams hanging from the server) and one row per node, containing d ones
// marking the threads that node clipped together. The network topology is
// fully determined by M: there is an edge from node i to node j on thread
// c when rows i and j both have a one in column c and no intervening row
// does. New rows are appended at the bottom (or, in random-insert mode,
// spliced in at a uniformly random position), a graceful leave deletes the
// row, and the repair procedure for a failed node performs the same
// deletion on the node's behalf.
//
// Curtain is the server-side authority's data structure; it is purely
// topological. The data plane (network-coded streams flowing along the
// threads) lives in internal/rlnc and the protocol layer; the analysis
// plane (connectivity, defects) consumes Snapshot().
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ncast/internal/graph"
)

// NodeID identifies an overlay participant. The server is ServerID; client
// nodes get strictly positive ids, never reused.
type NodeID uint64

// ServerID is the NodeID of the broadcast server (the curtain rod).
const ServerID NodeID = 0

// InsertMode selects where a joining node's row is placed in M.
type InsertMode int

const (
	// InsertAppend places new rows at the bottom of M (§3): later nodes
	// receive streams from earlier nodes.
	InsertAppend InsertMode = iota + 1
	// InsertRandom splices new rows at a uniformly random position (§5),
	// which makes coordinated adversarial arrivals equivalent to random
	// failures.
	InsertRandom
)

// Common errors returned by Curtain operations.
var (
	// ErrUnknownNode is returned when an operation names an id not in M.
	ErrUnknownNode = errors.New("core: unknown node")
	// ErrDegree is returned for invalid degree transitions or values.
	ErrDegree = errors.New("core: invalid degree")
	// ErrNodeFailed is returned when an operation requires a working node.
	ErrNodeFailed = errors.New("core: node is failed")
	// ErrNodeWorking is returned when an operation requires a failed node.
	ErrNodeWorking = errors.New("core: node is not failed")
)

type row struct {
	id      NodeID
	threads []int // sorted, distinct thread indices; len == degree
	failed  bool
	pos     int // index in Curtain.rows, kept current
}

// Curtain is the server-side overlay state (the matrix M plus failure
// tags). It is not safe for concurrent use; the protocol layer serialises
// access.
type Curtain struct {
	k      int
	d      int
	mode   InsertMode
	rng    *rand.Rand
	rows   []*row
	occ    [][]*row // per-thread occupancy, in row order
	index  map[NodeID]*row
	nextID NodeID
}

// Option configures a Curtain.
type Option func(*Curtain)

// WithInsertMode selects append (default) or random row insertion.
func WithInsertMode(m InsertMode) Option {
	return func(c *Curtain) { c.mode = m }
}

// New creates an empty curtain with k threads and default node degree d.
// The paper's analysis assumes d >= 2 and k >= c·d² for a constant c;
// New only enforces the structural requirement 1 <= d <= k and leaves the
// analytic regime to callers (the chain baseline legitimately uses d = 1).
// rng drives all randomness (thread selection, insert positions) and must
// not be shared concurrently.
func New(k, d int, rng *rand.Rand, opts ...Option) (*Curtain, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d, want > 0", ErrDegree, k)
	}
	if d < 1 || d > k {
		return nil, fmt.Errorf("%w: d = %d, want in [1, k=%d]", ErrDegree, d, k)
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	c := &Curtain{
		k:      k,
		d:      d,
		mode:   InsertAppend,
		rng:    rng,
		occ:    make([][]*row, k),
		index:  make(map[NodeID]*row),
		nextID: 1,
	}
	for _, o := range opts {
		o(c)
	}
	if c.mode != InsertAppend && c.mode != InsertRandom {
		return nil, fmt.Errorf("core: invalid insert mode %d", c.mode)
	}
	return c, nil
}

// K returns the number of server threads.
func (c *Curtain) K() int { return c.k }

// D returns the default node degree.
func (c *Curtain) D() int { return c.d }

// Mode returns the insert mode.
func (c *Curtain) Mode() InsertMode { return c.mode }

// NumNodes returns the number of rows in M (working + failed).
func (c *Curtain) NumNodes() int { return len(c.rows) }

// NumFailed returns the number of failure-tagged rows.
func (c *Curtain) NumFailed() int {
	n := 0
	for _, r := range c.rows {
		if r.failed {
			n++
		}
	}
	return n
}

// Contains reports whether id currently has a row in M.
func (c *Curtain) Contains(id NodeID) bool {
	_, ok := c.index[id]
	return ok
}

// IsFailed reports whether id is failure-tagged. Unknown ids report false.
func (c *Curtain) IsFailed(id NodeID) bool {
	r, ok := c.index[id]
	return ok && r.failed
}

// Degree returns the current degree of id, or an error for unknown ids.
func (c *Curtain) Degree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return len(r.threads), nil
}

// Threads returns a copy of the thread indices id is clipped to.
func (c *Curtain) Threads(id NodeID) ([]int, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return append([]int(nil), r.threads...), nil
}

// Nodes returns all node ids in row order (top of the curtain first).
func (c *Curtain) Nodes() []NodeID {
	out := make([]NodeID, len(c.rows))
	for i, r := range c.rows {
		out[i] = r.id
	}
	return out
}

// Join adds a working node with the default degree (the hello protocol)
// and returns its id.
func (c *Curtain) Join() NodeID {
	id, err := c.join(c.d, false)
	if err != nil {
		panic(err) // default degree is validated at construction
	}
	return id
}

// JoinDegree adds a working node with an explicit degree (heterogeneous
// bandwidths, §5).
func (c *Curtain) JoinDegree(d int) (NodeID, error) {
	return c.join(d, false)
}

// JoinTagged adds a node pre-tagged as failed or working. The analysis of
// §4 interchanges the order of joining and failing — "the node tosses a
// coin before joining" — and JoinTagged is that coin toss made explicit
// for the experiment harness.
func (c *Curtain) JoinTagged(failed bool) NodeID {
	id, err := c.join(c.d, failed)
	if err != nil {
		panic(err)
	}
	return id
}

func (c *Curtain) join(d int, failed bool) (NodeID, error) {
	if d < 1 || d > c.k {
		return 0, fmt.Errorf("%w: join degree %d, want in [1, k=%d]", ErrDegree, d, c.k)
	}
	r := &row{
		id:      c.nextID,
		threads: sampleDistinct(c.rng, c.k, d),
		failed:  failed,
	}
	c.nextID++
	pos := len(c.rows)
	if c.mode == InsertRandom {
		pos = c.rng.Intn(len(c.rows) + 1)
	}
	c.insertRow(r, pos)
	c.index[r.id] = r
	return r.id, nil
}

// Leave removes a working node gracefully (the good-bye protocol): its row
// is deleted, which matches each of its children to one of its parents
// along every thread.
func (c *Curtain) Leave(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d (use Repair)", ErrNodeFailed, id)
	}
	c.removeRow(r)
	return nil
}

// Fail tags a node as failed (a non-ergodic failure or the start of an
// ergodic outage). The row remains in M — the failed node still occupies
// its slots and blocks its threads — until Repair or Recover.
func (c *Curtain) Fail(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d", ErrNodeFailed, id)
	}
	r.failed = true
	return nil
}

// Recover clears a failure tag (the end of an ergodic outage such as
// transient congestion).
func (c *Curtain) Recover(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d", ErrNodeWorking, id)
	}
	r.failed = false
	return nil
}

// Repair removes a failed node's row (the server-side repair procedure:
// the failed node's parents are redirected to its children, exactly as in
// a graceful leave performed on the node's behalf).
func (c *Curtain) Repair(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d (use Leave)", ErrNodeWorking, id)
	}
	c.removeRow(r)
	return nil
}

// ReduceDegree handles congestion (§5): the node picks one of its threads
// at random and joins that parent and child directly, dropping its own
// degree by one. A node cannot drop below degree 1. It returns the thread
// index that was dropped, so the control plane can redirect its streams.
func (c *Curtain) ReduceDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) <= 1 {
		return 0, fmt.Errorf("%w: node %d already at degree 1", ErrDegree, id)
	}
	i := c.rng.Intn(len(r.threads))
	t := r.threads[i]
	r.threads = append(r.threads[:i], r.threads[i+1:]...)
	c.occRemove(t, r)
	return t, nil
}

// IncreaseDegree re-grows a previously reduced node (§5): the server turns
// one of the zeroes in the node's row into a one at random. It returns the
// thread index gained, so the control plane can splice the node in.
func (c *Curtain) IncreaseDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) >= c.k {
		return 0, fmt.Errorf("%w: node %d already on all %d threads", ErrDegree, id, c.k)
	}
	// Pick a uniform random thread the node is not on.
	have := make(map[int]bool, len(r.threads))
	for _, t := range r.threads {
		have[t] = true
	}
	pick := c.rng.Intn(c.k - len(r.threads))
	for t := 0; t < c.k; t++ {
		if have[t] {
			continue
		}
		if pick == 0 {
			r.threads = append(r.threads, t)
			sort.Ints(r.threads)
			c.occInsert(t, r)
			return t, nil
		}
		pick--
	}
	panic("core: unreachable thread selection")
}

// Parents returns, per thread the node is clipped to, the id of the stream
// provider on that thread (ServerID when the node is the topmost clip).
// The slice is ordered by thread index and may repeat ids.
func (c *Curtain) Parents(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, t := range r.threads {
		out = append(out, c.predecessor(t, r))
	}
	return out, nil
}

// Children returns, per thread, the id of the node receiving this node's
// stream on that thread. Threads on which the node is the bottom clip
// contribute nothing.
func (c *Curtain) Children(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, t := range r.threads {
		if s := c.successor(t, r); s != 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

// HangingThreads returns, per thread, the id of its current bottom clip
// (ServerID for threads no node is on). These are the k slots a new node's
// d-tuple is drawn from.
func (c *Curtain) HangingThreads() []NodeID {
	out := make([]NodeID, c.k)
	for t := 0; t < c.k; t++ {
		if l := c.occ[t]; len(l) > 0 {
			out[t] = l[len(l)-1].id
		}
	}
	return out
}

// --- internal row plumbing ---

// sampleDistinct draws d distinct ints from [0,k) uniformly, sorted.
func sampleDistinct(rng *rand.Rand, k, d int) []int {
	if d*3 >= k {
		// Dense: partial Fisher-Yates over all k.
		perm := rng.Perm(k)[:d]
		sort.Ints(perm)
		return perm
	}
	seen := make(map[int]bool, d)
	out := make([]int, 0, d)
	for len(out) < d {
		t := rng.Intn(k)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

func (c *Curtain) insertRow(r *row, pos int) {
	c.rows = append(c.rows, nil)
	copy(c.rows[pos+1:], c.rows[pos:])
	c.rows[pos] = r
	for i := pos; i < len(c.rows); i++ {
		c.rows[i].pos = i
	}
	for _, t := range r.threads {
		c.occInsert(t, r)
	}
}

func (c *Curtain) removeRow(r *row) {
	for _, t := range r.threads {
		c.occRemove(t, r)
	}
	pos := r.pos
	c.rows = append(c.rows[:pos], c.rows[pos+1:]...)
	for i := pos; i < len(c.rows); i++ {
		c.rows[i].pos = i
	}
	delete(c.index, r.id)
}

// occInsert places r into thread t's occupancy list at the index matching
// row order.
func (c *Curtain) occInsert(t int, r *row) {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos > r.pos })
	l = append(l, nil)
	copy(l[i+1:], l[i:])
	l[i] = r
	c.occ[t] = l
}

func (c *Curtain) occRemove(t int, r *row) {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos >= r.pos })
	if i >= len(l) || l[i] != r {
		panic(fmt.Sprintf("core: occupancy list for thread %d out of sync with node %d", t, r.id))
	}
	c.occ[t] = append(l[:i], l[i+1:]...)
}

// predecessor returns the id of the row above r on thread t (ServerID when
// r is topmost).
func (c *Curtain) predecessor(t int, r *row) NodeID {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos >= r.pos })
	if i == 0 {
		return ServerID
	}
	return l[i-1].id
}

// successor returns the id of the row below r on thread t, or 0 when r is
// the bottom clip. (0 doubles as ServerID; callers use it as "none" here
// because the server is never below a node.)
func (c *Curtain) successor(t int, r *row) NodeID {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos > r.pos })
	if i >= len(l) {
		return 0
	}
	return l[i].id
}

// Validate checks internal consistency; it is used by tests and costs
// O(N·d + k·occ). It returns the first inconsistency found.
func (c *Curtain) Validate() error {
	for i, r := range c.rows {
		if r.pos != i {
			return fmt.Errorf("core: row %d has pos %d", i, r.pos)
		}
		if got, ok := c.index[r.id]; !ok || got != r {
			return fmt.Errorf("core: index out of sync for node %d", r.id)
		}
		if len(r.threads) == 0 {
			return fmt.Errorf("core: node %d has no threads", r.id)
		}
		for j := 1; j < len(r.threads); j++ {
			if r.threads[j] <= r.threads[j-1] {
				return fmt.Errorf("core: node %d threads not sorted/distinct", r.id)
			}
		}
	}
	if len(c.index) != len(c.rows) {
		return fmt.Errorf("core: index size %d, rows %d", len(c.index), len(c.rows))
	}
	total := 0
	for t, l := range c.occ {
		last := -1
		for _, r := range l {
			if r.pos <= last {
				return fmt.Errorf("core: thread %d occupancy out of order", t)
			}
			last = r.pos
			found := false
			for _, rt := range r.threads {
				if rt == t {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("core: node %d in thread %d occupancy without membership", r.id, t)
			}
		}
		total += len(l)
	}
	want := 0
	for _, r := range c.rows {
		want += len(r.threads)
	}
	if total != want {
		return fmt.Errorf("core: occupancy total %d, want %d", total, want)
	}
	return nil
}

// Topology is an analysis-plane snapshot of the overlay as a DAG. Graph
// node 0 is the server; node i+1 is row i of M at snapshot time.
type Topology struct {
	// Graph holds every structural edge, including edges incident to
	// failed nodes (a failed node still occupies its slots).
	Graph *graph.Digraph
	// IDs maps graph index -> NodeID (IDs[0] == ServerID).
	IDs []NodeID
	// Index maps NodeID -> graph index.
	Index map[NodeID]int
	// Working[i] reports whether graph node i forwards data. Working[0]
	// (the server) is always true.
	Working []bool
	// ThreadBottom[t] is the graph index of thread t's bottom clip (0
	// when the thread hangs from the server directly).
	ThreadBottom []int
}

// Snapshot exports the current overlay.
func (c *Curtain) Snapshot() *Topology {
	n := len(c.rows)
	t := &Topology{
		Graph:        graph.NewDigraph(n + 1),
		IDs:          make([]NodeID, n+1),
		Index:        make(map[NodeID]int, n+1),
		Working:      make([]bool, n+1),
		ThreadBottom: make([]int, c.k),
	}
	t.IDs[0] = ServerID
	t.Index[ServerID] = 0
	t.Working[0] = true
	for i, r := range c.rows {
		t.IDs[i+1] = r.id
		t.Index[r.id] = i + 1
		t.Working[i+1] = !r.failed
	}
	for th := 0; th < c.k; th++ {
		prev := 0
		for _, r := range c.occ[th] {
			cur := r.pos + 1
			if _, err := t.Graph.AddEdge(prev, cur); err != nil {
				panic(err) // indices valid by construction
			}
			prev = cur
		}
		t.ThreadBottom[th] = prev
	}
	return t
}

// Effective returns the data-plane graph: the structural graph with every
// edge incident to a failed node removed. Failed nodes remain as isolated
// vertices so indices line up with the snapshot.
func (t *Topology) Effective() *graph.Digraph {
	g := graph.NewDigraph(t.Graph.NumNodes())
	for id := 0; id < t.Graph.NumEdges(); id++ {
		e := t.Graph.Edge(id)
		if t.Working[e.From] && t.Working[e.To] {
			if _, err := g.AddEdge(e.From, e.To); err != nil {
				panic(err)
			}
		}
	}
	return g
}
