package core

// This file holds the indexed state behind Curtain: an order-statistic
// treap over the rows of M (the "row order" the paper's matrix picture
// implies) and one ordered occupancy treap per thread. Together they turn
// the hello/good-bye/repair hot paths from O(N·d) slice surgery into
// O(d·log N) pointer surgery, which is what lets one tracker honor the
// paper's constant-message-cost claim at millions of rows.
//
// Row order is maintained two ways at once:
//
//   - The global treap (olist) is keyed implicitly by position and
//     augmented with subtree sizes, so inserting at a uniformly random
//     rank (§5 random-insert mode) and deleting a row are O(log N).
//   - Every row also carries a 64-bit order label, strictly increasing in
//     row order, so "is row a above row b?" is a single integer compare.
//     Labels are assigned midpoint-style with a fixed stride at the ends;
//     when a gap is exhausted the whole list is relabeled evenly (O(N),
//     but needs ~60 consecutive splits of one gap to trigger, which
//     append-mode and random-mode workloads never approach).
//
// The per-thread treaps (tlist) are ordered by those labels, so finding a
// joining row's clip position on a thread, its parent (predecessor) and
// its child (successor) are O(log m) for m occupants — no linear scans
// and no O(m) slice shifts. Relabeling preserves relative order, so the
// thread treaps never need fixing up.
//
// Treap priorities come from a private splitmix64 stream, NOT from the
// Curtain's rng: tree shape is invisible to callers, and the §3/§5
// randomness contract (which the differential tests pin byte-for-byte
// against the seed implementation) must consume the caller's rng stream
// exactly as the linear version did.

const (
	// labelMax is the exclusive upper bound of the label space.
	labelMax uint64 = 1 << 62
	// labelStep is the stride used when inserting at either end, leaving
	// labelMax/labelStep ≈ 2^30 appends before a relabel is ever needed.
	labelStep uint64 = 1 << 32
)

// onode is one row's handle in the global order treap.
type onode struct {
	left, right, parent *onode
	size                int    // subtree size, for rank operations
	prio                uint64 // heap priority (max-heap)
	label               uint64 // order label; strictly increasing in row order
	r                   *row
}

func osize(n *onode) int {
	if n == nil {
		return 0
	}
	return n.size
}

// olist is the order-statistic treap over all rows of M.
type olist struct {
	root      *onode
	free      *onode // removed nodes, recycled via their parent links
	prioState uint64 // splitmix64 state for treap priorities
	relabels  int    // full relabel passes performed (observability/tests)
}

// nextPrio draws the next treap priority from the private splitmix64
// stream (independent of the Curtain's semantic rng).
func (l *olist) nextPrio() uint64 {
	l.prioState += 0x9E3779B97F4A7C15
	z := l.prioState
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (l *olist) len() int { return osize(l.root) }

// insertAt links r in at 0-based position pos (0 <= pos <= len) and
// assigns its order label.
func (l *olist) insertAt(pos int, r *row) *onode {
	x := l.free
	if x != nil {
		l.free = x.parent
		x.parent = nil
	} else {
		x = &onode{}
	}
	x.size, x.prio, x.r = 1, l.nextPrio(), r
	r.on = x
	if l.root == nil {
		x.label = labelMax / 2
		l.root = x
		return x
	}
	n := l.root
	for {
		if pos <= osize(n.left) {
			if n.left == nil {
				n.left = x
				x.parent = n
				break
			}
			n = n.left
		} else {
			pos -= osize(n.left) + 1
			if n.right == nil {
				n.right = x
				x.parent = n
				break
			}
			n = n.right
		}
	}
	for p := x.parent; p != nil; p = p.parent {
		p.size++
	}
	for x.parent != nil && x.prio > x.parent.prio {
		l.rotateUp(x)
	}
	l.assignLabel(x)
	return x
}

// remove unlinks x from the treap and recycles it — x must not be
// touched by the caller afterwards.
func (l *olist) remove(x *onode) {
	// Rotate x down to at most one child, keeping the heap property among
	// the others, then splice it out and fix sizes above.
	for x.left != nil && x.right != nil {
		if x.left.prio > x.right.prio {
			l.rotateUp(x.left)
		} else {
			l.rotateUp(x.right)
		}
	}
	child := x.left
	if child == nil {
		child = x.right
	}
	if child != nil {
		child.parent = x.parent
	}
	p := x.parent
	switch {
	case p == nil:
		l.root = child
	case p.left == x:
		p.left = child
	default:
		p.right = child
	}
	for ; p != nil; p = p.parent {
		p.size--
	}
	x.left, x.right, x.size, x.label, x.prio, x.r = nil, nil, 0, 0, 0, nil
	x.parent = l.free
	l.free = x
}

// rotateUp moves x above its parent, preserving in-order sequence and
// subtree sizes.
func (l *olist) rotateUp(x *onode) {
	p := x.parent
	g := p.parent
	if x == p.left {
		p.left = x.right
		if p.left != nil {
			p.left.parent = p
		}
		x.right = p
	} else {
		p.right = x.left
		if p.right != nil {
			p.right.parent = p
		}
		x.left = p
	}
	p.parent = x
	x.parent = g
	switch {
	case g == nil:
		l.root = x
	case g.left == p:
		g.left = x
	default:
		g.right = x
	}
	p.size = 1 + osize(p.left) + osize(p.right)
	x.size = 1 + osize(x.left) + osize(x.right)
}

// assignLabel gives the freshly linked x a label strictly between its
// neighbors', relabeling the whole list when the gap is exhausted.
func (l *olist) assignLabel(x *onode) {
	lo, hi := uint64(0), labelMax
	if p := oprev(x); p != nil {
		lo = p.label
	}
	if n := onext(x); n != nil {
		hi = n.label
	}
	if hi-lo < 2 {
		l.relabel()
		return
	}
	switch {
	case hi == labelMax:
		// Appending at the bottom: fixed stride, not midpoint, so the tail
		// gap does not halve on every append.
		if d := hi - lo; d > labelStep {
			x.label = lo + labelStep
		} else {
			x.label = lo + d/2
		}
	case lo == 0:
		// Inserting at the top.
		if hi > labelStep {
			x.label = hi - labelStep
		} else {
			x.label = hi / 2
		}
	default:
		x.label = lo + (hi-lo)/2
	}
}

// relabel rewrites every label evenly spaced, preserving order. O(N).
func (l *olist) relabel() {
	n := uint64(osize(l.root))
	step := labelMax / (n + 1)
	i := uint64(1)
	l.inorder(func(x *onode) {
		x.label = i * step
		i++
	})
	l.relabels++
}

// rankOf returns x's 0-based position, walking parent pointers: O(depth).
func rankOf(x *onode) int {
	r := osize(x.left)
	for n := x; n.parent != nil; n = n.parent {
		if n == n.parent.right {
			r += osize(n.parent.left) + 1
		}
	}
	return r
}

// oprev returns the in-order predecessor of x, or nil.
func oprev(x *onode) *onode {
	if x.left != nil {
		n := x.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	n := x
	for n.parent != nil && n == n.parent.left {
		n = n.parent
	}
	return n.parent
}

// onext returns the in-order successor of x, or nil.
func onext(x *onode) *onode {
	if x.right != nil {
		n := x.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	n := x
	for n.parent != nil && n == n.parent.right {
		n = n.parent
	}
	return n.parent
}

// inorder visits every node top-of-curtain first. Iterative, so a
// million-row walk never risks the stack.
func (l *olist) inorder(fn func(*onode)) {
	stack := make([]*onode, 0, 64)
	n := l.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			stack = append(stack, n)
			n = n.left
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(n)
		n = n.right
	}
}

// tnode is one row's clip in one thread's occupancy treap.
type tnode struct {
	left, right, parent *tnode
	prio                uint64
	r                   *row
}

// tlist is one thread's occupancy, ordered by the rows' order labels
// (i.e. by row order). The zero value is an empty thread.
type tlist struct {
	root *tnode
	free *tnode // removed clips, recycled via their parent links
}

// insert links r into the thread in row order and returns its clip handle.
// prio must come from the olist's priority stream.
func (t *tlist) insert(r *row, prio uint64) *tnode {
	x := t.free
	if x != nil {
		t.free = x.parent
		x.parent = nil
	} else {
		x = &tnode{}
	}
	x.prio, x.r = prio, r
	if t.root == nil {
		t.root = x
		return x
	}
	n := t.root
	for {
		if r.on.label < n.r.on.label {
			if n.left == nil {
				n.left = x
				x.parent = n
				break
			}
			n = n.left
		} else {
			if n.right == nil {
				n.right = x
				x.parent = n
				break
			}
			n = n.right
		}
	}
	for x.parent != nil && x.prio > x.parent.prio {
		t.rotateUp(x)
	}
	return x
}

// remove unlinks clip x from the thread and recycles it — x must not be
// touched by the caller afterwards.
func (t *tlist) remove(x *tnode) {
	for x.left != nil && x.right != nil {
		if x.left.prio > x.right.prio {
			t.rotateUp(x.left)
		} else {
			t.rotateUp(x.right)
		}
	}
	child := x.left
	if child == nil {
		child = x.right
	}
	if child != nil {
		child.parent = x.parent
	}
	p := x.parent
	switch {
	case p == nil:
		t.root = child
	case p.left == x:
		p.left = child
	default:
		p.right = child
	}
	x.left, x.right, x.prio, x.r = nil, nil, 0, nil
	x.parent = t.free
	t.free = x
}

func (t *tlist) rotateUp(x *tnode) {
	p := x.parent
	g := p.parent
	if x == p.left {
		p.left = x.right
		if p.left != nil {
			p.left.parent = p
		}
		x.right = p
	} else {
		p.right = x.left
		if p.right != nil {
			p.right.parent = p
		}
		x.left = p
	}
	p.parent = x
	x.parent = g
	switch {
	case g == nil:
		t.root = x
	case g.left == p:
		g.left = x
	default:
		g.right = x
	}
}

// tprev returns the clip directly above x on the thread, or nil when x is
// the topmost clip (its stream comes from the server).
func tprev(x *tnode) *tnode {
	if x.left != nil {
		n := x.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	n := x
	for n.parent != nil && n == n.parent.left {
		n = n.parent
	}
	return n.parent
}

// tnext returns the clip directly below x on the thread, or nil when x is
// the bottom clip.
func tnext(x *tnode) *tnode {
	if x.right != nil {
		n := x.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	n := x
	for n.parent != nil && n == n.parent.right {
		n = n.parent
	}
	return n.parent
}

// last returns the bottom clip of the thread, or nil when it hangs from
// the server. O(log m) — this is the indexed hanging-thread lookup.
func (t *tlist) last() *tnode {
	if t.root == nil {
		return nil
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n
}

// inorder visits the thread's clips top first.
func (t *tlist) inorder(fn func(*tnode)) {
	stack := make([]*tnode, 0, 32)
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			stack = append(stack, n)
			n = n.left
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(n)
		n = n.right
	}
}
