package core

import (
	"errors"
	"math/rand"
	"testing"

	"ncast/internal/graph"
)

func newCurtain(t testing.TB, k, d int, seed int64, opts ...Option) *Curtain {
	t.Helper()
	c, err := New(k, d, rand.New(rand.NewSource(seed)), opts...)
	if err != nil {
		t.Fatalf("New(%d,%d): %v", k, d, err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(1))
	tests := []struct {
		name    string
		k, d    int
		rng     *rand.Rand
		opts    []Option
		wantErr bool
	}{
		{"ok", 8, 2, r, nil, false},
		{"d equals k", 4, 4, r, nil, false},
		{"zero k", 0, 2, r, nil, true},
		{"zero d", 8, 0, r, nil, true},
		{"d exceeds k", 4, 5, r, nil, true},
		{"nil rng", 8, 2, nil, nil, true},
		{"bad mode", 8, 2, r, []Option{WithInsertMode(InsertMode(99))}, true},
		{"random mode", 8, 2, r, []Option{WithInsertMode(InsertRandom)}, false},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := New(tt.k, tt.d, tt.rng, tt.opts...)
			if (err != nil) != tt.wantErr {
				t.Errorf("New error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestJoinBasics(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 8, 3, 1)
	id := c.Join()
	if id == ServerID {
		t.Fatal("client got ServerID")
	}
	if c.NumNodes() != 1 || !c.Contains(id) || c.IsFailed(id) {
		t.Fatal("join bookkeeping wrong")
	}
	d, err := c.Degree(id)
	if err != nil || d != 3 {
		t.Fatalf("Degree = %d, %v", d, err)
	}
	th, err := c.Threads(id)
	if err != nil || len(th) != 3 {
		t.Fatalf("Threads = %v, %v", th, err)
	}
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			t.Fatal("threads not sorted distinct")
		}
	}
	// First node's parents are all the server.
	parents, err := c.Parents(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parents {
		if p != ServerID {
			t.Fatalf("first node parent = %d, want server", p)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParentsChildrenChain(t *testing.T) {
	t.Parallel()
	// k = d = 2: every node takes both threads, forming a chain.
	c := newCurtain(t, 2, 2, 2)
	a := c.Join()
	b := c.Join()
	pa, _ := c.Parents(a)
	pb, _ := c.Parents(b)
	if pa[0] != ServerID || pa[1] != ServerID {
		t.Fatalf("a parents = %v", pa)
	}
	if pb[0] != a || pb[1] != a {
		t.Fatalf("b parents = %v, want [a a]", pb)
	}
	ca, _ := c.Children(a)
	if len(ca) != 2 || ca[0] != b || ca[1] != b {
		t.Fatalf("a children = %v, want [b b]", ca)
	}
	cb, _ := c.Children(b)
	if len(cb) != 0 {
		t.Fatalf("b children = %v, want none", cb)
	}
	hang := c.HangingThreads()
	for _, h := range hang {
		if h != b {
			t.Fatalf("hanging = %v, want all b", hang)
		}
	}
}

func TestLeaveReconnects(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 2, 2, 3)
	a := c.Join()
	b := c.Join()
	x := c.Join()
	// Chain a -> b -> x. Removing b must splice a -> x.
	if err := c.Leave(b); err != nil {
		t.Fatal(err)
	}
	if c.Contains(b) {
		t.Fatal("b still present after leave")
	}
	px, _ := c.Parents(x)
	if px[0] != a || px[1] != a {
		t.Fatalf("x parents after leave = %v, want [a a]", px)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(b); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("double leave err = %v, want ErrUnknownNode", err)
	}
}

func TestFailRepairLifecycle(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 2, 2, 4)
	a := c.Join()
	b := c.Join()
	x := c.Join()
	if err := c.Fail(b); err != nil {
		t.Fatal(err)
	}
	if !c.IsFailed(b) || c.NumFailed() != 1 {
		t.Fatal("fail tag missing")
	}
	if err := c.Fail(b); !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("double fail err = %v", err)
	}
	if err := c.Leave(b); !errors.Is(err, ErrNodeFailed) {
		t.Fatalf("leave of failed node err = %v", err)
	}
	if err := c.Repair(a); !errors.Is(err, ErrNodeWorking) {
		t.Fatalf("repair of working node err = %v", err)
	}
	// While failed, the topology still routes through b structurally but
	// the effective graph must not.
	top := c.Snapshot()
	eff := top.Effective()
	fs := graph.NewFlowSolver(eff)
	if got := fs.MaxFlow(0, top.Index[x], -1); got != 0 {
		t.Fatalf("connectivity through failed node = %d, want 0", got)
	}
	if err := c.Repair(b); err != nil {
		t.Fatal(err)
	}
	if c.Contains(b) {
		t.Fatal("b present after repair")
	}
	// After repair x is reconnected to a.
	top = c.Snapshot()
	fs = graph.NewFlowSolver(top.Effective())
	if got := fs.MaxFlow(0, top.Index[x], -1); got != 2 {
		t.Fatalf("connectivity after repair = %d, want 2", got)
	}
}

func TestRecoverErgodic(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 4, 2, 5)
	a := c.Join()
	if err := c.Recover(a); !errors.Is(err, ErrNodeWorking) {
		t.Fatalf("recover of working node err = %v", err)
	}
	if err := c.Fail(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(a); err != nil {
		t.Fatal(err)
	}
	if c.IsFailed(a) {
		t.Fatal("still failed after recover")
	}
}

func TestHeterogeneousDegrees(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 8, 2, 6)
	lo, err := c.JoinDegree(1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.JoinDegree(8)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Degree(lo); d != 1 {
		t.Fatalf("lo degree = %d", d)
	}
	if d, _ := c.Degree(hi); d != 8 {
		t.Fatalf("hi degree = %d", d)
	}
	if _, err := c.JoinDegree(0); !errors.Is(err, ErrDegree) {
		t.Fatalf("degree 0 err = %v", err)
	}
	if _, err := c.JoinDegree(9); !errors.Is(err, ErrDegree) {
		t.Fatalf("degree k+1 err = %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCongestionDegreeChanges(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 8, 3, 7)
	id := c.Join()
	before, _ := c.Threads(id)
	dropped, err := c.ReduceDegree(id)
	if err != nil {
		t.Fatal(err)
	}
	if !containsInt(before, dropped) {
		t.Fatalf("dropped thread %d was not held: %v", dropped, before)
	}
	if d, _ := c.Degree(id); d != 2 {
		t.Fatalf("degree after reduce = %d", d)
	}
	if _, err := c.ReduceDegree(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReduceDegree(id); !errors.Is(err, ErrDegree) {
		t.Fatalf("reduce below 1 err = %v", err)
	}
	for i := 0; i < 7; i++ {
		gained, err := c.IncreaseDegree(id)
		if err != nil {
			t.Fatalf("increase %d: %v", i, err)
		}
		th, _ := c.Threads(id)
		if !containsInt(th, gained) {
			t.Fatalf("gained thread %d not held: %v", gained, th)
		}
	}
	if d, _ := c.Degree(id); d != 8 {
		t.Fatalf("degree after regrow = %d", d)
	}
	if _, err := c.IncreaseDegree(id); !errors.Is(err, ErrDegree) {
		t.Fatalf("increase beyond k err = %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotStructure(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 6, 2, 8)
	var ids []NodeID
	for i := 0; i < 20; i++ {
		ids = append(ids, c.Join())
	}
	top := c.Snapshot()
	if top.Graph.NumNodes() != 21 {
		t.Fatalf("snapshot nodes = %d, want 21", top.Graph.NumNodes())
	}
	// Every node has in-degree equal to its degree (one edge per thread).
	for _, id := range ids {
		d, _ := c.Degree(id)
		if got := top.Graph.InDegree(top.Index[id]); got != d {
			t.Fatalf("node %d in-degree %d, want %d", id, got, d)
		}
	}
	// Total edges = sum of degrees.
	if got := top.Graph.NumEdges(); got != 40 {
		t.Fatalf("edges = %d, want 40", got)
	}
	// Thread bottoms match HangingThreads.
	hang := c.HangingThreads()
	for th, h := range hang {
		if top.IDs[top.ThreadBottom[th]] != h {
			t.Fatalf("thread %d bottom mismatch", th)
		}
	}
	// Server out-degree is at most k and each thread contributes at most
	// one server edge.
	if got := top.Graph.OutDegree(0); got > 6 {
		t.Fatalf("server out-degree = %d > k", got)
	}
}

func TestFailureFreeConnectivityIsD(t *testing.T) {
	t.Parallel()
	// §3: the d thread-paths of a node are edge-disjoint by construction,
	// so with no failures every node has connectivity exactly d.
	for _, cfg := range []struct{ k, d, n int }{
		{8, 2, 30}, {12, 3, 40}, {16, 4, 25},
	} {
		c := newCurtain(t, cfg.k, cfg.d, int64(cfg.k*cfg.d))
		for i := 0; i < cfg.n; i++ {
			c.Join()
		}
		top := c.Snapshot()
		fs := graph.NewFlowSolver(top.Effective())
		for gi := 1; gi < top.Graph.NumNodes(); gi++ {
			if got := fs.MaxFlow(0, gi, -1); got != cfg.d {
				t.Fatalf("k=%d d=%d: node %d connectivity = %d, want %d",
					cfg.k, cfg.d, gi, got, cfg.d)
			}
		}
	}
}

func TestRandomInsertMode(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 8, 2, 9, WithInsertMode(InsertRandom))
	if c.Mode() != InsertRandom {
		t.Fatal("mode not recorded")
	}
	for i := 0; i < 50; i++ {
		c.Join()
		if err := c.Validate(); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	// Random insertion must still yield full connectivity without
	// failures: the acyclic thread-path argument is order-independent.
	top := c.Snapshot()
	fs := graph.NewFlowSolver(top.Effective())
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if got := fs.MaxFlow(0, gi, -1); got != 2 {
			t.Fatalf("node %d connectivity = %d, want 2", gi, got)
		}
	}
	// And ids must NOT be in row order with high probability (50 random
	// insertions leaving ids sorted has probability 1/50!).
	nodes := c.Nodes()
	sorted := true
	for i := 1; i < len(nodes); i++ {
		if nodes[i] < nodes[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("random insert mode produced perfectly ordered rows")
	}
}

func TestChurnConsistencyRandomized(t *testing.T) {
	t.Parallel()
	// Property-style churn hammering: random joins, leaves, failures,
	// repairs, recovers, degree changes; Validate after every operation.
	for _, mode := range []InsertMode{InsertAppend, InsertRandom} {
		mode := mode
		t.Run(map[InsertMode]string{InsertAppend: "append", InsertRandom: "random"}[mode], func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(77))
			c := newCurtain(t, 10, 3, 78, WithInsertMode(mode))
			var alive []NodeID
			for step := 0; step < 600; step++ {
				op := r.Intn(10)
				switch {
				case op < 4 || len(alive) == 0: // join
					alive = append(alive, c.JoinTagged(r.Intn(10) == 0))
				case op < 6: // leave or repair
					i := r.Intn(len(alive))
					id := alive[i]
					var err error
					if c.IsFailed(id) {
						err = c.Repair(id)
					} else {
						err = c.Leave(id)
					}
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					alive = append(alive[:i], alive[i+1:]...)
				case op < 7: // fail
					id := alive[r.Intn(len(alive))]
					if !c.IsFailed(id) {
						if err := c.Fail(id); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
				case op < 8: // recover
					id := alive[r.Intn(len(alive))]
					if c.IsFailed(id) {
						if err := c.Recover(id); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
				case op < 9: // reduce degree
					id := alive[r.Intn(len(alive))]
					if d, _ := c.Degree(id); d > 1 {
						if _, err := c.ReduceDegree(id); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
				default: // increase degree
					id := alive[r.Intn(len(alive))]
					if d, _ := c.Degree(id); d < c.K() {
						if _, err := c.IncreaseDegree(id); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
					}
				}
				if err := c.Validate(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if c.NumNodes() != len(alive) {
				t.Fatalf("node count %d, tracked %d", c.NumNodes(), len(alive))
			}
		})
	}
}

func TestSnapshotIsAcyclicDAG(t *testing.T) {
	t.Parallel()
	// §6 invariant: the curtain topology remains acyclic under churn.
	r := rand.New(rand.NewSource(55))
	c := newCurtain(t, 8, 2, 56, WithInsertMode(InsertRandom))
	var alive []NodeID
	for step := 0; step < 200; step++ {
		if r.Intn(3) > 0 || len(alive) == 0 {
			alive = append(alive, c.Join())
		} else {
			i := r.Intn(len(alive))
			if err := c.Leave(alive[i]); err != nil {
				t.Fatal(err)
			}
			alive = append(alive[:i], alive[i+1:]...)
		}
	}
	top := c.Snapshot()
	// Every edge goes from a lower graph index... not necessarily: graph
	// index equals row position, and edges follow row order, so
	// From < To always. That IS the acyclicity proof.
	for i := 0; i < top.Graph.NumEdges(); i++ {
		e := top.Graph.Edge(i)
		if e.From >= e.To {
			t.Fatalf("edge %d -> %d violates row order (cycle risk)", e.From, e.To)
		}
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	t.Parallel()
	c := newCurtain(t, 4, 2, 10)
	const ghost NodeID = 999
	if _, err := c.Degree(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Degree")
	}
	if _, err := c.Threads(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Threads")
	}
	if _, err := c.Parents(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Parents")
	}
	if _, err := c.Children(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Children")
	}
	if err := c.Fail(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Fail")
	}
	if err := c.Repair(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Repair")
	}
	if err := c.Recover(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("Recover")
	}
	if _, err := c.ReduceDegree(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("ReduceDegree")
	}
	if _, err := c.IncreaseDegree(ghost); !errors.Is(err, ErrUnknownNode) {
		t.Error("IncreaseDegree")
	}
}

func TestLemma1LeaveDistributionInvariance(t *testing.T) {
	t.Parallel()
	// Lemma 1 sanity check at small scale: the aggregate distribution of
	// server out-degrees after (join n+m, leave the m most recent) should
	// match after (join n). We compare a coarse statistic over many
	// seeds: mean server out-degree.
	const k, d, n, m, trials = 6, 2, 10, 5, 300
	mean := func(churn bool) float64 {
		total := 0
		for s := int64(0); s < trials; s++ {
			c, err := New(k, d, rand.New(rand.NewSource(s)))
			if err != nil {
				t.Fatal(err)
			}
			var extra []NodeID
			for i := 0; i < n; i++ {
				c.Join()
			}
			if churn {
				for i := 0; i < m; i++ {
					extra = append(extra, c.Join())
				}
				for _, id := range extra {
					if err := c.Leave(id); err != nil {
						t.Fatal(err)
					}
				}
			}
			top := c.Snapshot()
			total += top.Graph.OutDegree(0)
		}
		return float64(total) / trials
	}
	base, churned := mean(false), mean(true)
	diff := base - churned
	if diff < 0 {
		diff = -diff
	}
	// Same distribution => means within sampling noise. The statistic is
	// in [d, k]; tolerance 0.35 is ~5 sigma for 300 trials.
	if diff > 0.35 {
		t.Fatalf("server out-degree mean diverged: base %.3f vs churned %.3f", base, churned)
	}
}

func BenchmarkJoinAppend(b *testing.B) {
	c, err := New(64, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Join()
	}
}

func BenchmarkJoinLeaveChurn(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c, err := New(64, 4, r)
	if err != nil {
		b.Fatal(err)
	}
	var alive []NodeID
	for i := 0; i < 1000; i++ {
		alive = append(alive, c.Join())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alive = append(alive, c.Join())
		j := r.Intn(len(alive))
		if err := c.Leave(alive[j]); err != nil {
			b.Fatal(err)
		}
		alive = append(alive[:j], alive[j+1:]...)
	}
}

func BenchmarkSnapshot1000(b *testing.B) {
	c, err := New(64, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		c.Join()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Snapshot()
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
