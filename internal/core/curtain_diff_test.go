package core

// Differential tests: the indexed Curtain against the retained linear-scan
// reference (curtain_ref_test.go). Both are driven by identically seeded
// rngs through identical operation sequences; after every single operation
// the full matrix state must be byte-identical and the indexed side must
// satisfy CheckInvariants. This pins two contracts at once:
//
//  1. topology semantics — row order, occupancy, parents/children,
//     hanging threads all agree with the original implementation;
//  2. rng consumption — any extra or missing draw on either side desyncs
//     every subsequent placement and the matrices diverge immediately.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// matrixString renders M rows in order as "id:threads[:failed]" lines —
// the byte-identical comparison format for the differential tests. The
// exported Curtain.MatrixString emits the same format; every differential
// run compares the two byte-for-byte (indexedMatrix vs refMatrix), which
// pins them together.
func matrixString(ids []NodeID, threads func(NodeID) ([]int, error), failed func(NodeID) bool) string {
	var b strings.Builder
	for _, id := range ids {
		ts, err := threads(id)
		if err != nil {
			fmt.Fprintf(&b, "%d:ERR(%v)\n", id, err)
			continue
		}
		fmt.Fprintf(&b, "%d:%v", id, ts)
		if failed(id) {
			b.WriteString(":failed")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func indexedMatrix(c *Curtain) string {
	return c.MatrixString()
}

func refMatrix(c *refCurtain) string {
	return matrixString(c.Nodes(), c.Threads, c.IsFailed)
}

// diffHarness holds one indexed/reference pair driven in lockstep.
type diffHarness struct {
	ind *Curtain
	ref *refCurtain
	ops *rand.Rand // drives op selection only — never touched by either impl
}

func newDiffHarness(t *testing.T, seed int64, k, d int, mode InsertMode) *diffHarness {
	t.Helper()
	ind, err := New(k, d, rand.New(rand.NewSource(seed)), WithInsertMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	return &diffHarness{
		ind: ind,
		ref: newRefCurtain(k, d, rand.New(rand.NewSource(seed)), mode),
		ops: rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
}

// sameErr requires both sides to fail or succeed together, with the same
// error text when failing.
func sameErr(t *testing.T, step int, op string, a, b error) {
	t.Helper()
	switch {
	case (a == nil) != (b == nil):
		t.Fatalf("step %d %s: indexed err %v, reference err %v", step, op, a, b)
	case a != nil && a.Error() != b.Error():
		t.Fatalf("step %d %s: error text diverged: %q vs %q", step, op, a, b)
	}
}

// pick returns a uniformly random live id, identical on both sides (the
// matrices are in lockstep, so either Nodes() works). Returns false when
// the curtain is empty.
func (h *diffHarness) pick() (NodeID, bool) {
	ids := h.ref.Nodes()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[h.ops.Intn(len(ids))], true
}

// step applies one random operation to both implementations and checks
// the outputs agree.
func (h *diffHarness) step(t *testing.T, step int) {
	t.Helper()
	switch op := h.ops.Intn(100); {
	case op < 30: // hello, default degree
		a, errA := h.ind.JoinDegree(h.ind.D())
		b, errB := h.ref.JoinDegree(h.ref.d)
		sameErr(t, step, "join", errA, errB)
		if a != b {
			t.Fatalf("step %d join: id %d vs %d", step, a, b)
		}
	case op < 38: // hello, heterogeneous degree (possibly invalid)
		d := h.ops.Intn(h.ind.K()+2) - 1 // includes -1, 0 and k+1 rejections
		a, errA := h.ind.JoinDegree(d)
		b, errB := h.ref.JoinDegree(d)
		sameErr(t, step, "join-degree", errA, errB)
		if a != b {
			t.Fatalf("step %d join-degree: id %d vs %d", step, a, b)
		}
	case op < 42: // §4 coin-toss join
		failed := h.ops.Intn(2) == 0
		a := h.ind.JoinTagged(failed)
		b := h.ref.JoinTagged(failed)
		if a != b {
			t.Fatalf("step %d join-tagged: id %d vs %d", step, a, b)
		}
	case op < 62: // good-bye
		id, ok := h.pick()
		if !ok {
			return
		}
		sameErr(t, step, "leave", h.ind.Leave(id), h.ref.Leave(id))
	case op < 72: // failure
		id, ok := h.pick()
		if !ok {
			return
		}
		sameErr(t, step, "fail", h.ind.Fail(id), h.ref.Fail(id))
	case op < 78: // ergodic recovery
		id, ok := h.pick()
		if !ok {
			return
		}
		sameErr(t, step, "recover", h.ind.Recover(id), h.ref.Recover(id))
	case op < 88: // repair
		id, ok := h.pick()
		if !ok {
			return
		}
		sameErr(t, step, "repair", h.ind.Repair(id), h.ref.Repair(id))
	case op < 94: // §5 congestion: degree down
		id, ok := h.pick()
		if !ok {
			return
		}
		a, errA := h.ind.ReduceDegree(id)
		b, errB := h.ref.ReduceDegree(id)
		sameErr(t, step, "reduce", errA, errB)
		if a != b {
			t.Fatalf("step %d reduce: dropped thread %d vs %d", step, a, b)
		}
	case op < 99: // §5 congestion: degree back up
		id, ok := h.pick()
		if !ok {
			return
		}
		a, errA := h.ind.IncreaseDegree(id)
		b, errB := h.ref.IncreaseDegree(id)
		sameErr(t, step, "increase", errA, errB)
		if a != b {
			t.Fatalf("step %d increase: gained thread %d vs %d", step, a, b)
		}
	default: // op on an id that was never issued
		ghost := NodeID(1 << 40)
		sameErr(t, step, "ghost-leave", h.ind.Leave(ghost), h.ref.Leave(ghost))
		if !errors.Is(h.ind.Leave(ghost), ErrUnknownNode) {
			t.Fatalf("step %d: ghost leave did not return ErrUnknownNode", step)
		}
	}
}

// verify compares the complete observable state of both implementations.
func (h *diffHarness) verify(t *testing.T, step int) {
	t.Helper()
	if err := h.ind.CheckInvariants(); err != nil {
		t.Fatalf("step %d: invariants: %v", step, err)
	}
	if got, want := indexedMatrix(h.ind), refMatrix(h.ref); got != want {
		t.Fatalf("step %d: matrices diverged\nindexed:\n%s\nreference:\n%s", step, got, want)
	}
	if got, want := fmt.Sprint(h.ind.HangingThreads()), fmt.Sprint(h.ref.HangingThreads()); got != want {
		t.Fatalf("step %d: hanging threads %s vs %s", step, got, want)
	}
	if h.ind.NumFailed() != h.ref.NumFailed() {
		t.Fatalf("step %d: failed count %d vs %d", step, h.ind.NumFailed(), h.ref.NumFailed())
	}
	// Spot-check the neighborhood accessors for one random live node.
	if id, ok := h.pick(); ok {
		pa, errA := h.ind.Parents(id)
		pb, errB := h.ref.Parents(id)
		sameErr(t, step, "parents", errA, errB)
		if fmt.Sprint(pa) != fmt.Sprint(pb) {
			t.Fatalf("step %d: parents of %d: %v vs %v", step, id, pa, pb)
		}
		ca, errA := h.ind.Children(id)
		cb, errB := h.ref.Children(id)
		sameErr(t, step, "children", errA, errB)
		if fmt.Sprint(ca) != fmt.Sprint(cb) {
			t.Fatalf("step %d: children of %d: %v vs %v", step, id, ca, cb)
		}
		// ThreadChildren must be Children with bottom clips kept as zeros.
		tc, err := h.ind.ThreadChildren(id)
		if err != nil {
			t.Fatalf("step %d: thread children of %d: %v", step, id, err)
		}
		compact := make([]NodeID, 0, len(tc))
		for _, cid := range tc {
			if cid != 0 {
				compact = append(compact, cid)
			}
		}
		if fmt.Sprint(compact) != fmt.Sprint(ca) {
			t.Fatalf("step %d: thread children %v inconsistent with children %v", step, tc, ca)
		}
	}
}

// TestDifferentialAgainstReference runs 1,200 seeded op sequences (half
// append mode, half random-insert mode, varying k and d) and requires
// byte-identical matrix state after every operation.
func TestDifferentialAgainstReference(t *testing.T) {
	t.Parallel()
	const seeds = 1200
	const stepsPerSeed = 120
	for seed := int64(0); seed < seeds; seed++ {
		mode := InsertAppend
		if seed%2 == 1 {
			mode = InsertRandom
		}
		// Sweep structural regimes: dense (d*3 >= k) and sparse thread
		// sampling, degree-1 chains, and near-square matrices.
		shapes := [...]struct{ k, d int }{{8, 2}, {16, 3}, {4, 4}, {32, 2}, {6, 1}, {12, 5}}
		shape := shapes[seed%int64(len(shapes))]
		h := newDiffHarness(t, seed, shape.k, shape.d, mode)
		for s := 0; s < stepsPerSeed; s++ {
			h.step(t, s)
			// Every op's return values are compared inside step; the full
			// matrix diff runs on a stride (and always at the end) to keep
			// 1,200 sequences fast under -race. Any placement divergence
			// still surfaces: a desynced rng shifts every later id/thread
			// draw, which the per-op comparisons catch immediately.
			if s%7 == 0 || s == stepsPerSeed-1 {
				h.verify(t, s)
			}
		}
	}
}

// TestDifferentialLongRun drives one deep sequence per mode so the curtain
// grows large enough for non-trivial treap shapes and repeated churn.
func TestDifferentialLongRun(t *testing.T) {
	t.Parallel()
	for _, mode := range []InsertMode{InsertAppend, InsertRandom} {
		h := newDiffHarness(t, int64(77+mode), 16, 3, mode)
		for s := 0; s < 6000; s++ {
			h.step(t, s)
			if s%25 == 0 || s > 5900 {
				h.verify(t, s)
			}
		}
		h.verify(t, 6000)
	}
}
