package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ncast/internal/graph"
)

// TestQuickCurtainInvariants drives random operation sequences (derived
// from quick-generated seeds) against a curtain and asserts the deep
// structural invariants after each: Validate() plus the parent/child
// duality (i is a parent of j on some thread iff j is a child of i).
func TestQuickCurtainInvariants(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, kRaw, dRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw)%14
		d := 1 + int(dRaw)%k
		if d > k {
			d = k
		}
		c, err := New(k, d, r)
		if err != nil {
			return false
		}
		var alive []NodeID
		for step := 0; step < 60; step++ {
			switch {
			case r.Intn(3) > 0 || len(alive) == 0:
				alive = append(alive, c.JoinTagged(r.Intn(8) == 0))
			default:
				i := r.Intn(len(alive))
				id := alive[i]
				if c.IsFailed(id) {
					if err := c.Repair(id); err != nil {
						return false
					}
				} else if err := c.Leave(id); err != nil {
					return false
				}
				alive = append(alive[:i], alive[i+1:]...)
			}
			if err := c.Validate(); err != nil {
				t.Logf("validate: %v", err)
				return false
			}
		}
		// Parent/child duality over the survivors.
		for _, id := range alive {
			parents, err := c.Parents(id)
			if err != nil {
				return false
			}
			for _, p := range parents {
				if p == ServerID {
					continue
				}
				kids, err := c.Children(p)
				if err != nil {
					return false
				}
				found := false
				for _, kid := range kids {
					if kid == id {
						found = true
						break
					}
				}
				if !found {
					t.Logf("duality broken: %d has parent %d but is not its child", id, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickFailureFreeConnectivity asserts, over quick-generated
// configurations, the §3 invariant that a failure-free curtain gives every
// node connectivity exactly d.
func TestQuickFailureFreeConnectivity(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, kRaw, dRaw, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + int(kRaw)%14
		d := 1 + int(dRaw)%k
		n := 1 + int(nRaw)%40
		c, err := New(k, d, r)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			c.Join()
		}
		top := c.Snapshot()
		fs := graph.NewFlowSolver(top.Effective())
		for gi := 1; gi < top.Graph.NumNodes(); gi++ {
			if fs.MaxFlow(0, gi, -1) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
