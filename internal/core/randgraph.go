package core

import (
	"fmt"
	"math/rand"

	"ncast/internal/graph"
)

// RandGraph implements the §6 alternative topology: instead of clipping
// hanging threads at the bottom of the curtain (acyclic, delay linear in
// N), "each new user selects d random edges in the existing network, and
// inserts itself at these edges" — splitting edge (u,v) into (u,x) and
// (x,v). Random graphs are expanders with high probability, so the delay
// becomes logarithmic, at the price of tolerating cycles (and hence a
// small throughput loss from delay spread, which the acyclic curtain
// avoids).
//
// Bootstrapping follows the curtain: the server exposes k unit streams; a
// hanging stream is an edge whose head is not yet assigned, and splitting
// a hanging edge simply clips its tail node to the joining node.
type RandGraph struct {
	k      int
	d      int
	rng    *rand.Rand
	edges  []redge
	failed map[NodeID]bool
	degree map[NodeID]int // in-degree == out-degree per node
	nextID NodeID
}

// redge is a unit-bandwidth stream from From to To; To == 0 marks a
// hanging stream awaiting a receiver.
type redge struct {
	From NodeID
	To   NodeID
}

// NewRandGraph creates the §6 topology with k server streams and default
// node degree d.
func NewRandGraph(k, d int, rng *rand.Rand) (*RandGraph, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d, want > 0", ErrDegree, k)
	}
	if d < 1 || d > k {
		return nil, fmt.Errorf("%w: d = %d, want in [1, k=%d]", ErrDegree, d, k)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	g := &RandGraph{
		k:      k,
		d:      d,
		rng:    rng,
		failed: make(map[NodeID]bool),
		degree: make(map[NodeID]int),
		nextID: 1,
	}
	for i := 0; i < k; i++ {
		g.edges = append(g.edges, redge{From: ServerID})
	}
	return g, nil
}

// K returns the server stream count.
func (g *RandGraph) K() int { return g.k }

// D returns the default node degree.
func (g *RandGraph) D() int { return g.d }

// NumNodes returns the number of client nodes present.
func (g *RandGraph) NumNodes() int { return len(g.degree) }

// Contains reports whether id is in the network.
func (g *RandGraph) Contains(id NodeID) bool {
	_, ok := g.degree[id]
	return ok
}

// IsFailed reports whether id is failure-tagged.
func (g *RandGraph) IsFailed(id NodeID) bool { return g.failed[id] }

// Join inserts a new node at d distinct random edges and returns its id.
func (g *RandGraph) Join() NodeID {
	id, err := g.JoinDegree(g.d)
	if err != nil {
		panic(err) // default degree validated at construction
	}
	return id
}

// JoinDegree inserts a new node at deg distinct random edges.
func (g *RandGraph) JoinDegree(deg int) (NodeID, error) {
	if deg < 1 || deg > len(g.edges) {
		return 0, fmt.Errorf("%w: join degree %d, want in [1, %d]", ErrDegree, deg, len(g.edges))
	}
	id := g.nextID
	g.nextID++
	// Choose deg distinct edge indices.
	picks := g.rng.Perm(len(g.edges))[:deg]
	for _, ei := range picks {
		tail := g.edges[ei].To
		g.edges[ei].To = id                                  // (u,v) -> (u,x)
		g.edges = append(g.edges, redge{From: id, To: tail}) // plus (x,v)
	}
	g.degree[id] = deg
	return id, nil
}

// Leave removes a working node gracefully, splicing each of its incoming
// streams onto one of its outgoing streams (random matching).
func (g *RandGraph) Leave(id NodeID) error {
	if !g.Contains(id) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if g.failed[id] {
		return fmt.Errorf("%w: %d (use Repair)", ErrNodeFailed, id)
	}
	g.remove(id)
	return nil
}

// Fail tags a node as failed; its streams stop carrying data but remain
// structurally present until Repair.
func (g *RandGraph) Fail(id NodeID) error {
	if !g.Contains(id) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if g.failed[id] {
		return fmt.Errorf("%w: %d", ErrNodeFailed, id)
	}
	g.failed[id] = true
	return nil
}

// Repair removes a failed node, splicing around it as in Leave.
func (g *RandGraph) Repair(id NodeID) error {
	if !g.Contains(id) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !g.failed[id] {
		return fmt.Errorf("%w: %d (use Leave)", ErrNodeWorking, id)
	}
	g.remove(id)
	return nil
}

func (g *RandGraph) remove(id NodeID) {
	var in, out []int
	for i, e := range g.edges {
		if e.To == id {
			in = append(in, i)
		}
		if e.From == id {
			out = append(out, i)
		}
	}
	// In- and out-degree are equal by construction; match them randomly.
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	kill := make([]bool, len(g.edges))
	for i, ei := range in {
		g.edges[ei].To = g.edges[out[i]].To
		kill[out[i]] = true
	}
	// Drop spliced-out edges. A splice of mutual streams (u -> id and
	// id -> u) leaves a self-loop (u,u): the node receives its own
	// stream. That is wasted bandwidth, as in the real system, but it
	// preserves the in-degree == out-degree invariant, so it is kept
	// structurally and simply skipped by Snapshot.
	next := g.edges[:0]
	for i, e := range g.edges {
		if kill[i] || e.From == id || e.To == id {
			continue
		}
		next = append(next, e)
	}
	g.edges = next
	delete(g.degree, id)
	delete(g.failed, id)
}

// Snapshot exports the topology for analysis. Hanging streams contribute
// no edge. Self-splices never involve the server, so graph node 0 is
// always the server.
func (g *RandGraph) Snapshot() *Topology {
	ids := make([]NodeID, 0, len(g.degree)+1)
	ids = append(ids, ServerID)
	for id := range g.degree {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	sortNodeIDs(ids[1:])
	t := &Topology{
		Graph:   graph.NewDigraph(len(ids)),
		IDs:     ids,
		Index:   make(map[NodeID]int, len(ids)),
		Working: make([]bool, len(ids)),
	}
	for i, id := range ids {
		t.Index[id] = i
		t.Working[i] = !g.failed[id]
	}
	t.Working[0] = true
	for _, e := range g.edges {
		if e.To == 0 {
			continue // hanging
		}
		from, okF := t.Index[e.From]
		to, okT := t.Index[e.To]
		if !okF || !okT || from == to {
			continue
		}
		if _, err := t.Graph.AddEdge(from, to); err != nil {
			panic(err)
		}
	}
	return t
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Validate checks internal invariants: per-node in-degree equals
// out-degree equals the recorded degree, and the server has exactly k
// outgoing streams.
func (g *RandGraph) Validate() error {
	in := make(map[NodeID]int)
	out := make(map[NodeID]int)
	for _, e := range g.edges {
		out[e.From]++
		if e.To != 0 {
			in[e.To]++
		}
	}
	if out[ServerID] != g.k {
		return fmt.Errorf("core: server has %d streams, want %d", out[ServerID], g.k)
	}
	for id, d := range g.degree {
		if in[id] != d {
			return fmt.Errorf("core: node %d in-degree %d, want %d", id, in[id], d)
		}
		if out[id] != d {
			return fmt.Errorf("core: node %d out-degree %d, want %d", id, out[id], d)
		}
	}
	for id := range in {
		if _, ok := g.degree[id]; !ok && id != ServerID {
			return fmt.Errorf("core: edge references unknown node %d", id)
		}
	}
	return nil
}
