package core

import (
	"math/rand"
	"testing"
)

// TestSteadyStateChurnZeroAlloc pins the row/treap-node recycling: once
// the pools are warm, a churn mix where joins balance removals must not
// allocate — the control plane at million-row scale cannot afford to
// feed the collector on every hello.
func TestSteadyStateChurnZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := New(32, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	const pop = 4096
	alive := make([]NodeID, 0, pop+2)
	for i := 0; i < pop; i++ {
		alive = append(alive, c.Join())
	}
	wl := rand.New(rand.NewSource(2))
	// One cycle: a graceful leave, a failure repair, and two joins — net
	// zero population, exercising every pooled path.
	cycle := func() {
		i := wl.Intn(len(alive))
		id := alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		if err := c.Leave(id); err != nil {
			t.Fatal(err)
		}
		i = wl.Intn(len(alive))
		id = alive[i]
		alive[i] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		if err := c.Fail(id); err != nil {
			t.Fatal(err)
		}
		if err := c.Repair(id); err != nil {
			t.Fatal(err)
		}
		alive = append(alive, c.Join(), c.Join())
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the pools
	}
	// The index map may still rarely rehash in place; allow that noise
	// but nothing per-op.
	if allocs := testing.AllocsPerRun(512, cycle); allocs > 0.05 {
		t.Fatalf("steady-state churn allocates %.3f objects/cycle, want 0", allocs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
