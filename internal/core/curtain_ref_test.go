package core

// This file retains the original linear-scan Curtain implementation as a
// test-only reference oracle. refCurtain is, operation for operation, the
// seed implementation that curtain.go replaced with indexed state: rows in
// a plain slice with O(N) position fixups, per-thread occupancy as sorted
// slices with O(m) insert/remove. The differential tests in
// curtain_diff_test.go drive both implementations with identically seeded
// rngs and assert byte-identical matrix state after every operation —
// which pins both the topology semantics and the rng consumption order of
// the indexed implementation to the original.
//
// Deliberately NOT kept in sync with curtain.go refactors: this is the
// frozen semantic baseline.

import (
	"fmt"
	"math/rand"
	"sort"
)

type refRow struct {
	id      NodeID
	threads []int
	failed  bool
	pos     int
}

type refCurtain struct {
	k      int
	d      int
	mode   InsertMode
	rng    *rand.Rand
	rows   []*refRow
	occ    [][]*refRow
	index  map[NodeID]*refRow
	nextID NodeID
}

func newRefCurtain(k, d int, rng *rand.Rand, mode InsertMode) *refCurtain {
	return &refCurtain{
		k:      k,
		d:      d,
		mode:   mode,
		rng:    rng,
		occ:    make([][]*refRow, k),
		index:  make(map[NodeID]*refRow),
		nextID: 1,
	}
}

func (c *refCurtain) NumNodes() int { return len(c.rows) }

func (c *refCurtain) NumFailed() int {
	n := 0
	for _, r := range c.rows {
		if r.failed {
			n++
		}
	}
	return n
}

func (c *refCurtain) Nodes() []NodeID {
	out := make([]NodeID, len(c.rows))
	for i, r := range c.rows {
		out[i] = r.id
	}
	return out
}

func (c *refCurtain) Threads(id NodeID) ([]int, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return append([]int(nil), r.threads...), nil
}

func (c *refCurtain) IsFailed(id NodeID) bool {
	r, ok := c.index[id]
	return ok && r.failed
}

func (c *refCurtain) JoinDegree(d int) (NodeID, error) {
	return c.join(d, false)
}

func (c *refCurtain) JoinTagged(failed bool) NodeID {
	id, err := c.join(c.d, failed)
	if err != nil {
		panic(err)
	}
	return id
}

func (c *refCurtain) join(d int, failed bool) (NodeID, error) {
	if d < 1 || d > c.k {
		return 0, fmt.Errorf("%w: join degree %d, want in [1, k=%d]", ErrDegree, d, c.k)
	}
	r := &refRow{
		id:      c.nextID,
		threads: sampleDistinct(c.rng, c.k, d),
		failed:  failed,
	}
	c.nextID++
	pos := len(c.rows)
	if c.mode == InsertRandom {
		pos = c.rng.Intn(len(c.rows) + 1)
	}
	c.insertRow(r, pos)
	c.index[r.id] = r
	return r.id, nil
}

func (c *refCurtain) Leave(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d (use Repair)", ErrNodeFailed, id)
	}
	c.removeRow(r)
	return nil
}

func (c *refCurtain) Fail(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if r.failed {
		return fmt.Errorf("%w: %d", ErrNodeFailed, id)
	}
	r.failed = true
	return nil
}

func (c *refCurtain) Recover(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d", ErrNodeWorking, id)
	}
	r.failed = false
	return nil
}

func (c *refCurtain) Repair(id NodeID) error {
	r, ok := c.index[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if !r.failed {
		return fmt.Errorf("%w: %d (use Leave)", ErrNodeWorking, id)
	}
	c.removeRow(r)
	return nil
}

func (c *refCurtain) ReduceDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) <= 1 {
		return 0, fmt.Errorf("%w: node %d already at degree 1", ErrDegree, id)
	}
	i := c.rng.Intn(len(r.threads))
	t := r.threads[i]
	r.threads = append(r.threads[:i], r.threads[i+1:]...)
	c.occRemove(t, r)
	return t, nil
}

func (c *refCurtain) IncreaseDegree(id NodeID) (int, error) {
	r, ok := c.index[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.threads) >= c.k {
		return 0, fmt.Errorf("%w: node %d already on all %d threads", ErrDegree, id, c.k)
	}
	have := make(map[int]bool, len(r.threads))
	for _, t := range r.threads {
		have[t] = true
	}
	pick := c.rng.Intn(c.k - len(r.threads))
	for t := 0; t < c.k; t++ {
		if have[t] {
			continue
		}
		if pick == 0 {
			r.threads = append(r.threads, t)
			sort.Ints(r.threads)
			c.occInsert(t, r)
			return t, nil
		}
		pick--
	}
	panic("core: unreachable thread selection")
}

func (c *refCurtain) Parents(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, t := range r.threads {
		out = append(out, c.predecessor(t, r))
	}
	return out, nil
}

func (c *refCurtain) Children(id NodeID) ([]NodeID, error) {
	r, ok := c.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := make([]NodeID, 0, len(r.threads))
	for _, t := range r.threads {
		if s := c.successor(t, r); s != 0 {
			out = append(out, s)
		}
	}
	return out, nil
}

func (c *refCurtain) HangingThreads() []NodeID {
	out := make([]NodeID, c.k)
	for t := 0; t < c.k; t++ {
		if l := c.occ[t]; len(l) > 0 {
			out[t] = l[len(l)-1].id
		}
	}
	return out
}

func (c *refCurtain) insertRow(r *refRow, pos int) {
	c.rows = append(c.rows, nil)
	copy(c.rows[pos+1:], c.rows[pos:])
	c.rows[pos] = r
	for i := pos; i < len(c.rows); i++ {
		c.rows[i].pos = i
	}
	for _, t := range r.threads {
		c.occInsert(t, r)
	}
}

func (c *refCurtain) removeRow(r *refRow) {
	for _, t := range r.threads {
		c.occRemove(t, r)
	}
	pos := r.pos
	c.rows = append(c.rows[:pos], c.rows[pos+1:]...)
	for i := pos; i < len(c.rows); i++ {
		c.rows[i].pos = i
	}
	delete(c.index, r.id)
}

func (c *refCurtain) occInsert(t int, r *refRow) {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos > r.pos })
	l = append(l, nil)
	copy(l[i+1:], l[i:])
	l[i] = r
	c.occ[t] = l
}

func (c *refCurtain) occRemove(t int, r *refRow) {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos >= r.pos })
	if i >= len(l) || l[i] != r {
		panic(fmt.Sprintf("core: ref occupancy list for thread %d out of sync with node %d", t, r.id))
	}
	c.occ[t] = append(l[:i], l[i+1:]...)
}

func (c *refCurtain) predecessor(t int, r *refRow) NodeID {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos >= r.pos })
	if i == 0 {
		return ServerID
	}
	return l[i-1].id
}

func (c *refCurtain) successor(t int, r *refRow) NodeID {
	l := c.occ[t]
	i := sort.Search(len(l), func(i int) bool { return l[i].pos > r.pos })
	if i >= len(l) {
		return 0
	}
	return l[i].id
}
