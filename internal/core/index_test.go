package core

// White-box tests for the order treap: rank arithmetic, label assignment,
// and the relabel path (which only fires after ~60 consecutive splits of
// one gap, so the differential tests never reach it organically).

import (
	"math/rand"
	"testing"
)

// checkOlist verifies structure, sizes, heap property, label order and
// rank agreement for a bare olist.
func checkOlist(t *testing.T, l *olist) {
	t.Helper()
	i := 0
	var last uint64
	l.inorder(func(x *onode) {
		if x.size != 1+osize(x.left)+osize(x.right) {
			t.Fatalf("size mismatch at rank %d", i)
		}
		if x.parent != nil && x.prio > x.parent.prio {
			t.Fatalf("heap violation at rank %d", i)
		}
		if i > 0 && x.label <= last {
			t.Fatalf("labels not increasing at rank %d: %d after %d", i, x.label, last)
		}
		last = x.label
		if got := rankOf(x); got != i {
			t.Fatalf("rankOf = %d at rank %d", got, i)
		}
		i++
	})
	if i != l.len() {
		t.Fatalf("walk saw %d nodes, len says %d", i, l.len())
	}
}

// TestOlistRelabel splits the same gap until the label space between two
// neighbors is exhausted, forcing the even-relabel pass, and checks order
// survives it.
func TestOlistRelabel(t *testing.T) {
	t.Parallel()
	var l olist
	rows := []*row{{id: 1}, {id: 2}}
	l.insertAt(0, rows[0])
	l.insertAt(1, rows[1])
	// Repeatedly insert directly below the first row: every insert halves
	// the same gap, so ~62 iterations must trigger at least one relabel.
	for i := 0; i < 200; i++ {
		r := &row{id: NodeID(10 + i)}
		rows = append(rows, r)
		l.insertAt(1, r)
		checkOlist(t, &l)
	}
	if l.relabels == 0 {
		t.Fatal("gap exhaustion never triggered a relabel")
	}
	if l.len() != 202 {
		t.Fatalf("len = %d", l.len())
	}
}

// TestOlistFrontInserts exercises the insert-at-top label branch.
func TestOlistFrontInserts(t *testing.T) {
	t.Parallel()
	var l olist
	for i := 0; i < 300; i++ {
		l.insertAt(0, &row{id: NodeID(i + 1)})
	}
	checkOlist(t, &l)
	// Top of the curtain must be the most recent insert.
	first := l.root
	for first.left != nil {
		first = first.left
	}
	if first.r.id != 300 {
		t.Fatalf("top row id = %d", first.r.id)
	}
}

// TestOlistRandomChurn interleaves rank-random inserts and removals and
// checks the treap against a plain slice model.
func TestOlistRandomChurn(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	var l olist
	var model []*row
	for step := 0; step < 5000; step++ {
		if len(model) == 0 || rng.Intn(3) != 0 {
			pos := rng.Intn(len(model) + 1)
			r := &row{id: NodeID(step + 1)}
			l.insertAt(pos, r)
			model = append(model, nil)
			copy(model[pos+1:], model[pos:])
			model[pos] = r
		} else {
			pos := rng.Intn(len(model))
			l.remove(model[pos].on)
			model = append(model[:pos], model[pos+1:]...)
		}
		if step%97 == 0 {
			checkOlist(t, &l)
			i := 0
			l.inorder(func(x *onode) {
				if x.r != model[i] {
					t.Fatalf("step %d: rank %d holds row %d, want %d", step, i, x.r.id, model[i].id)
				}
				i++
			})
		}
	}
}

// TestTlistOrderAndNeighbors drives a thread treap through churn and
// checks last/tprev/tnext against the in-order walk.
func TestTlistOrderAndNeighbors(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	var l olist
	var occ tlist
	type member struct {
		r    *row
		slot *tnode
	}
	var members []member
	for step := 0; step < 3000; step++ {
		if len(members) == 0 || rng.Intn(3) != 0 {
			r := &row{id: NodeID(step + 1)}
			l.insertAt(rng.Intn(l.len()+1), r)
			members = append(members, member{r: r, slot: occ.insert(r, l.nextPrio())})
		} else {
			i := rng.Intn(len(members))
			occ.remove(members[i].slot)
			l.remove(members[i].r.on)
			members = append(members[:i], members[i+1:]...)
		}
		if step%53 != 0 {
			continue
		}
		var walk []*tnode
		occ.inorder(func(x *tnode) { walk = append(walk, x) })
		if len(walk) != len(members) {
			t.Fatalf("step %d: walk %d members, want %d", step, len(walk), len(members))
		}
		for i, x := range walk {
			if i > 0 && x.r.on.label <= walk[i-1].r.on.label {
				t.Fatalf("step %d: thread order broken at %d", step, i)
			}
			var wantPrev, wantNext *tnode
			if i > 0 {
				wantPrev = walk[i-1]
			}
			if i+1 < len(walk) {
				wantNext = walk[i+1]
			}
			if tprev(x) != wantPrev || tnext(x) != wantNext {
				t.Fatalf("step %d: neighbor links broken at %d", step, i)
			}
		}
		if len(walk) == 0 {
			if occ.last() != nil {
				t.Fatalf("step %d: empty thread has a bottom clip", step)
			}
		} else if occ.last() != walk[len(walk)-1] {
			t.Fatalf("step %d: bottom clip mismatch", step)
		}
	}
}
