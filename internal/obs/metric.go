package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// series carries the identity a metric was registered under.
type series struct {
	labels []Label
	key    string
}

func newSeries(labels []Label, key string) series {
	return series{labels: append([]Label(nil), labels...), key: key}
}

// labelMap renders the labels for snapshots (nil when unlabeled).
func (s *series) labelMap() map[string]string {
	if len(s.labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.labels))
	for _, l := range s.labels {
		out[l.Key] = l.Value
	}
	return out
}

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver, so uninstrumented components can hold nil
// counters without branching at call sites.
type Counter struct {
	series
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are no-ops on a nil
// receiver.
type Gauge struct {
	series
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into buckets with fixed upper bounds plus
// an implicit +Inf bucket, tracking the running sum and count. Observe is
// lock- and allocation-free. All methods are no-ops on a nil receiver.
type Histogram struct {
	series
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(s series, bounds []float64) *Histogram {
	return &Histogram{
		series: s,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the branch
	// predictor does better here than binary search would.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveSince records the nanoseconds elapsed since start; it is a no-op
// when start is the zero time (the convention nil-metric timing helpers
// use to skip the clock read entirely).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(float64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// snapshot returns sum, count, and cumulative buckets (Prometheus style:
// each bucket counts observations ≤ its bound; the last bound is +Inf).
func (h *Histogram) snapshot() (sum float64, count uint64, buckets []Bucket) {
	buckets = make([]Bucket, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		buckets[i] = Bucket{LE: le, Count: cum}
	}
	return h.sum.load(), h.count.Load(), buckets
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets returns the default nanosecond buckets used by the
// built-in latency histograms: 1µs to ~4.2s, factor 4.
func LatencyBuckets() []float64 { return ExpBuckets(1e3, 4, 12) }
