package obs

import (
	"testing"
	"time"
)

func TestSeqDelta(t *testing.T) {
	cases := []struct {
		seq, last uint32
		want      int32
	}{
		{seq: 5, last: 4, want: 1},
		{seq: 4, last: 4, want: 0},
		{seq: 3, last: 4, want: -1},
		{seq: 0, last: SeqMod - 1, want: 1},       // wrap forward
		{seq: SeqMod - 1, last: 0, want: -1},      // reorder across the wrap
		{seq: 100, last: SeqMod - 3, want: 103},   // burst across the wrap
		{seq: 1 << 22, last: 0, want: 1 << 22},    // large positive gap
		{seq: 0, last: 1 << 22, want: -(1 << 22)}, // large negative gap
	}
	for _, c := range cases {
		if got := seqDelta(c.seq, c.last); got != c.want {
			t.Errorf("seqDelta(%d, %d) = %d, want %d", c.seq, c.last, got, c.want)
		}
	}
}

func TestLinkTrackerLossLedger(t *testing.T) {
	lt := NewLinkTracker(0)
	// In-order 0..9, then a gap (10..14 lost, 15 arrives), a duplicate,
	// and one late packet filling a presumed hole back in.
	for seq := int32(0); seq < 10; seq++ {
		lt.ObserveFrame("p", 0, seq, 100, 1)
	}
	lt.ObserveFrame("p", 0, 15, 100, 2) // 5 presumed lost
	lt.ObserveFrame("p", 0, 15, 100, 3) // duplicate
	lt.ObserveFrame("p", 0, 12, 100, 4) // late arrival: reorder, hole filled

	reports := lt.Compact(0)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Peer != "p" {
		t.Fatalf("peer = %q, want p", r.Peer)
	}
	if r.Frames != 13 {
		t.Errorf("frames = %d, want 13", r.Frames)
	}
	if r.Bytes != 1300 {
		t.Errorf("bytes = %d, want 1300", r.Bytes)
	}
	// Expected: 10 in-order + 6 for the jump to 15 = 16. Received: 10 + 1
	// (seq 15) + 1 (late seq 12) = 12 → 4/16 = 250‰.
	if r.Expected != 16 || r.Received != 12 {
		t.Errorf("ledger = %d/%d, want 12/16", r.Received, r.Expected)
	}
	if r.Dup != 1 || r.Reordered != 1 {
		t.Errorf("dup/reordered = %d/%d, want 1/1", r.Dup, r.Reordered)
	}
	if r.LossPermille != 250 {
		t.Errorf("loss = %d‰, want 250‰", r.LossPermille)
	}
	if r.LastRecvUnixNanos != 4 {
		t.Errorf("last recv = %d, want 4", r.LastRecvUnixNanos)
	}
}

func TestLinkTrackerSeqWrap(t *testing.T) {
	lt := NewLinkTracker(0)
	lt.ObserveFrame("p", 0, SeqMod-2, 10, 1)
	lt.ObserveFrame("p", 0, SeqMod-1, 10, 2)
	lt.ObserveFrame("p", 0, 0, 10, 3) // wraps, no loss
	lt.ObserveFrame("p", 0, 1, 10, 4)
	r := lt.Compact(0)[0]
	if r.Expected != 4 || r.Received != 4 || r.LossPermille != 0 {
		t.Errorf("wrap ledger = %d/%d loss %d‰, want 4/4 0‰", r.Received, r.Expected, r.LossPermille)
	}
}

func TestLinkTrackerThreadsIndependent(t *testing.T) {
	lt := NewLinkTracker(0)
	// Interleaved threads from the same peer each keep their own ledger:
	// thread 1 restarting at 0 must not read as a huge reorder on thread 0.
	lt.ObserveFrame("p", 0, 100, 10, 1)
	lt.ObserveFrame("p", 1, 0, 10, 2)
	lt.ObserveFrame("p", 0, 101, 10, 3)
	lt.ObserveFrame("p", 1, 1, 10, 4)
	r := lt.Compact(0)[0]
	if r.Expected != 4 || r.Received != 4 || r.Reordered != 0 {
		t.Errorf("two-thread ledger = %d/%d reorders %d, want 4/4 0", r.Received, r.Expected, r.Reordered)
	}
}

func TestLinkTrackerUnstampedFrames(t *testing.T) {
	lt := NewLinkTracker(0)
	lt.ObserveFrame("p", 0, -1, 500, 1) // legacy frame: no seq
	lt.ObserveFrame("p", 0, -1, 500, 2)
	r := lt.Compact(0)[0]
	if r.Frames != 2 || r.Bytes != 1000 {
		t.Errorf("frames/bytes = %d/%d, want 2/1000", r.Frames, r.Bytes)
	}
	if r.Expected != 0 || r.LossPermille != 0 {
		t.Errorf("unstamped frames grew the seq ledger: %d expected, %d‰", r.Expected, r.LossPermille)
	}
}

func TestLinkTrackerRTTEwma(t *testing.T) {
	lt := NewLinkTracker(0)
	lt.ObserveRTT("p", 1000)
	r := lt.Compact(0)[0]
	if r.RTTEwmaNanos != 1000 || r.JitterNanos != 500 || r.RTTSamples != 1 {
		t.Fatalf("first sample: rtt=%d jitter=%d n=%d, want 1000/500/1", r.RTTEwmaNanos, r.JitterNanos, r.RTTSamples)
	}
	// Second sample 2000: jitter += (|2000-1000| - 500)/4 = 625;
	// rtt += (2000-1000)/8 = 1125.
	lt.ObserveRTT("p", 2000)
	r = lt.Compact(0)[0]
	if r.RTTEwmaNanos != 1125 || r.JitterNanos != 625 || r.RTTSamples != 2 {
		t.Fatalf("second sample: rtt=%d jitter=%d n=%d, want 1125/625/2", r.RTTEwmaNanos, r.JitterNanos, r.RTTSamples)
	}
	// Non-positive samples are discarded.
	lt.ObserveRTT("p", 0)
	lt.ObserveRTT("p", -5)
	if r := lt.Compact(0)[0]; r.RTTSamples != 2 {
		t.Errorf("non-positive RTT accepted: n=%d", r.RTTSamples)
	}
}

func TestLinkTrackerPeerCap(t *testing.T) {
	lt := NewLinkTracker(2)
	lt.ObserveFrame("a", 0, 0, 10, 1)
	lt.ObserveFrame("b", 0, 0, 10, 1)
	lt.ObserveFrame("c", 0, 0, 10, 1) // over cap: dropped
	lt.ObservePacket("c", true)       // still over cap
	if got := len(lt.Compact(0)); got != 2 {
		t.Errorf("tracked peers = %d, want 2", got)
	}
	if got := lt.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

func TestLinkTrackerCompactOrderAndLimit(t *testing.T) {
	lt := NewLinkTracker(0)
	lt.ObserveFrame("quiet", 0, -1, 10, 1)
	for i := 0; i < 3; i++ {
		lt.ObserveFrame("busy", 0, -1, 10, 1)
	}
	lt.ObservePacket("busy", true)
	lt.ObservePacket("busy", true)
	lt.ObservePacket("busy", false)
	reports := lt.Compact(0)
	if len(reports) != 2 || reports[0].Peer != "busy" {
		t.Fatalf("order: got %+v, want busy first", reports)
	}
	if reports[0].InnovationPermille != 666 {
		t.Errorf("innovation = %d‰, want 666‰", reports[0].InnovationPermille)
	}
	if got := lt.Compact(1); len(got) != 1 || got[0].Peer != "busy" {
		t.Errorf("Compact(1) = %+v, want just busy", got)
	}
}

func TestLinkTrackerNilSafe(t *testing.T) {
	var lt *LinkTracker
	lt.ObserveFrame("p", 0, 1, 10, 1)
	lt.ObservePacket("p", true)
	lt.ObserveRTT("p", 100)
	if lt.Compact(0) != nil || lt.Dropped() != 0 {
		t.Error("nil tracker returned data")
	}
}

func TestLinkCollectorIngestSnapshot(t *testing.T) {
	c := NewLinkCollector(0, nil)
	c.Ingest(7, "node-7", []LinkReport{
		{Peer: "node-3", Frames: 10, Bytes: 1000, Expected: 100, Received: 90, LossPermille: 100,
			RTTEwmaNanos: 2000, JitterNanos: 300, RTTSamples: 4, Innovative: 8, Redundant: 2, InnovationPermille: 800},
	})
	time.Sleep(20 * time.Millisecond)
	c.Ingest(7, "node-7", []LinkReport{
		{Peer: "node-3", Frames: 20, Bytes: 3000, Expected: 200, Received: 180, LossPermille: 100,
			RTTEwmaNanos: 2000, JitterNanos: 300, RTTSamples: 8, Innovative: 16, Redundant: 4, InnovationPermille: 800},
	})
	snap := c.Snapshot(time.Minute, map[string]uint64{"node-3": 3})
	if len(snap.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(snap.Edges))
	}
	e := snap.Edges[0]
	if e.Reporter != 7 || e.ReporterAddr != "node-7" || e.Peer != "node-3" || e.PeerID != 3 {
		t.Errorf("edge identity = %+v", e)
	}
	if !e.Fresh || e.LossPermille != 100 || e.RTTEwmaNanos != 2000 {
		t.Errorf("edge payload = %+v", e)
	}
	// 2000 bytes arrived between the two ingests ~20ms apart; the exact
	// rate depends on scheduling, but it must be positive and sane.
	if e.GoodputBytesPerSec <= 0 || e.GoodputBytesPerSec > 2000*1000 {
		t.Errorf("goodput = %d B/s, want positive and bounded", e.GoodputBytesPerSec)
	}
	if snap.Worst == nil || snap.Worst.FreshEdges != 1 {
		t.Errorf("worst digest = %+v", snap.Worst)
	}
	// A zero staleness horizon means nothing goes stale.
	if snap := c.Snapshot(0, nil); !snap.Edges[0].Fresh {
		t.Error("zero horizon marked edge stale")
	}
	// A tiny horizon marks it stale and excludes it from the digest.
	time.Sleep(2 * time.Millisecond)
	stale := c.Snapshot(time.Millisecond, nil)
	if stale.Edges[0].Fresh {
		t.Error("edge still fresh past the horizon")
	}
	if stale.Worst.FreshEdges != 0 || stale.Worst.WorstPeer != "" {
		t.Errorf("stale digest = %+v, want empty", stale.Worst)
	}
}

func TestLinkCollectorRemoveAndEvict(t *testing.T) {
	c := NewLinkCollector(2, nil)
	c.Ingest(1, "a", []LinkReport{{Peer: "x", Frames: 1}})
	c.Ingest(2, "b", []LinkReport{{Peer: "x", Frames: 1}})
	c.Ingest(3, "c", []LinkReport{{Peer: "x", Frames: 1}}) // evicts reporter 1's edge
	snap := c.Snapshot(0, nil)
	if len(snap.Edges) != 2 || snap.Dropped != 1 {
		t.Fatalf("edges=%d dropped=%d, want 2/1", len(snap.Edges), snap.Dropped)
	}
	if snap.Edges[0].Reporter != 2 || snap.Edges[1].Reporter != 3 {
		t.Errorf("FIFO eviction kept %+v", snap.Edges)
	}
	c.Remove(2)
	snap = c.Snapshot(0, nil)
	if len(snap.Edges) != 1 || snap.Edges[0].Reporter != 3 {
		t.Errorf("after Remove(2): %+v", snap.Edges)
	}
	// Removing a reporter that never reported is a no-op.
	c.Remove(99)
	if got := len(c.Snapshot(0, nil).Edges); got != 1 {
		t.Errorf("Remove(99) changed edges: %d", got)
	}
}

func TestLinkCollectorNilSafe(t *testing.T) {
	var c *LinkCollector
	c.Ingest(1, "a", []LinkReport{{Peer: "x"}})
	c.Remove(1)
	if c.Summary(0, nil) != nil {
		t.Error("nil collector returned a summary")
	}
	if snap := c.Snapshot(0, nil); len(snap.Edges) != 0 {
		t.Error("nil collector returned edges")
	}
}

func TestSummarizeLinksWorstPeer(t *testing.T) {
	// node-9 is the bad actor: every edge it reports shows inbound loss
	// (receive-side trouble), while everyone else's links are clean.
	edges := []LinkEdge{
		{Reporter: 9, ReporterAddr: "node-9", Peer: "node-1", Fresh: true,
			Expected: 1000, Received: 900, LossPermille: 100},
		{Reporter: 9, ReporterAddr: "node-9", Peer: "node-2", Fresh: true,
			Expected: 1000, Received: 910, LossPermille: 90},
		{Reporter: 1, ReporterAddr: "node-1", Peer: "node-2", Fresh: true,
			Expected: 1000, Received: 1000},
		{Reporter: 2, ReporterAddr: "node-2", Peer: "node-1", Fresh: true,
			Expected: 1000, Received: 1000},
		// Too few samples to rank, despite terrible loss.
		{Reporter: 1, ReporterAddr: "node-1", Peer: "node-5", Fresh: true,
			Expected: 4, Received: 1, LossPermille: 750},
		// Stale: ignored entirely.
		{Reporter: 3, ReporterAddr: "node-3", Peer: "node-9",
			Expected: 1000, Received: 100, LossPermille: 900},
	}
	s := summarizeLinks(edges, map[string]uint64{"node-9": 9})
	if s.Edges != 6 || s.FreshEdges != 5 {
		t.Fatalf("edges=%d fresh=%d, want 6/5", s.Edges, s.FreshEdges)
	}
	// Aggregate inbound for node-9: 1810/2000 received → 95‰.
	if s.WorstPeer != "node-9" || s.WorstPeerLossPermille != 95 {
		t.Errorf("worst = %q @ %d‰, want node-9 @ 95‰", s.WorstPeer, s.WorstPeerLossPermille)
	}
	if s.WorstPeerID != 9 {
		t.Errorf("worst id = %d, want 9", s.WorstPeerID)
	}
	if len(s.WorstEdges) != 2 || s.WorstEdges[0].LossPermille != 100 {
		t.Errorf("worst edges = %+v", s.WorstEdges)
	}

	// Send-side trouble: node-9's loss shows up on edges others report
	// about it. Each reporter's clean inbound edges dilute its own inbound
	// aggregate, so the outbound aggregate names node-9.
	edges = []LinkEdge{
		{Reporter: 1, ReporterAddr: "node-1", Peer: "node-9", Fresh: true,
			Expected: 500, Received: 400, LossPermille: 200},
		{Reporter: 1, ReporterAddr: "node-1", Peer: "node-2", Fresh: true,
			Expected: 500, Received: 500},
		{Reporter: 2, ReporterAddr: "node-2", Peer: "node-9", Fresh: true,
			Expected: 500, Received: 450, LossPermille: 100},
		{Reporter: 2, ReporterAddr: "node-2", Peer: "node-1", Fresh: true,
			Expected: 500, Received: 500},
	}
	s = summarizeLinks(edges, nil)
	// Outbound aggregate for node-9: 850/1000 → 150‰; every reporter's
	// inbound aggregate is at most 100‰.
	if s.WorstPeer != "node-9" || s.WorstPeerLossPermille != 150 {
		t.Errorf("send-side worst = %q @ %d‰, want node-9 @ 150‰", s.WorstPeer, s.WorstPeerLossPermille)
	}

	if summarizeLinks(nil, nil) != nil {
		t.Error("empty edge list produced a summary")
	}
}

func TestSummarizeLinksMaxRTT(t *testing.T) {
	edges := []LinkEdge{
		{Reporter: 1, ReporterAddr: "node-1", Peer: "node-2", Fresh: true,
			RTTSamples: 4, RTTEwmaNanos: 1_000_000},
		{Reporter: 2, ReporterAddr: "node-2", Peer: "node-3", Fresh: true,
			RTTSamples: 4, RTTEwmaNanos: 5_000_000},
		// No samples: RTT fields are zero-value noise, not a measurement.
		{Reporter: 3, ReporterAddr: "node-3", Peer: "node-4", Fresh: true},
	}
	s := summarizeLinks(edges, nil)
	if s.MaxRTTPeer != "node-3" || s.MaxRTTEwmaNanos != 5_000_000 {
		t.Errorf("max rtt = %q @ %d, want node-3 @ 5ms", s.MaxRTTPeer, s.MaxRTTEwmaNanos)
	}
}
