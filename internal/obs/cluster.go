package obs

import (
	"sort"
	"time"
)

// ClusterNode is one node's most recent telemetry report as the tracker
// sees it, plus the tracker-side freshness judgment.
type ClusterNode struct {
	ID   uint64 `json:"id"`
	Addr string `json:"addr"`
	// AgeMillis is how long ago the report arrived; Fresh is whether that
	// age is within the staleness horizon (3 reporting intervals).
	AgeMillis int64 `json:"age_ms"`
	Fresh     bool  `json:"fresh"`

	Rank      int     `json:"rank"`
	MaxRank   int     `json:"max_rank"`
	Progress  float64 `json:"progress"`
	GensDone  int     `json:"gens_done"`
	TotalGens int     `json:"total_gens"`
	Complete  bool    `json:"complete"`
	// GenRanks is the node's rank vector, aligned with the session's
	// canonical generation order.
	GenRanks []int `json:"gen_ranks,omitempty"`

	Received   uint64 `json:"received"`
	Innovative uint64 `json:"innovative"`
	Redundant  uint64 `json:"redundant"`
	Complaints uint64 `json:"complaints"`
	// LeaseRenewals counts liveness leases the node has sent; QueueDepth
	// is its pending decode-queue depth at report time.
	LeaseRenewals uint64 `json:"lease_renewals"`
	QueueDepth    int    `json:"queue_depth"`

	// Decode-delay quantiles (end-to-end, source emission to decode) in
	// nanoseconds, and mean coding overhead in permille (1000 = no waste).
	DelayP50Nanos    int64 `json:"delay_p50_ns"`
	DelayP90Nanos    int64 `json:"delay_p90_ns"`
	DelayP99Nanos    int64 `json:"delay_p99_ns"`
	OverheadPermille int   `json:"overhead_permille"`
}

// GenerationHealth is the fleet-wide view of one generation: how many
// reporting nodes decoded it and who is lagging. Stragglers are listed
// only once a majority of reporters decoded the generation — before that,
// an undecoded generation is just "in flight", not a laggard signal.
type GenerationHealth struct {
	Index int `json:"index"`
	// Gen is the (possibly layer-namespaced) generation id.
	Gen       uint32 `json:"gen"`
	Decoded   int    `json:"decoded"`
	Reporting int    `json:"reporting"`
	// StragglerIDs are nodes still short of full rank while a majority of
	// reporters have decoded.
	StragglerIDs []uint64 `json:"straggler_ids,omitempty"`
}

// ClusterSnapshot is the tracker-aggregated overlay-wide telemetry view:
// every node's latest report, per-generation decode status with straggler
// detection, and fleet-wide decode-delay quantiles. It is what
// Server.ClusterSnapshot returns and the /debug/cluster endpoint serves.
type ClusterSnapshot struct {
	At time.Time `json:"at"`
	// Overlay is the tracker's matrix-M health, for context.
	Overlay *OverlayHealth `json:"overlay,omitempty"`
	// StaleAfterMillis is the freshness horizon applied to Nodes[].Fresh.
	StaleAfterMillis int64              `json:"stale_after_ms"`
	Nodes            []ClusterNode      `json:"nodes"`
	Generations      []GenerationHealth `json:"generations,omitempty"`
	// SlowestID is the reporting node with the largest p50 decode delay
	// (0 when no node has reported a delay yet).
	SlowestID uint64 `json:"slowest_id,omitempty"`
	// Fleet-wide decode-delay quantiles, computed over every reporting
	// node's median delay (a quantile-of-medians approximation — the raw
	// per-generation samples stay node-local to keep reports compact).
	FleetDelayP50Nanos int64 `json:"fleet_delay_p50_ns"`
	FleetDelayP90Nanos int64 `json:"fleet_delay_p90_ns"`
	FleetDelayP99Nanos int64 `json:"fleet_delay_p99_ns"`
	// Trace digests the dissemination-tracing state (worst path, deepest
	// hop) when trace sampling is on and at least one generation has been
	// assembled; see /debug/trace for the full trees.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Links digests the fleet link matrix (worst lossy edges, worst peer,
	// slowest RTT) when link scorecards have been reported; see
	// /debug/links for every edge.
	Links *LinkSummary `json:"links,omitempty"`
}

// Node returns the report for the given overlay id, or nil.
func (s *ClusterSnapshot) Node(id uint64) *ClusterNode {
	for i := range s.Nodes {
		if s.Nodes[i].ID == id {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Quantile returns the q-quantile (q in [0,1]) of samples by nearest-rank
// on a sorted copy; 0 when samples is empty. Shared by the node-side
// report builder and the tracker-side fleet aggregation.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
