package obs

import (
	"sync"
	"time"
)

// Generation lifecycle phases, in the order a healthy generation passes
// through them. The decode-delay literature (generation size / overlap
// tuning) reasons about exactly these transitions: when the first coded
// packet of a generation lands, how rank accumulates, and when the
// generation decodes relative to the source's emission.
const (
	PhaseFirstPacket = "first_packet"
	PhaseRank25      = "rank25"
	PhaseRank50      = "rank50"
	PhaseRank75      = "rank75"
	PhaseDecoded     = "decoded"
)

// GenEvent is one generation-lifecycle transition at one node. It is the
// record ncast-sim's -timeline flag writes as JSONL, and what GenSink
// observers receive live.
type GenEvent struct {
	At    time.Time `json:"at"`
	Node  string    `json:"node"`
	Gen   uint32    `json:"gen"`
	Phase string    `json:"phase"`
	// Rank and Need are the post-transition decoded rank and the full
	// generation size.
	Rank int `json:"rank"`
	Need int `json:"need"`
	// Received counts coded packets of this generation seen so far,
	// including redundant ones; Received/Need at decode time is the coding
	// overhead ratio.
	Received int `json:"received"`
	// EmitNanos is the source's first-emission stamp for the generation
	// (unix nanoseconds; 0 when no stamped frame has arrived yet).
	EmitNanos int64 `json:"emit_nanos,omitempty"`
	// DelayNanos is the end-to-end decode delay (decode time minus source
	// emission), set only on the decoded transition when EmitNanos is known.
	DelayNanos int64 `json:"delay_nanos,omitempty"`
	// OverheadPermille is 1000 × Received/Need, set on decoded.
	OverheadPermille int `json:"overhead_permille,omitempty"`
}

// GenSink consumes lifecycle transitions; it must be safe for concurrent
// calls (decode workers of distinct generations fire independently).
type GenSink func(GenEvent)

// genState is the per-generation lifecycle record of one tracker.
type genState struct {
	firstAt   time.Time
	emitNanos int64
	received  int
	rank      int
	milestone int // highest quartile emitted: 0, 25, 50, or 75
	decodedAt time.Time
	delay     time.Duration
}

// GenTracker records generation lifecycle spans for one node: first packet
// seen, rank-progress quartiles, decode completion, packets received
// versus needed, and the true end-to-end decode delay against the source's
// emission stamp. It feeds the decode-delay and coding-overhead
// histograms of a NodeMetrics bundle and an optional event sink. A nil
// tracker is a no-op, matching the rest of the obs layer.
type GenTracker struct {
	node string
	need int
	m    *NodeMetrics
	sink GenSink

	mu   sync.Mutex
	gens map[uint32]*genState
}

// NewGenTracker creates a lifecycle tracker for a node whose generations
// need `need` innovative packets each. m and sink may be nil.
func NewGenTracker(node string, need int, m *NodeMetrics, sink GenSink) *GenTracker {
	if need <= 0 {
		need = 1
	}
	return &GenTracker{node: node, need: need, m: m, sink: sink, gens: make(map[uint32]*genState)}
}

// Observe records one absorbed packet of generation gen: the post-
// absorption rank and the source emit stamp carried by the frame (0 when
// the frame was unstamped). It emits every lifecycle transition the packet
// crossed, in order, so sinks always see monotone phase sequences.
func (t *GenTracker) Observe(gen uint32, emitNanos int64, rank int) {
	if t == nil {
		return
	}
	now := time.Now()
	var events []GenEvent
	t.mu.Lock()
	g, ok := t.gens[gen]
	if !ok {
		g = &genState{firstAt: now}
		t.gens[gen] = g
	}
	g.received++
	if emitNanos > 0 && (g.emitNanos == 0 || emitNanos < g.emitNanos) {
		g.emitNanos = emitNanos
	}
	if rank > g.rank {
		g.rank = rank
	}
	ev := func(phase string) GenEvent {
		return GenEvent{
			At: now, Node: t.node, Gen: gen, Phase: phase,
			Rank: g.rank, Need: t.need, Received: g.received, EmitNanos: g.emitNanos,
		}
	}
	if g.received == 1 {
		events = append(events, ev(PhaseFirstPacket))
	}
	for _, q := range [...]struct {
		pct   int
		phase string
	}{{25, PhaseRank25}, {50, PhaseRank50}, {75, PhaseRank75}} {
		if g.milestone < q.pct && g.rank*100 >= t.need*q.pct && g.rank < t.need {
			g.milestone = q.pct
			events = append(events, ev(q.phase))
		}
	}
	if g.rank >= t.need && g.decodedAt.IsZero() {
		g.decodedAt = now
		g.milestone = 100
		if g.emitNanos > 0 {
			g.delay = now.Sub(time.Unix(0, g.emitNanos))
			if g.delay < 0 {
				g.delay = 0
			}
		}
		done := ev(PhaseDecoded)
		done.DelayNanos = int64(g.delay)
		done.OverheadPermille = g.received * 1000 / t.need
		events = append(events, done)
		if t.m != nil {
			if g.delay > 0 {
				t.m.DecodeDelay.Observe(float64(g.delay))
			}
			t.m.Overhead.Observe(float64(g.received) / float64(t.need))
		}
	}
	t.mu.Unlock()
	if t.sink != nil {
		for _, e := range events {
			t.sink(e)
		}
	}
}

// EmitStamp returns the earliest source emission stamp seen for gen (unix
// nanoseconds; 0 when unknown), so a forwarding node can propagate the
// stamp downstream and keep end-to-end delay measurable across hops.
func (t *GenTracker) EmitStamp(gen uint32) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if g, ok := t.gens[gen]; ok {
		return g.emitNanos
	}
	return 0
}

// Delays returns the end-to-end decode delays of every generation decoded
// so far with a known emission stamp, in nanoseconds. The slice is freshly
// allocated; order is unspecified.
func (t *GenTracker) Delays() []float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, 0, len(t.gens))
	for _, g := range t.gens {
		if !g.decodedAt.IsZero() && g.delay > 0 {
			out = append(out, float64(g.delay))
		}
	}
	return out
}

// Overheads returns, for every decoded generation, 1000 × received/needed
// (the coding-overhead ratio in permille).
func (t *GenTracker) Overheads() []int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.gens))
	for _, g := range t.gens {
		if !g.decodedAt.IsZero() {
			out = append(out, g.received*1000/t.need)
		}
	}
	return out
}
