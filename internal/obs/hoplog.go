package obs

import "sync"

// HopRecord is one hop span: a single traced coded-frame arrival at a
// node, annotated with the hop depth the frame carried, whether the
// packet raised the node's rank, and how many children the node forwarded
// a recoded descendant to. Nodes buffer these in a HopLog and ship them to
// the tracker compacted into TraceHop aggregates.
type HopRecord struct {
	TraceID      uint64
	Gen          uint32
	Hop          int
	Innovative   bool
	Forwarded    int
	ArrivalNanos int64
	EmitNanos    int64
}

// HopLog is a bounded, preallocated hop-span buffer. Record never
// allocates and never blocks; when the buffer is full new records are
// dropped (drop-newest) and counted, so a burst of traced traffic cannot
// grow node memory. All methods are no-ops on a nil receiver.
type HopLog struct {
	mu      sync.Mutex
	buf     []HopRecord
	n       int
	dropped uint64
}

// NewHopLog creates a log holding up to capacity records (minimum 1).
func NewHopLog(capacity int) *HopLog {
	if capacity < 1 {
		capacity = 1
	}
	return &HopLog{buf: make([]HopRecord, capacity)}
}

// Record appends one hop span, dropping (and counting) it when full.
func (l *HopLog) Record(rec HopRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.n < len(l.buf) {
		l.buf[l.n] = rec
		l.n++
	} else {
		l.dropped++
	}
	l.mu.Unlock()
}

// Len returns the number of buffered records.
func (l *HopLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Dropped returns how many records were discarded because the log was
// full at record time.
func (l *HopLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
