package obs

import "time"

// This file defines the per-layer metric bundles the stack is
// instrumented with. Each New*Metrics constructor returns nil when the
// registry is nil, and the bundles' helper methods are nil-safe, so a
// component wired without observability pays a single nil check per
// event.

// TransportMetrics instruments one endpoint's frame traffic.
type TransportMetrics struct {
	FramesSent *Counter
	FramesRecv *Counter
	BytesSent  *Counter
	BytesRecv  *Counter
	Drops      *Counter
	SendNanos  *Histogram
	// SendBatch and RecvBatch record datagrams coalesced per vectorized
	// syscall on batching transports (UDP); nil elsewhere.
	SendBatch *Histogram
	RecvBatch *Histogram
}

// NewTransportMetrics registers the transport family labeled with the
// endpoint's address.
func NewTransportMetrics(r *Registry, endpoint string) *TransportMetrics {
	return NewTransportMetricsKind(r, endpoint, "")
}

// NewTransportMetricsKind registers the transport family labeled with the
// endpoint's address and its transport kind ("tcp", "udp", "mem"), so a
// dual-plane session can tell control traffic from data traffic in the
// same scrape. An empty kind omits the label.
func NewTransportMetricsKind(r *Registry, endpoint, kind string) *TransportMetrics {
	if r == nil {
		return nil
	}
	labels := []Label{{Key: "endpoint", Value: endpoint}}
	if kind != "" {
		labels = append(labels, Label{Key: "transport", Value: kind})
	}
	return &TransportMetrics{
		FramesSent: r.Counter("ncast_transport_frames_sent_total", "Frames sent by the endpoint.", labels...),
		FramesRecv: r.Counter("ncast_transport_frames_recv_total", "Frames delivered to the endpoint.", labels...),
		BytesSent:  r.Counter("ncast_transport_bytes_sent_total", "Payload bytes sent by the endpoint.", labels...),
		BytesRecv:  r.Counter("ncast_transport_bytes_recv_total", "Payload bytes delivered to the endpoint.", labels...),
		Drops:      r.Counter("ncast_transport_frames_dropped_total", "Frames dropped (loss, dead peer, clogged queue, send error).", labels...),
		SendNanos:  r.Histogram("ncast_transport_send_nanos", "Per-frame send latency in nanoseconds.", LatencyBuckets(), labels...),
		SendBatch:  r.Histogram("ncast_transport_send_batch_size", "Datagrams coalesced per vectorized send.", BatchBuckets(), labels...),
		RecvBatch:  r.Histogram("ncast_transport_recv_batch_size", "Datagrams drained per vectorized receive.", BatchBuckets(), labels...),
	}
}

// Start returns the timestamp ObserveSend pairs with, or the zero time
// when the bundle is nil so the clock is never read for no-op metrics.
func (m *TransportMetrics) Start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// Sent records one delivered outbound frame of the given size.
func (m *TransportMetrics) Sent(bytes int) {
	if m == nil {
		return
	}
	m.FramesSent.Inc()
	m.BytesSent.Add(uint64(bytes))
}

// Received records one inbound frame of the given size.
func (m *TransportMetrics) Received(bytes int) {
	if m == nil {
		return
	}
	m.FramesRecv.Inc()
	m.BytesRecv.Add(uint64(bytes))
}

// Dropped records one lost frame.
func (m *TransportMetrics) Dropped() {
	if m == nil {
		return
	}
	m.Drops.Inc()
}

// ObserveSend records the latency of a send that began at start.
func (m *TransportMetrics) ObserveSend(start time.Time) {
	if m == nil {
		return
	}
	m.SendNanos.ObserveSince(start)
}

// ObserveSendBatch records the size of one vectorized send.
func (m *TransportMetrics) ObserveSendBatch(n int) {
	if m == nil {
		return
	}
	m.SendBatch.Observe(float64(n))
}

// ObserveRecvBatch records the size of one vectorized receive.
func (m *TransportMetrics) ObserveRecvBatch(n int) {
	if m == nil {
		return
	}
	m.RecvBatch.Observe(float64(n))
}

// TrackerMetrics instruments the curtain authority: §3 hello/good-bye/
// repair traffic, §5 congestion transitions, and the overlay gauges.
type TrackerMetrics struct {
	Hellos        *Counter
	Goodbyes      *Counter
	Complaints    *Counter
	Repairs       *Counter
	Redirects     *Counter
	Completions   *Counter
	Congestions   *Counter
	Uncongestions *Counter
	Leases        *Counter
	LeaseExpiries *Counter
	OutboxRetries *Counter
	OutboxDrops   *Counter
	StatsReports  *Counter
	Nodes         *Gauge // rows of M
	EmptyThreads  *Gauge // threads with no clips (served directly by the rod)
	Completed     *Gauge
	Trace         *Ring
	// Control-plane op latencies: time spent inside the matrix transaction
	// per hello admission, good-bye splice-out, and repair splice-out —
	// the §3 per-op costs the indexed curtain keeps flat as M grows.
	HelloNanos   *Histogram
	GoodbyeNanos *Histogram
	RepairNanos  *Histogram
	// AdmitBatch is the number of hellos coalesced per matrix transaction
	// by batched admission.
	AdmitBatch *Histogram
}

// NewTrackerMetrics registers the tracker family on r, sharing r's trace
// ring.
func NewTrackerMetrics(r *Registry) *TrackerMetrics {
	if r == nil {
		return nil
	}
	return &TrackerMetrics{
		Hellos:        r.Counter("ncast_tracker_hellos_total", "Hello requests processed (joins and welcome retries)."),
		Goodbyes:      r.Counter("ncast_tracker_goodbyes_total", "Good-bye requests processed."),
		Complaints:    r.Counter("ncast_tracker_complaints_total", "Complaints received."),
		Repairs:       r.Counter("ncast_tracker_repairs_total", "Repair splice-outs performed on accused nodes."),
		Redirects:     r.Counter("ncast_tracker_redirects_total", "Stream redirections issued to parents and the source."),
		Completions:   r.Counter("ncast_tracker_completions_total", "First-time full-decode reports."),
		Congestions:   r.Counter("ncast_tracker_congestions_total", "Degree reductions granted (§5 congestion relief)."),
		Uncongestions: r.Counter("ncast_tracker_uncongestions_total", "Degree regrowths granted (§5 recovery)."),
		Leases:        r.Counter("ncast_tracker_leases_total", "Liveness lease renewals processed."),
		LeaseExpiries: r.Counter("ncast_tracker_lease_expiries_total", "Rows expired by the lease sweep (crash without good-bye)."),
		OutboxRetries: r.Counter("ncast_tracker_outbox_retries_total", "Control sends retried after a deadline or transport error."),
		OutboxDrops:   r.Counter("ncast_tracker_outbox_dropped_total", "Control messages dropped (outbox full or retries exhausted)."),
		StatsReports:  r.Counter("ncast_tracker_stats_reports_total", "Node telemetry reports aggregated into the cluster view."),
		Nodes:         r.Gauge("ncast_overlay_nodes", "Current overlay population (rows of M)."),
		EmptyThreads:  r.Gauge("ncast_overlay_empty_threads", "Threads with no clipped rows."),
		Completed:     r.Gauge("ncast_overlay_completed", "Nodes that reported a full decode."),
		Trace:         r.Trace(),
		HelloNanos:    r.Histogram("ncast_tracker_hello_nanos", "Matrix-transaction time per hello admission, nanoseconds.", LatencyBuckets()),
		GoodbyeNanos:  r.Histogram("ncast_tracker_goodbye_nanos", "Matrix-transaction time per good-bye splice-out, nanoseconds.", LatencyBuckets()),
		RepairNanos:   r.Histogram("ncast_tracker_repair_nanos", "Matrix-transaction time per repair splice-out, nanoseconds.", LatencyBuckets()),
		AdmitBatch:    r.Histogram("ncast_tracker_admit_batch_size", "Hellos coalesced per batched-admission matrix transaction.", BatchBuckets()),
	}
}

// BatchBuckets returns the bounds for the admission batch-size histogram:
// 1 (no coalescing) up to the batch cap.
func BatchBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// NodeMetrics instruments one overlay client: packet flow, rank progress,
// generation-lifecycle outcomes, and the codec underneath it.
type NodeMetrics struct {
	Received   *Counter
	Innovative *Counter
	Redundant  *Counter
	Emitted    *Counter // re-coded data frames forwarded downstream
	Complaints *Counter
	Rank       *Gauge
	GensDone   *Gauge
	// DecodeDelay is the true end-to-end latency per generation: source
	// emission stamp to full rank at this node, in nanoseconds. Overhead
	// is packets-received / packets-needed per decoded generation (1.0 is
	// the information-theoretic floor).
	DecodeDelay *Histogram
	Overhead    *Histogram
	Codec       *CodecMetrics
}

// NewNodeMetrics registers the node family labeled with the node's
// transport address.
func NewNodeMetrics(r *Registry, node string) *NodeMetrics {
	if r == nil {
		return nil
	}
	l := Label{Key: "node", Value: node}
	return &NodeMetrics{
		Received:    r.Counter("ncast_node_received_total", "Data packets received.", l),
		Innovative:  r.Counter("ncast_node_innovative_total", "Received packets that increased rank.", l),
		Redundant:   r.Counter("ncast_node_redundant_total", "Received packets that did not increase rank.", l),
		Emitted:     r.Counter("ncast_node_emitted_total", "Re-coded data frames forwarded downstream.", l),
		Complaints:  r.Counter("ncast_node_complaints_total", "Complaints sent about silent parents.", l),
		Rank:        r.Gauge("ncast_node_rank", "Total decoded rank across generations.", l),
		GensDone:    r.Gauge("ncast_node_generations_done", "Fully decoded generations.", l),
		DecodeDelay: r.Histogram("ncast_node_decode_delay_nanos", "End-to-end decode delay per generation: source emission to full rank, nanoseconds.", LatencyBuckets(), l),
		Overhead:    r.Histogram("ncast_node_coding_overhead_ratio", "Packets received over packets needed per decoded generation.", OverheadBuckets(), l),
		Codec:       NewCodecMetrics(r, l),
	}
}

// OverheadBuckets returns the bounds used by the coding-overhead
// histogram: 1.0 (no waste) up to 4x.
func OverheadBuckets() []float64 {
	return []float64{1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2, 2.5, 3, 4}
}

// CodecMetrics instruments the RLNC layer: Gaussian-elimination time per
// absorbed packet and per-generation completion latency.
type CodecMetrics struct {
	GaussNanos   *Histogram
	GenLatency   *Histogram
	GensComplete *Counter
}

// NewCodecMetrics registers the rlnc family with the given labels.
func NewCodecMetrics(r *Registry, labels ...Label) *CodecMetrics {
	if r == nil {
		return nil
	}
	return &CodecMetrics{
		GaussNanos:   r.Histogram("ncast_rlnc_gauss_nanos", "Gaussian-elimination time per absorbed packet, nanoseconds.", LatencyBuckets(), labels...),
		GenLatency:   r.Histogram("ncast_rlnc_generation_latency_nanos", "First-packet-to-full-rank latency per generation, nanoseconds.", LatencyBuckets(), labels...),
		GensComplete: r.Counter("ncast_rlnc_generations_completed_total", "Generations decoded to full rank.", labels...),
	}
}

// SourceMetrics instruments the server's data pump.
type SourceMetrics struct {
	Rounds  *Counter
	Packets *Counter
}

// NewSourceMetrics registers the source family on r.
func NewSourceMetrics(r *Registry) *SourceMetrics {
	if r == nil {
		return nil
	}
	return &SourceMetrics{
		Rounds:  r.Counter("ncast_source_rounds_total", "Pump rounds with at least one live thread."),
		Packets: r.Counter("ncast_source_packets_total", "Coded packets emitted by the source."),
	}
}
