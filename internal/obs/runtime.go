package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RuntimeMetrics exposes the Go runtime's own health — GC pause tail,
// heap size, goroutine count, scheduler latency tail — as gauges in the
// registry. Sampling happens lazily via the registry's collect hook, at
// snapshot/scrape time only, so an idle registry pays nothing.
type RuntimeMetrics struct {
	GCPauseP99  *Gauge
	HeapBytes   *Gauge
	Goroutines  *Gauge
	SchedLatP99 *Gauge
	samples     []metrics.Sample
	pauseIdx    int
	heapIdx     int
	schedIdx    int
}

// NewRuntimeMetrics registers the runtime family on r and hooks it into
// the registry's collect phase. A nil registry returns a nil-safe bundle
// that never samples.
func NewRuntimeMetrics(r *Registry) *RuntimeMetrics {
	m := &RuntimeMetrics{
		GCPauseP99: r.Gauge("ncast_runtime_gc_pause_p99_nanos",
			"p99 stop-the-world GC pause (runtime/metrics /gc/pauses)"),
		HeapBytes: r.Gauge("ncast_runtime_heap_bytes",
			"Live heap object bytes (runtime/metrics)"),
		Goroutines: r.Gauge("ncast_runtime_goroutines",
			"Current goroutine count"),
		SchedLatP99: r.Gauge("ncast_runtime_sched_latency_p99_nanos",
			"p99 goroutine scheduling latency (runtime/metrics /sched/latencies)"),
	}
	if r == nil {
		return m
	}
	m.samples = []metrics.Sample{
		{Name: "/gc/pauses:seconds"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/sched/latencies:seconds"},
	}
	m.pauseIdx, m.heapIdx, m.schedIdx = 0, 1, 2
	r.OnCollect(m.sample)
	return m
}

// sample refreshes every gauge from the runtime. Called by the registry
// before each snapshot or Prometheus scrape, outside the registry lock.
func (m *RuntimeMetrics) sample() {
	metrics.Read(m.samples)
	if h := histOf(m.samples[m.pauseIdx]); h != nil {
		m.GCPauseP99.Set(int64(histQuantile(h, 0.99) * 1e9))
	}
	if s := m.samples[m.heapIdx]; s.Value.Kind() == metrics.KindUint64 {
		m.HeapBytes.Set(int64(s.Value.Uint64()))
	}
	if h := histOf(m.samples[m.schedIdx]); h != nil {
		m.SchedLatP99.Set(int64(histQuantile(h, 0.99) * 1e9))
	}
	m.Goroutines.Set(int64(runtime.NumGoroutine()))
}

// histOf extracts a float64 histogram, guarding the kind — Value
// accessors panic on mismatch, and runtime metrics may report
// KindBad on older/newer toolchains.
func histOf(s metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// histQuantile returns the q-quantile of a runtime histogram by
// nearest-rank over its counts, clamping the open-ended edge buckets to
// their finite neighbor.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Bucket i spans Buckets[i] .. Buckets[i+1]; report the upper
			// edge, falling back to the lower one when it is +Inf.
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, +1) {
				return hi
			}
			lo := h.Buckets[i]
			if math.IsInf(lo, -1) {
				return 0
			}
			return lo
		}
	}
	return 0
}
