package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// clusterFixture is a deterministic ClusterSnapshot used by the endpoint
// and golden tests.
func clusterFixture() ClusterSnapshot {
	return ClusterSnapshot{
		At:               time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Overlay:          &OverlayHealth{K: 4, DefaultDegree: 2, Nodes: 2, DegreeDist: map[int]int{2: 2}},
		StaleAfterMillis: 3000,
		Nodes: []ClusterNode{
			{ID: 1, Addr: "n1", AgeMillis: 120, Fresh: true, Rank: 16, MaxRank: 16, Progress: 1,
				GensDone: 2, TotalGens: 2, Complete: true, GenRanks: []int{8, 8},
				Received: 20, Innovative: 16, Redundant: 4, LeaseRenewals: 3,
				DelayP50Nanos: 1_000_000, DelayP90Nanos: 2_000_000, DelayP99Nanos: 2_000_000,
				OverheadPermille: 1250},
			{ID: 2, Addr: "n2", AgeMillis: 9000, Fresh: false, Rank: 8, MaxRank: 16, Progress: 0.5,
				GensDone: 1, TotalGens: 2, GenRanks: []int{8, 0}, Received: 9, Innovative: 8,
				Redundant: 1, DelayP50Nanos: 5_000_000, DelayP90Nanos: 5_000_000,
				DelayP99Nanos: 5_000_000, OverheadPermille: 1125},
		},
		Generations: []GenerationHealth{
			{Index: 0, Gen: 0, Decoded: 2, Reporting: 2},
			{Index: 1, Gen: 1, Decoded: 1, Reporting: 2, StragglerIDs: []uint64{2}},
		},
		SlowestID:          1,
		FleetDelayP50Nanos: 1_000_000,
		FleetDelayP90Nanos: 1_000_000,
		FleetDelayP99Nanos: 1_000_000,
	}
}

// traceFixture is a deterministic TraceSnapshot source used by the
// endpoint and golden tests: two generations, two hop levels, an eviction
// already absorbed.
func traceFixture() TraceSnapshot {
	c := NewTraceCollector(4, nil)
	c.Ingest(1, []TraceHop{{TraceID: 11, Gen: 0, Hop: 1, Received: 8, Innovative: 8,
		Forwarded: 8, FirstArrivalNano: 1_100, LastArrivalNano: 1_500, EmitNanos: 1_000}})
	c.Ingest(2, []TraceHop{{TraceID: 11, Gen: 0, Hop: 2, Received: 8, Innovative: 6,
		FirstArrivalNano: 1_300, LastArrivalNano: 1_900, EmitNanos: 1_000}})
	c.Ingest(1, []TraceHop{{TraceID: 12, Gen: 1, Hop: 1, Received: 4, Innovative: 4,
		FirstArrivalNano: 2_200, LastArrivalNano: 2_400, EmitNanos: 2_000}})
	return c.Snapshot()
}

// linkFixture is a deterministic LinkSnapshot source used by the endpoint
// and golden tests: two reporters, one lossy edge, one RTT-bearing edge.
func linkFixture() LinkSnapshot {
	c := NewLinkCollector(4, nil)
	c.Ingest(1, "n1", []LinkReport{
		{Peer: "n2", Frames: 100, Bytes: 10_000, Expected: 100, Received: 90,
			LossPermille: 100, RTTEwmaNanos: 2_000_000, JitterNanos: 250_000,
			RTTSamples: 5, Innovative: 80, Redundant: 10, InnovationPermille: 888},
	})
	c.Ingest(2, "n2", []LinkReport{
		{Peer: "n1", Frames: 50, Bytes: 5_000, Expected: 50, Received: 50,
			Innovative: 50, InnovationPermille: 1000},
	})
	return c.Snapshot(time.Minute, map[string]uint64{"n1": 1, "n2": 2})
}

// TestHTTPConcurrentScrapes hammers every endpoint from concurrent
// goroutines while metrics keep changing — the scrape path must be
// race-free (this test earns its keep under -race).
func TestHTTPConcurrentScrapes(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("scrape_hits_total", "hits")
	srv, err := Serve("127.0.0.1:0", r, nil,
		WithClusterSnapshot(clusterFixture), WithTraceSnapshot(traceFixture),
		WithLinkSnapshot(linkFixture))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				r.Histogram("scrape_rt_nanos", "rt", LatencyBuckets()).Observe(100)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, path := range []string{"/metrics", "/debug/overlay", "/debug/cluster", "/debug/trace", "/debug/links"} {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					resp, err := http.Get("http://" + srv.Addr() + path)
					if err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", path, resp.StatusCode)
						return
					}
				}
			}(path)
		}
	}
	wg.Wait()
	close(stop)
	writers.Wait()
}

func TestHTTPContentTypes(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r, nil,
		WithClusterSnapshot(clusterFixture), WithTraceSnapshot(traceFixture),
		WithLinkSnapshot(linkFixture))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":       "text/plain; version=0.0.4; charset=utf-8",
		"/debug/overlay": "application/json",
		"/debug/cluster": "application/json",
		"/debug/trace":   "application/json",
		"/debug/links":   "application/json",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != want {
			t.Errorf("%s content-type = %q, want %q", path, got, want)
		}
	}
}

// TestHTTPProfilingToggle pins the pprof opt-in: absent by default (404),
// mounted with WithProfiling(true).
func TestHTTPProfilingToggle(t *testing.T) {
	t.Parallel()
	off, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	resp, err := http.Get("http://" + off.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}

	on, err := Serve("127.0.0.1:0", NewRegistry(), nil, WithProfiling(true))
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	resp, err = http.Get("http://" + on.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d body %q", resp.StatusCode, body)
	}
}

// TestHTTPGracefulClose pins the shutdown semantics: Close returns without
// error while the listener stops accepting, and a scrape completed just
// before Close is never truncated.
func TestHTTPGracefulClose(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("close_hits_total", "hits").Add(5)
	srv, err := Serve("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "close_hits_total 5") {
		t.Fatalf("scrape before close: err=%v body=%s", err, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("scrape after close succeeded")
	}
}

// TestClusterSnapshotGolden pins the /debug/cluster JSON schema: field
// names are API, consumed by dashboards and the acceptance tests.
func TestClusterSnapshotGolden(t *testing.T) {
	t.Parallel()
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil, WithClusterSnapshot(clusterFixture))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var snap ClusterSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := clusterFixture()
	if snap.StaleAfterMillis != want.StaleAfterMillis || snap.SlowestID != want.SlowestID ||
		len(snap.Nodes) != 2 || len(snap.Generations) != 2 {
		t.Fatalf("round trip = %+v", snap)
	}
	if n := snap.Node(2); n == nil || n.Fresh || n.GenRanks[1] != 0 {
		t.Fatalf("node 2 = %+v", n)
	}
	if g := snap.Generations[1]; len(g.StragglerIDs) != 1 || g.StragglerIDs[0] != 2 {
		t.Fatalf("generation 1 = %+v", g)
	}
	for _, key := range []string{
		`"stale_after_ms"`, `"slowest_id"`, `"fleet_delay_p50_ns"`, `"delay_p99_ns"`,
		`"overhead_permille"`, `"straggler_ids"`, `"gen_ranks"`, `"age_ms"`, `"fresh"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("cluster JSON missing %s:\n%s", key, raw)
		}
	}
}

// TestTraceSnapshotGolden pins the /debug/trace JSON schema: field names
// are API, consumed by dashboards and the ncast-sim -trace JSONL dump.
func TestTraceSnapshotGolden(t *testing.T) {
	t.Parallel()
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil, WithTraceSnapshot(traceFixture))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var snap TraceSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if snap.SampledGenerations != 2 || snap.MaxHopDepth != 2 ||
		len(snap.Generations) != 2 || len(snap.Depths) != 2 {
		t.Fatalf("round trip = %+v", snap)
	}
	g := snap.Generations[0]
	if g.TraceID != 11 || g.MaxHop != 2 || g.Nodes != 2 || g.WorstPathNanos != 900 {
		t.Fatalf("generation 0 = %+v", g)
	}
	if len(g.Tree) != 2 || g.Tree[1].Depth != 2 || g.Tree[1].Nodes[0].ID != 2 {
		t.Fatalf("generation 0 tree = %+v", g.Tree)
	}
	if d := snap.Depths[1]; d.Depth != 2 || d.InnovationPermille != 750 {
		t.Fatalf("depth row = %+v", d)
	}
	for _, key := range []string{
		`"sampled_generations"`, `"max_hop_depth"`, `"trace_id"`, `"max_hop"`,
		`"worst_path_ns"`, `"tree"`, `"depth"`, `"innovation_permille"`,
		`"mean_hop_latency_ns"`, `"first_arrival_ns"`, `"last_arrival_ns"`, `"emit_ns"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("trace JSON missing %s:\n%s", key, raw)
		}
	}
	// Without the option the endpoint stays unmounted.
	bare, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err = http.Get("http://" + bare.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted /debug/trace: status %d, want 404", resp.StatusCode)
	}
}

// TestLinkSnapshotGolden pins the /debug/links JSON schema: field names
// are API, consumed by dashboards and the ncast-sim -timeline link rows.
func TestLinkSnapshotGolden(t *testing.T) {
	t.Parallel()
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil, WithLinkSnapshot(linkFixture))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/links")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var snap LinkSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(snap.Edges) != 2 || snap.StaleAfterMillis != 60_000 {
		t.Fatalf("round trip = %+v", snap)
	}
	e := snap.Edges[0]
	if e.Reporter != 1 || e.Peer != "n2" || e.PeerID != 2 || !e.Fresh ||
		e.LossPermille != 100 || e.RTTEwmaNanos != 2_000_000 || e.RTTSamples != 5 {
		t.Fatalf("edge 0 = %+v", e)
	}
	if snap.Worst == nil || snap.Worst.FreshEdges != 2 ||
		snap.Worst.WorstPeer != "n1" || snap.Worst.WorstPeerID != 1 ||
		snap.Worst.WorstPeerLossPermille != 100 {
		t.Fatalf("worst digest = %+v", snap.Worst)
	}
	for _, key := range []string{
		`"stale_after_ms"`, `"reporter"`, `"reporter_addr"`, `"peer"`, `"peer_id"`,
		`"loss_permille"`, `"rtt_ewma_ns"`, `"jitter_ns"`, `"rtt_samples"`,
		`"innovation_permille"`, `"worst"`, `"worst_peer"`, `"worst_edges"`,
		`"max_rtt_peer"`, `"age_ms"`, `"fresh"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("links JSON missing %s:\n%s", key, raw)
		}
	}
	// Without the option the endpoint stays unmounted.
	bare, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err = http.Get("http://" + bare.Addr() + "/debug/links")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted /debug/links: status %d, want 404", resp.StatusCode)
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	s := []float64{5, 1, 3, 2, 4}
	if q := Quantile(s, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(s, 0.5); q != 3 {
		t.Fatalf("q50 = %v", q)
	}
	if q := Quantile(s, 1); q != 5 {
		t.Fatalf("q100 = %v", q)
	}
	// The input must not be reordered.
	if s[0] != 5 || s[4] != 4 {
		t.Fatalf("input mutated: %v", s)
	}
}
