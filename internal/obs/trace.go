package obs

import (
	"sort"
	"sync"
	"time"
)

// Dissemination tracing: the source stamps sampled generations with a
// 64-bit trace ID and hop counter; every node that receives a traced
// frame records a hop span (HopRecord), compacts its spans into TraceHop
// aggregates on the stats-report cadence, and the tracker's
// TraceCollector assembles them into per-generation dissemination trees
// and fleet-wide hop histograms served at /debug/trace.

// TraceHop is the compacted, wire-shipped form of a node's hop spans for
// one (trace, generation, hop-depth) cell: how many traced frames arrived
// at that depth, how many were innovative, how many recoded descendants
// were forwarded, and the arrival-time envelope. It rides inside
// StatsReport, so field names are wire/API surface.
type TraceHop struct {
	TraceID          uint64 `json:"trace_id"`
	Gen              uint32 `json:"gen"`
	Hop              int    `json:"hop"`
	Received         int    `json:"received"`
	Innovative       int    `json:"innovative"`
	Forwarded        int    `json:"forwarded"`
	FirstArrivalNano int64  `json:"first_arrival_ns"`
	LastArrivalNano  int64  `json:"last_arrival_ns"`
	EmitNanos        int64  `json:"emit_ns,omitempty"`
}

// Compact drains the log and aggregates its records per
// (trace, generation, hop) cell, returning at most max cells (0 = no
// limit). Cells beyond max are dropped and counted as if the log had
// overflowed, so the drop counter stays an honest loss signal.
func (l *HopLog) Compact(max int) []TraceHop {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	recs := l.buf[:l.n]
	type cell struct {
		idx int // index into out
	}
	type key struct {
		id  uint64
		gen uint32
		hop int
	}
	var out []TraceHop
	cells := make(map[key]cell, len(recs))
	for _, rec := range recs {
		k := key{id: rec.TraceID, gen: rec.Gen, hop: rec.Hop}
		c, ok := cells[k]
		if !ok {
			out = append(out, TraceHop{
				TraceID:          rec.TraceID,
				Gen:              rec.Gen,
				Hop:              rec.Hop,
				FirstArrivalNano: rec.ArrivalNanos,
				LastArrivalNano:  rec.ArrivalNanos,
				EmitNanos:        rec.EmitNanos,
			})
			c = cell{idx: len(out) - 1}
			cells[k] = c
		}
		h := &out[c.idx]
		h.Received++
		if rec.Innovative {
			h.Innovative++
		}
		h.Forwarded += rec.Forwarded
		if rec.ArrivalNanos < h.FirstArrivalNano {
			h.FirstArrivalNano = rec.ArrivalNanos
		}
		if rec.ArrivalNanos > h.LastArrivalNano {
			h.LastArrivalNano = rec.ArrivalNanos
		}
		if h.EmitNanos == 0 || (rec.EmitNanos > 0 && rec.EmitNanos < h.EmitNanos) {
			h.EmitNanos = rec.EmitNanos
		}
	}
	l.n = 0
	if max > 0 && len(out) > max {
		l.dropped += uint64(len(out) - max)
		out = out[:max]
	}
	l.mu.Unlock()
	return out
}

// TraceMetrics is the Prometheus-facing trace family: fleet-wide
// hop-depth, per-hop-latency, and innovation-ratio histograms fed by the
// tracker as hop reports arrive. Nil-safe like every bundle.
type TraceMetrics struct {
	Reports    *Counter
	HopRecords *Counter
	HopDepth   *Histogram
	HopLatency *Histogram
	Innovation *Histogram
}

// NewTraceMetrics registers the trace family (nil registry → nil-safe
// no-op bundle).
func NewTraceMetrics(r *Registry) *TraceMetrics {
	return &TraceMetrics{
		Reports: r.Counter("ncast_trace_reports_total",
			"Stats reports carrying compacted hop spans"),
		HopRecords: r.Counter("ncast_trace_hop_records_total",
			"Compacted (trace, generation, hop) cells ingested"),
		HopDepth: r.Histogram("ncast_trace_hop_depth",
			"Hop depth of traced coded-frame arrivals", HopDepthBuckets()),
		HopLatency: r.Histogram("ncast_trace_hop_latency_nanos",
			"Approximate per-hop latency of traced frames (first arrival minus source stamp, divided by depth)",
			LatencyBuckets()),
		Innovation: r.Histogram("ncast_trace_innovation_ratio",
			"Innovative fraction of traced arrivals per reported hop cell", RatioBuckets()),
	}
}

// HopDepthBuckets covers dissemination depths from direct children of the
// source (depth 1) through deep chains in tall overlays.
func HopDepthBuckets() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32}
}

// RatioBuckets covers fractions in [0,1] at 0.1 granularity.
func RatioBuckets() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// DefaultTraceGenCap bounds how many sampled generations a TraceCollector
// retains before evicting the oldest — enough for a long replay window
// without unbounded growth under 1/1 sampling.
const DefaultTraceGenCap = 256

// traceEntry is one node's aggregate at one hop depth of one trace.
type traceEntry struct {
	received   int
	innovative int
	forwarded  int
	first      int64
	last       int64
}

type traceKey struct {
	node uint64
	hop  int
}

// traceGen is the assembled dissemination state of one sampled
// generation.
type traceGen struct {
	gen     uint32
	emit    int64
	maxHop  int
	entries map[traceKey]*traceEntry
}

// TraceCollector assembles hop reports from the fleet into per-generation
// dissemination trees and feeds the fleet-wide histograms. One collector
// lives on the tracker; Ingest is called from the stats-report path and
// Snapshot/Summary from the observability endpoints, so it locks itself.
// All methods are no-ops on a nil receiver.
type TraceCollector struct {
	mu    sync.Mutex
	cap   int
	m     *TraceMetrics
	gens  map[uint64]*traceGen // trace ID -> assembled state
	order []uint64             // insertion order, for eviction
}

// NewTraceCollector creates a collector retaining up to capacity sampled
// generations (0 or less = DefaultTraceGenCap), observing into m (which
// may be nil).
func NewTraceCollector(capacity int, m *TraceMetrics) *TraceCollector {
	if capacity <= 0 {
		capacity = DefaultTraceGenCap
	}
	return &TraceCollector{
		cap:  capacity,
		m:    m,
		gens: make(map[uint64]*traceGen),
	}
}

// Ingest merges one node's compacted hop cells into the assembled state
// and observes the fleet histograms.
func (c *TraceCollector) Ingest(node uint64, hops []TraceHop) {
	if c == nil || len(hops) == 0 {
		return
	}
	c.mu.Lock()
	for _, h := range hops {
		g, ok := c.gens[h.TraceID]
		if !ok {
			if len(c.order) >= c.cap {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.gens, oldest)
			}
			g = &traceGen{gen: h.Gen, entries: make(map[traceKey]*traceEntry)}
			c.gens[h.TraceID] = g
			c.order = append(c.order, h.TraceID)
		}
		if h.EmitNanos > 0 && (g.emit == 0 || h.EmitNanos < g.emit) {
			g.emit = h.EmitNanos
		}
		if h.Hop > g.maxHop {
			g.maxHop = h.Hop
		}
		k := traceKey{node: node, hop: h.Hop}
		e, ok := g.entries[k]
		if !ok {
			e = &traceEntry{first: h.FirstArrivalNano, last: h.LastArrivalNano}
			g.entries[k] = e
		}
		e.received += h.Received
		e.innovative += h.Innovative
		e.forwarded += h.Forwarded
		if h.FirstArrivalNano < e.first {
			e.first = h.FirstArrivalNano
		}
		if h.LastArrivalNano > e.last {
			e.last = h.LastArrivalNano
		}
		if c.m != nil {
			c.m.HopRecords.Inc()
			c.m.HopDepth.Observe(float64(h.Hop))
			if h.EmitNanos > 0 && h.Hop > 0 && h.FirstArrivalNano > h.EmitNanos {
				c.m.HopLatency.Observe(float64(h.FirstArrivalNano-h.EmitNanos) / float64(h.Hop))
			}
			if h.Received > 0 {
				c.m.Innovation.Observe(float64(h.Innovative) / float64(h.Received))
			}
		}
	}
	if c.m != nil {
		c.m.Reports.Inc()
	}
	c.mu.Unlock()
}

// TraceNode is one node's aggregate at one level of a dissemination tree.
type TraceNode struct {
	ID                uint64 `json:"id"`
	Received          int    `json:"received"`
	Innovative        int    `json:"innovative"`
	Forwarded         int    `json:"forwarded"`
	FirstArrivalNanos int64  `json:"first_arrival_ns"`
	LastArrivalNanos  int64  `json:"last_arrival_ns"`
}

// TraceLevel is one depth stratum of a dissemination tree.
type TraceLevel struct {
	Depth int         `json:"depth"`
	Nodes []TraceNode `json:"nodes"`
}

// TraceGeneration is one sampled generation's assembled dissemination
// tree: which nodes saw traced frames at which depth, and the worst
// end-to-end path observed (last arrival minus source stamp).
type TraceGeneration struct {
	TraceID        uint64       `json:"trace_id"`
	Gen            uint32       `json:"gen"`
	EmitNanos      int64        `json:"emit_ns,omitempty"`
	MaxHop         int          `json:"max_hop"`
	Nodes          int          `json:"nodes"`
	Received       int          `json:"received"`
	Innovative     int          `json:"innovative"`
	WorstPathNanos int64        `json:"worst_path_ns,omitempty"`
	Tree           []TraceLevel `json:"tree"`
}

// TraceDepth is one row of the fleet hop-depth distribution: aggregate
// arrival and innovation counts at one depth across every sampled
// generation. MeanHopLatencyNanos approximates the per-hop delay as
// (first arrival − source stamp) / depth, averaged over cells.
type TraceDepth struct {
	Depth               int   `json:"depth"`
	Nodes               int   `json:"nodes"`
	Received            int   `json:"received"`
	Innovative          int   `json:"innovative"`
	Forwarded           int   `json:"forwarded"`
	InnovationPermille  int   `json:"innovation_permille"`
	MeanHopLatencyNanos int64 `json:"mean_hop_latency_ns,omitempty"`
}

// TraceSnapshot is the /debug/trace document: the hop-depth distribution
// plus every retained generation's assembled tree.
type TraceSnapshot struct {
	At                 time.Time         `json:"at"`
	SampledGenerations int               `json:"sampled_generations"`
	MaxHopDepth        int               `json:"max_hop_depth"`
	Depths             []TraceDepth      `json:"depths,omitempty"`
	Generations        []TraceGeneration `json:"generations,omitempty"`
}

// TraceSummary is the compact trace digest embedded in ClusterSnapshot:
// how deep and how slow dissemination got across sampled generations.
type TraceSummary struct {
	SampledGenerations int    `json:"sampled_generations"`
	MaxHopDepth        int    `json:"max_hop_depth"`
	DeepestGen         uint32 `json:"deepest_gen"`
	WorstPathGen       uint32 `json:"worst_path_gen"`
	WorstPathNanos     int64  `json:"worst_path_ns,omitempty"`
}

// Snapshot assembles the full trace document. Output is deterministic:
// generations by generation id, levels by depth, nodes by id.
func (c *TraceCollector) Snapshot() TraceSnapshot {
	snap := TraceSnapshot{At: time.Now()}
	if c == nil {
		return snap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap.SampledGenerations = len(c.gens)
	type depthAgg struct {
		nodes, received, innovative, forwarded int
		latSum                                 int64
		latN                                   int64
	}
	depths := map[int]*depthAgg{}
	for id, g := range c.gens {
		tg := TraceGeneration{TraceID: id, Gen: g.gen, EmitNanos: g.emit, MaxHop: g.maxHop}
		byDepth := map[int][]TraceNode{}
		for k, e := range g.entries {
			byDepth[k.hop] = append(byDepth[k.hop], TraceNode{
				ID:                k.node,
				Received:          e.received,
				Innovative:        e.innovative,
				Forwarded:         e.forwarded,
				FirstArrivalNanos: e.first,
				LastArrivalNanos:  e.last,
			})
			tg.Nodes++
			tg.Received += e.received
			tg.Innovative += e.innovative
			if g.emit > 0 && e.last > g.emit && e.last-g.emit > tg.WorstPathNanos {
				tg.WorstPathNanos = e.last - g.emit
			}
			da := depths[k.hop]
			if da == nil {
				da = &depthAgg{}
				depths[k.hop] = da
			}
			da.nodes++
			da.received += e.received
			da.innovative += e.innovative
			da.forwarded += e.forwarded
			if g.emit > 0 && k.hop > 0 && e.first > g.emit {
				da.latSum += (e.first - g.emit) / int64(k.hop)
				da.latN++
			}
		}
		levels := make([]int, 0, len(byDepth))
		for d := range byDepth {
			levels = append(levels, d)
		}
		sort.Ints(levels)
		for _, d := range levels {
			nodes := byDepth[d]
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
			tg.Tree = append(tg.Tree, TraceLevel{Depth: d, Nodes: nodes})
		}
		if g.maxHop > snap.MaxHopDepth {
			snap.MaxHopDepth = g.maxHop
		}
		snap.Generations = append(snap.Generations, tg)
	}
	sort.Slice(snap.Generations, func(i, j int) bool {
		gi, gj := snap.Generations[i], snap.Generations[j]
		if gi.Gen != gj.Gen {
			return gi.Gen < gj.Gen
		}
		return gi.TraceID < gj.TraceID
	})
	ds := make([]int, 0, len(depths))
	for d := range depths {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		da := depths[d]
		row := TraceDepth{
			Depth:      d,
			Nodes:      da.nodes,
			Received:   da.received,
			Innovative: da.innovative,
			Forwarded:  da.forwarded,
		}
		if da.received > 0 {
			row.InnovationPermille = da.innovative * 1000 / da.received
		}
		if da.latN > 0 {
			row.MeanHopLatencyNanos = da.latSum / da.latN
		}
		snap.Depths = append(snap.Depths, row)
	}
	return snap
}

// Summary returns the compact digest for ClusterSnapshot, or nil when
// nothing has been sampled yet.
func (c *TraceCollector) Summary() *TraceSummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.gens) == 0 {
		return nil
	}
	s := &TraceSummary{SampledGenerations: len(c.gens)}
	for _, g := range c.gens {
		if g.maxHop > s.MaxHopDepth {
			s.MaxHopDepth = g.maxHop
			s.DeepestGen = g.gen
		}
		if g.emit == 0 {
			continue
		}
		for _, e := range g.entries {
			if e.last > g.emit && e.last-g.emit > s.WorstPathNanos {
				s.WorstPathNanos = e.last - g.emit
				s.WorstPathGen = g.gen
			}
		}
	}
	return s
}
