package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_lat", "latency", []float64{10, 100, 1000})

	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 2000))
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	_, count, buckets := h.snapshot()
	if buckets[len(buckets)-1].Count != count {
		t.Errorf("+Inf bucket = %d, want cumulative %d", buckets[len(buckets)-1].Count, count)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Count < buckets[i-1].Count {
			t.Errorf("buckets not cumulative at %d: %d < %d", i, buckets[i].Count, buckets[i-1].Count)
		}
	}
}

func TestRegistryDedupAndSnapshot(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Counter("dup_total", "d", Label{Key: "x", Value: "1"})
	b := r.Counter("dup_total", "d", Label{Key: "x", Value: "1"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "d", Label{Key: "x", Value: "2"})
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(3)
	other.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(snap))
	}
	if snap[0].Labels["x"] != "1" || snap[0].Value != 3 {
		t.Errorf("first point = %+v", snap[0])
	}
	if snap[1].Labels["x"] != "2" || snap[1].Value != 1 {
		t.Errorf("second point = %+v", snap[1])
	}
}

// TestPrometheusGolden pins the exact text exposition format.
func TestPrometheusGolden(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("ncast_frames_total", "Frames processed.", Label{Key: "endpoint", Value: "srv"})
	c.Add(42)
	g := r.Gauge("ncast_nodes", "Population.")
	g.Set(-7)
	h := r.Histogram("ncast_lat_nanos", "Latency.", []float64{1, 10}, Label{Key: "endpoint", Value: "srv"})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ncast_frames_total Frames processed.
# TYPE ncast_frames_total counter
ncast_frames_total{endpoint="srv"} 42
# HELP ncast_lat_nanos Latency.
# TYPE ncast_lat_nanos histogram
ncast_lat_nanos_bucket{endpoint="srv",le="1"} 1
ncast_lat_nanos_bucket{endpoint="srv",le="10"} 2
ncast_lat_nanos_bucket{endpoint="srv",le="+Inf"} 3
ncast_lat_nanos_sum{endpoint="srv"} 105.5
ncast_lat_nanos_count{endpoint="srv"} 3
# HELP ncast_nodes Population.
# TYPE ncast_nodes gauge
ncast_nodes -7
`
	if got := sb.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("esc_total", "e", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestNilSafety(t *testing.T) {
	t.Parallel()
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("x", "x")
	h := r.Histogram("x_nanos", "x", LatencyBuckets())
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics accumulated values")
	}
	if r.Snapshot() != nil || r.Trace() != nil {
		t.Fatal("nil registry produced data")
	}
	r.Trace().Record(Event{Kind: "x"})
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tm *TransportMetrics
	tm.Sent(1)
	tm.Received(1)
	tm.Dropped()
	tm.ObserveSend(tm.Start())
	if NewTransportMetrics(nil, "x") != nil || NewTrackerMetrics(nil) != nil ||
		NewNodeMetrics(nil, "x") != nil || NewCodecMetrics(nil) != nil || NewSourceMetrics(nil) != nil {
		t.Fatal("bundle constructor on nil registry returned non-nil")
	}
}

func TestRingWrapAround(t *testing.T) {
	t.Parallel()
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: "k", Node: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Len() != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Node != uint64(6+i) {
			t.Errorf("event %d = node %d, want %d (oldest-first)", i, ev.Node, 6+i)
		}
		if ev.At.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	// Wrapping silently overwrote 6 events; the counter must say so.
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	var nilRing *Ring
	if nilRing.Dropped() != 0 {
		t.Error("nil ring reported drops")
	}
}

func TestRingConcurrent(t *testing.T) {
	t.Parallel()
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: "k"})
				r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("ring len = %d, want 64", r.Len())
	}
}

func TestExpBuckets(t *testing.T) {
	t.Parallel()
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("http_hits_total", "hits").Add(9)
	r.Trace().Record(Event{Layer: "tracker", Kind: "join", Node: 3})
	snapshot := func() OverlaySnapshot {
		return OverlaySnapshot{
			At:      time.Now(),
			Overlay: &OverlayHealth{K: 8, Nodes: 2, DegreeDist: map[int]int{2: 2}},
			Metrics: r.Snapshot(),
			Recent:  r.Trace().Events(),
		}
	}
	srv, err := Serve("127.0.0.1:0", r, snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "http_hits_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/overlay")
	if err != nil {
		t.Fatal(err)
	}
	var snap OverlaySnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Overlay == nil || snap.Overlay.Nodes != 2 || snap.Overlay.DegreeDist[2] != 2 {
		t.Errorf("overlay health = %+v", snap.Overlay)
	}
	if p := snap.Metric("http_hits_total"); p == nil || p.Value != 9 {
		t.Errorf("metric point = %+v", p)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Kind != "join" {
		t.Errorf("recent events = %+v", snap.Recent)
	}
}

// TestBucketJSONRoundTrip pins the +Inf encoding: JSON numbers cannot
// carry infinities, so the last bucket must survive a marshal/unmarshal
// round trip via the "+Inf" string form.
func TestBucketJSONRoundTrip(t *testing.T) {
	t.Parallel()
	in := []Bucket{{LE: 10, Count: 2}, {LE: math.Inf(+1), Count: 5}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Fatalf("marshal = %s, want +Inf string", data)
	}
	var out []Bucket
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out[0].LE != 10 || out[0].Count != 2 || !math.IsInf(out[1].LE, +1) || out[1].Count != 5 {
		t.Fatalf("round trip = %+v", out)
	}
	// A full snapshot with a histogram must encode without error.
	r := NewRegistry()
	r.Histogram("rt_nanos", "rt", LatencyBuckets()).Observe(5)
	if _, err := json.Marshal(OverlaySnapshot{Metrics: r.Snapshot()}); err != nil {
		t.Fatalf("snapshot with histogram: %v", err)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	t.Parallel()
	s := OverlaySnapshot{Metrics: []MetricPoint{
		{Name: "a_total", Labels: map[string]string{"node": "n1"}, Value: 2},
		{Name: "a_total", Labels: map[string]string{"node": "n2"}, Value: 3},
		{Name: "b_total", Value: 7},
	}}
	if got := s.SumMetric("a_total"); got != 5 {
		t.Errorf("SumMetric = %v, want 5", got)
	}
	if p := s.Metric("a_total", Label{Key: "node", Value: "n2"}); p == nil || p.Value != 3 {
		t.Errorf("Metric(n2) = %+v", p)
	}
	if p := s.Metric("missing"); p != nil {
		t.Errorf("Metric(missing) = %+v", p)
	}
}
