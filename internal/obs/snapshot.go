package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"
)

// MetricPoint is one metric series in a snapshot. Counters and gauges
// carry Value; histograms carry Sum, Count, and cumulative Buckets.
type MetricPoint struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket: Count observations were
// ≤ LE. The last bucket's LE is +Inf, which JSON numbers cannot express,
// so Bucket marshals it as the string "+Inf" (matching the Prometheus
// text format) and unmarshals it back.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

type bucketJSON struct {
	LE    json.RawMessage `json:"le"`
	Count uint64          `json:"count"`
}

// MarshalJSON renders LE=+Inf as "+Inf" so histograms survive encoding.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := json.RawMessage(strconv.FormatFloat(b.LE, 'g', -1, 64))
	if math.IsInf(b.LE, +1) {
		le = json.RawMessage(`"+Inf"`)
	}
	return json.Marshal(bucketJSON{LE: le, Count: b.Count})
}

// UnmarshalJSON accepts both numeric LE values and the "+Inf" string.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var aux bucketJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	b.Count = aux.Count
	var s string
	if json.Unmarshal(aux.LE, &s) == nil {
		if s != "+Inf" {
			return fmt.Errorf("obs: bucket le %q", s)
		}
		b.LE = math.Inf(+1)
		return nil
	}
	return json.Unmarshal(aux.LE, &b.LE)
}

// OverlayHealth is the tracker-side view of the matrix M — the paper's §3
// invariants as live values: row count (population), degree distribution,
// and empty threads (threads whose bottom clip is the server itself, the
// hanging slots a joining row clips onto).
type OverlayHealth struct {
	K             int         `json:"k"`
	DefaultDegree int         `json:"default_degree"`
	Nodes         int         `json:"nodes"`
	Failed        int         `json:"failed"`
	Completed     int         `json:"completed"`
	EmptyThreads  int         `json:"empty_threads"`
	DegreeDist    map[int]int `json:"degree_dist,omitempty"` // degree -> node count
}

// NodeHealth is a client-side view: rank progress and decode state.
type NodeHealth struct {
	ID         uint64  `json:"id"`
	Joined     bool    `json:"joined"`
	Degree     int     `json:"degree"`
	Rank       int     `json:"rank"`
	MaxRank    int     `json:"max_rank"`
	Progress   float64 `json:"progress"`
	GensDone   int     `json:"gens_done"`
	TotalGens  int     `json:"total_gens"`
	Received   int     `json:"received"`
	Innovative int     `json:"innovative"`
	Complete   bool    `json:"complete"`
}

// OverlaySnapshot is the exported health document: overlay and/or node
// state, every metric series, and the recent trace events. It is what
// Session.Snapshot / Server.Snapshot return and what the /debug/overlay
// endpoint serves as JSON.
type OverlaySnapshot struct {
	At      time.Time      `json:"at"`
	Overlay *OverlayHealth `json:"overlay,omitempty"`
	Node    *NodeHealth    `json:"node,omitempty"`
	Metrics []MetricPoint  `json:"metrics"`
	Recent  []Event        `json:"recent_events,omitempty"`
	// DroppedEvents counts trace-ring overwrites: events that rotated out
	// of the replay window before this snapshot was taken.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Metric returns the first point with the given name and label subset, or
// nil. Convenience for tests and health checks.
func (s *OverlaySnapshot) Metric(name string, labels ...Label) *MetricPoint {
	for i := range s.Metrics {
		p := &s.Metrics[i]
		if p.Name != name {
			continue
		}
		match := true
		for _, l := range labels {
			if p.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	return nil
}

// SumMetric sums Value over every series of the named family (e.g. the
// per-node innovative-packet counters of a whole session).
func (s *OverlaySnapshot) SumMetric(name string) float64 {
	total := 0.0
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			total += s.Metrics[i].Value
		}
	}
	return total
}
