package obs

import (
	"sync"
	"time"
)

// Event is one structured trace record: a membership change, a repair, a
// congestion transition — anything worth replaying when diagnosing an
// overlay.
type Event struct {
	At     time.Time `json:"at"`
	Layer  string    `json:"layer"`            // "tracker", "node", "source", ...
	Kind   string    `json:"kind"`             // "join", "leave", "repair", ...
	Node   uint64    `json:"node,omitempty"`   // overlay node id, when known
	Detail string    `json:"detail,omitempty"` // free-form context (addr, thread, ...)
}

// Ring is a fixed-capacity trace-event buffer: recording overwrites the
// oldest event and never blocks or allocates. All methods are no-ops on a
// nil receiver.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	len     int
	dropped uint64
}

// NewRing creates a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event, stamping At with the current time when unset.
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.len < len(r.buf) {
		r.len++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Dropped returns how many events have been overwritten before anyone
// read them — the ring's capacity shortfall. A rising value means the
// replay window is too small for the event rate.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.len
}

// Events returns a copy of the buffered events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.len)
	start := r.next - r.len
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.len; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
