package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// by label key so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, key := range keys {
			switch m := f.byKey[key].(type) {
			case *Counter:
				writeSample(bw, f.name, "", key, "", formatUint(m.Value()))
			case *Gauge:
				writeSample(bw, f.name, "", key, "", strconv.FormatInt(m.Value(), 10))
			case *Histogram:
				sum, count, buckets := m.snapshot()
				for _, b := range buckets {
					writeSample(bw, f.name, "_bucket", key, `le="`+formatLE(b.LE)+`"`, formatUint(b.Count))
				}
				writeSample(bw, f.name, "_sum", key, "", strconv.FormatFloat(sum, 'g', -1, 64))
				writeSample(bw, f.name, "_count", key, "", formatUint(count))
			}
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeSample writes one line: name suffix {labels,extra} value.
func writeSample(bw *bufio.Writer, name, suffix, labels, extra, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
