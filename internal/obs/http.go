package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Handler serves the registry at /metrics (Prometheus text format) and
// /debug/overlay (an OverlaySnapshot as JSON). snapshot may be nil, in
// which case /debug/overlay serves the metrics and recent trace events
// without overlay health.
func Handler(r *Registry, snapshot func() OverlaySnapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/debug/overlay", func(w http.ResponseWriter, _ *http.Request) {
		var snap OverlaySnapshot
		if snapshot != nil {
			snap = snapshot()
		} else {
			snap = OverlaySnapshot{At: time.Now(), Metrics: r.Snapshot(), Recent: r.Trace().Events()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap) //nolint:errcheck // client gone
	})
	return mux
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts an HTTP server on addr exposing Handler(r, snapshot). Use
// Addr to learn the bound address (addr may end in ":0").
func Serve(addr string, r *Registry, snapshot func() OverlaySnapshot) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r, snapshot)}
	go srv.Serve(ln) //nolint:errcheck // returns on Close
	return &HTTPServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listening address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *HTTPServer) Close() error { return s.srv.Close() }
