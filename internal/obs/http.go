package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HandlerOption extends the observability endpoint with optional routes.
type HandlerOption func(*handlerSettings)

type handlerSettings struct {
	cluster   func() ClusterSnapshot
	trace     func() TraceSnapshot
	links     func() LinkSnapshot
	profiling bool
}

// WithClusterSnapshot mounts /debug/cluster, serving the tracker's
// aggregated fleet view as JSON. Only processes that run a tracker have
// one; client nodes leave this unset.
func WithClusterSnapshot(fn func() ClusterSnapshot) HandlerOption {
	return func(s *handlerSettings) { s.cluster = fn }
}

// WithTraceSnapshot mounts /debug/trace, serving the tracker's assembled
// dissemination-tracing view (per-generation hop trees and the fleet
// hop-depth distribution) as JSON. Only tracker processes have one.
func WithTraceSnapshot(fn func() TraceSnapshot) HandlerOption {
	return func(s *handlerSettings) { s.trace = fn }
}

// WithLinkSnapshot mounts /debug/links, serving the tracker's fleet link
// matrix (per-edge loss/RTT/innovation/goodput scorecards and the
// worst-links digest) as JSON. Only tracker processes have one.
func WithLinkSnapshot(fn func() LinkSnapshot) HandlerOption {
	return func(s *handlerSettings) { s.links = fn }
}

// WithProfiling(true) mounts the net/http/pprof handlers under
// /debug/pprof/, so CPU and heap profiles are reachable on production
// runs without a separate port. Off by default: profiles expose memory
// contents and cost CPU while running, so operators opt in explicitly.
func WithProfiling(enabled bool) HandlerOption {
	return func(s *handlerSettings) { s.profiling = enabled }
}

// Handler serves the registry at /metrics (Prometheus text format) and
// /debug/overlay (an OverlaySnapshot as JSON). snapshot may be nil, in
// which case /debug/overlay serves the metrics and recent trace events
// without overlay health. Options add /debug/cluster and /debug/pprof/.
func Handler(r *Registry, snapshot func() OverlaySnapshot, opts ...HandlerOption) http.Handler {
	var settings handlerSettings
	for _, o := range opts {
		o(&settings)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) //nolint:errcheck // client gone
	})
	mux.HandleFunc("/debug/overlay", func(w http.ResponseWriter, _ *http.Request) {
		var snap OverlaySnapshot
		if snapshot != nil {
			snap = snapshot()
		} else {
			snap = OverlaySnapshot{
				At:            time.Now(),
				Metrics:       r.Snapshot(),
				Recent:        r.Trace().Events(),
				DroppedEvents: r.Trace().Dropped(),
			}
		}
		writeJSON(w, snap)
	})
	if settings.cluster != nil {
		cluster := settings.cluster
		mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, cluster())
		})
	}
	if settings.trace != nil {
		trace := settings.trace
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, trace())
		})
	}
	if settings.links != nil {
		links := settings.links
		mux.HandleFunc("/debug/links", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, links())
		})
	}
	if settings.profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //nolint:errcheck // client gone
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// ShutdownTimeout bounds how long Close waits for in-flight scrapes to
// finish before cutting connections.
const ShutdownTimeout = 2 * time.Second

// Serve starts an HTTP server on addr exposing Handler(r, snapshot,
// opts...). Use Addr to learn the bound address (addr may end in ":0").
func Serve(addr string, r *Registry, snapshot func() OverlaySnapshot, opts ...HandlerOption) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r, snapshot, opts...)}
	go srv.Serve(ln) //nolint:errcheck // returns on Shutdown/Close
	return &HTTPServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound listening address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down gracefully: it stops accepting new
// connections and gives in-flight scrapes ShutdownTimeout to finish, so a
// snapshot poll is never cut mid-body. Connections still open after the
// timeout are closed abruptly.
func (s *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
