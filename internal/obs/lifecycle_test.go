package obs

import (
	"testing"
	"time"
)

// phaseOrder maps lifecycle phases to their mandatory ordering.
var phaseOrder = map[string]int{
	PhaseFirstPacket: 0,
	PhaseRank25:      1,
	PhaseRank50:      2,
	PhaseRank75:      3,
	PhaseDecoded:     4,
}

func TestGenTrackerLifecycle(t *testing.T) {
	t.Parallel()
	var events []GenEvent
	gt := NewGenTracker("n1", 8, nil, func(ev GenEvent) { events = append(events, ev) })

	emit := time.Now().Add(-10 * time.Millisecond).UnixNano()
	// 8 innovative packets plus 2 redundant ones (rank stalls at 5).
	ranks := []int{1, 2, 3, 4, 5, 5, 5, 6, 7, 8}
	for _, rk := range ranks {
		gt.Observe(7, emit, rk)
	}

	wantPhases := []string{PhaseFirstPacket, PhaseRank25, PhaseRank50, PhaseRank75, PhaseDecoded}
	if len(events) != len(wantPhases) {
		t.Fatalf("events = %d, want %d: %+v", len(events), len(wantPhases), events)
	}
	for i, ev := range events {
		if ev.Phase != wantPhases[i] {
			t.Fatalf("event %d phase = %s, want %s", i, ev.Phase, wantPhases[i])
		}
		if i > 0 && phaseOrder[ev.Phase] <= phaseOrder[events[i-1].Phase] {
			t.Fatalf("phases not monotone: %s after %s", ev.Phase, events[i-1].Phase)
		}
		if ev.Node != "n1" || ev.Gen != 7 || ev.Need != 8 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	done := events[len(events)-1]
	if done.Received != 10 || done.OverheadPermille != 10*1000/8 {
		t.Fatalf("decoded event = %+v", done)
	}
	if done.DelayNanos < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("delay = %v, want >= 10ms", time.Duration(done.DelayNanos))
	}

	if got := gt.EmitStamp(7); got != emit {
		t.Fatalf("emit stamp = %d, want %d", got, emit)
	}
	if got := gt.EmitStamp(99); got != 0 {
		t.Fatalf("unknown gen stamp = %d", got)
	}
	if d := gt.Delays(); len(d) != 1 || d[0] != float64(done.DelayNanos) {
		t.Fatalf("delays = %v", d)
	}
	if ov := gt.Overheads(); len(ov) != 1 || ov[0] != 1250 {
		t.Fatalf("overheads = %v", ov)
	}

	// Further packets of a decoded generation must not re-emit phases.
	gt.Observe(7, emit, 8)
	if len(events) != len(wantPhases) {
		t.Fatalf("decoded generation re-emitted: %+v", events[len(wantPhases):])
	}
}

// TestGenTrackerEarliestStampWins pins the cross-hop delay semantics: when
// frames of one generation carry different stamps (paths of different
// length), the earliest — the true source emission — is kept.
func TestGenTrackerEarliestStampWins(t *testing.T) {
	t.Parallel()
	gt := NewGenTracker("n1", 4, nil, nil)
	base := time.Now().UnixNano()
	gt.Observe(0, base, 1)       // stamped
	gt.Observe(0, 0, 2)          // unstamped frame must not clear it
	gt.Observe(0, base-5_000, 3) // an earlier stamp wins
	gt.Observe(0, base+9_000, 4) // a later one does not
	if got := gt.EmitStamp(0); got != base-5_000 {
		t.Fatalf("stamp = %d, want %d", got, base-5_000)
	}
}

// TestGenTrackerUnstampedDecode: a generation decoded purely from legacy
// unstamped frames reports overhead but no delay.
func TestGenTrackerUnstampedDecode(t *testing.T) {
	t.Parallel()
	gt := NewGenTracker("n1", 2, nil, nil)
	gt.Observe(3, 0, 1)
	gt.Observe(3, 0, 2)
	if d := gt.Delays(); len(d) != 0 {
		t.Fatalf("delays from unstamped frames = %v", d)
	}
	if ov := gt.Overheads(); len(ov) != 1 || ov[0] != 1000 {
		t.Fatalf("overheads = %v", ov)
	}
}

// TestGenTrackerHistograms checks the NodeMetrics feed: decode fills the
// decode-delay and overhead histograms.
func TestGenTrackerHistograms(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	m := NewNodeMetrics(r, "n1")
	gt := NewGenTracker("n1", 2, m, nil)
	emit := time.Now().Add(-time.Millisecond).UnixNano()
	gt.Observe(0, emit, 1)
	gt.Observe(0, emit, 2)
	snap := OverlaySnapshot{Metrics: r.Snapshot()}
	for _, name := range []string{"ncast_node_decode_delay_nanos", "ncast_node_coding_overhead_ratio"} {
		p := snap.Metric(name)
		if p == nil || p.Count != 1 {
			t.Fatalf("%s = %+v", name, p)
		}
	}
}

func TestGenTrackerNil(t *testing.T) {
	t.Parallel()
	var gt *GenTracker
	gt.Observe(0, 1, 1) // must not panic
	if gt.EmitStamp(0) != 0 || gt.Delays() != nil || gt.Overheads() != nil {
		t.Fatal("nil tracker not a no-op")
	}
}

func TestRegistryTraceCapacity(t *testing.T) {
	t.Parallel()
	r := NewRegistry(WithTraceCapacity(4))
	for i := 0; i < 10; i++ {
		r.Trace().Record(Event{Kind: "e", Node: uint64(i)})
	}
	evs := r.Trace().Events()
	if len(evs) != 4 || evs[0].Node != 6 || evs[3].Node != 9 {
		t.Fatalf("trace ring = %+v", evs)
	}
	// Values below 1 fall back to the default capacity.
	if def := NewRegistry(WithTraceCapacity(0)); def.Trace().Cap() != DefaultTraceCap {
		t.Fatalf("cap = %d, want %d", def.Trace().Cap(), DefaultTraceCap)
	}
}
