// Package obs is the runtime observability layer: allocation-conscious
// atomic counters, gauges, and histograms collected in a Registry, plus a
// structured trace-event ring buffer and snapshot export as JSON
// (OverlaySnapshot) and Prometheus text format.
//
// The package is a leaf: transport, rlnc, protocol, and the public façade
// all import it, never the reverse. Every constructor tolerates a nil
// *Registry and every method tolerates a nil receiver, returning no-op
// metrics — an uninstrumented component pays one nil check per event and
// allocates nothing.
//
// The paper's robustness analysis (§3–§5) is about live overlay state:
// rows of the matrix M, hanging threads, repair traffic, per-node
// innovative-packet rates. This package turns those invariants into
// gauges and counters that can be watched while a churn experiment
// degrades and recovers the overlay.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Label is one key/value dimension of a metric series (e.g. the endpoint
// or node a transport counter belongs to).
type Label struct {
	Key   string
	Value string
}

// DefaultTraceCap is the capacity of a Registry's trace ring when no
// WithTraceCapacity option overrides it.
const DefaultTraceCap = 256

// RegistryOption configures a Registry at construction.
type RegistryOption func(*registrySettings)

type registrySettings struct {
	traceCap int
}

// WithTraceCapacity sizes the registry's trace-event ring. Values below 1
// fall back to DefaultTraceCap. Larger rings keep a longer diagnostic
// replay window at the cost of memory; smaller ones suit fleets of many
// short-lived nodes.
func WithTraceCapacity(n int) RegistryOption {
	return func(s *registrySettings) { s.traceCap = n }
}

// Registry collects metric series grouped into families (one family per
// metric name; series within a family differ by labels). It also owns the
// trace-event ring. All methods are safe for concurrent use and tolerate
// a nil receiver.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	trace    *Ring
	collect  []func()
}

type family struct {
	name  string
	help  string
	typ   string
	byKey map[string]interface{} // *Counter | *Gauge | *Histogram
	keys  []string
}

// NewRegistry creates an empty registry with a trace ring of
// DefaultTraceCap events unless an option overrides the capacity.
func NewRegistry(opts ...RegistryOption) *Registry {
	settings := registrySettings{traceCap: DefaultTraceCap}
	for _, o := range opts {
		o(&settings)
	}
	if settings.traceCap < 1 {
		settings.traceCap = DefaultTraceCap
	}
	return &Registry{
		families: make(map[string]*family),
		trace:    NewRing(settings.traceCap),
	}
}

// Trace returns the registry's trace-event ring (nil for a nil registry).
func (r *Registry) Trace() *Ring {
	if r == nil {
		return nil
	}
	return r.trace
}

// OnCollect registers a hook run before each Snapshot or Prometheus
// scrape — the lazy-sampling seam for sources (like runtime/metrics)
// that are only worth reading when someone is looking. Hooks run outside
// the registry lock, so they may set gauges freely. No-op on nil.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// runCollectors invokes the collect hooks outside r.mu (hooks touch
// metrics, which take the lock themselves).
func (r *Registry) runCollectors() {
	r.mu.Lock()
	hooks := r.collect
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// family finds or creates the named family. Caller holds r.mu.
func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]interface{})}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter finds or creates the counter series name{labels}. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	key := labelKey(labels)
	if m, ok := f.byKey[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{series: newSeries(labels, key)}
	f.byKey[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Gauge finds or creates the gauge series name{labels}. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	key := labelKey(labels)
	if m, ok := f.byKey[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{series: newSeries(labels, key)}
	f.byKey[key] = g
	f.keys = append(f.keys, key)
	return g
}

// Histogram finds or creates the histogram series name{labels} with the
// given sorted upper bucket bounds (an implicit +Inf bucket is appended).
// When the series already exists its original bounds win. A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	key := labelKey(labels)
	if m, ok := f.byKey[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(newSeries(labels, key), bounds)
	f.byKey[key] = h
	f.keys = append(f.keys, key)
	return h
}

// Snapshot returns every series as a MetricPoint, families sorted by name
// and series by label key, so output is deterministic.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.runCollectors()
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var out []MetricPoint
	for _, name := range names {
		f := r.families[name]
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, key := range keys {
			out = append(out, pointOf(f, f.byKey[key]))
		}
	}
	return out
}

// pointOf renders one series of family f as a MetricPoint.
func pointOf(f *family, m interface{}) MetricPoint {
	p := MetricPoint{Name: f.name, Type: f.typ}
	switch v := m.(type) {
	case *Counter:
		p.Labels = v.labelMap()
		p.Value = float64(v.Value())
	case *Gauge:
		p.Labels = v.labelMap()
		p.Value = float64(v.Value())
	case *Histogram:
		p.Labels = v.labelMap()
		sum, count, buckets := v.snapshot()
		p.Sum = sum
		p.Count = count
		p.Buckets = buckets
	}
	return p
}

// labelKey renders labels canonically (sorted, escaped) for map keys and
// the Prometheus label block.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := ""
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
