package obs

import (
	"sort"
	"sync"
	"time"
)

// Link telemetry: datagram data frames carry a per-(sender, thread)
// 24-bit sequence number, keepalives carry an echo timestamp pair, and
// every node folds both into per-peer scorecards (LinkTracker): loss
// estimated from sequence gaps, RTT/jitter EWMAs from keepalive echoes,
// innovative-vs-redundant counts per parent. Scorecards ride the stats
// reports; the tracker's LinkCollector assembles them into a fleet link
// matrix served at /debug/links and digested into ClusterSnapshot.

// SeqMod is the sequence-number space of the per-(sender, thread)
// datagram counter: 24 bits, wrapping. Deltas are interpreted as signed
// 24-bit values, so reordering within ±2^23 frames is told apart from
// wrap-around.
const SeqMod = 1 << 24

// seqDelta returns the signed 24-bit distance from last to seq.
func seqDelta(seq uint32, last uint32) int32 {
	return int32((seq-last)<<8) >> 8
}

// LinkReport is the compacted, wire-shipped scorecard for one inbound
// peer link. Counters are cumulative over the link's lifetime (the
// tracker computes rates from deltas between reports). It rides inside
// StatsReport, so field names are wire/API surface.
type LinkReport struct {
	Peer               string `json:"peer"`
	Frames             uint64 `json:"frames"`
	Bytes              uint64 `json:"bytes"`
	Expected           uint64 `json:"expected,omitempty"`
	Received           uint64 `json:"received,omitempty"`
	Dup                uint64 `json:"dup,omitempty"`
	Reordered          uint64 `json:"reordered,omitempty"`
	LossPermille       int    `json:"loss_permille"`
	RTTEwmaNanos       int64  `json:"rtt_ewma_ns,omitempty"`
	JitterNanos        int64  `json:"jitter_ns,omitempty"`
	RTTSamples         uint64 `json:"rtt_samples,omitempty"`
	Innovative         uint64 `json:"innovative"`
	Redundant          uint64 `json:"redundant"`
	InnovationPermille int    `json:"innovation_permille"`
	LastRecvUnixNanos  int64  `json:"last_recv_unix_ns,omitempty"`
}

// DefaultLinkPeerCap bounds how many peers one node tracks — parents
// plus the occasional stale sender after a redirect; degree is small, so
// the cap exists only to keep a confused peer from growing the map.
const DefaultLinkPeerCap = 64

// linkScore is the mutable per-peer accumulator behind a LinkReport.
type linkScore struct {
	frames, bytes                     uint64
	expected, received, dup, reorders uint64
	innovative, redundant             uint64
	rttEwma, jitterEwma               float64
	rttSamples                        uint64
	lastRecvNanos                     int64
}

type seqKey struct {
	peer   string
	thread int
}

type seqState struct {
	last    uint32
	started bool
}

// LinkTracker maintains one node's per-peer link scorecards. It is
// called from the datagram receive path, so the steady state (known
// peer, known thread) must not allocate; all methods are no-ops on a nil
// receiver.
type LinkTracker struct {
	mu      sync.Mutex
	cap     int
	peers   map[string]*linkScore
	seqs    map[seqKey]*seqState
	dropped uint64
}

// NewLinkTracker creates a tracker bounded to capacity peers (0 or less
// = DefaultLinkPeerCap).
func NewLinkTracker(capacity int) *LinkTracker {
	if capacity <= 0 {
		capacity = DefaultLinkPeerCap
	}
	return &LinkTracker{
		cap:   capacity,
		peers: make(map[string]*linkScore),
		seqs:  make(map[seqKey]*seqState),
	}
}

// score returns the peer's accumulator, creating it if the cap allows;
// nil when the peer table is full.
func (t *LinkTracker) score(peer string) *linkScore {
	s, ok := t.peers[peer]
	if !ok {
		if len(t.peers) >= t.cap {
			t.dropped++
			return nil
		}
		s = &linkScore{}
		t.peers[peer] = s
	}
	return s
}

// ObserveFrame accounts one inbound data-plane frame from peer. seq < 0
// means the frame carried no sequence number (legacy or TCP sender);
// byte/frame counters still advance so goodput stays meaningful.
func (t *LinkTracker) ObserveFrame(peer string, thread int, seq int32, frameBytes int, nowNanos int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s := t.score(peer)
	if s == nil {
		t.mu.Unlock()
		return
	}
	s.frames++
	s.bytes += uint64(frameBytes)
	s.lastRecvNanos = nowNanos
	if seq >= 0 {
		k := seqKey{peer: peer, thread: thread}
		st, ok := t.seqs[k]
		if !ok {
			st = &seqState{}
			t.seqs[k] = st
		}
		if !st.started {
			st.started = true
			st.last = uint32(seq)
			s.expected++
			s.received++
		} else {
			switch d := seqDelta(uint32(seq), st.last); {
			case d > 0:
				// d-1 frames went missing (for now); a late arrival
				// below fills its presumed hole back in.
				s.expected += uint64(d)
				s.received++
				st.last = uint32(seq)
			case d == 0:
				s.dup++
			default:
				s.reorders++
				s.received++
			}
		}
	}
	t.mu.Unlock()
}

// ObservePacket accounts one decoded coding-layer verdict for a packet
// that arrived from peer: innovative (rank-increasing) or redundant.
func (t *LinkTracker) ObservePacket(peer string, innovative bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.score(peer); s != nil {
		if innovative {
			s.innovative++
		} else {
			s.redundant++
		}
	}
	t.mu.Unlock()
}

// ObserveRTT folds one keepalive round-trip sample into the peer's
// EWMAs (RFC 6298 gains: 1/8 for the mean, 1/4 for the deviation).
func (t *LinkTracker) ObserveRTT(peer string, rttNanos int64) {
	if t == nil || rttNanos <= 0 {
		return
	}
	t.mu.Lock()
	if s := t.score(peer); s != nil {
		rtt := float64(rttNanos)
		if s.rttSamples == 0 {
			s.rttEwma = rtt
			s.jitterEwma = rtt / 2
		} else {
			dev := rtt - s.rttEwma
			if dev < 0 {
				dev = -dev
			}
			s.jitterEwma += (dev - s.jitterEwma) / 4
			s.rttEwma += (rtt - s.rttEwma) / 8
		}
		s.rttSamples++
	}
	t.mu.Unlock()
}

// Dropped reports how many per-peer observations were discarded because
// the peer table was full.
func (t *LinkTracker) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// lossPermille estimates one-way loss from the sequence ledger.
func lossPermille(expected, received uint64) int {
	if expected == 0 {
		return 0
	}
	if received >= expected {
		return 0
	}
	return int((expected - received) * 1000 / expected)
}

// Compact snapshots the scorecards as wire-ready reports, busiest links
// first, keeping at most max (0 = no limit). Counters are cumulative —
// compacting does not reset them.
func (t *LinkTracker) Compact(max int) []LinkReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]LinkReport, 0, len(t.peers))
	for peer, s := range t.peers {
		r := LinkReport{
			Peer:              peer,
			Frames:            s.frames,
			Bytes:             s.bytes,
			Expected:          s.expected,
			Received:          s.received,
			Dup:               s.dup,
			Reordered:         s.reorders,
			LossPermille:      lossPermille(s.expected, s.received),
			RTTEwmaNanos:      int64(s.rttEwma),
			JitterNanos:       int64(s.jitterEwma),
			RTTSamples:        s.rttSamples,
			Innovative:        s.innovative,
			Redundant:         s.redundant,
			LastRecvUnixNanos: s.lastRecvNanos,
		}
		if n := s.innovative + s.redundant; n > 0 {
			r.InnovationPermille = int(s.innovative * 1000 / n)
		}
		out = append(out, r)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Peer < out[j].Peer
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// LinkMetrics is the Prometheus-facing ncast_link_* family, fed by the
// tracker as scorecards arrive. Nil-safe like every bundle.
type LinkMetrics struct {
	Reports    *Counter
	Edges      *Gauge
	Loss       *Histogram
	RTT        *Histogram
	Jitter     *Histogram
	Innovation *Histogram
	Goodput    *Histogram
}

// NewLinkMetrics registers the link family (nil registry → nil-safe
// no-op bundle).
func NewLinkMetrics(r *Registry) *LinkMetrics {
	return &LinkMetrics{
		Reports: r.Counter("ncast_link_reports_total",
			"Stats reports carrying per-peer link scorecards"),
		Edges: r.Gauge("ncast_link_edges",
			"Distinct (reporter, peer) link edges currently tracked"),
		Loss: r.Histogram("ncast_link_loss_permille",
			"Per-link one-way loss estimate from sequence gaps (permille)",
			LossPermilleBuckets()),
		RTT: r.Histogram("ncast_link_rtt_nanos",
			"Per-link smoothed round-trip time from keepalive echoes",
			LatencyBuckets()),
		Jitter: r.Histogram("ncast_link_jitter_nanos",
			"Per-link RTT mean deviation from keepalive echoes",
			LatencyBuckets()),
		Innovation: r.Histogram("ncast_link_innovation_ratio",
			"Innovative fraction of coded packets per link", RatioBuckets()),
		Goodput: r.Histogram("ncast_link_goodput_bytes_per_sec",
			"Per-link inbound data-plane goodput between reports",
			ExpBuckets(1024, 4, 10)),
	}
}

// LossPermilleBuckets covers loss estimates from lossless through total
// blackout, dense near the small rates that matter for repair decisions.
func LossPermilleBuckets() []float64 {
	return []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// DefaultLinkEdgeCap bounds the tracker-side link matrix: enough for a
// thousand-node fleet at small degree before FIFO eviction kicks in.
const DefaultLinkEdgeCap = 4096

type edgeKey struct {
	reporter uint64
	peer     string
}

// edgeState is the collector's view of one directed link: the latest
// scorecard plus the byte ledger needed to derive goodput from deltas.
type edgeState struct {
	reporterAddr string
	report       LinkReport
	at           time.Time
	prevBytes    uint64
	prevAt       time.Time
	goodput      float64 // bytes/sec between the last two reports
}

// LinkCollector assembles per-node scorecards into the fleet link
// matrix. One collector lives on the tracker; Ingest is called from the
// stats-report path and Snapshot/Summary from the observability
// endpoints, so it locks itself. All methods are no-ops on a nil
// receiver.
type LinkCollector struct {
	mu      sync.Mutex
	cap     int
	m       *LinkMetrics
	edges   map[edgeKey]*edgeState
	order   []edgeKey // insertion order, for eviction
	dropped uint64
}

// NewLinkCollector creates a collector retaining up to capacity link
// edges (0 or less = DefaultLinkEdgeCap), observing into m (which may
// be nil).
func NewLinkCollector(capacity int, m *LinkMetrics) *LinkCollector {
	if capacity <= 0 {
		capacity = DefaultLinkEdgeCap
	}
	return &LinkCollector{
		cap:   capacity,
		m:     m,
		edges: make(map[edgeKey]*edgeState),
	}
}

// Ingest merges one reporter's scorecards into the matrix and observes
// the fleet histograms.
func (c *LinkCollector) Ingest(reporter uint64, reporterAddr string, links []LinkReport) {
	if c == nil || len(links) == 0 {
		return
	}
	now := time.Now()
	c.mu.Lock()
	for _, r := range links {
		k := edgeKey{reporter: reporter, peer: r.Peer}
		e, ok := c.edges[k]
		if !ok {
			if len(c.order) >= c.cap {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.edges, oldest)
				c.dropped++
			}
			e = &edgeState{reporterAddr: reporterAddr}
			c.edges[k] = e
			c.order = append(c.order, k)
		}
		if dt := now.Sub(e.prevAt); !e.prevAt.IsZero() && dt > 0 && r.Bytes >= e.prevBytes {
			e.goodput = float64(r.Bytes-e.prevBytes) / dt.Seconds()
		}
		e.prevBytes, e.prevAt = r.Bytes, now
		e.reporterAddr = reporterAddr
		e.report = r
		e.at = now
		if c.m != nil {
			c.m.Loss.Observe(float64(r.LossPermille))
			if r.RTTSamples > 0 {
				c.m.RTT.Observe(float64(r.RTTEwmaNanos))
				c.m.Jitter.Observe(float64(r.JitterNanos))
			}
			if n := r.Innovative + r.Redundant; n > 0 {
				c.m.Innovation.Observe(float64(r.Innovative) / float64(n))
			}
			if e.goodput > 0 {
				c.m.Goodput.Observe(e.goodput)
			}
		}
	}
	if c.m != nil {
		c.m.Reports.Inc()
		c.m.Edges.Set(int64(len(c.edges)))
	}
	c.mu.Unlock()
}

// Remove drops every edge reported by the spliced-out node. Edges that
// name it as the peer stay until their reporters stop reporting them —
// they are the surviving evidence of the link's final quality.
func (c *LinkCollector) Remove(reporter uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	kept := c.order[:0]
	for _, k := range c.order {
		if k.reporter == reporter {
			delete(c.edges, k)
			continue
		}
		kept = append(kept, k)
	}
	c.order = kept
	if c.m != nil {
		c.m.Edges.Set(int64(len(c.edges)))
	}
	c.mu.Unlock()
}

// LinkEdge is one directed link of the fleet matrix: reporter measured
// its inbound traffic from peer.
type LinkEdge struct {
	Reporter           uint64 `json:"reporter"`
	ReporterAddr       string `json:"reporter_addr"`
	Peer               string `json:"peer"`
	PeerID             uint64 `json:"peer_id,omitempty"`
	AgeMillis          int64  `json:"age_ms"`
	Fresh              bool   `json:"fresh"`
	Frames             uint64 `json:"frames"`
	Bytes              uint64 `json:"bytes"`
	Expected           uint64 `json:"expected,omitempty"`
	Received           uint64 `json:"received,omitempty"`
	Dup                uint64 `json:"dup,omitempty"`
	Reordered          uint64 `json:"reordered,omitempty"`
	LossPermille       int    `json:"loss_permille"`
	RTTEwmaNanos       int64  `json:"rtt_ewma_ns,omitempty"`
	JitterNanos        int64  `json:"jitter_ns,omitempty"`
	RTTSamples         uint64 `json:"rtt_samples,omitempty"`
	Innovative         uint64 `json:"innovative"`
	Redundant          uint64 `json:"redundant"`
	InnovationPermille int    `json:"innovation_permille"`
	GoodputBytesPerSec int64  `json:"goodput_bytes_per_sec,omitempty"`
}

// LinkSnapshot is the /debug/links document: every retained link edge
// plus the worst-links digest.
type LinkSnapshot struct {
	At               time.Time    `json:"at"`
	StaleAfterMillis int64        `json:"stale_after_ms"`
	Edges            []LinkEdge   `json:"edges,omitempty"`
	Dropped          uint64       `json:"dropped,omitempty"`
	Worst            *LinkSummary `json:"worst,omitempty"`
}

// LinkSummary is the compact link digest embedded in ClusterSnapshot:
// the worst edges and the peer whose links look worst overall, so a
// straggler is attributable to a specific bad edge.
type LinkSummary struct {
	Edges                 int        `json:"edges"`
	FreshEdges            int        `json:"fresh_edges"`
	WorstEdges            []LinkEdge `json:"worst_edges,omitempty"`
	WorstPeer             string     `json:"worst_peer,omitempty"`
	WorstPeerID           uint64     `json:"worst_peer_id,omitempty"`
	WorstPeerLossPermille int        `json:"worst_peer_loss_permille,omitempty"`
	MaxRTTPeer            string     `json:"max_rtt_peer,omitempty"`
	MaxRTTEwmaNanos       int64      `json:"max_rtt_ewma_ns,omitempty"`
}

// minLossSamples is the sequence-ledger floor below which a loss
// estimate is too noisy to rank a link as "worst".
const minLossSamples = 32

// Snapshot assembles the full link matrix. idOf maps node addresses to
// overlay ids so edges can name their peer's id (nil is fine). Output
// is deterministic: edges by reporter id then peer address.
func (c *LinkCollector) Snapshot(staleAfter time.Duration, idOf map[string]uint64) LinkSnapshot {
	snap := LinkSnapshot{At: time.Now(), StaleAfterMillis: staleAfter.Milliseconds()}
	if c == nil {
		return snap
	}
	c.mu.Lock()
	snap.Dropped = c.dropped
	snap.Edges = make([]LinkEdge, 0, len(c.edges))
	for k, e := range c.edges {
		age := snap.At.Sub(e.at)
		r := e.report
		edge := LinkEdge{
			Reporter:           k.reporter,
			ReporterAddr:       e.reporterAddr,
			Peer:               k.peer,
			PeerID:             idOf[k.peer],
			AgeMillis:          age.Milliseconds(),
			Fresh:              staleAfter <= 0 || age <= staleAfter,
			Frames:             r.Frames,
			Bytes:              r.Bytes,
			Expected:           r.Expected,
			Received:           r.Received,
			Dup:                r.Dup,
			Reordered:          r.Reordered,
			LossPermille:       r.LossPermille,
			RTTEwmaNanos:       r.RTTEwmaNanos,
			JitterNanos:        r.JitterNanos,
			RTTSamples:         r.RTTSamples,
			Innovative:         r.Innovative,
			Redundant:          r.Redundant,
			InnovationPermille: r.InnovationPermille,
			GoodputBytesPerSec: int64(e.goodput),
		}
		snap.Edges = append(snap.Edges, edge)
	}
	c.mu.Unlock()
	sort.Slice(snap.Edges, func(i, j int) bool {
		if snap.Edges[i].Reporter != snap.Edges[j].Reporter {
			return snap.Edges[i].Reporter < snap.Edges[j].Reporter
		}
		return snap.Edges[i].Peer < snap.Edges[j].Peer
	})
	snap.Worst = summarizeLinks(snap.Edges, idOf)
	return snap
}

// Summary returns the compact digest for ClusterSnapshot, or nil when no
// link has been reported yet.
func (c *LinkCollector) Summary(staleAfter time.Duration, idOf map[string]uint64) *LinkSummary {
	if c == nil {
		return nil
	}
	return c.Snapshot(staleAfter, idOf).Worst
}

// summarizeLinks derives the worst-links digest from an assembled edge
// list. A node's aggregate loss is the worse of its two directions:
// what it measures inbound (it reports lossy parents — receive-side
// trouble) and what others measure about traffic it sent (send-side
// trouble); either way the node is the common factor of its bad edges.
func summarizeLinks(edges []LinkEdge, idOf map[string]uint64) *LinkSummary {
	if len(edges) == 0 {
		return nil
	}
	s := &LinkSummary{Edges: len(edges)}
	type agg struct {
		expected, received uint64
	}
	inbound := map[string]*agg{}  // keyed by reporter addr
	outbound := map[string]*agg{} // keyed by peer addr
	var fresh []LinkEdge
	for _, e := range edges {
		if !e.Fresh {
			continue
		}
		s.FreshEdges++
		fresh = append(fresh, e)
		if e.RTTSamples > 0 && e.RTTEwmaNanos > s.MaxRTTEwmaNanos {
			s.MaxRTTEwmaNanos = e.RTTEwmaNanos
			s.MaxRTTPeer = e.Peer
		}
		if e.Expected < minLossSamples {
			continue
		}
		in := inbound[e.ReporterAddr]
		if in == nil {
			in = &agg{}
			inbound[e.ReporterAddr] = in
		}
		in.expected += e.Expected
		in.received += e.Received
		out := outbound[e.Peer]
		if out == nil {
			out = &agg{}
			outbound[e.Peer] = out
		}
		out.expected += e.Expected
		out.received += e.Received
	}
	if s.FreshEdges == 0 {
		return s
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].LossPermille != fresh[j].LossPermille {
			return fresh[i].LossPermille > fresh[j].LossPermille
		}
		if fresh[i].Expected != fresh[j].Expected {
			return fresh[i].Expected > fresh[j].Expected
		}
		if fresh[i].Reporter != fresh[j].Reporter {
			return fresh[i].Reporter < fresh[j].Reporter
		}
		return fresh[i].Peer < fresh[j].Peer
	})
	for _, e := range fresh {
		if len(s.WorstEdges) == 3 {
			break
		}
		if e.Expected >= minLossSamples && e.LossPermille > 0 {
			s.WorstEdges = append(s.WorstEdges, e)
		}
	}
	worst := -1
	addrs := make([]string, 0, len(inbound)+len(outbound))
	for a := range inbound {
		addrs = append(addrs, a)
	}
	for a := range outbound {
		if _, dup := inbound[a]; !dup {
			addrs = append(addrs, a)
		}
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		loss := 0
		if in := inbound[a]; in != nil {
			if l := lossPermille(in.expected, in.received); l > loss {
				loss = l
			}
		}
		if out := outbound[a]; out != nil {
			if l := lossPermille(out.expected, out.received); l > loss {
				loss = l
			}
		}
		if loss > worst {
			worst = loss
			s.WorstPeer = a
			s.WorstPeerLossPermille = loss
		}
	}
	if s.WorstPeer != "" {
		s.WorstPeerID = idOf[s.WorstPeer]
	}
	return s
}
