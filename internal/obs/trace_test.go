package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHopLogRecordAndDrop(t *testing.T) {
	t.Parallel()
	l := NewHopLog(2)
	for i := 0; i < 5; i++ {
		l.Record(HopRecord{TraceID: 1, Gen: 0, Hop: 1, ArrivalNanos: int64(i)})
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", l.Dropped())
	}
	// Nil receiver is a no-op on every method.
	var nilLog *HopLog
	nilLog.Record(HopRecord{})
	if nilLog.Len() != 0 || nilLog.Dropped() != 0 || nilLog.Compact(0) != nil {
		t.Fatal("nil HopLog produced data")
	}
}

func TestHopLogCompact(t *testing.T) {
	t.Parallel()
	l := NewHopLog(16)
	// Three records in the same (trace, gen, hop) cell, one in another.
	l.Record(HopRecord{TraceID: 9, Gen: 2, Hop: 1, Innovative: true, Forwarded: 1, ArrivalNanos: 100, EmitNanos: 50})
	l.Record(HopRecord{TraceID: 9, Gen: 2, Hop: 1, Innovative: false, Forwarded: 2, ArrivalNanos: 90, EmitNanos: 50})
	l.Record(HopRecord{TraceID: 9, Gen: 2, Hop: 1, Innovative: true, Forwarded: 0, ArrivalNanos: 130, EmitNanos: 50})
	l.Record(HopRecord{TraceID: 9, Gen: 2, Hop: 2, Innovative: true, Forwarded: 1, ArrivalNanos: 200, EmitNanos: 50})
	hops := l.Compact(0)
	if len(hops) != 2 {
		t.Fatalf("compacted to %d cells, want 2: %+v", len(hops), hops)
	}
	var h1 *TraceHop
	for i := range hops {
		if hops[i].Hop == 1 {
			h1 = &hops[i]
		}
	}
	if h1 == nil {
		t.Fatalf("no depth-1 cell in %+v", hops)
	}
	if h1.Received != 3 || h1.Innovative != 2 || h1.Forwarded != 3 {
		t.Fatalf("depth-1 cell = %+v", h1)
	}
	if h1.FirstArrivalNano != 90 || h1.LastArrivalNano != 130 || h1.EmitNanos != 50 {
		t.Fatalf("depth-1 envelope = %+v", h1)
	}
	if l.Len() != 0 {
		t.Fatalf("compact did not drain: len = %d", l.Len())
	}

	// Cells beyond max are dropped and counted, keeping the loss signal
	// honest.
	for hop := 1; hop <= 4; hop++ {
		l.Record(HopRecord{TraceID: 9, Gen: 2, Hop: hop, ArrivalNanos: int64(hop)})
	}
	if got := l.Compact(2); len(got) != 2 {
		t.Fatalf("max-limited compact returned %d cells, want 2", len(got))
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2 over-max cells", l.Dropped())
	}
}

func TestTraceCollectorAssembly(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	m := NewTraceMetrics(reg)
	c := NewTraceCollector(0, m)

	// Trace 7 on generation 3: node 1 at depth 1 forwards to node 2 at
	// depth 2; a second report from node 1 merges into the same entry.
	c.Ingest(1, []TraceHop{{TraceID: 7, Gen: 3, Hop: 1, Received: 4, Innovative: 4,
		Forwarded: 4, FirstArrivalNano: 110, LastArrivalNano: 150, EmitNanos: 100}})
	c.Ingest(2, []TraceHop{{TraceID: 7, Gen: 3, Hop: 2, Received: 4, Innovative: 3,
		Forwarded: 0, FirstArrivalNano: 130, LastArrivalNano: 180, EmitNanos: 100}})
	c.Ingest(1, []TraceHop{{TraceID: 7, Gen: 3, Hop: 1, Received: 2, Innovative: 1,
		Forwarded: 2, FirstArrivalNano: 105, LastArrivalNano: 160, EmitNanos: 100}})

	snap := c.Snapshot()
	if snap.SampledGenerations != 1 || snap.MaxHopDepth != 2 || len(snap.Generations) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	g := snap.Generations[0]
	if g.TraceID != 7 || g.Gen != 3 || g.EmitNanos != 100 || g.MaxHop != 2 {
		t.Fatalf("generation = %+v", g)
	}
	if g.Nodes != 2 || g.Received != 10 || g.Innovative != 8 {
		t.Fatalf("generation totals = %+v", g)
	}
	if g.WorstPathNanos != 80 { // node 2 last arrival 180 − emit 100
		t.Fatalf("worst path = %d, want 80", g.WorstPathNanos)
	}
	if len(g.Tree) != 2 || g.Tree[0].Depth != 1 || g.Tree[1].Depth != 2 {
		t.Fatalf("tree levels = %+v", g.Tree)
	}
	n1 := g.Tree[0].Nodes[0]
	if n1.ID != 1 || n1.Received != 6 || n1.Innovative != 5 || n1.Forwarded != 6 ||
		n1.FirstArrivalNanos != 105 || n1.LastArrivalNanos != 160 {
		t.Fatalf("merged node 1 = %+v", n1)
	}
	if len(snap.Depths) != 2 {
		t.Fatalf("depth rows = %+v", snap.Depths)
	}
	d2 := snap.Depths[1]
	if d2.Depth != 2 || d2.Nodes != 1 || d2.Received != 4 || d2.InnovationPermille != 750 {
		t.Fatalf("depth-2 row = %+v", d2)
	}
	if d2.MeanHopLatencyNanos != 15 { // (130 − 100) / 2
		t.Fatalf("depth-2 per-hop latency = %d, want 15", d2.MeanHopLatencyNanos)
	}

	sum := c.Summary()
	if sum == nil || sum.SampledGenerations != 1 || sum.MaxHopDepth != 2 ||
		sum.DeepestGen != 3 || sum.WorstPathGen != 3 || sum.WorstPathNanos != 80 {
		t.Fatalf("summary = %+v", sum)
	}

	// Fleet histograms observed one value per ingested cell.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ncast_trace_reports_total 3",
		"ncast_trace_hop_records_total 3",
		`ncast_trace_hop_depth_count 3`,
		`ncast_trace_innovation_ratio_count 3`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, sb.String())
		}
	}

	// Nil collector and empty summary are safe.
	var nilC *TraceCollector
	nilC.Ingest(1, []TraceHop{{TraceID: 1}})
	if nilC.Summary() != nil || nilC.Snapshot().SampledGenerations != 0 {
		t.Fatal("nil collector produced data")
	}
	if NewTraceCollector(0, nil).Summary() != nil {
		t.Fatal("empty collector returned a summary")
	}
}

func TestTraceCollectorEviction(t *testing.T) {
	t.Parallel()
	c := NewTraceCollector(2, nil)
	for id := uint64(1); id <= 3; id++ {
		c.Ingest(1, []TraceHop{{TraceID: id, Gen: uint32(id), Hop: 1, Received: 1}})
	}
	snap := c.Snapshot()
	if snap.SampledGenerations != 2 {
		t.Fatalf("retained %d generations, want 2", snap.SampledGenerations)
	}
	for _, g := range snap.Generations {
		if g.TraceID == 1 {
			t.Fatalf("oldest trace not evicted: %+v", snap.Generations)
		}
	}
}

func TestTraceCollectorConcurrent(t *testing.T) {
	t.Parallel()
	c := NewTraceCollector(8, NewTraceMetrics(NewRegistry()))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Ingest(uint64(w), []TraceHop{{TraceID: uint64(i%16 + 1), Gen: uint32(i % 16),
					Hop: w%3 + 1, Received: 1, Innovative: i % 2,
					FirstArrivalNano: int64(i + 10), LastArrivalNano: int64(i + 20), EmitNanos: 5}})
				if i%50 == 0 {
					c.Snapshot()
					c.Summary()
				}
			}
		}(w)
	}
	wg.Wait()
	if snap := c.Snapshot(); snap.SampledGenerations != 8 {
		t.Fatalf("retained %d generations, want cap 8", snap.SampledGenerations)
	}
}

// TestRuntimeMetricsSample pins the lazily-sampled runtime bundle: the
// gauges exist after registration and carry live values once a snapshot
// (which runs the collect hooks) is taken.
func TestRuntimeMetricsSample(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	if NewRuntimeMetrics(reg) == nil {
		t.Fatal("nil bundle from live registry")
	}
	points := map[string]float64{}
	for _, p := range reg.Snapshot() {
		points[p.Name] = p.Value
	}
	if points["ncast_runtime_goroutines"] <= 0 {
		t.Errorf("goroutines gauge = %v, want > 0", points["ncast_runtime_goroutines"])
	}
	if points["ncast_runtime_heap_bytes"] <= 0 {
		t.Errorf("heap gauge = %v, want > 0", points["ncast_runtime_heap_bytes"])
	}
	for _, name := range []string{"ncast_runtime_gc_pause_p99_nanos", "ncast_runtime_sched_latency_p99_nanos"} {
		if _, ok := points[name]; !ok {
			t.Errorf("missing gauge %s", name)
		}
	}
	// Prometheus exposition also runs the hooks without deadlocking.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ncast_runtime_goroutines") {
		t.Errorf("prometheus output missing runtime gauges:\n%s", sb.String())
	}
	// Nil registry returns a usable no-op bundle.
	m := NewRuntimeMetrics(nil)
	if m == nil {
		t.Fatal("nil registry returned nil bundle")
	}
	m.Goroutines.Set(1)
}

// TestRegistryOnCollect pins the lazy-collection contract: hooks run on
// every Snapshot and WritePrometheus, outside the registry lock, so a hook
// may itself set gauges.
func TestRegistryOnCollect(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	g := reg.Gauge("collect_runs", "hook runs")
	runs := 0
	reg.OnCollect(func() {
		runs++
		g.Set(int64(runs))
	})
	reg.Snapshot()
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("hook ran %d times, want 2", runs)
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	// Nil registry accepts hooks as a no-op.
	var nilReg *Registry
	nilReg.OnCollect(func() { t.Fatal("hook on nil registry ran") })
	nilReg.Snapshot()
}
