package protocol

import (
	"context"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// addNodeWithBehavior joins an extra node with the given behavior to a
// running session.
func addNodeWithBehavior(t *testing.T, s *session, ctx context.Context, addr string, b Behavior) *Node {
	t.Helper()
	ep, err := s.net.Endpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{
		TrackerAddr:      "tracker",
		ComplaintTimeout: 200 * time.Millisecond,
		Behavior:         b,
		Seed:             999,
	})
	s.wg.Add(1)
	go func() { defer s.wg.Done(); _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join timeout")
	}
	return node
}

// buildAttackChain builds a k=d=2 chain server -> attacker -> victim so the
// victim's entire inflow passes through the attacker.
func buildAttackChain(t *testing.T, b Behavior, opts ...transport.NetworkOption) (*session, *Node, *Node, context.Context) {
	t.Helper()
	content := randContent(1200)
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork(opts...)

	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	s := newBareSession(t, ctx, cancel, net, trackerEP, content, 2, 2)

	attacker := addNodeWithBehavior(t, s, ctx, "attacker", b)
	victim := addNodeWithBehavior(t, s, ctx, "victim", Honest)
	return s, attacker, victim, ctx
}

func TestFreeloaderIsDetectedAndRepaired(t *testing.T) {
	t.Parallel()
	s, attacker, victim, ctx := buildAttackChain(t, Freeloader)
	_ = ctx
	// The attacker's output threads are silent; the victim complains and
	// the tracker splices the attacker out, putting the victim directly
	// below the server — so the victim completes.
	select {
	case <-victim.Completed():
	case <-time.After(30 * time.Second):
		t.Fatalf("victim never recovered from freeloader (progress %.2f)", victim.Progress())
	}
	// The attacker was expelled: the attacker auto-rejoins on expulsion, so
	// wait for at least one repair event instead of a fixed population.
	waitEvent(t, s.tracker.Events(), 10*time.Second, "freeloader repair", func(ev TrackerEvent) bool {
		return ev.Kind == "repair" && ev.Addr == "attacker"
	})
	_ = attacker
}

func TestEntropyAttackStarvesVictimUndetected(t *testing.T) {
	t.Parallel()
	s, attacker, victim, _ := buildAttackChain(t, EntropyAttacker)
	// The attacker forwards bandwidth-shaped garbage, so the victim
	// receives plenty of packets yet cannot gather rank beyond the
	// replayed subspace. Wait for the traffic itself — a sustained inflow
	// proves the attack looks alive — rather than for a wall-clock guess.
	waitFor(t, 30*time.Second, "sustained attack traffic at the victim", func() bool {
		received, _ := victim.Stats()
		return received >= 40
	})
	select {
	case <-victim.Completed():
		t.Fatal("victim completed through an entropy attacker; attack had no effect")
	default:
	}
	received, innovative := victim.Stats()
	// The victim's innovative count is capped near the replay rank: one
	// packet per generation (plus redirects/bursts margin).
	if innovative > received/2 {
		t.Fatalf("attack leaked information: %d of %d innovative", innovative, received)
	}
	// And the paper's point — it is NOT detected: no repair of the
	// attacker has happened.
	drained := true
	for drained {
		select {
		case ev := <-s.tracker.Events():
			if ev.Kind == "repair" && ev.Addr == "attacker" {
				t.Fatal("entropy attacker was detected by liveness checks; it should not be")
			}
		default:
			drained = false
		}
	}
	_ = attacker
}

// newBareSession assembles a session like startSessionKD but without
// pre-joining nodes, so callers control join order and behaviors.
func newBareSession(t *testing.T, ctx context.Context, cancel context.CancelFunc, net *transport.Network, trackerEP transport.Endpoint, content []byte, k, d int) *session {
	t.Helper()
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, k, params, content, 42)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: k, D: d,
		Session: source.Session(),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &session{net: net, tracker: tracker, source: source, cancel: cancel, wg: new(sync.WaitGroup), content: content}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer s.wg.Done(); _ = source.Run(ctx) }()
	t.Cleanup(func() {
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		cancel()
		net.Close()
		s.wg.Wait()
	})
	return s
}
