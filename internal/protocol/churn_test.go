package protocol

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// The churn suite exercises the control plane's fault-tolerance layer:
// liveness leases sweeping crashed bottom clips, deadline-bounded outbox
// sends surviving stalled peers, and full broadcasts over a fault-injected
// transport.

// churnHarness is a session whose nodes have individual lifetimes and
// optionally fault-injected endpoints, driven by a lease-enabled tracker.
type churnHarness struct {
	net     *transport.Network
	tracker *Tracker
	source  *Source
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// churnNode is one node with its own cancel (so it can crash alone) and
// its fault injector (nil when running on the bare fabric).
type churnNode struct {
	node   *Node
	addr   string
	faulty *transport.Faulty
	cancel context.CancelFunc
}

func startChurnHarness(t *testing.T, k, d int, content []byte, mutate func(*TrackerConfig)) *churnHarness {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork()
	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, k, params, content, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrackerConfig{
		K: k, D: d,
		Session:      source.Session(),
		Seed:         7,
		LeaseTimeout: 500 * time.Millisecond,
		SendDeadline: 500 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	tracker, err := NewTracker(trackerEP, source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &churnHarness{net: net, tracker: tracker, source: source, ctx: ctx, cancel: cancel}
	h.wg.Add(2)
	go func() { defer h.wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer h.wg.Done(); _ = source.Run(ctx) }()
	t.Cleanup(func() {
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		cancel()
		net.Close()
		h.wg.Wait()
	})
	return h
}

// join adds a node, optionally behind a Faulty wrapper with the given
// fault plan (nil means a clean endpoint).
func (h *churnHarness) join(t *testing.T, addr string, fault *transport.FaultConfig) *churnNode {
	t.Helper()
	raw, err := h.net.Endpoint(addr)
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.Endpoint(raw)
	var faulty *transport.Faulty
	if fault != nil {
		faulty = transport.NewFaulty(raw, *fault)
		ep = faulty
	}
	node := NewNode(ep, NodeConfig{
		TrackerAddr:      "tracker",
		ComplaintTimeout: 200 * time.Millisecond,
		Seed:             int64(len(addr)) * 31,
	})
	ctx, cancel := context.WithCancel(h.ctx)
	cn := &churnNode{node: node, addr: addr, faulty: faulty, cancel: cancel}
	h.wg.Add(1)
	go func() { defer h.wg.Done(); _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatalf("join %s: %v", addr, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("join %s timed out", addr)
	}
	return cn
}

// crash kills the node without a good-bye: its goroutines stop and its
// address vanishes from the fabric, exactly like a power failure.
func (h *churnHarness) crash(n *churnNode) {
	n.cancel()
	h.net.CloseEndpoint(n.addr)
}

// waitNodes waits until the tracker population reaches want.
func (h *churnHarness) waitNodes(t *testing.T, want int, within time.Duration) {
	t.Helper()
	waitFor(t, within, fmt.Sprintf("population to reach %d (at %d)", want, h.tracker.NumNodes()), func() bool {
		return h.tracker.NumNodes() == want
	})
}

// TestLeafCrashLeaseSweepRemovesRow: a crashed bottom clip has no
// children, so the complaint protocol can never detect it — only the
// lease sweep removes its dangling row. Survivors must still decode and
// Health must converge to the live population with no failure tags left.
func TestLeafCrashLeaseSweepRemovesRow(t *testing.T) {
	t.Parallel()
	content := randContent(600)
	h := startChurnHarness(t, 8, 2, content, nil)
	nodes := make([]*churnNode, 0, 5)
	for _, addr := range []string{"n1", "n2", "n3", "n4", "n5"} {
		nodes = append(nodes, h.join(t, addr, nil))
	}
	// With append insertion the last-joined node holds the bottom row: it
	// is the bottom clip of each of its threads and has no children.
	leaf := nodes[len(nodes)-1]
	h.crash(leaf)

	h.waitNodes(t, 4, 10*time.Second)
	health := h.tracker.Health()
	if health.Nodes != 4 {
		t.Fatalf("Health().Nodes = %d, want 4", health.Nodes)
	}
	if health.Failed != 0 {
		t.Fatalf("Health().Failed = %d, want 0 after repair", health.Failed)
	}
	for _, n := range nodes[:4] {
		waitComplete(t, n.node, 30*time.Second)
	}
}

// TestChurnFaultyTransportAllDecode is the acceptance scenario: every
// node runs behind a 5%-loss fault injector, three leaf nodes crash
// without a good-bye, and still every survivor fully decodes while the
// tracker converges to exactly the live population (zero dangling rows).
func TestChurnFaultyTransportAllDecode(t *testing.T) {
	t.Parallel()
	content := randContent(600)
	h := startChurnHarness(t, 8, 2, content, nil)
	fault := &transport.FaultConfig{SendLoss: 0.05, RecvLoss: 0.05, Seed: 17}
	addrs := []string{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8"}
	nodes := make([]*churnNode, 0, len(addrs))
	for i, addr := range addrs {
		f := *fault
		f.Seed = int64(17 + i)
		nodes = append(nodes, h.join(t, addr, &f))
	}
	// Crash the three bottom-most rows (the latest joiners): no children,
	// no complaints — only the lease sweep can reclaim them.
	for _, n := range nodes[5:] {
		h.crash(n)
	}

	survivors := nodes[:5]
	for _, n := range survivors {
		waitComplete(t, n.node, 60*time.Second)
		got, err := n.node.Content()
		if err != nil {
			t.Fatalf("%s content: %v", n.addr, err)
		}
		if string(got) != string(content) {
			t.Fatalf("%s content mismatch", n.addr)
		}
	}
	h.waitNodes(t, 5, 15*time.Second)
	if health := h.tracker.Health(); health.Nodes != 5 || health.Failed != 0 {
		t.Fatalf("health = %+v, want 5 live rows and no failures", health)
	}
	// The fault plan must actually have fired, or this test proves nothing.
	injected := uint64(0)
	for _, n := range survivors {
		s := n.faulty.Stats()
		injected += s.SendDropped + s.RecvDropped
	}
	if injected == 0 {
		t.Fatal("fault injector never dropped a frame at 5% loss")
	}
}

// TestStalledPeerDoesNotStallDispatch: a peer that stops reading entirely
// (its inbox full, never calling Recv) may delay its own outbox worker by
// at most the configured send deadline per attempt — and must not delay
// the tracker's dispatch loop at all. Before the outbox existed, each
// send to the stalled peer froze Run for the full timeout.
func TestStalledPeerDoesNotStallDispatch(t *testing.T) {
	t.Parallel()
	content := randContent(300)
	h := startChurnHarness(t, 8, 2, content, func(cfg *TrackerConfig) {
		cfg.SendDeadline = 100 * time.Millisecond
	})
	// A peer that never reads: its 256-frame buffer fills, then every
	// further send blocks until the sender's deadline.
	if _, err := h.net.Endpoint("stalled"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		h.tracker.sendControl(h.ctx, "stalled", MsgError, ErrorMsg{Reason: "clog"})
	}

	// With the stalled peer's outbox saturated and its worker wedged in
	// deadline-bounded retries, a fresh join must still complete quickly:
	// dispatch never waits on the stalled peer.
	start := time.Now()
	h.join(t, "healthy", nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("join took %v behind a stalled peer; dispatch is being blocked", elapsed)
	}
}

// TestCompletedCountDropsOnLeaveAndSweep: the tracker must forget a
// node's completion record when the node leaves gracefully AND when it is
// repaired away, or CompletedCount grows without bound under churn.
func TestCompletedCountDropsOnLeaveAndSweep(t *testing.T) {
	t.Parallel()
	content := randContent(300)
	h := startChurnHarness(t, 8, 2, content, nil)
	a := h.join(t, "a", nil)
	b := h.join(t, "b", nil)
	waitComplete(t, a.node, 30*time.Second)
	waitComplete(t, b.node, 30*time.Second)

	waitFor(t, 5*time.Second, "both completion records", func() bool {
		return h.tracker.CompletedCount() == 2
	})

	// Graceful leave must drop b's completion record.
	if err := b.node.Leave(h.ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.node.Left():
	case <-time.After(5 * time.Second):
		t.Fatal("leave never acknowledged")
	}
	waitFor(t, 5*time.Second, "completion record dropped on leave", func() bool {
		return h.tracker.CompletedCount() == 1
	})

	// A crash (lease sweep -> Fail+Repair) must drop a's record too.
	h.crash(a)
	waitFor(t, 10*time.Second, "completion record dropped on sweep", func() bool {
		return h.tracker.CompletedCount() == 0
	})
}

// TestSpuriousGoodbyeAckIgnored: an unsolicited MsgGoodbyeAck must not
// tear down a node that never called Leave, and a duplicate ack must not
// panic on a double close of the Left channel.
func TestSpuriousGoodbyeAckIgnored(t *testing.T) {
	t.Parallel()
	content := randContent(300)
	s := startSession(t, 1, content)
	node := s.nodes[0]

	ack, err := EncodeControl(MsgGoodbyeAck, GoodbyeAck{})
	if err != nil {
		t.Fatal(err)
	}
	prober, err := s.net.Endpoint("prober")
	if err != nil {
		t.Fatal(err)
	}
	defer prober.Close()
	// Two spurious acks: the first would previously have torn down Run,
	// the second would have panicked closing leftCh twice.
	for i := 0; i < 2; i++ {
		if err := prober.Send(context.Background(), nodeAddr(0), ack); err != nil {
			t.Fatal(err)
		}
	}
	// The node must still be running despite the spurious acks: a torn-down
	// Run could never finish the download, so completion is the
	// deterministic proof both acks were processed and ignored (a double
	// close of Left() would additionally panic the run loop).
	waitComplete(t, node, 30*time.Second)
	select {
	case <-node.Left():
		t.Fatal("spurious ack closed Left()")
	default:
	}

	// A genuine leave still works after spurious acks were ignored.
	if err := node.Leave(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-node.Left():
	case <-time.After(5 * time.Second):
		t.Fatal("genuine leave never acknowledged")
	}
}
