package protocol

// Fuzzers for the two wire codecs every peer exposes to the network: the
// JSON control envelope and the binary data frame. Both decoders sit
// directly on attacker-reachable input (any peer can send any bytes), so
// the properties fuzzed here are the security-relevant ones: no panic, no
// unbounded allocation driven by header fields, and encode(decode(x))
// fidelity for everything the decoder accepts.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
)

// controlSeeds returns one well-formed frame per control message type,
// plus structural edge cases, so the fuzzer starts inside the grammar.
func controlSeeds(t testing.TB) [][]byte {
	t.Helper()
	payloads := []struct {
		typ MsgType
		p   interface{}
	}{
		{MsgHello, Hello{Addr: "n1", Degree: 3}},
		{MsgWelcome, Welcome{ID: 7, K: 32, Degree: 4, Threads: []int{1, 5, 9},
			Session: SessionParams{FieldBits: 8, GenSize: 16, PacketSize: 512, ContentLen: 1 << 20}}},
		{MsgGoodbye, Goodbye{ID: 7}},
		{MsgGoodbyeAck, GoodbyeAck{}},
		{MsgComplaint, Complaint{ID: 9, Thread: 2, ParentAddr: "n4"}},
		{MsgRedirect, Redirect{Thread: 1, ChildAddr: "n8"}},
		{MsgComplete, Complete{ID: 3}},
		{MsgError, ErrorMsg{Reason: "full"}},
		{MsgExpelled, Expelled{ID: 11}},
		{MsgCongested, Congested{ID: 2}},
		{MsgUncongested, Uncongested{ID: 2}},
		{MsgThreadDropped, ThreadDropped{Thread: 6}},
		{MsgThreadAdded, ThreadAdded{Thread: 6, ChildAddr: "n2"}},
		{MsgLease, Lease{ID: 5}},
		{MsgStatsReport, StatsReport{ID: 5, Rank: 12, MaxRank: 64,
			GenRanks: []int{4, 4, 4}, Received: 100, DelayP50Nanos: 1000}},
	}
	seeds := make([][]byte, 0, len(payloads)+4)
	for _, s := range payloads {
		frame, err := EncodeControl(s.typ, s.p)
		if err != nil {
			t.Fatalf("seed encode %d: %v", s.typ, err)
		}
		seeds = append(seeds, frame)
	}
	seeds = append(seeds,
		[]byte{},          // empty
		[]byte{1},         // control kind byte, no body
		[]byte(`{"t":1}`), // missing kind byte
		append([]byte{1}, `{"t":255,"p":{"addr":"x"}}`...), // unknown type
	)
	return seeds
}

// FuzzDecodeControl hammers the control envelope decoder with arbitrary
// bytes. Accepted frames must re-encode to a frame that decodes to the
// same type and a semantically identical payload.
func FuzzDecodeControl(f *testing.F) {
	for _, s := range controlSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, payload, err := DecodeControl(frame)
		if err != nil {
			return
		}
		// Whatever the decoder accepts must be within the JSON grammar.
		if payload != nil && !json.Valid(payload) {
			t.Fatalf("accepted invalid payload %q", payload)
		}
		if payload == nil {
			payload = json.RawMessage("null")
		}
		again, err := EncodeControl(typ, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		typ2, payload2, err := DecodeControl(again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if typ2 != typ {
			t.Fatalf("type changed across round trip: %d -> %d", typ, typ2)
		}
		// Compare semantically, not byte-wise: re-encoding HTML-escapes
		// characters like "&" to "\u0026", which is the same JSON value.
		var want, got interface{}
		if err := json.Unmarshal(payload, &want); err != nil {
			t.Fatalf("unmarshal original: %v", err)
		}
		if err := json.Unmarshal(payload2, &got); err != nil {
			t.Fatalf("unmarshal round-tripped: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("payload changed across round trip: %s -> %s", payload, payload2)
		}
	})
}

// fuzzField maps the fuzzer's field selector onto the three coding fields.
func fuzzField(sel uint8) gf.Field {
	switch sel % 3 {
	case 0:
		return gf.F2
	case 1:
		return gf.F256
	default:
		return gf.F65536
	}
}

// FuzzDecodeData hammers the binary data-frame decoder over all three
// fields and all three data-frame variants. Accepted frames must
// round-trip exactly: thread, stamp, trace context, generation,
// coefficients, and payload all survive re-encoding. A malformed trace
// header must be rejected, never mis-routed to another variant.
func FuzzDecodeData(f *testing.F) {
	for sel := uint8(0); sel < 3; sel++ {
		fld := fuzzField(sel)
		p := &rlnc.Packet{Gen: 3, Coeff: []uint16{1, 0, 1}, Payload: []byte("abcd")}
		f.Add(sel, EncodeData(fld, 9, 0, p))
		f.Add(sel, EncodeData(fld, 9, 123456789, p))
		f.Add(sel, EncodeDataTraced(fld, 9, 123456789, TraceContext{ID: 0xfeedface, Hop: 2}, p))
		f.Add(sel, EncodeDataTraced(fld, 9, 0, TraceContext{ID: 1, Hop: 255}, p))
	}
	f.Add(uint8(1), []byte{0, 0, 1})                              // header only
	f.Add(uint8(1), []byte{3, 0, 1, 1, 2, 3})                     // stamped, truncated stamp
	f.Add(uint8(1), []byte{4, 0, 1, 1, 2, 3})                     // traced, truncated context
	f.Add(uint8(1), append([]byte{4, 0, 1}, make([]byte, 17)...)) // traced, zero id
	f.Fuzz(func(t *testing.T, sel uint8, frame []byte) {
		fld := fuzzField(sel)
		thread, stamp, tc, p, err := DecodeDataTraced(fld, frame)
		if err != nil {
			return
		}
		// Header fields must not have conjured state beyond the input:
		// everything in the packet was carried by the frame itself.
		if p.WireSize(fld) > len(frame) {
			t.Fatalf("decoded packet claims %d wire bytes from a %d-byte frame", p.WireSize(fld), len(frame))
		}
		// A frame the decoder calls traced must carry a usable context.
		if len(frame) > 0 && frame[0] == 4 && !tc.Traced() {
			t.Fatalf("traced frame accepted with zero trace id")
		}
		again := EncodeDataTraced(fld, thread, stamp, tc, p)
		thread2, stamp2, tc2, p2, err := DecodeDataTraced(fld, again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if thread2 != thread {
			t.Fatalf("thread changed across round trip: %d -> %d", thread, thread2)
		}
		// Traced frames carry the stamp verbatim; otherwise a non-positive
		// stamp encodes as the unstamped variant.
		wantStamp := stamp
		if !tc.Traced() && wantStamp <= 0 {
			wantStamp = 0
		}
		if stamp2 != wantStamp {
			t.Fatalf("stamp changed across round trip: %d -> %d", stamp, stamp2)
		}
		if tc2 != tc {
			t.Fatalf("trace context changed across round trip: %+v -> %+v", tc, tc2)
		}
		if p2.Gen != p.Gen || !equalCoeff(p2.Coeff, p.Coeff) || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("packet changed across round trip:\n%+v\n%+v", p, p2)
		}
	})
}

func equalCoeff(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeKeepalive covers the third frame kind; it must never panic
// and must round-trip the thread index for every frame it accepts.
func FuzzDecodeKeepalive(f *testing.F) {
	f.Add(EncodeKeepalive(0))
	f.Add(EncodeKeepalive(65535))
	f.Add([]byte{2})
	f.Fuzz(func(t *testing.T, frame []byte) {
		thread, err := DecodeKeepalive(frame)
		if err != nil {
			return
		}
		if got, err := DecodeKeepalive(EncodeKeepalive(thread)); err != nil || got != thread {
			t.Fatalf("keepalive round trip: thread %d -> %d, err %v", thread, got, err)
		}
	})
}

// TestControlRoundTripAllTypes pins the non-fuzz property directly: every
// concrete control message encodes, decodes, and unmarshals back to an
// identical value.
func TestControlRoundTripAllTypes(t *testing.T) {
	t.Parallel()
	check := func(typ MsgType, in, out interface{}) {
		t.Helper()
		frame, err := EncodeControl(typ, in)
		if err != nil {
			t.Fatalf("encode %d: %v", typ, err)
		}
		gotType, payload, err := DecodeControl(frame)
		if err != nil {
			t.Fatalf("decode %d: %v", typ, err)
		}
		if gotType != typ {
			t.Fatalf("type %d decoded as %d", typ, gotType)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("unmarshal %d: %v", typ, err)
		}
		inJSON, _ := json.Marshal(in)
		outJSON, _ := json.Marshal(out)
		if !bytes.Equal(inJSON, outJSON) {
			t.Fatalf("type %d round trip: %s -> %s", typ, inJSON, outJSON)
		}
	}
	check(MsgHello, &Hello{Addr: "n1", Degree: 2}, &Hello{})
	check(MsgWelcome, &Welcome{ID: 1, K: 8, Degree: 2, Threads: []int{0, 7},
		Session:     SessionParams{FieldBits: 16, GenSize: 32, PacketSize: 1024, ContentLen: 1 << 16, LayerSizes: []int{4096, 60928}},
		LeaseMillis: 500, StatsMillis: 1000}, &Welcome{})
	check(MsgGoodbye, &Goodbye{ID: 4}, &Goodbye{})
	check(MsgComplaint, &Complaint{ID: 4, Thread: 3, ParentAddr: "p"}, &Complaint{})
	check(MsgRedirect, &Redirect{Thread: 3, ChildAddr: "c"}, &Redirect{})
	check(MsgStatsReport, &StatsReport{ID: 2, Rank: 5, MaxRank: 10, GenRanks: []int{5},
		GensDone: 0, TotalGens: 2, Received: 9, Innovative: 5, Redundant: 4,
		DelayP50Nanos: 10, DelayP90Nanos: 20, DelayP99Nanos: 30, OverheadPermille: 1100}, &StatsReport{})
}

// TestDataRoundTripTraced pins the traced frame variant across the three
// fields: the context survives exactly (including hop saturation values
// and a zero stamp, which the traced variant carries verbatim), and the
// two malformed shapes — truncated context, zero trace ID — are rejected
// as errors rather than mis-routed to another variant.
func TestDataRoundTripTraced(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		p := &rlnc.Packet{Gen: 7, Coeff: []uint16{1, 0, 1, 1}, Payload: []byte("traced-payload")}
		for _, tc := range []TraceContext{
			{ID: 1, Hop: 1},
			{ID: ^uint64(0), Hop: 255},
			{ID: 0xdeadbeefcafe, Hop: 0},
		} {
			for _, stamp := range []int64{0, 42} {
				frame := EncodeDataTraced(fld, 3, stamp, tc, p)
				thread, gotStamp, gotTC, q, err := DecodeDataTraced(fld, frame)
				if err != nil {
					t.Fatalf("field %d tc=%+v stamp=%d: %v", fld.Bits(), tc, stamp, err)
				}
				if thread != 3 || gotStamp != stamp || gotTC != tc {
					t.Fatalf("field %d: got thread=%d stamp=%d tc=%+v, want 3/%d/%+v",
						fld.Bits(), thread, gotStamp, gotTC, stamp, tc)
				}
				if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("field %d tc=%+v: packet mismatch", fld.Bits(), tc)
				}
				// The plain decoder must accept the traced frame too,
				// dropping only the context.
				thread, gotStamp, q2, err := DecodeData(fld, frame)
				if err != nil || thread != 3 || gotStamp != stamp || q2.Gen != p.Gen {
					t.Fatalf("field %d: DecodeData on traced frame: %v", fld.Bits(), err)
				}
			}
		}
		// An untraced context must produce the exact legacy encoding.
		for _, stamp := range []int64{0, 99} {
			traced := EncodeDataTraced(fld, 3, stamp, TraceContext{}, p)
			plain := EncodeData(fld, 3, stamp, p)
			if !bytes.Equal(traced, plain) {
				t.Fatalf("field %d stamp=%d: untraced encoding diverged from legacy", fld.Bits(), stamp)
			}
		}
		// Malformed traced frames: truncated context and zero trace ID.
		if _, _, _, _, err := DecodeDataTraced(fld, []byte{4, 0, 3, 1, 2}); err == nil {
			t.Fatalf("field %d: truncated traced frame accepted", fld.Bits())
		}
		zero := append([]byte{4, 0, 3}, make([]byte, 17)...)
		zero = p.AppendTo(zero, fld)
		if _, _, _, _, err := DecodeDataTraced(fld, zero); err == nil {
			t.Fatalf("field %d: zero-trace-id frame accepted", fld.Bits())
		}
	}
}

// TestTracedHotPathAllocs is the tracing-overhead guard: with sampling
// off (a zero TraceContext), the pooled emit and receive paths must not
// allocate at all — enabling the tracing code paths costs nothing unless
// a generation is actually sampled.
func TestTracedHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on instrumented paths")
	}
	fld := gf.F256
	src := &rlnc.Packet{Gen: 1, Coeff: []uint16{3, 1, 4, 1}, Payload: make([]byte, 256)}
	frame := EncodeDataTraced(fld, 2, 12345, TraceContext{}, src)
	hot := func() {
		buf := rlnc.GetFrameBuf()
		*buf = AppendDataTraced(*buf, fld, 2, 12345, TraceContext{}, src)
		_, _, _, p, err := DecodeDataTraced(fld, frame)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
		rlnc.PutFrameBuf(buf)
	}
	// Warm the pools outside the measured runs.
	for i := 0; i < 16; i++ {
		hot()
	}
	if allocs := testing.AllocsPerRun(200, hot); allocs != 0 {
		t.Fatalf("untraced hot path allocates %.1f objects per emit+receive, want 0", allocs)
	}
}

// TestDataRoundTripAllFields pins the binary codec across the three
// fields and both frame variants, including the GF(2) bit-packing edges
// (coefficient counts straddling byte boundaries).
func TestDataRoundTripAllFields(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		max := uint16(1)
		if fld.Bits() == 8 {
			max = 255
		} else if fld.Bits() == 16 {
			max = 65535
		}
		for _, n := range []int{1, 7, 8, 9, 16, 33} {
			coeff := make([]uint16, n)
			for i := range coeff {
				coeff[i] = uint16(i*31+1) & max
			}
			p := &rlnc.Packet{Gen: uint32(n), Coeff: coeff, Payload: []byte("payload-bytes")}
			for _, stamp := range []int64{0, 42} {
				frame := EncodeData(fld, n, stamp, p)
				thread, gotStamp, q, err := DecodeData(fld, frame)
				if err != nil {
					t.Fatalf("field %d n=%d stamp=%d: %v", fld.Bits(), n, stamp, err)
				}
				if thread != n || gotStamp != stamp {
					t.Fatalf("field %d n=%d: thread/stamp %d/%d", fld.Bits(), n, thread, gotStamp)
				}
				if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("field %d n=%d: packet mismatch", fld.Bits(), n)
				}
			}
		}
	}
}
