package protocol

// Fuzzers for the two wire codecs every peer exposes to the network: the
// JSON control envelope and the binary data frame. Both decoders sit
// directly on attacker-reachable input (any peer can send any bytes), so
// the properties fuzzed here are the security-relevant ones: no panic, no
// unbounded allocation driven by header fields, and encode(decode(x))
// fidelity for everything the decoder accepts.

import (
	"bytes"
	"encoding/json"
	"testing"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
)

// controlSeeds returns one well-formed frame per control message type,
// plus structural edge cases, so the fuzzer starts inside the grammar.
func controlSeeds(t testing.TB) [][]byte {
	t.Helper()
	payloads := []struct {
		typ MsgType
		p   interface{}
	}{
		{MsgHello, Hello{Addr: "n1", Degree: 3}},
		{MsgWelcome, Welcome{ID: 7, K: 32, Degree: 4, Threads: []int{1, 5, 9},
			Session: SessionParams{FieldBits: 8, GenSize: 16, PacketSize: 512, ContentLen: 1 << 20}}},
		{MsgGoodbye, Goodbye{ID: 7}},
		{MsgGoodbyeAck, GoodbyeAck{}},
		{MsgComplaint, Complaint{ID: 9, Thread: 2, ParentAddr: "n4"}},
		{MsgRedirect, Redirect{Thread: 1, ChildAddr: "n8"}},
		{MsgComplete, Complete{ID: 3}},
		{MsgError, ErrorMsg{Reason: "full"}},
		{MsgExpelled, Expelled{ID: 11}},
		{MsgCongested, Congested{ID: 2}},
		{MsgUncongested, Uncongested{ID: 2}},
		{MsgThreadDropped, ThreadDropped{Thread: 6}},
		{MsgThreadAdded, ThreadAdded{Thread: 6, ChildAddr: "n2"}},
		{MsgLease, Lease{ID: 5}},
		{MsgStatsReport, StatsReport{ID: 5, Rank: 12, MaxRank: 64,
			GenRanks: []int{4, 4, 4}, Received: 100, DelayP50Nanos: 1000}},
	}
	seeds := make([][]byte, 0, len(payloads)+4)
	for _, s := range payloads {
		frame, err := EncodeControl(s.typ, s.p)
		if err != nil {
			t.Fatalf("seed encode %d: %v", s.typ, err)
		}
		seeds = append(seeds, frame)
	}
	seeds = append(seeds,
		[]byte{},          // empty
		[]byte{1},         // control kind byte, no body
		[]byte(`{"t":1}`), // missing kind byte
		append([]byte{1}, `{"t":255,"p":{"addr":"x"}}`...), // unknown type
	)
	return seeds
}

// FuzzDecodeControl hammers the control envelope decoder with arbitrary
// bytes. Accepted frames must re-encode to a frame that decodes to the
// same type and a semantically identical payload.
func FuzzDecodeControl(f *testing.F) {
	for _, s := range controlSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, payload, err := DecodeControl(frame)
		if err != nil {
			return
		}
		// Whatever the decoder accepts must be within the JSON grammar.
		if payload != nil && !json.Valid(payload) {
			t.Fatalf("accepted invalid payload %q", payload)
		}
		if payload == nil {
			payload = json.RawMessage("null")
		}
		again, err := EncodeControl(typ, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		typ2, payload2, err := DecodeControl(again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if typ2 != typ {
			t.Fatalf("type changed across round trip: %d -> %d", typ, typ2)
		}
		var want, got bytes.Buffer
		if err := json.Compact(&want, payload); err != nil {
			t.Fatalf("compact original: %v", err)
		}
		if err := json.Compact(&got, payload2); err != nil {
			t.Fatalf("compact round-tripped: %v", err)
		}
		if want.String() != got.String() {
			t.Fatalf("payload changed across round trip: %s -> %s", want.String(), got.String())
		}
	})
}

// fuzzField maps the fuzzer's field selector onto the three coding fields.
func fuzzField(sel uint8) gf.Field {
	switch sel % 3 {
	case 0:
		return gf.F2
	case 1:
		return gf.F256
	default:
		return gf.F65536
	}
}

// FuzzDecodeData hammers the binary data-frame decoder over all three
// fields. Accepted frames must round-trip exactly: thread, stamp,
// generation, coefficients, and payload all survive re-encoding.
func FuzzDecodeData(f *testing.F) {
	for sel := uint8(0); sel < 3; sel++ {
		fld := fuzzField(sel)
		p := &rlnc.Packet{Gen: 3, Coeff: []uint16{1, 0, 1}, Payload: []byte("abcd")}
		f.Add(sel, EncodeData(fld, 9, 0, p))
		f.Add(sel, EncodeData(fld, 9, 123456789, p))
	}
	f.Add(uint8(1), []byte{0, 0, 1})          // header only
	f.Add(uint8(1), []byte{3, 0, 1, 1, 2, 3}) // stamped, truncated stamp
	f.Fuzz(func(t *testing.T, sel uint8, frame []byte) {
		fld := fuzzField(sel)
		thread, stamp, p, err := DecodeData(fld, frame)
		if err != nil {
			return
		}
		// Header fields must not have conjured state beyond the input:
		// everything in the packet was carried by the frame itself.
		if p.WireSize(fld) > len(frame) {
			t.Fatalf("decoded packet claims %d wire bytes from a %d-byte frame", p.WireSize(fld), len(frame))
		}
		again := EncodeData(fld, thread, stamp, p)
		thread2, stamp2, p2, err := DecodeData(fld, again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if thread2 != thread {
			t.Fatalf("thread changed across round trip: %d -> %d", thread, thread2)
		}
		// A non-positive stamp encodes as the unstamped variant.
		wantStamp := stamp
		if wantStamp <= 0 {
			wantStamp = 0
		}
		if stamp2 != wantStamp {
			t.Fatalf("stamp changed across round trip: %d -> %d", stamp, stamp2)
		}
		if p2.Gen != p.Gen || !equalCoeff(p2.Coeff, p.Coeff) || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("packet changed across round trip:\n%+v\n%+v", p, p2)
		}
	})
}

func equalCoeff(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeKeepalive covers the third frame kind; it must never panic
// and must round-trip the thread index for every frame it accepts.
func FuzzDecodeKeepalive(f *testing.F) {
	f.Add(EncodeKeepalive(0))
	f.Add(EncodeKeepalive(65535))
	f.Add([]byte{2})
	f.Fuzz(func(t *testing.T, frame []byte) {
		thread, err := DecodeKeepalive(frame)
		if err != nil {
			return
		}
		if got, err := DecodeKeepalive(EncodeKeepalive(thread)); err != nil || got != thread {
			t.Fatalf("keepalive round trip: thread %d -> %d, err %v", thread, got, err)
		}
	})
}

// TestControlRoundTripAllTypes pins the non-fuzz property directly: every
// concrete control message encodes, decodes, and unmarshals back to an
// identical value.
func TestControlRoundTripAllTypes(t *testing.T) {
	t.Parallel()
	check := func(typ MsgType, in, out interface{}) {
		t.Helper()
		frame, err := EncodeControl(typ, in)
		if err != nil {
			t.Fatalf("encode %d: %v", typ, err)
		}
		gotType, payload, err := DecodeControl(frame)
		if err != nil {
			t.Fatalf("decode %d: %v", typ, err)
		}
		if gotType != typ {
			t.Fatalf("type %d decoded as %d", typ, gotType)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("unmarshal %d: %v", typ, err)
		}
		inJSON, _ := json.Marshal(in)
		outJSON, _ := json.Marshal(out)
		if !bytes.Equal(inJSON, outJSON) {
			t.Fatalf("type %d round trip: %s -> %s", typ, inJSON, outJSON)
		}
	}
	check(MsgHello, &Hello{Addr: "n1", Degree: 2}, &Hello{})
	check(MsgWelcome, &Welcome{ID: 1, K: 8, Degree: 2, Threads: []int{0, 7},
		Session:     SessionParams{FieldBits: 16, GenSize: 32, PacketSize: 1024, ContentLen: 1 << 16, LayerSizes: []int{4096, 60928}},
		LeaseMillis: 500, StatsMillis: 1000}, &Welcome{})
	check(MsgGoodbye, &Goodbye{ID: 4}, &Goodbye{})
	check(MsgComplaint, &Complaint{ID: 4, Thread: 3, ParentAddr: "p"}, &Complaint{})
	check(MsgRedirect, &Redirect{Thread: 3, ChildAddr: "c"}, &Redirect{})
	check(MsgStatsReport, &StatsReport{ID: 2, Rank: 5, MaxRank: 10, GenRanks: []int{5},
		GensDone: 0, TotalGens: 2, Received: 9, Innovative: 5, Redundant: 4,
		DelayP50Nanos: 10, DelayP90Nanos: 20, DelayP99Nanos: 30, OverheadPermille: 1100}, &StatsReport{})
}

// TestDataRoundTripAllFields pins the binary codec across the three
// fields and both frame variants, including the GF(2) bit-packing edges
// (coefficient counts straddling byte boundaries).
func TestDataRoundTripAllFields(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		max := uint16(1)
		if fld.Bits() == 8 {
			max = 255
		} else if fld.Bits() == 16 {
			max = 65535
		}
		for _, n := range []int{1, 7, 8, 9, 16, 33} {
			coeff := make([]uint16, n)
			for i := range coeff {
				coeff[i] = uint16(i*31+1) & max
			}
			p := &rlnc.Packet{Gen: uint32(n), Coeff: coeff, Payload: []byte("payload-bytes")}
			for _, stamp := range []int64{0, 42} {
				frame := EncodeData(fld, n, stamp, p)
				thread, gotStamp, q, err := DecodeData(fld, frame)
				if err != nil {
					t.Fatalf("field %d n=%d stamp=%d: %v", fld.Bits(), n, stamp, err)
				}
				if thread != n || gotStamp != stamp {
					t.Fatalf("field %d n=%d: thread/stamp %d/%d", fld.Bits(), n, thread, gotStamp)
				}
				if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("field %d n=%d: packet mismatch", fld.Bits(), n)
				}
			}
		}
	}
}
