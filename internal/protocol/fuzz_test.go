package protocol

// Fuzzers for the two wire codecs every peer exposes to the network: the
// JSON control envelope and the binary data frame. Both decoders sit
// directly on attacker-reachable input (any peer can send any bytes), so
// the properties fuzzed here are the security-relevant ones: no panic, no
// unbounded allocation driven by header fields, and encode(decode(x))
// fidelity for everything the decoder accepts.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"ncast/internal/gf"
	"ncast/internal/obs"
	"ncast/internal/rlnc"
)

// controlSeeds returns one well-formed frame per control message type,
// plus structural edge cases, so the fuzzer starts inside the grammar.
func controlSeeds(t testing.TB) [][]byte {
	t.Helper()
	payloads := []struct {
		typ MsgType
		p   interface{}
	}{
		{MsgHello, Hello{Addr: "n1", Degree: 3}},
		{MsgWelcome, Welcome{ID: 7, K: 32, Degree: 4, Threads: []int{1, 5, 9},
			Session: SessionParams{FieldBits: 8, GenSize: 16, PacketSize: 512, ContentLen: 1 << 20}}},
		{MsgGoodbye, Goodbye{ID: 7}},
		{MsgGoodbyeAck, GoodbyeAck{}},
		{MsgComplaint, Complaint{ID: 9, Thread: 2, ParentAddr: "n4"}},
		{MsgRedirect, Redirect{Thread: 1, ChildAddr: "n8"}},
		{MsgComplete, Complete{ID: 3}},
		{MsgError, ErrorMsg{Reason: "full"}},
		{MsgExpelled, Expelled{ID: 11}},
		{MsgCongested, Congested{ID: 2}},
		{MsgUncongested, Uncongested{ID: 2}},
		{MsgThreadDropped, ThreadDropped{Thread: 6}},
		{MsgThreadAdded, ThreadAdded{Thread: 6, ChildAddr: "n2"}},
		{MsgLease, Lease{ID: 5}},
		{MsgStatsReport, StatsReport{ID: 5, Rank: 12, MaxRank: 64,
			GenRanks: []int{4, 4, 4}, Received: 100, DelayP50Nanos: 1000}},
	}
	seeds := make([][]byte, 0, len(payloads)+4)
	for _, s := range payloads {
		frame, err := EncodeControl(s.typ, s.p)
		if err != nil {
			t.Fatalf("seed encode %d: %v", s.typ, err)
		}
		seeds = append(seeds, frame)
	}
	seeds = append(seeds,
		[]byte{},          // empty
		[]byte{1},         // control kind byte, no body
		[]byte(`{"t":1}`), // missing kind byte
		append([]byte{1}, `{"t":255,"p":{"addr":"x"}}`...), // unknown type
	)
	return seeds
}

// FuzzDecodeControl hammers the control envelope decoder with arbitrary
// bytes. Accepted frames must re-encode to a frame that decodes to the
// same type and a semantically identical payload.
func FuzzDecodeControl(f *testing.F) {
	for _, s := range controlSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		typ, payload, err := DecodeControl(frame)
		if err != nil {
			return
		}
		// Whatever the decoder accepts must be within the JSON grammar.
		if payload != nil && !json.Valid(payload) {
			t.Fatalf("accepted invalid payload %q", payload)
		}
		if payload == nil {
			payload = json.RawMessage("null")
		}
		again, err := EncodeControl(typ, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		typ2, payload2, err := DecodeControl(again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if typ2 != typ {
			t.Fatalf("type changed across round trip: %d -> %d", typ, typ2)
		}
		// Compare semantically, not byte-wise: re-encoding HTML-escapes
		// characters like "&" to "\u0026", which is the same JSON value.
		var want, got interface{}
		if err := json.Unmarshal(payload, &want); err != nil {
			t.Fatalf("unmarshal original: %v", err)
		}
		if err := json.Unmarshal(payload2, &got); err != nil {
			t.Fatalf("unmarshal round-tripped: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("payload changed across round trip: %s -> %s", payload, payload2)
		}
	})
}

// fuzzField maps the fuzzer's field selector onto the three coding fields.
func fuzzField(sel uint8) gf.Field {
	switch sel % 3 {
	case 0:
		return gf.F2
	case 1:
		return gf.F256
	default:
		return gf.F65536
	}
}

// FuzzDecodeData hammers the binary data-frame decoder over all three
// fields and all three data-frame variants. Accepted frames must
// round-trip exactly: thread, stamp, trace context, generation,
// coefficients, and payload all survive re-encoding. A malformed trace
// header must be rejected, never mis-routed to another variant.
func FuzzDecodeData(f *testing.F) {
	for sel := uint8(0); sel < 3; sel++ {
		fld := fuzzField(sel)
		p := &rlnc.Packet{Gen: 3, Coeff: []uint16{1, 0, 1}, Payload: []byte("abcd")}
		f.Add(sel, EncodeData(fld, 9, 0, p))
		f.Add(sel, EncodeData(fld, 9, 123456789, p))
		f.Add(sel, EncodeDataTraced(fld, 9, 123456789, TraceContext{ID: 0xfeedface, Hop: 2}, p))
		f.Add(sel, EncodeDataTraced(fld, 9, 0, TraceContext{ID: 1, Hop: 255}, p))
		f.Add(sel, EncodeDataSeq(fld, 9, 0, 0, TraceContext{}, p))
		f.Add(sel, EncodeDataSeq(fld, 9, SeqMod-1, 123456789, TraceContext{}, p))
		f.Add(sel, EncodeDataSeq(fld, 9, 7, 123456789, TraceContext{ID: 0xfeedface, Hop: 2}, p))
	}
	f.Add(uint8(1), []byte{0, 0, 1})                              // header only
	f.Add(uint8(1), []byte{3, 0, 1, 1, 2, 3})                     // stamped, truncated stamp
	f.Add(uint8(1), []byte{4, 0, 1, 1, 2, 3})                     // traced, truncated context
	f.Add(uint8(1), append([]byte{4, 0, 1}, make([]byte, 17)...)) // traced, zero id
	f.Add(uint8(1), []byte{0, 0x80, 1, 9})                        // seq flag, truncated seq
	f.Fuzz(func(t *testing.T, sel uint8, frame []byte) {
		fld := fuzzField(sel)
		thread, stamp, tc, p, err := DecodeDataTraced(fld, frame)
		if err != nil {
			// The seq-aware decoder must agree that the frame is bad.
			if _, _, _, _, _, err2 := DecodeDataSeq(fld, frame); err2 == nil {
				t.Fatalf("DecodeDataSeq accepted a frame DecodeDataTraced rejects")
			}
			return
		}
		// The seq-aware decoder accepts everything the traced one does and
		// agrees on every shared field; the seq itself round-trips through
		// the seq-stamped encoder.
		thS, seq, stampS, tcS, pS, err := DecodeDataSeq(fld, frame)
		if err != nil {
			t.Fatalf("DecodeDataSeq rejected a frame DecodeDataTraced accepts: %v", err)
		}
		if thS != thread || stampS != stamp || tcS != tc {
			t.Fatalf("decoders disagree: thread %d/%d stamp %d/%d tc %+v/%+v",
				thread, thS, stamp, stampS, tc, tcS)
		}
		if seq < -1 || seq >= SeqMod {
			t.Fatalf("seq %d outside [-1, %d)", seq, SeqMod)
		}
		if seq >= 0 {
			againSeq := EncodeDataSeq(fld, thS, seq, stampS, tcS, pS)
			_, seq2, _, _, _, err := DecodeDataSeq(fld, againSeq)
			if err != nil || seq2 != seq {
				t.Fatalf("seq round trip: %d -> %d, err %v", seq, seq2, err)
			}
		}
		pS.Release()
		// Header fields must not have conjured state beyond the input:
		// everything in the packet was carried by the frame itself.
		if p.WireSize(fld) > len(frame) {
			t.Fatalf("decoded packet claims %d wire bytes from a %d-byte frame", p.WireSize(fld), len(frame))
		}
		// A frame the decoder calls traced must carry a usable context.
		if len(frame) > 0 && frame[0] == 4 && !tc.Traced() {
			t.Fatalf("traced frame accepted with zero trace id")
		}
		again := EncodeDataTraced(fld, thread, stamp, tc, p)
		thread2, stamp2, tc2, p2, err := DecodeDataTraced(fld, again)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if thread2 != thread {
			t.Fatalf("thread changed across round trip: %d -> %d", thread, thread2)
		}
		// Traced frames carry the stamp verbatim; otherwise a non-positive
		// stamp encodes as the unstamped variant.
		wantStamp := stamp
		if !tc.Traced() && wantStamp <= 0 {
			wantStamp = 0
		}
		if stamp2 != wantStamp {
			t.Fatalf("stamp changed across round trip: %d -> %d", stamp, stamp2)
		}
		if tc2 != tc {
			t.Fatalf("trace context changed across round trip: %+v -> %+v", tc, tc2)
		}
		if p2.Gen != p.Gen || !equalCoeff(p2.Coeff, p.Coeff) || !bytes.Equal(p2.Payload, p.Payload) {
			t.Fatalf("packet changed across round trip:\n%+v\n%+v", p, p2)
		}
	})
}

func equalCoeff(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeKeepalive covers the third frame kind; it must never panic
// and must round-trip the thread index for every frame it accepts. The
// echo extension decoder must accept exactly the same frames and agree on
// the thread, round-tripping the timestamp pair through the echo encoder.
func FuzzDecodeKeepalive(f *testing.F) {
	f.Add(EncodeKeepalive(0))
	f.Add(EncodeKeepalive(65535))
	f.Add([]byte{2})
	f.Add(EncodeKeepaliveEcho(3, 123456789, 0, 0))              // probe
	f.Add(EncodeKeepaliveEcho(3, 0, 123456789, 42))             // echo
	f.Add(append(EncodeKeepalive(1), 0xde, 0xad))               // trailing bytes: tolerated
	f.Add(append(EncodeKeepaliveEcho(1, 1, 0, 0), 0xbe))        // over-long echo: tolerated
	f.Add(EncodeKeepaliveEcho(9, 1, 0, 0)[:keepaliveEchoLen-1]) // truncated extension
	f.Fuzz(func(t *testing.T, frame []byte) {
		thread, err := DecodeKeepalive(frame)
		if err != nil {
			if _, err2 := DecodeKeepaliveEcho(frame); err2 == nil {
				t.Fatalf("echo decoder accepted a frame DecodeKeepalive rejects")
			}
			return
		}
		if got, err := DecodeKeepalive(EncodeKeepalive(thread)); err != nil || got != thread {
			t.Fatalf("keepalive round trip: thread %d -> %d, err %v", thread, got, err)
		}
		ki, err := DecodeKeepaliveEcho(frame)
		if err != nil {
			t.Fatalf("echo decoder rejected a frame DecodeKeepalive accepts: %v", err)
		}
		if ki.Thread != thread {
			t.Fatalf("decoders disagree on thread: %d vs %d", thread, ki.Thread)
		}
		again := EncodeKeepaliveEcho(ki.Thread, ki.TxNanos, ki.EchoNanos, ki.HoldNanos)
		ki2, err := DecodeKeepaliveEcho(again)
		if err != nil || ki2 != ki {
			t.Fatalf("echo round trip: %+v -> %+v, err %v", ki, ki2, err)
		}
	})
}

// TestControlRoundTripAllTypes pins the non-fuzz property directly: every
// concrete control message encodes, decodes, and unmarshals back to an
// identical value.
func TestControlRoundTripAllTypes(t *testing.T) {
	t.Parallel()
	check := func(typ MsgType, in, out interface{}) {
		t.Helper()
		frame, err := EncodeControl(typ, in)
		if err != nil {
			t.Fatalf("encode %d: %v", typ, err)
		}
		gotType, payload, err := DecodeControl(frame)
		if err != nil {
			t.Fatalf("decode %d: %v", typ, err)
		}
		if gotType != typ {
			t.Fatalf("type %d decoded as %d", typ, gotType)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("unmarshal %d: %v", typ, err)
		}
		inJSON, _ := json.Marshal(in)
		outJSON, _ := json.Marshal(out)
		if !bytes.Equal(inJSON, outJSON) {
			t.Fatalf("type %d round trip: %s -> %s", typ, inJSON, outJSON)
		}
	}
	check(MsgHello, &Hello{Addr: "n1", Degree: 2}, &Hello{})
	check(MsgWelcome, &Welcome{ID: 1, K: 8, Degree: 2, Threads: []int{0, 7},
		Session:     SessionParams{FieldBits: 16, GenSize: 32, PacketSize: 1024, ContentLen: 1 << 16, LayerSizes: []int{4096, 60928}},
		LeaseMillis: 500, StatsMillis: 1000}, &Welcome{})
	check(MsgGoodbye, &Goodbye{ID: 4}, &Goodbye{})
	check(MsgComplaint, &Complaint{ID: 4, Thread: 3, ParentAddr: "p"}, &Complaint{})
	check(MsgRedirect, &Redirect{Thread: 3, ChildAddr: "c"}, &Redirect{})
	check(MsgStatsReport, &StatsReport{ID: 2, Rank: 5, MaxRank: 10, GenRanks: []int{5},
		GensDone: 0, TotalGens: 2, Received: 9, Innovative: 5, Redundant: 4,
		DelayP50Nanos: 10, DelayP90Nanos: 20, DelayP99Nanos: 30, OverheadPermille: 1100}, &StatsReport{})
}

// TestDataRoundTripTraced pins the traced frame variant across the three
// fields: the context survives exactly (including hop saturation values
// and a zero stamp, which the traced variant carries verbatim), and the
// two malformed shapes — truncated context, zero trace ID — are rejected
// as errors rather than mis-routed to another variant.
func TestDataRoundTripTraced(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		p := &rlnc.Packet{Gen: 7, Coeff: []uint16{1, 0, 1, 1}, Payload: []byte("traced-payload")}
		for _, tc := range []TraceContext{
			{ID: 1, Hop: 1},
			{ID: ^uint64(0), Hop: 255},
			{ID: 0xdeadbeefcafe, Hop: 0},
		} {
			for _, stamp := range []int64{0, 42} {
				frame := EncodeDataTraced(fld, 3, stamp, tc, p)
				thread, gotStamp, gotTC, q, err := DecodeDataTraced(fld, frame)
				if err != nil {
					t.Fatalf("field %d tc=%+v stamp=%d: %v", fld.Bits(), tc, stamp, err)
				}
				if thread != 3 || gotStamp != stamp || gotTC != tc {
					t.Fatalf("field %d: got thread=%d stamp=%d tc=%+v, want 3/%d/%+v",
						fld.Bits(), thread, gotStamp, gotTC, stamp, tc)
				}
				if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("field %d tc=%+v: packet mismatch", fld.Bits(), tc)
				}
				// The plain decoder must accept the traced frame too,
				// dropping only the context.
				thread, gotStamp, q2, err := DecodeData(fld, frame)
				if err != nil || thread != 3 || gotStamp != stamp || q2.Gen != p.Gen {
					t.Fatalf("field %d: DecodeData on traced frame: %v", fld.Bits(), err)
				}
			}
		}
		// An untraced context must produce the exact legacy encoding.
		for _, stamp := range []int64{0, 99} {
			traced := EncodeDataTraced(fld, 3, stamp, TraceContext{}, p)
			plain := EncodeData(fld, 3, stamp, p)
			if !bytes.Equal(traced, plain) {
				t.Fatalf("field %d stamp=%d: untraced encoding diverged from legacy", fld.Bits(), stamp)
			}
		}
		// Malformed traced frames: truncated context and zero trace ID.
		if _, _, _, _, err := DecodeDataTraced(fld, []byte{4, 0, 3, 1, 2}); err == nil {
			t.Fatalf("field %d: truncated traced frame accepted", fld.Bits())
		}
		zero := append([]byte{4, 0, 3}, make([]byte, 17)...)
		zero = p.AppendTo(zero, fld)
		if _, _, _, _, err := DecodeDataTraced(fld, zero); err == nil {
			t.Fatalf("field %d: zero-trace-id frame accepted", fld.Bits())
		}
	}
}

// TestTracedHotPathAllocs is the tracing-overhead guard: with sampling
// off (a zero TraceContext), the pooled emit and receive paths must not
// allocate at all — enabling the tracing code paths costs nothing unless
// a generation is actually sampled.
func TestTracedHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on instrumented paths")
	}
	fld := gf.F256
	src := &rlnc.Packet{Gen: 1, Coeff: []uint16{3, 1, 4, 1}, Payload: make([]byte, 256)}
	frame := EncodeDataTraced(fld, 2, 12345, TraceContext{}, src)
	hot := func() {
		buf := rlnc.GetFrameBuf()
		*buf = AppendDataTraced(*buf, fld, 2, 12345, TraceContext{}, src)
		_, _, _, p, err := DecodeDataTraced(fld, frame)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
		rlnc.PutFrameBuf(buf)
	}
	// Warm the pools outside the measured runs.
	for i := 0; i < 16; i++ {
		hot()
	}
	if allocs := testing.AllocsPerRun(200, hot); allocs != 0 {
		t.Fatalf("untraced hot path allocates %.1f objects per emit+receive, want 0", allocs)
	}
}

// TestDataRoundTripSeq pins the seq-stamped variant across the three
// fields and all three kind combinations (plain, stamped, traced): the
// sequence number survives exactly, including the wrap-point extremes, and
// seq < 0 delegates to the legacy encoder byte for byte.
func TestDataRoundTripSeq(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		p := &rlnc.Packet{Gen: 7, Coeff: []uint16{1, 0, 1, 1}, Payload: []byte("seq-payload")}
		for _, seq := range []int32{0, 1, 1 << 12, SeqMod - 1} {
			for _, stamp := range []int64{0, 42} {
				for _, tc := range []TraceContext{{}, {ID: 0xabc, Hop: 3}} {
					frame := EncodeDataSeq(fld, 5, seq, stamp, tc, p)
					th, gotSeq, gotStamp, gotTC, q, err := DecodeDataSeq(fld, frame)
					if err != nil {
						t.Fatalf("field %d seq=%d stamp=%d tc=%+v: %v", fld.Bits(), seq, stamp, tc, err)
					}
					if th != 5 || gotSeq != seq || gotStamp != stamp || gotTC != tc {
						t.Fatalf("field %d: got th=%d seq=%d stamp=%d tc=%+v, want 5/%d/%d/%+v",
							fld.Bits(), th, gotSeq, gotStamp, gotTC, seq, stamp, tc)
					}
					if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
						t.Fatalf("field %d seq=%d: packet mismatch", fld.Bits(), seq)
					}
					// The legacy decoders must accept the stamped frame too,
					// dropping only the seq.
					th2, stamp2, tc2, _, err := DecodeDataTraced(fld, frame)
					if err != nil || th2 != 5 || stamp2 != stamp || tc2 != tc {
						t.Fatalf("field %d: DecodeDataTraced on seq frame: th=%d stamp=%d tc=%+v err=%v",
							fld.Bits(), th2, stamp2, tc2, err)
					}
				}
			}
		}
		// seq < 0 must produce the exact legacy encoding — the flag bit
		// stays clear and not one byte differs.
		for _, tc := range []TraceContext{{}, {ID: 9, Hop: 1}} {
			for _, stamp := range []int64{0, 99} {
				legacy := EncodeDataTraced(fld, 5, stamp, tc, p)
				seqless := EncodeDataSeq(fld, 5, -1, stamp, tc, p)
				if !bytes.Equal(legacy, seqless) {
					t.Fatalf("field %d stamp=%d tc=%+v: seq<0 encoding diverged from legacy", fld.Bits(), stamp, tc)
				}
				if legacy[1]&0x80 != 0 {
					t.Fatalf("field %d: legacy frame has the seq flag set", fld.Bits())
				}
			}
		}
		// A seq-flagged frame whose body ends before the 3 seq bytes is
		// malformed, not mis-read as an unstamped frame.
		if _, _, _, _, _, err := DecodeDataSeq(fld, []byte{0, 0x80, 5, 1, 2}); err == nil {
			t.Fatalf("field %d: truncated seq frame accepted", fld.Bits())
		}
	}
}

// TestDataFrameGoldenLayout pins the exact byte layout of every data-frame
// header variant. These bytes are the wire protocol: a mixed-version fleet
// only works if they never shift.
func TestDataFrameGoldenLayout(t *testing.T) {
	t.Parallel()
	fld := gf.F256
	p := &rlnc.Packet{Gen: 3, Coeff: []uint16{1, 2, 3}, Payload: []byte("hi")}
	body := p.AppendTo(nil, fld)

	stamp8 := make([]byte, 8)
	binary.BigEndian.PutUint64(stamp8, 99)
	id8 := make([]byte, 8)
	binary.BigEndian.PutUint64(id8, 0xabc)

	join := func(parts ...[]byte) []byte {
		var out []byte
		for _, part := range parts {
			out = append(out, part...)
		}
		return out
	}
	cases := []struct {
		name  string
		frame []byte
		want  []byte
	}{
		{"plain", EncodeData(fld, 9, 0, p), join([]byte{0, 0, 9}, body)},
		{"stamped", EncodeData(fld, 9, 99, p), join([]byte{3, 0, 9}, stamp8, body)},
		{"traced", EncodeDataTraced(fld, 9, 99, TraceContext{ID: 0xabc, Hop: 2}, p),
			join([]byte{4, 0, 9}, stamp8, id8, []byte{2}, body)},
		{"seq-plain", EncodeDataSeq(fld, 9, 0x010203, 0, TraceContext{}, p),
			join([]byte{0, 0x80, 9, 1, 2, 3}, body)},
		{"seq-stamped", EncodeDataSeq(fld, 9, 0x010203, 99, TraceContext{}, p),
			join([]byte{3, 0x80, 9, 1, 2, 3}, stamp8, body)},
		{"seq-traced", EncodeDataSeq(fld, 9, 0x010203, 99, TraceContext{ID: 0xabc, Hop: 2}, p),
			join([]byte{4, 0x80, 9, 1, 2, 3}, stamp8, id8, []byte{2}, body)},
		{"keepalive", EncodeKeepalive(0x1234), []byte{2, 0x12, 0x34}},
		{"keepalive-echo", EncodeKeepaliveEcho(0x1234, 99, 0, 0),
			join([]byte{2, 0x12, 0x34}, stamp8, make([]byte, 16))},
	}
	for _, c := range cases {
		if !bytes.Equal(c.frame, c.want) {
			t.Errorf("%s layout:\n got %x\nwant %x", c.name, c.frame, c.want)
		}
	}
}

// TestKeepaliveMixedVersions is the version-skew regression: an old node's
// 3-byte keepalive and a new node's 27-byte echo keepalive must each be
// accepted by the other side's decoder. Before this fix DecodeKeepalive
// hard-failed on any frame != 3 bytes, so one extended keepalive from an
// upgraded peer silently killed the link's liveness signal.
func TestKeepaliveMixedVersions(t *testing.T) {
	t.Parallel()
	// New → old: the legacy decoder reads the thread and ignores the
	// trailing timestamps.
	probe := EncodeKeepaliveEcho(7, 123456789, 0, 0)
	if th, err := DecodeKeepalive(probe); err != nil || th != 7 {
		t.Fatalf("legacy decode of echo keepalive: th=%d err=%v", th, err)
	}
	// Old → new: the echo decoder reads a legacy frame as
	// timestamp-free — neither a probe nor an echo, so no RTT math runs.
	ki, err := DecodeKeepaliveEcho(EncodeKeepalive(7))
	if err != nil || ki.Thread != 7 || ki.IsProbe() || ki.IsEcho() {
		t.Fatalf("echo decode of legacy keepalive: %+v err=%v", ki, err)
	}
	// Future extensions: trailing bytes beyond either layout are ignored.
	long := append(EncodeKeepaliveEcho(7, 1, 2, 3), 0xff, 0xee)
	if th, err := DecodeKeepalive(long); err != nil || th != 7 {
		t.Fatalf("legacy decode of over-long keepalive: th=%d err=%v", th, err)
	}
	if ki, err := DecodeKeepaliveEcho(long); err != nil || ki.TxNanos != 1 || ki.EchoNanos != 2 || ki.HoldNanos != 3 {
		t.Fatalf("echo decode of over-long keepalive: %+v err=%v", ki, err)
	}
	// Truncated frames are still malformed.
	if _, err := DecodeKeepalive([]byte{2, 0}); err == nil {
		t.Fatal("2-byte keepalive accepted")
	}
	// Probe/echo classification.
	if ki, _ := DecodeKeepaliveEcho(probe); !ki.IsProbe() || ki.IsEcho() {
		t.Fatalf("probe misclassified: %+v", ki)
	}
	echo := EncodeKeepaliveEcho(7, 0, 123456789, 42)
	if ki, _ := DecodeKeepaliveEcho(echo); ki.IsProbe() || !ki.IsEcho() {
		t.Fatalf("echo misclassified: %+v", ki)
	}
}

// TestLinkHotPathAllocs is the link-telemetry overhead guard: the full
// per-frame accounting path — pooled seq-stamped emit, decode, sequence
// ledger, innovation verdict — must not allocate in the steady state, or
// enabling telemetry would tax every datagram.
func TestLinkHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector allocates on instrumented paths")
	}
	fld := gf.F256
	links := obs.NewLinkTracker(0)
	src := &rlnc.Packet{Gen: 1, Coeff: []uint16{3, 1, 4, 1}, Payload: make([]byte, 256)}
	seq := int32(0)
	hot := func() {
		buf := rlnc.GetFrameBuf()
		*buf = AppendDataSeq(*buf, fld, 2, seq, 12345, TraceContext{}, src)
		th, gotSeq, _, _, p, err := DecodeDataSeq(fld, *buf)
		if err != nil {
			t.Fatal(err)
		}
		links.ObserveFrame("parent", th, gotSeq, len(*buf), 12345)
		links.ObservePacket("parent", true)
		p.Release()
		rlnc.PutFrameBuf(buf)
		seq = (seq + 1) % SeqMod
	}
	// Warm the pools and the per-peer ledger outside the measured runs.
	for i := 0; i < 16; i++ {
		hot()
	}
	if allocs := testing.AllocsPerRun(200, hot); allocs != 0 {
		t.Fatalf("link-accounting hot path allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestDataRoundTripAllFields pins the binary codec across the three
// fields and both frame variants, including the GF(2) bit-packing edges
// (coefficient counts straddling byte boundaries).
func TestDataRoundTripAllFields(t *testing.T) {
	t.Parallel()
	for _, fld := range []gf.Field{gf.F2, gf.F256, gf.F65536} {
		max := uint16(1)
		if fld.Bits() == 8 {
			max = 255
		} else if fld.Bits() == 16 {
			max = 65535
		}
		for _, n := range []int{1, 7, 8, 9, 16, 33} {
			coeff := make([]uint16, n)
			for i := range coeff {
				coeff[i] = uint16(i*31+1) & max
			}
			p := &rlnc.Packet{Gen: uint32(n), Coeff: coeff, Payload: []byte("payload-bytes")}
			for _, stamp := range []int64{0, 42} {
				frame := EncodeData(fld, n, stamp, p)
				thread, gotStamp, q, err := DecodeData(fld, frame)
				if err != nil {
					t.Fatalf("field %d n=%d stamp=%d: %v", fld.Bits(), n, stamp, err)
				}
				if thread != n || gotStamp != stamp {
					t.Fatalf("field %d n=%d: thread/stamp %d/%d", fld.Bits(), n, thread, gotStamp)
				}
				if q.Gen != p.Gen || !equalCoeff(q.Coeff, p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("field %d n=%d: packet mismatch", fld.Bits(), n)
				}
			}
		}
	}
}
