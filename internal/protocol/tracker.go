package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ncast/internal/core"
	"ncast/internal/obs"
	"ncast/internal/transport"
)

// TrackerConfig parameterises the central authority.
type TrackerConfig struct {
	// K is the number of server threads; D the default node degree.
	K, D int
	// Session carries the coding parameters announced to nodes.
	Session SessionParams
	// InsertMode selects §3 append or §5 random row insertion.
	InsertMode core.InsertMode
	// Seed drives the curtain's randomness.
	Seed int64
	// LeaseTimeout, when positive, enables tracker-side liveness leases:
	// a node silent for longer than this is presumed crashed and spliced
	// out via the §3 Fail+Repair path. This closes the failure-detection
	// gap the complaint protocol leaves open — a crashed bottom clip has
	// no children, so nobody ever complains about it and its row would
	// dangle in M forever. Nodes are told (via Welcome.LeaseMillis) to
	// renew at a quarter of this timeout, and any control message also
	// renews, so only a truly silent node expires. Zero disables the sweep.
	LeaseTimeout time.Duration
	// SendDeadline bounds each control-plane send attempt to one peer
	// (write deadline on stream transports, queue wait on the in-memory
	// fabric). Zero means the 2-second default.
	SendDeadline time.Duration
	// OutboxDepth bounds each per-peer control outbox (zero means the
	// default 64). Outboxes are keyed by transport.PeerKey, so a swarm
	// endpoint multiplexing thousands of virtual nodes shares one outbox;
	// flash-crowd welcomes funnel through it and need a deeper queue than
	// the one-node-per-address default.
	OutboxDepth int
	// StatsInterval, when positive, asks every node (via Welcome.StatsMillis)
	// to send one MsgStatsReport per interval; the tracker aggregates the
	// reports into the ClusterSnapshot fleet view. Zero disables telemetry
	// reporting entirely — no node sends reports, ClusterSnapshot stays
	// membership-only.
	StatsInterval time.Duration
	// Obs, when non-nil, instruments the tracker: control-plane counters,
	// the overlay gauges, and the trace ring.
	Obs *obs.TrackerMetrics
	// TraceObs, when non-nil, feeds the dissemination-tracing histograms
	// (hop depth, per-hop latency, innovation ratio) as hop reports arrive.
	// Independent of Obs because the trace family is tracker-wide while
	// TrackerMetrics carries the per-tracker control-plane series.
	TraceObs *obs.TraceMetrics
	// LinkObs, when non-nil, feeds the ncast_link_* histogram family (loss,
	// RTT, jitter, innovation ratio, goodput) as link scorecards arrive on
	// stats reports.
	LinkObs *obs.LinkMetrics
}

// Tracker is the §3 "server (or some other centralized authority)": it
// owns the matrix M and performs the hello, good-bye, and repair
// procedures, issuing stream redirections to the affected nodes and to the
// data source.
type Tracker struct {
	ep     transport.Endpoint
	cfg    TrackerConfig
	source *Source

	mu        sync.Mutex
	curtain   *core.Curtain
	addrOf    map[core.NodeID]string
	idOf      map[string]core.NodeID
	completed map[core.NodeID]bool
	lastSeen  map[core.NodeID]time.Time
	reports   map[core.NodeID]nodeReport
	genIDs    []uint32 // canonical generation order (sessionGenIDs)
	events    chan TrackerEvent
	// traces assembles hop reports into dissemination trees; it locks
	// itself, so ingest and snapshot run outside t.mu.
	traces *obs.TraceCollector
	// links aggregates per-peer scorecards into the fleet link matrix; like
	// traces it locks itself, so ingest and snapshot run outside t.mu.
	links *obs.LinkCollector

	// outMu guards the per-peer control outboxes (see sendControl).
	outMu    sync.Mutex
	outboxes map[string]chan outMsg
}

// outMsg is one queued control frame with its full destination address;
// outboxes are keyed by transport.PeerKey, so one worker may serve many
// virtual destinations behind the same transport peer.
type outMsg struct {
	to    string
	frame []byte
}

// nodeReport is one node's latest telemetry report and when it arrived.
type nodeReport struct {
	report StatsReport
	at     time.Time
}

// TrackerEvent reports membership and completion changes for observers.
type TrackerEvent struct {
	Kind string // "join", "leave", "repair", "complete"
	ID   core.NodeID
	Addr string
}

// NewTracker builds a tracker bound to ep. The source, when non-nil, is
// notified of redirections on server-owned threads (it shares ep).
func NewTracker(ep transport.Endpoint, source *Source, cfg TrackerConfig) (*Tracker, error) {
	mode := cfg.InsertMode
	if mode == 0 {
		mode = core.InsertAppend
	}
	curtain, err := core.New(cfg.K, cfg.D, rand.New(rand.NewSource(cfg.Seed)), core.WithInsertMode(mode))
	if err != nil {
		return nil, err
	}
	params, err := cfg.Session.Params()
	if err != nil {
		return nil, err
	}
	genIDs, err := sessionGenIDs(cfg.Session, params)
	if err != nil {
		return nil, err
	}
	return &Tracker{
		ep:        ep,
		cfg:       cfg,
		source:    source,
		curtain:   curtain,
		addrOf:    make(map[core.NodeID]string),
		idOf:      make(map[string]core.NodeID),
		completed: make(map[core.NodeID]bool),
		lastSeen:  make(map[core.NodeID]time.Time),
		reports:   make(map[core.NodeID]nodeReport),
		genIDs:    genIDs,
		traces:    obs.NewTraceCollector(0, cfg.TraceObs),
		links:     obs.NewLinkCollector(0, cfg.LinkObs),
		outboxes:  make(map[string]chan outMsg),
		events:    make(chan TrackerEvent, 1024),
	}, nil
}

// Events exposes the tracker's event stream.
//
// Drop/buffer policy: the channel is buffered (capacity 1024) and the
// tracker never blocks on it — when the buffer is full because the
// consumer is slow or absent, new events are silently dropped so the
// control plane keeps running. Consumers needing a lossless record
// should instead read the trace ring via TrackerConfig.Obs, which
// overwrites oldest-first rather than dropping newest.
func (t *Tracker) Events() <-chan TrackerEvent { return t.events }

// NumNodes returns the current overlay population.
func (t *Tracker) NumNodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.curtain.NumNodes()
}

// CompletedCount returns how many nodes reported full decode.
func (t *Tracker) CompletedCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.completed)
}

// CheckInvariants verifies the curtain's §3 structural invariants plus
// the tracker's own bookkeeping (addr and id maps are mutual inverses and
// cover exactly the live rows). It is O(N·d) and intended for tests and
// debug assertions.
func (t *Tracker) CheckInvariants() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.curtain.CheckInvariants(); err != nil {
		return err
	}
	if len(t.addrOf) != t.curtain.NumNodes() || len(t.idOf) != t.curtain.NumNodes() {
		return fmt.Errorf("protocol: addr maps track %d/%d nodes, curtain has %d",
			len(t.addrOf), len(t.idOf), t.curtain.NumNodes())
	}
	for id, addr := range t.addrOf {
		if !t.curtain.Contains(id) {
			return fmt.Errorf("protocol: addr map holds departed node %d", id)
		}
		if back, ok := t.idOf[addr]; !ok || back != id {
			return fmt.Errorf("protocol: addr maps disagree for node %d (%q -> %d)", id, addr, back)
		}
	}
	for id := range t.completed {
		if !t.curtain.Contains(id) {
			return fmt.Errorf("protocol: completed entry for departed node %d", id)
		}
	}
	for id := range t.lastSeen {
		if !t.curtain.Contains(id) {
			return fmt.Errorf("protocol: lease entry for departed node %d", id)
		}
	}
	return nil
}

// admissionBatchMax bounds how many hellos one matrix transaction admits.
// A flash crowd beyond the cap is simply split into consecutive batches.
const admissionBatchMax = 256

// pendingHello is one queued admission awaiting the next batch flush.
type pendingHello struct {
	from string
	h    Hello
}

// inFrame is one received frame handed from the recv goroutine to the
// dispatch loop.
type inFrame struct {
	from  string
	frame []byte
}

// Run processes control messages until the context is cancelled or the
// endpoint closes. It always returns a non-nil error explaining why.
//
// Hellos are admitted in batches: a burst of pending hellos that arrived
// while the tracker was busy is coalesced into one matrix transaction
// (one lock hold, one gauge refresh) instead of paying per-message
// locking. Per-hello semantics are unchanged — each hello still gets its
// own Welcome, redirects and join event, in arrival order — and any
// non-hello message flushes the queue first, so it observes exactly the
// matrix it would have under one-at-a-time dispatch.
func (t *Tracker) Run(ctx context.Context) error {
	if t.cfg.LeaseTimeout > 0 {
		go t.sweepLoop(ctx)
	}
	frames := make(chan inFrame, admissionBatchMax)
	recvErr := make(chan error, 1)
	go func() {
		for {
			from, frame, err := t.ep.Recv(ctx)
			if err != nil {
				recvErr <- err
				return
			}
			select {
			case frames <- inFrame{from: from, frame: frame}:
			case <-ctx.Done():
				recvErr <- ctx.Err()
				return
			}
		}
	}()
	var pending []pendingHello
	for {
		var f inFrame
		select {
		case err := <-recvErr:
			return fmt.Errorf("protocol: tracker recv: %w", err)
		case f = <-frames:
		}
		pending = t.ingest(ctx, f.from, f.frame, pending)
		// Coalesce whatever else already arrived, so a hello burst becomes
		// one matrix transaction per dispatch round.
	drain:
		for len(pending) < admissionBatchMax {
			select {
			case f = <-frames:
				pending = t.ingest(ctx, f.from, f.frame, pending)
			default:
				break drain
			}
		}
		pending = t.flushHellos(ctx, pending)
		t.refreshGauges()
	}
}

// ingest routes one raw frame: hellos are queued for the next batch
// flush; anything else flushes the queue and dispatches immediately so
// message effects stay in arrival order.
func (t *Tracker) ingest(ctx context.Context, from string, frame []byte, pending []pendingHello) []pendingHello {
	if IsData(frame) {
		return pending // trackers do not carry data
	}
	if IsKeepalive(frame) {
		// A probe keepalive aimed at the server means the prober's parent
		// on that thread is the source itself; echo it back so children of
		// server-owned threads measure RTT over the data path too.
		t.echoProbe(ctx, from, frame)
		return pending
	}
	typ, payload, err := DecodeControl(frame)
	if err != nil {
		return pending // malformed frame: ignore, stay up
	}
	// Any control message proves the sender is alive; the dedicated
	// MsgLease only matters for nodes with nothing else to say.
	t.touchLease(from)
	if typ == MsgHello {
		var h Hello
		if err := json.Unmarshal(payload, &h); err != nil {
			return pending
		}
		return append(pending, pendingHello{from: from, h: h})
	}
	pending = t.flushHellos(ctx, pending)
	t.dispatch(ctx, from, typ, payload)
	return pending
}

func (t *Tracker) dispatch(ctx context.Context, from string, typ MsgType, payload json.RawMessage) {
	switch typ {
	case MsgGoodbye:
		var g Goodbye
		if err := json.Unmarshal(payload, &g); err != nil {
			return
		}
		t.handleGoodbye(ctx, from, g)
	case MsgComplaint:
		var c Complaint
		if err := json.Unmarshal(payload, &c); err != nil {
			return
		}
		t.handleComplaint(ctx, c)
	case MsgComplete:
		var c Complete
		if err := json.Unmarshal(payload, &c); err != nil {
			return
		}
		t.handleComplete(c)
	case MsgCongested:
		var c Congested
		if err := json.Unmarshal(payload, &c); err != nil {
			return
		}
		t.handleCongested(ctx, c)
	case MsgUncongested:
		var u Uncongested
		if err := json.Unmarshal(payload, &u); err != nil {
			return
		}
		t.handleUncongested(ctx, u)
	case MsgLease:
		var l Lease
		if err := json.Unmarshal(payload, &l); err != nil {
			return
		}
		t.handleLease(ctx, from, l)
	case MsgStatsReport:
		var r StatsReport
		if err := json.Unmarshal(payload, &r); err != nil {
			return
		}
		t.handleStatsReport(r)
	default:
		// Unknown control types are ignored for forward compatibility.
	}
}

// refreshGauges re-exports the overlay gauges (rows of M, empty threads,
// completions) after a control message may have changed them.
func (t *Tracker) refreshGauges() {
	m := t.cfg.Obs
	if m == nil {
		return
	}
	t.mu.Lock()
	nodes := t.curtain.NumNodes()
	empty := 0
	for _, id := range t.curtain.HangingThreads() {
		if id == core.ServerID {
			empty++
		}
	}
	completed := len(t.completed)
	t.mu.Unlock()
	m.Nodes.Set(int64(nodes))
	m.EmptyThreads.Set(int64(empty))
	m.Completed.Set(int64(completed))
}

// Health reports the live matrix-M invariants: population, failure tags,
// per-degree row counts, and threads with no clips.
func (t *Tracker) Health() obs.OverlayHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := obs.OverlayHealth{
		K:             t.cfg.K,
		DefaultDegree: t.cfg.D,
		Nodes:         t.curtain.NumNodes(),
		Failed:        t.curtain.NumFailed(),
		Completed:     len(t.completed),
		DegreeDist:    make(map[int]int),
	}
	for _, id := range t.curtain.Nodes() {
		if d, err := t.curtain.Degree(id); err == nil {
			h.DegreeDist[d]++
		}
	}
	for _, id := range t.curtain.HangingThreads() {
		if id == core.ServerID {
			h.EmptyThreads++
		}
	}
	return h
}

// ClusterSnapshot aggregates every node's latest telemetry report into the
// fleet-wide view served at /debug/cluster: per-node freshness, the
// per-generation decode census with straggler detection, the slowest
// decoder, and fleet-wide decode-delay quantiles.
func (t *Tracker) ClusterSnapshot() obs.ClusterSnapshot {
	overlay := t.Health()
	now := time.Now()
	snap := obs.ClusterSnapshot{At: now, Overlay: &overlay}
	// Staleness horizon: a healthy node reports every interval, so three
	// missed intervals means its report can no longer be trusted to
	// describe the present (the node may be gone, wedged, or partitioned).
	staleAfter := 3 * t.cfg.StatsInterval
	snap.StaleAfterMillis = staleAfter.Milliseconds()

	t.mu.Lock()
	ids := make([]core.NodeID, 0, len(t.reports))
	for id := range t.reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type row struct {
		nr   nodeReport
		addr string
	}
	rows := make([]row, 0, len(ids))
	for _, id := range ids {
		rows = append(rows, row{nr: t.reports[id], addr: t.addrOf[id]})
	}
	genIDs := t.genIDs
	t.mu.Unlock()

	var medians []float64
	for _, r := range rows {
		rep := r.nr.report
		age := now.Sub(r.nr.at)
		n := obs.ClusterNode{
			ID:               rep.ID,
			Addr:             r.addr,
			AgeMillis:        age.Milliseconds(),
			Fresh:            staleAfter <= 0 || age <= staleAfter,
			Rank:             rep.Rank,
			MaxRank:          rep.MaxRank,
			GensDone:         rep.GensDone,
			TotalGens:        rep.TotalGens,
			Complete:         rep.Complete,
			GenRanks:         rep.GenRanks,
			Received:         rep.Received,
			Innovative:       rep.Innovative,
			Redundant:        rep.Redundant,
			Complaints:       rep.Complaints,
			LeaseRenewals:    rep.LeaseRenewals,
			QueueDepth:       rep.QueueDepth,
			DelayP50Nanos:    rep.DelayP50Nanos,
			DelayP90Nanos:    rep.DelayP90Nanos,
			DelayP99Nanos:    rep.DelayP99Nanos,
			OverheadPermille: rep.OverheadPermille,
		}
		if n.MaxRank > 0 {
			n.Progress = float64(n.Rank) / float64(n.MaxRank)
		}
		snap.Nodes = append(snap.Nodes, n)
		if n.Fresh && n.DelayP50Nanos > 0 {
			medians = append(medians, float64(n.DelayP50Nanos))
			if snap.SlowestID == 0 || n.DelayP50Nanos > snap.Node(snap.SlowestID).DelayP50Nanos {
				snap.SlowestID = n.ID
			}
		}
	}
	// Fleet quantiles over per-node medians: the raw per-generation samples
	// stay node-local, so this is a quantile-of-medians approximation.
	if len(medians) > 0 {
		snap.FleetDelayP50Nanos = int64(obs.Quantile(medians, 0.50))
		snap.FleetDelayP90Nanos = int64(obs.Quantile(medians, 0.90))
		snap.FleetDelayP99Nanos = int64(obs.Quantile(medians, 0.99))
	}
	snap.Trace = t.traces.Summary()
	snap.Links = t.links.Summary(staleAfter, t.addrIDs())
	// Per-generation census over fresh reporters whose rank vector covers
	// the session's generation list. Stragglers are named only once a
	// majority of reporters decoded the generation — before that the
	// generation is simply still in flight for everyone.
	need := t.cfg.Session.GenSize
	for gi, gen := range genIDs {
		gh := obs.GenerationHealth{Index: gi, Gen: gen}
		var behind []uint64
		for i := range snap.Nodes {
			n := &snap.Nodes[i]
			if !n.Fresh || gi >= len(n.GenRanks) {
				continue
			}
			gh.Reporting++
			if n.GenRanks[gi] >= need {
				gh.Decoded++
			} else {
				behind = append(behind, n.ID)
			}
		}
		if gh.Reporting > 0 && gh.Decoded*2 > gh.Reporting {
			gh.StragglerIDs = behind
		}
		if gh.Reporting > 0 {
			snap.Generations = append(snap.Generations, gh)
		}
	}
	return snap
}

// Outbox policy. Each transport peer (transport.PeerKey of the
// destination, so every virtual node multiplexed behind one swarm
// endpoint shares a worker) gets a serial worker goroutine: per-peer
// message order is preserved while one stalled peer can never delay
// another (or the dispatch loop). The queue is bounded and enqueueing
// never blocks: when a peer's outbox is full the newest message is
// dropped, which every control flow tolerates — children re-complain,
// leavers re-send good-byes, joiners re-hello, leases renew.
const (
	outboxDepth    = 64
	outboxAttempts = 3
	outboxBackoff  = 25 * time.Millisecond
	// outboxIdle is how long a worker with an empty queue lingers before
	// retiring, so churned-away peers do not leak goroutines forever.
	outboxIdle = 30 * time.Second
)

// sendDeadline bounds one send attempt to one peer.
func (t *Tracker) sendDeadline() time.Duration {
	if t.cfg.SendDeadline > 0 {
		return t.cfg.SendDeadline
	}
	return 2 * time.Second
}

// outboxCap returns the per-peer outbox depth.
func (t *Tracker) outboxCap() int {
	if t.cfg.OutboxDepth > 0 {
		return t.cfg.OutboxDepth
	}
	return outboxDepth
}

// sendControl marshals and enqueues a control message on the destination
// peer's outbox (keyed by transport.PeerKey, so every virtual sub-address
// behind one transport peer shares a worker and its ordering). It never
// blocks: a peer with a clogged TCP buffer stalls only its own worker,
// for at most outboxAttempts * (sendDeadline + backoff).
func (t *Tracker) sendControl(ctx context.Context, to string, typ MsgType, payload interface{}) {
	frame, err := EncodeControl(typ, payload)
	if err != nil {
		return
	}
	key := transport.PeerKey(to)
	t.outMu.Lock()
	defer t.outMu.Unlock()
	ch, ok := t.outboxes[key]
	if !ok {
		ch = make(chan outMsg, t.outboxCap())
		t.outboxes[key] = ch
		go t.outboxLoop(ctx, key, ch)
	}
	select {
	case ch <- outMsg{to: to, frame: frame}:
	default:
		// Full outbox: drop the newest rather than block dispatch.
		if m := t.cfg.Obs; m != nil {
			m.OutboxDrops.Inc()
		}
	}
}

// outboxLoop drains one peer's control queue, bounding each attempt with
// the send deadline and retrying transient errors with exponential
// backoff. It retires after outboxIdle with an empty queue; the
// empty-check and map delete happen under outMu, where enqueues also
// happen, so a frame can never be stranded in a retired worker's queue.
func (t *Tracker) outboxLoop(ctx context.Context, key string, ch chan outMsg) {
	idle := time.NewTimer(outboxIdle)
	defer idle.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-ch:
			t.deliver(ctx, m.to, m.frame)
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(outboxIdle)
		case <-idle.C:
			t.outMu.Lock()
			if len(ch) == 0 && t.outboxes[key] == ch {
				delete(t.outboxes, key)
				t.outMu.Unlock()
				return
			}
			t.outMu.Unlock()
			idle.Reset(outboxIdle)
		}
	}
}

// deliver performs the bounded-retry send of one frame to one peer.
func (t *Tracker) deliver(ctx context.Context, to string, frame []byte) {
	m := t.cfg.Obs
	backoff := outboxBackoff
	for attempt := 0; attempt < outboxAttempts; attempt++ {
		sendCtx, cancel := context.WithTimeout(ctx, t.sendDeadline())
		err := t.ep.Send(sendCtx, to, frame)
		cancel()
		if err == nil {
			return
		}
		// A vanished peer or closed endpoint will not heal on retry.
		if errors.Is(err, transport.ErrUnknownPeer) || errors.Is(err, transport.ErrClosed) {
			break
		}
		if attempt == outboxAttempts-1 {
			break
		}
		if m != nil {
			m.OutboxRetries.Inc()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	if m != nil {
		m.OutboxDrops.Inc()
	}
}

// echoProbe answers a link-RTT probe keepalive with an echo carrying the
// prober's transmit stamp. Echoes and legacy keepalives are ignored. The
// send is bounded so a clogged data plane cannot stall dispatch for long;
// a lost echo just costs one RTT sample.
func (t *Tracker) echoProbe(ctx context.Context, from string, frame []byte) {
	ki, err := DecodeKeepaliveEcho(frame)
	if err != nil || !ki.IsProbe() {
		return
	}
	sendCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	_ = t.ep.Send(sendCtx, from, EncodeKeepaliveEcho(ki.Thread, 0, ki.TxNanos, 0))
	cancel()
}

// touchLease refreshes the sender's liveness lease, if it is a known node.
func (t *Tracker) touchLease(from string) {
	t.mu.Lock()
	if id, ok := t.idOf[from]; ok {
		t.lastSeen[id] = time.Now()
	}
	t.mu.Unlock()
}

// leaseMillis is the renewal interval announced in Welcome.
func (t *Tracker) leaseMillis() int64 {
	if t.cfg.LeaseTimeout <= 0 {
		return 0
	}
	ms := (t.cfg.LeaseTimeout / 4).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// statsMillis is the telemetry reporting interval announced in Welcome.
func (t *Tracker) statsMillis() int64 {
	if t.cfg.StatsInterval <= 0 {
		return 0
	}
	ms := t.cfg.StatsInterval.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// handleStatsReport stores a node's latest telemetry report. Reports from
// unknown ids (already swept, or never joined) are dropped — keeping them
// would leak entries and resurrect departed nodes in the cluster view.
func (t *Tracker) handleStatsReport(r StatsReport) {
	if m := t.cfg.Obs; m != nil {
		m.StatsReports.Inc()
	}
	id := core.NodeID(r.ID)
	t.mu.Lock()
	addr, known := t.addrOf[id]
	if known {
		t.reports[id] = nodeReport{report: r, at: time.Now()}
	}
	t.mu.Unlock()
	// Hop spans and link scorecards ride the same report; both collectors
	// lock themselves, so the assembly happens outside t.mu.
	if known && len(r.TraceHops) > 0 {
		t.traces.Ingest(r.ID, r.TraceHops)
	}
	if known && len(r.Links) > 0 {
		t.links.Ingest(r.ID, addr, r.Links)
	}
}

// TraceSnapshot assembles the tracker's dissemination-tracing view: the
// fleet hop-depth distribution and every retained generation's hop tree.
// Serve it at /debug/trace via obs.WithTraceSnapshot.
func (t *Tracker) TraceSnapshot() obs.TraceSnapshot {
	return t.traces.Snapshot()
}

// LinkSnapshot assembles the fleet link matrix: every reported (reporter,
// peer) edge with loss, RTT, innovation and goodput, plus the worst-links
// digest. Serve it at /debug/links via obs.WithLinkSnapshot. The staleness
// horizon matches ClusterSnapshot's: three missed reporting intervals.
func (t *Tracker) LinkSnapshot() obs.LinkSnapshot {
	return t.links.Snapshot(3*t.cfg.StatsInterval, t.addrIDs())
}

// addrIDs copies the addr→id map so link snapshots can attribute peer
// addresses to node ids without holding t.mu during assembly.
func (t *Tracker) addrIDs() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[string]uint64, len(t.idOf))
	for addr, id := range t.idOf {
		m[addr] = uint64(id)
	}
	return m
}

// handleLease renews a node's lease. A lease from an unknown id means the
// node was already swept (it was partitioned past the timeout): tell it,
// so it re-joins immediately instead of waiting to starve.
func (t *Tracker) handleLease(ctx context.Context, from string, l Lease) {
	if m := t.cfg.Obs; m != nil {
		m.Leases.Inc()
	}
	id := core.NodeID(l.ID)
	t.mu.Lock()
	_, known := t.addrOf[id]
	if known {
		t.lastSeen[id] = time.Now()
	}
	t.mu.Unlock()
	if !known {
		t.sendControl(ctx, from, MsgExpelled, Expelled{ID: l.ID})
	}
}

// sweepLoop periodically expires nodes whose leases went silent, splicing
// them out exactly as a complaint-triggered repair would. This is the
// only failure detector that catches a crashed bottom clip — a node with
// no children has nobody to complain about it.
func (t *Tracker) sweepLoop(ctx context.Context) {
	interval := t.cfg.LeaseTimeout / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		now := time.Now()
		t.mu.Lock()
		var expired []core.NodeID
		for id, seen := range t.lastSeen {
			if now.Sub(seen) > t.cfg.LeaseTimeout {
				expired = append(expired, id)
			}
		}
		t.mu.Unlock()
		for _, id := range expired {
			t.expire(ctx, id)
		}
		if len(expired) > 0 {
			t.refreshGauges()
		}
	}
}

// expire splices out one lease-expired node via Fail+Repair and notifies
// it (it may be alive but partitioned; MsgExpelled makes it re-join).
func (t *Tracker) expire(ctx context.Context, id core.NodeID) {
	t.mu.Lock()
	addr, ok := t.addrOf[id]
	t.mu.Unlock()
	if !ok {
		return // already removed by a racing complaint or good-bye
	}
	opStart := time.Now()
	err := t.spliceOut(ctx, id, func() error {
		if err := t.curtain.Fail(id); err != nil {
			return err
		}
		return t.curtain.Repair(id)
	})
	if err != nil {
		return
	}
	if m := t.cfg.Obs; m != nil {
		m.LeaseExpiries.Inc()
		m.Repairs.Inc()
		m.RepairNanos.ObserveSince(opStart)
	}
	t.sendControl(ctx, addr, MsgExpelled, Expelled{ID: uint64(id)})
	t.emit(TrackerEvent{Kind: "expire", ID: id, Addr: addr})
}

func (t *Tracker) emit(ev TrackerEvent) {
	if m := t.cfg.Obs; m != nil {
		m.Trace.Record(obs.Event{Layer: "tracker", Kind: ev.Kind, Node: uint64(ev.ID), Detail: ev.Addr})
	}
	select {
	case t.events <- ev:
	default: // observer asleep: drop rather than block the control plane
	}
}

// admitted is one hello's outcome computed inside the batch transaction;
// the sends and events happen after the lock is released.
type admitted struct {
	from    string
	addr    string
	id      core.NodeID
	threads []int
	parents []core.NodeID
	w       Welcome
	dup     bool   // welcome retry: no redirects, no join event
	errMsg  string // join rejection: MsgError instead of a welcome
}

// flushHellos performs the §3 hello protocol for every queued hello in
// one matrix transaction: a single lock hold admits the whole batch (rows
// inserted sequentially, in arrival order, so placements are identical to
// one-at-a-time dispatch), then the per-hello Welcomes, parent redirects
// and join events go out in the same order. Always returns an empty queue
// reusing pending's storage.
func (t *Tracker) flushHellos(ctx context.Context, pending []pendingHello) []pendingHello {
	if len(pending) == 0 {
		return pending[:0]
	}
	m := t.cfg.Obs
	out := make([]admitted, 0, len(pending))
	t.mu.Lock()
	for _, ph := range pending {
		if m != nil {
			m.Hellos.Inc()
		}
		opStart := time.Now()
		addr := ph.h.Addr
		if addr == "" {
			addr = ph.from
		}
		deg := ph.h.Degree
		if deg == 0 {
			deg = t.cfg.D
		}
		if id, ok := t.idOf[addr]; ok {
			// Duplicate hello: the node is retrying because our welcome was
			// lost (or it is still queued behind this batch). Re-send the
			// same welcome instead of re-joining. The retry also proves the
			// node is alive, so refresh its lease here: touchLease keys by
			// the transport sender and misses when Hello.Addr differs from
			// it, and without this a joiner stuck re-helloing through a slow
			// admission wave could be lease-expired while provably present.
			t.lastSeen[id] = time.Now()
			threads, err := t.curtain.Threads(id)
			if err != nil {
				continue
			}
			out = append(out, admitted{from: ph.from, dup: true, w: Welcome{
				ID:          uint64(id),
				K:           t.cfg.K,
				Degree:      len(threads),
				Session:     t.cfg.Session,
				Threads:     threads,
				LeaseMillis: t.leaseMillis(),
				StatsMillis: t.statsMillis(),
			}})
			continue
		}
		id, err := t.curtain.JoinDegree(deg)
		if err != nil {
			out = append(out, admitted{from: ph.from, errMsg: err.Error()})
			continue
		}
		t.addrOf[id] = addr
		t.idOf[addr] = id
		t.lastSeen[id] = time.Now()
		threads, terr := t.curtain.Threads(id)
		parents, perr := t.curtain.Parents(id)
		if terr != nil || perr != nil {
			continue // unreachable given a successful join
		}
		out = append(out, admitted{
			from:    ph.from,
			addr:    addr,
			id:      id,
			threads: threads,
			parents: parents,
			w: Welcome{
				ID:          uint64(id),
				K:           t.cfg.K,
				Degree:      deg,
				Session:     t.cfg.Session,
				Threads:     threads,
				LeaseMillis: t.leaseMillis(),
				StatsMillis: t.statsMillis(),
			},
		})
		if m != nil {
			m.HelloNanos.ObserveSince(opStart)
		}
	}
	t.mu.Unlock()
	if m != nil {
		m.AdmitBatch.Observe(float64(len(pending)))
	}

	for _, a := range out {
		if a.errMsg != "" {
			t.sendControl(ctx, a.from, MsgError, ErrorMsg{Reason: a.errMsg})
			continue
		}
		t.sendControl(ctx, a.from, MsgWelcome, a.w)
		if a.dup {
			continue
		}
		// Redirect each parent's stream on the shared thread to the new node.
		for i, th := range a.threads {
			t.redirect(ctx, a.parents[i], th, a.addr)
		}
		t.emit(TrackerEvent{Kind: "join", ID: a.id, Addr: a.addr})
	}
	return pending[:0]
}

// redirect routes thread th of owner (a node id or ServerID) to childAddr.
func (t *Tracker) redirect(ctx context.Context, owner core.NodeID, th int, childAddr string) {
	if m := t.cfg.Obs; m != nil {
		m.Redirects.Inc()
	}
	if owner == core.ServerID {
		if t.source != nil {
			t.source.SetChild(th, childAddr)
		}
		return
	}
	t.mu.Lock()
	ownerAddr, ok := t.addrOf[owner]
	t.mu.Unlock()
	if !ok {
		return
	}
	t.sendControl(ctx, ownerAddr, MsgRedirect, Redirect{Thread: th, ChildAddr: childAddr})
}

// spliceOut removes a node's row, redirecting each of its parents to its
// per-thread child (or hanging the thread). remove performs the row
// deletion appropriate to the caller (Leave or Fail+Repair).
func (t *Tracker) spliceOut(ctx context.Context, id core.NodeID, remove func() error) error {
	t.mu.Lock()
	threads, err := t.curtain.Threads(id)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	parents, err := t.curtain.Parents(id)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	// Per-thread children BEFORE the row disappears: the successor on
	// each thread (may be absent when this node is the bottom clip).
	childAddrs := make([]string, len(threads))
	children, err := t.childPerThread(id, threads)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	for i, ch := range children {
		if ch != 0 {
			childAddrs[i] = t.addrOf[ch]
		}
	}
	if err := remove(); err != nil {
		t.mu.Unlock()
		return err
	}
	addr := t.addrOf[id]
	delete(t.addrOf, id)
	delete(t.idOf, addr)
	// The row is gone, so every per-node record must go with it: a stale
	// completed entry would inflate CompletedCount (and the Completed
	// gauge) forever under churn, and a stale lease would make the sweep
	// re-expire an id the curtain no longer knows.
	delete(t.completed, id)
	delete(t.lastSeen, id)
	delete(t.reports, id)
	t.mu.Unlock()
	// Its link edges go with it too, or the matrix would accumulate ghost
	// reporters under churn. The collector locks itself.
	t.links.Remove(uint64(id))

	for i, th := range threads {
		t.redirect(ctx, parents[i], th, childAddrs[i])
	}
	return nil
}

// childPerThread returns, aligned with threads, the successor node id on
// each thread (0 when the node is the bottom clip). Caller holds t.mu.
func (t *Tracker) childPerThread(id core.NodeID, threads []int) ([]core.NodeID, error) {
	return t.curtain.ThreadChildren(id)
}

// handleGoodbye performs the §3 good-bye protocol.
func (t *Tracker) handleGoodbye(ctx context.Context, from string, g Goodbye) {
	if m := t.cfg.Obs; m != nil {
		m.Goodbyes.Inc()
	}
	id := core.NodeID(g.ID)
	t.mu.Lock()
	addr, ok := t.addrOf[id]
	t.mu.Unlock()
	if !ok {
		// Idempotent: the node may be re-sending a good-bye whose ack was
		// lost after the row was already removed. Ack again.
		t.sendControl(ctx, from, MsgGoodbyeAck, GoodbyeAck{})
		return
	}
	opStart := time.Now()
	err := t.spliceOut(ctx, id, func() error {
		return t.curtain.Leave(id)
	})
	if err != nil {
		t.sendControl(ctx, from, MsgError, ErrorMsg{Reason: err.Error()})
		return
	}
	if m := t.cfg.Obs; m != nil {
		m.GoodbyeNanos.ObserveSince(opStart)
	}
	t.sendControl(ctx, addr, MsgGoodbyeAck, GoodbyeAck{})
	t.emit(TrackerEvent{Kind: "leave", ID: id, Addr: addr})
}

// handleComplaint performs the §3 repair procedure: verify the accused
// parent is still the complainer's parent on that thread, then splice the
// failed node out exactly as if it had left gracefully.
func (t *Tracker) handleComplaint(ctx context.Context, c Complaint) {
	if m := t.cfg.Obs; m != nil {
		m.Complaints.Inc()
	}
	childID := core.NodeID(c.ID)
	t.mu.Lock()
	if !t.curtain.Contains(childID) {
		t.mu.Unlock()
		return
	}
	threads, err := t.curtain.Threads(childID)
	if err != nil {
		t.mu.Unlock()
		return
	}
	parents, err := t.curtain.Parents(childID)
	if err != nil {
		t.mu.Unlock()
		return
	}
	var accused core.NodeID
	found := false
	for i, th := range threads {
		if th == c.Thread {
			accused = parents[i]
			found = true
			break
		}
	}
	if !found || accused == core.ServerID {
		// Not the child's thread, or the source itself (trusted): stale.
		t.mu.Unlock()
		return
	}
	accusedAddr := t.addrOf[accused]
	childAddr := t.addrOf[childID]
	t.mu.Unlock()
	// Guard against stale complaints racing a completed repair: the
	// accused address must match what the child observed. A mismatch
	// means the child is starving because it never heard from its NEW
	// parent — most likely a lost redirect — so refresh the route instead
	// of expelling anyone.
	if c.ParentAddr != "" && accusedAddr != c.ParentAddr {
		t.redirect(ctx, accused, c.Thread, childAddr)
		return
	}

	opStart := time.Now()
	err = t.spliceOut(ctx, accused, func() error {
		if err := t.curtain.Fail(accused); err != nil {
			return err
		}
		return t.curtain.Repair(accused)
	})
	if err != nil {
		return
	}
	if m := t.cfg.Obs; m != nil {
		m.Repairs.Inc()
		m.RepairNanos.ObserveSince(opStart)
	}
	// Tell the expelled node, in case it is alive-but-slow: it can
	// re-join with a fresh row (its decoded state survives).
	t.sendControl(ctx, accusedAddr, MsgExpelled, Expelled{ID: uint64(accused)})
	t.emit(TrackerEvent{Kind: "repair", ID: accused, Addr: accusedAddr})
}

// handleCongested performs the §5 congestion relief: the node's row loses
// one random one; the dropped thread's parent is joined directly to the
// dropped thread's child.
func (t *Tracker) handleCongested(ctx context.Context, c Congested) {
	id := core.NodeID(c.ID)
	t.mu.Lock()
	addr, ok := t.addrOf[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	threads, terr := t.curtain.Threads(id)
	parents, perr := t.curtain.Parents(id)
	var children []core.NodeID
	var cerr error
	if terr == nil {
		children, cerr = t.childPerThread(id, threads)
	}
	if terr != nil || perr != nil || cerr != nil {
		t.mu.Unlock()
		return
	}
	dropped, err := t.curtain.ReduceDegree(id)
	if err != nil {
		t.mu.Unlock()
		t.sendControl(ctx, addr, MsgError, ErrorMsg{Reason: err.Error()})
		t.emit(TrackerEvent{Kind: "congest-rejected", ID: id, Addr: addr})
		return
	}
	var parent, child core.NodeID
	for i, th := range threads {
		if th == dropped {
			parent, child = parents[i], children[i]
			break
		}
	}
	childAddr := ""
	if child != 0 {
		childAddr = t.addrOf[child]
	}
	t.mu.Unlock()

	if m := t.cfg.Obs; m != nil {
		m.Congestions.Inc()
	}
	// Join the dropped thread's parent directly to its child.
	t.redirect(ctx, parent, dropped, childAddr)
	t.sendControl(ctx, addr, MsgThreadDropped, ThreadDropped{Thread: dropped})
	t.emit(TrackerEvent{Kind: "congested", ID: id, Addr: addr})
}

// handleUncongested regrows a reduced node: one of the zeroes of its row
// becomes a one, and the streams around the new clip are re-routed.
func (t *Tracker) handleUncongested(ctx context.Context, u Uncongested) {
	id := core.NodeID(u.ID)
	t.mu.Lock()
	addr, ok := t.addrOf[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	gained, err := t.curtain.IncreaseDegree(id)
	if err != nil {
		t.mu.Unlock()
		t.sendControl(ctx, addr, MsgError, ErrorMsg{Reason: err.Error()})
		return
	}
	// Locate the node's new parent and child on the gained thread.
	threads, terr := t.curtain.Threads(id)
	parents, perr := t.curtain.Parents(id)
	var children []core.NodeID
	var cerr error
	if terr == nil {
		children, cerr = t.childPerThread(id, threads)
	}
	if terr != nil || perr != nil || cerr != nil {
		t.mu.Unlock()
		return
	}
	var parent, child core.NodeID
	for i, th := range threads {
		if th == gained {
			parent, child = parents[i], children[i]
			break
		}
	}
	childAddr := ""
	if child != 0 {
		childAddr = t.addrOf[child]
	}
	t.mu.Unlock()

	if m := t.cfg.Obs; m != nil {
		m.Uncongestions.Inc()
	}
	// New parent sends to the node; the node serves the displaced child.
	t.redirect(ctx, parent, gained, addr)
	t.sendControl(ctx, addr, MsgThreadAdded, ThreadAdded{Thread: gained, ChildAddr: childAddr})
	t.emit(TrackerEvent{Kind: "uncongested", ID: id, Addr: addr})
}

func (t *Tracker) handleComplete(c Complete) {
	id := core.NodeID(c.ID)
	t.mu.Lock()
	addr, known := t.addrOf[id]
	if !known {
		// A straggling Complete from a node that already left must not
		// re-create its completed entry (it would leak forever).
		t.mu.Unlock()
		return
	}
	already := t.completed[id]
	t.completed[id] = true
	t.mu.Unlock()
	if !already {
		if m := t.cfg.Obs; m != nil {
			m.Completions.Inc()
		}
		t.emit(TrackerEvent{Kind: "complete", ID: id, Addr: addr})
	}
}

// MatrixDump returns the canonical byte-comparable rendering of the
// tracker's matrix M (core.Curtain.MatrixString): one "id:threads[:failed]"
// line per row, in row order. Two trackers with identical histories produce
// identical dumps — the seed-determinism gate of the swarm harness.
func (t *Tracker) MatrixDump() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.curtain.MatrixString()
}

// Topology snapshots the overlay graph for analysis (connectivity
// measurement after a kill wave, defect counting). The snapshot is built
// under the tracker lock but is an independent copy.
func (t *Tracker) Topology() *core.Topology {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.curtain.Snapshot()
}

// ErrNoSuchNode is returned by administrative operations on unknown nodes.
var ErrNoSuchNode = errors.New("protocol: no such node")
