package protocol

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ncast/internal/obs"
	"ncast/internal/transport"
)

// TestFleetTelemetry is the fleet-telemetry acceptance test: a source and
// five receivers over a fault-injected transport (5% receive loss), one of
// them additionally delay-injected. Every node must appear in the cluster
// view with its decode completion per generation, positive decode-delay
// quantiles, and the delayed node must surface as the slowest decoder.
func TestFleetTelemetry(t *testing.T) {
	content := make([]byte, 4*8*32) // 4 generations of 8 × 32-byte packets
	for i := range content {
		content[i] = byte(i * 13)
	}
	reg := obs.NewRegistry()
	const statsInterval = 150 * time.Millisecond
	h := startChurnHarness(t, 8, 2, content, func(cfg *TrackerConfig) {
		cfg.StatsInterval = statsInterval
		cfg.Obs = obs.NewTrackerMetrics(reg)
	})

	const lossy = 0.05
	nodes := make([]*churnNode, 0, 5)
	for i := 0; i < 4; i++ {
		nodes = append(nodes, h.join(t, fmt.Sprintf("n%d", i), &transport.FaultConfig{
			RecvLoss: lossy, Seed: int64(i + 1),
		}))
	}
	// The straggler: same loss, plus a fixed per-frame receive delay.
	straggler := h.join(t, "slow", &transport.FaultConfig{
		RecvLoss: lossy, RecvDelay: 3 * time.Millisecond, Seed: 99,
	})
	nodes = append(nodes, straggler)

	for _, n := range nodes {
		select {
		case <-n.node.Completed():
		case <-time.After(60 * time.Second):
			t.Fatalf("%s incomplete", n.addr)
		}
	}

	// Serve the tracker's aggregation exactly as ncast-server does and poll
	// /debug/cluster until every node's post-completion report has landed.
	srv := httptest.NewServer(obs.Handler(reg, nil, obs.WithClusterSnapshot(h.tracker.ClusterSnapshot)))
	defer srv.Close()

	var snap obs.ClusterSnapshot
	waitFor(t, 20*time.Second, "cluster view to converge", func() bool {
		resp, err := http.Get(srv.URL + "/debug/cluster")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		snap = obs.ClusterSnapshot{}
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("cluster JSON: %v\n%s", err, raw)
		}
		return fleetComplete(snap, len(nodes))
	})

	if snap.StaleAfterMillis != (3 * statsInterval).Milliseconds() {
		t.Errorf("stale horizon = %dms", snap.StaleAfterMillis)
	}
	// Every node reports decode completion for every generation, positive
	// decode-delay quantiles, and overhead at or above 1000 permille.
	for _, n := range snap.Nodes {
		if !n.Fresh {
			t.Errorf("node %d stale (age %dms)", n.ID, n.AgeMillis)
		}
		if len(n.GenRanks) != 4 {
			t.Fatalf("node %d gen ranks = %v", n.ID, n.GenRanks)
		}
		for gi, rk := range n.GenRanks {
			if rk != 8 {
				t.Errorf("node %d generation %d rank = %d, want 8", n.ID, gi, rk)
			}
		}
		if n.DelayP50Nanos <= 0 || n.DelayP90Nanos < n.DelayP50Nanos || n.DelayP99Nanos < n.DelayP90Nanos {
			t.Errorf("node %d delay quantiles = %d/%d/%d", n.ID, n.DelayP50Nanos, n.DelayP90Nanos, n.DelayP99Nanos)
		}
		if n.OverheadPermille < 1000 {
			t.Errorf("node %d overhead = %d permille", n.ID, n.OverheadPermille)
		}
		if n.Received == 0 || n.Innovative == 0 || n.Received-n.Innovative != n.Redundant {
			t.Errorf("node %d flow counters = %d/%d/%d", n.ID, n.Received, n.Innovative, n.Redundant)
		}
	}
	if len(snap.Generations) != 4 {
		t.Fatalf("generations = %+v", snap.Generations)
	}
	for _, g := range snap.Generations {
		if g.Decoded != len(nodes) || g.Reporting != len(nodes) {
			t.Errorf("generation %d decoded %d/%d", g.Index, g.Decoded, g.Reporting)
		}
	}
	if snap.FleetDelayP50Nanos <= 0 || snap.FleetDelayP99Nanos < snap.FleetDelayP50Nanos {
		t.Errorf("fleet quantiles = %d/%d", snap.FleetDelayP50Nanos, snap.FleetDelayP99Nanos)
	}
	// The delay-injected node must surface as the slowest decoder.
	if snap.SlowestID != straggler.node.ID() {
		slow := snap.Node(snap.SlowestID)
		inj := snap.Node(straggler.node.ID())
		t.Errorf("slowest = %+v, injected straggler = %+v", slow, inj)
	}

	// Reporting stayed within its budget: at most one control message per
	// node per interval, with slack for the final in-flight tick.
	if m := reg.Snapshot(); m != nil {
		for _, p := range m {
			if p.Name != "ncast_tracker_stats_reports_total" {
				continue
			}
			elapsed := time.Since(snap.At.Add(-20 * time.Second)) // generous upper bound on run time
			budget := float64(len(nodes)) * (float64(elapsed)/float64(statsInterval) + 2)
			if p.Value > budget {
				t.Errorf("stats reports = %v, budget %v", p.Value, budget)
			}
			if p.Value < float64(len(nodes)) {
				t.Errorf("stats reports = %v, want >= %d", p.Value, len(nodes))
			}
		}
	}
}

// fleetComplete reports whether every expected node appears fresh and
// fully decoded in the snapshot.
func fleetComplete(snap obs.ClusterSnapshot, want int) bool {
	if len(snap.Nodes) != want {
		return false
	}
	for _, n := range snap.Nodes {
		if !n.Complete || n.DelayP50Nanos <= 0 {
			return false
		}
	}
	return true
}

// TestStatsReportRoundTrip pins the MsgStatsReport wire schema.
func TestStatsReportRoundTrip(t *testing.T) {
	t.Parallel()
	in := StatsReport{
		ID: 7, Rank: 24, MaxRank: 32, GenRanks: []int{8, 8, 8, 0}, GensDone: 3,
		TotalGens: 4, Received: 40, Innovative: 24, Redundant: 16, Complaints: 1,
		LeaseRenewals: 5, QueueDepth: 2, DelayP50Nanos: 100, DelayP90Nanos: 200,
		DelayP99Nanos: 300, OverheadPermille: 1250,
	}
	frame, err := EncodeControl(MsgStatsReport, in)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := DecodeControl(frame)
	if err != nil || typ != MsgStatsReport {
		t.Fatalf("decode: %v type %d", err, typ)
	}
	var out StatsReport
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Rank != 24 || len(out.GenRanks) != 4 || out.GenRanks[3] != 0 ||
		out.Redundant != 16 || out.DelayP99Nanos != 300 || out.OverheadPermille != 1250 {
		t.Fatalf("round trip = %+v", out)
	}
}

// TestTrackerDropsUnknownReports: a report from a swept or never-joined id
// must not resurrect the node in the cluster view.
func TestTrackerDropsUnknownReports(t *testing.T) {
	t.Parallel()
	content := make([]byte, 8*32)
	h := startChurnHarness(t, 4, 2, content, func(cfg *TrackerConfig) {
		cfg.StatsInterval = 100 * time.Millisecond
	})
	h.tracker.handleStatsReport(StatsReport{ID: 424242, Rank: 1})
	if snap := h.tracker.ClusterSnapshot(); snap.Node(424242) != nil {
		t.Fatalf("unknown id stored: %+v", snap.Nodes)
	}
}
