package protocol

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ncast/internal/core"
)

// TestCongestionEpisodeLive walks the §5 congestion protocol end to end:
// a mid-overlay node backs off one thread (its parent is joined directly
// to its child), everyone keeps decoding, then the node regrows the
// thread and is spliced back in.
func TestCongestionEpisodeLive(t *testing.T) {
	t.Parallel()
	content := randContent(1500)
	s := startSession(t, 5, content) // k=8, d=2
	ctx := context.Background()
	victim := s.nodes[2]

	// Back off: degree 2 -> 1.
	if err := victim.Congest(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "degree to drop to 1", func() bool {
		return victim.Degree() == 1
	})

	// Everyone — including the reduced node, at its lower rate — still
	// completes the download.
	for i, n := range s.nodes {
		waitComplete(t, n, 30*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("node %d content mismatch during congestion", i)
		}
	}

	// Recover: degree 1 -> 2.
	if err := victim.Uncongest(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "degree to regrow to 2", func() bool {
		return victim.Degree() == 2
	})

	// The overlay stays structurally sound: a brand-new joiner completes
	// through the post-episode topology.
	late := s.addNode(t, context.Background(), 25)
	waitComplete(t, late, 30*time.Second)
	got, err := late.Content()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("late joiner content mismatch after congestion episode")
	}
}

// TestCongestAtFloorRejected: a node at degree 1 cannot reduce further;
// the tracker replies with an error and the node keeps its thread.
func TestCongestAtFloorRejected(t *testing.T) {
	t.Parallel()
	content := randContent(400)
	s := startSessionKD(t, 2, 4, 1, content) // d = 1: already at the floor
	victim := s.nodes[0]
	if err := victim.Congest(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The tracker announces the rejection on its event stream, so the test
	// waits for the decision itself instead of guessing how long it takes.
	waitEvent(t, s.tracker.Events(), 10*time.Second, "congest-rejected", func(ev TrackerEvent) bool {
		return ev.Kind == "congest-rejected" && ev.ID == core.NodeID(victim.ID())
	})
	if victim.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", victim.Degree())
	}
	waitComplete(t, victim, 20*time.Second)
}
