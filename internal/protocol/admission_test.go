package protocol

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"ncast/internal/core"
	"ncast/internal/gf"
	"ncast/internal/obs"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// The admission suite pins the batched-admission edge cases: a flash
// crowd larger than one batch, and the orderings where a duplicate hello
// is still queued when a goodbye or a lease expiry removes the row it
// duplicates.

// newAdmissionTracker builds a tracker (and its source) on a fresh
// fabric without starting Run, so tests can drive ingest/flushHellos
// directly and observe intermediate states that the run loop would race
// past.
func newAdmissionTracker(t *testing.T, k, d int) (*Tracker, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, k, params, randContent(256), 42)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: k, D: d, Session: source.Session(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		net.Close()
	})
	return tracker, net
}

// trackerID returns the overlay id the tracker holds for addr, or fails.
func trackerID(t *testing.T, tr *Tracker, addr string) core.NodeID {
	t.Helper()
	tr.mu.Lock()
	id, ok := tr.idOf[addr]
	tr.mu.Unlock()
	if !ok {
		t.Fatalf("no identity recorded for %q", addr)
	}
	return id
}

// nextEvent pops one tracker event or fails; the direct-call tests emit
// few enough events that the buffered channel never drops.
func nextEvent(t *testing.T, tr *Tracker, wantKind string) TrackerEvent {
	t.Helper()
	select {
	case ev := <-tr.Events():
		if ev.Kind != wantKind {
			t.Fatalf("event = %+v, want kind %q", ev, wantKind)
		}
		return ev
	default:
		t.Fatalf("no buffered event, want kind %q", wantKind)
		return TrackerEvent{}
	}
}

// TestHelloBurstSpansBatches floods a running tracker with more
// simultaneous hellos than one admission batch can hold. Every joiner
// must be admitted exactly once with a distinct identity, and the batch
// histogram must show the flood split into multiple transactions whose
// sizes sum to the population — no hello double-counted or dropped at a
// batch boundary.
func TestHelloBurstSpansBatches(t *testing.T) {
	t.Parallel()
	const burst = admissionBatchMax + 44 // forces at least two batches
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork()
	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, 32, params, randContent(256), 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: 32, D: 2, Session: source.Session(), Seed: 7,
		Obs: obs.NewTrackerMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer wg.Done(); _ = source.Run(ctx) }()
	t.Cleanup(func() {
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		cancel()
		net.Close()
		wg.Wait()
	})

	// Every joiner sends from its own endpoint and waits for its welcome;
	// the in-memory fabric applies backpressure, so nothing is lost no
	// matter how the flood interleaves with batch flushes.
	ids := make(chan uint64, burst)
	var joiners sync.WaitGroup
	for i := 0; i < burst; i++ {
		addr := fmt.Sprintf("b%d", i)
		ep, err := net.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		hello, err := EncodeControl(MsgHello, Hello{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		joiners.Add(1)
		go func() {
			defer joiners.Done()
			if err := ep.Send(ctx, "tracker", hello); err != nil {
				t.Errorf("hello from %s: %v", addr, err)
				return
			}
			rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
			defer rcancel()
			for {
				_, frame, err := ep.Recv(rctx)
				if err != nil {
					t.Errorf("welcome for %s never arrived: %v", addr, err)
					return
				}
				typ, payload, derr := DecodeControl(frame)
				if derr != nil || typ != MsgWelcome {
					continue
				}
				var w Welcome
				if err := json.Unmarshal(payload, &w); err != nil {
					t.Errorf("welcome payload for %s: %v", addr, err)
					return
				}
				ids <- w.ID
				return
			}
		}()
	}
	joiners.Wait()
	close(ids)

	seen := make(map[uint64]bool, burst)
	for id := range ids {
		if seen[id] {
			t.Fatalf("identity %d handed to two joiners", id)
		}
		seen[id] = true
	}
	if len(seen) != burst {
		t.Fatalf("admitted %d distinct identities, want %d", len(seen), burst)
	}
	if n := tracker.NumNodes(); n != burst {
		t.Fatalf("population = %d, want %d", n, burst)
	}

	// The histogram is the batching proof: sizes sum to exactly the flood
	// (each hello admitted once), and the cap forces at least two
	// transactions.
	for _, p := range reg.Snapshot() {
		if p.Name != "ncast_tracker_admit_batch_size" {
			continue
		}
		if p.Sum != float64(burst) {
			t.Errorf("batch sizes sum to %v, want %d", p.Sum, burst)
		}
		if p.Count < 2 {
			t.Errorf("flood admitted in %d batch(es); cap %d demands at least 2", p.Count, admissionBatchMax)
		}
	}
}

// TestGoodbyeRacesQueuedDuplicateHello drives the two orderings of a
// duplicate hello racing a goodbye for the same row. Queued-dup-first:
// the flush re-sends the existing welcome (no second row) and the
// goodbye then removes the row. Goodbye-first: the retried hello finds
// no row and is admitted fresh under a new identity.
func TestGoodbyeRacesQueuedDuplicateHello(t *testing.T) {
	t.Parallel()
	tr, net := newAdmissionTracker(t, 8, 2)
	if _, err := net.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hello, err := EncodeControl(MsgHello, Hello{Addr: "a"})
	if err != nil {
		t.Fatal(err)
	}

	var pending []pendingHello
	pending = tr.ingest(ctx, "a", hello, pending)
	if len(pending) != 1 {
		t.Fatalf("hello not queued: %d pending", len(pending))
	}
	pending = tr.flushHellos(ctx, pending)
	id1 := trackerID(t, tr, "a")
	nextEvent(t, tr, "join")

	// Ordering 1: the duplicate is queued when the goodbye arrives. The
	// goodbye is a non-hello, so ingest flushes the queue first — the dup
	// re-welcomes against the still-live row — then dispatches the
	// goodbye, which removes it. Arrival order is preserved end to end.
	pending = tr.ingest(ctx, "a", hello, pending)
	goodbye, err := EncodeControl(MsgGoodbye, Goodbye{ID: uint64(id1)})
	if err != nil {
		t.Fatal(err)
	}
	pending = tr.ingest(ctx, "a", goodbye, pending)
	if len(pending) != 0 {
		t.Fatalf("goodbye left %d hellos queued", len(pending))
	}
	if n := tr.NumNodes(); n != 0 {
		t.Fatalf("population = %d after dup-hello then goodbye, want 0", n)
	}
	nextEvent(t, tr, "leave") // the dup flush must NOT have emitted a second join
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Ordering 2: the row is already gone when the retried hello flushes —
	// a fresh admission under a new identity, never a resurrection of id1.
	pending = tr.ingest(ctx, "a", hello, pending)
	pending = tr.flushHellos(ctx, pending)
	_ = pending
	id2 := trackerID(t, tr, "a")
	if id2 == id1 {
		t.Fatalf("re-join after goodbye reused identity %d", id1)
	}
	if n := tr.NumNodes(); n != 1 {
		t.Fatalf("population = %d after re-join, want 1", n)
	}
	ev := nextEvent(t, tr, "join")
	if ev.ID != id2 {
		t.Fatalf("join event for %d, want %d", ev.ID, id2)
	}
}

// TestExpireSweepsNodeWithQueuedDuplicateHello: a lease expiry fires
// while the expired node's own duplicate hello sits in the admission
// queue. The sweep removes the row; the queued hello must then be
// admitted as a brand-new node — a fresh identity, not a dangling
// welcome for a row that no longer exists.
func TestExpireSweepsNodeWithQueuedDuplicateHello(t *testing.T) {
	t.Parallel()
	tr, net := newAdmissionTracker(t, 8, 2)
	if _, err := net.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hello, err := EncodeControl(MsgHello, Hello{Addr: "a"})
	if err != nil {
		t.Fatal(err)
	}

	var pending []pendingHello
	pending = tr.ingest(ctx, "a", hello, pending)
	pending = tr.flushHellos(ctx, pending)
	id1 := trackerID(t, tr, "a")
	nextEvent(t, tr, "join")

	// The node retries its hello (welcome lost, say), and before the next
	// flush its lease expires: the sweep splices the row out under the
	// queued duplicate.
	pending = tr.ingest(ctx, "a", hello, pending)
	tr.expire(ctx, id1)
	if ev := nextEvent(t, tr, "expire"); ev.ID != id1 {
		t.Fatalf("expire event for %d, want %d", ev.ID, id1)
	}
	if n := tr.NumNodes(); n != 0 {
		t.Fatalf("population = %d after expiry, want 0", n)
	}

	// The queued hello now finds no row: fresh join, new identity.
	pending = tr.flushHellos(ctx, pending)
	_ = pending
	id2 := trackerID(t, tr, "a")
	if id2 == id1 {
		t.Fatalf("post-expiry flush resurrected identity %d", id1)
	}
	if n := tr.NumNodes(); n != 1 {
		t.Fatalf("population = %d after post-expiry flush, want 1", n)
	}
	if ev := nextEvent(t, tr, "join"); ev.ID != id2 {
		t.Fatalf("join event for %d, want %d", ev.ID, id2)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
