package protocol

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// dualLossyEndpoint builds a split-plane endpoint on a fresh 127.0.0.1
// port: control over TCP, coded data and keepalives over UDP on the same
// port, with seeded random loss injected on outbound datagrams. The
// returned Faulty lets the test verify loss actually fired.
func dualLossyEndpoint(t *testing.T, loss float64, seed int64) (transport.Endpoint, *transport.Faulty) {
	t.Helper()
	tcp, udp, err := transport.ListenSamePort("127.0.0.1:0", transport.UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	faulty := transport.NewFaulty(udp, transport.FaultConfig{SendLoss: loss, Seed: seed})
	return transport.NewDual(tcp, faulty, DataPlaneFrame), faulty
}

// TestBroadcastOverDatagramWithLoss runs the full protocol over real
// sockets with the planes split: hello/repair/stats on TCP, coded frames
// on UDP, and 5% of every participant's outbound datagrams dropped on the
// floor. The rateless code must carry the broadcast to completion with no
// TCP fallback for data — lost datagrams are simply never retransmitted.
func TestBroadcastOverDatagramWithLoss(t *testing.T) {
	t.Parallel()
	content := randContent(800)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// LIFO: cancel must run BEFORE wg.Wait so the goroutines can exit.
	defer wg.Wait()
	defer cancel()

	trackerEP, srcFaulty := dualLossyEndpoint(t, 0.05, 11)
	defer trackerEP.Close()
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 64}
	source, err := NewSource(trackerEP, 6, params, content, 1)
	if err != nil {
		t.Fatal(err)
	}
	source.RoundInterval = time.Millisecond
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: 6, D: 2, Session: source.Session(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() { defer wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer wg.Done(); _ = source.Run(ctx) }()

	var nodes []*Node
	var faults []*transport.Faulty
	for i := 0; i < 3; i++ {
		ep, faulty := dualLossyEndpoint(t, 0.05, int64(100+i))
		defer ep.Close()
		node := NewNode(ep, NodeConfig{TrackerAddr: trackerEP.Addr(), Seed: int64(i)})
		wg.Add(1)
		go func() { defer wg.Done(); _ = node.Run(ctx) }()
		select {
		case err := <-node.Joined():
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("datagram join timeout")
		}
		nodes = append(nodes, node)
		faults = append(faults, faulty)
	}
	for _, n := range nodes {
		waitComplete(t, n, 30*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over lossy datagrams")
		}
	}
	// The loss regime must actually have been exercised. A tiny broadcast
	// can complete before any 5% coin lands, but the source keeps pumping
	// coded frames after completion, so drops accrue — poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		dropped := srcFaulty.Stats().SendDropped
		for _, f := range faults {
			dropped += f.Stats().SendDropped
		}
		if dropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no datagrams were dropped: loss injection never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
