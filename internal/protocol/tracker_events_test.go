package protocol

import (
	"context"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/obs"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// TestEventsSlowConsumerNeverBlocksTracker pins the Events drop policy: a
// consumer that never drains the channel must not stall the tracker's
// control plane. The events buffer is filled to capacity and beyond, then
// a node joins — the join only succeeds if Run is still dispatching.
func TestEventsSlowConsumerNeverBlocksTracker(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork()
	var wg sync.WaitGroup
	t.Cleanup(func() {
		cancel()
		net.Close()
		wg.Wait()
	})

	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, 8, params, randContent(256), 42)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: 8, D: 2,
		Session: source.Session(),
		Seed:    7,
		Obs:     obs.NewTrackerMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() { defer wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer wg.Done(); _ = source.Run(ctx) }()

	// Nobody reads Events(). Overfill the buffer; every call must return
	// immediately (a blocking emit would hang the test here, well before
	// the overall test timeout).
	const overfill = 1100 // > the 1024 buffer
	for i := 0; i < overfill; i++ {
		tracker.emit(TrackerEvent{Kind: "synthetic", ID: 1})
	}
	if got := len(tracker.Events()); got != cap(tracker.Events()) {
		t.Fatalf("events buffer holds %d, want full at %d", got, cap(tracker.Events()))
	}

	// The control plane must still be alive: a hello handled by Run.
	ep, err := net.Endpoint("latecomer")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{TrackerAddr: "tracker", Seed: 5})
	wg.Add(1)
	go func() { defer wg.Done(); _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatalf("join with full events buffer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tracker stopped dispatching with a full events buffer")
	}
	if n := tracker.NumNodes(); n != 1 {
		t.Fatalf("population = %d, want 1", n)
	}

	// The lossless record: the trace ring kept (the newest of) the
	// synthetic events even though the channel dropped them.
	evs := reg.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("trace ring empty after overfill")
	}
	sawSynthetic := false
	for _, ev := range evs {
		if ev.Kind == "synthetic" {
			sawSynthetic = true
			break
		}
	}
	if !sawSynthetic {
		t.Fatal("trace ring did not record dropped events")
	}
}
