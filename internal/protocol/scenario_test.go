package protocol

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"ncast/internal/sim"
	"ncast/internal/transport"
)

// The scenario suite drills the tracker's hostile-world behaviors
// end-to-end over the wire (a live Run loop, real frames): flash-crowd
// admission across many batches, churn with rejoin through lease expiry,
// the paper's kill-half-the-fleet robustness claim, and the
// dup-hello-refreshes-lease regression.

// scenarioTracker starts a live tracker on a fresh fabric and returns it
// with a client endpoint. The tracker is torn down (and its invariants
// checked) at cleanup.
func scenarioTracker(t *testing.T, cfg TrackerConfig) (*Tracker, transport.Endpoint) {
	t.Helper()
	net := transport.NewNetwork()
	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.D == 0 {
		cfg.D = 2
	}
	if cfg.Session.GenSize == 0 {
		cfg.Session = SessionParams{FieldBits: 8, GenSize: 8, PacketSize: 32, ContentLen: 256}
	}
	tracker, err := NewTracker(trackerEP, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go tracker.Run(ctx) //nolint:errcheck // exits on cancel
	client, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		cancel()
		net.Close()
	})
	return tracker, client
}

func sendHello(t *testing.T, ep transport.Endpoint, addr string) {
	t.Helper()
	frame, err := EncodeControl(MsgHello, Hello{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(context.Background(), "tracker", frame); err != nil {
		t.Fatalf("hello send: %v", err)
	}
}

// recvWelcome receives control frames until the next welcome (discarding
// redirects and other chatter), failing after the timeout.
func recvWelcome(t *testing.T, ep transport.Endpoint, timeout time.Duration) Welcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		_, msg, err := ep.Recv(ctx)
		if err != nil {
			t.Fatalf("waiting for welcome: %v", err)
		}
		typ, payload, err := DecodeControl(msg)
		if err != nil || typ != MsgWelcome {
			continue
		}
		var w Welcome
		if err := json.Unmarshal(payload, &w); err != nil {
			t.Fatalf("welcome payload: %v", err)
		}
		return w
	}
}

// TestFlashCrowdAdmittedInArrivalOrder floods a live tracker with a hello
// burst spanning many admission batches (600 > 2×admissionBatchMax) and
// requires every node admitted, in arrival order, zero dropped. Sequential
// id assignment makes arrival order observable: the j-th hello must be
// welcomed with id j+1, and per-peer outbox FIFO delivers the welcomes in
// admission order.
func TestFlashCrowdAdmittedInArrivalOrder(t *testing.T) {
	const n = 600
	tracker, client := scenarioTracker(t, TrackerConfig{
		// Deep enough that not a single welcome is dropped on the shared
		// client peer during the burst.
		OutboxDepth: 2 * n,
	})
	for i := 0; i < n; i++ {
		sendHello(t, client, fmt.Sprintf("node-%d", i))
	}
	for j := 0; j < n; j++ {
		w := recvWelcome(t, client, 30*time.Second)
		if w.ID != uint64(j+1) {
			t.Fatalf("welcome %d carries id %d, want %d (admission out of arrival order or dropped)",
				j, w.ID, j+1)
		}
	}
	waitFor(t, 10*time.Second, "census to reach the full crowd", func() bool {
		return tracker.NumNodes() == n
	})
}

// TestChurnRejoinGetsFreshRow drives the mobile-churn cycle over the
// wire: join, crash silently (no goodbye, no renewals), get swept by the
// lease expiry, rejoin from the same address, and receive a brand-new
// row. The expired row must be fully reclaimed (census back to zero
// in between, invariants clean at teardown via the harness).
func TestChurnRejoinGetsFreshRow(t *testing.T) {
	tracker, client := scenarioTracker(t, TrackerConfig{
		LeaseTimeout: 150 * time.Millisecond,
	})
	events := tracker.Events()

	sendHello(t, client, "churner")
	w1 := recvWelcome(t, client, 10*time.Second)

	// Crash: total silence. The sweep must reclaim the row — observable
	// as the "expire" event for our id.
	waitEvent(t, events, 10*time.Second, "lease expiry of the crashed node", func(ev TrackerEvent) bool {
		return ev.Kind == "expire" && uint64(ev.ID) == w1.ID
	})
	waitFor(t, 10*time.Second, "row reclaimed", func() bool { return tracker.NumNodes() == 0 })

	// Rejoin as if rebooted: same address, fresh hello, fresh row.
	sendHello(t, client, "churner")
	w2 := recvWelcome(t, client, 10*time.Second)
	if w2.ID == w1.ID {
		t.Fatalf("rejoin reused id %d; want a fresh row", w1.ID)
	}
	waitFor(t, 10*time.Second, "rejoined census", func() bool { return tracker.NumNodes() == 1 })
}

// TestKillHalfFleetRecovery drills the paper's robustness claim at the
// control plane: half the fleet crashes simultaneously and silently; the
// lease sweep must reclaim every orphaned row while the surviving half
// (kept alive by renewals) retains full connectivity after repair.
func TestKillHalfFleetRecovery(t *testing.T) {
	const n = 40
	tracker, client := scenarioTracker(t, TrackerConfig{
		LeaseTimeout: 300 * time.Millisecond,
		OutboxDepth:  4 * n,
	})

	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		sendHello(t, client, fmt.Sprintf("fleet-%d", i))
	}
	for j := 0; j < n; j++ {
		ids[j] = recvWelcome(t, client, 30*time.Second).ID
	}

	// The second half dies at one instant (pure silence). The first half
	// survives: renew its leases from the shared endpoint while the sweep
	// works (handleLease keys renewal by the id in the message).
	deadline := time.Now().Add(20 * time.Second)
	for tracker.NumNodes() > n/2 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stalled: %d rows remain, want %d", tracker.NumNodes(), n/2)
		}
		for j := 0; j < n/2; j++ {
			frame, err := EncodeControl(MsgLease, Lease{ID: ids[j]})
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Send(context.Background(), "tracker", frame); err != nil {
				t.Fatalf("lease renewal: %v", err)
			}
		}
		time.Sleep(25 * time.Millisecond)
	}

	if got := tracker.NumNodes(); got != n/2 {
		t.Fatalf("census after kill wave = %d, want %d", got, n/2)
	}
	if err := tracker.CheckInvariants(); err != nil {
		t.Fatalf("invariants after kill wave: %v", err)
	}
	// Post-repair the survivors must sit at full connectivity — the
	// repair procedure spliced every dead row out of every thread.
	stats := sim.MeasureConnectivity(tracker.Topology())
	if stats.Working != n/2 || stats.FullCount != stats.Working {
		t.Fatalf("survivor connectivity = %d/%d full (working=%d), want all full",
			stats.FullCount, stats.Working, n/2)
	}
}

// TestDupHelloRefreshesLease pins the flash-crowd/lease-sweep interaction
// fix: a joiner whose only traffic is hello retries (its welcome keeps
// missing it, or it is stuck in a long admission wave) must not be lease
// expired — each duplicate hello proves liveness and refreshes the lease.
// The node's Hello.Addr differs from its transport address, so the
// generic touchLease(from) path cannot save it; only the dup-hello branch
// of flushHellos can.
func TestDupHelloRefreshesLease(t *testing.T) {
	tracker, client := scenarioTracker(t, TrackerConfig{
		LeaseTimeout: 150 * time.Millisecond,
	})
	events := tracker.Events()

	sendHello(t, client, "sticky") // Addr "sticky" != transport addr "client"
	w := recvWelcome(t, client, 10*time.Second)

	// Keep re-helloing (and nothing else) well past several lease
	// timeouts; the row must survive throughout.
	stop := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(stop) {
		sendHello(t, client, "sticky")
		if tracker.NumNodes() != 1 {
			t.Fatalf("node expired mid-retry at %v before deadline", time.Until(stop))
		}
		time.Sleep(30 * time.Millisecond)
	}
	// No expiry may have been recorded for it at any point.
	select {
	case ev := <-events:
		if ev.Kind == "expire" && uint64(ev.ID) == w.ID {
			t.Fatalf("retrying joiner was lease-expired: %+v", ev)
		}
	default:
	}
	if tracker.NumNodes() != 1 {
		t.Fatalf("census = %d, want the retrying joiner alive", tracker.NumNodes())
	}
}
