package protocol

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// TestJoinSurvivesHeavyLoss: the hello/welcome exchange must eventually
// succeed over a badly lossy fabric thanks to hello retries and the
// tracker's idempotent duplicate handling.
func TestJoinSurvivesHeavyLoss(t *testing.T) {
	t.Parallel()
	content := randContent(600)
	// 40% loss: single-shot handshakes would fail routinely.
	s := startSession(t, 0, content, transport.WithLoss(0.4), transport.WithSeed(11))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ep, err := s.net.Endpoint("latecomer")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{
		TrackerAddr:      "tracker",
		ComplaintTimeout: 200 * time.Millisecond,
		Seed:             5,
	})
	s.wg.Add(1)
	go func() { defer s.wg.Done(); _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("join never completed despite retries")
	}
	waitComplete(t, node, 60*time.Second)
	got, err := node.Content()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after lossy join")
	}
}

// TestDuplicateHelloGetsSameIdentity: a retried hello must not create a
// second overlay row.
func TestDuplicateHelloGetsSameIdentity(t *testing.T) {
	t.Parallel()
	content := randContent(300)
	s := startSession(t, 1, content)
	// Hand-roll a duplicate hello from the existing node's address.
	hello, err := EncodeControl(MsgHello, Hello{Addr: nodeAddr(0)})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := s.net.Endpoint("prober")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Forge the duplicate via a fresh endpoint: the tracker keys on the
	// Hello.Addr field, not the sender.
	if err := ep.Send(context.Background(), "tracker", hello); err != nil {
		t.Fatal(err)
	}
	// The tracker answers a duplicate hello by re-sending the original
	// welcome to the frame's sender. Receiving it here proves the hello
	// was fully processed — the deterministic point at which to check the
	// population, with no timing window to guess.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		_, frame, err := ep.Recv(ctx)
		if err != nil {
			t.Fatalf("welcome re-send never arrived: %v", err)
		}
		if typ, _, derr := DecodeControl(frame); derr == nil && typ == MsgWelcome {
			break
		}
	}
	if n := s.tracker.NumNodes(); n != 1 {
		t.Fatalf("duplicate hello changed population to %d", n)
	}
}

// TestLayeredSessionOverProtocol drives the layered source + node through
// the raw protocol layer.
func TestLayeredSessionOverProtocol(t *testing.T) {
	t.Parallel()
	content := randContent(1024)
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork()
	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	lp := rlnc.LayeredParams{
		Params:  rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32},
		Weights: []float64{2, 1},
	}
	source, err := NewLayeredSource(trackerEP, 8, lp, content, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !source.Session().Layered() {
		t.Fatal("layered source session not layered")
	}
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: 8, D: 2, Session: source.Session(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &session{net: net, tracker: tracker, source: source, cancel: cancel, wg: new(sync.WaitGroup), content: content}
	s.wg.Add(2)
	go func() { defer s.wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer s.wg.Done(); _ = source.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		net.Close()
		s.wg.Wait()
	})

	node := addNodeWithBehavior(t, s, ctx, "viewer", Honest)
	waitComplete(t, node, 30*time.Second)
	got, err := node.Content()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("layered protocol content mismatch")
	}
	if node.CompletedLayers() != 2 {
		t.Fatalf("layers = %d, want 2", node.CompletedLayers())
	}
	base, err := node.Layer(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, content[:512]) {
		t.Fatal("base layer mismatch")
	}
}
