//go:build !race

package protocol

// raceEnabled reports whether the race detector instruments this build;
// alloc-count guards are skipped under it (the detector itself allocates).
const raceEnabled = false
