package protocol

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

func TestControlEncodeDecode(t *testing.T) {
	t.Parallel()
	frame, err := EncodeControl(MsgHello, Hello{Addr: "n1", Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := DecodeControl(frame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgHello {
		t.Fatalf("type = %d", typ)
	}
	if !bytes.Contains(payload, []byte(`"n1"`)) {
		t.Fatalf("payload = %s", payload)
	}
	if IsData(frame) {
		t.Fatal("control frame classified as data")
	}
	if _, _, err := DecodeControl([]byte{frameData, 0}); err == nil {
		t.Fatal("data frame decoded as control")
	}
	if _, _, err := DecodeControl(nil); err == nil {
		t.Fatal("empty frame decoded as control")
	}
}

func TestDataEncodeDecode(t *testing.T) {
	t.Parallel()
	p := &rlnc.Packet{Gen: 3, Coeff: []uint16{1, 0, 2}, Payload: []byte{9, 8, 7, 6}}
	frame := EncodeData(gf.F256, 5, 0, p)
	if !IsData(frame) {
		t.Fatal("data frame not classified as data")
	}
	th, emit, q, err := DecodeData(gf.F256, frame)
	if err != nil {
		t.Fatal(err)
	}
	if th != 5 || emit != 0 || q.Gen != 3 || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("decoded %d %d %+v", th, emit, q)
	}
	if _, _, _, err := DecodeData(gf.F256, []byte{frameControl, 'x'}); err == nil {
		t.Fatal("control frame decoded as data")
	}
}

func TestStampedDataEncodeDecode(t *testing.T) {
	t.Parallel()
	p := &rlnc.Packet{Gen: 7, Coeff: []uint16{0, 1, 3}, Payload: []byte{1, 2, 3, 4}}
	const stamp = int64(1_700_000_000_123_456_789)
	frame := EncodeData(gf.F256, 9, stamp, p)
	if !IsData(frame) {
		t.Fatal("stamped data frame not classified as data")
	}
	th, emit, q, err := DecodeData(gf.F256, frame)
	if err != nil {
		t.Fatal(err)
	}
	if th != 9 || emit != stamp || q.Gen != 7 || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("decoded %d %d %+v", th, emit, q)
	}
	// A truncated stamped frame must fail loudly, not misparse the stamp.
	if _, _, _, err := DecodeData(gf.F256, frame[:8]); err == nil {
		t.Fatal("truncated stamped frame decoded")
	}
}

func TestSessionParamsField(t *testing.T) {
	t.Parallel()
	for bits, want := range map[int]string{1: "GF(2)", 8: "GF(256)", 16: "GF(65536)"} {
		f, err := SessionParams{FieldBits: bits}.Field()
		if err != nil {
			t.Fatal(err)
		}
		if f.Name() != want {
			t.Fatalf("bits %d -> %s", bits, f.Name())
		}
	}
	if _, err := (SessionParams{FieldBits: 7}).Field(); err == nil {
		t.Fatal("bad field bits accepted")
	}
}

// session spins up a tracker + source over an in-memory network and joins
// n nodes, returning everything needed by the integration tests.
type session struct {
	net     *transport.Network
	tracker *Tracker
	source  *Source
	nodes   []*Node
	cancel  context.CancelFunc
	wg      *sync.WaitGroup
	content []byte
}

func startSession(t *testing.T, n int, content []byte, opts ...transport.NetworkOption) *session {
	return startSessionKD(t, n, 8, 2, content, opts...)
}

func startSessionKD(t *testing.T, n, k, d int, content []byte, opts ...transport.NetworkOption) *session {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	net := transport.NewNetwork(opts...)
	var wg sync.WaitGroup

	trackerEP, err := net.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 32}
	source, err := NewSource(trackerEP, k, params, content, 42)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: k, D: d,
		Session: source.Session(),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() { defer wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer wg.Done(); _ = source.Run(ctx) }()

	s := &session{net: net, tracker: tracker, source: source, cancel: cancel, wg: &wg, content: content}
	for i := 0; i < n; i++ {
		s.nodes = append(s.nodes, s.addNode(t, ctx, i))
	}
	t.Cleanup(func() {
		// Whatever the test did to the overlay, the matrix and the
		// tracker's bookkeeping must still satisfy the §3 invariants.
		if err := tracker.CheckInvariants(); err != nil {
			t.Errorf("tracker invariants at teardown: %v", err)
		}
		cancel()
		net.Close()
		wg.Wait()
	})
	return s
}

func (s *session) addNode(t *testing.T, ctx context.Context, i int) *Node {
	t.Helper()
	ep, err := s.net.Endpoint(nodeAddr(i))
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{
		TrackerAddr:      "tracker",
		ComplaintTimeout: 200 * time.Millisecond,
		Seed:             int64(100 + i),
	})
	s.wg.Add(1)
	go func() { defer s.wg.Done(); _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("node %d join timed out", i)
	}
	return node
}

func nodeAddr(i int) string { return "node" + string(rune('A'+i)) }

func randContent(n int) []byte {
	r := rand.New(rand.NewSource(99))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func waitComplete(t *testing.T, n *Node, within time.Duration) {
	t.Helper()
	select {
	case <-n.Completed():
	case <-time.After(within):
		t.Fatalf("node %d incomplete after %v (progress %.2f)", n.ID(), within, n.Progress())
	}
}

func TestSingleNodeBroadcast(t *testing.T) {
	t.Parallel()
	content := randContent(500)
	s := startSession(t, 1, content)
	waitComplete(t, s.nodes[0], 10*time.Second)
	got, err := s.nodes[0].Content()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch")
	}
	if s.tracker.NumNodes() != 1 {
		t.Fatalf("tracker nodes = %d", s.tracker.NumNodes())
	}
}

func TestMultiNodeBroadcastThroughOverlay(t *testing.T) {
	t.Parallel()
	content := randContent(2000)
	s := startSession(t, 8, content)
	for _, n := range s.nodes {
		waitComplete(t, n, 20*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("node %d content mismatch", n.ID())
		}
	}
	// The tracker processes Complete messages asynchronously.
	waitFor(t, 5*time.Second, "all 8 completion reports", func() bool {
		return s.tracker.CompletedCount() == 8
	})
	// Later nodes actually received forwarded (recoded) traffic: every
	// node received at least GenSize*gens innovative packets.
	for _, n := range s.nodes {
		_, innovative := n.Stats()
		if innovative < 8 {
			t.Fatalf("node %d innovative = %d", n.ID(), innovative)
		}
	}
}

func TestGracefulLeaveKeepsOthersAlive(t *testing.T) {
	t.Parallel()
	content := randContent(1500)
	s := startSession(t, 5, content)
	ctx := context.Background()
	// Let the session warm up, then node 1 (an early joiner, hence a
	// parent of later nodes) leaves gracefully.
	waitComplete(t, s.nodes[0], 20*time.Second)
	if err := s.nodes[1].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.nodes[1].Left():
	case <-time.After(5 * time.Second):
		t.Fatal("leave not acknowledged")
	}
	// Everyone else still completes.
	for _, n := range []*Node{s.nodes[2], s.nodes[3], s.nodes[4]} {
		waitComplete(t, n, 20*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after leave")
		}
	}
	if s.tracker.NumNodes() != 4 {
		t.Fatalf("tracker nodes = %d, want 4", s.tracker.NumNodes())
	}
}

func TestCrashRepairViaComplaints(t *testing.T) {
	t.Parallel()
	content := randContent(1200)
	// k = d = 2 forces a chain: server -> n0 -> n1 -> n2 -> n3, so the
	// crashed head is deterministically everyone's upstream and n1 is
	// guaranteed to be its direct child.
	s := startSessionKD(t, 4, 2, 2, content)
	// Crash node 0 without a goodbye: close its endpoint so its streams
	// go silent mid-download.
	s.net.CloseEndpoint(nodeAddr(0))
	// The children detect silence, complain, and the tracker splices the
	// dead node out; the remaining nodes finish the download.
	for _, n := range s.nodes[1:] {
		waitComplete(t, n, 30*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after crash repair")
		}
	}
	// The tracker eventually repaired (removed) the crashed node.
	waitFor(t, 10*time.Second, "crashed node repaired away", func() bool {
		return s.tracker.NumNodes() == 3
	})
}

func TestBroadcastOverLossyNetwork(t *testing.T) {
	t.Parallel()
	content := randContent(800)
	// 5% frame loss: ergodic failures per §2; RLNC absorbs them.
	s := startSession(t, 4, content, transport.WithLoss(0.05), transport.WithSeed(5))
	for _, n := range s.nodes {
		waitComplete(t, n, 30*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over lossy network")
		}
	}
}

func TestJoinRejectionBadDegree(t *testing.T) {
	t.Parallel()
	content := randContent(100)
	s := startSession(t, 1, content)
	ep, err := s.net.Endpoint("greedy")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{TrackerAddr: "tracker", Degree: 99, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err == nil {
			t.Fatal("degree 99 join accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no join response")
	}
}

func TestHeterogeneousDegreeJoin(t *testing.T) {
	t.Parallel()
	content := randContent(600)
	s := startSession(t, 2, content)
	ep, err := s.net.Endpoint("t1node")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NodeConfig{TrackerAddr: "tracker", Degree: 6, Seed: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = node.Run(ctx) }()
	select {
	case err := <-node.Joined():
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join timeout")
	}
	waitComplete(t, node, 20*time.Second)
	got, err := node.Content()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch for high-degree node")
	}
}

func TestBroadcastOverTCP(t *testing.T) {
	t.Parallel()
	content := randContent(800)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// LIFO: cancel must run BEFORE wg.Wait so the goroutines can exit.
	defer wg.Wait()
	defer cancel()

	trackerEP, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer trackerEP.Close()
	params := rlnc.Params{Field: gf.F256, GenSize: 8, PacketSize: 64}
	source, err := NewSource(trackerEP, 6, params, content, 1)
	if err != nil {
		t.Fatal(err)
	}
	source.RoundInterval = time.Millisecond
	tracker, err := NewTracker(trackerEP, source, TrackerConfig{
		K: 6, D: 2, Session: source.Session(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() { defer wg.Done(); _ = tracker.Run(ctx) }()
	go func() { defer wg.Done(); _ = source.Run(ctx) }()

	var nodes []*Node
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		node := NewNode(ep, NodeConfig{TrackerAddr: trackerEP.Addr(), Seed: int64(i)})
		wg.Add(1)
		go func() { defer wg.Done(); _ = node.Run(ctx) }()
		select {
		case err := <-node.Joined():
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("tcp join timeout")
		}
		nodes = append(nodes, node)
	}
	for _, n := range nodes {
		waitComplete(t, n, 30*time.Second)
		got, err := n.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch over TCP")
		}
	}
}

// TestSourceSystematicEmission pins the systematic schedule end to end:
// with Systematic on, a thread serving a generation emits its GenSize
// source packets uncoded (flagged, in index order) before any random
// combination, the flag survives the wire, and a decoder fed the capture
// recovers the content.
func TestSourceSystematicEmission(t *testing.T) {
	t.Parallel()
	params := rlnc.Params{Field: gf.F256, GenSize: 4, PacketSize: 32}
	content := randContent(params.GenSize * params.PacketSize) // one generation
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := transport.NewNetwork()
	defer net.Close()
	srcEP, err := net.Endpoint("src")
	if err != nil {
		t.Fatal(err)
	}
	sinkEP, err := net.Endpoint("sink")
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewSource(srcEP, 1, params, content, 5)
	if err != nil {
		t.Fatal(err)
	}
	source.Systematic = true
	source.RoundInterval = time.Millisecond
	source.SetChild(0, "sink")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = source.Run(ctx) }()
	defer wg.Wait()
	defer cancel()

	dec, err := rlnc.NewDecoder(params.Field, 0, params.GenSize, params.PacketSize)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []*rlnc.Packet
	for len(pkts) < params.GenSize+3 {
		rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
		_, frame, err := sinkEP.Recv(rctx)
		rcancel()
		if err != nil {
			t.Fatal(err)
		}
		if !IsData(frame) {
			continue
		}
		_, _, p, err := DecodeData(params.Field, frame)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	for i, p := range pkts {
		if i < params.GenSize {
			if !p.Sys || int(p.SysIdx) != i {
				t.Fatalf("packet %d: sys=%v idx=%d, want systematic index %d", i, p.Sys, p.SysIdx, i)
			}
		} else if p.Sys {
			t.Fatalf("packet %d still systematic after full pass", i)
		}
		if _, err := dec.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Source()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, row := range got {
		buf.Write(row)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("decoded content mismatch")
	}
}
