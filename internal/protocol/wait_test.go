package protocol

// Test-synchronization helpers. Every wait in the protocol suite funnels
// through these two functions instead of ad-hoc sleep loops: waitFor
// polls a condition at millisecond granularity (so tests proceed the
// moment the condition holds instead of burning a fixed sleep), and
// waitEvent consumes the tracker's event stream (so tests key on the
// control plane saying an operation happened rather than guessing how
// long it takes).

import (
	"testing"
	"time"
)

// waitFor polls cond every two milliseconds until it holds, failing the
// test if it does not within timeout.
func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitEvent consumes the tracker event stream until an event satisfies
// pred, failing the test after timeout. Unrelated events are discarded.
func waitEvent(t testing.TB, events <-chan TrackerEvent, timeout time.Duration, what string, pred func(TrackerEvent) bool) TrackerEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-events:
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out after %v waiting for event %s", timeout, what)
		}
	}
}
