package protocol

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ncast/internal/gf"
	"ncast/internal/obs"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// Behavior selects how a node participates in the data plane. The
// non-honest behaviors implement the §5/§7 attack models.
type Behavior int

const (
	// Honest nodes re-mix and forward fresh random combinations.
	Honest Behavior = iota
	// EntropyAttacker implements the §7 "entropy destruction attack":
	// the node decodes for itself but forwards only trivial combinations
	// (it replays one fixed packet per generation), passing
	// bandwidth-shaped but information-free traffic. The paper notes this
	// is worse than a failure attack in the long run because the victim's
	// threads look alive — keepalives flow and complaints never fire.
	EntropyAttacker
	// Freeloader receives and decodes but forwards no data at all while
	// keeping its control plane alive — an intentional §5 failure attack
	// that does not even cost the attacker its power supply.
	Freeloader
)

// NodeConfig parameterises a client node.
type NodeConfig struct {
	// TrackerAddr is the tracker's transport address.
	TrackerAddr string
	// Degree requests a non-default d (heterogeneous bandwidth, §5).
	Degree int
	// ComplaintTimeout is how long a thread may stay silent before the
	// node complains to the tracker (the §3 "eventually the children of
	// the failed node complain"). Zero disables complaints.
	ComplaintTimeout time.Duration
	// Behavior selects honest or adversarial forwarding.
	Behavior Behavior
	// Seed drives recoding randomness.
	Seed int64
	// DecodeWorkers sets the size of the worker pool that absorbs data
	// packets into per-generation recoders. Packets are sharded to
	// workers by generation id, so each generation's Gaussian
	// elimination stays single-threaded while distinct generations
	// decode in parallel. 0 or 1 absorbs packets inline on the receive
	// loop (the prior behavior).
	DecodeWorkers int
	// LinkSeq turns on link telemetry's wire stamping: outbound data
	// frames carry per-(sender, thread) sequence numbers and keepalives
	// become RTT echo probes. Off (the default) keeps every emitted frame
	// byte-identical to the legacy encodings; inbound accounting is
	// always on, so a node still scores peers that stamp.
	LinkSeq bool
	// Obs carries optional instrumentation; nil leaves the node (and its
	// codecs) uninstrumented at zero cost.
	Obs *obs.NodeMetrics
	// GenSink, when non-nil, receives every generation-lifecycle
	// transition (first packet, rank quartiles, decode) — the feed behind
	// ncast-sim's -timeline and any live observer. Called from decode
	// workers; must be safe for concurrent use.
	GenSink obs.GenSink
}

// Node is an overlay client: it joins via the hello protocol, receives
// unit streams from its parents, re-mixes them with RLNC, forwards along
// its threads, decodes the content, and participates in repair by
// complaining about silent parents.
type Node struct {
	ep  transport.Endpoint
	cfg NodeConfig
	rng *rand.Rand

	mu         sync.Mutex
	id         uint64
	joined     bool
	field      gf.Field
	params     rlnc.Params
	totalGens  int
	contentLen int
	layerSizes []int    // non-empty in layered mode
	genIDs     []uint32 // every valid (possibly namespaced) generation id
	genSet     map[uint32]bool
	threads    []int
	recoders   map[uint32]*rlnc.Recoder
	gensDone   int
	childOf    map[int]string
	parentOf   map[int]string
	lastRecv   map[int]time.Time
	complete   bool
	innovative int
	received   int
	hbGen      int
	// seqOf is the next outbound sequence number per thread (LinkSeq
	// only); links scores every inbound peer — loss from sequence gaps,
	// RTT from keepalive echoes, innovation per parent.
	seqOf map[int]uint32
	links *obs.LinkTracker
	// traceOf holds, per generation, the dissemination-trace context this
	// node first received for a sampled generation: the trace ID and the
	// node's own hop depth (max over received frames of the same trace,
	// per the merge rule — under recoding a node may hear a traced
	// generation at several depths). Empty unless the source samples.
	traceOf map[uint32]traceState
	// hoplog buffers hop spans between stats reports; created lazily on
	// the first traced receive so untraced sessions allocate nothing.
	hoplog *obs.HopLog
	// lifecycle records per-generation spans (first packet, rank
	// quartiles, decode completion, end-to-end delay); created on the
	// first welcome, and kept across re-joins since decoded state
	// survives expulsion.
	lifecycle *obs.GenTracker
	// complaintsSent and leaseSent count control messages this node has
	// issued, for the periodic stats report.
	complaintsSent uint64
	leaseSent      uint64
	// leaseEvery is the tracker-announced lease renewal interval (zero
	// when the tracker runs no lease sweep); statsEvery is the announced
	// telemetry reporting interval (zero disables reporting).
	leaseEvery time.Duration
	statsEvery time.Duration
	// leaving is set by Leave; left once leftCh is closed. Together they
	// make MsgGoodbyeAck handling idempotent: an unsolicited or duplicate
	// ack must neither tear down Run nor double-close leftCh.
	leaving bool
	left    bool
	// replay holds, per generation, the fixed packet an EntropyAttacker
	// replays instead of re-mixing.
	replay map[uint32]*rlnc.Packet

	// decodeQ holds the per-worker packet queues when DecodeWorkers > 1;
	// nil means inline decoding. Written once in Run before the receive
	// loop and read only from it, so no lock is needed.
	decodeQ  []chan decodeJob
	decodeWG sync.WaitGroup

	joinedCh   chan error
	completeCh chan struct{}
	leftCh     chan struct{}
}

// decodeJob carries one received packet to a decode worker, with the
// session field, recoder, trace context, and source-emission stamp
// captured under n.mu at enqueue time.
type decodeJob struct {
	f    gf.Field
	th   int
	from string
	emit int64
	tc   TraceContext
	rc   *rlnc.Recoder
	p    *rlnc.Packet
}

// traceState is the per-generation trace merge state: the trace ID the
// node adopted (first seen wins) and the node's hop depth under that
// trace (max over received frames).
type traceState struct {
	id    uint64
	depth uint8
}

// hopLogCap bounds the per-node hop-span buffer between stats reports;
// maxTraceHopsPerReport bounds the compacted cells shipped per report so
// a traced burst cannot bloat the control plane.
const (
	hopLogCap             = 4096
	maxTraceHopsPerReport = 256
	// maxLinksPerReport bounds the link scorecards shipped per stats
	// report; degree is small, so the cap only matters for a node that
	// heard from many transient peers.
	maxLinksPerReport = 64
)

// NewNode creates a node bound to ep.
func NewNode(ep transport.Endpoint, cfg NodeConfig) *Node {
	return &Node{
		ep:         ep,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		recoders:   make(map[uint32]*rlnc.Recoder),
		traceOf:    make(map[uint32]traceState),
		replay:     make(map[uint32]*rlnc.Packet),
		childOf:    make(map[int]string),
		parentOf:   make(map[int]string),
		lastRecv:   make(map[int]time.Time),
		seqOf:      make(map[int]uint32),
		links:      obs.NewLinkTracker(0),
		joinedCh:   make(chan error, 1),
		completeCh: make(chan struct{}),
		leftCh:     make(chan struct{}),
	}
}

// ID returns the node's overlay id (0 before the welcome arrives).
func (n *Node) ID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.id
}

// Joined resolves once the tracker accepts or rejects the hello.
func (n *Node) Joined() <-chan error { return n.joinedCh }

// Completed closes once the content is fully decoded.
func (n *Node) Completed() <-chan struct{} { return n.completeCh }

// Left closes once a graceful leave is acknowledged.
func (n *Node) Left() <-chan struct{} { return n.leftCh }

// Progress returns the fraction of total rank gathered in [0,1].
func (n *Node) Progress() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.totalGens == 0 {
		return 0
	}
	rank := 0
	for _, rc := range n.recoders {
		rank += rc.Rank()
	}
	return float64(rank) / float64(n.totalGens*n.params.GenSize)
}

// Stats returns (received, innovative) packet counts.
func (n *Node) Stats() (received, innovative int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.received, n.innovative
}

// Health summarises the node's download state for obs snapshots.
func (n *Node) Health() obs.NodeHealth {
	n.mu.Lock()
	defer n.mu.Unlock()
	rank := 0
	for _, rc := range n.recoders {
		rank += rc.Rank()
	}
	h := obs.NodeHealth{
		ID:         n.id,
		Joined:     n.joined,
		Degree:     len(n.threads),
		Rank:       rank,
		MaxRank:    n.totalGens * n.params.GenSize,
		GensDone:   n.gensDone,
		TotalGens:  n.totalGens,
		Received:   n.received,
		Innovative: n.innovative,
		Complete:   n.complete,
	}
	if h.MaxRank > 0 {
		h.Progress = float64(rank) / float64(h.MaxRank)
	}
	return h
}

// Content reassembles the decoded blob; it errors until completion.
func (n *Node) Content() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.complete {
		return nil, rlnc.ErrIncomplete
	}
	if len(n.layerSizes) > 0 {
		out := make([]byte, 0, n.contentLen)
		for l := range n.layerSizes {
			slab, err := n.layerBytesLocked(l)
			if err != nil {
				return nil, err
			}
			out = append(out, slab...)
		}
		return out, nil
	}
	out := make([]byte, 0, n.contentLen)
	for _, g := range n.genIDs {
		rc := n.recoders[g]
		src, err := rc.Decode()
		if err != nil {
			return nil, err
		}
		for _, pkt := range src {
			out = append(out, pkt...)
		}
	}
	return out[:n.contentLen], nil
}

// CompletedLayers returns, for layered sessions, how many consecutive
// priority layers (from the base) are fully decoded — the "resolution"
// currently playable. Flat sessions report 1 when complete, else 0.
func (n *Node) CompletedLayers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.layerSizes) == 0 {
		if n.complete {
			return 1
		}
		return 0
	}
	done := 0
	for l := range n.layerSizes {
		if !n.layerCompleteLocked(l) {
			break
		}
		done++
	}
	return done
}

// Layer returns the decoded bytes of priority layer l once it completes.
func (n *Node) Layer(l int) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l < 0 || l >= len(n.layerSizes) {
		return nil, fmt.Errorf("protocol: layer %d out of range [0,%d)", l, len(n.layerSizes))
	}
	if !n.layerCompleteLocked(l) {
		return nil, rlnc.ErrIncomplete
	}
	return n.layerBytesLocked(l)
}

// layerCompleteLocked reports whether every generation of layer l decoded.
func (n *Node) layerCompleteLocked(l int) bool {
	gens := n.params.Generations(n.layerSizes[l])
	for g := 0; g < gens; g++ {
		rc, ok := n.recoders[rlnc.LayerGen(l, g)]
		if !ok || !rc.Complete() {
			return false
		}
	}
	return true
}

// layerBytesLocked reassembles layer l (callers ensure completeness).
func (n *Node) layerBytesLocked(l int) ([]byte, error) {
	size := n.layerSizes[l]
	gens := n.params.Generations(size)
	out := make([]byte, 0, size)
	for g := 0; g < gens; g++ {
		rc := n.recoders[rlnc.LayerGen(l, g)]
		src, err := rc.Decode()
		if err != nil {
			return nil, err
		}
		for _, pkt := range src {
			out = append(out, pkt...)
		}
	}
	return out[:size], nil
}

// Run joins the session and processes messages until the context is
// cancelled or the node leaves gracefully. It always sends the hello
// itself; callers watch Joined / Completed / Left.
func (n *Node) Run(ctx context.Context) error {
	// Scope the helper loops (heartbeats, complaints) to Run's lifetime:
	// after a graceful leave Run returns, and a departed node must stop
	// proving liveness to its former children.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	hello, err := EncodeControl(MsgHello, Hello{Addr: n.ep.Addr(), Degree: n.cfg.Degree})
	if err != nil {
		return err
	}
	if err := n.ep.Send(ctx, n.cfg.TrackerAddr, hello); err != nil {
		return fmt.Errorf("protocol: hello: %w", err)
	}
	// Retry the hello whenever the node is un-joined: over lossy links
	// either the hello or the welcome can vanish, and after an expulsion
	// the re-join hello can be lost too. The tracker answers duplicates
	// idempotently, so over-sending is harmless.
	go func() {
		ticker := time.NewTicker(500 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			n.mu.Lock()
			joined := n.joined
			n.mu.Unlock()
			if !joined {
				_ = n.ep.Send(ctx, n.cfg.TrackerAddr, hello) //nolint:errcheck // retried
			}
		}
	}()

	// The complaint and heartbeat tickers run only while the context
	// lives.
	if n.cfg.ComplaintTimeout > 0 {
		go n.complaintLoop(ctx)
		go n.heartbeatLoop(ctx)
		if n.cfg.LinkSeq {
			go n.probeLoop(ctx)
		}
	}
	// The lease and stats loops idle until a welcome announces intervals.
	go n.leaseLoop(ctx)
	go n.statsLoop(ctx)

	if n.cfg.DecodeWorkers > 1 {
		n.decodeQ = make([]chan decodeJob, n.cfg.DecodeWorkers)
		for i := range n.decodeQ {
			q := make(chan decodeJob, 64)
			n.decodeQ[i] = q
			n.decodeWG.Add(1)
			go n.decodeWorker(ctx, q)
		}
		// The receive loop is the only sender, so once Run unwinds no
		// more jobs can arrive and the queues can close.
		defer func() {
			for _, q := range n.decodeQ {
				close(q)
			}
			n.decodeWG.Wait()
		}()
	}

	for {
		from, frame, err := n.ep.Recv(ctx)
		if err != nil {
			return fmt.Errorf("protocol: node recv: %w", err)
		}
		if IsKeepalive(frame) {
			n.handleKeepalive(ctx, from, frame)
			continue
		}
		if IsData(frame) {
			n.handleData(ctx, from, frame)
			continue
		}
		typ, payload, err := DecodeControl(frame)
		if err != nil {
			continue
		}
		done, err := n.handleControl(ctx, typ, payload)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

func (n *Node) handleControl(ctx context.Context, typ MsgType, payload json.RawMessage) (done bool, err error) {
	switch typ {
	case MsgWelcome:
		var w Welcome
		if err := json.Unmarshal(payload, &w); err != nil {
			return false, nil
		}
		if err := n.applyWelcome(w); err != nil {
			select {
			case n.joinedCh <- err:
			default: // re-join welcome; nobody is waiting
			}
			return true, err
		}
		select {
		case n.joinedCh <- nil:
		default: // re-join welcome; nobody is waiting
		}
	case MsgRedirect:
		var r Redirect
		if err := json.Unmarshal(payload, &r); err != nil {
			return false, nil
		}
		n.applyRedirect(ctx, r)
	case MsgGoodbyeAck:
		// Only a node that actually said good-bye may act on the ack: a
		// stale or forged ack to a node that never called Leave would
		// otherwise tear down Run, and a duplicate ack would panic on the
		// second close of leftCh.
		n.mu.Lock()
		acked := n.leaving && !n.left
		if acked {
			n.left = true
		}
		n.mu.Unlock()
		if !acked {
			return false, nil
		}
		close(n.leftCh)
		return true, nil
	case MsgExpelled:
		// A child's complaint got this node repaired away while it was
		// alive (slow link, lost redirect). Re-join with a fresh hello:
		// decoded generations survive, only the overlay position resets.
		n.mu.Lock()
		n.joined = false
		n.threads = nil
		n.childOf = make(map[int]string)
		n.parentOf = make(map[int]string)
		n.lastRecv = make(map[int]time.Time)
		n.mu.Unlock()
		hello, err := EncodeControl(MsgHello, Hello{Addr: n.ep.Addr(), Degree: n.cfg.Degree})
		if err == nil {
			_ = n.ep.Send(ctx, n.cfg.TrackerAddr, hello) //nolint:errcheck // best-effort
		}
	case MsgThreadDropped:
		var td ThreadDropped
		if err := json.Unmarshal(payload, &td); err != nil {
			return false, nil
		}
		n.mu.Lock()
		for i, th := range n.threads {
			if th == td.Thread {
				n.threads = append(n.threads[:i], n.threads[i+1:]...)
				break
			}
		}
		delete(n.childOf, td.Thread)
		delete(n.lastRecv, td.Thread)
		delete(n.parentOf, td.Thread)
		n.mu.Unlock()
	case MsgThreadAdded:
		var ta ThreadAdded
		if err := json.Unmarshal(payload, &ta); err != nil {
			return false, nil
		}
		n.mu.Lock()
		present := false
		for _, th := range n.threads {
			if th == ta.Thread {
				present = true
				break
			}
		}
		if !present {
			n.threads = append(n.threads, ta.Thread)
		}
		n.lastRecv[ta.Thread] = time.Now()
		if ta.ChildAddr != "" {
			n.childOf[ta.Thread] = ta.ChildAddr
		}
		n.mu.Unlock()
		if ta.ChildAddr != "" {
			// Serve the displaced child immediately with a catch-up burst.
			n.applyRedirect(ctx, Redirect{Thread: ta.Thread, ChildAddr: ta.ChildAddr})
		}
	case MsgError:
		var e ErrorMsg
		if err := json.Unmarshal(payload, &e); err != nil {
			return false, nil
		}
		n.mu.Lock()
		joined := n.joined
		n.mu.Unlock()
		if !joined {
			rejection := fmt.Errorf("protocol: join rejected: %s", e.Reason)
			n.joinedCh <- rejection
			return true, rejection
		}
	}
	return false, nil
}

func (n *Node) applyWelcome(w Welcome) error {
	params, err := w.Session.Params()
	if err != nil {
		return err
	}
	if w.Session.ContentLen <= 0 {
		return errors.New("protocol: welcome without content length")
	}
	genIDs, err := sessionGenIDs(w.Session, params)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.id = w.ID
	n.joined = true
	n.field = params.Field
	n.params = params
	n.contentLen = w.Session.ContentLen
	n.layerSizes = append([]int(nil), w.Session.LayerSizes...)
	n.genIDs = genIDs
	n.genSet = make(map[uint32]bool, len(genIDs))
	for _, g := range genIDs {
		n.genSet[g] = true
	}
	n.totalGens = len(genIDs)
	n.leaseEvery = time.Duration(w.LeaseMillis) * time.Millisecond
	n.statsEvery = time.Duration(w.StatsMillis) * time.Millisecond
	if n.lifecycle == nil {
		n.lifecycle = obs.NewGenTracker(n.ep.Addr(), params.GenSize, n.cfg.Obs, n.cfg.GenSink)
	}
	n.threads = append([]int(nil), w.Threads...)
	now := time.Now()
	for _, th := range w.Threads {
		n.lastRecv[th] = now
	}
	return nil
}

// sessionGenIDs enumerates every generation id a session uses: a flat
// session numbers them 0..G-1; a layered one namespaces per layer.
func sessionGenIDs(sp SessionParams, params rlnc.Params) ([]uint32, error) {
	if !sp.Layered() {
		g := params.Generations(sp.ContentLen)
		ids := make([]uint32, 0, g)
		for i := 0; i < g; i++ {
			ids = append(ids, uint32(i))
		}
		return ids, nil
	}
	total := 0
	var ids []uint32
	for l, size := range sp.LayerSizes {
		if size <= 0 {
			return nil, fmt.Errorf("protocol: layer %d size %d", l, size)
		}
		total += size
		for g := 0; g < params.Generations(size); g++ {
			ids = append(ids, rlnc.LayerGen(l, g))
		}
	}
	if total != sp.ContentLen {
		return nil, fmt.Errorf("protocol: layer sizes sum %d, content %d", total, sp.ContentLen)
	}
	return ids, nil
}

func (n *Node) applyRedirect(ctx context.Context, r Redirect) {
	n.mu.Lock()
	if r.ChildAddr == "" {
		delete(n.childOf, r.Thread)
		n.mu.Unlock()
		return
	}
	n.childOf[r.Thread] = r.ChildAddr
	// Catch-up burst: one fresh combination per generation we already
	// hold, so a late joiner is not starved until the round-robin source
	// cycles back.
	type burst struct {
		frame []byte
	}
	var bursts []burst
	for _, g := range n.genIDs {
		rc, ok := n.recoders[g]
		if !ok || rc.Rank() == 0 {
			continue
		}
		if p := n.emitPacketLocked(g, rc); p != nil {
			bursts = append(bursts, burst{frame: EncodeDataSeq(n.field, r.Thread,
				n.nextSeqLocked(r.Thread), n.lifecycle.EmitStamp(g), n.forwardTraceLocked(g), p)})
			p.Release()
		}
	}
	child := r.ChildAddr
	n.mu.Unlock()
	for _, b := range bursts {
		n.sendData(ctx, child, b.frame)
	}
}

func (n *Node) handleData(ctx context.Context, from string, frame []byte) {
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return
	}
	th, seq, emit, tc, p, err := DecodeDataSeq(n.field, frame)
	if err != nil {
		n.mu.Unlock()
		return
	}
	now := time.Now()
	// Score the link before any protocol-level gating: loss estimation is
	// about what the wire delivered, and a frame for a foreign generation
	// still proves the link carried it.
	n.links.ObserveFrame(from, th, seq, len(frame), now.UnixNano())
	if !n.genSet[p.Gen] {
		n.mu.Unlock()
		p.Release()
		return
	}
	m := n.cfg.Obs
	n.received++
	if m != nil {
		m.Received.Inc()
	}
	n.lastRecv[th] = now
	n.parentOf[th] = from
	rc, ok := n.recoders[p.Gen]
	if !ok {
		rc, err = rlnc.NewRecoder(n.field, p.Gen, n.params.GenSize, n.params.PacketSize)
		if err != nil {
			n.mu.Unlock()
			p.Release()
			return
		}
		if m != nil {
			rc.Instrument(m.Codec)
		}
		n.recoders[p.Gen] = rc
	}
	f := n.field
	n.mu.Unlock()

	if n.decodeQ == nil {
		n.absorb(ctx, f, th, from, emit, tc, rc, p)
		return
	}
	select {
	case n.decodeQ[int(p.Gen)%len(n.decodeQ)] <- decodeJob{f: f, th: th, from: from, emit: emit, tc: tc, rc: rc, p: p}:
	default:
		// A saturated decode worker behaves like a congested link: the
		// packet is dropped, which RLNC absorbs by design.
		p.Release()
	}
}

// decodeWorker drains one shard of the decode queue until Run closes it.
func (n *Node) decodeWorker(ctx context.Context, q <-chan decodeJob) {
	defer n.decodeWG.Done()
	for j := range q {
		n.absorb(ctx, j.f, j.th, j.from, j.emit, j.tc, j.rc, j.p)
	}
}

// absorb performs the Gaussian elimination for one received packet —
// outside n.mu, so independent generations can run it concurrently —
// then re-locks for node bookkeeping and forwards one packet of the same
// generation down the node's own thread, preserving unit flow per
// thread. It consumes p (released back to the packet pool).
func (n *Node) absorb(ctx context.Context, f gf.Field, th int, from string, emit int64, tc TraceContext, rc *rlnc.Recoder, p *rlnc.Packet) {
	m := n.cfg.Obs
	// Stamp the arrival before the Gaussian elimination so the hop span
	// measures propagation, not local decode work. Untraced frames (the
	// overwhelming majority at realistic sampling rates) skip the clock.
	var arrival int64
	if tc.Traced() {
		arrival = time.Now().UnixNano()
	}
	wasComplete := rc.Complete()
	innovative, err := rc.Add(p)
	if err != nil {
		p.Release()
		return
	}
	// Record the lifecycle transition(s) this packet caused: first-seen,
	// rank quartiles, decode completion with end-to-end delay against the
	// frame's source-emission stamp. The tracker is created with the
	// welcome, so a pre-join packet (impossible: handleData gates on
	// joined) never races the nil check.
	n.mu.Lock()
	lc := n.lifecycle
	n.mu.Unlock()
	lc.Observe(p.Gen, emit, rc.Rank())
	n.links.ObservePacket(from, innovative)
	n.mu.Lock()
	if innovative {
		n.innovative++
		if m != nil {
			m.Innovative.Inc()
			m.Rank.Add(1)
		}
	} else if m != nil {
		m.Redundant.Inc()
	}
	justCompleted := false
	if !wasComplete && rc.Complete() {
		n.gensDone++
		if m != nil {
			m.GensDone.Set(int64(n.gensDone))
		}
		if n.gensDone == n.totalGens && !n.complete {
			n.complete = true
			justCompleted = true
		}
	}
	// Remember a replay packet for the entropy attack before any mixing
	// decisions.
	if n.cfg.Behavior == EntropyAttacker {
		if _, ok := n.replay[p.Gen]; !ok {
			n.replay[p.Gen] = p.Clone()
		}
	}
	// What the forwarded packet contains depends on the node's behavior.
	var out *rlnc.Packet
	var child string
	if c, ok := n.childOf[th]; ok {
		if out = n.emitPacketLocked(p.Gen, rc); out != nil {
			child = c
		}
	}
	// Merge the trace context and record the hop span. First trace ID
	// wins for a generation; the node's depth is the max hop seen under
	// that trace (recoding can deliver the same traced generation along
	// paths of different length — max is the honest depth of the mix).
	var fwdTC TraceContext
	if tc.Traced() {
		ts, ok := n.traceOf[p.Gen]
		if !ok {
			ts = traceState{id: tc.ID, depth: tc.Hop}
		} else if ts.id == tc.ID && tc.Hop > ts.depth {
			ts.depth = tc.Hop
		}
		n.traceOf[p.Gen] = ts
		if n.hoplog == nil {
			n.hoplog = obs.NewHopLog(hopLogCap)
		}
		fanout := 0
		if out != nil {
			fanout = 1
		}
		n.hoplog.Record(obs.HopRecord{
			TraceID:      tc.ID,
			Gen:          p.Gen,
			Hop:          int(tc.Hop),
			Innovative:   innovative,
			Forwarded:    fanout,
			ArrivalNanos: arrival,
			EmitNanos:    emit,
		})
	}
	fwdSeq := int32(-1)
	if out != nil {
		fwdTC = n.forwardTraceLocked(out.Gen)
		fwdSeq = n.nextSeqLocked(th)
	}
	id := n.id
	n.mu.Unlock()
	p.Release()

	if justCompleted {
		if msg, err := EncodeControl(MsgComplete, Complete{ID: id}); err == nil {
			_ = n.ep.Send(ctx, n.cfg.TrackerAddr, msg) //nolint:errcheck // best-effort
		}
		close(n.completeCh)
	}
	if out != nil {
		// Propagate the generation's source-emission stamp downstream
		// (earliest seen wins inside the tracker), so decode delay stays
		// end-to-end however many overlay hops the data crosses.
		stamp := emit
		if s := lc.EmitStamp(out.Gen); s > 0 {
			stamp = s
		}
		buf := rlnc.GetFrameBuf()
		*buf = AppendDataSeq(*buf, f, th, fwdSeq, stamp, fwdTC, out)
		out.Release()
		n.sendData(ctx, child, *buf)
		rlnc.PutFrameBuf(buf)
	}
}

// forwardTraceLocked returns the trace context this node stamps on
// packets it forwards for gen: its adopted trace ID with the hop count
// advanced by one (saturating), or the zero context when the generation
// is untraced. Callers hold n.mu.
func (n *Node) forwardTraceLocked(gen uint32) TraceContext {
	ts, ok := n.traceOf[gen]
	if !ok {
		return TraceContext{}
	}
	hop := ts.depth
	if hop < 255 {
		hop++
	}
	return TraceContext{ID: ts.id, Hop: hop}
}

// nextSeqLocked returns the next outbound sequence number for thread th,
// advancing the per-thread counter (wrapping in 24-bit space), or -1
// when LinkSeq stamping is off — which makes every Append/EncodeDataSeq
// call site fall back to the byte-identical legacy encodings. Callers
// hold n.mu.
func (n *Node) nextSeqLocked(th int) int32 {
	if !n.cfg.LinkSeq {
		return -1
	}
	s := n.seqOf[th]
	n.seqOf[th] = (s + 1) % SeqMod
	return int32(s)
}

// emitPacketLocked produces the packet this node forwards for generation
// gen, honoring its behavior: honest nodes re-mix, entropy attackers
// replay a fixed packet (zero new information), freeloaders emit nothing.
// Callers hold n.mu.
func (n *Node) emitPacketLocked(gen uint32, rc *rlnc.Recoder) *rlnc.Packet {
	switch n.cfg.Behavior {
	case Freeloader:
		return nil
	case EntropyAttacker:
		if p := n.replay[gen]; p != nil {
			return p.Clone()
		}
		return nil
	default:
		if p, ok := rc.Packet(n.rng); ok {
			return p
		}
		return nil
	}
}

// sendData forwards a data frame with a bounded wait: when the child's
// queue is full the frame is dropped, exactly as a congested link would
// drop a datagram. RLNC makes drops harmless — no specific packet is ever
// required, only enough innovative ones.
func (n *Node) sendData(ctx context.Context, to string, frame []byte) {
	if m := n.cfg.Obs; m != nil && IsData(frame) {
		m.Emitted.Inc()
	}
	sendCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	_ = n.ep.Send(sendCtx, to, frame) //nolint:errcheck // lossy data plane
}

// handleKeepalive refreshes the liveness clock of the sending parent and
// runs the RTT echo exchange: probes are answered with an echo of their
// transmit stamp, echoes close the loop into the peer's RTT EWMA.
func (n *Node) handleKeepalive(ctx context.Context, from string, frame []byte) {
	ki, err := DecodeKeepaliveEcho(frame)
	if err != nil {
		return
	}
	th := ki.Thread
	now := time.Now()
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return
	}
	// A probe can also arrive from this node's own child (children probe
	// the parents they measure); only a frame from upstream may refresh
	// the thread's liveness clock, or a probing child would mask its
	// parent's death from the complaint protocol.
	if n.childOf[th] != from {
		n.lastRecv[th] = now
		n.parentOf[th] = from
	}
	if ki.IsEcho() {
		if rtt := now.UnixNano() - ki.EchoNanos - ki.HoldNanos; rtt > 0 {
			n.links.ObserveRTT(from, rtt)
		}
	}
	n.mu.Unlock()
	if ki.IsProbe() {
		// Answer immediately, so HoldNanos (the receiver's processing
		// delay) is negligible and reported as zero.
		n.sendData(ctx, from, EncodeKeepaliveEcho(th, 0, ki.TxNanos, 0))
	}
}

// probeLoop measures RTT over the data path: it periodically sends an
// echo probe to each current parent, on the same plane coded frames ride
// (LinkSeq sessions only). The parent's echo closes the loop in
// handleKeepalive. All behaviors probe — a probe reveals nothing about
// the prober's output threads, and even an attacker's scorecards keep
// the fleet matrix honest about link quality.
func (n *Node) probeLoop(ctx context.Context) {
	interval := n.cfg.ComplaintTimeout / 4
	if interval <= 0 {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		type probe struct {
			th     int
			parent string
		}
		probes := make([]probe, 0, len(n.parentOf))
		if n.joined {
			for th, parent := range n.parentOf {
				if parent != "" {
					probes = append(probes, probe{th: th, parent: parent})
				}
			}
		}
		n.mu.Unlock()
		for _, pr := range probes {
			n.sendData(ctx, pr.parent, EncodeKeepaliveEcho(pr.th, time.Now().UnixNano(), 0, 0))
		}
	}
}

// heartbeatLoop proves this node's liveness to its children on threads
// where it currently has nothing to forward, so that upstream starvation
// is never mistaken for this node's death.
func (n *Node) heartbeatLoop(ctx context.Context) {
	interval := n.cfg.ComplaintTimeout / 4
	if interval <= 0 {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if n.cfg.Behavior == Freeloader {
			// The §5 failure attacker goes silent on its output threads:
			// no data, no liveness. Children detect it by timeout and
			// the repair protocol splices it out — exactly the attack
			// the paper proves the overlay absorbs.
			continue
		}
		n.mu.Lock()
		type hb struct {
			th    int
			child string
			frame []byte
		}
		beats := make([]hb, 0, len(n.childOf))
		for th, child := range n.childOf {
			b := hb{th: th, child: child}
			// Prefer a useful heartbeat: a fresh combination of a
			// rotating generation we hold rank in. This keeps a quiet
			// subtree progressing even when the node's own inflow is
			// idle (e.g. it decoded everything and upstream went quiet).
			if len(n.genIDs) > 0 {
				g := n.genIDs[(n.hbGen+th)%len(n.genIDs)]
				if rc, ok := n.recoders[g]; ok && rc.Rank() > 0 {
					if p := n.emitPacketLocked(g, rc); p != nil {
						b.frame = EncodeDataSeq(n.field, th, n.nextSeqLocked(th),
							n.lifecycle.EmitStamp(g), n.forwardTraceLocked(g), p)
						p.Release()
					}
				}
			}
			if b.frame == nil {
				if n.cfg.LinkSeq {
					// Double as an RTT probe down the same path.
					b.frame = EncodeKeepaliveEcho(th, time.Now().UnixNano(), 0, 0)
				} else {
					b.frame = EncodeKeepalive(th)
				}
			}
			beats = append(beats, b)
		}
		n.hbGen++
		n.mu.Unlock()
		for _, b := range beats {
			n.sendData(ctx, b.child, b.frame)
		}
	}
}

// leaseLoop renews this node's liveness lease with the tracker at the
// interval the welcome announced. The complaint protocol only detects
// failed nodes that have children; the lease is how a bottom clip (and
// every other node) proves it is still alive, so a crash without a
// good-bye is eventually swept from M. Attackers keep renewing — the §5/§7
// adversaries keep their control plane alive by design, and leases must
// not mask them from complaint-based repair (they don't: leases only
// gate the tracker's own sweep).
func (n *Node) leaseLoop(ctx context.Context) {
	// Poll until joined (the interval arrives with the welcome), then
	// tick at the announced rate.
	const poll = 250 * time.Millisecond
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		n.mu.Lock()
		joined, id, every := n.joined, n.id, n.leaseEvery
		n.mu.Unlock()
		wait := every
		if !joined || wait <= 0 {
			wait = poll
		}
		timer.Reset(wait)
		if !joined || every <= 0 {
			continue
		}
		if msg, err := EncodeControl(MsgLease, Lease{ID: id}); err == nil {
			_ = n.ep.Send(ctx, n.cfg.TrackerAddr, msg) //nolint:errcheck // renewed next tick
			n.mu.Lock()
			n.leaseSent++
			n.mu.Unlock()
		}
	}
}

// statsLoop sends one MsgStatsReport per tracker-announced interval — the
// node's half of the fleet-telemetry protocol. Like the lease loop it
// idles on a short poll until a welcome announces the cadence, then ticks
// at exactly that rate, so the acceptance bound of at most one control
// message per node per reporting interval holds by construction.
func (n *Node) statsLoop(ctx context.Context) {
	const poll = 250 * time.Millisecond
	timer := time.NewTimer(poll)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		n.mu.Lock()
		joined, every := n.joined, n.statsEvery
		n.mu.Unlock()
		wait := every
		if !joined || wait <= 0 {
			wait = poll
		}
		timer.Reset(wait)
		if !joined || every <= 0 {
			continue
		}
		report := n.buildStatsReport()
		if msg, err := EncodeControl(MsgStatsReport, report); err == nil {
			_ = n.ep.Send(ctx, n.cfg.TrackerAddr, msg) //nolint:errcheck // resent next tick
		}
	}
}

// buildStatsReport snapshots the node's telemetry under n.mu. Delay
// quantiles and overheads come from the lifecycle tracker (its own lock;
// n.mu → tracker.mu is the only order used anywhere, so no inversion).
func (n *Node) buildStatsReport() StatsReport {
	n.mu.Lock()
	r := StatsReport{
		ID:            n.id,
		MaxRank:       n.totalGens * n.params.GenSize,
		GensDone:      n.gensDone,
		TotalGens:     n.totalGens,
		Complete:      n.complete,
		Received:      uint64(n.received),
		Innovative:    uint64(n.innovative),
		Complaints:    n.complaintsSent,
		LeaseRenewals: n.leaseSent,
	}
	r.Redundant = r.Received - r.Innovative
	r.GenRanks = make([]int, len(n.genIDs))
	for i, g := range n.genIDs {
		if rc, ok := n.recoders[g]; ok {
			r.GenRanks[i] = rc.Rank()
			r.Rank += rc.Rank()
		}
	}
	for _, q := range n.decodeQ {
		r.QueueDepth += len(q)
	}
	lc := n.lifecycle
	hl := n.hoplog
	n.mu.Unlock()
	// Drain the hop spans accumulated since the previous report; Compact
	// aggregates them per (trace, generation, hop) cell so the report
	// stays bounded however many traced frames arrived.
	r.TraceHops = hl.Compact(maxTraceHopsPerReport)
	r.Links = n.links.Compact(maxLinksPerReport)
	if lc != nil {
		if d := lc.Delays(); len(d) > 0 {
			r.DelayP50Nanos = int64(obs.Quantile(d, 0.50))
			r.DelayP90Nanos = int64(obs.Quantile(d, 0.90))
			r.DelayP99Nanos = int64(obs.Quantile(d, 0.99))
		}
		if ov := lc.Overheads(); len(ov) > 0 {
			sum := 0
			for _, o := range ov {
				sum += o
			}
			r.OverheadPermille = sum / len(ov)
		}
	}
	return r
}

// complaintLoop watches per-thread silence and reports dead parents.
func (n *Node) complaintLoop(ctx context.Context) {
	ticker := time.NewTicker(n.cfg.ComplaintTimeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		// Completed nodes keep complaining: they are still relays, and a
		// dead ancestor silently starves their whole subtree otherwise.
		if !n.joined {
			n.mu.Unlock()
			continue
		}
		now := time.Now()
		type complaint struct {
			th     int
			parent string
		}
		var complaints []complaint
		for _, th := range n.threads {
			if now.Sub(n.lastRecv[th]) > n.cfg.ComplaintTimeout {
				complaints = append(complaints, complaint{th: th, parent: n.parentOf[th]})
				n.lastRecv[th] = now // rate-limit: one complaint per timeout
			}
		}
		id := n.id
		n.complaintsSent += uint64(len(complaints))
		n.mu.Unlock()
		for _, c := range complaints {
			msg, err := EncodeControl(MsgComplaint, Complaint{ID: id, Thread: c.th, ParentAddr: c.parent})
			if err != nil {
				continue
			}
			if m := n.cfg.Obs; m != nil {
				m.Complaints.Inc()
			}
			_ = n.ep.Send(ctx, n.cfg.TrackerAddr, msg) //nolint:errcheck // best-effort
		}
	}
}

// Congest asks the tracker for §5 congestion relief: one of the node's
// threads is dropped, its parent and child joined directly. The change
// lands asynchronously via MsgThreadDropped.
func (n *Node) Congest(ctx context.Context) error {
	n.mu.Lock()
	id := n.id
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return errors.New("protocol: congest before join")
	}
	msg, err := EncodeControl(MsgCongested, Congested{ID: id})
	if err != nil {
		return err
	}
	return n.ep.Send(ctx, n.cfg.TrackerAddr, msg)
}

// Uncongest asks the tracker to regrow one thread (§5 recovery). The
// change lands asynchronously via MsgThreadAdded.
func (n *Node) Uncongest(ctx context.Context) error {
	n.mu.Lock()
	id := n.id
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return errors.New("protocol: uncongest before join")
	}
	msg, err := EncodeControl(MsgUncongested, Uncongested{ID: id})
	if err != nil {
		return err
	}
	return n.ep.Send(ctx, n.cfg.TrackerAddr, msg)
}

// Degree returns the node's current thread count.
func (n *Node) Degree() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.threads)
}

// Leave performs the good-bye protocol; Run returns once the ack arrives.
// The good-bye is re-sent periodically until acknowledged (the ack can be
// dropped under congestion; the tracker's handling is idempotent).
func (n *Node) Leave(ctx context.Context) error {
	n.mu.Lock()
	id := n.id
	joined := n.joined
	if joined {
		n.leaving = true
	}
	n.mu.Unlock()
	if !joined {
		return errors.New("protocol: leave before join")
	}
	msg, err := EncodeControl(MsgGoodbye, Goodbye{ID: id})
	if err != nil {
		return err
	}
	if err := n.ep.Send(ctx, n.cfg.TrackerAddr, msg); err != nil {
		return err
	}
	go func() {
		ticker := time.NewTicker(500 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-n.leftCh:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				_ = n.ep.Send(ctx, n.cfg.TrackerAddr, msg) //nolint:errcheck // retried
			}
		}
	}()
	return nil
}
