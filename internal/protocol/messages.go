// Package protocol implements the paper's §3 control protocol — hello,
// good-bye, complaint, and repair — plus the network-coded data plane,
// over any transport.Endpoint. The Tracker is the paper's "server (or some
// other centralized authority)": it owns the curtain matrix M, assigns
// threads to joining nodes, and issues stream redirections when nodes
// join, leave, or fail. Node is the client: it receives unit streams from
// its parents, re-mixes them with RLNC, forwards on its own threads, and
// decodes the content.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"ncast/internal/gf"
	"ncast/internal/obs"
	"ncast/internal/rlnc"
)

// MsgType tags control messages.
type MsgType uint8

// Control message types. Values are wire format; do not reorder.
const (
	// MsgHello is node -> tracker: request to join with a degree.
	MsgHello MsgType = iota + 1
	// MsgWelcome is tracker -> node: assigned identity and session params.
	MsgWelcome
	// MsgGoodbye is node -> tracker: graceful leave announcement.
	MsgGoodbye
	// MsgGoodbyeAck is tracker -> node: leave processed, streams spliced.
	MsgGoodbyeAck
	// MsgComplaint is child -> tracker: a parent stopped sending.
	MsgComplaint
	// MsgRedirect is tracker -> node: route your thread to a new child.
	MsgRedirect
	// MsgComplete is node -> tracker: content fully decoded.
	MsgComplete
	// MsgError is tracker -> node: request rejected.
	MsgError
	// MsgExpelled is tracker -> node: you were repaired away (a child
	// complained and the tracker believed it); re-join if still alive.
	MsgExpelled
	// MsgCongested is node -> tracker: §5 congestion relief — join one of
	// my parents directly to the matching child and drop my degree by one.
	MsgCongested
	// MsgUncongested is node -> tracker: congestion cleared — turn one of
	// the zeroes in my row back into a one.
	MsgUncongested
	// MsgThreadDropped is tracker -> node: your degree reduction took
	// effect on this thread; stop expecting or forwarding data on it.
	MsgThreadDropped
	// MsgThreadAdded is tracker -> node: you gained this thread; expect
	// data from a new parent and forward to ChildAddr when non-empty.
	MsgThreadAdded
	// MsgLease is node -> tracker: periodic liveness renewal. A crashed
	// bottom clip (a node with no children) is never complained about, so
	// the tracker expires rows whose leases go silent instead of waiting
	// for a complaint that can never come.
	MsgLease
	// MsgStatsReport is node -> tracker: a compact periodic telemetry
	// report (rank vector, decode-delay quantiles, flow counters) the
	// tracker aggregates into the fleet-wide cluster view. At most one is
	// sent per node per reporting interval.
	MsgStatsReport
)

// frame kind bytes: a data frame, a JSON control envelope, a per-thread
// keepalive, a data frame stamped with the source's first-emission time
// for its generation (what makes end-to-end decode delay measurable at
// every receiver), or a traced data frame carrying the stamp plus a
// dissemination-trace context (64-bit trace ID, 8-bit hop count).
const (
	frameData       byte = 0
	frameControl    byte = 1
	frameKeepalive  byte = 2
	frameDataTS     byte = 3
	frameDataTraced byte = 4
)

// seqFlag marks a data frame whose header carries a per-(sender, thread)
// 24-bit sequence number right after the thread word. It lives in the
// top bit of the thread field — threads are bounded far below 2^15, so
// the bit is always zero in legacy frames (the same spare-bit trick the
// systematic flag uses in the rlnc length word), which keeps unstamped
// encodings byte-identical.
const seqFlag uint16 = 1 << 15

// SeqMod is the sequence-number space of the per-(sender, thread)
// datagram counter: 24 bits, wrapping (mirrors obs.SeqMod, which owns
// the gap-ledger arithmetic).
const SeqMod = 1 << 24

// TraceContext is the dissemination-trace context a traced data frame
// carries: the trace ID the source assigned to the sampled generation and
// the hop count — the overlay depth of the sender, so a receiver learns
// its own depth directly from the frame. The zero value means untraced.
type TraceContext struct {
	ID  uint64
	Hop uint8
}

// Traced reports whether the context marks a sampled generation.
func (tc TraceContext) Traced() bool { return tc.ID != 0 }

// Hello asks to join the session.
type Hello struct {
	// Addr is the node's transport address (where parents send streams).
	Addr string `json:"addr"`
	// Degree is the requested d; 0 means the session default.
	Degree int `json:"degree,omitempty"`
}

// SessionParams describes the coded content; all nodes must agree.
type SessionParams struct {
	// FieldBits is the coding field size in bits (1, 8, or 16).
	FieldBits int `json:"field_bits"`
	// GenSize is packets per generation.
	GenSize int `json:"gen_size"`
	// PacketSize is the payload bytes per packet.
	PacketSize int `json:"packet_size"`
	// ContentLen is the total content length in bytes.
	ContentLen int `json:"content_len"`
	// LayerSizes, when non-empty, marks a §5 priority-layered broadcast:
	// the content is the concatenation of these layer slabs, each coded
	// independently with the generation namespace of rlnc.LayerOf.
	LayerSizes []int `json:"layer_sizes,omitempty"`
}

// Layered reports whether the session uses priority layers.
func (p SessionParams) Layered() bool { return len(p.LayerSizes) > 0 }

// Field resolves the gf.Field for the parameter set.
func (p SessionParams) Field() (gf.Field, error) {
	switch p.FieldBits {
	case 1:
		return gf.F2, nil
	case 8:
		return gf.F256, nil
	case 16:
		return gf.F65536, nil
	default:
		return nil, fmt.Errorf("protocol: unsupported field bits %d", p.FieldBits)
	}
}

// Params builds the rlnc.Params for the session.
func (p SessionParams) Params() (rlnc.Params, error) {
	f, err := p.Field()
	if err != nil {
		return rlnc.Params{}, err
	}
	params := rlnc.Params{Field: f, GenSize: p.GenSize, PacketSize: p.PacketSize}
	if err := params.Validate(); err != nil {
		return rlnc.Params{}, err
	}
	return params, nil
}

// Welcome confirms a join.
type Welcome struct {
	ID      uint64        `json:"id"`
	K       int           `json:"k"`
	Degree  int           `json:"degree"`
	Session SessionParams `json:"session"`
	// Threads lists the thread indices assigned to the node.
	Threads []int `json:"threads"`
	// LeaseMillis, when positive, asks the node to renew its liveness
	// lease at this interval; 0 means the tracker runs no lease sweep.
	LeaseMillis int64 `json:"lease_ms,omitempty"`
	// StatsMillis, when positive, asks the node to send a MsgStatsReport
	// at this interval; 0 disables telemetry reporting.
	StatsMillis int64 `json:"stats_ms,omitempty"`
}

// Goodbye announces a graceful leave.
type Goodbye struct {
	ID uint64 `json:"id"`
}

// GoodbyeAck confirms the leave was spliced.
type GoodbyeAck struct{}

// Complaint reports a silent parent on a thread.
type Complaint struct {
	ID     uint64 `json:"id"`
	Thread int    `json:"thread"`
	// ParentAddr is the address the child was receiving from.
	ParentAddr string `json:"parent_addr"`
}

// Redirect instructs a node (or informs the server source) to start
// sending its stream on Thread to ChildAddr; an empty ChildAddr means the
// thread now hangs (stop sending).
type Redirect struct {
	Thread    int    `json:"thread"`
	ChildAddr string `json:"child_addr"`
}

// Complete reports a fully decoded download.
type Complete struct {
	ID uint64 `json:"id"`
}

// ErrorMsg rejects a request.
type ErrorMsg struct {
	Reason string `json:"reason"`
}

// Expelled informs a node it was removed by the repair procedure.
type Expelled struct {
	ID uint64 `json:"id"`
}

// Congested asks for §5 degree reduction; Uncongested for regrowth.
type Congested struct {
	ID uint64 `json:"id"`
}

// Uncongested asks to regrow a previously reduced degree.
type Uncongested struct {
	ID uint64 `json:"id"`
}

// Lease renews a node's liveness lease with the tracker.
type Lease struct {
	ID uint64 `json:"id"`
}

// StatsReport is one node's periodic telemetry: decode progress, the
// per-generation rank vector, flow counters, and decode-delay quantiles.
// It rides the existing control connection (one message per interval) and
// doubles as a lease renewal, since any control message refreshes the
// sender's liveness.
type StatsReport struct {
	ID      uint64 `json:"id"`
	Rank    int    `json:"rank"`
	MaxRank int    `json:"max_rank"`
	// GenRanks is the per-generation decoded rank, aligned with the
	// session's canonical generation order (sessionGenIDs).
	GenRanks  []int `json:"gen_ranks,omitempty"`
	GensDone  int   `json:"gens_done"`
	TotalGens int   `json:"total_gens"`
	Complete  bool  `json:"complete"`

	Received   uint64 `json:"received"`
	Innovative uint64 `json:"innovative"`
	Redundant  uint64 `json:"redundant"`
	Complaints uint64 `json:"complaints"`
	// LeaseRenewals counts lease messages sent; QueueDepth is the pending
	// decode-queue depth at report time.
	LeaseRenewals uint64 `json:"lease_renewals"`
	QueueDepth    int    `json:"queue_depth"`

	// End-to-end decode-delay quantiles over decoded generations, in
	// nanoseconds (0 until the first stamped generation decodes), and mean
	// coding overhead in permille (received/needed × 1000).
	DelayP50Nanos    int64 `json:"delay_p50_ns,omitempty"`
	DelayP90Nanos    int64 `json:"delay_p90_ns,omitempty"`
	DelayP99Nanos    int64 `json:"delay_p99_ns,omitempty"`
	OverheadPermille int   `json:"overhead_permille,omitempty"`

	// TraceHops are the node's compacted dissemination-trace hop spans
	// since the previous report (present only when trace sampling is on
	// and traced frames arrived); the tracker's TraceCollector assembles
	// them into per-generation dissemination trees.
	TraceHops []obs.TraceHop `json:"trace_hops,omitempty"`

	// Links are the node's per-peer link scorecards (loss from sequence
	// gaps, RTT/jitter EWMAs, innovation rate); the tracker's
	// LinkCollector assembles them into the fleet link matrix served at
	// /debug/links.
	Links []obs.LinkReport `json:"links,omitempty"`
}

// ThreadDropped confirms a degree reduction.
type ThreadDropped struct {
	Thread int `json:"thread"`
}

// ThreadAdded confirms a degree increase; ChildAddr is the downstream
// receiver on the new thread ("" when the node is the bottom clip).
type ThreadAdded struct {
	Thread    int    `json:"thread"`
	ChildAddr string `json:"child_addr,omitempty"`
}

// envelope is the JSON control wrapper.
type envelope struct {
	Type    MsgType         `json:"t"`
	Payload json.RawMessage `json:"p,omitempty"`
}

// EncodeControl marshals a control message of the given type.
func EncodeControl(t MsgType, payload interface{}) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("protocol: marshal %d: %w", t, err)
	}
	env, err := json.Marshal(envelope{Type: t, Payload: raw})
	if err != nil {
		return nil, fmt.Errorf("protocol: marshal envelope: %w", err)
	}
	return append([]byte{frameControl}, env...), nil
}

// DecodeControl splits a control frame into its type and raw payload.
func DecodeControl(frame []byte) (MsgType, json.RawMessage, error) {
	if len(frame) < 2 || frame[0] != frameControl {
		return 0, nil, fmt.Errorf("protocol: not a control frame")
	}
	var env envelope
	if err := json.Unmarshal(frame[1:], &env); err != nil {
		return 0, nil, fmt.Errorf("protocol: unmarshal envelope: %w", err)
	}
	return env.Type, env.Payload, nil
}

// AppendData appends a data frame — one coded packet traveling on a
// thread — to buf and returns the extended slice. emitNanos, when
// positive, is the source's first-emission time for the packet's
// generation (unix nanoseconds); it travels in a stamped frame variant so
// every receiver, however many overlay hops away, can measure true
// end-to-end decode delay. Zero emits the compact unstamped frame. With a
// buffer from rlnc.GetFrameBuf the steady-state send path encodes without
// allocating: both transports copy the frame during Send, so the buffer
// can go back to the pool as soon as Send returns.
func AppendData(buf []byte, f gf.Field, thread int, emitNanos int64, p *rlnc.Packet) []byte {
	if emitNanos > 0 {
		buf = append(buf, frameDataTS, byte(thread>>8), byte(thread))
		buf = binary.BigEndian.AppendUint64(buf, uint64(emitNanos))
	} else {
		buf = append(buf, frameData, byte(thread>>8), byte(thread))
	}
	return p.AppendTo(buf, f)
}

// AppendDataTraced appends a data frame carrying a dissemination-trace
// context. An untraced context (ID 0) delegates to AppendData, so the
// non-sampled hot path emits exactly the frames it always did — same
// bytes, zero extra allocations. A traced frame always carries the stamp
// (a sampled generation without a stamp would make per-hop latency
// unmeasurable), so emitNanos rides even when zero.
func AppendDataTraced(buf []byte, f gf.Field, thread int, emitNanos int64, tc TraceContext, p *rlnc.Packet) []byte {
	if !tc.Traced() {
		return AppendData(buf, f, thread, emitNanos, p)
	}
	buf = append(buf, frameDataTraced, byte(thread>>8), byte(thread))
	buf = binary.BigEndian.AppendUint64(buf, uint64(emitNanos))
	buf = binary.BigEndian.AppendUint64(buf, tc.ID)
	buf = append(buf, tc.Hop)
	return p.AppendTo(buf, f)
}

// AppendDataSeq appends a data frame stamped with a per-(sender, thread)
// sequence number in [0, SeqMod), from which receivers estimate per-peer
// loss, reordering, and duplication on the lossy datagram plane. A
// negative seq delegates to AppendDataTraced, so senders on reliable
// transports emit exactly the frames they always did — same bytes, zero
// extra allocations. The sequence rides in 3 bytes between the thread
// word (whose top bit flags its presence) and the variant's stamp/trace
// fields, in every data-frame variant.
func AppendDataSeq(buf []byte, f gf.Field, thread int, seq int32, emitNanos int64, tc TraceContext, p *rlnc.Packet) []byte {
	if seq < 0 {
		return AppendDataTraced(buf, f, thread, emitNanos, tc, p)
	}
	kind := frameData
	if tc.Traced() {
		kind = frameDataTraced
	} else if emitNanos > 0 {
		kind = frameDataTS
	}
	tw := uint16(thread) | seqFlag
	buf = append(buf, kind, byte(tw>>8), byte(tw), byte(seq>>16), byte(seq>>8), byte(seq))
	if kind != frameData {
		buf = binary.BigEndian.AppendUint64(buf, uint64(emitNanos))
	}
	if kind == frameDataTraced {
		buf = binary.BigEndian.AppendUint64(buf, tc.ID)
		buf = append(buf, tc.Hop)
	}
	return p.AppendTo(buf, f)
}

// EncodeData marshals a data frame into a fresh buffer.
func EncodeData(f gf.Field, thread int, emitNanos int64, p *rlnc.Packet) []byte {
	return AppendData(make([]byte, 0, 11+p.WireSize(f)), f, thread, emitNanos, p)
}

// EncodeDataTraced marshals a (possibly traced) data frame into a fresh
// buffer.
func EncodeDataTraced(f gf.Field, thread int, emitNanos int64, tc TraceContext, p *rlnc.Packet) []byte {
	return AppendDataTraced(make([]byte, 0, 20+p.WireSize(f)), f, thread, emitNanos, tc, p)
}

// EncodeDataSeq marshals a (possibly sequence-stamped, possibly traced)
// data frame into a fresh buffer.
func EncodeDataSeq(f gf.Field, thread int, seq int32, emitNanos int64, tc TraceContext, p *rlnc.Packet) []byte {
	return AppendDataSeq(make([]byte, 0, dataFrameHeaderMax+p.WireSize(f)), f, thread, seq, emitNanos, tc, p)
}

// DecodeData unmarshals a data frame of any variant; emitNanos is 0 for
// unstamped frames. Trace context, if present, is dropped — receivers
// that care use DecodeDataTraced.
func DecodeData(f gf.Field, frame []byte) (thread int, emitNanos int64, p *rlnc.Packet, err error) {
	thread, emitNanos, _, p, err = DecodeDataTraced(f, frame)
	return thread, emitNanos, p, err
}

// DecodeDataTraced unmarshals a data frame of any variant, returning the
// trace context for traced frames (zero otherwise). The sequence number,
// if present, is dropped — receivers that account per-peer loss use
// DecodeDataSeq.
func DecodeDataTraced(f gf.Field, frame []byte) (thread int, emitNanos int64, tc TraceContext, p *rlnc.Packet, err error) {
	thread, _, emitNanos, tc, p, err = DecodeDataSeq(f, frame)
	return thread, emitNanos, tc, p, err
}

// DecodeDataSeq unmarshals a data frame of any variant, returning the
// per-(sender, thread) sequence number for seq-stamped frames (-1
// otherwise) and the trace context for traced frames (zero otherwise). A
// malformed header is an error, never a silent fallback to another
// variant.
func DecodeDataSeq(f gf.Field, frame []byte) (thread int, seq int32, emitNanos int64, tc TraceContext, p *rlnc.Packet, err error) {
	if len(frame) < 3 ||
		(frame[0] != frameData && frame[0] != frameDataTS && frame[0] != frameDataTraced) {
		return 0, 0, 0, TraceContext{}, nil, fmt.Errorf("protocol: not a data frame")
	}
	tw := binary.BigEndian.Uint16(frame[1:3])
	thread = int(tw &^ seqFlag)
	body := frame[3:]
	seq = -1
	if tw&seqFlag != 0 {
		if len(body) < 3 {
			return 0, 0, 0, TraceContext{}, nil, fmt.Errorf("protocol: seq-stamped data frame truncated")
		}
		seq = int32(body[0])<<16 | int32(body[1])<<8 | int32(body[2])
		body = body[3:]
	}
	switch frame[0] {
	case frameDataTS:
		if len(body) < 8 {
			return 0, 0, 0, TraceContext{}, nil, fmt.Errorf("protocol: stamped data frame truncated")
		}
		emitNanos = int64(binary.BigEndian.Uint64(body[:8]))
		body = body[8:]
	case frameDataTraced:
		if len(body) < 17 {
			return 0, 0, 0, TraceContext{}, nil, fmt.Errorf("protocol: traced data frame truncated")
		}
		emitNanos = int64(binary.BigEndian.Uint64(body[:8]))
		tc.ID = binary.BigEndian.Uint64(body[8:16])
		tc.Hop = body[16]
		body = body[17:]
		if !tc.Traced() {
			return 0, 0, 0, TraceContext{}, nil, fmt.Errorf("protocol: traced data frame with zero trace id")
		}
	}
	p, err = rlnc.Unmarshal(f, body)
	if err != nil {
		return 0, 0, 0, TraceContext{}, nil, err
	}
	return thread, seq, emitNanos, tc, p, nil
}

// IsData reports whether the frame is a data frame (any variant).
func IsData(frame []byte) bool {
	return len(frame) > 0 &&
		(frame[0] == frameData || frame[0] == frameDataTS || frame[0] == frameDataTraced)
}

// EncodeKeepalive marshals a per-thread keepalive. A parent that has
// nothing to forward on a thread still proves liveness with these, so that
// downstream starvation (a failure further upstream) is never mistaken for
// the parent's own death — without them, complaint storms would expel
// innocent working ancestors one by one.
func EncodeKeepalive(thread int) []byte {
	var out [3]byte
	out[0] = frameKeepalive
	binary.BigEndian.PutUint16(out[1:], uint16(thread))
	return out[:]
}

// DecodeKeepalive unmarshals a keepalive frame. Trailing bytes beyond
// the 3-byte core are ignored — they belong to extensions (the echo
// timestamp pair) that a peer from a newer version may send; rejecting
// them would kill the link on any version skew.
func DecodeKeepalive(frame []byte) (thread int, err error) {
	if len(frame) < 3 || frame[0] != frameKeepalive {
		return 0, fmt.Errorf("protocol: not a keepalive frame")
	}
	return int(binary.BigEndian.Uint16(frame[1:3])), nil
}

// keepaliveEchoLen is the extended keepalive layout: the 3-byte core
// plus the echo timestamp pair (transmit time, echoed time, hold time —
// 8 bytes each).
const keepaliveEchoLen = 3 + 8 + 8 + 8

// KeepaliveInfo is the decoded form of a keepalive frame, including the
// echo extension when present. The exchange measures RTT over the path
// data actually takes: a sender stamps TxNanos on its periodic
// keepalives (a probe); the receiver answers with EchoNanos = the
// received TxNanos and HoldNanos = its local processing delay; the
// original sender computes RTT = now − EchoNanos − HoldNanos. An echo
// carries TxNanos 0, so echoes are never themselves echoed. Legacy
// 3-byte keepalives decode with all timestamps zero.
type KeepaliveInfo struct {
	Thread    int
	TxNanos   int64
	EchoNanos int64
	HoldNanos int64
}

// IsProbe reports whether the keepalive asks to be echoed.
func (k KeepaliveInfo) IsProbe() bool { return k.TxNanos > 0 && k.EchoNanos == 0 }

// IsEcho reports whether the keepalive answers a probe.
func (k KeepaliveInfo) IsEcho() bool { return k.EchoNanos > 0 }

// EncodeKeepaliveEcho marshals a keepalive carrying the echo timestamp
// pair: a probe (tx set, echo/hold zero) or an echo reply (tx zero, echo
// = the probe's tx, hold = local processing delay).
func EncodeKeepaliveEcho(thread int, txNanos, echoNanos, holdNanos int64) []byte {
	var out [keepaliveEchoLen]byte
	out[0] = frameKeepalive
	binary.BigEndian.PutUint16(out[1:3], uint16(thread))
	binary.BigEndian.PutUint64(out[3:11], uint64(txNanos))
	binary.BigEndian.PutUint64(out[11:19], uint64(echoNanos))
	binary.BigEndian.PutUint64(out[19:27], uint64(holdNanos))
	return out[:]
}

// DecodeKeepaliveEcho unmarshals a keepalive of either layout. Frames
// shorter than the full echo extension (legacy peers) decode with zero
// timestamps; trailing bytes beyond the known layout are ignored.
func DecodeKeepaliveEcho(frame []byte) (KeepaliveInfo, error) {
	thread, err := DecodeKeepalive(frame)
	if err != nil {
		return KeepaliveInfo{}, err
	}
	ki := KeepaliveInfo{Thread: thread}
	if len(frame) >= keepaliveEchoLen {
		ki.TxNanos = int64(binary.BigEndian.Uint64(frame[3:11]))
		ki.EchoNanos = int64(binary.BigEndian.Uint64(frame[11:19]))
		ki.HoldNanos = int64(binary.BigEndian.Uint64(frame[19:27]))
	}
	return ki, nil
}

// IsKeepalive reports whether the frame is a keepalive.
func IsKeepalive(frame []byte) bool {
	return len(frame) > 0 && frame[0] == frameKeepalive
}

// DataPlaneFrame reports whether the frame belongs on the lossy datagram
// data plane of a split-transport session: coded data frames (loss is
// harmless — any innovative packet substitutes for any other) and
// per-thread keepalives (periodic and idempotent; losing one costs
// nothing, and keeping them on the data path makes them probe the exact
// path whose liveness they vouch for). Everything else — hello, good-bye,
// complaint, repair, lease, stats — is control state that must arrive,
// and stays on the reliable stream transport.
//
// It is exported as a classifier func for transport.NewDual: the
// transport package cannot import protocol, so the frame taxonomy is
// injected from above.
func DataPlaneFrame(frame []byte) bool {
	return IsData(frame) || IsKeepalive(frame)
}

// dataFrameHeaderMax is the largest data-frame header any variant emits:
// the traced layout's kind byte, 2-byte thread, 3-byte sequence number,
// 8-byte emission stamp, 8-byte trace ID, and hop counter.
const dataFrameHeaderMax = 1 + 2 + 3 + 8 + 8 + 1

// DataFrameOverhead returns the worst-case bytes a data frame adds on top
// of the coded payload over field f with generation size h: the traced
// frame header plus the rlnc packet header and coefficient vector. MTU
// budgeting uses it to size payloads so every frame variant fits in one
// datagram.
func DataFrameOverhead(f gf.Field, h int) int {
	return dataFrameHeaderMax + rlnc.OverheadBytes(f, h)
}
