package protocol

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ncast/internal/obs"
	"ncast/internal/rlnc"
	"ncast/internal/transport"
)

// Source is the broadcast server's data plane: it holds the content,
// encodes it generation by generation (flat or §5 priority-layered), and
// pumps one coded packet per round on every thread that currently has a
// first clip. The tracker updates thread-to-child routing via SetChild as
// nodes join, leave, and get repaired.
type Source struct {
	ep      transport.Endpoint
	params  rlnc.Params
	fe      *rlnc.FileEncoder
	le      *rlnc.LayeredEncoder // non-nil in layered mode
	length  int
	rng     *rand.Rand
	mu      sync.Mutex
	childOf []string // thread -> child addr ("" = hanging)
	// emitAt records, per generation, the unix-nano time of the source's
	// first emission — the fixed epoch every receiver measures its
	// end-to-end decode delay against. Stamped into every data frame of
	// that generation and propagated by forwarding nodes.
	emitAt    map[uint32]int64
	traceSeed int64
	// RoundInterval throttles pump rounds; zero relies on transport
	// backpressure alone.
	RoundInterval time.Duration
	// Obs carries optional instrumentation; nil is a no-op.
	Obs *obs.SourceMetrics
	// TraceRate enables dissemination tracing: every TraceRate-th
	// generation (deterministically chosen by a seed-keyed hash, 1 = all)
	// is emitted with a trace context that nodes propagate and report.
	// 0 disables sampling.
	TraceRate int
	// Systematic makes the source emit each generation's h source packets
	// uncoded (and flagged) before switching to random coding, so
	// loss-free receivers hit the decoder's identity fast path and only
	// the repair tail pays Gaussian cost. Ignored in layered mode. Set
	// before Run.
	Systematic bool
	// LinkSeq stamps every emitted frame with a per-thread sequence
	// number so direct children can estimate loss on their source links.
	// Off keeps the wire byte-identical to the legacy encodings. Set
	// before Run.
	LinkSeq bool
	// sysSent counts, per generation, how many systematic packets have
	// been emitted; only Run touches it.
	sysSent []uint16
	// seq is the next per-thread sequence number (LinkSeq only); only
	// Run touches it.
	seq []uint32
}

// NewSource wraps content for broadcasting on k threads.
func NewSource(ep transport.Endpoint, k int, params rlnc.Params, content []byte, seed int64) (*Source, error) {
	if k <= 0 {
		return nil, fmt.Errorf("protocol: source thread count %d, want > 0", k)
	}
	fe, err := rlnc.NewFileEncoder(params, content)
	if err != nil {
		return nil, err
	}
	return &Source{
		ep:        ep,
		params:    params,
		fe:        fe,
		length:    len(content),
		rng:       rand.New(rand.NewSource(seed)),
		traceSeed: seed,
		childOf:   make([]string, k),
		emitAt:    make(map[uint32]int64),
	}, nil
}

// NewLayeredSource wraps content for §5 priority-layered broadcasting:
// lower layers get a larger share of the emitted stream per the weights,
// so degraded receivers complete them first.
func NewLayeredSource(ep transport.Endpoint, k int, params rlnc.LayeredParams, content []byte, seed int64) (*Source, error) {
	if k <= 0 {
		return nil, fmt.Errorf("protocol: source thread count %d, want > 0", k)
	}
	le, err := rlnc.NewLayeredEncoder(params, content)
	if err != nil {
		return nil, err
	}
	return &Source{
		ep:        ep,
		params:    params.Params,
		le:        le,
		length:    len(content),
		rng:       rand.New(rand.NewSource(seed)),
		traceSeed: seed,
		childOf:   make([]string, k),
		emitAt:    make(map[uint32]int64),
	}, nil
}

// Session returns the session parameters matching the content.
func (s *Source) Session() SessionParams {
	sp := SessionParams{
		FieldBits:  s.params.Field.Bits(),
		GenSize:    s.params.GenSize,
		PacketSize: s.params.PacketSize,
		ContentLen: s.length,
	}
	if s.le != nil {
		for l := 0; l < s.le.Layers(); l++ {
			sp.LayerSizes = append(sp.LayerSizes, s.le.LayerSize(l))
		}
	}
	return sp
}

// emitStamp returns the generation's first-emission stamp, recording the
// current time on the first call for that generation.
func (s *Source) emitStamp(gen uint32) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.emitAt[gen]
	if !ok {
		at = time.Now().UnixNano()
		s.emitAt[gen] = at
	}
	return at
}

// traceID returns the generation's trace ID, or 0 when the generation is
// not sampled. Sampling is a deterministic splitmix64-style hash keyed by
// the source seed — it never touches the coding RNG, so enabling tracing
// does not perturb the coded stream.
func (s *Source) traceID(gen uint32) uint64 {
	rate := s.TraceRate
	if rate <= 0 {
		return 0
	}
	h := uint64(s.traceSeed) ^ (uint64(gen)+1)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if rate > 1 && h%uint64(rate) != 0 {
		return 0
	}
	if h == 0 {
		h = 1
	}
	return h
}

// SetChild routes thread th to addr (empty = hang the thread).
func (s *Source) SetChild(th int, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if th >= 0 && th < len(s.childOf) {
		s.childOf[th] = addr
	}
}

// Children returns a copy of the routing table.
func (s *Source) Children() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.childOf...)
}

// Run pumps packets until the context is cancelled. In flat mode,
// generations are staggered across threads so every thread carries every
// generation over time; in layered mode each packet's layer is sampled by
// priority weight.
func (s *Source) Run(ctx context.Context) error {
	gens := 1
	if s.fe != nil {
		gens = s.fe.NumGenerations()
	}
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		children := append([]string(nil), s.childOf...)
		s.mu.Unlock()
		m := s.Obs
		idle := true
		for th, child := range children {
			if child == "" {
				continue
			}
			idle = false
			var p *rlnc.Packet
			var err error
			if s.le != nil {
				p, err = s.le.Packet(s.rng)
			} else {
				g := (round + th) % gens
				if s.Systematic {
					if s.sysSent == nil {
						s.sysSent = make([]uint16, gens)
					}
					if sent := int(s.sysSent[g]); sent < s.params.GenSize {
						p, err = s.fe.Systematic(g, sent)
						s.sysSent[g]++
					}
				}
				if p == nil && err == nil {
					p, err = s.fe.Packet(g, s.rng)
				}
			}
			if err != nil {
				return err
			}
			// Direct children of the source sit at hop depth 1.
			tc := TraceContext{ID: s.traceID(p.Gen), Hop: 1}
			seq := int32(-1)
			if s.LinkSeq {
				if s.seq == nil {
					s.seq = make([]uint32, len(children))
				}
				if th < len(s.seq) {
					seq = int32(s.seq[th])
					s.seq[th] = (s.seq[th] + 1) % SeqMod
				}
			}
			frame := EncodeDataSeq(s.params.Field, th, seq, s.emitStamp(p.Gen), tc, p)
			sendCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
			err = s.ep.Send(sendCtx, child, frame)
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// Child unreachable or clogged: drop and keep pumping
				// other threads; repair or drainage will fix this one.
				continue
			}
			if m != nil {
				m.Packets.Inc()
			}
		}
		if !idle && m != nil {
			m.Rounds.Inc()
		}
		if s.RoundInterval > 0 || idle {
			interval := s.RoundInterval
			if interval == 0 {
				interval = time.Millisecond
			}
			timer := time.NewTimer(interval)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
		}
	}
}
