//go:build race

package rlnc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
