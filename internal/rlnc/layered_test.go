package rlnc

import (
	"bytes"
	"math/rand"
	"testing"

	"ncast/internal/gf"
)

func layeredParams(layers int) LayeredParams {
	weights := make([]float64, layers)
	// Classic priority weighting: layer l gets weight 2^(L-1-l).
	w := 1 << (layers - 1)
	for l := range weights {
		weights[l] = float64(w)
		w /= 2
		if w == 0 {
			w = 1
		}
	}
	return LayeredParams{
		Params:  Params{Field: gf.F256, GenSize: 4, PacketSize: 16},
		Weights: weights,
	}
}

func TestLayeredParamsValidate(t *testing.T) {
	t.Parallel()
	ok := layeredParams(3)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Weights = nil
	if err := bad.Validate(); err == nil {
		t.Error("no layers accepted")
	}
	bad = ok
	bad.Weights = []float64{1, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	bad = ok
	bad.Params.GenSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad base params accepted")
	}
}

func TestLayerNamespace(t *testing.T) {
	t.Parallel()
	g := LayerGen(3, 12345)
	if LayerOf(g) != 3 || GenOf(g) != 12345 {
		t.Fatalf("namespace round trip: layer %d gen %d", LayerOf(g), GenOf(g))
	}
	if LayerOf(LayerGen(0, 7)) != 0 {
		t.Fatal("base layer mangled")
	}
}

func TestLayeredRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(1))
	content := make([]byte, 500)
	r.Read(content)
	params := layeredParams(3)
	enc, err := NewLayeredEncoder(params, content)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewLayeredDecoder(enc.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	guard := 0
	for !dec.Complete() {
		if guard++; guard > 100000 {
			t.Fatal("decode did not converge")
		}
		p, err := enc.Packet(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("layered content mismatch")
	}
	// Per-layer extraction matches the slabs.
	per := (len(content) + 2) / 3
	for l := 0; l < 3; l++ {
		want := content[l*per : min((l+1)*per, len(content))]
		lb, err := dec.Layer(l)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, want) {
			t.Fatalf("layer %d mismatch", l)
		}
	}
}

func TestLayeredGracefulDegradation(t *testing.T) {
	t.Parallel()
	// The §5 claim: a receiver that only gets a fraction of the stream
	// should complete the base layer well before the enhancement layers.
	// Feed a fixed budget of packets and check completion order.
	r := rand.New(rand.NewSource(2))
	content := make([]byte, 3000)
	r.Read(content)
	params := layeredParams(3) // weights 4:2:1
	enc, err := NewLayeredEncoder(params, content)
	if err != nil {
		t.Fatal(err)
	}
	trials, baseFirst := 30, 0
	for trial := 0; trial < trials; trial++ {
		dec, err := NewLayeredDecoder(enc.Manifest())
		if err != nil {
			t.Fatal(err)
		}
		// Stop as soon as ANY layer completes; it should almost always
		// be the base.
		for dec.CompletedLayers() == 0 && !dec.LayerComplete(1) && !dec.LayerComplete(2) {
			p, err := enc.Packet(r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		if dec.LayerComplete(0) {
			baseFirst++
		}
	}
	if baseFirst < trials*3/4 {
		t.Fatalf("base layer finished first in only %d/%d trials", baseFirst, trials)
	}
}

func TestLayeredDecoderRejectsUnknownLayer(t *testing.T) {
	t.Parallel()
	params := layeredParams(2)
	ld, err := NewLayeredDecoder(LayeredManifest{Params: params, LayerSizes: []int{64, 64}})
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{Gen: LayerGen(7, 0), Coeff: make([]uint16, 4), Payload: make([]byte, 16)}
	if _, err := ld.Add(p); err == nil {
		t.Fatal("packet for unknown layer accepted")
	}
	if _, err := ld.Layer(5); err == nil {
		t.Fatal("unknown layer extraction accepted")
	}
	if _, err := ld.Bytes(); err == nil {
		t.Fatal("Bytes before completion accepted")
	}
}

func TestLayeredManifestMismatch(t *testing.T) {
	t.Parallel()
	params := layeredParams(2)
	if _, err := NewLayeredDecoder(LayeredManifest{Params: params, LayerSizes: []int{64}}); err == nil {
		t.Fatal("manifest with wrong size count accepted")
	}
}

func TestLayeredThroughRecoder(t *testing.T) {
	t.Parallel()
	// Layered packets must flow through ordinary recoders unchanged: the
	// namespace lives entirely in the Gen field.
	r := rand.New(rand.NewSource(3))
	content := make([]byte, 400)
	r.Read(content)
	params := layeredParams(2)
	enc, err := NewLayeredEncoder(params, content)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewLayeredDecoder(enc.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	recoders := make(map[uint32]*Recoder)
	guard := 0
	for !dec.Complete() {
		if guard++; guard > 100000 {
			t.Fatal("no convergence through recoder")
		}
		p, err := enc.Packet(r)
		if err != nil {
			t.Fatal(err)
		}
		rc, ok := recoders[p.Gen]
		if !ok {
			rc, err = NewRecoder(params.Params.Field, p.Gen, params.Params.GenSize, params.Params.PacketSize)
			if err != nil {
				t.Fatal(err)
			}
			recoders[p.Gen] = rc
		}
		if _, err := rc.Add(p); err != nil {
			t.Fatal(err)
		}
		if out, ok := rc.Packet(r); ok {
			if _, err := dec.Add(out); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := dec.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("recoded layered content mismatch")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
