package rlnc

import (
	"bytes"
	"math/rand"
	"testing"

	"ncast/internal/gf"
)

// The differential suite pins the one property the decode-engine overhaul
// must not bend: for any packet schedule that completes, the parallel
// decoder's output is byte-identical to the serial FileDecoder's (and to
// the original content). Schedules are seeded and deterministic, and span
// loss, duplication, stale traffic for completed generations, systematic
// and coded mixes, and every worker count the bench matrix uses. The
// whole file also runs under -race via `make race`, which is what makes
// the worker-pool handoff itself part of the contract.

// diffSchedule builds one deterministic packet feed for the scenario.
// Returned packets are owned by the caller.
type diffScenario struct {
	name     string
	field    gf.Field
	genSize  int
	pktSize  int
	schedule func(t *testing.T, fe *FileEncoder, params Params, gens int, r *rand.Rand) []*Packet
}

// codedOnly emits random combinations round-robin until every generation
// has a comfortable surplus.
func codedOnly(t *testing.T, fe *FileEncoder, params Params, gens int, r *rand.Rand) []*Packet {
	var pkts []*Packet
	for round := 0; round < params.GenSize+4; round++ {
		for g := 0; g < gens; g++ {
			p, err := fe.Packet(g, r)
			if err != nil {
				t.Fatal(err)
			}
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// systematicLossFree sends exactly the source packets, flagged, in order
// — the fast-path steady state.
func systematicLossFree(t *testing.T, fe *FileEncoder, params Params, gens int, r *rand.Rand) []*Packet {
	var pkts []*Packet
	for g := 0; g < gens; g++ {
		for i := 0; i < params.GenSize; i++ {
			p, err := fe.Systematic(g, i)
			if err != nil {
				t.Fatal(err)
			}
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// systematicWithLoss drops ~30% of the systematic pass and repairs with
// coded packets, mirroring the paper's systematic-plus-repair source.
func systematicWithLoss(t *testing.T, fe *FileEncoder, params Params, gens int, r *rand.Rand) []*Packet {
	var pkts []*Packet
	for g := 0; g < gens; g++ {
		for i := 0; i < params.GenSize; i++ {
			if r.Intn(10) < 3 {
				continue // lost
			}
			p, err := fe.Systematic(g, i)
			if err != nil {
				t.Fatal(err)
			}
			pkts = append(pkts, p)
		}
	}
	for round := 0; round < params.GenSize/2+4; round++ {
		for g := 0; g < gens; g++ {
			p, err := fe.Packet(g, r)
			if err != nil {
				t.Fatal(err)
			}
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// duplicatesAndStale interleaves systematic and coded packets, sends
// every third packet twice, and appends a stale tail of traffic for
// generation 0 after it is long complete.
func duplicatesAndStale(t *testing.T, fe *FileEncoder, params Params, gens int, r *rand.Rand) []*Packet {
	var pkts []*Packet
	add := func(p *Packet, err error) {
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
		if len(pkts)%3 == 0 {
			pkts = append(pkts, p.Clone())
		}
	}
	for g := 0; g < gens; g++ {
		for i := 0; i < params.GenSize; i++ {
			if i%2 == 0 {
				add(fe.Systematic(g, i))
			} else {
				add(fe.Packet(g, r))
			}
		}
	}
	for round := 0; round < params.GenSize/2+4; round++ {
		for g := 0; g < gens; g++ {
			add(fe.Packet(g, r))
		}
	}
	for i := 0; i < 2*params.GenSize; i++ {
		add(fe.Packet(0, r)) // stale: generation 0 finished long ago
	}
	return pkts
}

func TestParallelMatchesSerialDifferential(t *testing.T) {
	t.Parallel()
	scenarios := []diffScenario{
		{"coded-only/GF256", gf.F256, 8, 128, codedOnly},
		{"coded-only/GF65536", gf.F65536, 8, 128, codedOnly},
		{"coded-only/GF2", gf.F2, 16, 64, codedOnly},
		{"systematic-loss-free/GF256", gf.F256, 8, 128, systematicLossFree},
		{"systematic-loss/GF256", gf.F256, 8, 128, systematicWithLoss},
		{"systematic-loss/GF65536", gf.F65536, 8, 128, systematicWithLoss},
		{"duplicates-stale/GF256", gf.F256, 8, 128, duplicatesAndStale},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			params := Params{Field: sc.field, GenSize: sc.genSize, PacketSize: sc.pktSize}
			const gens = 5
			// Ragged final generation: content stops mid-packet.
			contentLen := (gens-1)*params.genBytes() + params.genBytes()/2 + 3
			r := rand.New(rand.NewSource(1234))
			content := make([]byte, contentLen)
			r.Read(content)
			fe, err := NewFileEncoder(params, content)
			if err != nil {
				t.Fatal(err)
			}
			pkts := sc.schedule(t, fe, params, gens, r)

			fd, err := NewFileDecoder(params, contentLen)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				if _, err := fd.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			serial, err := fd.Bytes()
			if err != nil {
				t.Fatalf("serial decode: %v", err)
			}
			if !bytes.Equal(serial, content) {
				t.Fatal("serial output differs from content")
			}

			for _, workers := range []int{1, 2, 4, 8} {
				pd, err := NewParallelFileDecoder(params, contentLen, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range pkts {
					if err := pd.Add(p.ClonePooled()); err != nil {
						t.Fatal(err)
					}
				}
				pd.Close()
				parallel, err := pd.Bytes()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(parallel, serial) {
					t.Fatalf("workers=%d: parallel output differs from serial", workers)
				}
			}
		})
	}
}

// TestDecodeHotPathAllocs pins the decode-side allocation budget: with
// warm pools and settled engines, redundant packets — the flood steady
// state — are absorbed by both decoders without allocating.
func TestDecodeHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	r := rand.New(rand.NewSource(17))
	params := Params{Field: gf.F256, GenSize: 16, PacketSize: 1024}
	contentLen := 4 * params.genBytes()
	content := make([]byte, contentLen)
	r.Read(content)
	fe, err := NewFileEncoder(params, content)
	if err != nil {
		t.Fatal(err)
	}

	// Serial Decoder: complete a generation, then hammer it.
	dec, err := NewDecoder(params.Field, 0, params.GenSize, params.PacketSize)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Complete() {
		p, _ := fe.Packet(0, r)
		if _, err := dec.Add(p); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	redundant, _ := fe.Packet(0, r)
	defer redundant.Release()
	if n := testing.AllocsPerRun(100, func() {
		if _, err := dec.Add(redundant); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("redundant Decoder.Add: %v allocs/op, want 0", n)
	}

	// Batch engine: same steady state, measured through the genDecoder
	// the worker pool runs.
	e := newGenDecoder(params.Field, params.GenSize, params.PacketSize)
	for !e.complete() {
		p, _ := fe.Packet(1, r)
		if _, err := e.add(p); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	stale, _ := fe.Packet(1, r)
	defer stale.Release()
	if n := testing.AllocsPerRun(100, func() {
		if _, err := e.add(stale); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("redundant genDecoder.add: %v allocs/op, want 0", n)
	}

	// Systematic fast path on a fresh engine: install must cost only the
	// arena copy, never an allocation.
	sysPkts := make([]*Packet, params.GenSize)
	for i := range sysPkts {
		sysPkts[i], _ = fe.Systematic(2, i)
	}
	defer func() {
		for _, p := range sysPkts {
			p.Release()
		}
	}()
	engines := make([]*genDecoder, 0, 101)
	engines = append(engines, newGenDecoder(params.Field, params.GenSize, params.PacketSize))
	for range 100 {
		engines = append(engines, newGenDecoder(params.Field, params.GenSize, params.PacketSize))
	}
	i := 0
	if n := testing.AllocsPerRun(100, func() {
		e := engines[i]
		i++
		for _, p := range sysPkts {
			if _, err := e.add(p); err != nil {
				t.Fatal(err)
			}
		}
		e.reduce()
	}); n != 0 {
		t.Errorf("systematic generation decode: %v allocs/op, want 0", n)
	}
}
