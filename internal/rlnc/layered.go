package rlnc

import (
	"errors"
	"fmt"
	"math/rand"
)

// Layered broadcasting implements the §5 suggestion that heterogeneous
// users can receive different resolutions via priority encoding
// transmission (Albanese et al. [2]): the content is split into priority
// layers, each layer is network-coded independently, and the packet
// stream is weighted toward lower (more important) layers. A receiver
// with the full bandwidth decodes everything; a degraded or low-degree
// receiver still decodes the base layer first — graceful degradation
// instead of a cliff.
//
// Layer l's generations are namespaced into the packet Gen field as
// (l << layerShift) | g, so layered packets flow through the same
// recoders, wire format, and overlay code as flat ones.

// layerShift positions the layer index in the Gen field; generations
// within a layer are limited to 2^24.
const layerShift = 24

// maxGensPerLayer bounds the per-layer generation count.
const maxGensPerLayer = 1 << layerShift

// LayerOf extracts the layer index from a namespaced generation id.
func LayerOf(gen uint32) int { return int(gen >> layerShift) }

// GenOf extracts the within-layer generation index.
func GenOf(gen uint32) int { return int(gen & (maxGensPerLayer - 1)) }

// LayerGen builds a namespaced generation id from a layer and a
// within-layer generation index.
func LayerGen(layer, g int) uint32 {
	return uint32(layer)<<layerShift | uint32(g)
}

// LayeredParams describes a layered broadcast.
type LayeredParams struct {
	// Params is the per-layer coding configuration.
	Params Params
	// Weights gives each layer's share of the emitted packet stream,
	// most-important layer first. len(Weights) is the layer count;
	// weights need not be normalised but must be positive.
	Weights []float64
}

// Validate checks the configuration.
func (lp LayeredParams) Validate() error {
	if err := lp.Params.Validate(); err != nil {
		return err
	}
	if len(lp.Weights) == 0 {
		return errors.New("rlnc: layered params need at least one layer")
	}
	if len(lp.Weights) > 255 {
		return fmt.Errorf("rlnc: %d layers exceed the namespace", len(lp.Weights))
	}
	for i, w := range lp.Weights {
		if w <= 0 {
			return fmt.Errorf("rlnc: layer %d weight %v, want > 0", i, w)
		}
	}
	return nil
}

// Layers returns the layer count.
func (lp LayeredParams) Layers() int { return len(lp.Weights) }

// LayeredEncoder codes a blob as prioritised layers. The content is split
// into contiguous layer slabs of equal size (the last padded), layer 0
// first — in a video use case layer 0 is the base resolution.
type LayeredEncoder struct {
	params LayeredParams
	encs   []*FileEncoder
	sizes  []int
	cum    []float64 // cumulative normalised weights for sampling
}

// NewLayeredEncoder splits content into len(Weights) layers and prepares
// per-layer encoders.
func NewLayeredEncoder(params LayeredParams, content []byte) (*LayeredEncoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(content) == 0 {
		return nil, errors.New("rlnc: empty content")
	}
	layers := params.Layers()
	per := (len(content) + layers - 1) / layers
	le := &LayeredEncoder{params: params}
	var total float64
	for _, w := range params.Weights {
		total += w
	}
	acc := 0.0
	for l := 0; l < layers; l++ {
		start := l * per
		end := start + per
		if start >= len(content) {
			return nil, fmt.Errorf("rlnc: layer %d empty for content of %d bytes", l, len(content))
		}
		if end > len(content) {
			end = len(content)
		}
		slab := content[start:end]
		fe, err := NewFileEncoder(params.Params, slab)
		if err != nil {
			return nil, fmt.Errorf("rlnc: layer %d: %w", l, err)
		}
		if fe.NumGenerations() > maxGensPerLayer {
			return nil, fmt.Errorf("rlnc: layer %d needs %d generations, max %d", l, fe.NumGenerations(), maxGensPerLayer)
		}
		le.encs = append(le.encs, fe)
		le.sizes = append(le.sizes, len(slab))
		acc += params.Weights[l] / total
		le.cum = append(le.cum, acc)
	}
	return le, nil
}

// Layers returns the layer count.
func (le *LayeredEncoder) Layers() int { return len(le.encs) }

// LayerSize returns layer l's byte length.
func (le *LayeredEncoder) LayerSize(l int) int { return le.sizes[l] }

// Manifest describes the layered stream for receivers.
func (le *LayeredEncoder) Manifest() LayeredManifest {
	m := LayeredManifest{Params: le.params}
	m.LayerSizes = append(m.LayerSizes, le.sizes...)
	return m
}

// Packet emits one coded packet: a layer is sampled by weight, a
// generation within it round-robin by a second random draw, and the
// packet's Gen field carries the (layer, generation) namespace.
func (le *LayeredEncoder) Packet(r *rand.Rand) (*Packet, error) {
	x := r.Float64()
	layer := len(le.cum) - 1
	for i, c := range le.cum {
		if x < c {
			layer = i
			break
		}
	}
	fe := le.encs[layer]
	g := r.Intn(fe.NumGenerations())
	p, err := fe.Packet(g, r)
	if err != nil {
		return nil, err
	}
	p.Gen = LayerGen(layer, g)
	return p, nil
}

// LayeredManifest is the receiver-side description of a layered stream.
type LayeredManifest struct {
	Params     LayeredParams
	LayerSizes []int
}

// LayeredDecoder reassembles layers independently, completing the most
// important (and most frequently coded) layers first.
type LayeredDecoder struct {
	manifest LayeredManifest
	decs     []*FileDecoder
}

// NewLayeredDecoder prepares decoding from a manifest.
func NewLayeredDecoder(m LayeredManifest) (*LayeredDecoder, error) {
	if err := m.Params.Validate(); err != nil {
		return nil, err
	}
	if len(m.LayerSizes) != m.Params.Layers() {
		return nil, fmt.Errorf("rlnc: manifest has %d sizes for %d layers", len(m.LayerSizes), m.Params.Layers())
	}
	ld := &LayeredDecoder{manifest: m}
	for l, size := range m.LayerSizes {
		fd, err := NewFileDecoder(m.Params.Params, size)
		if err != nil {
			return nil, fmt.Errorf("rlnc: layer %d: %w", l, err)
		}
		ld.decs = append(ld.decs, fd)
	}
	return ld, nil
}

// Add absorbs a layered packet. The Gen field is temporarily rewritten to
// the within-layer index for the duration of the call (the underlying
// decoder copies the packet, so no clone is needed); the packet must not
// be shared with another goroutine while Add runs.
func (ld *LayeredDecoder) Add(p *Packet) (innovative bool, err error) {
	layer := LayerOf(p.Gen)
	if layer >= len(ld.decs) {
		return false, fmt.Errorf("rlnc: packet for layer %d of %d", layer, len(ld.decs))
	}
	orig := p.Gen
	p.Gen = uint32(GenOf(orig))
	innovative, err = ld.decs[layer].Add(p)
	p.Gen = orig
	return innovative, err
}

// LayerComplete reports whether layer l has fully decoded.
func (ld *LayeredDecoder) LayerComplete(l int) bool { return ld.decs[l].Complete() }

// CompletedLayers returns the count of consecutively complete layers
// starting from the base — the "resolution" the receiver can play.
func (ld *LayeredDecoder) CompletedLayers() int {
	n := 0
	for _, d := range ld.decs {
		if !d.Complete() {
			break
		}
		n++
	}
	return n
}

// Complete reports whether every layer decoded.
func (ld *LayeredDecoder) Complete() bool {
	return ld.CompletedLayers() == len(ld.decs)
}

// LayerProgress returns layer l's rank fraction.
func (ld *LayeredDecoder) LayerProgress(l int) float64 { return ld.decs[l].Progress() }

// Layer returns the decoded bytes of layer l; it errors until the layer
// completes.
func (ld *LayeredDecoder) Layer(l int) ([]byte, error) {
	if l < 0 || l >= len(ld.decs) {
		return nil, fmt.Errorf("rlnc: layer %d out of range [0,%d)", l, len(ld.decs))
	}
	return ld.decs[l].Bytes()
}

// Bytes reassembles the full content once every layer completes.
func (ld *LayeredDecoder) Bytes() ([]byte, error) {
	if !ld.Complete() {
		return nil, fmt.Errorf("%w: %d of %d layers decoded", ErrIncomplete, ld.CompletedLayers(), len(ld.decs))
	}
	var out []byte
	for l := range ld.decs {
		b, err := ld.decs[l].Bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}
