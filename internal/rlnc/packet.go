// Package rlnc implements practical randomized linear network coding in
// the style of Chou, Wu, and Jain ("Practical network coding", Allerton
// 2003), the data plane the paper builds on. Content is segmented into
// generations of h source packets; every coded packet carries, alongside
// its payload, the h-element coefficient vector expressing it as a linear
// combination of the generation's source packets. Because the coefficients
// travel with the packet, any node can re-code (emit fresh random
// combinations of what it has buffered) with no coordination, and decoding
// survives topology changes and failures — the property §1 of the paper
// relies on.
//
// The package provides:
//
//   - Encoder: produces coded packets from a generation's source data.
//   - Decoder: progressive Gaussian elimination; recovers the generation
//     once h linearly independent packets have arrived.
//   - Recoder: buffers innovative packets and emits fresh random
//     combinations — the operation performed by every overlay node.
//   - FileEncoder / FileDecoder: multi-generation framing for whole blobs.
package rlnc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ncast/internal/gf"
)

// ErrPacketFormat is returned when unmarshalling a malformed packet.
var ErrPacketFormat = errors.New("rlnc: malformed packet")

// Packet is one coded packet: a linear combination of the source packets
// of one generation, tagged with the combination's coefficients.
type Packet struct {
	// Gen identifies the generation this packet belongs to.
	Gen uint32
	// Coeff holds the h coefficients of the combination, one per source
	// packet of the generation, as field elements. Systematic packets
	// carry the unit vector for SysIdx here so every in-memory consumer
	// sees an ordinary coded packet.
	Coeff []uint16
	// Payload is the combined data, len = generation symbol size.
	Payload []byte
	// Sys marks a systematic packet: Payload is source packet SysIdx
	// verbatim and Coeff is its unit vector. The zero value means coded,
	// so packets built by struct literal keep their prior meaning. On the
	// wire a systematic packet replaces the coefficient vector with a
	// 2-byte source index (see AppendTo), and decoders use the flag to
	// skip elimination entirely.
	Sys bool
	// SysIdx is the source-packet index of a systematic packet;
	// meaningless unless Sys is set.
	SysIdx uint16
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	return &Packet{
		Gen:     p.Gen,
		Coeff:   append([]uint16(nil), p.Coeff...),
		Payload: append([]byte(nil), p.Payload...),
		Sys:     p.Sys,
		SysIdx:  p.SysIdx,
	}
}

// ClonePooled returns a deep copy drawn from the shared packet pool —
// the copy to hand to an ownership-taking sink (ParallelFileDecoder.Add)
// when the original must stay usable. Release applies as usual.
func (p *Packet) ClonePooled() *Packet {
	q := getPacket(p.Gen, len(p.Coeff), len(p.Payload))
	copy(q.Coeff, p.Coeff)
	copy(q.Payload, p.Payload)
	q.Sys, q.SysIdx = p.Sys, p.SysIdx
	return q
}

// IsZero reports whether every coefficient is zero (a useless packet).
func (p *Packet) IsZero() bool {
	for _, c := range p.Coeff {
		if c != 0 {
			return false
		}
	}
	return true
}

// packetHeaderLen is the fixed wire header: 4B generation, 2B coefficient
// count, 4B payload length.
const packetHeaderLen = 4 + 2 + 4

// sysFlag is set in the payload-length header word of a systematic
// packet. Payload lengths are far below 2^31, so the bit is otherwise
// always zero and pre-flag decoders were never sent it: coded-packet
// encodings are byte-for-byte unchanged.
const sysFlag = 1 << 31

// sysIdxWireLen replaces the coefficient vector on the wire for
// systematic packets: a 2-byte big-endian source index.
const sysIdxWireLen = 2

// WireSize returns the marshalled size of the packet over field f.
func (p *Packet) WireSize(f gf.Field) int {
	if p.Sys {
		return packetHeaderLen + sysIdxWireLen + len(p.Payload)
	}
	return packetHeaderLen + coeffWireLen(f, len(p.Coeff)) + len(p.Payload)
}

// coeffWireLen returns the encoded byte length of an n-element coefficient
// vector over f: bit-packed for GF(2), 1 byte/elem for GF(2^8), 2 for
// GF(2^16).
func coeffWireLen(f gf.Field, n int) int {
	switch f.Bits() {
	case 1:
		return (n + 7) / 8
	case 8:
		return n
	default:
		return 2 * n
	}
}

// AppendTo appends the wire encoding of the packet to buf and returns the
// extended slice, exactly like append: it allocates only when buf lacks
// capacity for WireSize(f) more bytes. The send path pairs it with the
// pooled buffers from GetFrameBuf for an allocation-free steady state.
func (p *Packet) AppendTo(buf []byte, f gf.Field) []byte {
	var hdr [packetHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], p.Gen)
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(p.Coeff)))
	plen := uint32(len(p.Payload))
	if p.Sys {
		plen |= sysFlag
	}
	binary.BigEndian.PutUint32(hdr[6:], plen)
	buf = append(buf, hdr[:]...)
	if p.Sys {
		buf = append(buf, byte(p.SysIdx>>8), byte(p.SysIdx))
		return append(buf, p.Payload...)
	}
	switch f.Bits() {
	case 1:
		var acc byte
		for i, c := range p.Coeff {
			if c&1 != 0 {
				acc |= 1 << (i % 8)
			}
			if i%8 == 7 {
				buf = append(buf, acc)
				acc = 0
			}
		}
		if len(p.Coeff)%8 != 0 {
			buf = append(buf, acc)
		}
	case 8:
		for _, c := range p.Coeff {
			buf = append(buf, byte(c))
		}
	default:
		for _, c := range p.Coeff {
			buf = append(buf, byte(c>>8), byte(c))
		}
	}
	return append(buf, p.Payload...)
}

// Marshal encodes the packet for the wire into a fresh buffer. The field
// is implicit: both ends of a session agree on it out of band (it is part
// of the session parameters in the protocol layer).
func (p *Packet) Marshal(f gf.Field) []byte {
	return p.AppendTo(make([]byte, 0, p.WireSize(f)), f)
}

// Unmarshal decodes a packet produced by Marshal/AppendTo over the same
// field. The returned packet comes from the shared packet pool and does
// not alias data; pass it back with Release when done.
func Unmarshal(f gf.Field, data []byte) (*Packet, error) {
	if len(data) < packetHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need header of %d", ErrPacketFormat, len(data), packetHeaderLen)
	}
	gen := binary.BigEndian.Uint32(data[0:])
	n := int(binary.BigEndian.Uint16(data[4:]))
	plenWord := binary.BigEndian.Uint32(data[6:])
	plen := int(plenWord &^ sysFlag)
	if plenWord&sysFlag != 0 {
		if len(data) != packetHeaderLen+sysIdxWireLen+plen {
			return nil, fmt.Errorf("%w: length %d, want %d", ErrPacketFormat, len(data), packetHeaderLen+sysIdxWireLen+plen)
		}
		idx := binary.BigEndian.Uint16(data[packetHeaderLen:])
		if int(idx) >= n {
			return nil, fmt.Errorf("%w: systematic index %d out of range for %d coefficients", ErrPacketFormat, idx, n)
		}
		p := getPacket(gen, n, plen)
		p.Sys, p.SysIdx = true, idx
		p.Coeff[idx] = 1
		copy(p.Payload, data[packetHeaderLen+sysIdxWireLen:])
		return p, nil
	}
	clen := coeffWireLen(f, n)
	if len(data) != packetHeaderLen+clen+plen {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrPacketFormat, len(data), packetHeaderLen+clen+plen)
	}
	p := getPacket(gen, n, plen)
	coeff := p.Coeff
	cdata := data[packetHeaderLen : packetHeaderLen+clen]
	switch f.Bits() {
	case 1:
		for i := range coeff {
			coeff[i] = uint16(cdata[i/8]>>(i%8)) & 1
		}
	case 8:
		for i := range coeff {
			coeff[i] = uint16(cdata[i])
		}
	default:
		for i := range coeff {
			coeff[i] = binary.BigEndian.Uint16(cdata[2*i:])
		}
	}
	copy(p.Payload, data[packetHeaderLen+clen:])
	return p, nil
}

// OverheadBytes returns the per-packet byte overhead (header plus
// coefficient vector) a generation of size h pays over field f — the
// practicality metric of experiment E12.
func OverheadBytes(f gf.Field, h int) int {
	return packetHeaderLen + coeffWireLen(f, h)
}
