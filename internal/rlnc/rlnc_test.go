package rlnc

import (
	"bytes"
	"math/rand"
	"testing"

	"ncast/internal/gf"
)

var fields = []gf.Field{gf.F2, gf.F256, gf.F65536}

func randSource(r *rand.Rand, h, size int) [][]byte {
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		r.Read(src[i])
	}
	return src
}

func TestEncoderValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		f       gf.Field
		src     [][]byte
		wantErr bool
	}{
		{"ok", gf.F256, [][]byte{{1, 2}, {3, 4}}, false},
		{"empty", gf.F256, nil, true},
		{"ragged", gf.F256, [][]byte{{1, 2}, {3}}, true},
		{"zero size", gf.F256, [][]byte{{}}, true},
		{"odd for gf16", gf.F65536, [][]byte{{1, 2, 3}}, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewEncoder(tt.f, 0, tt.src)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewEncoder error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(1))
			const h, size = 16, 64
			src := randSource(r, h, size)
			enc, err := NewEncoder(f, 7, src)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewDecoder(f, 7, h, size)
			if err != nil {
				t.Fatal(err)
			}
			sent := 0
			for !dec.Complete() {
				if sent > 20*h {
					t.Fatalf("decoder not complete after %d packets (rank %d)", sent, dec.Rank())
				}
				if _, err := dec.Add(enc.Packet(r)); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			got, err := dec.Source()
			if err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if !bytes.Equal(got[i], src[i]) {
					t.Fatalf("source packet %d mismatch", i)
				}
			}
			// Large fields should need almost exactly h packets.
			if f.Bits() >= 8 && sent > h+3 {
				t.Errorf("%s needed %d packets for h=%d; expected near-optimal", f.Name(), sent, h)
			}
		})
	}
}

func TestSystematicSeeding(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(2))
	const h, size = 8, 32
	src := randSource(r, h, size)
	enc, err := NewEncoder(gf.F256, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(gf.F256, 0, h, size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h; i++ {
		p, err := enc.Systematic(i)
		if err != nil {
			t.Fatal(err)
		}
		inn, err := dec.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		if !inn {
			t.Fatalf("systematic packet %d not innovative", i)
		}
	}
	if !dec.Complete() {
		t.Fatal("h systematic packets did not complete the decoder")
	}
	if _, err := enc.Systematic(h); err == nil {
		t.Error("Systematic out of range did not error")
	}
}

func TestDecoderRejectsWrongGeneration(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	src := randSource(r, 4, 16)
	enc, _ := NewEncoder(gf.F256, 1, src)
	dec, _ := NewDecoder(gf.F256, 2, 4, 16)
	if _, err := dec.Add(enc.Packet(r)); err == nil {
		t.Fatal("decoder accepted packet from wrong generation")
	}
}

func TestNonInnovativePacketsDetected(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(4))
	const h, size = 4, 16
	src := randSource(r, h, size)
	enc, _ := NewEncoder(gf.F256, 0, src)
	dec, _ := NewDecoder(gf.F256, 0, h, size)
	p := enc.Packet(r)
	if inn, _ := dec.Add(p); !inn {
		t.Fatal("first packet not innovative")
	}
	// The identical packet again must not be innovative.
	if inn, _ := dec.Add(p); inn {
		t.Fatal("duplicate packet counted as innovative")
	}
	if dec.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", dec.Rank())
	}
	// A scalar multiple is also non-innovative.
	q := p.Clone()
	for i := range q.Coeff {
		q.Coeff[i] = gf.F256.Mul(q.Coeff[i], 5)
	}
	gf.F256.MulSlice(q.Payload, q.Payload, 5)
	if inn, _ := dec.Add(q); inn {
		t.Fatal("scalar multiple counted as innovative")
	}
}

func TestZeroPacketNotInnovative(t *testing.T) {
	t.Parallel()
	dec, _ := NewDecoder(gf.F256, 0, 4, 16)
	p := &Packet{Gen: 0, Coeff: make([]uint16, 4), Payload: make([]byte, 16)}
	if !p.IsZero() {
		t.Fatal("IsZero on zero packet = false")
	}
	inn, err := dec.Add(p)
	if err != nil {
		t.Fatal(err)
	}
	if inn {
		t.Fatal("zero packet counted as innovative")
	}
}

func TestRecoderChain(t *testing.T) {
	t.Parallel()
	// Server -> recoder1 -> recoder2 -> decoder, the §3 "thread" pattern:
	// content must survive two stages of re-mixing.
	for _, f := range []gf.Field{gf.F256, gf.F65536} {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(5))
			const h, size = 12, 48
			src := randSource(r, h, size)
			enc, _ := NewEncoder(f, 0, src)
			rc1, _ := NewRecoder(f, 0, h, size)
			rc2, _ := NewRecoder(f, 0, h, size)
			dec, _ := NewDecoder(f, 0, h, size)

			for i := 0; i < h+2; i++ {
				if _, err := rc1.Add(enc.Packet(r)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < h+2; i++ {
				p, ok := rc1.Packet(r)
				if !ok {
					t.Fatal("rc1 empty")
				}
				if _, err := rc2.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			sent := 0
			for !dec.Complete() && sent < 10*h {
				p, ok := rc2.Packet(r)
				if !ok {
					t.Fatal("rc2 empty")
				}
				if _, err := dec.Add(p); err != nil {
					t.Fatal(err)
				}
				sent++
			}
			if !dec.Complete() {
				t.Fatalf("decoder stuck at rank %d after %d recoded packets", dec.Rank(), sent)
			}
			got, err := dec.Source()
			if err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if !bytes.Equal(got[i], src[i]) {
					t.Fatalf("source packet %d corrupted through recoding chain", i)
				}
			}
		})
	}
}

func TestRecoderPartialRankForwarding(t *testing.T) {
	t.Parallel()
	// A recoder holding only rank r < h can still deliver exactly r
	// innovative packets downstream — it forwards the subspace it has.
	r := rand.New(rand.NewSource(6))
	const h, size = 10, 32
	src := randSource(r, h, size)
	enc, _ := NewEncoder(gf.F256, 0, src)
	rc, _ := NewRecoder(gf.F256, 0, h, size)
	for i := 0; i < 4; i++ {
		if _, err := rc.Add(enc.Packet(r)); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Rank() != 4 {
		t.Fatalf("recoder rank = %d, want 4", rc.Rank())
	}
	dec, _ := NewDecoder(gf.F256, 0, h, size)
	for i := 0; i < 50 && dec.Rank() < 4; i++ {
		p, _ := rc.Packet(r)
		if _, err := dec.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Rank() != 4 {
		t.Fatalf("decoder extracted rank %d from rank-4 recoder, want 4", dec.Rank())
	}
	// And no more than 4, ever.
	for i := 0; i < 20; i++ {
		p, _ := rc.Packet(r)
		if inn, _ := dec.Add(p); inn {
			t.Fatal("decoder exceeded recoder's rank")
		}
	}
}

func TestRecoderEmptyBuffer(t *testing.T) {
	t.Parallel()
	rc, _ := NewRecoder(gf.F256, 0, 4, 16)
	r := rand.New(rand.NewSource(7))
	if _, ok := rc.Packet(r); ok {
		t.Fatal("empty recoder produced a packet")
	}
}

func TestPacketMarshalRoundTrip(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(8))
			for trial := 0; trial < 20; trial++ {
				h := 1 + r.Intn(40)
				size := f.SymbolSize() * (1 + r.Intn(64))
				p := &Packet{Gen: uint32(r.Intn(1000)), Coeff: make([]uint16, h), Payload: make([]byte, size)}
				for i := range p.Coeff {
					p.Coeff[i] = f.Rand(r)
				}
				r.Read(p.Payload)
				wire := p.Marshal(f)
				if len(wire) != p.WireSize(f) {
					t.Fatalf("wire length %d, WireSize %d", len(wire), p.WireSize(f))
				}
				q, err := Unmarshal(f, wire)
				if err != nil {
					t.Fatal(err)
				}
				if q.Gen != p.Gen || len(q.Coeff) != len(p.Coeff) || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatal("round-trip mismatch")
				}
				for i := range p.Coeff {
					if q.Coeff[i] != p.Coeff[i] {
						t.Fatalf("coeff %d: got %d want %d", i, q.Coeff[i], p.Coeff[i])
					}
				}
			}
		})
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	t.Parallel()
	if _, err := Unmarshal(gf.F256, []byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	p := &Packet{Gen: 1, Coeff: []uint16{1, 2}, Payload: []byte{9, 9}}
	wire := p.Marshal(gf.F256)
	if _, err := Unmarshal(gf.F256, wire[:len(wire)-1]); err == nil {
		t.Error("truncated packet accepted")
	}
	if _, err := Unmarshal(gf.F256, append(wire, 0)); err == nil {
		t.Error("overlong packet accepted")
	}
}

func TestInnovationProbabilityByField(t *testing.T) {
	t.Parallel()
	// E12 foundation: random packets over GF(2) are non-innovative with
	// noticeable probability near completion; GF(256)+ almost never.
	count := func(f gf.Field, seed int64) (waste int) {
		r := rand.New(rand.NewSource(seed))
		const h, size = 32, 32
		src := randSource(r, h, size)
		enc, _ := NewEncoder(f, 0, src)
		dec, _ := NewDecoder(f, 0, h, size)
		for !dec.Complete() {
			inn, err := dec.Add(enc.Packet(r))
			if err != nil {
				t.Fatal(err)
			}
			if !inn {
				waste++
			}
		}
		return waste
	}
	w2, w256 := 0, 0
	for s := int64(0); s < 10; s++ {
		w2 += count(gf.F2, s)
		w256 += count(gf.F256, s)
	}
	if w2 <= w256 {
		t.Errorf("GF(2) wasted %d packets vs GF(256) %d; expected GF(2) to waste more", w2, w256)
	}
	if w256 > 5 {
		t.Errorf("GF(256) wasted %d packets over 10 runs; expected near zero", w256)
	}
}

func TestFileRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(9))
	params := Params{Field: gf.F256, GenSize: 8, PacketSize: 64}
	for _, size := range []int{1, 100, 512, 513, 8*64 - 1, 8 * 64, 8*64 + 1, 5000} {
		content := make([]byte, size)
		r.Read(content)
		fe, err := NewFileEncoder(params, content)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		fd, err := NewFileDecoder(params, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if fe.NumGenerations() != fd.NumGenerations() {
			t.Fatalf("generation count mismatch: %d vs %d", fe.NumGenerations(), fd.NumGenerations())
		}
		guard := 0
		for !fd.Complete() {
			if guard++; guard > 100*params.GenSize*fe.NumGenerations() {
				t.Fatalf("size %d: decode did not converge", size)
			}
			g := r.Intn(fe.NumGenerations())
			p, err := fe.Packet(g, r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fd.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		got, err := fd.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("size %d: content mismatch", size)
		}
	}
}

func TestFileDecoderProgress(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(10))
	params := Params{Field: gf.F256, GenSize: 4, PacketSize: 8}
	content := make([]byte, 4*8*3) // exactly 3 generations
	r.Read(content)
	fe, _ := NewFileEncoder(params, content)
	fd, _ := NewFileDecoder(params, len(content))
	if got := fd.Progress(); got != 0 {
		t.Fatalf("initial progress = %v, want 0", got)
	}
	if _, err := fd.Bytes(); err == nil {
		t.Fatal("Bytes() on incomplete decoder succeeded")
	}
	last := 0.0
	for !fd.Complete() {
		g := r.Intn(3)
		p, _ := fe.Packet(g, r)
		if _, err := fd.Add(p); err != nil {
			t.Fatal(err)
		}
		if pr := fd.Progress(); pr < last {
			t.Fatalf("progress went backwards: %v -> %v", last, pr)
		} else {
			last = pr
		}
	}
	if fd.Progress() != 1 {
		t.Fatalf("final progress = %v, want 1", fd.Progress())
	}
}

func TestFileDecoderRejectsBadGeneration(t *testing.T) {
	t.Parallel()
	params := Params{Field: gf.F256, GenSize: 2, PacketSize: 4}
	fd, _ := NewFileDecoder(params, 8)
	p := &Packet{Gen: 99, Coeff: []uint16{1, 0}, Payload: make([]byte, 4)}
	if _, err := fd.Add(p); err == nil {
		t.Fatal("packet for out-of-range generation accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"ok", Params{Field: gf.F256, GenSize: 16, PacketSize: 128}, false},
		{"nil field", Params{GenSize: 16, PacketSize: 128}, true},
		{"zero gen", Params{Field: gf.F256, GenSize: 0, PacketSize: 128}, true},
		{"huge gen", Params{Field: gf.F256, GenSize: 70000, PacketSize: 128}, true},
		{"odd gf16", Params{Field: gf.F65536, GenSize: 4, PacketSize: 3}, true},
		{"zero packet", Params{Field: gf.F256, GenSize: 4, PacketSize: 0}, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestOverheadBytes(t *testing.T) {
	t.Parallel()
	// GF(2) coefficients bit-pack: 32 coefficients in 4 bytes.
	if got := OverheadBytes(gf.F2, 32); got != packetHeaderLen+4 {
		t.Errorf("GF(2) overhead = %d, want %d", got, packetHeaderLen+4)
	}
	if got := OverheadBytes(gf.F256, 32); got != packetHeaderLen+32 {
		t.Errorf("GF(256) overhead = %d, want %d", got, packetHeaderLen+32)
	}
	if got := OverheadBytes(gf.F65536, 32); got != packetHeaderLen+64 {
		t.Errorf("GF(65536) overhead = %d, want %d", got, packetHeaderLen+64)
	}
}

func BenchmarkEncodePacket(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := randSource(r, 32, 1024)
	enc, _ := NewEncoder(gf.F256, 0, src)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Packet(r)
	}
}

func BenchmarkDecodeGeneration(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const h, size = 32, 1024
	src := randSource(r, h, size)
	enc, _ := NewEncoder(gf.F256, 0, src)
	packets := make([]*Packet, h+4)
	for i := range packets {
		packets[i] = enc.Packet(r)
	}
	b.SetBytes(int64(h * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, _ := NewDecoder(gf.F256, 0, h, size)
		for _, p := range packets {
			if _, err := dec.Add(p); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkRecodePacket(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const h, size = 32, 1024
	src := randSource(r, h, size)
	enc, _ := NewEncoder(gf.F256, 0, src)
	rc, _ := NewRecoder(gf.F256, 0, h, size)
	for i := 0; i < h; i++ {
		if _, err := rc.Add(enc.Packet(r)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Packet(r)
	}
}

func TestSystematicWireRoundTrip(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(11))
			for trial := 0; trial < 20; trial++ {
				h := 1 + r.Intn(40)
				size := f.SymbolSize() * (1 + r.Intn(64))
				idx := uint16(r.Intn(h))
				p := &Packet{
					Gen:     uint32(r.Intn(1000)),
					Coeff:   make([]uint16, h),
					Payload: make([]byte, size),
					Sys:     true,
					SysIdx:  idx,
				}
				p.Coeff[idx] = 1
				r.Read(p.Payload)
				wire := p.Marshal(f)
				if len(wire) != p.WireSize(f) {
					t.Fatalf("wire length %d, WireSize %d", len(wire), p.WireSize(f))
				}
				// The systematic form is field-independent and never longer
				// than the coded form's coefficient vector.
				if want := packetHeaderLen + 2 + size; len(wire) != want {
					t.Fatalf("systematic wire length %d, want %d", len(wire), want)
				}
				q, err := Unmarshal(f, wire)
				if err != nil {
					t.Fatal(err)
				}
				if !q.Sys || q.SysIdx != idx || q.Gen != p.Gen || !bytes.Equal(q.Payload, p.Payload) {
					t.Fatalf("round-trip mismatch: sys=%v idx=%d gen=%d", q.Sys, q.SysIdx, q.Gen)
				}
				if len(q.Coeff) != h {
					t.Fatalf("coeff len %d, want %d", len(q.Coeff), h)
				}
				for i, c := range q.Coeff {
					want := uint16(0)
					if i == int(idx) {
						want = 1
					}
					if c != want {
						t.Fatalf("coeff %d = %d, want unit vector at %d", i, c, idx)
					}
				}
			}
		})
	}
}

func TestSystematicWireMalformed(t *testing.T) {
	t.Parallel()
	p := &Packet{Gen: 1, Coeff: make([]uint16, 4), Payload: []byte{1, 2, 3, 4}, Sys: true, SysIdx: 2}
	p.Coeff[2] = 1
	wire := p.Marshal(gf.F256)
	if _, err := Unmarshal(gf.F256, wire[:len(wire)-1]); err == nil {
		t.Error("truncated systematic packet accepted")
	}
	// Index >= coefficient count must be rejected.
	bad := append([]byte(nil), wire...)
	bad[packetHeaderLen], bad[packetHeaderLen+1] = 0, 9
	if _, err := Unmarshal(gf.F256, bad); err == nil {
		t.Error("out-of-range systematic index accepted")
	}
}

// TestCodedWireGolden pins the coded-packet encoding byte-for-byte: the
// systematic flag lives in a header bit that was always zero before, so
// non-systematic frames must be unchanged across the feature.
func TestCodedWireGolden(t *testing.T) {
	t.Parallel()
	p := &Packet{Gen: 0x01020304, Coeff: []uint16{0xAA, 0, 0x0B}, Payload: []byte{0xDE, 0xAD}}
	want := []byte{
		0x01, 0x02, 0x03, 0x04, // generation
		0x00, 0x03, // coefficient count
		0x00, 0x00, 0x00, 0x02, // payload length, bit 31 clear
		0xAA, 0x00, 0x0B, // coefficients, 1B each over GF(2^8)
		0xDE, 0xAD, // payload
	}
	if got := p.Marshal(gf.F256); !bytes.Equal(got, want) {
		t.Fatalf("coded wire encoding changed:\n got %x\nwant %x", got, want)
	}
	sys := &Packet{Gen: 0x01020304, Coeff: []uint16{0, 1, 0}, Payload: []byte{0xDE, 0xAD}, Sys: true, SysIdx: 1}
	wantSys := []byte{
		0x01, 0x02, 0x03, 0x04, // generation
		0x00, 0x03, // coefficient count
		0x80, 0x00, 0x00, 0x02, // payload length with systematic flag
		0x00, 0x01, // source index
		0xDE, 0xAD, // payload
	}
	if got := sys.Marshal(gf.F256); !bytes.Equal(got, wantSys) {
		t.Fatalf("systematic wire encoding:\n got %x\nwant %x", got, wantSys)
	}
}

// TestSystematicFastPathMixed drives a decoder with every arrival mix the
// fast path must survive: systematic-first (the loss-free case), coded
// rows before their systematic duplicates (slot-filled fallback), repeated
// systematic packets, and a hand-built packet whose stale Coeff disagrees
// with SysIdx (stage must trust the index, not the vector).
func TestSystematicFastPathMixed(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(21))
	const h, size = 8, 64
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		r.Read(src[i])
	}
	enc, err := NewEncoder(gf.F256, 7, src)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("loss-free", func(t *testing.T) {
		dec, _ := NewDecoder(gf.F256, 7, h, size)
		for i := 0; i < h; i++ {
			p, _ := enc.Systematic(i)
			inn, err := dec.Add(p)
			p.Release()
			if err != nil || !inn {
				t.Fatalf("systematic %d: innovative=%v err=%v", i, inn, err)
			}
		}
		got, err := dec.Source()
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("source %d mismatch", i)
			}
		}
	})

	t.Run("coded-then-systematic", func(t *testing.T) {
		dec, _ := NewDecoder(gf.F256, 7, h, size)
		for dec.Rank() < h/2 {
			p := enc.Packet(r)
			if _, err := dec.Add(p); err != nil {
				t.Fatal(err)
			}
			p.Release()
		}
		for i := 0; i < h; i++ {
			p, _ := enc.Systematic(i)
			if _, err := dec.Add(p); err != nil {
				t.Fatal(err)
			}
			p.Release()
			// Duplicate systematic must be absorbed as redundant.
			q, _ := enc.Systematic(i)
			inn, err := dec.Add(q)
			q.Release()
			if err != nil {
				t.Fatal(err)
			}
			if inn {
				t.Fatalf("duplicate systematic %d reported innovative", i)
			}
		}
		got, err := dec.Source()
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("source %d mismatch", i)
			}
		}
	})

	t.Run("stale-coeff-ignored", func(t *testing.T) {
		dec, _ := NewDecoder(gf.F256, 7, h, size)
		p := &Packet{Gen: 7, Coeff: make([]uint16, h), Payload: append([]byte(nil), src[3]...), Sys: true, SysIdx: 3}
		p.Coeff[0] = 0xAA // lies; stage must rebuild the unit vector from SysIdx
		if inn, err := dec.Add(p); err != nil || !inn {
			t.Fatalf("innovative=%v err=%v", inn, err)
		}
		for i := 0; i < h; i++ {
			if i == 3 {
				continue
			}
			q, _ := enc.Systematic(i)
			if _, err := dec.Add(q); err != nil {
				t.Fatal(err)
			}
			q.Release()
		}
		got, err := dec.Source()
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("source %d mismatch", i)
			}
		}
	})

	t.Run("out-of-range-idx", func(t *testing.T) {
		dec, _ := NewDecoder(gf.F256, 7, h, size)
		p := &Packet{Gen: 7, Coeff: make([]uint16, h), Payload: make([]byte, size), Sys: true, SysIdx: h}
		if _, err := dec.Add(p); err == nil {
			t.Fatal("out-of-range systematic index accepted")
		}
	})
}
