//go:build !race

package rlnc

// raceEnabled reports whether the race detector is compiled in; alloc
// assertions are skipped under -race because the detector instruments
// allocations.
const raceEnabled = false
