package rlnc

import (
	"errors"
	"fmt"
	"math/rand"

	"ncast/internal/gf"
)

// ErrIncomplete is returned when content is requested before every
// generation has been decoded.
var ErrIncomplete = errors.New("rlnc: content incomplete")

// Params fixes the coding parameters of one broadcast session. Both ends
// must agree on them out of band (the protocol layer carries them in the
// hello exchange).
type Params struct {
	// Field is the coding field (gf.F2, gf.F256, or gf.F65536).
	Field gf.Field
	// GenSize is h, the number of source packets per generation.
	GenSize int
	// PacketSize is the payload length of each packet in bytes; it must
	// be a multiple of the field's symbol size.
	PacketSize int
}

// Validate checks the parameter combination.
func (p Params) Validate() error {
	if p.Field == nil {
		return errors.New("rlnc: nil field")
	}
	if p.GenSize <= 0 || p.GenSize > 65535 {
		return fmt.Errorf("rlnc: generation size %d out of range [1,65535]", p.GenSize)
	}
	if p.PacketSize <= 0 || p.PacketSize%p.Field.SymbolSize() != 0 {
		return fmt.Errorf("rlnc: packet size %d invalid for %s", p.PacketSize, p.Field.Name())
	}
	return nil
}

// genBytes returns the number of content bytes one generation carries.
func (p Params) genBytes() int { return p.GenSize * p.PacketSize }

// Generations returns how many generations content of the given size needs.
func (p Params) Generations(contentLen int) int {
	if contentLen == 0 {
		return 0
	}
	return (contentLen + p.genBytes() - 1) / p.genBytes()
}

// FileEncoder segments a content blob into generations and encodes each.
// It is the server-side source of a broadcast.
type FileEncoder struct {
	params Params
	length int
	gens   []*Encoder
}

// NewFileEncoder segments content according to params. The final
// generation is zero-padded to a full h packets so every generation has
// identical shape. The content slice is copied.
func NewFileEncoder(params Params, content []byte) (*FileEncoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(content) == 0 {
		return nil, errors.New("rlnc: empty content")
	}
	n := params.Generations(len(content))
	fe := &FileEncoder{params: params, length: len(content), gens: make([]*Encoder, 0, n)}
	for g := 0; g < n; g++ {
		src := make([][]byte, params.GenSize)
		base := g * params.genBytes()
		for i := range src {
			src[i] = make([]byte, params.PacketSize)
			off := base + i*params.PacketSize
			if off < len(content) {
				copy(src[i], content[off:])
			}
		}
		enc, err := NewEncoder(params.Field, uint32(g), src)
		if err != nil {
			return nil, err
		}
		fe.gens = append(fe.gens, enc)
	}
	return fe, nil
}

// Params returns the session coding parameters.
func (fe *FileEncoder) Params() Params { return fe.params }

// Length returns the original content length in bytes.
func (fe *FileEncoder) Length() int { return fe.length }

// NumGenerations returns the generation count.
func (fe *FileEncoder) NumGenerations() int { return len(fe.gens) }

// Packet emits a random coded packet for generation g.
func (fe *FileEncoder) Packet(g int, r *rand.Rand) (*Packet, error) {
	if g < 0 || g >= len(fe.gens) {
		return nil, fmt.Errorf("rlnc: generation %d out of range [0,%d)", g, len(fe.gens))
	}
	return fe.gens[g].Packet(r), nil
}

// Systematic emits source packet i of generation g uncoded, flagged for
// the decoder's systematic fast path. Sources send each generation's h
// source packets once this way before switching to random coding, so a
// loss-free receiver decodes at copy speed.
func (fe *FileEncoder) Systematic(g, i int) (*Packet, error) {
	if g < 0 || g >= len(fe.gens) {
		return nil, fmt.Errorf("rlnc: generation %d out of range [0,%d)", g, len(fe.gens))
	}
	return fe.gens[g].Systematic(i)
}

// FileDecoder reassembles a content blob from coded packets spanning
// multiple generations.
type FileDecoder struct {
	params Params
	length int
	decs   []*Decoder
	done   int
}

// NewFileDecoder prepares decoding of a blob of contentLen bytes coded
// with params.
func NewFileDecoder(params Params, contentLen int) (*FileDecoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if contentLen <= 0 {
		return nil, fmt.Errorf("rlnc: invalid content length %d", contentLen)
	}
	n := params.Generations(contentLen)
	fd := &FileDecoder{params: params, length: contentLen, decs: make([]*Decoder, n)}
	for g := range fd.decs {
		dec, err := NewDecoder(params.Field, uint32(g), params.GenSize, params.PacketSize)
		if err != nil {
			return nil, err
		}
		fd.decs[g] = dec
	}
	return fd, nil
}

// Add absorbs a coded packet for any generation of the blob.
func (fd *FileDecoder) Add(p *Packet) (innovative bool, err error) {
	if int(p.Gen) >= len(fd.decs) {
		return false, fmt.Errorf("rlnc: packet generation %d out of range [0,%d)", p.Gen, len(fd.decs))
	}
	dec := fd.decs[p.Gen]
	wasComplete := dec.Complete()
	innovative, err = dec.Add(p)
	if err != nil {
		return false, err
	}
	if !wasComplete && dec.Complete() {
		fd.done++
	}
	return innovative, nil
}

// NumGenerations returns the generation count.
func (fd *FileDecoder) NumGenerations() int { return len(fd.decs) }

// GenerationRank returns the current rank of generation g's decoder.
func (fd *FileDecoder) GenerationRank(g int) int { return fd.decs[g].Rank() }

// GenerationComplete reports whether generation g has been decoded.
func (fd *FileDecoder) GenerationComplete(g int) bool { return fd.decs[g].Complete() }

// Complete reports whether every generation has been decoded.
func (fd *FileDecoder) Complete() bool { return fd.done == len(fd.decs) }

// Progress returns the fraction of total rank gathered, in [0,1].
func (fd *FileDecoder) Progress() float64 {
	if len(fd.decs) == 0 {
		return 1
	}
	total := 0
	for _, d := range fd.decs {
		total += d.Rank()
	}
	return float64(total) / float64(len(fd.decs)*fd.params.GenSize)
}

// Bytes reassembles and returns the original content. It errors with
// ErrIncomplete until Complete() holds.
func (fd *FileDecoder) Bytes() ([]byte, error) {
	if !fd.Complete() {
		return nil, fmt.Errorf("%w: %d of %d generations decoded", ErrIncomplete, fd.done, len(fd.decs))
	}
	out := make([]byte, 0, fd.length)
	for _, d := range fd.decs {
		src, err := d.Source()
		if err != nil {
			return nil, err
		}
		for _, pkt := range src {
			out = append(out, pkt...)
		}
	}
	return out[:fd.length], nil
}
