package rlnc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ncast/internal/gf"
)

// TestQuickEncodeDecodeRoundTrip fuzzes the codec across quick-generated
// parameter combinations: any (field, h, payload size) must round-trip.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	t.Parallel()
	fields := []gf.Field{gf.F2, gf.F256, gf.F65536}
	prop := func(seed int64, fRaw, hRaw, szRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		f := fields[int(fRaw)%len(fields)]
		h := 1 + int(hRaw)%24
		size := f.SymbolSize() * (1 + int(szRaw)%48)
		src := make([][]byte, h)
		for i := range src {
			src[i] = make([]byte, size)
			r.Read(src[i])
		}
		enc, err := NewEncoder(f, 9, src)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(f, 9, h, size)
		if err != nil {
			return false
		}
		for n := 0; !dec.Complete(); n++ {
			if n > 60*h {
				t.Logf("no convergence: %s h=%d", f.Name(), h)
				return false
			}
			if _, err := dec.Add(enc.Packet(r)); err != nil {
				return false
			}
		}
		got, err := dec.Source()
		if err != nil {
			return false
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWireRoundTrip fuzzes Marshal/Unmarshal.
func TestQuickWireRoundTrip(t *testing.T) {
	t.Parallel()
	fields := []gf.Field{gf.F2, gf.F256, gf.F65536}
	prop := func(seed int64, fRaw, hRaw, szRaw uint8, gen uint32) bool {
		r := rand.New(rand.NewSource(seed))
		f := fields[int(fRaw)%len(fields)]
		h := 1 + int(hRaw)%64
		size := f.SymbolSize() * (1 + int(szRaw)%64)
		p := &Packet{Gen: gen, Coeff: make([]uint16, h), Payload: make([]byte, size)}
		for i := range p.Coeff {
			p.Coeff[i] = f.Rand(r)
		}
		r.Read(p.Payload)
		q, err := Unmarshal(f, p.Marshal(f))
		if err != nil {
			return false
		}
		if q.Gen != p.Gen || !bytes.Equal(q.Payload, p.Payload) || len(q.Coeff) != len(p.Coeff) {
			return false
		}
		for i := range p.Coeff {
			if q.Coeff[i] != p.Coeff[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecoderPreservesSubspace: whatever subset of coded packets a
// recoder holds, its outputs never let a decoder exceed the recoder's own
// rank, and always let it reach that rank.
func TestQuickRecoderPreservesSubspace(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, feedRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		const h, size = 12, 24
		src := make([][]byte, h)
		for i := range src {
			src[i] = make([]byte, size)
			r.Read(src[i])
		}
		enc, err := NewEncoder(gf.F256, 0, src)
		if err != nil {
			return false
		}
		rc, err := NewRecoder(gf.F256, 0, h, size)
		if err != nil {
			return false
		}
		feed := 1 + int(feedRaw)%h
		for i := 0; i < feed; i++ {
			if _, err := rc.Add(enc.Packet(r)); err != nil {
				return false
			}
		}
		want := rc.Rank()
		dec, err := NewDecoder(gf.F256, 0, h, size)
		if err != nil {
			return false
		}
		for i := 0; i < 30*h; i++ {
			p, ok := rc.Packet(r)
			if !ok {
				return false
			}
			if _, err := dec.Add(p); err != nil {
				return false
			}
			if dec.Rank() == want {
				break
			}
		}
		return dec.Rank() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLayeredPacket(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	content := make([]byte, 64<<10)
	r.Read(content)
	enc, err := NewLayeredEncoder(LayeredParams{
		Params:  Params{Field: gf.F256, GenSize: 16, PacketSize: 1024},
		Weights: []float64{4, 2, 1},
	}, content)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Packet(r); err != nil {
			b.Fatal(err)
		}
	}
}
