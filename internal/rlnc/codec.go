package rlnc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ncast/internal/gf"
	"ncast/internal/obs"
)

// codecObs carries optional instrumentation for a Decoder or Recoder:
// Gaussian-elimination time per absorbed packet and first-packet-to-full-
// rank latency per generation. A nil *codecObs is a single-branch no-op,
// so uninstrumented codecs never read the clock.
type codecObs struct {
	m       *obs.CodecMetrics
	firstAt time.Time
	done    bool
}

// addObserved runs the basis add under o's timing, routing systematic
// packets to the fast install path. o may be nil.
func addObserved(b *basis, o *codecObs, sys bool, sysIdx uint16, coeff []uint16, payload []byte) (bool, error) {
	if o == nil {
		return b.addPacket(sys, sysIdx, coeff, payload)
	}
	if o.firstAt.IsZero() {
		o.firstAt = time.Now()
	}
	start := time.Now()
	innovative, err := b.addPacket(sys, sysIdx, coeff, payload)
	o.m.GaussNanos.ObserveSince(start)
	if err == nil && !o.done && b.complete() {
		o.done = true
		o.m.GenLatency.ObserveSince(o.firstAt)
		o.m.GensComplete.Inc()
	}
	return innovative, err
}

// Encoder produces coded packets for one generation of source data. It is
// the role of the broadcast server, which holds the original packets.
type Encoder struct {
	f    gf.Field
	gen  uint32
	src  [][]byte
	size int
}

// NewEncoder wraps h equal-length source packets as generation gen.
// The source slices are retained, not copied; callers must not mutate them
// afterwards.
func NewEncoder(f gf.Field, gen uint32, src [][]byte) (*Encoder, error) {
	if len(src) == 0 || len(src) > 65535 {
		return nil, fmt.Errorf("rlnc: generation size %d out of range [1,65535]", len(src))
	}
	size := len(src[0])
	if size == 0 || size%f.SymbolSize() != 0 {
		return nil, fmt.Errorf("rlnc: source packet size %d invalid for %s", size, f.Name())
	}
	for i, s := range src {
		if len(s) != size {
			return nil, fmt.Errorf("rlnc: source packet %d has size %d, want %d", i, len(s), size)
		}
	}
	return &Encoder{f: f, gen: gen, src: src, size: size}, nil
}

// GenerationSize returns the number of source packets h.
func (e *Encoder) GenerationSize() int { return len(e.src) }

// PayloadSize returns the per-packet payload length in bytes.
func (e *Encoder) PayloadSize() int { return e.size }

// Packet emits a fresh uniformly random linear combination of the
// generation's source packets. The returned packet is pooled; Release it
// when done to keep the emit path allocation-free.
func (e *Encoder) Packet(r *rand.Rand) *Packet {
	p := getPacket(e.gen, len(e.src), e.size)
	for i := range p.Coeff {
		c := e.f.Rand(r)
		p.Coeff[i] = c
		if c != 0 {
			e.f.AddMulSlice(p.Payload, e.src[i], c)
		}
	}
	return p
}

// Systematic emits source packet i uncoded (unit coefficient vector).
// Useful to seed decoders cheaply before switching to random coding.
// The returned packet is pooled; Release it when done.
func (e *Encoder) Systematic(i int) (*Packet, error) {
	if i < 0 || i >= len(e.src) {
		return nil, fmt.Errorf("rlnc: systematic index %d out of range [0,%d)", i, len(e.src))
	}
	p := getPacket(e.gen, len(e.src), e.size)
	p.Coeff[i] = 1
	p.Sys, p.SysIdx = true, uint16(i)
	copy(p.Payload, e.src[i])
	return p, nil
}

// scratch holds a codec's reusable staging buffers for Add: the incoming
// packet is copied here, eliminated in place, and the buffers are donated
// to the basis only when the packet turns out innovative (at most h times
// per generation). Redundant packets — the steady state of a flooded
// overlay — are absorbed with zero allocations.
type scratch struct {
	coeff   []uint16
	payload []byte
}

// stage copies the packet into the scratch buffers, reusing their capacity.
// For systematic packets the coefficient vector is reconstructed as the
// unit vector of SysIdx rather than copied, so the basis fast path's
// precondition holds even for hand-built packets with stale Coeff.
func (s *scratch) stage(p *Packet) ([]uint16, []byte) {
	if cap(s.coeff) >= len(p.Coeff) {
		s.coeff = s.coeff[:len(p.Coeff)]
	} else {
		s.coeff = make([]uint16, len(p.Coeff))
	}
	if p.Sys {
		clear(s.coeff)
		if int(p.SysIdx) < len(s.coeff) {
			s.coeff[p.SysIdx] = 1
		}
	} else {
		copy(s.coeff, p.Coeff)
	}
	if cap(s.payload) >= len(p.Payload) {
		s.payload = s.payload[:len(p.Payload)]
	} else {
		s.payload = make([]byte, len(p.Payload))
	}
	copy(s.payload, p.Payload)
	return s.coeff, s.payload
}

// donate relinquishes the buffers after the basis captured them.
func (s *scratch) donate() { s.coeff, s.payload = nil, nil }

// Decoder recovers one generation by progressive Gaussian elimination.
// All methods are safe for concurrent use; the parallel file decoder
// relies on that for cross-generation fan-out while keeping each
// decoder's elimination single-threaded (packets for one generation are
// always handled by one worker).
type Decoder struct {
	f   gf.Field
	gen uint32
	mu  sync.Mutex
	b   *basis
	obs *codecObs
	s   scratch
}

// Instrument attaches obs metrics; a nil bundle leaves the decoder
// uninstrumented. Not safe to call concurrently with Add.
func (d *Decoder) Instrument(m *obs.CodecMetrics) {
	if m == nil {
		return
	}
	d.mu.Lock()
	d.obs = &codecObs{m: m}
	d.mu.Unlock()
}

// NewDecoder creates a decoder for generation gen with h source packets of
// the given payload size.
func NewDecoder(f gf.Field, gen uint32, h, size int) (*Decoder, error) {
	b, err := newBasis(f, h, size)
	if err != nil {
		return nil, err
	}
	return &Decoder{f: f, gen: gen, b: b}, nil
}

// Add absorbs a coded packet, reporting whether it was innovative
// (increased the decoder's rank). Packets for other generations are
// rejected with an error. The packet is copied; the caller keeps ownership.
func (d *Decoder) Add(p *Packet) (innovative bool, err error) {
	if p.Gen != d.gen {
		return false, fmt.Errorf("rlnc: packet for generation %d, decoder expects %d", p.Gen, d.gen)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	coeff, payload := d.s.stage(p)
	innovative, err = addObserved(d.b, d.obs, p.Sys, p.SysIdx, coeff, payload)
	if innovative {
		d.s.donate()
	}
	return innovative, err
}

// Rank returns the number of linearly independent packets received.
func (d *Decoder) Rank() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.rank()
}

// Complete reports whether the generation can be decoded.
func (d *Decoder) Complete() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.complete()
}

// Source returns the decoded source packets; it errors until Complete.
// The returned slices alias decoder state; callers must not modify them.
func (d *Decoder) Source() ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.b.source()
}

// Recoder is the buffer-and-mix element run by every overlay node: it
// stores the innovative packets seen so far (in reduced form) and emits
// fresh random combinations of them. A recoder never needs the source
// data, only coded packets, and its output is statistically equivalent to
// fresh encodings of the subspace it has received — the key property of
// practical network coding.
type Recoder struct {
	f   gf.Field
	gen uint32
	mu  sync.Mutex
	b   *basis
	obs *codecObs
	s   scratch
}

// Instrument attaches obs metrics; a nil bundle leaves the recoder
// uninstrumented. Callers must serialise with Add (the protocol layer
// instruments a recoder at creation, before any packet arrives).
func (rc *Recoder) Instrument(m *obs.CodecMetrics) {
	if m == nil {
		return
	}
	rc.mu.Lock()
	rc.obs = &codecObs{m: m}
	rc.mu.Unlock()
}

// NewRecoder creates a recoder for generation gen.
func NewRecoder(f gf.Field, gen uint32, h, size int) (*Recoder, error) {
	b, err := newBasis(f, h, size)
	if err != nil {
		return nil, err
	}
	return &Recoder{f: f, gen: gen, b: b}, nil
}

// Add buffers a received packet, reporting whether it was innovative.
func (rc *Recoder) Add(p *Packet) (innovative bool, err error) {
	if p.Gen != rc.gen {
		return false, fmt.Errorf("rlnc: packet for generation %d, recoder expects %d", p.Gen, rc.gen)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	coeff, payload := rc.s.stage(p)
	innovative, err = addObserved(rc.b, rc.obs, p.Sys, p.SysIdx, coeff, payload)
	if innovative {
		rc.s.donate()
	}
	return innovative, err
}

// Rank returns the dimension of the received subspace.
func (rc *Recoder) Rank() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.b.rank()
}

// Complete reports whether the recoder holds the full generation.
func (rc *Recoder) Complete() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.b.complete()
}

// Packet emits a random combination of the buffered packets. It returns
// false when the buffer is empty. The returned packet is pooled; Release
// it when done to keep the emit path allocation-free.
func (rc *Recoder) Packet(r *rand.Rand) (*Packet, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.b.rank() == 0 {
		return nil, false
	}
	p := getPacket(rc.gen, rc.b.h, rc.b.size)
	for i := range rc.b.rows {
		row := &rc.b.rows[i]
		c := rc.f.Rand(r)
		if c == 0 {
			continue
		}
		rc.f.AddMulCoeff(p.Coeff, row.coeff, c)
		rc.f.AddMulSlice(p.Payload, row.payload, c)
	}
	return p, true
}

// Decode returns the source packets once the recoder is complete; a node
// that has gathered full rank can play out the content directly.
func (rc *Recoder) Decode() ([][]byte, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.b.source()
}
