package rlnc

import "sync"

// The data plane recycles Packet objects through a sync.Pool so that the
// steady-state emit paths (Encoder.Packet, Recoder.Packet) and the wire
// decode path (Unmarshal) allocate nothing once warm. The pool stores
// *Packet — the backing Coeff/Payload arrays travel with the struct and
// are resliced, so a Get after a same-shaped Put reuses both.
//
// Ownership rule: a packet obtained from any of those constructors is
// owned by the caller; calling Release returns it (and its buffers) to
// the pool. Release is strictly optional — an un-released packet is
// ordinary garbage — but a released packet must not be touched again.
// Codec Add methods copy out of the packet, so it is safe to Release
// immediately after Add returns.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// getPacket returns a pooled packet shaped for generation gen with h
// coefficients and a size-byte payload. Both slices are zeroed so callers
// can accumulate into them directly.
func getPacket(gen uint32, h, size int) *Packet {
	p := packetPool.Get().(*Packet)
	p.Gen = gen
	p.Sys, p.SysIdx = false, 0
	if cap(p.Coeff) >= h {
		p.Coeff = p.Coeff[:h]
		clear(p.Coeff)
	} else {
		p.Coeff = make([]uint16, h)
	}
	if cap(p.Payload) >= size {
		p.Payload = p.Payload[:size]
		clear(p.Payload)
	} else {
		p.Payload = make([]byte, size)
	}
	return p
}

// Release returns the packet and its buffers to the shared packet pool.
// It is safe on nil. After Release the packet must not be used; in
// particular, slices previously returned by aliasing accessors are dead.
func (p *Packet) Release() {
	if p == nil {
		return
	}
	packetPool.Put(p)
}

// frameBufPool recycles wire-encoding scratch ([]byte accumulated via
// AppendTo). Stored as *[]byte to keep Put/Get allocation-free.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

// GetFrameBuf returns a zero-length byte buffer from the wire-frame pool.
// Append to it freely; return it with PutFrameBuf when the encoded bytes
// are no longer referenced.
func GetFrameBuf() *[]byte {
	b := frameBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf to the pool.
func PutFrameBuf(b *[]byte) {
	if b != nil {
		frameBufPool.Put(b)
	}
}
