package rlnc_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"ncast/internal/gf"
	"ncast/internal/rlnc"
)

// Example shows the practical-network-coding pipeline the paper's data
// plane uses: a server encodes a generation, an intermediate node re-mixes
// without ever decoding, and the receiver recovers the originals.
func Example() {
	rng := rand.New(rand.NewSource(7))
	src := [][]byte{
		[]byte("pkt-0000"),
		[]byte("pkt-0001"),
		[]byte("pkt-0002"),
		[]byte("pkt-0003"),
	}

	enc, err := rlnc.NewEncoder(gf.F256, 0, src)
	if err != nil {
		log.Fatal(err)
	}
	relay, err := rlnc.NewRecoder(gf.F256, 0, len(src), len(src[0]))
	if err != nil {
		log.Fatal(err)
	}
	sink, err := rlnc.NewDecoder(gf.F256, 0, len(src), len(src[0]))
	if err != nil {
		log.Fatal(err)
	}

	// Server -> relay: random combinations of the source packets.
	for i := 0; i < len(src)+1; i++ {
		if _, err := relay.Add(enc.Packet(rng)); err != nil {
			log.Fatal(err)
		}
	}
	// Relay -> sink: fresh re-mixes of whatever the relay buffered.
	for !sink.Complete() {
		p, _ := relay.Packet(rng)
		if _, err := sink.Add(p); err != nil {
			log.Fatal(err)
		}
	}

	decoded, err := sink.Source()
	if err != nil {
		log.Fatal(err)
	}
	for i := range src {
		fmt.Printf("%s == %s: %v\n", src[i], decoded[i], bytes.Equal(src[i], decoded[i]))
	}
	// Output:
	// pkt-0000 == pkt-0000: true
	// pkt-0001 == pkt-0001: true
	// pkt-0002 == pkt-0002: true
	// pkt-0003 == pkt-0003: true
}
