package rlnc

import (
	"fmt"

	"ncast/internal/gf"
)

// basis maintains a set of coded packets in reduced row-echelon form. It is
// the shared core of Decoder and Recoder: Add performs one step of
// progressive Gaussian elimination, keeping exactly one row per pivot and
// eliminating each new pivot from all other rows, so that when the rank
// reaches h the coefficient matrix is the identity and the payload rows
// are the decoded source packets.
type basis struct {
	f    gf.Field
	h    int // generation size: coefficient vector length
	size int // payload length in bytes
	rows []basisRow
	// pivot maps pivot column -> index in rows, -1 when the column has no
	// pivot yet. A dense slice instead of a map: the elimination inner
	// loop probes it once per nonzero coefficient, and at h=16 the map
	// hash dominated the probe.
	pivot []int
}

type basisRow struct {
	pivot   int
	coeff   []uint16
	payload []byte
}

func newBasis(f gf.Field, h, size int) (*basis, error) {
	if h <= 0 || h > 65535 {
		return nil, fmt.Errorf("rlnc: generation size %d out of range [1,65535]", h)
	}
	if size <= 0 || size%f.SymbolSize() != 0 {
		return nil, fmt.Errorf("rlnc: payload size %d invalid for %s", size, f.Name())
	}
	pivot := make([]int, h)
	for i := range pivot {
		pivot[i] = -1
	}
	return &basis{
		f:     f,
		h:     h,
		size:  size,
		rows:  make([]basisRow, 0, h),
		pivot: pivot,
	}, nil
}

func (b *basis) rank() int { return len(b.rows) }

func (b *basis) complete() bool { return len(b.rows) == b.h }

// add absorbs a packet. It returns true when the packet was innovative
// (increased the rank). The packet's slices are consumed: add may modify
// them in place; callers pass ownership.
func (b *basis) add(coeff []uint16, payload []byte) (bool, error) {
	if len(coeff) != b.h {
		return false, fmt.Errorf("rlnc: coefficient length %d, want %d", len(coeff), b.h)
	}
	if len(payload) != b.size {
		return false, fmt.Errorf("rlnc: payload length %d, want %d", len(payload), b.size)
	}
	// Forward-eliminate against every existing pivot row. The scan must
	// run to the end even after the new pivot column is found: the packet
	// may still have nonzero entries at pivot columns further right, and
	// installing it un-reduced would break the RREF invariant. Each basis
	// row's pivot is its leftmost nonzero entry, so eliminating with a
	// later pivot row never disturbs the chosen pivot column.
	newPivot := -1
	for c := 0; c < b.h; c++ {
		if coeff[c] == 0 {
			continue
		}
		ri := b.pivot[c]
		if ri < 0 {
			if newPivot < 0 {
				newPivot = c
			}
			continue
		}
		b.eliminate(coeff, payload, &b.rows[ri], coeff[c])
	}
	if newPivot < 0 {
		return false, nil // fully eliminated: not innovative
	}
	b.install(newPivot, coeff, payload)
	return true, nil
}

// addSys absorbs a systematic packet: coeff MUST be the unit vector for
// column idx (callers construct it rather than trusting the wire). When
// the column is still open the row installs with no elimination at all —
// the loss-free fast path, whose only payload work is the caller's copy
// into the staging buffer. A filled column falls back to general
// elimination, which handles duplicates and mixed arrivals.
func (b *basis) addSys(idx int, coeff []uint16, payload []byte) (bool, error) {
	if idx < 0 || idx >= b.h {
		return false, fmt.Errorf("rlnc: systematic index %d out of range [0,%d)", idx, b.h)
	}
	if len(payload) != b.size {
		return false, fmt.Errorf("rlnc: payload length %d, want %d", len(payload), b.size)
	}
	if b.pivot[idx] >= 0 {
		return b.add(coeff, payload)
	}
	b.install(idx, coeff, payload)
	return true, nil
}

// eliminate subtracts factor times row from (coeff, payload), entirely
// in place through the field's bulk kernels.
func (b *basis) eliminate(coeff []uint16, payload []byte, row *basisRow, factor uint16) {
	b.f.AddMulCoeff(coeff, row.coeff, factor)
	b.f.AddMulSlice(payload, row.payload, factor)
}

// install normalises the row so its pivot is 1, back-substitutes it into
// every existing row, and records it.
func (b *basis) install(pivot int, coeff []uint16, payload []byte) {
	if v := coeff[pivot]; v != 1 {
		inv := b.f.Inv(v)
		b.f.MulCoeff(coeff, inv)
		b.f.MulSlice(payload, payload, inv)
	}
	newRow := basisRow{pivot: pivot, coeff: coeff, payload: payload}
	// Back-substitute: clear this pivot column from all existing rows to
	// keep the basis in *reduced* echelon form.
	for i := range b.rows {
		if f := b.rows[i].coeff[pivot]; f != 0 {
			b.eliminate(b.rows[i].coeff, b.rows[i].payload, &newRow, f)
		}
	}
	b.pivot[pivot] = len(b.rows)
	b.rows = append(b.rows, newRow)
}

// source returns the decoded source packets in order. Only valid when
// complete(); the coefficient matrix is then the identity, so row with
// pivot i holds source packet i verbatim.
func (b *basis) source() ([][]byte, error) {
	if !b.complete() {
		return nil, fmt.Errorf("rlnc: generation incomplete: rank %d of %d", b.rank(), b.h)
	}
	out := make([][]byte, b.h)
	for i := 0; i < b.h; i++ {
		out[i] = b.rows[b.pivot[i]].payload
	}
	return out, nil
}

// addPacket routes a packet's staged buffers to the systematic install
// path or general elimination.
func (b *basis) addPacket(sys bool, sysIdx uint16, coeff []uint16, payload []byte) (bool, error) {
	if sys {
		return b.addSys(int(sysIdx), coeff, payload)
	}
	return b.add(coeff, payload)
}
