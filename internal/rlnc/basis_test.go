package rlnc

import (
	"math/rand"
	"testing"

	"ncast/internal/gf"
)

// TestBasisOutOfOrderPivots is a regression test: when pivots are created
// out of column order (packet for column 3 arrives before any packet
// touching columns 0-2), the basis must still converge to reduced
// row-echelon form with unit coefficient vectors.
func TestBasisOutOfOrderPivots(t *testing.T) {
	t.Parallel()
	f := gf.F256
	b, err := newBasis(f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Feed rows engineered to create pivots in order 3, 1, 0, 2, with
	// overlaps that force both forward elimination and back-substitution.
	rows := [][]uint16{
		{0, 0, 0, 1},
		{0, 1, 0, 1},
		{1, 1, 0, 1},
		{1, 1, 1, 1},
	}
	payloads := [][]byte{
		{1, 0, 0, 0},
		{0, 2, 0, 0},
		{0, 0, 3, 0},
		{0, 0, 0, 4},
	}
	for i := range rows {
		inn, err := b.add(append([]uint16(nil), rows[i]...), append([]byte(nil), payloads[i]...))
		if err != nil {
			t.Fatal(err)
		}
		if !inn {
			t.Fatalf("row %d not innovative", i)
		}
	}
	if !b.complete() {
		t.Fatalf("rank = %d, want 4", b.rank())
	}
	for _, row := range b.rows {
		for j, c := range row.coeff {
			want := uint16(0)
			if j == row.pivot {
				want = 1
			}
			if c != want {
				t.Fatalf("row with pivot %d not a unit vector: %v", row.pivot, row.coeff)
			}
		}
	}
}

// TestBasisRandomRREFInvariant hammers the basis with random GF(2) packets
// (the field most prone to out-of-order pivots) and checks the RREF
// invariants after every insertion.
func TestBasisRandomRREFInvariant(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		const h = 12
		b, err := newBasis(gf.F2, h, 4)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 5*h && !b.complete(); n++ {
			coeff := make([]uint16, h)
			payload := make([]byte, 4)
			for i := range coeff {
				coeff[i] = uint16(r.Intn(2))
			}
			r.Read(payload)
			if _, err := b.add(coeff, payload); err != nil {
				t.Fatal(err)
			}
			// Invariant 1: each row's pivot is its leftmost nonzero.
			// Invariant 2: each row is zero at every other pivot column.
			for ri, row := range b.rows {
				for j, c := range row.coeff {
					if c != 0 && j < row.pivot {
						t.Fatalf("trial %d: row %d nonzero at %d left of pivot %d", trial, ri, j, row.pivot)
					}
					if c != 0 && j != row.pivot && b.pivot[j] >= 0 {
						t.Fatalf("trial %d: row %d nonzero at foreign pivot column %d", trial, ri, j)
					}
				}
				if row.coeff[row.pivot] != 1 {
					t.Fatalf("trial %d: row %d pivot entry = %d, want 1", trial, ri, row.coeff[row.pivot])
				}
			}
		}
	}
}
