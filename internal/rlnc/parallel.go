package rlnc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ncast/internal/obs"
)

// ParallelFileDecoder decodes a multi-generation blob with a bounded
// worker pool. Generations are independent linear systems, so their
// Gaussian eliminations parallelise perfectly: packets are sharded to
// workers by generation id (gen % workers), which keeps every
// generation's elimination on a single worker — no decoder ever sees
// concurrent Adds — while distinct generations decode concurrently.
//
// Add is asynchronous: it enqueues and returns immediately, applying
// backpressure only when the owning worker's queue is full. Progress is
// observed through Complete/Done (cheap atomics); Close stops the pool
// and must be called before Bytes so worker writes are flushed.
type ParallelFileDecoder struct {
	params  Params
	length  int
	decs    []*Decoder
	queues  []chan *Packet
	wg      sync.WaitGroup
	done    atomic.Int64 // completed generations
	closed  bool
	obs     *obs.CodecMetrics
	rankSum atomic.Int64
}

// queueDepth bounds each worker's backlog. Deep enough to ride out a
// burst, shallow enough that a stalled worker exerts backpressure on the
// producer instead of buffering unbounded packets.
const queueDepth = 64

// NewParallelFileDecoder prepares decoding of a contentLen-byte blob with
// the given worker count; workers <= 0 selects one worker per generation
// up to 4. m optionally instruments every generation's decoder (the
// metrics bundle is internally synchronized). Callers feed packets with
// Add from any single goroutine, then Close before reading Bytes.
func NewParallelFileDecoder(params Params, contentLen, workers int, m *obs.CodecMetrics) (*ParallelFileDecoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if contentLen <= 0 {
		return nil, fmt.Errorf("rlnc: invalid content length %d", contentLen)
	}
	n := params.Generations(contentLen)
	if workers <= 0 {
		workers = min(n, 4)
	}
	if workers > n {
		workers = n
	}
	pd := &ParallelFileDecoder{
		params: params,
		length: contentLen,
		decs:   make([]*Decoder, n),
		queues: make([]chan *Packet, workers),
		obs:    m,
	}
	for g := range pd.decs {
		dec, err := NewDecoder(params.Field, uint32(g), params.GenSize, params.PacketSize)
		if err != nil {
			return nil, err
		}
		dec.Instrument(m)
		pd.decs[g] = dec
	}
	for w := range pd.queues {
		pd.queues[w] = make(chan *Packet, queueDepth)
		pd.wg.Add(1)
		go pd.worker(pd.queues[w])
	}
	return pd, nil
}

// worker drains one shard's queue. Because sharding is by generation id,
// this worker is the only goroutine ever adding to its generations.
func (pd *ParallelFileDecoder) worker(queue <-chan *Packet) {
	defer pd.wg.Done()
	for p := range queue {
		dec := pd.decs[p.Gen]
		wasComplete := dec.Complete()
		innovative, err := dec.Add(p)
		p.Release()
		if err != nil {
			continue
		}
		if innovative {
			pd.rankSum.Add(1)
		}
		if !wasComplete && dec.Complete() {
			pd.done.Add(1)
		}
	}
}

// Add enqueues a coded packet for decoding, taking ownership: the packet
// is released back to the packet pool once absorbed. It blocks only when
// the target generation's worker queue is full and errors only on
// out-of-range generations or after Close.
func (pd *ParallelFileDecoder) Add(p *Packet) error {
	if int(p.Gen) >= len(pd.decs) {
		return fmt.Errorf("rlnc: packet generation %d out of range [0,%d)", p.Gen, len(pd.decs))
	}
	if pd.closed {
		return fmt.Errorf("rlnc: add after close")
	}
	pd.queues[int(p.Gen)%len(pd.queues)] <- p
	return nil
}

// NumGenerations returns the generation count.
func (pd *ParallelFileDecoder) NumGenerations() int { return len(pd.decs) }

// Workers returns the pool size.
func (pd *ParallelFileDecoder) Workers() int { return len(pd.queues) }

// Done returns how many generations have fully decoded so far.
func (pd *ParallelFileDecoder) Done() int { return int(pd.done.Load()) }

// Complete reports whether every generation has been decoded. It may
// trail an in-flight Add by the queue depth; poll it between feeds.
func (pd *ParallelFileDecoder) Complete() bool {
	return int(pd.done.Load()) == len(pd.decs)
}

// Progress returns the fraction of total rank gathered, in [0,1].
func (pd *ParallelFileDecoder) Progress() float64 {
	return float64(pd.rankSum.Load()) / float64(len(pd.decs)*pd.params.GenSize)
}

// Close stops the workers and waits for queued packets to drain. It must
// be called (from the feeding goroutine) before Bytes; Add errors
// afterwards. Close is idempotent.
func (pd *ParallelFileDecoder) Close() {
	if pd.closed {
		return
	}
	pd.closed = true
	for _, q := range pd.queues {
		close(q)
	}
	pd.wg.Wait()
}

// Bytes reassembles the original content. Callers must Close first; it
// errors with ErrIncomplete until every generation decoded.
func (pd *ParallelFileDecoder) Bytes() ([]byte, error) {
	if !pd.closed {
		return nil, fmt.Errorf("rlnc: Bytes before Close")
	}
	if !pd.Complete() {
		return nil, fmt.Errorf("%w: %d of %d generations decoded", ErrIncomplete, pd.Done(), len(pd.decs))
	}
	out := make([]byte, 0, pd.length)
	for _, d := range pd.decs {
		src, err := d.Source()
		if err != nil {
			return nil, err
		}
		for _, pkt := range src {
			out = append(out, pkt...)
		}
	}
	return out[:pd.length], nil
}
