package rlnc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/obs"
)

// ParallelFileDecoder decodes a multi-generation blob with a bounded
// worker pool. Generations are independent linear systems, so their
// Gaussian eliminations parallelise perfectly: packets are sharded to
// workers by generation id (gen % workers), which keeps every
// generation's elimination on a single worker — no engine ever sees
// concurrent adds — while distinct generations decode concurrently.
//
// The pool is built for throughput rather than per-packet latency:
//
//   - Packets travel in batches. Add accumulates up to batchSize packets
//     per worker before one channel send, so the per-packet cost of the
//     hand-off is a slice append, and a worker wakeup pays for a whole
//     batch of eliminations.
//   - Each generation runs a lock-free genDecoder (engine.go) with
//     contiguous rows, coefficient-first elimination, and deferred
//     back-substitution — see that file for why redundant packets are
//     near-free.
//   - Generation engines allocate lazily on the first packet that
//     reaches them, so a decoder for a large blob does not front-load
//     O(generations * GenSize * PacketSize) memory.
//
// Add is asynchronous: it enqueues and returns immediately, applying
// backpressure only when the owning worker's queue is full. Progress is
// observed through Complete/Done (cheap atomics); Close flushes pending
// batches, stops the pool, and must be called before Bytes.
type ParallelFileDecoder struct {
	params  Params
	length  int
	engines []*genDecoder
	queues  []chan *[]*Packet
	pending []*[]*Packet
	wg      sync.WaitGroup
	done    atomic.Int64 // completed generations
	closed  bool
	obs     *obs.CodecMetrics
	rankSum atomic.Int64
}

// batchSize is how many packets Add accumulates per worker before one
// channel send. Big enough to amortize the hand-off and wakeup, small
// enough that Complete() trails a live feed by at most a few packets
// per worker.
const batchSize = 32

// queueDepth bounds each worker's backlog, in batches. Deep enough to
// ride out a burst, shallow enough that a stalled worker exerts
// backpressure on the producer instead of buffering unbounded packets.
const queueDepth = 8

// batchPool recycles batch slices between Add and the workers so the
// steady-state feed path allocates nothing.
var batchPool = sync.Pool{New: func() any { s := make([]*Packet, 0, batchSize); return &s }}

// NewParallelFileDecoder prepares decoding of a contentLen-byte blob with
// the given worker count; workers <= 0 selects one worker per generation
// up to 4. m optionally instruments the decode (the metrics bundle is
// internally synchronized). Callers feed packets with Add from any
// single goroutine, then Close before reading Bytes.
func NewParallelFileDecoder(params Params, contentLen, workers int, m *obs.CodecMetrics) (*ParallelFileDecoder, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if contentLen <= 0 {
		return nil, fmt.Errorf("rlnc: invalid content length %d", contentLen)
	}
	n := params.Generations(contentLen)
	if workers <= 0 {
		workers = min(n, 4)
	}
	if workers > n {
		workers = n
	}
	pd := &ParallelFileDecoder{
		params:  params,
		length:  contentLen,
		engines: make([]*genDecoder, n),
		queues:  make([]chan *[]*Packet, workers),
		pending: make([]*[]*Packet, workers),
		obs:     m,
	}
	for w := range pd.queues {
		pd.queues[w] = make(chan *[]*Packet, queueDepth)
		pd.wg.Add(1)
		go pd.worker(pd.queues[w])
	}
	return pd, nil
}

// worker drains one shard's queue batch by batch. Because sharding is by
// generation id, this worker is the only goroutine ever touching its
// generations' engines — including their lazy construction.
func (pd *ParallelFileDecoder) worker(queue <-chan *[]*Packet) {
	defer pd.wg.Done()
	for batch := range queue {
		pd.runBatch(*batch)
		*batch = (*batch)[:0]
		batchPool.Put(batch)
	}
}

// runBatch eliminates a batch of packets. When instrumented, elimination
// time is observed once per batch (per-packet clock reads are exactly the
// kind of orchestration overhead the batch path exists to remove).
func (pd *ParallelFileDecoder) runBatch(batch []*Packet) {
	var start time.Time
	if pd.obs != nil {
		start = time.Now()
	}
	for _, p := range batch {
		g := int(p.Gen)
		e := pd.engines[g]
		if e == nil {
			e = newGenDecoder(pd.params.Field, pd.params.GenSize, pd.params.PacketSize)
			if pd.obs != nil {
				e.firstAt = time.Now()
			}
			pd.engines[g] = e
		}
		if e.reduced {
			p.Release() // generation already decoded: drop without field work
			continue
		}
		innovative, err := e.add(p)
		p.Release()
		if err != nil || !innovative {
			continue
		}
		pd.rankSum.Add(1)
		if e.complete() {
			e.reduce()
			pd.done.Add(1)
			if pd.obs != nil {
				pd.obs.GenLatency.ObserveSince(e.firstAt)
				pd.obs.GensComplete.Inc()
			}
		}
	}
	if pd.obs != nil {
		pd.obs.GaussNanos.ObserveSince(start)
	}
}

// Add enqueues a coded packet for decoding, taking ownership: the packet
// is released back to the packet pool once absorbed. Packets are staged
// into per-worker batches, so a packet may sit unprocessed until
// batchSize generation-mates follow it or Close flushes; poll Complete
// between feeds rather than after a fixed count. Add blocks only when
// the target worker's queue is full and errors only on out-of-range
// generations or after Close.
func (pd *ParallelFileDecoder) Add(p *Packet) error {
	if int(p.Gen) >= len(pd.engines) {
		return fmt.Errorf("rlnc: packet generation %d out of range [0,%d)", p.Gen, len(pd.engines))
	}
	if pd.closed {
		return fmt.Errorf("rlnc: add after close")
	}
	w := int(p.Gen) % len(pd.queues)
	buf := pd.pending[w]
	if buf == nil {
		buf = batchPool.Get().(*[]*Packet)
		pd.pending[w] = buf
	}
	*buf = append(*buf, p)
	if len(*buf) >= batchSize {
		pd.pending[w] = nil
		pd.queues[w] <- buf
	}
	return nil
}

// Flush pushes any partially-filled batches to the workers without
// closing the pool. Call it when pausing a feed to let Complete()
// converge on everything added so far.
func (pd *ParallelFileDecoder) Flush() {
	if pd.closed {
		return
	}
	for w, buf := range pd.pending {
		if buf != nil && len(*buf) > 0 {
			pd.pending[w] = nil
			pd.queues[w] <- buf
		}
	}
}

// NumGenerations returns the generation count.
func (pd *ParallelFileDecoder) NumGenerations() int { return len(pd.engines) }

// Workers returns the pool size.
func (pd *ParallelFileDecoder) Workers() int { return len(pd.queues) }

// Done returns how many generations have fully decoded so far.
func (pd *ParallelFileDecoder) Done() int { return int(pd.done.Load()) }

// Complete reports whether every generation has been decoded. It may
// trail in-flight and batched Adds; poll it between feeds.
func (pd *ParallelFileDecoder) Complete() bool {
	return int(pd.done.Load()) == len(pd.engines)
}

// Progress returns the fraction of total rank gathered, in [0,1].
func (pd *ParallelFileDecoder) Progress() float64 {
	return float64(pd.rankSum.Load()) / float64(len(pd.engines)*pd.params.GenSize)
}

// Close flushes pending batches, stops the workers, and waits for queued
// packets to drain. It must be called (from the feeding goroutine)
// before Bytes; Add errors afterwards. Close is idempotent.
func (pd *ParallelFileDecoder) Close() {
	if pd.closed {
		return
	}
	pd.Flush()
	pd.closed = true
	for _, q := range pd.queues {
		close(q)
	}
	pd.wg.Wait()
}

// Bytes reassembles the original content. Callers must Close first; it
// errors with ErrIncomplete until every generation decoded.
func (pd *ParallelFileDecoder) Bytes() ([]byte, error) {
	if !pd.closed {
		return nil, fmt.Errorf("rlnc: Bytes before Close")
	}
	if !pd.Complete() {
		return nil, fmt.Errorf("%w: %d of %d generations decoded", ErrIncomplete, pd.Done(), len(pd.engines))
	}
	out := make([]byte, 0, pd.length)
	for _, e := range pd.engines {
		src, err := e.source()
		if err != nil {
			return nil, err
		}
		for _, pkt := range src {
			out = append(out, pkt...)
		}
	}
	return out[:pd.length], nil
}
