package rlnc

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"ncast/internal/gf"
)

// fields under test for the wire/pipeline properties.
var fastpathFields = []gf.Field{gf.F2, gf.F256, gf.F65536}

func randomPacket(t testing.TB, f gf.Field, r *rand.Rand, gen uint32, h, size int) *Packet {
	t.Helper()
	p := &Packet{Gen: gen, Coeff: make([]uint16, h), Payload: make([]byte, size)}
	for i := range p.Coeff {
		p.Coeff[i] = f.Rand(r)
	}
	r.Read(p.Payload)
	return p
}

// TestAppendToMatchesMarshal pins AppendTo as the single encoder: it must
// produce Marshal's exact bytes, append after existing content without
// touching it, and round-trip through Unmarshal.
func TestAppendToMatchesMarshal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, f := range fastpathFields {
		for _, h := range []int{1, 7, 8, 9, 16} {
			p := randomPacket(t, f, r, 3, h, 64*f.SymbolSize())
			want := p.Marshal(f)
			prefix := []byte("prefix")
			got := p.AppendTo(append([]byte(nil), prefix...), f)
			if !bytes.HasPrefix(got, prefix) {
				t.Fatalf("%s h=%d: AppendTo clobbered existing bytes", f.Name(), h)
			}
			if !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("%s h=%d: AppendTo differs from Marshal", f.Name(), h)
			}
			if len(want) != p.WireSize(f) {
				t.Fatalf("%s h=%d: WireSize %d, marshalled %d", f.Name(), h, p.WireSize(f), len(want))
			}
			q, err := Unmarshal(f, want)
			if err != nil {
				t.Fatalf("%s h=%d: Unmarshal: %v", f.Name(), h, err)
			}
			for i := range p.Coeff {
				if q.Coeff[i] != p.Coeff[i]&uint16(f.Order()-1) {
					t.Fatalf("%s h=%d: coeff %d mismatch", f.Name(), h, i)
				}
			}
			if !bytes.Equal(q.Payload, p.Payload) {
				t.Fatalf("%s h=%d: payload mismatch", f.Name(), h)
			}
			q.Release()
		}
	}
}

// TestPooledPacketRecycled verifies that Release/getPacket reuse buffers
// of matching shape and that recycled packets come back zeroed.
func TestPooledPacketRecycled(t *testing.T) {
	p := getPacket(1, 8, 128)
	for i := range p.Coeff {
		p.Coeff[i] = 0xFFFF
	}
	for i := range p.Payload {
		p.Payload[i] = 0xFF
	}
	p.Release()
	q := getPacket(2, 8, 128)
	if q.Gen != 2 {
		t.Fatalf("gen = %d, want 2", q.Gen)
	}
	for i, c := range q.Coeff {
		if c != 0 {
			t.Fatalf("recycled coeff[%d] = %#x, want 0", i, c)
		}
	}
	for i, b := range q.Payload {
		if b != 0 {
			t.Fatalf("recycled payload[%d] = %#x, want 0", i, b)
		}
	}
	q.Release()
}

// TestEmitPathsZeroAlloc asserts the ISSUE's steady-state budget: with
// warm pools, Encoder.Packet and Recoder.Packet (emit + release) and a
// redundant Recoder.Add run without allocating.
func TestEmitPathsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	r := rand.New(rand.NewSource(11))
	const h, size = 16, 1024
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		r.Read(src[i])
	}
	enc, err := NewEncoder(gf.F256, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRecoder(gf.F256, 0, h, size)
	if err != nil {
		t.Fatal(err)
	}
	for rc.Rank() < h {
		p := enc.Packet(r)
		if _, err := rc.Add(p); err != nil {
			t.Fatal(err)
		}
		p.Release()
	}

	if n := testing.AllocsPerRun(100, func() {
		p := enc.Packet(r)
		p.Release()
	}); n != 0 {
		t.Errorf("Encoder.Packet: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		p, ok := rc.Packet(r)
		if !ok {
			t.Fatal("recoder empty")
		}
		p.Release()
	}); n != 0 {
		t.Errorf("Recoder.Packet: %v allocs/op, want 0", n)
	}
	// A full-rank recoder treats every further packet as redundant: the
	// flood steady state. Scratch staging must absorb it without allocating.
	redundant, _ := rc.Packet(r)
	defer redundant.Release()
	if n := testing.AllocsPerRun(100, func() {
		if _, err := rc.Add(redundant); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("redundant Recoder.Add: %v allocs/op, want 0", n)
	}
}

// TestParallelFileDecoderRoundTrip drives the worker pool end to end over
// every field and a worker count exceeding the generation count.
func TestParallelFileDecoderRoundTrip(t *testing.T) {
	for _, f := range fastpathFields {
		for _, workers := range []int{1, 3, 8} {
			r := rand.New(rand.NewSource(int64(13 + workers)))
			params := Params{Field: f, GenSize: 8, PacketSize: 64 * f.SymbolSize()}
			content := make([]byte, 5*params.genBytes()-17)
			r.Read(content)
			fe, err := NewFileEncoder(params, content)
			if err != nil {
				t.Fatal(err)
			}
			pd, err := NewParallelFileDecoder(params, len(content), workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			for !pd.Complete() {
				g := r.Intn(fe.NumGenerations())
				p, err := fe.Packet(g, r)
				if err != nil {
					t.Fatal(err)
				}
				if err := pd.Add(p); err != nil {
					t.Fatal(err)
				}
			}
			pd.Close()
			got, err := pd.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("%s workers=%d: decoded content differs", f.Name(), workers)
			}
			if pd.Progress() != 1 {
				t.Fatalf("%s workers=%d: progress %v, want 1", f.Name(), workers, pd.Progress())
			}
		}
	}
}

// TestParallelFileDecoderLifecycle pins the Close/Bytes/Add ordering
// contract and generation range checking.
func TestParallelFileDecoderLifecycle(t *testing.T) {
	params := Params{Field: gf.F256, GenSize: 4, PacketSize: 32}
	pd, err := NewParallelFileDecoder(params, 2*params.genBytes(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pd.Bytes(); err == nil {
		t.Fatal("Bytes before Close succeeded")
	}
	if err := pd.Add(&Packet{Gen: 99, Coeff: make([]uint16, 4), Payload: make([]byte, 32)}); err == nil {
		t.Fatal("out-of-range generation accepted")
	}
	pd.Close()
	pd.Close() // idempotent
	if err := pd.Add(&Packet{Gen: 0, Coeff: make([]uint16, 4), Payload: make([]byte, 32)}); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if _, err := pd.Bytes(); err == nil {
		t.Fatal("Bytes of incomplete decode succeeded")
	}
}

// benchContent builds deterministic content of n generations.
func benchContent(params Params, gens int) []byte {
	content := make([]byte, gens*params.genBytes())
	rand.New(rand.NewSource(1)).Read(content)
	return content
}

// feedPackets pre-generates enough coded packets to decode every
// generation with high probability (rank + slack per generation).
func feedPackets(b *testing.B, fe *FileEncoder, params Params, gens int) []*Packet {
	b.Helper()
	r := rand.New(rand.NewSource(2))
	perGen := params.GenSize + 2
	pkts := make([]*Packet, 0, gens*perGen)
	for g := 0; g < gens; g++ {
		for i := 0; i < perGen; i++ {
			p, err := fe.Packet(g, r)
			if err != nil {
				b.Fatal(err)
			}
			pkts = append(pkts, p.Clone())
			p.Release()
		}
	}
	return pkts
}

const benchGens = 8

func benchParams() Params {
	return Params{Field: gf.F256, GenSize: 16, PacketSize: 1024}
}

// BenchmarkFileDecodeSerial decodes a multi-generation blob on the
// calling goroutine — the baseline for the worker-pool speedup.
func BenchmarkFileDecodeSerial(b *testing.B) {
	params := benchParams()
	content := benchContent(params, benchGens)
	fe, err := NewFileEncoder(params, content)
	if err != nil {
		b.Fatal(err)
	}
	pkts := feedPackets(b, fe, params, benchGens)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd, err := NewFileDecoder(params, len(content))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pkts {
			if fd.Complete() {
				break
			}
			if _, err := fd.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		if !fd.Complete() {
			b.Fatal("incomplete decode")
		}
	}
}

// BenchmarkFileDecodeParallel decodes the same blob through the worker
// pool at GOMAXPROCS workers (capped by generations).
func BenchmarkFileDecodeParallel(b *testing.B) {
	params := benchParams()
	content := benchContent(params, benchGens)
	fe, err := NewFileEncoder(params, content)
	if err != nil {
		b.Fatal(err)
	}
	pkts := feedPackets(b, fe, params, benchGens)
	workers := min(runtime.GOMAXPROCS(0), benchGens)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone the feed outside the timed region: Add takes ownership,
		// but the copies are harness bookkeeping, not decode work.
		b.StopTimer()
		feed := make([]*Packet, len(pkts))
		for j, p := range pkts {
			feed[j] = p.ClonePooled()
		}
		b.StartTimer()
		pd, err := NewParallelFileDecoder(params, len(content), workers, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range feed {
			if err := pd.Add(p); err != nil {
				b.Fatal(err)
			}
		}
		pd.Close()
		if !pd.Complete() {
			b.Fatal("incomplete decode")
		}
	}
}

// BenchmarkEncoderPacketPooled measures the steady-state emit path;
// allocs/op is the acceptance metric (0 with warm pools).
func BenchmarkEncoderPacketPooled(b *testing.B) {
	params := benchParams()
	r := rand.New(rand.NewSource(3))
	src := make([][]byte, params.GenSize)
	for i := range src {
		src[i] = make([]byte, params.PacketSize)
		r.Read(src[i])
	}
	enc, err := NewEncoder(params.Field, 0, src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(params.PacketSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := enc.Packet(r)
		p.Release()
	}
}

// BenchmarkRecoderPacketPooled measures the steady-state re-mix path of a
// full-rank recoder; allocs/op is the acceptance metric.
func BenchmarkRecoderPacketPooled(b *testing.B) {
	params := benchParams()
	r := rand.New(rand.NewSource(4))
	src := make([][]byte, params.GenSize)
	for i := range src {
		src[i] = make([]byte, params.PacketSize)
		r.Read(src[i])
	}
	enc, err := NewEncoder(params.Field, 0, src)
	if err != nil {
		b.Fatal(err)
	}
	rc, err := NewRecoder(params.Field, 0, params.GenSize, params.PacketSize)
	if err != nil {
		b.Fatal(err)
	}
	for rc.Rank() < params.GenSize {
		p := enc.Packet(r)
		if _, err := rc.Add(p); err != nil {
			b.Fatal(err)
		}
		p.Release()
	}
	b.SetBytes(int64(params.PacketSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := rc.Packet(r)
		if !ok {
			b.Fatal("recoder empty")
		}
		p.Release()
	}
}

// BenchmarkRecoderAddRedundant measures absorbing a non-innovative packet
// — the flood steady state — which must not allocate.
func BenchmarkRecoderAddRedundant(b *testing.B) {
	params := benchParams()
	r := rand.New(rand.NewSource(5))
	src := make([][]byte, params.GenSize)
	for i := range src {
		src[i] = make([]byte, params.PacketSize)
		r.Read(src[i])
	}
	enc, err := NewEncoder(params.Field, 0, src)
	if err != nil {
		b.Fatal(err)
	}
	rc, err := NewRecoder(params.Field, 0, params.GenSize, params.PacketSize)
	if err != nil {
		b.Fatal(err)
	}
	for rc.Rank() < params.GenSize {
		p := enc.Packet(r)
		if _, err := rc.Add(p); err != nil {
			b.Fatal(err)
		}
		p.Release()
	}
	p := enc.Packet(r)
	defer p.Release()
	b.SetBytes(int64(params.PacketSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Add(p); err != nil {
			b.Fatal(err)
		}
	}
}
