package rlnc

import (
	"fmt"
	"time"

	"ncast/internal/gf"
)

// genDecoder is the batch-oriented elimination engine behind
// ParallelFileDecoder: one generation's linear system, owned by exactly
// one worker goroutine, with no locks and no per-packet allocation. It
// differs from the progressive basis in codec.go in three ways that
// matter for throughput:
//
//   - Contiguous storage. All h coefficient rows live in one []uint16
//     and all h payload rows in one []byte arena, so elimination walks
//     cache lines instead of chasing per-row allocations.
//   - Coefficient-first elimination. An incoming packet is forward-
//     eliminated on its h-element coefficient vector alone, recording
//     (slot, factor) steps; the payload — three orders of magnitude
//     wider — is touched only if the packet turns out innovative. A
//     redundant packet, the steady state of a flooded overlay, costs
//     zero payload work.
//   - Deferred back-substitution. Rows are kept in row-echelon form
//     (not reduced); the upper triangle is cleared once, when the
//     generation closes rank, using fully-reduced source rows so each
//     coefficient update is a single store.
//
// Systematic packets (unit coefficient vectors, flagged on the wire)
// install with no field work at all when their column is open: the only
// payload op on the loss-free path is the copy into the arena.
type genDecoder struct {
	f    gf.Field
	h    int
	size int
	// coeffs and arena hold the installed rows by slot: row s occupies
	// coeffs[s*h:(s+1)*h] and arena[s*size:(s+1)*size].
	coeffs []uint16
	arena  []byte
	// pivotOf maps column -> slot (-1 when open); slotPiv maps slot ->
	// leading column. Rows are in echelon form: row s is zero left of
	// slotPiv[s] and 1 there.
	pivotOf []int32
	slotPiv []int32
	rank    int
	// reduced is set once back-substitution has run (rank == h).
	reduced bool
	// firstAt is the first-packet arrival time, kept for generation
	// latency metrics; zero when the decoder is uninstrumented.
	firstAt time.Time

	sc    []uint16   // staging coefficient vector
	steps []elimStep // payload replay log for the current packet
}

// elimStep records one forward-elimination against an installed row, to
// be replayed on the payload only for innovative packets.
type elimStep struct {
	slot   int
	factor uint16
}

func newGenDecoder(f gf.Field, h, size int) *genDecoder {
	e := &genDecoder{
		f:       f,
		h:       h,
		size:    size,
		coeffs:  make([]uint16, h*h),
		arena:   make([]byte, h*size),
		pivotOf: make([]int32, h),
		slotPiv: make([]int32, h),
		sc:      make([]uint16, h),
		steps:   make([]elimStep, 0, h),
	}
	for i := range e.pivotOf {
		e.pivotOf[i] = -1
	}
	return e
}

func (e *genDecoder) coeffRow(s int) []uint16 { return e.coeffs[s*e.h : (s+1)*e.h] }
func (e *genDecoder) arenaRow(s int) []byte   { return e.arena[s*e.size : (s+1)*e.size] }

func (e *genDecoder) complete() bool { return e.rank == e.h }

// add absorbs one packet, reporting whether it raised the rank. The
// packet is only read; the caller keeps ownership.
func (e *genDecoder) add(p *Packet) (bool, error) {
	if len(p.Payload) != e.size {
		return false, fmt.Errorf("rlnc: payload length %d, want %d", len(p.Payload), e.size)
	}
	if p.Sys {
		idx := int(p.SysIdx)
		if idx >= e.h {
			return false, fmt.Errorf("rlnc: systematic index %d out of range [0,%d)", idx, e.h)
		}
		if e.pivotOf[idx] < 0 {
			// Open column: install the identity row directly. No field
			// ops — the copy below is the entire cost of the loss-free
			// fast path.
			s := e.rank
			e.coeffRow(s)[idx] = 1
			copy(e.arenaRow(s), p.Payload)
			e.pivotOf[idx], e.slotPiv[s] = int32(s), int32(idx)
			e.rank++
			return true, nil
		}
		// Column already pivoted (duplicate or arrived after a coded row):
		// run general elimination on the reconstructed unit vector. The
		// index is trusted over p.Coeff, which may be stale on hand-built
		// packets.
		clear(e.sc)
		e.sc[idx] = 1
		return e.eliminate(p.Payload)
	}
	if len(p.Coeff) != e.h {
		return false, fmt.Errorf("rlnc: coefficient length %d, want %d", len(p.Coeff), e.h)
	}
	copy(e.sc, p.Coeff)
	return e.eliminate(p.Payload)
}

// eliminate forward-eliminates the staged coefficient vector e.sc against
// the echelon rows, then replays the recorded steps on the payload only
// if the packet was innovative. Maintaining echelon (not reduced) form
// lets the scan stop at the packet's new leading column.
func (e *genDecoder) eliminate(payload []byte) (bool, error) {
	e.steps = e.steps[:0]
	lead := -1
	for c := 0; c < e.h; c++ {
		v := e.sc[c]
		if v == 0 {
			continue
		}
		s := e.pivotOf[c]
		if s < 0 {
			lead = c
			break
		}
		// Row s is zero left of c and 1 at c, so eliminating from offset
		// c touches only the live suffix and zeroes sc[c] exactly.
		e.f.AddMulCoeff(e.sc[c:], e.coeffRow(int(s))[c:], v)
		e.steps = append(e.steps, elimStep{slot: int(s), factor: v})
	}
	if lead < 0 {
		return false, nil // redundant: not one byte of payload touched
	}
	s := e.rank
	dst := e.arenaRow(s)
	copy(dst, payload)
	for _, st := range e.steps {
		e.f.AddMulSlice(dst, e.arenaRow(st.slot), st.factor)
	}
	crow := e.coeffRow(s)
	copy(crow, e.sc)
	if v := crow[lead]; v != 1 {
		inv := e.f.Inv(v)
		e.f.MulCoeff(crow, inv)
		e.f.MulSlice(dst, dst, inv)
	}
	e.pivotOf[lead], e.slotPiv[s] = int32(s), int32(lead)
	e.rank++
	return true, nil
}

// reduce runs the deferred back-substitution once the generation has
// closed rank, clearing the upper triangle. Columns are processed in
// descending order so the source row of every elimination is already a
// unit vector — which means the coefficient-side update for each step is
// a single store, and only the payload pays an AddMulSlice.
func (e *genDecoder) reduce() {
	if e.reduced || e.rank != e.h {
		return
	}
	for c := e.h - 1; c > 0; c-- {
		ps := int(e.pivotOf[c])
		src := e.arenaRow(ps)
		for r := 0; r < e.h; r++ {
			if r == ps {
				continue
			}
			crow := e.coeffRow(r)
			if v := crow[c]; v != 0 {
				e.f.AddMulSlice(e.arenaRow(r), src, v)
				crow[c] = 0
			}
		}
	}
	e.reduced = true
}

// source returns the decoded payload rows in source order. Valid only
// after reduce(); rows alias the arena and must not be modified.
func (e *genDecoder) source() ([][]byte, error) {
	if !e.reduced {
		return nil, fmt.Errorf("rlnc: generation incomplete: rank %d of %d", e.rank, e.h)
	}
	out := make([][]byte, e.h)
	for c := range out {
		out[c] = e.arenaRow(int(e.pivotOf[c]))
	}
	return out, nil
}
