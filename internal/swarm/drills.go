package swarm

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"ncast/internal/core"
	"ncast/internal/obs"
	"ncast/internal/protocol"
	"ncast/internal/sim"
	"ncast/internal/transport"
)

// DrillConfig parameterises one hostile-world scenario drill. Every drill
// builds a fresh in-memory Network, a real protocol.Tracker, and a swarm
// of DrillConfig.N virtual nodes, then applies its scenario and evaluates
// pass/fail gates against the tracker's own views (CheckInvariants,
// Health, ClusterSnapshot, Topology).
type DrillConfig struct {
	N      int
	Shards int
	Seed   int64
	// K, D are the overlay parameters (threads, default degree).
	K, D int
	// LeaseTimeout drives the tracker's liveness sweep; the churn and
	// adversarial drills depend on it to detect silent crashes.
	LeaseTimeout time.Duration
	// StatsInterval asks nodes for telemetry at this cadence (zero
	// disables reporting; the heterogeneous drill requires it on).
	StatsInterval time.Duration
	// OutboxDepth sizes the tracker's per-peer outboxes. Flash-crowd
	// welcomes for thousands of virtual nodes funnel through one shard
	// outbox, so this should be >= N/Shards (RunDrill defaults it).
	OutboxDepth int
	// Timeout bounds each drill phase (join wave, expiry wave, rejoin
	// wave). Zero means 60s.
	Timeout time.Duration
	// AdmissionP99 is the flash-crowd gate bound on the hello→welcome
	// p99 latency. Zero means 5s (generous: it includes hello retries
	// when the first wave saturates queues).
	AdmissionP99 time.Duration
	// CrashFrac is the fraction crashed by the churn drill (default 0.2)
	// and the adversarial band fraction (default 0.05 — e08's P).
	CrashFrac float64
	// Tick is the swarm timer-wheel granularity (default 5ms).
	Tick time.Duration
	// HelloRetry overrides the swarm's hello-retry interval (zero keeps
	// the 500ms default). Large fleets should set it near the expected
	// join-wave duration: when admitting N nodes takes seconds, a 500ms
	// retry clock turns every still-queued joiner into a dup-hello storm.
	HelloRetry time.Duration
	// ConnSample caps how many nodes the adversarial drill's
	// connectivity measurements flow-solve (default 1024; <0 forces the
	// exact sweep). Exact measurement is one max-flow per node — O(N²·d)
	// over the fleet — which is tractable at drill-matrix sizes but not
	// at 100k rows.
	ConnSample int
}

func (c DrillConfig) withDefaults() DrillConfig {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.K <= 0 {
		c.K = 16
	}
	if c.D <= 0 {
		c.D = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.AdmissionP99 <= 0 {
		c.AdmissionP99 = 5 * time.Second
	}
	if c.OutboxDepth <= 0 {
		// A join wave funnels one welcome plus ~D parent redirects per
		// admitted node through the destination shard's outbox; size for
		// the full wave so flash-crowd welcomes aren't dropped (a dropped
		// welcome still heals via hello retry, but costs 500ms of
		// admission latency).
		depth := (c.N/c.Shards + 64) * (c.D + 2)
		if depth < 256 {
			depth = 256
		}
		c.OutboxDepth = depth
	}
	if c.ConnSample == 0 {
		c.ConnSample = 1024
	}
	return c
}

// Gate is one pass/fail criterion with its observed evidence.
type Gate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// DrillResult is one scenario's outcome: the gate list plus the scalar
// metrics worth trending in BENCH_control.json.
type DrillResult struct {
	Name           string             `json:"name"`
	Nodes          int                `json:"nodes"`
	Shards         int                `json:"shards"`
	Seed           int64              `json:"seed"`
	DurationMillis int64              `json:"duration_ms"`
	Passed         bool               `json:"passed"`
	Gates          []Gate             `json:"gates"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
}

func (r *DrillResult) gate(name string, pass bool, format string, args ...interface{}) {
	r.Gates = append(r.Gates, Gate{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	if !pass {
		r.Passed = false
	}
}

func (r *DrillResult) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// drillEnv is the live apparatus: real tracker + swarm on one fabric.
type drillEnv struct {
	net     *transport.Network
	tracker *protocol.Tracker
	swarm   *Swarm
	cancel  context.CancelFunc
}

func startEnv(cfg DrillConfig, degree func(int) int, rate func(int) int) (*drillEnv, error) {
	net := transport.NewNetwork(transport.WithSeed(cfg.Seed))
	tep, err := net.Endpoint("tracker")
	if err != nil {
		return nil, err
	}
	tr, err := protocol.NewTracker(tep, nil, protocol.TrackerConfig{
		K:    cfg.K,
		D:    cfg.D,
		Seed: cfg.Seed,
		Session: protocol.SessionParams{
			FieldBits:  8,
			GenSize:    16,
			PacketSize: 64,
			ContentLen: 4 * 16 * 64, // 4 generations of synthetic progress
		},
		LeaseTimeout:  cfg.LeaseTimeout,
		StatsInterval: cfg.StatsInterval,
		OutboxDepth:   cfg.OutboxDepth,
	})
	if err != nil {
		net.Close()
		return nil, err
	}
	sw, err := New(Config{
		N:           cfg.N,
		Shards:      cfg.Shards,
		Network:     net,
		TrackerAddr: "tracker",
		Seed:        cfg.Seed,
		Degree:      degree,
		Rate:        rate,
		Tick:        cfg.Tick,
		HelloRetry:  cfg.HelloRetry,
		// The endpoint buffer must ride out a full shard's welcome burst.
		EndpointBuf: cfg.N/cfg.Shards + 1024,
	})
	if err != nil {
		net.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go tr.Run(ctx) //nolint:errcheck // exits on cancel
	sw.Start(ctx)
	return &drillEnv{net: net, tracker: tr, swarm: sw, cancel: cancel}, nil
}

func (e *drillEnv) stop() {
	e.cancel()
	e.swarm.Close()
	e.net.Close()
}

// drillRand seeds the scenario-level randomness (victim selection);
// distinct from the swarm's per-node stream so drills stay reproducible.
func drillRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x5eed))
}

// waitUntil polls cond until it holds or the deadline passes, reporting
// whether it held. The poll interval self-throttles to ~3x the
// condition's own cost (floored at 5ms): an expensive condition — say a
// ClusterSnapshot copy over 100k nodes — must not busy-spin the core
// the tracker needs to make the condition true.
func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		t0 := time.Now()
		if cond() {
			return true
		}
		condDur := time.Since(t0)
		if time.Now().After(deadline) {
			return cond()
		}
		sleep := 3 * condDur
		if sleep < 5*time.Millisecond {
			sleep = 5 * time.Millisecond
		}
		time.Sleep(sleep)
	}
}

// quantileNanos picks q from sorted samples (nanoseconds).
func quantileNanos(sorted []float64, q float64) time.Duration {
	return time.Duration(obs.Quantile(sorted, q))
}

// RunFlashCrowd drills the flash-crowd join: the full population hellos
// at once (PR 5's batched admission under maximum pressure). Gates: every
// node admitted within the timeout, hello→welcome p99 under the bound,
// tracker invariants clean, overlay census matches, and — the tentpole
// property — goroutine count sublinear in N.
func RunFlashCrowd(cfg DrillConfig) (DrillResult, error) {
	cfg = cfg.withDefaults()
	res := DrillResult{Name: "flash-crowd", Nodes: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Passed: true}
	baseGoroutines := runtime.NumGoroutine()
	env, err := startEnv(cfg, nil, nil)
	if err != nil {
		return res, err
	}
	defer env.stop()

	start := time.Now()
	env.swarm.JoinRange(0, cfg.N)
	peak := 0
	allIn := waitUntil(cfg.Timeout, func() bool {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		return env.swarm.JoinedCount() == cfg.N
	})
	joinDur := time.Since(start)
	res.DurationMillis = joinDur.Milliseconds()

	counts := env.swarm.Counts()
	res.gate("all-admitted", allIn, "%d/%d joined in %v (retries=%d)",
		env.swarm.JoinedCount(), cfg.N, joinDur.Round(time.Millisecond), counts.HelloRetries)
	lats := env.swarm.AdmissionLatencies()
	p50, p99 := quantileNanos(lats, 0.50), quantileNanos(lats, 0.99)
	res.gate("admission-p99", p99 <= cfg.AdmissionP99, "p50=%v p99=%v bound=%v over %d samples",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), cfg.AdmissionP99, len(lats))
	invErr := env.tracker.CheckInvariants()
	res.gate("tracker-invariants", invErr == nil, "%v", invErr)
	snap := env.tracker.ClusterSnapshot()
	census := snap.Overlay != nil && snap.Overlay.Nodes == cfg.N && snap.Overlay.Failed == 0
	res.gate("overlay-census", census, "overlay=%+v", snap.Overlay)
	// Sublinearity bound: the swarm is O(shards) goroutines and the
	// tracker O(peer keys) outbox workers; N/50 of headroom means even a
	// 1k run fails if someone reintroduces per-node goroutines.
	bound := baseGoroutines + 8*cfg.Shards + 64 + cfg.N/50
	res.gate("goroutines-sublinear", peak <= bound, "peak=%d bound=%d (base=%d, N=%d)",
		peak, bound, baseGoroutines, cfg.N)

	res.metric("join_seconds", joinDur.Seconds())
	res.metric("admission_p50_ns", float64(p50))
	res.metric("admission_p99_ns", float64(p99))
	res.metric("hello_retries", float64(counts.HelloRetries))
	res.metric("goroutines_peak", float64(peak))
	res.metric("joins_per_second", float64(cfg.N)/joinDur.Seconds())
	return res, nil
}

// RunChurnRejoin drills mobile-style churn: a fraction of the fleet
// crashes silently (no goodbye), the tracker's lease sweep must reclaim
// every orphaned row, and the crashed nodes then rejoin as fresh rows.
// Gates: expiry reclaims exactly the crashed rows, every rejoiner gets a
// fresh (higher) id, the final census matches, invariants stay clean.
func RunChurnRejoin(cfg DrillConfig) (DrillResult, error) {
	cfg = cfg.withDefaults()
	if cfg.LeaseTimeout <= 0 {
		return DrillResult{}, fmt.Errorf("swarm: churn drill requires LeaseTimeout")
	}
	frac := cfg.CrashFrac
	if frac <= 0 {
		frac = 0.2
	}
	res := DrillResult{Name: "churn-rejoin", Nodes: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Passed: true}
	env, err := startEnv(cfg, nil, nil)
	if err != nil {
		return res, err
	}
	defer env.stop()
	start := time.Now()

	env.swarm.JoinRange(0, cfg.N)
	if !waitUntil(cfg.Timeout, func() bool { return env.swarm.JoinedCount() == cfg.N }) {
		res.gate("join-wave", false, "only %d/%d joined", env.swarm.JoinedCount(), cfg.N)
		return res, nil
	}
	res.gate("join-wave", true, "%d joined", cfg.N)

	// Crash a deterministic pseudo-random subset, remembering old ids.
	m := int(float64(cfg.N) * frac)
	if m < 1 {
		m = 1
	}
	rng := drillRand(cfg.Seed)
	victims := rng.Perm(cfg.N)[:m]
	oldIDs := make(map[int]uint64, m)
	for _, i := range victims {
		oldIDs[i] = env.swarm.NodeID(i)
		env.swarm.Crash(i)
	}
	// The sweep must reclaim every orphaned row — this is the failure
	// detector for crashed bottom clips that the complaint protocol can
	// never catch.
	expiryBudget := cfg.Timeout + 2*cfg.LeaseTimeout
	swept := waitUntil(expiryBudget, func() bool { return env.tracker.NumNodes() == cfg.N-m })
	res.gate("lease-expiry", swept, "tracker rows=%d want=%d after crashing %d",
		env.tracker.NumNodes(), cfg.N-m, m)
	sweepDur := time.Since(start)

	// Rejoin everyone; each must come back as a brand-new row.
	for _, i := range victims {
		env.swarm.Join(i)
	}
	back := waitUntil(cfg.Timeout, func() bool {
		return env.swarm.JoinedCount() == cfg.N && env.tracker.NumNodes() == cfg.N
	})
	counts := env.swarm.Counts()
	res.gate("rejoin-wave", back, "joined=%d tracker=%d rejoins=%d",
		env.swarm.JoinedCount(), env.tracker.NumNodes(), counts.Rejoins)
	fresh := 0
	for _, i := range victims {
		if id := env.swarm.NodeID(i); id != 0 && id != oldIDs[i] {
			fresh++
		}
	}
	res.gate("fresh-rows", fresh == m, "%d/%d rejoiners got fresh ids", fresh, m)
	invErr := env.tracker.CheckInvariants()
	res.gate("tracker-invariants", invErr == nil, "%v", invErr)

	res.DurationMillis = time.Since(start).Milliseconds()
	res.metric("crashed", float64(m))
	res.metric("sweep_seconds", sweepDur.Seconds())
	res.metric("rejoins", float64(counts.Rejoins))
	res.metric("lease_renewals", float64(counts.Leases))
	return res, nil
}

// RunHeterogeneous drills a mixed fleet: degrees spread over 1..4 and
// synthetic decode rates spread 1..8, with telemetry on. Gates: the
// tracker's degree census matches what was requested, the telemetry plane
// sees a fresh fleet, progress advances, invariants stay clean.
func RunHeterogeneous(cfg DrillConfig) (DrillResult, error) {
	cfg = cfg.withDefaults()
	if cfg.StatsInterval <= 0 {
		return DrillResult{}, fmt.Errorf("swarm: heterogeneous drill requires StatsInterval")
	}
	res := DrillResult{Name: "heterogeneous", Nodes: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Passed: true}
	maxDeg := 4
	if maxDeg > cfg.K {
		maxDeg = cfg.K
	}
	degree := func(i int) int { return 1 + i%maxDeg }
	rate := func(i int) int { return 1 + i%8 }
	env, err := startEnv(cfg, degree, rate)
	if err != nil {
		return res, err
	}
	defer env.stop()
	start := time.Now()

	env.swarm.JoinRange(0, cfg.N)
	if !waitUntil(cfg.Timeout, func() bool { return env.swarm.JoinedCount() == cfg.N }) {
		res.gate("join-wave", false, "only %d/%d joined", env.swarm.JoinedCount(), cfg.N)
		return res, nil
	}
	res.gate("join-wave", true, "%d joined", cfg.N)

	want := make(map[int]int)
	for i := 0; i < cfg.N; i++ {
		want[degree(i)]++
	}
	health := env.tracker.Health()
	degMatch := len(health.DegreeDist) == len(want)
	for d, n := range want {
		if health.DegreeDist[d] != n {
			degMatch = false
		}
	}
	res.gate("degree-census", degMatch, "want=%v got=%v", want, health.DegreeDist)

	// Let two reporting intervals elapse, then the cluster view must be
	// fresh and show progress (synthetic ranks advancing at mixed rates).
	fresh, reporting := 0, 0
	progressed := 0
	waitUntil(cfg.Timeout, func() bool {
		snap := env.tracker.ClusterSnapshot()
		fresh, reporting, progressed = 0, 0, 0
		for _, n := range snap.Nodes {
			reporting++
			if n.Fresh {
				fresh++
			}
			if n.Rank > 0 {
				progressed++
			}
		}
		return reporting >= cfg.N*9/10 && fresh >= reporting*9/10 && progressed >= reporting/2
	})
	res.gate("telemetry-fresh", reporting >= cfg.N*9/10 && fresh >= reporting*9/10,
		"reporting=%d fresh=%d of %d nodes", reporting, fresh, cfg.N)
	res.gate("progress-advancing", progressed >= reporting/2,
		"%d/%d reporters advanced rank", progressed, reporting)
	invErr := env.tracker.CheckInvariants()
	res.gate("tracker-invariants", invErr == nil, "%v", invErr)

	res.DurationMillis = time.Since(start).Milliseconds()
	counts := env.swarm.Counts()
	res.metric("stats_reports", float64(counts.StatsSent))
	res.metric("completes", float64(counts.Completes))
	res.metric("fresh_nodes", float64(fresh))
	return res, nil
}

// RunAdversarialBatch ports the e08 adversarial model to the live stack:
// a contiguous band of rows (coordinated arrivals occupying adjacent rows
// of M, the §5 attack) fails at the same instant. The drill measures the
// pre-repair damage exactly as e08 does (connectivity over the topology
// with the band marked failed), then requires the tracker's lease sweep
// to reclaim every row and restore full connectivity for the survivors.
func RunAdversarialBatch(cfg DrillConfig) (DrillResult, error) {
	cfg = cfg.withDefaults()
	if cfg.LeaseTimeout <= 0 {
		return DrillResult{}, fmt.Errorf("swarm: adversarial drill requires LeaseTimeout")
	}
	frac := cfg.CrashFrac
	if frac <= 0 {
		frac = 0.05
	}
	res := DrillResult{Name: "adversarial-batch", Nodes: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Passed: true}
	env, err := startEnv(cfg, nil, nil)
	if err != nil {
		return res, err
	}
	defer env.stop()
	start := time.Now()

	env.swarm.JoinRange(0, cfg.N)
	if !waitUntil(cfg.Timeout, func() bool { return env.swarm.JoinedCount() == cfg.N }) {
		res.gate("join-wave", false, "only %d/%d joined", env.swarm.JoinedCount(), cfg.N)
		return res, nil
	}
	res.gate("join-wave", true, "%d joined", cfg.N)

	// The adversarial band: in append mode rows sit in admission order,
	// so the m nodes with the middle ids occupy a contiguous band of M.
	type pair struct {
		idx int
		id  uint64
	}
	pairs := make([]pair, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		pairs = append(pairs, pair{idx: i, id: env.swarm.NodeID(i)})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].id < pairs[b].id })
	m := int(float64(cfg.N) * frac)
	if m < 1 {
		m = 1
	}
	band := pairs[cfg.N/2-m/2 : cfg.N/2-m/2+m]

	// Pre-repair damage, measured as e08 measures it: the band marked
	// failed on the topology the tracker held at the kill instant.
	// Sampled above ConnSample nodes — exact per-node max-flow is
	// O(N²·d) and intractable at fleet scale.
	top := env.tracker.Topology()
	for _, p := range band {
		if gi, ok := top.Index[core.NodeID(p.id)]; ok {
			top.Working[gi] = false
		}
	}
	damage := sim.MeasureConnectivitySample(top, cfg.ConnSample, cfg.Seed)
	var pLoss float64
	if damage.Working > 0 {
		pLoss = 1 - float64(damage.FullCount)/float64(damage.Working)
	}

	// Kill the band at one instant.
	for _, p := range band {
		env.swarm.Crash(p.idx)
	}
	expiryBudget := cfg.Timeout + 2*cfg.LeaseTimeout
	swept := waitUntil(expiryBudget, func() bool { return env.tracker.NumNodes() == cfg.N-m })
	recovery := time.Since(start)
	res.gate("band-reclaimed", swept, "tracker rows=%d want=%d after killing band of %d",
		env.tracker.NumNodes(), cfg.N-m, m)
	// No orphaned rows: the census and bookkeeping agree post-repair.
	invErr := env.tracker.CheckInvariants()
	res.gate("tracker-invariants", invErr == nil, "%v", invErr)
	health := env.tracker.Health()
	res.gate("no-orphans", health.Nodes == cfg.N-m && health.Failed == 0,
		"nodes=%d failed=%d want=%d/0", health.Nodes, health.Failed, cfg.N-m)
	// Post-repair the survivors must be back at full connectivity — the
	// paper's robustness claim for the repair procedure.
	after := sim.MeasureConnectivitySample(env.tracker.Topology(), cfg.ConnSample, cfg.Seed+1)
	res.gate("connectivity-restored", after.Working > 0 && after.FullCount == after.Working,
		"full=%d/%d (pre-repair damage: PLoss=%.3f meanLossFrac=%.4f)",
		after.FullCount, after.Working, pLoss, damage.MeanLossFrac)

	res.DurationMillis = time.Since(start).Milliseconds()
	res.metric("band", float64(m))
	res.metric("preprepair_ploss", pLoss)
	res.metric("preprepair_mean_loss_frac", damage.MeanLossFrac)
	res.metric("recovery_seconds", recovery.Seconds())
	return res, nil
}

// RunAllDrills executes the four scenarios with a shared base config.
func RunAllDrills(cfg DrillConfig) ([]DrillResult, error) {
	var out []DrillResult
	for _, run := range []func(DrillConfig) (DrillResult, error){
		RunFlashCrowd, RunChurnRejoin, RunHeterogeneous, RunAdversarialBatch,
	} {
		r, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
