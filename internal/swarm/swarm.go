// Package swarm multiplexes very large populations of lightweight,
// protocol-correct virtual nodes onto a handful of goroutines, so the
// real tracker's control plane can be exercised at 100k+ nodes on one
// machine (the paper's scale regime) without paying per-node goroutines,
// timers, or sockets.
//
// Each virtual node speaks the real wire protocol — hello (with retry),
// welcome, lease renewal, stats reports, goodbye (with retry), expulsion
// handling — against an unmodified protocol.Tracker. What is stubbed is
// the data plane: instead of decoding coded packets, a node advances a
// synthetic rank at a per-node rate and reports believable
// MsgStatsReports, so the tracker-side telemetry pipeline (ClusterSnapshot
// and friends) sees a live-looking fleet.
//
// Architecture: the population is split across a small number of shards.
// Each shard owns one transport.MuxEndpoint (all its nodes are virtual
// sub-addresses of it — see transport.MuxSep), one event-loop goroutine,
// and one receive pump. All per-node timers live in a hashed timer wheel
// owned by the event loop. Total goroutine count is O(shards), not O(N);
// the drills assert this sublinearity.
package swarm

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/protocol"
	"ncast/internal/transport"
)

// Config parameterises a swarm.
type Config struct {
	// N is the virtual-node population.
	N int
	// Shards is the number of event loops (and mux endpoints) the
	// population is split across. Zero means 8 (or N when smaller).
	Shards int
	// Network is the in-memory fabric shared with the tracker.
	Network *transport.Network
	// TrackerAddr is where hellos go.
	TrackerAddr string
	// Seed drives every per-node random choice (rates, jitter). Two
	// swarms with the same seed and the same command sequence behave
	// identically.
	Seed int64
	// Degree, when non-nil, gives node i's requested degree (0 means the
	// session default). Heterogeneous fleets set this.
	Degree func(i int) int
	// Rate, when non-nil, gives node i's synthetic decode rate in rank
	// units per stats interval (minimum 1). Heterogeneous fleets set
	// this; nil draws 1..4 per node from the seed.
	Rate func(i int) int
	// HelloRetry is how long an unanswered hello waits before resending
	// (default 500ms); GoodbyeRetry likewise for unacked goodbyes.
	HelloRetry   time.Duration
	GoodbyeRetry time.Duration
	// Tick is the timer-wheel granularity (default 5ms).
	Tick time.Duration
	// EndpointBuf is the per-shard mux endpoint receive buffer in frames
	// (default 8192): it must absorb the tracker's welcome bursts while
	// the event loop is busy sending hellos.
	EndpointBuf int
	// AddrPrefix names the shard endpoints (default "swarm"); shard i
	// registers AddrPrefix+i and node j rides it as AddrPrefix+i+"!nj".
	AddrPrefix string
}

// Node lifecycle states (externally visible via State).
const (
	StateIdle int32 = iota
	StateJoining
	StateJoined
	StateLeaving
	StateLeft
	StateCrashed
	StateRejected
)

// Counts is a snapshot of the swarm's counters.
type Counts struct {
	Joined       int64  // currently joined (welcomed and not yet departed)
	Welcomes     uint64 // fresh welcomes (first per join attempt)
	DupWelcomes  uint64 // welcome retries observed
	HelloRetries uint64
	Rejoins      uint64 // joins of previously crashed nodes
	Expelled     uint64 // MsgExpelled received while alive
	Leaves       uint64 // acked goodbyes
	Crashes      uint64
	Leases       uint64
	StatsSent    uint64
	Completes    uint64
	Redirects    uint64 // parent-side redirects received (stub data plane)
	Rejected     uint64 // joins refused with MsgError
	SendErrors   uint64
}

type counters struct {
	joined       atomic.Int64
	welcomes     atomic.Uint64
	dupWelcomes  atomic.Uint64
	helloRetries atomic.Uint64
	rejoins      atomic.Uint64
	expelled     atomic.Uint64
	leaves       atomic.Uint64
	crashes      atomic.Uint64
	leases       atomic.Uint64
	stats        atomic.Uint64
	completes    atomic.Uint64
	redirects    atomic.Uint64
	rejected     atomic.Uint64
	sendErrors   atomic.Uint64
}

// Swarm is a population of virtual nodes.
type Swarm struct {
	cfg    Config
	shards []*shard
	// states and ids mirror each vnode's externally interesting fields
	// so gates and tests can read them without entering the event loops.
	states []atomic.Int32
	ids    []atomic.Uint64
	c      counters

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// command kinds delivered to a shard's event loop.
const (
	cmdJoin uint8 = iota
	cmdLeave
	cmdCrash
)

type command struct {
	kind uint8
	node int32
}

// vnode is one virtual node's state, owned exclusively by its shard's
// event loop — no locks. 100k of these cost ~100 bytes each, not a
// goroutine stack each.
type vnode struct {
	idx   int32
	addr  string
	state int32
	// epoch invalidates scheduled timers: every transition that must
	// cancel outstanding timers (crash, leave, rejoin) bumps it, and the
	// wheel drops fired entries with a stale epoch.
	epoch uint32

	id         uint64
	degree     int
	leaseEvery time.Duration
	statsEvery time.Duration

	// Synthetic data plane.
	rank, maxRank int
	genSize, gens int
	rate          int
	redundant     uint64
	renewals      uint64
	completeSent  bool

	helloAt    time.Time
	wasCrash   bool // this join attempt is a rejoin after a crash
	genScratch []int
}

type shard struct {
	s   *Swarm
	idx int
	ep  *transport.MuxEndpoint
	rng *rand.Rand

	// notify wakes the event loop; inbox and cmds are appended by
	// outsiders (the pump, the public API) under their mutexes and
	// swapped out wholesale by the loop.
	notify chan struct{}
	inMu   sync.Mutex
	inbox  []inFrame
	cmdMu  sync.Mutex
	cmds   []command

	wheel *wheel
	nodes map[int32]*vnode

	latMu sync.Mutex
	lats  []float64 // admission latencies (hello→welcome), nanoseconds
}

type inFrame struct {
	from, to string
	msg      []byte
}

// New builds a swarm and registers its shard endpoints on cfg.Network.
func New(cfg Config) (*Swarm, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("swarm: N must be positive, got %d", cfg.N)
	}
	if cfg.Network == nil || cfg.TrackerAddr == "" {
		return nil, fmt.Errorf("swarm: Network and TrackerAddr are required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > cfg.N {
		cfg.Shards = cfg.N
	}
	if cfg.HelloRetry <= 0 {
		cfg.HelloRetry = 500 * time.Millisecond
	}
	if cfg.GoodbyeRetry <= 0 {
		cfg.GoodbyeRetry = 500 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	if cfg.EndpointBuf <= 0 {
		cfg.EndpointBuf = 8192
	}
	if cfg.AddrPrefix == "" {
		cfg.AddrPrefix = "swarm"
	}
	s := &Swarm{
		cfg:    cfg,
		states: make([]atomic.Int32, cfg.N),
		ids:    make([]atomic.Uint64, cfg.N),
	}
	for i := 0; i < cfg.Shards; i++ {
		ep, err := cfg.Network.MuxEndpoint(fmt.Sprintf("%s%d", cfg.AddrPrefix, i), cfg.EndpointBuf)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shard{
			s:      s,
			idx:    i,
			ep:     ep,
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			notify: make(chan struct{}, 1),
			wheel:  newWheel(cfg.Tick, 512),
			nodes:  make(map[int32]*vnode),
		})
	}
	return s, nil
}

// Start launches the shard event loops and receive pumps.
func (s *Swarm) Start(ctx context.Context) {
	ctx, s.cancel = context.WithCancel(ctx)
	for _, sh := range s.shards {
		s.wg.Add(2)
		go sh.pump(ctx)
		go sh.run(ctx)
	}
}

// Close stops every loop and releases the shard endpoints.
func (s *Swarm) Close() {
	if s.cancel != nil {
		s.cancel()
	}
	for _, sh := range s.shards {
		sh.ep.Close()
	}
	s.wg.Wait()
}

// shardOf maps a node index to its owning shard.
func (s *Swarm) shardOf(i int) *shard { return s.shards[i%len(s.shards)] }

func (s *Swarm) enqueue(kind uint8, i int) {
	sh := s.shardOf(i)
	sh.cmdMu.Lock()
	sh.cmds = append(sh.cmds, command{kind: kind, node: int32(i)})
	sh.cmdMu.Unlock()
	sh.wake()
}

// Join asks node i to enter the overlay (idempotent while joining or
// joined; a crashed or departed node rejoins with a fresh hello).
func (s *Swarm) Join(i int) { s.enqueue(cmdJoin, i) }

// Leave asks node i to depart gracefully (goodbye, retried until acked).
func (s *Swarm) Leave(i int) { s.enqueue(cmdLeave, i) }

// Crash kills node i silently: no goodbye, all timers cancelled, inbound
// frames ignored — the tracker can only find out via lease expiry.
func (s *Swarm) Crash(i int) { s.enqueue(cmdCrash, i) }

// JoinRange joins nodes [lo, hi).
func (s *Swarm) JoinRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.Join(i)
	}
}

// State returns node i's lifecycle state.
func (s *Swarm) State(i int) int32 { return s.states[i].Load() }

// NodeID returns the tracker-assigned id of node i (0 before any welcome).
func (s *Swarm) NodeID(i int) uint64 { return s.ids[i].Load() }

// JoinedCount returns how many nodes are currently joined.
func (s *Swarm) JoinedCount() int { return int(s.c.joined.Load()) }

// Counts snapshots the counters.
func (s *Swarm) Counts() Counts {
	return Counts{
		Joined:       s.c.joined.Load(),
		Welcomes:     s.c.welcomes.Load(),
		DupWelcomes:  s.c.dupWelcomes.Load(),
		HelloRetries: s.c.helloRetries.Load(),
		Rejoins:      s.c.rejoins.Load(),
		Expelled:     s.c.expelled.Load(),
		Leaves:       s.c.leaves.Load(),
		Crashes:      s.c.crashes.Load(),
		Leases:       s.c.leases.Load(),
		StatsSent:    s.c.stats.Load(),
		Completes:    s.c.completes.Load(),
		Redirects:    s.c.redirects.Load(),
		Rejected:     s.c.rejected.Load(),
		SendErrors:   s.c.sendErrors.Load(),
	}
}

// AdmissionLatencies returns a sorted copy of every hello→welcome latency
// observed (nanoseconds). Each fresh admission contributes one sample.
func (s *Swarm) AdmissionLatencies() []float64 {
	var all []float64
	for _, sh := range s.shards {
		sh.latMu.Lock()
		all = append(all, sh.lats...)
		sh.latMu.Unlock()
	}
	sort.Float64s(all)
	return all
}

func (sh *shard) wake() {
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

// pump drains the shard endpoint into the unbounded inbox so the
// tracker's outbox workers never block on a busy event loop (which could
// otherwise form a send-cycle under a flash crowd: shard blocked sending
// hellos into a tracker whose replies can't land).
func (sh *shard) pump(ctx context.Context) {
	defer sh.s.wg.Done()
	for {
		from, to, msg, err := sh.ep.RecvTo(ctx)
		if err != nil {
			return
		}
		sh.inMu.Lock()
		sh.inbox = append(sh.inbox, inFrame{from: from, to: to, msg: msg})
		sh.inMu.Unlock()
		sh.wake()
	}
}

// run is the shard event loop: drain frames, drain commands, advance the
// wheel, sleep until woken or the next tick.
func (sh *shard) run(ctx context.Context) {
	defer sh.s.wg.Done()
	tick := time.NewTimer(sh.s.cfg.Tick)
	defer tick.Stop()
	for {
		sh.inMu.Lock()
		frames := sh.inbox
		sh.inbox = nil
		sh.inMu.Unlock()
		for i := range frames {
			sh.handleFrame(ctx, &frames[i])
		}
		sh.cmdMu.Lock()
		cmds := sh.cmds
		sh.cmds = nil
		sh.cmdMu.Unlock()
		for _, c := range cmds {
			sh.handleCommand(ctx, c)
		}
		sh.wheel.advance(time.Now(), func(e timerEntry) { sh.fire(ctx, e) })

		if !tick.Stop() {
			select {
			case <-tick.C:
			default:
			}
		}
		if sh.wheel.pending() {
			tick.Reset(sh.s.cfg.Tick)
			select {
			case <-ctx.Done():
				return
			case <-sh.notify:
			case <-tick.C:
			}
		} else {
			select {
			case <-ctx.Done():
				return
			case <-sh.notify:
			}
		}
	}
}

// node returns (creating on first use) the vnode for a global index.
func (sh *shard) node(i int32) *vnode {
	v, ok := sh.nodes[i]
	if !ok {
		deg := 0
		if f := sh.s.cfg.Degree; f != nil {
			deg = f(int(i))
		}
		rate := 0
		if f := sh.s.cfg.Rate; f != nil {
			rate = f(int(i))
		}
		if rate <= 0 {
			rate = 1 + sh.rng.Intn(4)
		}
		v = &vnode{
			idx:    i,
			addr:   fmt.Sprintf("%s%cn%d", sh.ep.Addr(), transport.MuxSep, i),
			degree: deg,
			rate:   rate,
		}
		sh.nodes[i] = v
	}
	return v
}

func (sh *shard) setState(v *vnode, st int32) {
	v.state = st
	sh.s.states[v.idx].Store(st)
}

func (sh *shard) handleCommand(ctx context.Context, c command) {
	v := sh.node(c.node)
	switch c.kind {
	case cmdJoin:
		switch v.state {
		case StateJoining, StateJoined, StateLeaving:
			return // already in or on the way
		}
		if v.state == StateCrashed {
			v.wasCrash = true
		}
		v.epoch++
		v.id = 0
		sh.s.ids[v.idx].Store(0)
		v.rank = 0
		v.redundant = 0
		v.renewals = 0
		v.completeSent = false
		sh.setState(v, StateJoining)
		v.helloAt = time.Now()
		sh.sendHello(ctx, v)
		sh.wheel.add(timerEntry{due: time.Now().Add(sh.s.cfg.HelloRetry), node: v.idx, kind: timerHello, epoch: v.epoch})
	case cmdLeave:
		if v.state != StateJoined {
			return
		}
		v.epoch++
		sh.setState(v, StateLeaving)
		sh.sendControl(ctx, v, protocol.MsgGoodbye, protocol.Goodbye{ID: v.id})
		sh.wheel.add(timerEntry{due: time.Now().Add(sh.s.cfg.GoodbyeRetry), node: v.idx, kind: timerGoodbye, epoch: v.epoch})
	case cmdCrash:
		if v.state == StateJoined || v.state == StateJoining || v.state == StateLeaving {
			if v.state == StateJoined {
				sh.s.c.joined.Add(-1)
			}
			v.epoch++
			sh.setState(v, StateCrashed)
			sh.s.c.crashes.Add(1)
		}
	}
}

func (sh *shard) fire(ctx context.Context, e timerEntry) {
	v, ok := sh.nodes[e.node]
	if !ok || v.epoch != e.epoch {
		return // lazily cancelled
	}
	switch e.kind {
	case timerHello:
		if v.state != StateJoining {
			return
		}
		sh.s.c.helloRetries.Add(1)
		sh.sendHello(ctx, v)
		sh.wheel.add(timerEntry{due: time.Now().Add(sh.s.cfg.HelloRetry), node: v.idx, kind: timerHello, epoch: v.epoch})
	case timerGoodbye:
		if v.state != StateLeaving {
			return
		}
		sh.sendControl(ctx, v, protocol.MsgGoodbye, protocol.Goodbye{ID: v.id})
		sh.wheel.add(timerEntry{due: time.Now().Add(sh.s.cfg.GoodbyeRetry), node: v.idx, kind: timerGoodbye, epoch: v.epoch})
	case timerLease:
		if v.state != StateJoined {
			return
		}
		v.renewals++
		sh.s.c.leases.Add(1)
		sh.sendControl(ctx, v, protocol.MsgLease, protocol.Lease{ID: v.id})
		sh.wheel.add(timerEntry{due: time.Now().Add(v.leaseEvery), node: v.idx, kind: timerLease, epoch: v.epoch})
	case timerStats:
		if v.state != StateJoined {
			return
		}
		sh.advanceProgress(ctx, v)
		sh.wheel.add(timerEntry{due: time.Now().Add(v.statsEvery), node: v.idx, kind: timerStats, epoch: v.epoch})
	}
}

func (sh *shard) sendHello(ctx context.Context, v *vnode) {
	sh.sendControl(ctx, v, protocol.MsgHello, protocol.Hello{Addr: v.addr, Degree: v.degree})
}

func (sh *shard) sendControl(ctx context.Context, v *vnode, typ protocol.MsgType, payload interface{}) {
	frame, err := protocol.EncodeControl(typ, payload)
	if err != nil {
		sh.s.c.sendErrors.Add(1)
		return
	}
	// A bounded wait: if the tracker's receive queue is saturated the
	// frame is dropped and the protocol's retry machinery (hello retry,
	// goodbye retry, next lease tick) recovers — exactly the lossy-link
	// semantics real nodes live with.
	sendCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	err = sh.ep.SendAs(sendCtx, v.addr, sh.s.cfg.TrackerAddr, frame)
	cancel()
	if err != nil && ctx.Err() == nil {
		sh.s.c.sendErrors.Add(1)
	}
}

func (sh *shard) handleFrame(ctx context.Context, f *inFrame) {
	idx, ok := sh.nodeIndexOf(f.to)
	if !ok {
		return
	}
	v, ok := sh.nodes[idx]
	if !ok {
		return // never commanded: nothing to deliver to
	}
	if v.state == StateCrashed {
		return // a dead process reads nothing
	}
	typ, payload, err := protocol.DecodeControl(f.msg)
	if err != nil {
		return
	}
	switch typ {
	case protocol.MsgWelcome:
		var w protocol.Welcome
		if err := json.Unmarshal(payload, &w); err != nil {
			return
		}
		sh.handleWelcome(v, w)
	case protocol.MsgGoodbyeAck:
		if v.state != StateLeaving {
			return
		}
		v.epoch++
		sh.setState(v, StateLeft)
		sh.s.c.joined.Add(-1)
		sh.s.c.leaves.Add(1)
	case protocol.MsgExpelled:
		if v.state != StateJoined {
			return
		}
		// Protocol-correct response: the tracker removed our row (lease
		// expiry after a partition, or a complaint); re-join with a fresh
		// hello. Decoded state survives in a real node; here the synthetic
		// rank restarts.
		sh.s.c.expelled.Add(1)
		sh.s.c.joined.Add(-1)
		v.epoch++
		v.id = 0
		sh.s.ids[v.idx].Store(0)
		sh.setState(v, StateJoining)
		v.helloAt = time.Now()
		sh.sendHello(ctx, v)
		sh.wheel.add(timerEntry{due: time.Now().Add(sh.s.cfg.HelloRetry), node: v.idx, kind: timerHello, epoch: v.epoch})
	case protocol.MsgRedirect, protocol.MsgThreadDropped, protocol.MsgThreadAdded:
		// Stub data plane: a real node would re-route its stream; the
		// swarm only needs the tracker to believe it did.
		sh.s.c.redirects.Add(1)
	case protocol.MsgError:
		if v.state == StateJoining {
			v.epoch++
			sh.setState(v, StateRejected)
			sh.s.c.rejected.Add(1)
		}
	}
}

// nodeIndexOf parses the virtual node index from a full destination
// address of the form <shardAddr>!n<idx>.
func (sh *shard) nodeIndexOf(to string) (int32, bool) {
	base := sh.ep.Addr()
	// Expect to == base + "!n" + digits.
	if len(to) < len(base)+3 || to[:len(base)] != base ||
		to[len(base)] != transport.MuxSep || to[len(base)+1] != 'n' {
		return 0, false
	}
	var idx int32
	for i := len(base) + 2; i < len(to); i++ {
		c := to[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + int32(c-'0')
	}
	if int(idx) >= sh.s.cfg.N {
		return 0, false
	}
	return idx, true
}

func (sh *shard) handleWelcome(v *vnode, w protocol.Welcome) {
	if v.state != StateJoining {
		if v.state == StateJoined {
			sh.s.c.dupWelcomes.Add(1)
		}
		return
	}
	lat := float64(time.Since(v.helloAt).Nanoseconds())
	sh.latMu.Lock()
	sh.lats = append(sh.lats, lat)
	sh.latMu.Unlock()

	v.epoch++ // cancels the hello retry
	v.id = w.ID
	sh.s.ids[v.idx].Store(w.ID)
	sh.setState(v, StateJoined)
	sh.s.c.joined.Add(1)
	sh.s.c.welcomes.Add(1)
	if v.wasCrash {
		v.wasCrash = false
		sh.s.c.rejoins.Add(1)
	}

	// Synthetic data plane sizing from the session parameters.
	v.genSize = w.Session.GenSize
	if v.genSize <= 0 {
		v.genSize = 1
	}
	perGen := v.genSize * w.Session.PacketSize
	v.gens = 1
	if perGen > 0 && w.Session.ContentLen > perGen {
		v.gens = (w.Session.ContentLen + perGen - 1) / perGen
	}
	v.maxRank = v.gens * v.genSize
	v.rank = 0

	if w.LeaseMillis > 0 {
		v.leaseEvery = time.Duration(w.LeaseMillis) * time.Millisecond
		// Jittered first renewal so 100k leases don't beat in phase.
		first := time.Duration(sh.rng.Int63n(int64(v.leaseEvery))) + v.leaseEvery/2
		sh.wheel.add(timerEntry{due: time.Now().Add(first), node: v.idx, kind: timerLease, epoch: v.epoch})
	}
	if w.StatsMillis > 0 {
		v.statsEvery = time.Duration(w.StatsMillis) * time.Millisecond
		first := time.Duration(sh.rng.Int63n(int64(v.statsEvery)))
		sh.wheel.add(timerEntry{due: time.Now().Add(first), node: v.idx, kind: timerStats, epoch: v.epoch})
	}
}

// advanceProgress moves the synthetic decode forward and reports it: the
// believable stats stream that keeps the tracker's telemetry plane
// (freshness, progress census, straggler detection) exercised at scale.
func (sh *shard) advanceProgress(ctx context.Context, v *vnode) {
	if v.rank < v.maxRank {
		v.rank += v.rate
		if v.rank > v.maxRank {
			v.rank = v.maxRank
		}
		// Roughly 2% of received coded packets arrive redundant — enough
		// to keep the overhead fields non-trivial.
		if v.rank%50 == 0 {
			v.redundant++
		}
	}
	if cap(v.genScratch) < v.gens {
		v.genScratch = make([]int, v.gens)
	}
	genRanks := v.genScratch[:v.gens]
	rest := v.rank
	done := 0
	for g := 0; g < v.gens; g++ {
		r := rest
		if r > v.genSize {
			r = v.genSize
		}
		genRanks[g] = r
		rest -= r
		if r == v.genSize {
			done++
		}
	}
	complete := v.rank >= v.maxRank
	r := protocol.StatsReport{
		ID:            v.id,
		Rank:          v.rank,
		MaxRank:       v.maxRank,
		GenRanks:      genRanks,
		GensDone:      done,
		TotalGens:     v.gens,
		Complete:      complete,
		Received:      uint64(v.rank) + v.redundant,
		Innovative:    uint64(v.rank),
		Redundant:     v.redundant,
		LeaseRenewals: v.renewals,
	}
	sh.s.c.stats.Add(1)
	sh.sendControl(ctx, v, protocol.MsgStatsReport, r)
	if complete && !v.completeSent {
		v.completeSent = true
		sh.s.c.completes.Add(1)
		sh.sendControl(ctx, v, protocol.MsgComplete, protocol.Complete{ID: v.id})
	}
}
