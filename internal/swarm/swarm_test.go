package swarm

import (
	"runtime"
	"testing"
	"time"
)

// drillN is the scaled-down drill population for `make swarm` (the full
// 100k run lives in cmd/ncast-scale). Short mode shrinks it further so
// plain `go test ./...` stays quick.
func drillN(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 200
	}
	return 1000
}

func testDrillConfig(n int) DrillConfig {
	return DrillConfig{
		N:             n,
		Shards:        4,
		Seed:          7,
		K:             16,
		D:             2,
		LeaseTimeout:  1200 * time.Millisecond,
		StatsInterval: 250 * time.Millisecond,
		Timeout:       90 * time.Second,
	}
}

func checkDrill(t *testing.T, r DrillResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("drill error: %v", err)
	}
	for _, g := range r.Gates {
		if g.Pass {
			t.Logf("gate %s: ok (%s)", g.Name, g.Detail)
		} else {
			t.Errorf("gate %s FAILED: %s", g.Name, g.Detail)
		}
	}
	if !r.Passed {
		t.Errorf("drill %s failed (metrics: %v)", r.Name, r.Metrics)
	}
}

func TestSwarmDrillFlashCrowd(t *testing.T) {
	r, err := RunFlashCrowd(testDrillConfig(drillN(t)))
	checkDrill(t, r, err)
}

func TestSwarmDrillChurnRejoin(t *testing.T) {
	r, err := RunChurnRejoin(testDrillConfig(drillN(t)))
	checkDrill(t, r, err)
}

func TestSwarmDrillHeterogeneous(t *testing.T) {
	r, err := RunHeterogeneous(testDrillConfig(drillN(t)))
	checkDrill(t, r, err)
}

func TestSwarmDrillAdversarialBatch(t *testing.T) {
	r, err := RunAdversarialBatch(testDrillConfig(drillN(t)))
	checkDrill(t, r, err)
}

// TestSwarmLifecycle walks one population through join, graceful leave,
// silent crash, and rejoin, checking the tracker's census at each step.
func TestSwarmLifecycle(t *testing.T) {
	cfg := DrillConfig{
		N:            100,
		Shards:       2,
		Seed:         11,
		K:            8,
		D:            2,
		LeaseTimeout: 600 * time.Millisecond,
	}.withDefaults()
	env, err := startEnv(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer env.stop()

	env.swarm.JoinRange(0, 100)
	if !waitUntil(30*time.Second, func() bool { return env.swarm.JoinedCount() == 100 }) {
		t.Fatalf("join wave: %d/100 joined", env.swarm.JoinedCount())
	}

	// Graceful leaves shrink the census via goodbye/ack.
	for i := 0; i < 10; i++ {
		env.swarm.Leave(i)
	}
	if !waitUntil(30*time.Second, func() bool { return env.tracker.NumNodes() == 90 }) {
		t.Fatalf("after leaves: tracker has %d rows, want 90", env.tracker.NumNodes())
	}
	if c := env.swarm.Counts(); c.Leaves != 10 {
		t.Fatalf("acked leaves = %d, want 10", c.Leaves)
	}

	// Silent crashes need the lease sweep.
	for i := 10; i < 20; i++ {
		env.swarm.Crash(i)
	}
	if !waitUntil(30*time.Second, func() bool { return env.tracker.NumNodes() == 80 }) {
		t.Fatalf("after crashes: tracker has %d rows, want 80", env.tracker.NumNodes())
	}

	// Crashed nodes rejoin as fresh rows.
	for i := 10; i < 20; i++ {
		env.swarm.Join(i)
	}
	if !waitUntil(30*time.Second, func() bool { return env.tracker.NumNodes() == 90 }) {
		t.Fatalf("after rejoins: tracker has %d rows, want 90", env.tracker.NumNodes())
	}
	if c := env.swarm.Counts(); c.Rejoins != 10 {
		t.Fatalf("rejoins = %d, want 10", c.Rejoins)
	}
	if err := env.tracker.CheckInvariants(); err != nil {
		t.Fatalf("invariants after lifecycle: %v", err)
	}
}

func TestWheelFiresInDueOrderAcrossRotations(t *testing.T) {
	w := newWheel(time.Millisecond, 8) // tiny wheel: entries must survive rotations
	base := time.Now()
	var fired []int32
	// Schedule out of order, including one beyond a full rotation (8ms).
	for _, e := range []struct {
		node int32
		ms   int
	}{{3, 30}, {1, 2}, {2, 12}, {0, 1}} {
		w.add(timerEntry{due: base.Add(time.Duration(e.ms) * time.Millisecond), node: e.node})
	}
	for step := 0; step <= 40; step++ {
		w.advance(base.Add(time.Duration(step)*time.Millisecond), func(e timerEntry) {
			fired = append(fired, e.node)
		})
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d entries, want 4 (%v)", len(fired), fired)
	}
	for i, want := range []int32{0, 1, 2, 3} {
		if fired[i] != want {
			t.Fatalf("fire order = %v, want [0 1 2 3]", fired)
		}
	}
	if w.pending() {
		t.Fatal("wheel still pending after all entries fired")
	}
}

func TestWheelLazyCancellation(t *testing.T) {
	w := newWheel(time.Millisecond, 16)
	base := time.Now()
	w.add(timerEntry{due: base.Add(2 * time.Millisecond), node: 1, epoch: 1})
	// The node "crashed": its epoch moved on; the shard-level fire filter
	// is what drops the entry, so the wheel still surfaces it.
	fired := 0
	current := uint32(2)
	w.advance(base.Add(5*time.Millisecond), func(e timerEntry) {
		if e.epoch == current {
			fired++
		}
	})
	if fired != 0 {
		t.Fatalf("stale entry acted on %d times, want 0", fired)
	}
	if w.pending() {
		t.Fatal("stale entry retained")
	}
}

// TestSwarmGoroutineFootprint pins the core scaling property directly:
// an 8x larger population must not change the swarm's goroutine count.
func TestSwarmGoroutineFootprint(t *testing.T) {
	for _, n := range []int{100, 800} {
		cfg := DrillConfig{N: n, Shards: 4, Seed: 3, K: 8, D: 2}.withDefaults()
		env, err := startEnv(cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		env.swarm.JoinRange(0, n)
		if !waitUntil(30*time.Second, func() bool { return env.swarm.JoinedCount() == n }) {
			env.stop()
			t.Fatalf("N=%d: only %d joined", n, env.swarm.JoinedCount())
		}
		// 2 goroutines per shard + tracker Run/recv + its outbox workers
		// (one per shard peer key) + test overhead.
		if g := runtime.NumGoroutine(); g > 40 {
			env.stop()
			t.Fatalf("N=%d: %d goroutines, want O(shards)", n, g)
		}
		env.stop()
	}
}
