package swarm

import (
	"math/rand"
	"testing"
	"time"
)

// schedOp is one step of a seed-derived join/leave schedule.
type schedOp struct {
	kind uint8 // cmdJoin or cmdLeave
	node int
}

// buildSchedule derives a deterministic interleaving of joins and leaves
// from the seed: every node joins, and a seeded subset later leaves.
func buildSchedule(seed int64, n int) []schedOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]schedOp, 0, n+n/3)
	for _, i := range rng.Perm(n) {
		ops = append(ops, schedOp{kind: cmdJoin, node: i})
	}
	// Leave a third of the fleet, in seeded order, interleaved after the
	// joins (leaving mid-join would race admission and break the
	// sequential-application contract below).
	for _, i := range rng.Perm(n)[:n/3] {
		ops = append(ops, schedOp{kind: cmdLeave, node: i})
	}
	return ops
}

// applySequential drives the schedule one op at a time, waiting for each
// op's effect before issuing the next, so the tracker observes a fully
// deterministic control-message order: one shard preserves command order,
// and sequential application removes cross-op races.
func applySequential(t *testing.T, env *drillEnv, ops []schedOp) {
	t.Helper()
	rows := env.tracker.NumNodes()
	for _, op := range ops {
		switch op.kind {
		case cmdJoin:
			env.swarm.Join(op.node)
			rows++
		case cmdLeave:
			env.swarm.Leave(op.node)
			rows--
		}
		want := rows
		if !waitUntil(10*time.Second, func() bool { return env.tracker.NumNodes() == want }) {
			t.Fatalf("schedule stalled at op %+v: tracker rows=%d want=%d", op, env.tracker.NumNodes(), want)
		}
	}
}

// runSeeded executes the seed's schedule on a fresh tracker+swarm and
// returns the tracker's canonical topology dump plus every node's final
// tracker id.
func runSeeded(t *testing.T, seed int64, n int) (string, []uint64) {
	t.Helper()
	cfg := DrillConfig{
		N:      n,
		Shards: 1, // one shard: command order == wire order
		Seed:   seed,
		K:      8,
		D:      2,
		// Leases and telemetry off: their timers would interleave extra
		// control messages nondeterministically.
	}.withDefaults()
	cfg.Shards = 1
	env, err := startEnv(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer env.stop()
	applySequential(t, env, buildSchedule(seed, n))
	if err := env.tracker.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		ids[i] = env.swarm.NodeID(i)
	}
	return env.tracker.MatrixDump(), ids
}

// TestSeedDeterminism: two runs with the same seed produce identical
// join/leave schedules, identical per-node id assignments, and a
// byte-identical tracker topology (core.Curtain.MatrixString, the same
// canonical dump the differential suite compares).
func TestSeedDeterminism(t *testing.T) {
	const n = 60
	for _, seed := range []int64{1, 42} {
		s1 := buildSchedule(seed, n)
		s2 := buildSchedule(seed, n)
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: schedule lengths differ", seed)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seed %d: schedules diverge at op %d: %+v vs %+v", seed, i, s1[i], s2[i])
			}
		}
		dump1, ids1 := runSeeded(t, seed, n)
		dump2, ids2 := runSeeded(t, seed, n)
		if dump1 != dump2 {
			t.Errorf("seed %d: topology dumps differ:\n--- run1 ---\n%s--- run2 ---\n%s", seed, dump1, dump2)
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Errorf("seed %d: node %d id %d vs %d", seed, i, ids1[i], ids2[i])
			}
		}
	}
	// Different seeds must actually differ (the dump is not vacuously
	// constant).
	d1, _ := runSeeded(t, 1, n)
	d2, _ := runSeeded(t, 42, n)
	if d1 == d2 {
		t.Error("distinct seeds produced identical topologies — schedule not seed-driven?")
	}
}
