package swarm

import "time"

// timerEntry is one scheduled per-node event. Cancellation is lazy: the
// entry carries the node's epoch at scheduling time, and the shard drops
// fired entries whose node has since changed epoch (crashed, left,
// rejoined), so cancels cost nothing at the wheel.
type timerEntry struct {
	due   time.Time
	node  int32
	kind  uint8
	epoch uint32
}

// Timer kinds.
const (
	timerHello   uint8 = iota // retry an unanswered hello
	timerLease                // renew the liveness lease
	timerStats                // advance synthetic progress + send a report
	timerGoodbye              // retry an unacked goodbye
)

// wheel is a hashed timer wheel: slots of `tick` width, entries hashed by
// due slot. One shard owns one wheel and drives it from its event loop —
// no locks, no per-timer goroutines, which is the whole point: 100k nodes
// schedule hundreds of thousands of timers onto O(shards) goroutines.
//
// Precision is one tick (the event loop sleeps at tick granularity while
// any timer is pending). Entries whose due time lies beyond one full
// rotation simply stay in their slot across rotations — advance re-checks
// each entry's absolute due time before firing.
type wheel struct {
	tick  time.Duration
	slots [][]timerEntry
	start time.Time
	// cur is the next absolute slot index to scan (slots scanned once per
	// rotation each).
	cur   int64
	count int
}

func newWheel(tick time.Duration, nslots int) *wheel {
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	if nslots <= 0 {
		nslots = 512
	}
	return &wheel{
		tick:  tick,
		slots: make([][]timerEntry, nslots),
		start: time.Now(),
	}
}

func (w *wheel) slotOf(due time.Time) int64 {
	s := int64(due.Sub(w.start) / w.tick)
	if s < w.cur {
		s = w.cur // past-due entries fire on the next advance
	}
	return s
}

func (w *wheel) add(e timerEntry) {
	i := w.slotOf(e.due) % int64(len(w.slots))
	w.slots[i] = append(w.slots[i], e)
	w.count++
}

// pending reports whether any timer is scheduled.
func (w *wheel) pending() bool { return w.count > 0 }

// advance scans every slot that became current since the last call,
// firing entries that are due and keeping the rest (future rotations).
// fire runs inline on the caller's goroutine.
func (w *wheel) advance(now time.Time, fire func(timerEntry)) {
	target := int64(now.Sub(w.start) / w.tick)
	if target < w.cur {
		return
	}
	n := int64(len(w.slots))
	// A long stall can put target many rotations ahead; each slot only
	// needs one scan per advance.
	first := w.cur
	if target-first >= n {
		target = first + n - 1
	}
	for s := first; s <= target; s++ {
		slot := w.slots[s%n]
		kept := slot[:0]
		for _, e := range slot {
			if e.due.After(now) {
				kept = append(kept, e)
				continue
			}
			w.count--
			fire(e)
		}
		// Zero the tail so fired entries don't pin memory.
		for i := len(kept); i < len(slot); i++ {
			slot[i] = timerEntry{}
		}
		w.slots[s%n] = kept
	}
	// Stay on the target slot (not past it): now may sit mid-slot, and an
	// entry due later inside the same slot must be rescanned on the next
	// advance rather than wait a full rotation.
	w.cur = target
}
