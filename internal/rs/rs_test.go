package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"ncast/internal/gf"
)

func mustCode(t *testing.T, f gf.Field, data, parity int) *Code {
	t.Helper()
	c, err := New(f, data, parity)
	if err != nil {
		t.Fatalf("New(%s,%d,%d): %v", f.Name(), data, parity, err)
	}
	return c
}

func randShards(r *rand.Rand, c *Code, size int) [][]byte {
	shards := make([][]byte, c.TotalShards())
	for i := 0; i < c.DataShards(); i++ {
		shards[i] = make([]byte, size)
		r.Read(shards[i])
	}
	return shards
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		f       gf.Field
		data    int
		parity  int
		wantErr bool
	}{
		{"ok 4+2", gf.F256, 4, 2, false},
		{"ok 1+0", gf.F256, 1, 0, false},
		{"ok large gf16", gf.F65536, 200, 100, false},
		{"zero data", gf.F256, 0, 2, true},
		{"negative parity", gf.F256, 4, -1, true},
		{"too many shards gf8", gf.F256, 200, 56, true},
		{"gf2 rejected", gf.F2, 2, 1, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := New(tt.f, tt.data, tt.parity)
			if (err != nil) != tt.wantErr {
				t.Errorf("New error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeIsSystematic(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(1))
	c := mustCode(t, gf.F256, 5, 3)
	shards := randShards(r, c, 64)
	orig := make([][]byte, c.DataShards())
	for i := range orig {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("Encode modified data shard %d", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	t.Parallel()
	// With 4+3 shards, delete every subset of size <= 3 and reconstruct.
	r := rand.New(rand.NewSource(2))
	c := mustCode(t, gf.F256, 4, 3)
	master := randShards(r, c, 32)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	total := c.TotalShards()
	for mask := 0; mask < 1<<total; mask++ {
		erased := 0
		for b := 0; b < total; b++ {
			if mask&(1<<b) != 0 {
				erased++
			}
		}
		if erased > c.ParityShards() {
			continue
		}
		shards := make([][]byte, total)
		for i := range shards {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte(nil), master[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("Reconstruct mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], master[i]) {
				t.Fatalf("mask %b: shard %d mismatch after reconstruct", mask, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	c := mustCode(t, gf.F256, 4, 2)
	shards := randShards(r, c, 16)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	// Erase 3 shards: more than parity count.
	shards[0], shards[2], shards[5] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(4))
	c := mustCode(t, gf.F256, 3, 2)
	shards := randShards(r, c, 24)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[1][5] ^= 0xFF
	ok, err := c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify accepted corrupted shard")
	}
}

func TestShardSizeMismatch(t *testing.T) {
	t.Parallel()
	c := mustCode(t, gf.F256, 2, 1)
	shards := [][]byte{make([]byte, 8), make([]byte, 9), nil}
	if err := c.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestGF65536RoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(5))
	c := mustCode(t, gf.F65536, 6, 4)
	shards := randShards(r, c, 64) // even length for 2-byte symbols
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(shards))
	for i := range shards {
		want[i] = append([]byte(nil), shards[i]...)
	}
	shards[1], shards[3], shards[7], shards[9] = nil, nil, nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(6))
	c := mustCode(t, gf.F256, 5, 2)
	for _, size := range []int{1, 4, 5, 63, 64, 65, 1000} {
		data := make([]byte, size)
		r.Read(data)
		shards := c.Split(data)
		if err := c.Encode(shards); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := c.Join(shards, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: join mismatch", size)
		}
	}
}

func TestSplitEncodeEraseJoin(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	c := mustCode(t, gf.F256, 8, 4)
	data := make([]byte, 10000)
	r.Read(data)
	shards := c.Split(data)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	// Erase 4 random shards.
	perm := r.Perm(c.TotalShards())
	for _, i := range perm[:4] {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	got, err := c.Join(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after erasure + reconstruct")
	}
}

func TestMDSPropertyRandomSubsets(t *testing.T) {
	t.Parallel()
	// Property: ANY DataShards-sized subset reconstructs. Random trials
	// over a larger code than the exhaustive test covers.
	r := rand.New(rand.NewSource(8))
	c := mustCode(t, gf.F256, 10, 6)
	master := randShards(r, c, 16)
	if err := c.Encode(master); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		perm := r.Perm(c.TotalShards())
		shards := make([][]byte, c.TotalShards())
		for _, i := range perm[:c.DataShards()] {
			shards[i] = append([]byte(nil), master[i]...)
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], master[i]) {
				t.Fatalf("trial %d: shard %d mismatch", trial, i)
			}
		}
	}
}

func BenchmarkEncode8x4(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c, err := New(gf.F256, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	shards := randShards(r, c, 4096)
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct8x4(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c, err := New(gf.F256, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	master := randShards(r, c, 4096)
	if err := c.Encode(master); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(master))
		copy(shards, master)
		shards[0], shards[3], shards[9], shards[11] = nil, nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
