// Package rs implements systematic Reed–Solomon erasure codes over GF(2^8)
// or GF(2^16). It exists as the substrate for the paper's §1 prior-art
// baseline: "data may be encoded with erasure codes (e.g., Reed–Solomon
// codes) ... so that it is not necessary for a node to get data
// successfully from all its parents". The multi-parent FEC baseline in
// internal/baseline stripes RS-coded shards across parent connections.
//
// The code is MDS: any dataShards of the dataShards+parityShards total
// shards suffice to reconstruct. The generator matrix is a Vandermonde
// matrix normalised so the top block is the identity (systematic form).
package rs

import (
	"errors"
	"fmt"

	"ncast/internal/gf"
	"ncast/internal/matrix"
)

// ErrTooFewShards is returned by Reconstruct when fewer than dataShards
// shards are present.
var ErrTooFewShards = errors.New("rs: too few shards to reconstruct")

// ErrShardSize is returned when present shards disagree in length or have
// a length incompatible with the field's symbol size.
var ErrShardSize = errors.New("rs: inconsistent shard sizes")

// Code is an immutable erasure-coding configuration. It is safe for
// concurrent use.
type Code struct {
	f      gf.Field
	data   int
	parity int
	// enc is the (data+parity)×data systematic generator matrix: the top
	// data rows are the identity, the bottom parity rows generate parity.
	enc *matrix.Matrix
}

// New returns a Reed–Solomon code with the given shard counts.
// dataShards+parityShards must not exceed the field order (255 shards
// total over GF(2^8) keeps the Vandermonde points distinct and nonzero).
func New(f gf.Field, dataShards, parityShards int) (*Code, error) {
	if dataShards <= 0 || parityShards < 0 {
		return nil, fmt.Errorf("rs: invalid shard counts data=%d parity=%d", dataShards, parityShards)
	}
	total := dataShards + parityShards
	if total >= f.Order() {
		return nil, fmt.Errorf("rs: %d total shards exceeds capacity of %s", total, f.Name())
	}
	if f.Bits() < 2 {
		return nil, fmt.Errorf("rs: field %s too small for Reed-Solomon", f.Name())
	}

	// Vandermonde matrix V[i][j] = x_i^j with distinct evaluation points
	// x_i = i+1 (nonzero so every submatrix stays invertible).
	v := matrix.New(f, total, dataShards)
	for i := 0; i < total; i++ {
		x := uint16(i + 1)
		p := uint16(1)
		for j := 0; j < dataShards; j++ {
			v.Set(i, j, p)
			p = f.Mul(p, x)
		}
	}
	// Normalise to systematic form: enc = V · (top block)^-1, making the
	// top block the identity. Any dataShards×dataShards submatrix of a
	// Vandermonde matrix with distinct points is invertible, and
	// multiplying on the right by a fixed invertible matrix preserves
	// that property, so the systematic code remains MDS.
	top := matrix.New(f, dataShards, dataShards)
	for i := 0; i < dataShards; i++ {
		copy(top.Row(i), v.Row(i))
	}
	topInv, err := top.Inverse()
	if err != nil {
		return nil, fmt.Errorf("rs: vandermonde top block not invertible: %w", err)
	}
	return &Code{f: f, data: dataShards, parity: parityShards, enc: v.Mul(topInv)}, nil
}

// DataShards returns the number of data shards.
func (c *Code) DataShards() int { return c.data }

// ParityShards returns the number of parity shards.
func (c *Code) ParityShards() int { return c.parity }

// TotalShards returns DataShards()+ParityShards().
func (c *Code) TotalShards() int { return c.data + c.parity }

// checkShards validates a full shard set: length data+parity, with present
// (non-nil) shards of one common positive size aligned to the field symbol.
func (c *Code) checkShards(shards [][]byte) (size int, err error) {
	if len(shards) != c.TotalShards() {
		return 0, fmt.Errorf("rs: got %d shards, want %d", len(shards), c.TotalShards())
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size == 0 {
			size = len(s)
		}
		if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size == 0 || size%c.f.SymbolSize() != 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

// Encode computes the parity shards for the given data shards in place:
// shards[:data] must be filled, and Encode overwrites shards[data:].
// Parity slices may be nil, in which case Encode allocates them.
func (c *Code) Encode(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("rs: got %d shards, want %d", len(shards), c.TotalShards())
	}
	size := -1
	for i := 0; i < c.data; i++ {
		if shards[i] == nil {
			return fmt.Errorf("rs: data shard %d is nil", i)
		}
		if size == -1 {
			size = len(shards[i])
		}
		if len(shards[i]) != size {
			return ErrShardSize
		}
	}
	if size <= 0 || size%c.f.SymbolSize() != 0 {
		return ErrShardSize
	}
	for i := 0; i < c.parity; i++ {
		p := shards[c.data+i]
		if len(p) != size {
			p = make([]byte, size)
			shards[c.data+i] = p
		} else {
			for j := range p {
				p[j] = 0
			}
		}
		row := c.enc.Row(c.data + i)
		for j := 0; j < c.data; j++ {
			c.f.AddMulSlice(p, shards[j], row[j])
		}
	}
	return nil
}

// Reconstruct fills in missing (nil) shards, both data and parity, from
// any DataShards() present shards. Present shards are never modified.
func (c *Code) Reconstruct(shards [][]byte) error {
	size, err := c.checkShards(shards)
	if err != nil {
		return err
	}
	present := make([]int, 0, c.TotalShards())
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < c.data {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.data)
	}
	present = present[:c.data]

	// Solve for the data shards: rows of enc restricted to the present
	// shards form an invertible data×data matrix (MDS property).
	sub := matrix.New(c.f, c.data, c.data)
	for r, idx := range present {
		copy(sub.Row(r), c.enc.Row(idx))
	}
	subInv, err := sub.Inverse()
	if err != nil {
		return fmt.Errorf("rs: decode submatrix singular (corrupt code?): %w", err)
	}

	// data[j] = sum_r subInv[j][r] * shards[present[r]].
	recovered := make([][]byte, c.data)
	for j := 0; j < c.data; j++ {
		if shards[j] != nil {
			recovered[j] = shards[j]
			continue
		}
		out := make([]byte, size)
		row := subInv.Row(j)
		for r, idx := range present {
			c.f.AddMulSlice(out, shards[idx], row[r])
		}
		recovered[j] = out
	}
	copy(shards[:c.data], recovered)

	// Re-encode any missing parity from the now-complete data shards.
	for i := 0; i < c.parity; i++ {
		if shards[c.data+i] != nil {
			continue
		}
		p := make([]byte, size)
		row := c.enc.Row(c.data + i)
		for j := 0; j < c.data; j++ {
			c.f.AddMulSlice(p, shards[j], row[j])
		}
		shards[c.data+i] = p
	}
	return nil
}

// Verify reports whether the parity shards match the data shards. All
// shards must be present.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards)
	if err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("rs: verify requires all shards present")
		}
	}
	buf := make([]byte, size)
	for i := 0; i < c.parity; i++ {
		for j := range buf {
			buf[j] = 0
		}
		row := c.enc.Row(c.data + i)
		for j := 0; j < c.data; j++ {
			c.f.AddMulSlice(buf, shards[j], row[j])
		}
		if !bytesEqual(buf, shards[c.data+i]) {
			return false, nil
		}
	}
	return true, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Split partitions data into DataShards() equal shards, zero-padding the
// tail. The returned shards each have length ceil(len(data)/DataShards())
// rounded up to the field symbol size.
func (c *Code) Split(data []byte) [][]byte {
	per := (len(data) + c.data - 1) / c.data
	if per == 0 {
		per = c.f.SymbolSize()
	}
	if rem := per % c.f.SymbolSize(); rem != 0 {
		per += c.f.SymbolSize() - rem
	}
	shards := make([][]byte, c.TotalShards())
	for i := 0; i < c.data; i++ {
		shards[i] = make([]byte, per)
		start := i * per
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join concatenates the data shards and trims the result to size bytes,
// inverting Split.
func (c *Code) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.data {
		return nil, fmt.Errorf("rs: join needs %d data shards, got %d", c.data, len(shards))
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.data && len(out) < size; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("rs: data shard %d missing in join", i)
		}
		out = append(out, shards[i]...)
	}
	if len(out) < size {
		return nil, fmt.Errorf("rs: shards hold %d bytes, need %d", len(out), size)
	}
	return out[:size], nil
}
