package gf

import "math/rand"

// poly256 is the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 generating
// GF(2^8) with alpha = 2 as a primitive element.
const poly256 = 0x11D

// GF256 is the 256-element field GF(2^8). Multiplication uses a full
// 64 KiB product table; the bulk kernels use the 256-byte row for the
// scalar, which keeps the inner loop to a single table lookup per byte.
type GF256 struct{}

// F256 is the shared GF(2^8) instance.
var F256 = GF256{}

// Package-level tables for GF(2^8). They are built once by a var
// initializer (no init function) from the primitive polynomial, so they are
// immutable after package load and safe for concurrent readers.
var (
	exp256 [512]byte          // exp256[i] = alpha^i, doubled to avoid mod 255 in Mul
	log256 [256]uint16        // log256[x] = i such that alpha^i = x; log256[0] unused
	inv256 [256]byte          // inv256[x] = x^-1; inv256[0] unused
	mul256 [256][256]byte     // full product table
	nib256 [256][32]byte      // nib256[c] = {c*n | n<16} ++ {c*(n<<4) | n<16}
	_      = buildTables256() // force table construction at package load
)

func buildTables256() struct{} {
	x := 1
	for i := 0; i < 255; i++ {
		exp256[i] = byte(x)
		log256[x] = uint16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly256
		}
	}
	if x != 1 {
		panic("gf: 0x11D did not generate GF(2^8)")
	}
	for i := 255; i < 512; i++ {
		exp256[i] = exp256[i-255]
	}
	for a := 1; a < 256; a++ {
		inv256[a] = exp256[255-int(log256[a])]
		for b := 1; b < 256; b++ {
			mul256[a][b] = exp256[int(log256[a])+int(log256[b])]
		}
	}
	// Nibble-split product tables: a byte product c*s decomposes as
	// c*(s&0x0f) ^ c*(s&0xf0), so the vector kernels can look 32 products
	// up per PSHUFB pair. Built for every c so table selection is a plain
	// index, including c=0 and c=1 (the dispatchers peel those off, but
	// correctness must not depend on it).
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			nib256[c][n] = mul256[c][n]
			nib256[c][16+n] = mul256[c][n<<4]
		}
	}
	return struct{}{}
}

// Name implements Field.
func (GF256) Name() string { return "GF(256)" }

// Bits implements Field.
func (GF256) Bits() int { return 8 }

// Order implements Field.
func (GF256) Order() int { return 256 }

// SymbolSize implements Field.
func (GF256) SymbolSize() int { return 1 }

// Add implements Field.
func (GF256) Add(a, b uint16) uint16 { return (a ^ b) & 0xFF }

// Mul implements Field.
func (GF256) Mul(a, b uint16) uint16 { return uint16(mul256[a&0xFF][b&0xFF]) }

// Inv implements Field.
func (GF256) Inv(a uint16) uint16 {
	if a&0xFF == 0 {
		panic("gf: inverse of zero in GF(256)")
	}
	return uint16(inv256[a&0xFF])
}

// Div implements Field.
func (g GF256) Div(a, b uint16) uint16 { return g.Mul(a, g.Inv(b)) }

// Rand implements Field.
func (GF256) Rand(r *rand.Rand) uint16 { return uint16(r.Intn(256)) }

// RandNonZero implements Field.
func (GF256) RandNonZero(r *rand.Rand) uint16 { return uint16(1 + r.Intn(255)) }

// Exp returns alpha^i for i in [0,255); exported for the Reed–Solomon
// Vandermonde construction.
func (GF256) Exp(i int) uint16 { return uint16(exp256[i%255]) }

// AddSlice implements Field.
func (GF256) AddSlice(dst, src []byte) {
	checkLen(dst, src, 1)
	xorSlice(dst, src)
}

// MulSlice implements Field.
func (GF256) MulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 1)
	switch c & 0xFF {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulSlice256(dst, src, c&0xFF)
	}
}

// AddMulSlice implements Field.
func (g GF256) AddMulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 1)
	switch c & 0xFF {
	case 0:
	case 1:
		xorSlice(dst, src)
	default:
		addMulSlice256(dst, src, c&0xFF)
	}
}

// MulCoeff implements Field.
func (GF256) MulCoeff(dst []uint16, c uint16) {
	switch c & 0xFF {
	case 0:
		clear(dst)
	case 1:
	default:
		row := &mul256[c&0xFF]
		for j, v := range dst {
			dst[j] = uint16(row[v&0xFF])
		}
	}
}

// AddMulCoeff implements Field.
func (GF256) AddMulCoeff(dst, src []uint16, c uint16) {
	checkCoeffLen(dst, src)
	switch c & 0xFF {
	case 0:
	case 1:
		for j, v := range src {
			dst[j] ^= v & 0xFF
		}
	default:
		row := &mul256[c&0xFF]
		for j, v := range src {
			dst[j] ^= uint16(row[v&0xFF])
		}
	}
}
