package gf

import "math/rand"

// GF2 is the two-element field {0,1}. Addition and multiplication are XOR
// and AND. It exists mainly for the field-size ablation (experiment E12):
// coding over GF(2) is cheap but a random combination fails to be
// innovative with probability up to 1/2, which the larger fields fix.
type GF2 struct{}

// F2 is the shared GF(2) instance.
var F2 = GF2{}

// Name implements Field.
func (GF2) Name() string { return "GF(2)" }

// Bits implements Field.
func (GF2) Bits() int { return 1 }

// Order implements Field.
func (GF2) Order() int { return 2 }

// SymbolSize implements Field. GF(2) symbols are packed eight to a byte,
// so the bulk kernels treat whole bytes as vectors of eight symbols.
func (GF2) SymbolSize() int { return 1 }

// Add implements Field.
func (GF2) Add(a, b uint16) uint16 { return (a ^ b) & 1 }

// Mul implements Field.
func (GF2) Mul(a, b uint16) uint16 { return a & b & 1 }

// Inv implements Field.
func (GF2) Inv(a uint16) uint16 {
	if a&1 == 0 {
		panic("gf: inverse of zero in GF(2)")
	}
	return 1
}

// Div implements Field.
func (g GF2) Div(a, b uint16) uint16 { return g.Mul(a, g.Inv(b)) }

// Rand implements Field.
func (GF2) Rand(r *rand.Rand) uint16 { return uint16(r.Intn(2)) }

// RandNonZero implements Field.
func (GF2) RandNonZero(*rand.Rand) uint16 { return 1 }

// AddSlice implements Field.
func (GF2) AddSlice(dst, src []byte) {
	checkLen(dst, src, 1)
	xorSlice(dst, src)
}

// MulSlice implements Field.
func (GF2) MulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 1)
	if c&1 == 0 {
		clear(dst)
		return
	}
	copy(dst, src)
}

// AddMulSlice implements Field.
func (GF2) AddMulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 1)
	if c&1 == 0 {
		return
	}
	xorSlice(dst, src)
}

// MulCoeff implements Field.
func (GF2) MulCoeff(dst []uint16, c uint16) {
	if c&1 == 0 {
		clear(dst)
		return
	}
	for j, v := range dst {
		dst[j] = v & 1
	}
}

// AddMulCoeff implements Field.
func (GF2) AddMulCoeff(dst, src []uint16, c uint16) {
	checkCoeffLen(dst, src)
	if c&1 == 0 {
		return
	}
	for j, v := range src {
		dst[j] ^= v & 1
	}
}
