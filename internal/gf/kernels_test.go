package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The kernel suite checks the dispatched bulk kernels against per-element
// scalar arithmetic — the ground truth — for every coefficient (GF(2) and
// GF(2^8) exhaustively, GF(2^16) sampled plus edge values), lengths 0–64
// plus misaligned tails around the 8- and 32-byte kernel strides, and
// exact aliasing (dst == src). `go test -tags purego` runs the same suite
// over the scalar reference dispatch, so both paths stay verified.

// kernelLens are the payload lengths under test: everything in [0,64]
// plus tails around the vector strides. GF(2^16) tests round up to even.
func kernelLens() []int {
	lens := make([]int, 0, 80)
	for n := 0; n <= 64; n++ {
		lens = append(lens, n)
	}
	for _, n := range []int{65, 95, 96, 97, 127, 128, 129, 255, 256, 257, 1023, 1024, 4096} {
		lens = append(lens, n)
	}
	return lens
}

// evenLen rounds n to the field's symbol multiple.
func evenLen(f Field, n int) int { return n - n%f.SymbolSize() }

// coeffsFor returns the scalar sweep for a field: exhaustive when small,
// sampled plus structural edge cases for GF(2^16).
func coeffsFor(f Field, r *rand.Rand) []uint16 {
	if f.Order() <= 256 {
		cs := make([]uint16, f.Order())
		for i := range cs {
			cs[i] = uint16(i)
		}
		return cs
	}
	cs := []uint16{0, 1, 2, 3, 255, 256, 257, 32768, 65535}
	for i := 0; i < 24; i++ {
		cs = append(cs, f.Rand(r))
	}
	return cs
}

// scalarMulSym computes the symbol-wise product of buf by c using only
// scalar Field ops, as the reference result.
func scalarMulSym(f Field, buf []byte, c uint16) []byte {
	out := make([]byte, len(buf))
	if f.SymbolSize() == 1 {
		for i, s := range buf {
			out[i] = byte(f.Mul(c, uint16(s)))
		}
		return out
	}
	for i := 0; i+1 < len(buf); i += 2 {
		s := uint16(buf[i]) | uint16(buf[i+1])<<8
		p := f.Mul(c, s)
		out[i] = byte(p)
		out[i+1] = byte(p >> 8)
	}
	return out
}

// randBytes fills a buffer with random bytes, with occasional zero
// symbols so the GF(2^16) zero-skip branch is exercised.
func randBytes(f Field, n int, r *rand.Rand) []byte {
	buf := make([]byte, n)
	r.Read(buf)
	if f.SymbolSize() == 2 {
		for i := 0; i+1 < n; i += 2 {
			if r.Intn(8) == 0 {
				buf[i], buf[i+1] = 0, 0
			}
		}
	} else {
		for i := range buf {
			if r.Intn(8) == 0 {
				buf[i] = 0
			}
		}
	}
	if f.Bits() == 1 {
		for i := range buf {
			buf[i] &= 1 // GF(2) symbols are 0/1 per byte at the API level
		}
	}
	return buf
}

func TestKernelMatchesScalar(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(42))
			coeffs := coeffsFor(f, r)
			for _, n := range kernelLens() {
				n = evenLen(f, n)
				src := randBytes(f, n, r)
				base := randBytes(f, n, r)
				for _, c := range coeffs {
					prod := scalarMulSym(f, src, c)

					// MulSlice == scalar product.
					dst := append([]byte(nil), base...)
					f.MulSlice(dst, src, c)
					if !bytes.Equal(dst, prod) {
						t.Fatalf("MulSlice(c=%d, n=%d) diverges from scalar Mul", c, n)
					}

					// AddMulSlice == dst ^ scalar product.
					dst = append([]byte(nil), base...)
					f.AddMulSlice(dst, src, c)
					for i := range dst {
						if dst[i] != base[i]^prod[i] {
							t.Fatalf("AddMulSlice(c=%d, n=%d)[%d] = %#x, want %#x", c, n, i, dst[i], base[i]^prod[i])
						}
					}

					// AddSlice == XOR.
					dst = append([]byte(nil), base...)
					f.AddSlice(dst, src)
					for i := range dst {
						if dst[i] != base[i]^src[i] {
							t.Fatalf("AddSlice(n=%d)[%d] = %#x, want %#x", n, i, dst[i], base[i]^src[i])
						}
					}
				}
			}
		})
	}
}

func TestKernelExactAliasing(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(7))
			coeffs := coeffsFor(f, r)
			for _, n := range kernelLens() {
				n = evenLen(f, n)
				orig := randBytes(f, n, r)
				for _, c := range coeffs {
					prod := scalarMulSym(f, orig, c)

					// dst == src: MulSlice scales in place.
					buf := append([]byte(nil), orig...)
					f.MulSlice(buf, buf, c)
					if !bytes.Equal(buf, prod) {
						t.Fatalf("aliased MulSlice(c=%d, n=%d) diverges", c, n)
					}

					// dst == src: AddMulSlice computes (1+c)·x in place.
					buf = append([]byte(nil), orig...)
					f.AddMulSlice(buf, buf, c)
					for i := range buf {
						if buf[i] != orig[i]^prod[i] {
							t.Fatalf("aliased AddMulSlice(c=%d, n=%d)[%d] wrong", c, n, i)
						}
					}

					// dst == src: AddSlice zeroes (x+x = 0).
					buf = append([]byte(nil), orig...)
					f.AddSlice(buf, buf)
					for i := range buf {
						if buf[i] != 0 {
							t.Fatalf("aliased AddSlice(n=%d)[%d] = %#x, want 0", n, i, buf[i])
						}
					}
				}
			}
		})
	}
}

func TestCoeffKernelsMatchScalar(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(11))
			coeffs := coeffsFor(f, r)
			for _, n := range []int{0, 1, 2, 3, 7, 16, 33, 128, 255} {
				src := make([]uint16, n)
				base := make([]uint16, n)
				for j := range src {
					src[j] = f.Rand(r)
					base[j] = f.Rand(r)
				}
				for _, c := range coeffs {
					dst := append([]uint16(nil), base...)
					f.AddMulCoeff(dst, src, c)
					for j := range dst {
						want := f.Add(base[j], f.Mul(c, src[j]))
						if dst[j] != want {
							t.Fatalf("AddMulCoeff(c=%d, n=%d)[%d] = %d, want %d", c, n, j, dst[j], want)
						}
					}

					dst = append([]uint16(nil), base...)
					f.MulCoeff(dst, c)
					for j := range dst {
						if want := f.Mul(c, base[j]); dst[j] != want {
							t.Fatalf("MulCoeff(c=%d, n=%d)[%d] = %d, want %d", c, n, j, dst[j], want)
						}
					}

					// Exact aliasing: dst==src computes (1+c)·x.
					dst = append([]uint16(nil), base...)
					f.AddMulCoeff(dst, dst, c)
					for j := range dst {
						want := f.Add(base[j], f.Mul(c, base[j]))
						if dst[j] != want {
							t.Fatalf("aliased AddMulCoeff(c=%d, n=%d)[%d] wrong", c, n, j)
						}
					}
				}
			}
		})
	}
}

// TestRefKernelsMatchDispatch pins the exported reference entry points to
// the dispatched kernels — under the default build this is a genuine
// differential test of asm/word kernels against the seed scalar loops.
func TestRefKernelsMatchDispatch(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	for _, f := range []Field{F256, F65536} {
		for _, n := range kernelLens() {
			n = evenLen(f, n)
			src := randBytes(f, n, r)
			base := randBytes(f, n, r)
			for _, c := range coeffsFor(f, r) {
				got := append([]byte(nil), base...)
				want := append([]byte(nil), base...)
				f.AddMulSlice(got, src, c)
				RefAddMulSlice(f, want, src, c)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s AddMulSlice(c=%d, n=%d) != reference", f.Name(), c, n)
				}
				got = append([]byte(nil), base...)
				want = append([]byte(nil), base...)
				f.MulSlice(got, src, c)
				RefMulSlice(f, want, src, c)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s MulSlice(c=%d, n=%d) != reference", f.Name(), c, n)
				}
				got = append([]byte(nil), base...)
				want = append([]byte(nil), base...)
				f.AddSlice(got, src)
				RefAddSlice(f, want, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s AddSlice(n=%d) != reference", f.Name(), n)
				}
			}
		}
	}
}

func FuzzAddMulSlice256(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint16(0x57))
	f.Fuzz(func(t *testing.T, dst, src []byte, c uint16) {
		n := len(dst)
		if len(src) < n {
			n = len(src)
		}
		dst, src = dst[:n], src[:n]
		want := append([]byte(nil), dst...)
		RefAddMulSlice(F256, want, src, c)
		got := append([]byte(nil), dst...)
		F256.AddMulSlice(got, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("AddMulSlice(c=%d, n=%d) != reference", c, n)
		}
	})
}

func FuzzAddMulSlice65536(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1}, uint16(0x1234))
	f.Fuzz(func(t *testing.T, dst, src []byte, c uint16) {
		n := len(dst)
		if len(src) < n {
			n = len(src)
		}
		n &^= 1
		dst, src = dst[:n], src[:n]
		want := append([]byte(nil), dst...)
		RefAddMulSlice(F65536, want, src, c)
		got := append([]byte(nil), dst...)
		F65536.AddMulSlice(got, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("AddMulSlice(c=%d, n=%d) != reference", c, n)
		}
	})
}

// ---- Kernel benchmarks ----
//
// BenchmarkAddMulSlice256 is the acceptance benchmark for the fast path;
// the *Ref* variants measure the seed scalar loops for the speedup ratio
// recorded in BENCH_rlnc.json by cmd/ncast-perf.

func benchSlices(n int) (dst, src []byte) {
	dst = make([]byte, n)
	src = make([]byte, n)
	rand.New(rand.NewSource(1)).Read(src)
	return dst, src
}

// BenchmarkAddMulSlice256 (the acceptance benchmark) lives in gf_test.go
// from the seed; the Ref variants here measure the same shapes through the
// scalar reference path for the speedup ratio.

func BenchmarkAddMulSlice256Sizes(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dst, src := benchSlices(n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				F256.AddMulSlice(dst, src, 0x57)
			}
		})
	}
}

func BenchmarkAddMulSlice256Ref(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dst, src := benchSlices(n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				RefAddMulSlice(F256, dst, src, 0x57)
			}
		})
	}
}

func BenchmarkMulSlice256(b *testing.B) {
	dst, src := benchSlices(1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		F256.MulSlice(dst, src, 0x57)
	}
}

func BenchmarkAddSlice(b *testing.B) {
	dst, src := benchSlices(1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		F256.AddSlice(dst, src)
	}
}

func BenchmarkAddSliceRef(b *testing.B) {
	dst, src := benchSlices(1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		RefAddSlice(F256, dst, src)
	}
}

func BenchmarkAddMulSlice65536Ref(b *testing.B) {
	dst, src := benchSlices(1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		RefAddMulSlice(F65536, dst, src, 0x1234)
	}
}

func BenchmarkAddMulCoeff256(b *testing.B) {
	dst := make([]uint16, 128)
	src := make([]uint16, 128)
	r := rand.New(rand.NewSource(1))
	for i := range src {
		src[i] = F256.Rand(r)
	}
	for i := 0; i < b.N; i++ {
		F256.AddMulCoeff(dst, src, 0x57)
	}
}

// TestTab65536CacheStable pins the cross-call amortization contract of the
// GF(2^16) nibble-table cache: a second request for the same coefficient
// returns the same (immutable) table, and every cached table matches a
// fresh build.
func TestTab65536CacheStable(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, c := range coeffsFor(F65536, r) {
		if c == 0 {
			continue
		}
		first := tab65536For(c)
		if again := tab65536For(c); again != first {
			t.Fatalf("c=%#x: second lookup returned a different table pointer", c)
		}
		var want [128]byte
		buildNibTab65536(c, &want)
		if *first != want {
			t.Fatalf("c=%#x: cached table differs from fresh build", c)
		}
	}
}
