//go:build amd64 && !purego

#include "textflag.h"

// func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0Asm() (eax, edx uint32)
TEXT ·xgetbv0Asm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func xorSliceAVX2(dst, src *byte, n int)
// n is a positive multiple of 32.
TEXT ·xorSliceAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

xorloop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     xorloop
	VZEROUPPER
	RET

// func mulSlice256AVX2(dst, src *byte, n int, tab *[32]byte)
// dst[i] = tab-lookup product of src[i]; n is a positive multiple of 32.
// tab holds the 16 low-nibble products followed by the 16 high-nibble
// products for the scalar (see nib256).
TEXT ·mulSlice256AVX2(SB), NOSPLIT, $0-32
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           tab+24(FP), DX
	VBROADCASTI128 (DX), Y0           // low-nibble product table
	VBROADCASTI128 16(DX), Y1         // high-nibble product table
	MOVQ           $15, AX
	MOVQ           AX, X2
	VPBROADCASTB   X2, Y2             // 0x0f byte mask

mulloop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3                // low nibbles
	VPAND   Y2, Y4, Y4                // high nibbles
	VPSHUFB Y3, Y0, Y5                // products of low nibbles
	VPSHUFB Y4, Y1, Y6                // products of high nibbles
	VPXOR   Y5, Y6, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mulloop
	VZEROUPPER
	RET

// func addMulSlice256AVX2(dst, src *byte, n int, tab *[32]byte)
// dst[i] ^= product of src[i]; n is a positive multiple of 32.
TEXT ·addMulSlice256AVX2(SB), NOSPLIT, $0-32
	MOVQ           dst+0(FP), DI
	MOVQ           src+8(FP), SI
	MOVQ           n+16(FP), CX
	MOVQ           tab+24(FP), DX
	VBROADCASTI128 (DX), Y0
	VBROADCASTI128 16(DX), Y1
	MOVQ           $15, AX
	MOVQ           AX, X2
	VPBROADCASTB   X2, Y2

addmulloop:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y5, Y6, Y5
	VPXOR   (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     addmulloop
	VZEROUPPER
	RET

// GF(2^16) vector multiply. Symbols are 16-bit little-endian, so a loaded
// vector interleaves low bytes (even lanes, nibbles n0/n1) and high bytes
// (odd lanes, nibbles n2/n3) of 16 symbols. The product's low byte is
// T0lo[n0]^T1lo[n1]^T2lo[n2]^T3lo[n3] and the high byte the same over the
// *hi tables (see buildNibTab65536), so each nibble contributes via one
// PSHUFB whose control selects the nibble in the target lanes and carries
// 0xff (bit 7 set => PSHUFB emits zero) in the other lanes.
//
// Register plan, shared by both loops below:
//   Y0..Y7  T0lo T0hi T1lo T1hi T2lo T2hi T3lo T3hi (16 bytes each, splat)
//   Y8      0x0f byte mask
//   Y9      0xff in odd lanes  (even-lane controls OR this in)
//   Y10     0xff in even lanes (odd-lane controls OR this in)
//   Y11-Y15 input / low nibbles / high nibbles / control scratch / acc

#define GF65536_PROLOGUE \
	MOVQ           dst+0(FP), DI  \
	MOVQ           src+8(FP), SI  \
	MOVQ           n+16(FP), CX   \
	MOVQ           tab+24(FP), DX \
	VBROADCASTI128 (DX), Y0       \
	VBROADCASTI128 16(DX), Y1     \
	VBROADCASTI128 32(DX), Y2     \
	VBROADCASTI128 48(DX), Y3     \
	VBROADCASTI128 64(DX), Y4     \
	VBROADCASTI128 80(DX), Y5     \
	VBROADCASTI128 96(DX), Y6     \
	VBROADCASTI128 112(DX), Y7    \
	MOVQ           $15, AX        \
	MOVQ           AX, X8         \
	VPBROADCASTB   X8, Y8         \
	VPCMPEQB       Y9, Y9, Y9     \
	VPSRLW         $8, Y9, Y10    \
	VPSLLW         $8, Y9, Y9

// One 32-byte step: load, split nibbles (low nibbles Y12: n0 in even
// lanes / n2 in odd; high nibbles Y13: n1 even / n3 odd), then accumulate
// the eight table contributions into Y15 in the order
// T0lo[n0] T0hi[n0] T2lo[n2] T2hi[n2] T1lo[n1] T1hi[n1] T3lo[n3] T3hi[n3],
// the *lo shuffles landing in even lanes and the *hi shuffles in odd
// lanes. Word shifts by 8 move a nibble to the opposite lane of its
// symbol; word shifts never leak bits across symbols.
#define GF65536_STEP \
	VMOVDQU (SI), Y11     \
	VPAND   Y8, Y11, Y12  \
	VPSRLW  $4, Y11, Y13  \
	VPAND   Y8, Y13, Y13  \
	VPOR    Y9, Y12, Y14  \
	VPSHUFB Y14, Y0, Y15  \
	VPSLLW  $8, Y12, Y14  \
	VPOR    Y10, Y14, Y14 \
	VPSHUFB Y14, Y1, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPSRLW  $8, Y12, Y14  \
	VPOR    Y9, Y14, Y14  \
	VPSHUFB Y14, Y4, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPOR    Y10, Y12, Y14 \
	VPSHUFB Y14, Y5, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPOR    Y9, Y13, Y14  \
	VPSHUFB Y14, Y2, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPSLLW  $8, Y13, Y14  \
	VPOR    Y10, Y14, Y14 \
	VPSHUFB Y14, Y3, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPSRLW  $8, Y13, Y14  \
	VPOR    Y9, Y14, Y14  \
	VPSHUFB Y14, Y6, Y14  \
	VPXOR   Y14, Y15, Y15 \
	VPOR    Y10, Y13, Y14 \
	VPSHUFB Y14, Y7, Y14  \
	VPXOR   Y14, Y15, Y15

// func mulSlice65536AVX2(dst, src *byte, n int, tab *[128]byte)
// n is a positive multiple of 32 (and of the 2-byte symbol size).
TEXT ·mulSlice65536AVX2(SB), NOSPLIT, $0-32
	GF65536_PROLOGUE

mul65536loop:
	GF65536_STEP
	VMOVDQU Y15, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mul65536loop
	VZEROUPPER
	RET

// func addMulSlice65536AVX2(dst, src *byte, n int, tab *[128]byte)
// dst ^= product; n is a positive multiple of 32.
TEXT ·addMulSlice65536AVX2(SB), NOSPLIT, $0-32
	GF65536_PROLOGUE

addmul65536loop:
	GF65536_STEP
	VPXOR   (DI), Y15, Y15
	VMOVDQU Y15, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     addmul65536loop
	VZEROUPPER
	RET
