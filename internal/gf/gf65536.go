package gf

import "math/rand"

// poly65536 is the primitive polynomial x^16 + x^12 + x^3 + x + 1
// generating GF(2^16) with alpha = 2 as a primitive element.
const poly65536 = 0x1100B

// GF65536 is the 65536-element field GF(2^16). Multiplication uses log/exp
// tables (a full product table would be 8 GiB). Payload symbols are 16-bit
// little-endian, so bulk kernels require even-length slices.
type GF65536 struct{}

// F65536 is the shared GF(2^16) instance.
var F65536 = GF65536{}

var (
	exp65536 [131072]uint16 // doubled exp table, avoids mod 65535 in Mul
	log65536 [65536]uint32
	_        = buildTables65536()
)

func buildTables65536() struct{} {
	x := 1
	for i := 0; i < 65535; i++ {
		exp65536[i] = uint16(x)
		log65536[x] = uint32(i)
		x <<= 1
		if x&0x10000 != 0 {
			x ^= poly65536
		}
	}
	if x != 1 {
		panic("gf: 0x1100B did not generate GF(2^16)")
	}
	for i := 65535; i < 131072; i++ {
		exp65536[i] = exp65536[i-65535]
	}
	return struct{}{}
}

// Name implements Field.
func (GF65536) Name() string { return "GF(65536)" }

// Bits implements Field.
func (GF65536) Bits() int { return 16 }

// Order implements Field.
func (GF65536) Order() int { return 65536 }

// SymbolSize implements Field.
func (GF65536) SymbolSize() int { return 2 }

// Add implements Field.
func (GF65536) Add(a, b uint16) uint16 { return a ^ b }

// Mul implements Field.
func (GF65536) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return exp65536[log65536[a]+log65536[b]]
}

// Inv implements Field.
func (GF65536) Inv(a uint16) uint16 {
	if a == 0 {
		panic("gf: inverse of zero in GF(65536)")
	}
	return exp65536[65535-log65536[a]]
}

// Div implements Field.
func (g GF65536) Div(a, b uint16) uint16 { return g.Mul(a, g.Inv(b)) }

// Rand implements Field.
func (GF65536) Rand(r *rand.Rand) uint16 { return uint16(r.Intn(65536)) }

// RandNonZero implements Field.
func (GF65536) RandNonZero(r *rand.Rand) uint16 { return uint16(1 + r.Intn(65535)) }

// AddSlice implements Field.
func (GF65536) AddSlice(dst, src []byte) {
	checkLen(dst, src, 2)
	xorSlice(dst, src)
}

// MulSlice implements Field.
func (GF65536) MulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 2)
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulSlice65536(dst, src, c)
	}
}

// AddMulSlice implements Field.
func (GF65536) AddMulSlice(dst, src []byte, c uint16) {
	checkLen(dst, src, 2)
	switch c {
	case 0:
	case 1:
		xorSlice(dst, src)
	default:
		addMulSlice65536(dst, src, c)
	}
}

// MulCoeff implements Field.
func (g GF65536) MulCoeff(dst []uint16, c uint16) {
	switch c {
	case 0:
		clear(dst)
	case 1:
	default:
		lc := log65536[c]
		for j, v := range dst {
			if v != 0 {
				dst[j] = exp65536[lc+log65536[v]]
			}
		}
	}
}

// AddMulCoeff implements Field.
func (g GF65536) AddMulCoeff(dst, src []uint16, c uint16) {
	checkCoeffLen(dst, src)
	switch c {
	case 0:
	case 1:
		for j, v := range src {
			dst[j] ^= v
		}
	default:
		lc := log65536[c]
		for j, v := range src {
			if v != 0 {
				dst[j] ^= exp65536[lc+log65536[v]]
			}
		}
	}
}
