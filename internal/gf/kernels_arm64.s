//go:build arm64 && !purego

#include "textflag.h"

// NEON kernels. Structure mirrors kernels_amd64.s with 16-byte vectors:
// the GF(2^8) multiply is the classic low/high-nibble product-table
// lookup (TBL against a 16-byte table per nibble), and the GF(2^16)
// multiply accumulates eight byte-plane table contributions per vector
// (see buildNibTab65536 for the table layout). TBL yields zero for any
// index >= 16, so lanes that must not contribute are masked by forcing
// their control byte to 0xFF — the NEON equivalent of PSHUFB's bit-7
// convention.

// nibMask selects the low nibble of every byte.
DATA nibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// oddMask carries 0xFF in the odd (high, little-endian) byte of every
// 16-bit lane; evenMask in the even (low) byte. ORing one into a TBL
// control invalidates that half of every symbol.
DATA oddMask<>+0x00(SB)/8, $0xff00ff00ff00ff00
DATA oddMask<>+0x08(SB)/8, $0xff00ff00ff00ff00
GLOBL oddMask<>(SB), RODATA|NOPTR, $16

DATA evenMask<>+0x00(SB)/8, $0x00ff00ff00ff00ff
DATA evenMask<>+0x08(SB)/8, $0x00ff00ff00ff00ff
GLOBL evenMask<>(SB), RODATA|NOPTR, $16

// func xorSliceNEON(dst, src *byte, n int)
// n is a positive multiple of 16.
TEXT ·xorSliceNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

xorloop:
	VLD1   (R0), [V0.B16]
	VLD1.P 16(R1), [V1.B16]
	VEOR   V1.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    xorloop
	RET

// func mulSlice256NEON(dst, src *byte, n int, tab *[32]byte)
// dst[i] = tab-lookup product of src[i]; n is a positive multiple of 16.
// tab holds the 16 low-nibble products followed by the 16 high-nibble
// products for the scalar (see nib256).
TEXT ·mulSlice256NEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD tab+24(FP), R3
	VLD1 (R3), [V16.B16, V17.B16]
	MOVD $nibMask<>(SB), R4
	VLD1 (R4), [V18.B16]

mulloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16
	VAND   V18.B16, V0.B16, V0.B16
	VTBL   V0.B16, [V16.B16], V2.B16
	VTBL   V1.B16, [V17.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    mulloop
	RET

// func addMulSlice256NEON(dst, src *byte, n int, tab *[32]byte)
// dst[i] ^= product of src[i]; n is a positive multiple of 16.
TEXT ·addMulSlice256NEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD tab+24(FP), R3
	VLD1 (R3), [V16.B16, V17.B16]
	MOVD $nibMask<>(SB), R4
	VLD1 (R4), [V18.B16]

addmulloop:
	VLD1.P 16(R1), [V0.B16]
	VUSHR  $4, V0.B16, V1.B16
	VAND   V18.B16, V0.B16, V0.B16
	VTBL   V0.B16, [V16.B16], V2.B16
	VTBL   V1.B16, [V17.B16], V3.B16
	VEOR   V3.B16, V2.B16, V2.B16
	VLD1   (R0), [V4.B16]
	VEOR   V4.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    addmulloop
	RET

// GF(2^16) vector multiply over 16-bit little-endian symbols. A loaded
// vector interleaves low bytes (even lanes, nibbles n0/n1) and high
// bytes (odd lanes, nibbles n2/n3) of 8 symbols. The product's low byte
// is T0lo[n0]^T1lo[n1]^T2lo[n2]^T3lo[n3] and the high byte the same
// over the *hi tables (buildNibTab65536 layout: T0lo T0hi T1lo T1hi
// T2lo T2hi T3lo T3hi, 16 bytes each, in V16..V23). Word shifts by 8
// move a nibble to the opposite lane of its symbol and never leak bits
// across symbols; oddMask/evenMask force the non-target lanes of every
// TBL control out of range.
//
// Register plan for both loops below:
//   V16..V23 the eight product tables
//   V24      low-nibble mask, V25 oddMask, V26 evenMask
//   V0 input, V1 low nibbles, V2 high nibbles, V3 control scratch,
//   V4 lookup scratch, V7 accumulator, V5 dst (addmul only)

#define GF65536_PROLOGUE \
	MOVD   dst+0(FP), R0             \
	MOVD   src+8(FP), R1             \
	MOVD   n+16(FP), R2              \
	MOVD   tab+24(FP), R3            \
	VLD1.P 64(R3), [V16.B16, V17.B16, V18.B16, V19.B16] \
	VLD1   (R3), [V20.B16, V21.B16, V22.B16, V23.B16]   \
	MOVD   $nibMask<>(SB), R4        \
	VLD1   (R4), [V24.B16]           \
	MOVD   $oddMask<>(SB), R4        \
	VLD1   (R4), [V25.B16]           \
	MOVD   $evenMask<>(SB), R4       \
	VLD1   (R4), [V26.B16]

// One 16-byte step: split nibbles (V1: n0 even / n2 odd; V2: n1 even /
// n3 odd), then accumulate the eight table contributions into V7 in the
// order T0lo[n0] T0hi[n0] T2lo[n2] T2hi[n2] T1lo[n1] T1hi[n1] T3lo[n3]
// T3hi[n3] — *lo lookups landing in even lanes, *hi in odd lanes.
#define GF65536_STEP \
	VLD1.P 16(R1), [V0.B16]          \
	VAND   V24.B16, V0.B16, V1.B16   \
	VUSHR  $4, V0.B16, V2.B16        \
	VAND   V24.B16, V2.B16, V2.B16   \
	VORR   V25.B16, V1.B16, V3.B16   \
	VTBL   V3.B16, [V16.B16], V7.B16 \
	VSHL   $8, V1.H8, V3.H8          \
	VORR   V26.B16, V3.B16, V3.B16   \
	VTBL   V3.B16, [V17.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VUSHR  $8, V1.H8, V3.H8          \
	VORR   V25.B16, V3.B16, V3.B16   \
	VTBL   V3.B16, [V20.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VORR   V26.B16, V1.B16, V3.B16   \
	VTBL   V3.B16, [V21.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VORR   V25.B16, V2.B16, V3.B16   \
	VTBL   V3.B16, [V18.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VSHL   $8, V2.H8, V3.H8          \
	VORR   V26.B16, V3.B16, V3.B16   \
	VTBL   V3.B16, [V19.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VUSHR  $8, V2.H8, V3.H8          \
	VORR   V25.B16, V3.B16, V3.B16   \
	VTBL   V3.B16, [V22.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16    \
	VORR   V26.B16, V2.B16, V3.B16   \
	VTBL   V3.B16, [V23.B16], V4.B16 \
	VEOR   V4.B16, V7.B16, V7.B16

// func mulSlice65536NEON(dst, src *byte, n int, tab *[128]byte)
// n is a positive multiple of 16 (and of the 2-byte symbol size).
TEXT ·mulSlice65536NEON(SB), NOSPLIT, $0-32
	GF65536_PROLOGUE

mul65536loop:
	GF65536_STEP
	VST1.P [V7.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    mul65536loop
	RET

// func addMulSlice65536NEON(dst, src *byte, n int, tab *[128]byte)
// dst ^= product; n is a positive multiple of 16.
TEXT ·addMulSlice65536NEON(SB), NOSPLIT, $0-32
	GF65536_PROLOGUE

addmul65536loop:
	GF65536_STEP
	VLD1   (R0), [V5.B16]
	VEOR   V5.B16, V7.B16, V7.B16
	VST1.P [V7.B16], 16(R0)
	SUBS   $16, R2, R2
	BNE    addmul65536loop
	RET
