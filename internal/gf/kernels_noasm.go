//go:build !amd64 && !arm64 && !purego

package gf

// initPlatformKernels is a no-op on platforms without assembly kernels;
// the generic word-at-a-time dispatch from dispatch.go stands.
func initPlatformKernels() {}
