package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fields lists every implementation under test, once, so each table-driven
// test below runs over all three.
var fields = []Field{F2, F256, F65536}

func modMask(f Field) uint16 {
	return uint16(f.Order() - 1)
}

func TestFieldMetadata(t *testing.T) {
	t.Parallel()
	tests := []struct {
		f      Field
		name   string
		bits   int
		order  int
		symbol int
	}{
		{F2, "GF(2)", 1, 2, 1},
		{F256, "GF(256)", 8, 256, 1},
		{F65536, "GF(65536)", 16, 65536, 2},
	}
	for _, tt := range tests {
		if got := tt.f.Name(); got != tt.name {
			t.Errorf("Name() = %q, want %q", got, tt.name)
		}
		if got := tt.f.Bits(); got != tt.bits {
			t.Errorf("%s: Bits() = %d, want %d", tt.name, got, tt.bits)
		}
		if got := tt.f.Order(); got != tt.order {
			t.Errorf("%s: Order() = %d, want %d", tt.name, got, tt.order)
		}
		if got := tt.f.SymbolSize(); got != tt.symbol {
			t.Errorf("%s: SymbolSize() = %d, want %d", tt.name, got, tt.symbol)
		}
	}
}

func TestAddIsXorAndSelfInverse(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			prop := func(a, b uint16) bool {
				a &= modMask(f)
				b &= modMask(f)
				s := f.Add(a, b)
				return f.Add(s, b) == a && f.Add(s, a) == b && f.Add(a, a) == 0
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			prop := func(a, b, c uint16) bool {
				a &= modMask(f)
				b &= modMask(f)
				c &= modMask(f)
				if f.Mul(a, b) != f.Mul(b, a) {
					return false
				}
				return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDistributivity(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			prop := func(a, b, c uint16) bool {
				a &= modMask(f)
				b &= modMask(f)
				c &= modMask(f)
				return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			prop := func(a uint16) bool {
				a &= modMask(f)
				return f.Mul(a, 1) == a && f.Mul(1, a) == a && f.Mul(a, 0) == 0 && f.Mul(0, a) == 0
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInverse(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			prop := func(a uint16) bool {
				a &= modMask(f)
				if a == 0 {
					return true
				}
				return f.Mul(a, f.Inv(a)) == 1 && f.Div(a, a) == 1
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInverseExhaustive256(t *testing.T) {
	t.Parallel()
	for a := uint16(1); a < 256; a++ {
		if got := F256.Mul(a, F256.Inv(a)); got != 1 {
			t.Fatalf("GF(256): %d * inv(%d) = %d, want 1", a, a, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			defer func() {
				if recover() == nil {
					t.Error("Inv(0) did not panic")
				}
			}()
			f.Inv(0)
		})
	}
}

func TestExp256IsPrimitive(t *testing.T) {
	t.Parallel()
	// alpha = 2 must generate all 255 nonzero elements before repeating.
	seen := make(map[uint16]bool, 255)
	for i := 0; i < 255; i++ {
		v := F256.Exp(i)
		if seen[v] {
			t.Fatalf("Exp(%d) = %d repeats an earlier value", i, v)
		}
		seen[v] = true
	}
	if len(seen) != 255 {
		t.Fatalf("alpha generated %d distinct elements, want 255", len(seen))
	}
}

func TestMulMatchesLogDefinition65536(t *testing.T) {
	t.Parallel()
	// Spot-check GF(2^16) multiplication against slow carry-less
	// polynomial multiplication mod the primitive polynomial.
	slowMul := func(a, b uint32) uint16 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			a <<= 1
			if a&0x10000 != 0 {
				a ^= poly65536
			}
			b >>= 1
		}
		return uint16(p)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := uint16(r.Intn(65536))
		b := uint16(r.Intn(65536))
		if got, want := F65536.Mul(a, b), slowMul(uint32(a), uint32(b)); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestMulMatchesSlow256(t *testing.T) {
	t.Parallel()
	slowMul := func(a, b uint32) uint16 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			a <<= 1
			if a&0x100 != 0 {
				a ^= poly256
			}
			b >>= 1
		}
		return uint16(p)
	}
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b++ {
			if got, want := F256.Mul(uint16(a), uint16(b)), slowMul(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func randPayload(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestBulkKernelsMatchScalarOps(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(42))
			const n = 64 // even, satisfies GF(2^16) symbol alignment
			for trial := 0; trial < 50; trial++ {
				src := randPayload(r, n)
				dst := randPayload(r, n)
				c := f.Rand(r)

				// AddMulSlice vs per-symbol reference.
				want := make([]byte, n)
				copy(want, dst)
				addMulRef(f, want, src, c)
				got := make([]byte, n)
				copy(got, dst)
				f.AddMulSlice(got, src, c)
				if string(got) != string(want) {
					t.Fatalf("AddMulSlice(c=%d) mismatch", c)
				}

				// MulSlice vs reference.
				want2 := make([]byte, n)
				mulRef(f, want2, src, c)
				got2 := make([]byte, n)
				f.MulSlice(got2, src, c)
				if string(got2) != string(want2) {
					t.Fatalf("MulSlice(c=%d) mismatch", c)
				}

				// AddSlice is XOR.
				got3 := make([]byte, n)
				copy(got3, dst)
				f.AddSlice(got3, src)
				for i := range got3 {
					if got3[i] != dst[i]^src[i] {
						t.Fatalf("AddSlice byte %d: got %d want %d", i, got3[i], dst[i]^src[i])
					}
				}
			}
		})
	}
}

// addMulRef is a slow per-symbol reference for AddMulSlice.
func addMulRef(f Field, dst, src []byte, c uint16) {
	switch f.SymbolSize() {
	case 1:
		if f.Bits() == 1 {
			// GF(2) treats each byte as 8 parallel symbols.
			if c&1 == 1 {
				for i := range dst {
					dst[i] ^= src[i]
				}
			}
			return
		}
		for i := range dst {
			dst[i] = byte(uint16(dst[i]) ^ f.Mul(uint16(src[i]), c))
		}
	case 2:
		for i := 0; i+1 < len(dst); i += 2 {
			s := uint16(src[i]) | uint16(src[i+1])<<8
			d := uint16(dst[i]) | uint16(dst[i+1])<<8
			d ^= f.Mul(s, c)
			dst[i] = byte(d)
			dst[i+1] = byte(d >> 8)
		}
	}
}

// mulRef is a slow per-symbol reference for MulSlice.
func mulRef(f Field, dst, src []byte, c uint16) {
	for i := range dst {
		dst[i] = 0
	}
	addMulRef(f, dst, src, c)
}

func TestMulSliceAliasing(t *testing.T) {
	t.Parallel()
	for _, f := range fields {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(7))
			src := randPayload(r, 32)
			c := f.RandNonZero(r)
			want := make([]byte, 32)
			f.MulSlice(want, src, c)
			got := make([]byte, 32)
			copy(got, src)
			f.MulSlice(got, got, c) // exact aliasing must be safe
			if string(got) != string(want) {
				t.Fatal("MulSlice with dst==src differs from non-aliased result")
			}
		})
	}
}

func TestBulkKernelLengthMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("AddSlice with mismatched lengths did not panic")
		}
	}()
	F256.AddSlice(make([]byte, 4), make([]byte, 5))
}

func TestOddLengthPanics65536(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("GF(65536) kernel with odd-length slice did not panic")
		}
	}()
	F65536.AddMulSlice(make([]byte, 3), make([]byte, 3), 2)
}

func TestRandNonZeroNeverZero(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(3))
	for _, f := range fields {
		for i := 0; i < 1000; i++ {
			if f.RandNonZero(r) == 0 {
				t.Fatalf("%s: RandNonZero returned 0", f.Name())
			}
		}
	}
}

func TestRandInRange(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(4))
	for _, f := range fields {
		for i := 0; i < 1000; i++ {
			if v := f.Rand(r); int(v) >= f.Order() {
				t.Fatalf("%s: Rand returned %d >= order %d", f.Name(), v, f.Order())
			}
		}
	}
}

func BenchmarkAddMulSlice256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := randPayload(r, 4096)
	dst := randPayload(r, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F256.AddMulSlice(dst, src, 0x53)
	}
}

func BenchmarkAddMulSlice65536(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := randPayload(r, 4096)
	dst := randPayload(r, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F65536.AddMulSlice(dst, src, 0x5353)
	}
}

func BenchmarkMulScalar256(b *testing.B) {
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc ^= F256.Mul(uint16(i)&0xFF, 0x53)
	}
	_ = acc
}
