package gf

import (
	"encoding/binary"
	"sync/atomic"
)

// This file holds the data-plane kernel dispatch and every pure-Go kernel
// implementation. The bulk slice operations on the three fields route
// through the package-level function variables below, which are selected
// once at package load:
//
//   - default ("purego" tag absent): dispatch.go upgrades the XOR and
//     GF(2^16) kernels to the word-at-a-time implementations here, and on
//     amd64 with AVX2 the GF(2^8) kernels to the assembly in
//     kernels_amd64.s (32 bytes per iteration via PSHUFB nibble tables).
//   - with -tags purego: no init runs; the variables keep their scalar
//     reference values and every kernel is plain bounds-checked Go.
//
// The reference kernels are compiled unconditionally so differential
// tests (and the perf harness's speedup baseline) can always reach them.

var (
	xorSlice         = refXORSlice
	mulSlice256      = refMulSlice256
	addMulSlice256   = refAddMulSlice256
	mulSlice65536    = refMulSlice65536
	addMulSlice65536 = refAddMulSlice65536
	accelName        = "purego"
)

// ---- Scalar reference kernels (the seed implementations) ----
//
// All multiply kernels assume c >= 2: the field methods peel off the c==0
// and c==1 cases (zero/copy/no-op) before dispatching.

func refXORSlice(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func refMulSlice256(dst, src []byte, c uint16) {
	row := &mul256[c&0xFF]
	for i := range dst {
		dst[i] = row[src[i]]
	}
}

func refAddMulSlice256(dst, src []byte, c uint16) {
	row := &mul256[c&0xFF]
	for i := range dst {
		dst[i] ^= row[src[i]]
	}
}

func refMulSlice65536(dst, src []byte, c uint16) {
	lc := log65536[c]
	for i := 0; i+1 < len(dst); i += 2 {
		s := binary.LittleEndian.Uint16(src[i:])
		var p uint16
		if s != 0 {
			p = exp65536[lc+log65536[s]]
		}
		binary.LittleEndian.PutUint16(dst[i:], p)
	}
}

func refAddMulSlice65536(dst, src []byte, c uint16) {
	lc := log65536[c]
	for i := 0; i+1 < len(dst); i += 2 {
		s := binary.LittleEndian.Uint16(src[i:])
		if s == 0 {
			continue
		}
		p := exp65536[lc+log65536[s]]
		binary.LittleEndian.PutUint16(dst[i:], binary.LittleEndian.Uint16(dst[i:])^p)
	}
}

// RefAddSlice, RefMulSlice, and RefAddMulSlice expose the scalar reference
// path for the given field regardless of build tags, for differential
// benchmarking (the perf harness reports the optimized/reference speedup).
// They handle the c==0/1 special cases exactly like the Field methods.
func RefAddSlice(f Field, dst, src []byte) {
	checkLen(dst, src, f.SymbolSize())
	refXORSlice(dst, src)
}

// RefMulSlice is the reference MulSlice; see RefAddSlice.
func RefMulSlice(f Field, dst, src []byte, c uint16) {
	checkLen(dst, src, f.SymbolSize())
	c &= uint16(f.Order() - 1)
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		if f.Bits() == 8 {
			refMulSlice256(dst, src, c)
		} else {
			refMulSlice65536(dst, src, c)
		}
	}
}

// RefAddMulSlice is the reference AddMulSlice; see RefAddSlice.
func RefAddMulSlice(f Field, dst, src []byte, c uint16) {
	checkLen(dst, src, f.SymbolSize())
	c &= uint16(f.Order() - 1)
	switch c {
	case 0:
	case 1:
		refXORSlice(dst, src)
	default:
		if f.Bits() == 8 {
			refAddMulSlice256(dst, src, c)
		} else {
			refAddMulSlice65536(dst, src, c)
		}
	}
}

// ---- Word-at-a-time generic kernels ----

// xorWords XORs eight bytes per iteration through uint64 loads; the
// encoding/binary calls compile to single MOVQs.
func xorWords(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// buildNibTab65536 fills the eight 16-entry byte-plane product tables the
// GF(2^16) vector kernel shuffles against: a product c*s decomposes over
// the four nibbles of s, so with fi(n) = c*(n << 4i) the low result byte
// is loPlane(f0(n0)^f1(n1)^f2(n2)^f3(n3)) and likewise for the high byte.
// Layout: [T0lo T0hi T1lo T1hi T2lo T2hi T3lo T3hi], 16 bytes each.
// Building costs 60 log/exp multiplies, so callers only use it for slices
// long enough to amortize (see the amd64 wrapper); index 0 stays zero.
func buildNibTab65536(c uint16, tab *[128]byte) {
	lc := log65536[c]
	for n := uint32(1); n < 16; n++ {
		f0 := exp65536[lc+log65536[n]]
		f1 := exp65536[lc+log65536[n<<4]]
		f2 := exp65536[lc+log65536[n<<8]]
		f3 := exp65536[lc+log65536[n<<12]]
		tab[n], tab[16+n] = byte(f0), byte(f0>>8)
		tab[32+n], tab[48+n] = byte(f1), byte(f1>>8)
		tab[64+n], tab[80+n] = byte(f2), byte(f2>>8)
		tab[96+n], tab[112+n] = byte(f3), byte(f3>>8)
	}
}

// tab65536Cache amortizes GF(2^16) nibble-table construction across calls:
// decode and recode workloads revisit the same 16-bit coefficients many
// times over a session, and each table costs 60 log/exp multiplies — more
// than the vector loop itself for KiB-scale rows. Entries are built on
// first use and published through an atomic pointer; tables are immutable
// after publication, so a racing double build wastes one 128-byte
// allocation at worst and readers can never observe a partial table.
// Fully populated the cache tops out at 8 MiB (65536 x 128 B), reached
// only by a workload that has already paid for 65536 distinct builds.
var tab65536Cache [1 << 16]atomic.Pointer[[128]byte]

// tab65536For returns the cached nibble table for coefficient c, building
// and publishing it on first use.
func tab65536For(c uint16) *[128]byte {
	if t := tab65536Cache[c].Load(); t != nil {
		return t
	}
	t := new([128]byte)
	buildNibTab65536(c, t)
	tab65536Cache[c].Store(t)
	return t
}
