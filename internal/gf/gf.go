// Package gf implements arithmetic over the finite fields GF(2), GF(2^8),
// and GF(2^16), the fields used by the network-coding data plane.
//
// The package exposes three concrete, stateless field implementations —
// F2, F256, and F65536 — behind the Field interface. Coefficients are
// represented uniformly as uint16 so that callers (the RLNC codec, the
// matrix package, and the Reed–Solomon coder) can be written once and run
// over any of the three fields. Payload data is operated on in bulk with
// slice kernels (AddMulSlice and friends), which is where virtually all of
// the cycles go during encoding, recoding, and decoding.
//
// GF(2^8) uses the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D); GF(2^16) uses x^16+x^12+x^3+x+1 (0x1100B). Both are generated
// by alpha = 2, which the table builders verify at initialization time.
package gf

import (
	"fmt"
	"math/rand"
)

// Field is the arithmetic abstraction shared by all coding components.
//
// Elements are carried in uint16 regardless of the concrete field; values
// must be < Order(). Implementations are stateless and safe for concurrent
// use.
type Field interface {
	// Name returns a short human-readable field name, e.g. "GF(256)".
	Name() string
	// Bits returns the number of bits per field element (1, 8, or 16).
	Bits() int
	// Order returns the number of elements in the field.
	Order() int
	// SymbolSize returns the payload symbol width in bytes (1 for GF(2)
	// and GF(2^8); 2 for GF(2^16)). Payload slices handed to the bulk
	// kernels must have a length divisible by SymbolSize.
	SymbolSize() int

	// Add returns a+b. In characteristic-2 fields addition is XOR and is
	// its own inverse, so Add also implements subtraction.
	Add(a, b uint16) uint16
	// Mul returns a*b.
	Mul(a, b uint16) uint16
	// Inv returns the multiplicative inverse of a. It panics if a == 0;
	// callers eliminate zero pivots before inverting.
	Inv(a uint16) uint16
	// Div returns a/b. It panics if b == 0.
	Div(a, b uint16) uint16

	// Rand returns a uniformly random field element (zero included).
	Rand(r *rand.Rand) uint16
	// RandNonZero returns a uniformly random nonzero field element.
	RandNonZero(r *rand.Rand) uint16

	// AddSlice sets dst[i] ^= src[i] for every byte. Addition is
	// byte-wise XOR in all three fields, independent of symbol size.
	AddSlice(dst, src []byte)
	// MulSlice sets dst[i] = c * src[i] symbol-wise. dst and src may
	// alias exactly (dst == src) but must not otherwise overlap.
	MulSlice(dst, src []byte, c uint16)
	// AddMulSlice sets dst[i] += c * src[i] symbol-wise.
	AddMulSlice(dst, src []byte, c uint16)

	// MulCoeff sets dst[j] = c * dst[j] over a coefficient vector of
	// field elements (one element per uint16, unlike the byte-packed
	// payload kernels).
	MulCoeff(dst []uint16, c uint16)
	// AddMulCoeff sets dst[j] += c * src[j] over coefficient vectors.
	// dst and src must have equal length and may alias exactly.
	AddMulCoeff(dst, src []uint16, c uint16)
}

// Accel names the bulk-kernel implementation selected at package load:
// "purego" (scalar reference, forced by the purego build tag), "generic"
// (word-at-a-time pure Go), or "avx2" (amd64 vector assembly).
func Accel() string { return accelName }

// Compile-time interface conformance checks.
var (
	_ Field = GF2{}
	_ Field = GF256{}
	_ Field = GF65536{}
)

// checkCoeffLen panics when a coefficient kernel is invoked with
// mismatched vectors.
func checkCoeffLen(dst, src []uint16) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: coeff length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
}

// checkLen panics when a bulk kernel is invoked with mismatched slices.
// Length mismatches are programming errors, never data errors.
func checkLen(dst, src []byte, symbol int) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: slice length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	if symbol > 1 && len(dst)%symbol != 0 {
		panic(fmt.Sprintf("gf: slice length %d not a multiple of symbol size %d", len(dst), symbol))
	}
}
