//go:build arm64 && !purego

package gf

// NEON kernels for arm64. AdvSIMD is architecturally baseline on arm64,
// so no runtime feature detection is needed: the platform hook installs
// the vector kernels unconditionally. The GF(2^8) multiply uses the same
// low/high-nibble product-table split as the AVX2 path, looked up 16
// lanes at a time with TBL (whose out-of-range-index-yields-zero rule
// replaces PSHUFB's bit-7 convention); GF(2^16) shares the 128-byte
// byte-plane tables (and their cross-call cache) with the amd64 kernels.

//go:noescape
func xorSliceNEON(dst, src *byte, n int)

//go:noescape
func mulSlice256NEON(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func addMulSlice256NEON(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func mulSlice65536NEON(dst, src *byte, n int, tab *[128]byte)

//go:noescape
func addMulSlice65536NEON(dst, src *byte, n int, tab *[128]byte)

func initPlatformKernels() {
	accelName = "neon"
	xorSlice = xorSliceNeonWrap
	mulSlice256 = mulSlice256NeonWrap
	addMulSlice256 = addMulSlice256NeonWrap
	mulSlice65536 = mulSlice65536NeonWrap
	addMulSlice65536 = addMulSlice65536NeonWrap
}

// The assembly routines process a positive multiple of 16 bytes; the
// wrappers peel the tail onto the scalar reference loops.

func xorSliceNeonWrap(dst, src []byte) {
	n := len(dst) &^ 15
	if n > 0 {
		xorSliceNEON(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

func mulSlice256NeonWrap(dst, src []byte, c uint16) {
	n := len(dst) &^ 15
	if n > 0 {
		mulSlice256NEON(&dst[0], &src[0], n, &nib256[c&0xFF])
	}
	row := &mul256[c&0xFF]
	for i := n; i < len(dst); i++ {
		dst[i] = row[src[i]]
	}
}

func addMulSlice256NeonWrap(dst, src []byte, c uint16) {
	n := len(dst) &^ 15
	if n > 0 {
		addMulSlice256NEON(&dst[0], &src[0], n, &nib256[c&0xFF])
	}
	row := &mul256[c&0xFF]
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

// vecCut65536 mirrors the amd64 cutover: below it the scalar log/exp
// loop wins over a cached-table vector call.
const vecCut65536 = 64

func mulSlice65536NeonWrap(dst, src []byte, c uint16) {
	if len(dst) < vecCut65536 {
		refMulSlice65536(dst, src, c)
		return
	}
	n := len(dst) &^ 15
	mulSlice65536NEON(&dst[0], &src[0], n, tab65536For(c))
	if n < len(dst) {
		refMulSlice65536(dst[n:], src[n:], c)
	}
}

func addMulSlice65536NeonWrap(dst, src []byte, c uint16) {
	if len(dst) < vecCut65536 {
		refAddMulSlice65536(dst, src, c)
		return
	}
	n := len(dst) &^ 15
	addMulSlice65536NEON(&dst[0], &src[0], n, tab65536For(c))
	if n < len(dst) {
		refAddMulSlice65536(dst[n:], src[n:], c)
	}
}
