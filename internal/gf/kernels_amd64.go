//go:build amd64 && !purego

package gf

// AVX2 kernels for the GF(2^8) hot path and bulk XOR. The multiply
// kernels use the classic PSHUFB low/high-nibble split (one 16-byte
// product table per nibble, looked up 32 lanes at a time), which is the
// technique klauspost/reedsolomon and ISA-L use; see nib256 in gf256.go
// for the table layout. Selected at package load iff the CPU and OS
// support AVX2; otherwise the generic dispatch stands.

//go:noescape
func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0Asm() (eax, edx uint32)

//go:noescape
func xorSliceAVX2(dst, src *byte, n int)

//go:noescape
func mulSlice256AVX2(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func addMulSlice256AVX2(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func mulSlice65536AVX2(dst, src *byte, n int, tab *[128]byte)

//go:noescape
func addMulSlice65536AVX2(dst, src *byte, n int, tab *[128]byte)

func initPlatformKernels() {
	if !cpuHasAVX2() {
		return
	}
	accelName = "avx2"
	xorSlice = xorSliceAsm
	mulSlice256 = mulSlice256Asm
	addMulSlice256 = addMulSlice256Asm
	mulSlice65536 = mulSlice65536Asm
	addMulSlice65536 = addMulSlice65536Asm
}

// cpuHasAVX2 checks CPU support (leaf 7 EBX bit 5) and that the OS saves
// the YMM state (OSXSAVE + XCR0 bits 1 and 2).
func cpuHasAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if xcr0, _ := xgetbv0Asm(); xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&(1<<5) != 0
}

// The assembly routines process a positive multiple of 32 bytes; the
// wrappers peel the tail onto the scalar reference loops.

func xorSliceAsm(dst, src []byte) {
	n := len(dst) &^ 31
	if n > 0 {
		xorSliceAVX2(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

func mulSlice256Asm(dst, src []byte, c uint16) {
	n := len(dst) &^ 31
	if n > 0 {
		mulSlice256AVX2(&dst[0], &src[0], n, &nib256[c&0xFF])
	}
	row := &mul256[c&0xFF]
	for i := n; i < len(dst); i++ {
		dst[i] = row[src[i]]
	}
}

func addMulSlice256Asm(dst, src []byte, c uint16) {
	n := len(dst) &^ 31
	if n > 0 {
		addMulSlice256AVX2(&dst[0], &src[0], n, &nib256[c&0xFF])
	}
	row := &mul256[c&0xFF]
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

// vecCut65536 is the slice length below which the GF(2^16) vector path
// (an amortized table-cache hit plus the loop prologue) still loses to
// the scalar log/exp loop. With tables cached across calls the first-use
// build cost no longer factors in, so the cutover sits at one vector
// iteration's worth of data.
const vecCut65536 = 64

func mulSlice65536Asm(dst, src []byte, c uint16) {
	if len(dst) < vecCut65536 {
		refMulSlice65536(dst, src, c)
		return
	}
	n := len(dst) &^ 31
	mulSlice65536AVX2(&dst[0], &src[0], n, tab65536For(c))
	if n < len(dst) {
		refMulSlice65536(dst[n:], src[n:], c)
	}
}

func addMulSlice65536Asm(dst, src []byte, c uint16) {
	if len(dst) < vecCut65536 {
		refAddMulSlice65536(dst, src, c)
		return
	}
	n := len(dst) &^ 31
	addMulSlice65536AVX2(&dst[0], &src[0], n, tab65536For(c))
	if n < len(dst) {
		refAddMulSlice65536(dst[n:], src[n:], c)
	}
}
