//go:build !purego

package gf

// Default dispatch: upgrade the kernels from the scalar reference to the
// word-at-a-time generic implementations, then let the platform hook swap
// in vector assembly where available. Building with -tags purego skips
// this file entirely, pinning every kernel to the reference path.
func init() {
	accelName = "generic"
	xorSlice = xorWords
	// The GF(2^8) table row and the GF(2^16) log/exp loop are the pure-Go
	// ceiling on measured hardware (a scalar four-nibble-table variant of
	// the 16-bit multiply benched slower than log/exp here); only platform
	// kernels beat them.
	initPlatformKernels()
}
