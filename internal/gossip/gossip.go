// Package gossip implements the decentralised membership alternative the
// paper points to in §3/§7: "it is possible also to have a distributed
// protocol, as in [12], which uses a gossip mechanism for a newly arriving
// node to find its parents", and "the role of the server can be decreased
// still further or even eliminated".
//
// Instead of a central tracker owning the matrix M, every peer maintains a
// small partial view of the membership, refreshed by Cyclon-style
// shuffles. A joining node bootstraps from any live peer, fills its view,
// and inserts itself at d stream edges sampled through its view — the §6
// random-graph topology, built with no global coordination. Repair is
// local too: a child that loses a parent splices itself onto a new edge
// adjacent to a random view member, without contacting any authority.
//
// The package is an analysis-plane substrate (like internal/core): it
// maintains the stream topology and exports core.Topology snapshots so the
// same connectivity/delay machinery evaluates both designs side by side.
package gossip

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ncast/internal/core"
	"ncast/internal/graph"
)

// Config parameterises the gossip membership.
type Config struct {
	// K is the server's stream count (the seed bandwidth).
	K int
	// D is the node degree (incoming = outgoing unit streams).
	D int
	// ViewSize is the partial view capacity per peer.
	ViewSize int
	// ShuffleLen is how many entries a shuffle exchanges.
	ShuffleLen int
}

// DefaultConfig returns sensible gossip parameters for degree d overlays.
func DefaultConfig(k, d int) Config {
	return Config{K: k, D: d, ViewSize: 12, ShuffleLen: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("gossip: k = %d, want > 0", c.K)
	}
	if c.D < 1 || c.D > c.K {
		return fmt.Errorf("gossip: d = %d, want in [1, k=%d]", c.D, c.K)
	}
	if c.ViewSize < 1 {
		return fmt.Errorf("gossip: view size %d, want >= 1", c.ViewSize)
	}
	if c.ShuffleLen < 1 || c.ShuffleLen > c.ViewSize {
		return fmt.Errorf("gossip: shuffle length %d, want in [1, view=%d]", c.ShuffleLen, c.ViewSize)
	}
	return nil
}

// Common errors.
var (
	ErrUnknownPeer = errors.New("gossip: unknown peer")
	ErrPeerFailed  = errors.New("gossip: peer is failed")
)

// edge is a unit stream; To == 0 means hanging (awaiting a receiver).
type edge struct {
	From core.NodeID
	To   core.NodeID
}

type peer struct {
	id     core.NodeID
	view   []core.NodeID
	failed bool
}

// Network is the decentralised overlay state.
type Network struct {
	cfg    Config
	rng    *rand.Rand
	peers  map[core.NodeID]*peer
	edges  []edge
	nextID core.NodeID
}

// New creates a gossip overlay seeded by a server with cfg.K streams.
func New(cfg Config, rng *rand.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("gossip: nil rng")
	}
	n := &Network{
		cfg:    cfg,
		rng:    rng,
		peers:  make(map[core.NodeID]*peer),
		nextID: 1,
	}
	for i := 0; i < cfg.K; i++ {
		n.edges = append(n.edges, edge{From: core.ServerID})
	}
	return n, nil
}

// NumPeers returns the live membership count (failed peers included until
// repaired away).
func (n *Network) NumPeers() int { return len(n.peers) }

// Contains reports whether id is present.
func (n *Network) Contains(id core.NodeID) bool {
	_, ok := n.peers[id]
	return ok
}

// IsFailed reports whether id is failure-tagged.
func (n *Network) IsFailed(id core.NodeID) bool {
	p, ok := n.peers[id]
	return ok && p.failed
}

// View returns a copy of id's partial view.
func (n *Network) View(id core.NodeID) ([]core.NodeID, error) {
	p, ok := n.peers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	return append([]core.NodeID(nil), p.view...), nil
}

// Join adds a peer: it bootstraps a view from a uniformly random live peer
// (modelling "contact any known member") and inserts itself at d stream
// edges sampled through the view. It returns the new peer's id.
func (n *Network) Join() core.NodeID {
	id := n.nextID
	n.nextID++
	p := &peer{id: id}

	// Bootstrap the view: copy from a random live peer plus the peer
	// itself; the very first joiner knows only the server's streams.
	if boot := n.randomLivePeer(0); boot != 0 {
		bp := n.peers[boot]
		p.view = append(p.view, boot)
		for _, v := range bp.view {
			if v != id && n.aliveInView(v) {
				p.view = append(p.view, v)
			}
		}
		n.trimView(p)
		// The bootstrap peer learns about the newcomer.
		n.viewInsert(bp, id)
	}
	n.peers[id] = p

	// Attach at d edges: prefer edges adjacent to view members (their
	// outgoing streams), falling back to uniformly random edges — both
	// yield the §6 random-edge insertion; the view merely localises the
	// search, as a gossip-built overlay would.
	for i := 0; i < n.cfg.D; i++ {
		ei := n.sampleEdgeNear(p)
		tail := n.edges[ei].To
		n.edges[ei].To = id
		n.edges = append(n.edges, edge{From: id, To: tail})
	}
	return id
}

// sampleEdgeNear picks an edge index: an outgoing edge of an owner drawn
// from the peer's view plus the server (every member knows the server, so
// its hanging capacity keeps getting claimed as the population grows);
// when the chosen owner has no usable edge, any edge will do.
func (n *Network) sampleEdgeNear(p *peer) int {
	owners := append([]core.NodeID{core.ServerID}, p.view...)
	owner := owners[n.rng.Intn(len(owners))]
	candidates := make([]int, 0, 8)
	for i, e := range n.edges {
		if e.From == owner && e.To != p.id {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		for i, e := range n.edges {
			if e.From != p.id && e.To != p.id {
				candidates = append(candidates, i)
			}
		}
	}
	return candidates[n.rng.Intn(len(candidates))]
}

// Shuffle runs one round of view exchange for every live peer: each peer
// picks a random view member and they swap ShuffleLen random entries
// (Cyclon-style, ageless). Dead entries encountered are dropped.
func (n *Network) Shuffle() {
	ids := n.liveIDs()
	n.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		p, ok := n.peers[id]
		if !ok || p.failed {
			continue
		}
		n.pruneDead(p)
		if len(p.view) == 0 {
			continue
		}
		qid := p.view[n.rng.Intn(len(p.view))]
		q, ok := n.peers[qid]
		if !ok || q.failed {
			n.viewRemove(p, qid)
			continue
		}
		n.exchange(p, q)
	}
}

// exchange swaps up to ShuffleLen random entries between two views, and
// makes the peers aware of each other.
func (n *Network) exchange(p, q *peer) {
	sendP := n.sampleView(p, q.id)
	sendQ := n.sampleView(q, p.id)
	n.viewInsert(p, q.id)
	n.viewInsert(q, p.id)
	for _, v := range sendQ {
		if v != p.id {
			n.viewInsert(p, v)
		}
	}
	for _, v := range sendP {
		if v != q.id {
			n.viewInsert(q, v)
		}
	}
}

// sampleView picks up to ShuffleLen entries of p's view, excluding skip.
func (n *Network) sampleView(p *peer, skip core.NodeID) []core.NodeID {
	pool := make([]core.NodeID, 0, len(p.view))
	for _, v := range p.view {
		if v != skip {
			pool = append(pool, v)
		}
	}
	n.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > n.cfg.ShuffleLen {
		pool = pool[:n.cfg.ShuffleLen]
	}
	return append([]core.NodeID(nil), pool...)
}

func (n *Network) viewInsert(p *peer, id core.NodeID) {
	if id == p.id || id == core.ServerID {
		return
	}
	for _, v := range p.view {
		if v == id {
			return
		}
	}
	p.view = append(p.view, id)
	n.trimView(p)
}

func (n *Network) viewRemove(p *peer, id core.NodeID) {
	for i, v := range p.view {
		if v == id {
			p.view = append(p.view[:i], p.view[i+1:]...)
			return
		}
	}
}

// trimView evicts random entries down to capacity.
func (n *Network) trimView(p *peer) {
	for len(p.view) > n.cfg.ViewSize {
		i := n.rng.Intn(len(p.view))
		p.view = append(p.view[:i], p.view[i+1:]...)
	}
}

func (n *Network) pruneDead(p *peer) {
	kept := p.view[:0]
	for _, v := range p.view {
		if n.aliveInView(v) {
			kept = append(kept, v)
		}
	}
	p.view = kept
}

func (n *Network) aliveInView(id core.NodeID) bool {
	q, ok := n.peers[id]
	return ok && !q.failed
}

// Fail tags a peer failed: its streams stop until neighbours repair around
// it (RepairAll) — there is no authority to complain to.
func (n *Network) Fail(id core.NodeID) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if p.failed {
		return fmt.Errorf("%w: %d", ErrPeerFailed, id)
	}
	p.failed = true
	return nil
}

// Leave removes a working peer gracefully: each incoming stream is matched
// with an outgoing one (the same splice the tracker would do, performed by
// the leaving node itself telling its neighbours).
func (n *Network) Leave(id core.NodeID) error {
	p, ok := n.peers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if p.failed {
		return fmt.Errorf("%w: %d", ErrPeerFailed, id)
	}
	n.spliceOut(id)
	return nil
}

// RepairAll performs local repairs: every child of a failed peer re-homes
// its dead incoming streams by splitting a live edge found through its own
// view; the failed peers' remains are then garbage-collected. Returns the
// number of streams re-homed.
func (n *Network) RepairAll() int {
	// Identify dead stream edges (from a failed peer to a live one) and
	// re-home their children. Edges appended during the loop are live by
	// construction, so iterating by index over the original length is
	// safe.
	rehomed := 0
	origLen := len(n.edges)
	for i := 0; i < origLen; i++ {
		e := n.edges[i]
		fromDead := e.From != core.ServerID && !n.aliveInView(e.From)
		toLive := e.To != 0 && n.aliveInView(e.To)
		if !fromDead || !toLive {
			continue
		}
		child := n.peers[e.To]
		n.pruneDead(child)
		// Child re-attaches: split a live edge near its view.
		ni := n.sampleLiveEdge(child)
		if ni < 0 {
			continue
		}
		tail := n.edges[ni].To
		n.edges[ni].To = child.id
		n.edges = append(n.edges, edge{From: child.id, To: tail})
		rehomed++
		// Re-balance: the split pushed the child's out-degree to d+1; if
		// the child has a hanging out-stream, retire it so the unit
		// bandwidth budget holds. Otherwise the child carries a
		// temporary overload until churn frees a slot.
		for j := range n.edges {
			if n.edges[j].From == child.id && n.edges[j].To == 0 {
				last := len(n.edges) - 1
				n.edges[j] = n.edges[last]
				n.edges = n.edges[:last]
				break
			}
		}
	}
	// GC. Three cases for edges touching dead peers:
	//   live/server -> dead: the provider keeps its capacity — the
	//   stream hangs again, available for future joiners;
	//   dead -> anything: dropped with its owner;
	//   (the rehomed children's dead in-streams fall under the first
	//   case's hanging conversion or the second's drop.)
	kept := n.edges[:0]
	for _, e := range n.edges {
		fromDead := e.From != core.ServerID && !n.aliveInView(e.From)
		if fromDead {
			continue
		}
		if e.To != 0 && !n.aliveInView(e.To) {
			e.To = 0 // provider survives; stream hangs again
		}
		kept = append(kept, e)
	}
	n.edges = kept
	for id, p := range n.peers {
		if p.failed {
			delete(n.peers, id)
		}
	}
	return rehomed
}

// sampleLiveEdge returns an edge whose endpoints are live (or server),
// preferring view members, excluding edges touching the child itself.
func (n *Network) sampleLiveEdge(p *peer) int {
	live := func(e edge) bool {
		if e.From == p.id || e.To == p.id {
			return false
		}
		fromOK := e.From == core.ServerID || n.aliveInView(e.From)
		toOK := e.To == 0 || n.aliveInView(e.To)
		return fromOK && toOK
	}
	if len(p.view) > 0 {
		owner := p.view[n.rng.Intn(len(p.view))]
		var candidates []int
		for i, e := range n.edges {
			if e.From == owner && live(e) {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) > 0 {
			return candidates[n.rng.Intn(len(candidates))]
		}
	}
	var candidates []int
	for i, e := range n.edges {
		if live(e) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[n.rng.Intn(len(candidates))]
}

// spliceOut removes a live node by matching its in-streams to its
// out-streams, as in core.RandGraph.
func (n *Network) spliceOut(id core.NodeID) {
	var in, out []int
	for i, e := range n.edges {
		if e.To == id {
			in = append(in, i)
		}
		if e.From == id {
			out = append(out, i)
		}
	}
	n.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	kill := make([]bool, len(n.edges))
	for i, ei := range in {
		if i < len(out) {
			n.edges[ei].To = n.edges[out[i]].To
			kill[out[i]] = true
		} else {
			kill[ei] = true
		}
	}
	kept := n.edges[:0]
	for i, e := range n.edges {
		if kill[i] || e.From == id || e.To == id {
			continue
		}
		kept = append(kept, e)
	}
	n.edges = kept
	delete(n.peers, id)
	// Views clean themselves lazily during shuffles.
}

func (n *Network) liveIDs() []core.NodeID {
	ids := make([]core.NodeID, 0, len(n.peers))
	for id, p := range n.peers {
		if !p.failed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// randomLivePeer returns a uniformly random live peer other than skip, or
// 0 when none exists.
func (n *Network) randomLivePeer(skip core.NodeID) core.NodeID {
	ids := n.liveIDs()
	if skip != 0 {
		for i, id := range ids {
			if id == skip {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
	if len(ids) == 0 {
		return 0
	}
	return ids[n.rng.Intn(len(ids))]
}

// Snapshot exports the topology in the shared analysis format.
func (n *Network) Snapshot() *core.Topology {
	ids := append([]core.NodeID{core.ServerID}, n.allIDs()...)
	t := &core.Topology{
		Graph:   graph.NewDigraph(len(ids)),
		IDs:     ids,
		Index:   make(map[core.NodeID]int, len(ids)),
		Working: make([]bool, len(ids)),
	}
	for i, id := range ids {
		t.Index[id] = i
		if id == core.ServerID {
			t.Working[i] = true
		} else {
			t.Working[i] = !n.peers[id].failed
		}
	}
	for _, e := range n.edges {
		if e.To == 0 {
			continue
		}
		from, okF := t.Index[e.From]
		to, okT := t.Index[e.To]
		if !okF || !okT || from == to {
			continue
		}
		if _, err := t.Graph.AddEdge(from, to); err != nil {
			panic(err)
		}
	}
	return t
}

func (n *Network) allIDs() []core.NodeID {
	ids := make([]core.NodeID, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Validate checks structural invariants: per-peer stream balance and view
// bounds.
func (n *Network) Validate() error {
	in := make(map[core.NodeID]int)
	out := make(map[core.NodeID]int)
	for _, e := range n.edges {
		out[e.From]++
		if e.To != 0 {
			in[e.To]++
		}
	}
	for id, p := range n.peers {
		if len(p.view) > n.cfg.ViewSize {
			return fmt.Errorf("gossip: peer %d view size %d exceeds %d", id, len(p.view), n.cfg.ViewSize)
		}
		if p.failed {
			continue
		}
		if in[id] < 1 {
			return fmt.Errorf("gossip: live peer %d has no incoming stream", id)
		}
	}
	for id := range in {
		if id != core.ServerID && !n.Contains(id) {
			return fmt.Errorf("gossip: edge to unknown peer %d", id)
		}
	}
	for id := range out {
		if id != core.ServerID && !n.Contains(id) {
			return fmt.Errorf("gossip: edge from unknown peer %d", id)
		}
	}
	return nil
}

// ViewUniformity returns the coefficient of variation of how often each
// live peer appears across all views — the standard gossip health metric
// (0 = perfectly uniform representation).
func (n *Network) ViewUniformity() float64 {
	count := make(map[core.NodeID]int)
	for _, p := range n.peers {
		if p.failed {
			continue
		}
		for _, v := range p.view {
			if n.aliveInView(v) {
				count[v]++
			}
		}
	}
	ids := n.liveIDs()
	if len(ids) < 2 {
		return 0
	}
	var sum float64
	for _, id := range ids {
		sum += float64(count[id])
	}
	mean := sum / float64(len(ids))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, id := range ids {
		d := float64(count[id]) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(ids))) / mean
}
