package gossip

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ncast/internal/core"
	"ncast/internal/graph"
)

func newNetwork(t testing.TB, k, d int, seed int64) *Network {
	t.Helper()
	n, err := New(DefaultConfig(k, d), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", DefaultConfig(8, 2), false},
		{"zero k", Config{K: 0, D: 1, ViewSize: 4, ShuffleLen: 2}, true},
		{"d above k", Config{K: 2, D: 3, ViewSize: 4, ShuffleLen: 2}, true},
		{"zero view", Config{K: 8, D: 2, ViewSize: 0, ShuffleLen: 1}, true},
		{"shuffle above view", Config{K: 8, D: 2, ViewSize: 4, ShuffleLen: 5}, true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if _, err := New(DefaultConfig(8, 2), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestJoinInvariants(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 8, 3, 1)
	for i := 0; i < 100; i++ {
		n.Join()
		if err := n.Validate(); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	if n.NumPeers() != 100 {
		t.Fatalf("peers = %d", n.NumPeers())
	}
}

func TestViewsConvergeTowardUniform(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 8, 2, 2)
	for i := 0; i < 150; i++ {
		n.Join()
	}
	before := n.ViewUniformity()
	for r := 0; r < 30; r++ {
		n.Shuffle()
		if err := n.Validate(); err != nil {
			t.Fatalf("after shuffle %d: %v", r, err)
		}
	}
	after := n.ViewUniformity()
	// Gossip shuffling spreads knowledge: representation inequality must
	// drop substantially from the join-order-skewed initial state.
	if after >= before {
		t.Fatalf("view uniformity did not improve: CV %v -> %v", before, after)
	}
	if after > 0.8 {
		t.Fatalf("views still highly skewed after shuffling: CV %v", after)
	}
}

func TestConnectivityWithoutFailures(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 8, 2, 3)
	for i := 0; i < 60; i++ {
		n.Join()
		if i%5 == 0 {
			n.Shuffle()
		}
	}
	top := n.Snapshot()
	fs := graph.NewFlowSolver(top.Effective())
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if got := fs.MaxFlow(0, gi, -1); got < 2 {
			t.Fatalf("node %d connectivity = %d, want >= 2", gi, got)
		}
	}
}

func TestLocalRepairRestoresConnectivity(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 8, 2, 4)
	var ids []core.NodeID
	for i := 0; i < 80; i++ {
		ids = append(ids, n.Join())
		if i%10 == 0 {
			n.Shuffle()
		}
	}
	// Fail 10% of peers, then run local repair with a couple of shuffle
	// rounds (children need live views).
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(len(ids))
	for _, i := range perm[:8] {
		if err := n.Fail(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	n.Shuffle()
	rehomed := n.RepairAll()
	if rehomed == 0 {
		t.Fatal("no stream was re-homed despite failures")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Failed peers are gone and every survivor is reconnected.
	if n.NumPeers() != 72 {
		t.Fatalf("peers after repair = %d, want 72", n.NumPeers())
	}
	top := n.Snapshot()
	fs := graph.NewFlowSolver(top.Effective())
	disconnected := 0
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if fs.MaxFlow(0, gi, 1) == 0 {
			disconnected++
		}
	}
	if disconnected > 0 {
		t.Fatalf("%d peers disconnected after local repair", disconnected)
	}
}

func TestLeaveSplices(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 6, 2, 6)
	var ids []core.NodeID
	for i := 0; i < 40; i++ {
		ids = append(ids, n.Join())
	}
	for _, id := range ids[:10] {
		if err := n.Leave(id); err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if n.NumPeers() != 30 {
		t.Fatalf("peers = %d", n.NumPeers())
	}
	if err := n.Leave(ids[0]); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("double leave err = %v", err)
	}
}

func TestFailErrors(t *testing.T) {
	t.Parallel()
	n := newNetwork(t, 6, 2, 7)
	id := n.Join()
	if err := n.Fail(999); !errors.Is(err, ErrUnknownPeer) {
		t.Error("fail unknown")
	}
	if err := n.Fail(id); err != nil {
		t.Fatal(err)
	}
	if err := n.Fail(id); !errors.Is(err, ErrPeerFailed) {
		t.Error("double fail")
	}
	if err := n.Leave(id); !errors.Is(err, ErrPeerFailed) {
		t.Error("leave failed peer")
	}
	if !n.IsFailed(id) {
		t.Error("IsFailed")
	}
	if _, err := n.View(999); !errors.Is(err, ErrUnknownPeer) {
		t.Error("view unknown")
	}
}

func TestDepthStaysLogarithmic(t *testing.T) {
	t.Parallel()
	// The gossip overlay builds the §6 random-graph topology, so depth
	// must stay logarithmic even without any central coordination.
	n := newNetwork(t, 16, 2, 8)
	for i := 0; i < 800; i++ {
		n.Join()
		if i%20 == 0 {
			n.Shuffle()
		}
	}
	top := n.Snapshot()
	depths := top.Graph.Depths(0)
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if float64(maxDepth) > 8*math.Log2(800) {
		t.Fatalf("depth %d not logarithmic for N=800", maxDepth)
	}
}

func TestChurnSoak(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(9))
	n := newNetwork(t, 10, 2, 10)
	var alive []core.NodeID
	for step := 0; step < 500; step++ {
		switch {
		case r.Intn(3) > 0 || len(alive) < 5:
			alive = append(alive, n.Join())
		case r.Intn(2) == 0:
			i := r.Intn(len(alive))
			if !n.IsFailed(alive[i]) {
				if err := n.Leave(alive[i]); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				alive = append(alive[:i], alive[i+1:]...)
			}
		default:
			i := r.Intn(len(alive))
			if !n.IsFailed(alive[i]) {
				if err := n.Fail(alive[i]); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if step%25 == 0 {
			n.Shuffle()
			n.RepairAll()
			// Refresh the alive list after GC.
			kept := alive[:0]
			for _, id := range alive {
				if n.Contains(id) {
					kept = append(kept, id)
				}
			}
			alive = kept
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func BenchmarkJoinWithGossip(b *testing.B) {
	n, err := New(DefaultConfig(16, 3), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Join()
		if i%10 == 0 {
			n.Shuffle()
		}
	}
}
