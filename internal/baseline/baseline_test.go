package baseline

import (
	"math/rand"
	"testing"
)

func noFailures(n int) []bool { return make([]bool, n) }

func TestChainRates(t *testing.T) {
	t.Parallel()
	c, err := NewChain(5)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := c.Rates(noFailures(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if r != 1 {
			t.Fatalf("node %d rate = %v with no failures", i, r)
		}
	}
	// Failing node 2 kills nodes 3 and 4 too.
	failed := []bool{false, false, true, false, false}
	rates, err = c.Rates(failed)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, 0, 0}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
	if _, err := c.Rates(noFailures(4)); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := NewChain(0); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestTreeRates(t *testing.T) {
	t.Parallel()
	// Fanout 2 over 7 nodes: 0,1 under server; 2,3 under 0; 4,5 under 1;
	// 6 under 2.
	tr, err := NewTree(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := tr.Rates(noFailures(7))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if r != 1 {
			t.Fatalf("node %d rate = %v with no failures", i, r)
		}
	}
	// Failing node 0 kills 2, 3 and 6.
	failed := make([]bool, 7)
	failed[0] = true
	rates, err = tr.Rates(failed)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0, 0, 1, 1, 0}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMultiTreeNoFailures(t *testing.T) {
	t.Parallel()
	m, err := NewMultiTree(30, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rates, err := m.Rates(noFailures(30))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if r != 1 {
			t.Fatalf("node %d rate = %v with no failures", i, r)
		}
	}
}

func TestMultiTreePartialStripes(t *testing.T) {
	t.Parallel()
	m, err := NewMultiTree(40, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	failed := make([]bool, 40)
	for i := 0; i < 8; i++ {
		failed[i*5] = true
	}
	rates, err := m.Rates(failed)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if failed[i] {
			if r != 0 {
				t.Fatalf("failed node %d rate = %v", i, r)
			}
			continue
		}
		if r < 0 || r > 1 {
			t.Fatalf("rate out of range: %v", r)
		}
		// Rates are multiples of 1/4.
		if q := r * 4; q != float64(int(q)) {
			t.Fatalf("node %d rate %v not a stripe multiple", i, r)
		}
	}
}

func TestFECCurtain(t *testing.T) {
	t.Parallel()
	f, err := NewFECCurtain(25, 8, 4, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 25 {
		t.Fatal("NumNodes")
	}
	rates, err := f.Rates(noFailures(25))
	if err != nil {
		t.Fatal(err)
	}
	// No failures: every node decodes, at the redundancy-discounted rate.
	for i, r := range rates {
		if r != 0.75 {
			t.Fatalf("node %d rate = %v, want 0.75", i, r)
		}
	}
	// Validation.
	if _, err := NewFECCurtain(10, 8, 4, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("dataPerD=0 accepted")
	}
	if _, err := NewFECCurtain(10, 8, 4, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("dataPerD>d accepted")
	}
}

func TestRLNCCurtainNoFailures(t *testing.T) {
	t.Parallel()
	r, err := NewRLNCCurtain(30, 8, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rates, err := r.Rates(noFailures(30))
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		if rate != 1 {
			t.Fatalf("node %d rate = %v, want 1", i, rate)
		}
	}
}

func TestRLNCDominatesFECUnderFailures(t *testing.T) {
	t.Parallel()
	// The paper's core comparison: on the same topology shape and failure
	// pattern, network coding's mean goodput should dominate the
	// FEC-routing baseline (which pays redundancy and suffers cliffs).
	const n, k, d, trials = 60, 12, 3, 30
	rlnc, err := NewRLNCCurtain(n, k, d, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	fec, err := NewFECCurtain(n, k, d, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var sumR, sumF float64
	for trial := 0; trial < trials; trial++ {
		failed := make([]bool, n)
		for i := range failed {
			failed[i] = rng.Float64() < 0.05
		}
		rr, err := rlnc.Rates(failed)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fec.Rates(failed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rr {
			if !failed[i] {
				sumR += rr[i]
				sumF += fr[i]
			}
		}
	}
	if sumR <= sumF {
		t.Fatalf("RLNC goodput %v not above FEC %v", sumR, sumF)
	}
}

func TestTreePackingMatchesRLNCWithoutFailures(t *testing.T) {
	t.Parallel()
	const n, k, d = 20, 8, 2
	tp, err := NewTreePacking(n, k, d, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	rates, err := tp.Rates(noFailures(n))
	if err != nil {
		t.Fatal(err)
	}
	// Without failures the static packing delivers everything (Edmonds'
	// theorem: d disjoint spanning arborescences exist and deliver d
	// stripes to every node).
	for i, r := range rates {
		if r != 1 {
			t.Fatalf("node %d rate = %v, want 1", i, r)
		}
	}
}

func TestTreePackingDegradesWithoutRecomputation(t *testing.T) {
	t.Parallel()
	// §1's critique quantified: under failures, static Edmonds trees lose
	// more than RLNC on the same topology, because RLNC reroutes flow
	// while static stripes die with any ancestor.
	const n, k, d, trials = 50, 10, 2, 20
	seed := int64(8)
	tp, err := NewTreePacking(n, k, d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := NewRLNCCurtain(n, k, d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var sumT, sumR float64
	for trial := 0; trial < trials; trial++ {
		failed := make([]bool, n)
		for i := range failed {
			failed[i] = rng.Float64() < 0.08
		}
		tr, err := tp.Rates(failed)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := rl.Rates(failed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr {
			sumT += tr[i]
			sumR += rr[i]
		}
	}
	if sumR < sumT {
		t.Fatalf("RLNC total %v below static tree packing %v", sumR, sumT)
	}
}

func TestSchemeNames(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(10))
	c, _ := NewChain(2)
	tr, _ := NewTree(2, 3)
	m, _ := NewMultiTree(2, 2, rng)
	if c.Name() != "chain" || tr.Name() != "tree-f3" || m.Name() != "multitree-d2" {
		t.Error("names wrong")
	}
}

func BenchmarkRLNCRates(b *testing.B) {
	r, err := NewRLNCCurtain(200, 16, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	failed := make([]bool, 200)
	for i := range failed {
		failed[i] = rng.Float64() < 0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Rates(failed); err != nil {
			b.Fatal(err)
		}
	}
}
