// Package baseline implements the prior-art distribution schemes the
// paper's introduction compares against, plus the paper's own scheme, all
// behind one evaluation interface so experiment E7 can race them on equal
// terms:
//
//   - Chain: the "distribution path" — every node forwards the full
//     stream to exactly one other node (§1's opening strawman).
//   - Tree: single multicast tree with fanout f (violates the equal
//     upload/download constraint for internal nodes; included as the
//     classical reference).
//   - MultiTree: SplitStream-style striped trees [4]: content is split
//     into d stripes, each distributed over its own random tree.
//   - FECCurtain: the curtain overlay with per-thread routing and
//     Reed-Solomon erasure coding across threads [§1: "data may be
//     encoded with erasure codes (e.g., Reed-Solomon codes)"].
//   - RLNCCurtain: the paper's scheme — curtain overlay with network
//     coding; a node's rate equals its min-cut from the server (network
//     coding theorem).
//   - TreePacking: Edmonds' edge-disjoint arborescences over the curtain
//     (§1's "theoretically optimal but impractical" scheme), evaluated
//     without recomputation after failures (its practical weakness).
//
// Rates are normalized goodput: 1.0 means the node receives the full
// content bandwidth. Erasure-coded schemes pay their redundancy as a rate
// discount even with zero failures — that cost is the point of comparison.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/graph"
)

// Scheme is a content-distribution overlay under evaluation. A scheme owns
// a fixed population of n client nodes (indices 0..n-1; the server is
// implicit) and reports per-node delivered goodput for a failure pattern.
type Scheme interface {
	// Name returns a short scheme label for report tables.
	Name() string
	// NumNodes returns the client population size.
	NumNodes() int
	// Rates returns the delivered goodput fraction in [0,1] for each
	// node given failed[i] reporting whether node i is failed. Failed
	// nodes report 0. len(failed) must equal NumNodes().
	Rates(failed []bool) ([]float64, error)
}

// errBadMask is the common failure-mask validation error.
func checkMask(s Scheme, failed []bool) error {
	if len(failed) != s.NumNodes() {
		return fmt.Errorf("baseline: mask length %d, want %d", len(failed), s.NumNodes())
	}
	return nil
}

// Chain is the single distribution path: server -> 0 -> 1 -> ... -> n-1.
type Chain struct {
	n int
}

// NewChain builds a chain of n nodes.
func NewChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: chain size %d, want > 0", n)
	}
	return &Chain{n: n}, nil
}

// Name implements Scheme.
func (c *Chain) Name() string { return "chain" }

// NumNodes implements Scheme.
func (c *Chain) NumNodes() int { return c.n }

// Rates implements Scheme: node i receives iff nodes 0..i are all working.
func (c *Chain) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(c, failed); err != nil {
		return nil, err
	}
	rates := make([]float64, c.n)
	alive := true
	for i := 0; i < c.n; i++ {
		if failed[i] {
			alive = false
			continue
		}
		if alive {
			rates[i] = 1
		}
	}
	return rates, nil
}

// Tree is a single multicast tree with fanout f: node i's parent is node
// (i-1)/f, and the first f nodes are children of the server.
type Tree struct {
	n int
	f int
}

// NewTree builds a complete f-ary multicast tree over n nodes.
func NewTree(n, f int) (*Tree, error) {
	if n <= 0 || f <= 0 {
		return nil, fmt.Errorf("baseline: tree size %d fanout %d, want > 0", n, f)
	}
	return &Tree{n: n, f: f}, nil
}

// Name implements Scheme.
func (t *Tree) Name() string { return fmt.Sprintf("tree-f%d", t.f) }

// NumNodes implements Scheme.
func (t *Tree) NumNodes() int { return t.n }

// Rates implements Scheme: a node receives iff all its tree ancestors work.
func (t *Tree) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(t, failed); err != nil {
		return nil, err
	}
	rates := make([]float64, t.n)
	// Process in index order: parents precede children.
	ok := make([]bool, t.n)
	for i := 0; i < t.n; i++ {
		if failed[i] {
			continue
		}
		if i < t.f {
			ok[i] = true // child of the server
		} else {
			ok[i] = ok[(i-t.f)/t.f] // parent is (i-f)/f in a complete f-ary forest rooted at the first f nodes
		}
		if ok[i] {
			rates[i] = 1
		}
	}
	return rates, nil
}

// MultiTree distributes d stripes over d independent random trees with
// fanout d (SplitStream-like): each stripe is 1/d of the content and a
// node's rate is the fraction of stripes whose tree path is intact.
type MultiTree struct {
	n int
	d int
	// parent[s][i] is node i's parent in stripe s's tree; -1 means the
	// server.
	parent [][]int
}

// NewMultiTree builds d random stripe trees over n nodes.
func NewMultiTree(n, d int, rng *rand.Rand) (*MultiTree, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("baseline: multitree size %d stripes %d, want > 0", n, d)
	}
	if rng == nil {
		return nil, errors.New("baseline: nil rng")
	}
	m := &MultiTree{n: n, d: d, parent: make([][]int, d)}
	for s := 0; s < d; s++ {
		// Random permutation defines the tree levels for this stripe, so
		// each node's internal/leaf role varies across stripes.
		perm := rng.Perm(n)
		par := make([]int, n)
		for rank, node := range perm {
			if rank < d {
				par[node] = -1 // server child
			} else {
				par[node] = perm[(rank-d)/d]
			}
		}
		m.parent[s] = par
	}
	return m, nil
}

// Name implements Scheme.
func (m *MultiTree) Name() string { return fmt.Sprintf("multitree-d%d", m.d) }

// NumNodes implements Scheme.
func (m *MultiTree) NumNodes() int { return m.n }

// Rates implements Scheme.
func (m *MultiTree) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(m, failed); err != nil {
		return nil, err
	}
	rates := make([]float64, m.n)
	got := make([]int, m.n)
	for s := 0; s < m.d; s++ {
		par := m.parent[s]
		ok := make([]int8, m.n) // 0 unknown, 1 yes, 2 no
		var resolve func(i int) bool
		resolve = func(i int) bool {
			if failed[i] {
				return false
			}
			switch ok[i] {
			case 1:
				return true
			case 2:
				return false
			}
			res := par[i] < 0 || resolve(par[i])
			if res {
				ok[i] = 1
			} else {
				ok[i] = 2
			}
			return res
		}
		for i := 0; i < m.n; i++ {
			if resolve(i) {
				got[i]++
			}
		}
	}
	for i := range rates {
		if !failed[i] {
			rates[i] = float64(got[i]) / float64(m.d)
		}
	}
	return rates, nil
}

// curtainBase captures the shared "build a curtain, analyze its threads"
// machinery of the curtain-topology schemes.
type curtainBase struct {
	top *core.Topology
	n   int
	d   int
	// nodeIdx[i] is the snapshot graph index of the i-th joined node.
	nodeIdx []int
	// threadsOf[i] lists, per incoming thread of node i, the graph
	// indices of the upstream chain on that thread (exclusive of the
	// server, inclusive of nothing if directly below the server).
	threadsOf [][][]int
}

func buildCurtainBase(n, k, d int, rng *rand.Rand) (*curtainBase, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: population %d, want > 0", n)
	}
	c, err := core.New(k, d, rng)
	if err != nil {
		return nil, err
	}
	ids := make([]core.NodeID, n)
	for i := range ids {
		ids[i] = c.Join()
	}
	top := c.Snapshot()
	b := &curtainBase{top: top, n: n, d: d, nodeIdx: make([]int, n), threadsOf: make([][][]int, n)}
	for i, id := range ids {
		b.nodeIdx[i] = top.Index[id]
	}
	// Reconstruct per-thread upstream chains from the snapshot: walk each
	// thread's occupancy via graph edges. Thread t's chain starts at the
	// server; we recover it by following the unique per-thread edges.
	// Simpler: for each node and each incoming edge, walk ancestors by
	// repeatedly taking the incoming edge that lies on the same thread.
	// The snapshot does not label edges with threads, so rebuild chains
	// from the curtain directly would be cleaner — but the curtain is
	// gone. Instead, recover chains per thread from ThreadBottom by
	// walking incoming edges is ambiguous for nodes on multiple threads.
	// Therefore: recompute from structure — every edge (u,v) belongs to
	// exactly one thread; we recover thread chains by simulating the
	// occupancy order: edges were added thread by thread in row order,
	// consecutive edges of one thread share endpoints (prev -> cur).
	chains := threadChains(top, k)
	for i := range b.threadsOf {
		b.threadsOf[i] = nil
	}
	perNode := make(map[int][][]int, n)
	for _, chain := range chains {
		for pos, gi := range chain {
			upstream := append([]int(nil), chain[:pos]...)
			perNode[gi] = append(perNode[gi], upstream)
		}
	}
	for i, gi := range b.nodeIdx {
		b.threadsOf[i] = perNode[gi]
		if len(b.threadsOf[i]) != d {
			return nil, fmt.Errorf("baseline: node %d has %d thread chains, want %d", i, len(b.threadsOf[i]), d)
		}
	}
	return b, nil
}

// threadChains recovers, for each thread, the ordered list of graph
// indices clipped to it, by replaying Snapshot's edge construction: edges
// are appended thread by thread, each thread contributing a path
// server -> a -> b -> ... in order.
func threadChains(top *core.Topology, k int) [][]int {
	chains := make([][]int, 0, k)
	var cur []int
	prev := -1
	for id := 0; id < top.Graph.NumEdges(); id++ {
		e := top.Graph.Edge(id)
		if e.From == 0 || e.From != prev {
			// A new chain starts whenever the edge leaves the server or
			// breaks the prev -> cur continuation.
			if e.From == 0 {
				if cur != nil {
					chains = append(chains, cur)
				}
				cur = []int{e.To}
				prev = e.To
				continue
			}
		}
		cur = append(cur, e.To)
		prev = e.To
	}
	if cur != nil {
		chains = append(chains, cur)
	}
	return chains
}

// failedMask translates a per-population failure mask into a per-graph-
// index working mask.
func (b *curtainBase) workingMask(failed []bool) []bool {
	working := make([]bool, b.top.Graph.NumNodes())
	working[0] = true
	for i := range working {
		working[i] = true
	}
	for i, f := range failed {
		if f {
			working[b.nodeIdx[i]] = false
		}
	}
	return working
}

// threadDelivers reports whether node i's thread chain ti delivers: every
// upstream node on the thread is working.
func (b *curtainBase) threadDelivers(failed []bool, working []bool, i, ti int) bool {
	for _, gi := range b.threadsOf[i][ti] {
		if !working[gi] {
			return false
		}
	}
	return true
}

// FECCurtain is the erasure-coded multi-parent baseline: the curtain
// topology with plain per-thread routing (no recoding). The server RS-codes
// each content generation into k shards, one per thread; a node decodes a
// generation iff at least dataPerD of its d incoming threads deliver their
// shard end to end. Goodput when decodable is dataPerD/d (the redundancy
// discount).
type FECCurtain struct {
	base      *curtainBase
	dataPerD  int
	rateWhole float64
}

// NewFECCurtain builds the FEC baseline. dataPerD is the number of data
// shards among each node's d incoming threads (d - dataPerD is the parity
// budget); it must be in [1, d].
func NewFECCurtain(n, k, d, dataPerD int, rng *rand.Rand) (*FECCurtain, error) {
	if dataPerD < 1 || dataPerD > d {
		return nil, fmt.Errorf("baseline: dataPerD %d, want in [1,%d]", dataPerD, d)
	}
	base, err := buildCurtainBase(n, k, d, rng)
	if err != nil {
		return nil, err
	}
	return &FECCurtain{base: base, dataPerD: dataPerD, rateWhole: float64(dataPerD) / float64(d)}, nil
}

// Name implements Scheme. A code with zero parity budget is plain
// store-and-forward routing on the curtain, and is labeled as such: it is
// the "recoding off" ablation of the paper's scheme.
func (f *FECCurtain) Name() string {
	if f.dataPerD == f.base.d {
		return "routing"
	}
	return fmt.Sprintf("fec-%d/%d", f.dataPerD, f.base.d)
}

// NumNodes implements Scheme.
func (f *FECCurtain) NumNodes() int { return f.base.n }

// Rates implements Scheme.
func (f *FECCurtain) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(f, failed); err != nil {
		return nil, err
	}
	working := f.base.workingMask(failed)
	rates := make([]float64, f.base.n)
	for i := range rates {
		if failed[i] {
			continue
		}
		delivered := 0
		for ti := range f.base.threadsOf[i] {
			if f.base.threadDelivers(failed, working, i, ti) {
				delivered++
			}
		}
		if delivered >= f.dataPerD {
			rates[i] = f.rateWhole
		}
	}
	return rates, nil
}

// RLNCCurtain is the paper's scheme: curtain overlay plus network coding.
// By the network coding theorem a node's achievable rate equals its edge
// connectivity from the server in the working subgraph, normalized by d.
type RLNCCurtain struct {
	base *curtainBase
}

// NewRLNCCurtain builds the paper's scheme over n nodes.
func NewRLNCCurtain(n, k, d int, rng *rand.Rand) (*RLNCCurtain, error) {
	base, err := buildCurtainBase(n, k, d, rng)
	if err != nil {
		return nil, err
	}
	return &RLNCCurtain{base: base}, nil
}

// Name implements Scheme.
func (r *RLNCCurtain) Name() string { return "rlnc" }

// NumNodes implements Scheme.
func (r *RLNCCurtain) NumNodes() int { return r.base.n }

// Rates implements Scheme.
func (r *RLNCCurtain) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(r, failed); err != nil {
		return nil, err
	}
	working := r.base.workingMask(failed)
	g := filteredGraph(r.base.top.Graph, working)
	fs := graph.NewFlowSolver(g)
	rates := make([]float64, r.base.n)
	for i, gi := range r.base.nodeIdx {
		if failed[i] {
			continue
		}
		rates[i] = float64(fs.MaxFlow(0, gi, r.base.d)) / float64(r.base.d)
	}
	return rates, nil
}

// TreePacking is Edmonds' optimal multi-tree routing computed on the
// failure-free curtain, evaluated WITHOUT recomputation after failures —
// the §1 critique: "it will need to recompute, when a node fails, the
// partition of the overlay network into multicast trees".
type TreePacking struct {
	base  *curtainBase
	packs []graph.Arborescence
}

// NewTreePacking builds the Edmonds baseline. It packs d edge-disjoint
// spanning arborescences on the failure-free snapshot (they exist because
// the curtain guarantees connectivity d).
func NewTreePacking(n, k, d int, rng *rand.Rand) (*TreePacking, error) {
	base, err := buildCurtainBase(n, k, d, rng)
	if err != nil {
		return nil, err
	}
	packs, err := graph.EdgeDisjointArborescences(base.top.Graph, 0, d)
	if err != nil {
		return nil, fmt.Errorf("baseline: packing failed: %w", err)
	}
	return &TreePacking{base: base, packs: packs}, nil
}

// Name implements Scheme.
func (t *TreePacking) Name() string { return "edmonds-static" }

// NumNodes implements Scheme.
func (t *TreePacking) NumNodes() int { return t.base.n }

// Rates implements Scheme: a node receives stripe s iff its ancestor path
// in arborescence s is all working.
func (t *TreePacking) Rates(failed []bool) ([]float64, error) {
	if err := checkMask(t, failed); err != nil {
		return nil, err
	}
	working := t.base.workingMask(failed)
	nG := t.base.top.Graph.NumNodes()
	rates := make([]float64, t.base.n)
	got := make([]int, nG)
	for _, arb := range t.packs {
		parent := arb.ParentOf(t.base.top.Graph, nG)
		state := make([]int8, nG) // 0 unknown, 1 ok, 2 dead
		state[0] = 1
		var resolve func(gi int) bool
		resolve = func(gi int) bool {
			if !working[gi] {
				return false
			}
			switch state[gi] {
			case 1:
				return true
			case 2:
				return false
			}
			eid := parent[gi]
			res := eid >= 0 && resolve(t.base.top.Graph.Edge(eid).From)
			if res {
				state[gi] = 1
			} else {
				state[gi] = 2
			}
			return res
		}
		for gi := 1; gi < nG; gi++ {
			if resolve(gi) {
				got[gi]++
			}
		}
	}
	for i, gi := range t.base.nodeIdx {
		if !failed[i] {
			rates[i] = float64(got[gi]) / float64(t.base.d)
		}
	}
	return rates, nil
}

// filteredGraph drops edges incident to non-working nodes.
func filteredGraph(g *graph.Digraph, working []bool) *graph.Digraph {
	out := graph.NewDigraph(g.NumNodes())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		if working[e.From] && working[e.To] {
			if _, err := out.AddEdge(e.From, e.To); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// Compile-time conformance checks.
var (
	_ Scheme = (*Chain)(nil)
	_ Scheme = (*Tree)(nil)
	_ Scheme = (*MultiTree)(nil)
	_ Scheme = (*FECCurtain)(nil)
	_ Scheme = (*RLNCCurtain)(nil)
	_ Scheme = (*TreePacking)(nil)
)
