package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E11Config parameterises experiment E11 (§5: heterogeneous bandwidths —
// "some users could have DSL connections and others T1"). Two node classes
// with different degrees share one curtain; under iid failures each class
// should retain roughly the (1-p)-fraction of its own bandwidth, with the
// high-degree class enjoying proportionally more absolute throughput.
type E11Config struct {
	K int
	// DLow/DHigh are the two class degrees; FracHigh the population share
	// of the high class.
	DLow, DHigh int
	FracHigh    float64
	N           int
	P           float64
	Trials      int
	Seed        int64
}

// DefaultE11Config returns the standard heterogeneous run.
func DefaultE11Config() E11Config {
	return E11Config{
		K: 24, DLow: 2, DHigh: 6, FracHigh: 0.3,
		N: 300, P: 0.03, Trials: 8, Seed: 11,
	}
}

// E11Row is one class's outcome.
type E11Row struct {
	Class string
	D     int
	Nodes int
	// DeliveredFrac is E[conn/d] over working nodes of the class.
	DeliveredFrac float64
	// AbsUnits is E[conn] — absolute bandwidth units delivered.
	AbsUnits float64
}

// E11Result holds both classes.
type E11Result struct {
	K    int
	P    float64
	Rows []E11Row
}

// Table renders the result.
func (r E11Result) Table() *metrics.Table {
	t := metrics.NewTable("E11: heterogeneous degrees (DSL vs T1, §5)",
		"class", "d", "nodes", "E[delivered frac]", "E[abs units]", "(1-p) ref")
	for _, row := range r.Rows {
		t.AddRow(row.Class, row.D, row.Nodes, row.DeliveredFrac, row.AbsUnits, 1-r.P)
	}
	return t
}

// RunE11 executes experiment E11.
func RunE11(cfg E11Config) (E11Result, error) {
	res := E11Result{K: cfg.K, P: cfg.P}
	type acc struct {
		frac, abs float64
		n         int
	}
	var lo, hi acc
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
		c, err := core.New(cfg.K, cfg.DLow, rng)
		if err != nil {
			return E11Result{}, err
		}
		classOf := make(map[core.NodeID]int, cfg.N)
		for i := 0; i < cfg.N; i++ {
			d := cfg.DLow
			cls := 0
			if rng.Float64() < cfg.FracHigh {
				d = cfg.DHigh
				cls = 1
			}
			id, err := c.JoinDegree(d)
			if err != nil {
				return E11Result{}, err
			}
			classOf[id] = cls
		}
		FailIID(c, cfg.P, rng)
		top := c.Snapshot()
		conns := defect.NodeConnectivity(top, cfg.DHigh)
		for _, id := range c.Nodes() {
			if c.IsFailed(id) {
				continue
			}
			gi := top.Index[id]
			d, err := c.Degree(id)
			if err != nil {
				return E11Result{}, err
			}
			conn := conns[gi]
			if conn > d {
				conn = d
			}
			a := &lo
			if classOf[id] == 1 {
				a = &hi
			}
			a.frac += float64(conn) / float64(d)
			a.abs += float64(conn)
			a.n++
		}
	}
	mk := func(name string, d int, a acc) E11Row {
		row := E11Row{Class: name, D: d, Nodes: a.n}
		if a.n > 0 {
			row.DeliveredFrac = a.frac / float64(a.n)
			row.AbsUnits = a.abs / float64(a.n)
		}
		return row
	}
	res.Rows = append(res.Rows, mk("dsl", cfg.DLow, lo), mk("t1", cfg.DHigh, hi))
	return res, nil
}
