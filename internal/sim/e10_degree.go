package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E10Config parameterises experiment E10 (§7's degree discussion: at a
// fixed server bandwidth, k is proportional to d and each thread carries
// 1/d of the content; the expected fraction of bandwidth lost is ≈ p
// independent of d, while its variance should fall roughly like 1/d,
// making larger d the choice for consistent-rate applications and d = 2
// sufficient for bulk downloads).
type E10Config struct {
	// KPerD fixes the server bandwidth: k = KPerD * d.
	KPerD  int
	Ds     []int
	N      int
	P      float64
	Trials int
	Seed   int64
}

// DefaultE10Config returns the standard degree sweep.
func DefaultE10Config() E10Config {
	return E10Config{
		KPerD:  8,
		Ds:     []int{2, 4, 8, 16},
		N:      300,
		P:      0.03,
		Trials: 8,
		Seed:   10,
	}
}

// E10Row is one degree's loss statistics.
type E10Row struct {
	D, K int
	// MeanLoss is E[(d - conn)/d] over working nodes (§7 predicts ≈ p).
	MeanLoss float64
	// VarLoss is the across-node variance of the loss fraction (§7's open
	// issue predicts it to shrink roughly like 1/d).
	VarLoss float64
	// VarTimesD is VarLoss * d; roughly constant if the 1/d law holds.
	VarTimesD float64
}

// E10Result holds the sweep.
type E10Result struct {
	P    float64
	Rows []E10Row
}

// Table renders the result.
func (r E10Result) Table() *metrics.Table {
	t := metrics.NewTable("E10: loss fraction vs degree d at fixed server bandwidth (§7)",
		"d", "k", "E[loss]", "p ref", "Var[loss]", "d*Var[loss]")
	for _, row := range r.Rows {
		t.AddRow(row.D, row.K, row.MeanLoss, r.P, row.VarLoss, row.VarTimesD)
	}
	return t
}

// RunE10 executes experiment E10.
func RunE10(cfg E10Config) (E10Result, error) {
	res := E10Result{P: cfg.P}
	for di, d := range cfg.Ds {
		k := cfg.KPerD * d
		var lossSummary metrics.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(di)*1000 + int64(trial)))
			c, err := BuildCurtain(k, d, cfg.N, rng)
			if err != nil {
				return E10Result{}, err
			}
			FailIID(c, cfg.P, rng)
			top := c.Snapshot()
			// Per-node loss fractions feed the variance estimate.
			stats := perNodeLossFractions(top, d)
			for _, l := range stats {
				lossSummary.Add(l)
			}
		}
		res.Rows = append(res.Rows, E10Row{
			D: d, K: k,
			MeanLoss:  lossSummary.Mean(),
			VarLoss:   lossSummary.Var(),
			VarTimesD: lossSummary.Var() * float64(d),
		})
	}
	return res, nil
}

// perNodeLossFractions returns (d-conn)/d for every working node of the
// snapshot, with connectivity capped at d.
func perNodeLossFractions(top *core.Topology, d int) []float64 {
	conns := defect.NodeConnectivity(top, d)
	out := make([]float64, 0, top.Graph.NumNodes())
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if !top.Working[gi] {
			continue
		}
		c := conns[gi]
		if c > d {
			c = d
		}
		out = append(out, float64(d-c)/float64(d))
	}
	return out
}
