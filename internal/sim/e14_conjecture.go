package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E14Config parameterises experiment E14 (§7's open conjecture: "the
// probability of losing κ ≪ d threads of connectivity must be about the
// same as the probability of losing κ parents", which would imply failure
// effects are fully locally contained, not just at the first moment).
// The runner measures, over many iid-failure trials, the distribution of
// per-node connectivity deficits and compares it with the distribution of
// per-node failed-parent counts.
type E14Config struct {
	K, D   int
	N      int
	P      float64
	Trials int
	Seed   int64
}

// DefaultE14Config returns the standard conjecture check.
func DefaultE14Config() E14Config {
	return E14Config{K: 32, D: 4, N: 800, P: 0.03, Trials: 6, Seed: 14}
}

// E14Row compares the two distributions at one deficit level.
type E14Row struct {
	Kappa int
	// PDeficit is P(node lost exactly κ units of connectivity).
	PDeficit float64
	// PParents is P(node has exactly κ failed parents).
	PParents float64
	// Ratio is PDeficit / PParents (conjecture: ≈ 1 for κ ≪ d).
	Ratio float64
}

// E14Result holds the comparison.
type E14Result struct {
	K, D int
	P    float64
	Rows []E14Row
	// Samples is the number of working-node observations.
	Samples int
}

// Table renders the result.
func (r E14Result) Table() *metrics.Table {
	t := metrics.NewTable("E14: §7 conjecture — P(lose κ threads) vs P(lose κ parents)",
		"κ", "P(deficit=κ)", "P(failed parents=κ)", "ratio")
	for _, row := range r.Rows {
		t.AddRow(row.Kappa, row.PDeficit, row.PParents, row.Ratio)
	}
	return t
}

// RunE14 executes experiment E14.
func RunE14(cfg E14Config) (E14Result, error) {
	res := E14Result{K: cfg.K, D: cfg.D, P: cfg.P}
	deficitCount := make([]int, cfg.D+1)
	parentCount := make([]int, cfg.D+1)
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
		c, err := BuildCurtain(cfg.K, cfg.D, cfg.N, rng)
		if err != nil {
			return E14Result{}, err
		}
		FailIID(c, cfg.P, rng)
		top := c.Snapshot()
		conns := defect.NodeConnectivity(top, cfg.D)
		for _, id := range c.Nodes() {
			if c.IsFailed(id) {
				continue
			}
			gi := top.Index[id]
			conn := conns[gi]
			if conn > cfg.D {
				conn = cfg.D
			}
			deficitCount[cfg.D-conn]++
			parents, err := c.Parents(id)
			if err != nil {
				return E14Result{}, err
			}
			failed := 0
			for _, pid := range parents {
				if pid != core.ServerID && c.IsFailed(pid) {
					failed++
				}
			}
			if failed > cfg.D {
				failed = cfg.D
			}
			parentCount[failed]++
			res.Samples++
		}
	}
	for kappa := 0; kappa <= cfg.D; kappa++ {
		row := E14Row{Kappa: kappa}
		if res.Samples > 0 {
			row.PDeficit = float64(deficitCount[kappa]) / float64(res.Samples)
			row.PParents = float64(parentCount[kappa]) / float64(res.Samples)
		}
		if row.PParents > 0 {
			row.Ratio = row.PDeficit / row.PParents
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
