package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/metrics"
)

// E8Config parameterises experiment E8 (§5: adversarial batch failures).
// A p-fraction of the population are adversaries who all fail at the same
// instant. Three arrangements are compared:
//
//   - append/contiguous: rows appended in arrival order and the
//     adversaries arrived back-to-back — the §5 attack the plain scheme is
//     vulnerable to (they occupy a contiguous band of M and can sever
//     every thread below them);
//   - random-insert/contiguous: the same coordinated arrival burst, but
//     the server splices rows at random positions (§5's defense);
//   - append/random: adversaries are a uniformly random subset — the iid
//     reference the defense is supposed to reduce the attack to.
//
// The metric is the §6-style damage: the fraction of working nodes with
// reduced connectivity after the simultaneous failure.
type E8Config struct {
	K, D   int
	N      int
	P      float64
	Trials int
	Seed   int64
}

// DefaultE8Config returns the standard adversarial comparison.
func DefaultE8Config() E8Config {
	return E8Config{K: 16, D: 2, N: 400, P: 0.05, Trials: 10, Seed: 8}
}

// E8Row is one arrangement's damage.
type E8Row struct {
	Arrangement string
	// PLoss is the fraction of working nodes with connectivity < d after
	// the batch failure.
	PLoss float64
	// MeanLossFrac is the mean connectivity loss fraction.
	MeanLossFrac float64
}

// E8Result holds the comparison.
type E8Result struct {
	K, D, N int
	P       float64
	Rows    []E8Row
}

// Row returns the row for an arrangement name, or nil.
func (r E8Result) Row(name string) *E8Row {
	for i := range r.Rows {
		if r.Rows[i].Arrangement == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the result.
func (r E8Result) Table() *metrics.Table {
	t := metrics.NewTable("E8: adversarial batch failure — insert-mode defense (§5)",
		"arrangement", "P(conn loss)", "E[loss frac]")
	for _, row := range r.Rows {
		t.AddRow(row.Arrangement, row.PLoss, row.MeanLossFrac)
	}
	return t
}

// RunE8 executes experiment E8.
func RunE8(cfg E8Config) (E8Result, error) {
	res := E8Result{K: cfg.K, D: cfg.D, N: cfg.N, P: cfg.P}
	m := int(float64(cfg.N) * cfg.P)
	if m < 1 {
		m = 1
	}

	type arrangement struct {
		name       string
		mode       core.InsertMode
		contiguous bool
	}
	arrangements := []arrangement{
		{"append/contiguous", core.InsertAppend, true},
		{"random-insert/contiguous", core.InsertRandom, true},
		{"append/random-subset", core.InsertAppend, false},
	}

	for ai, a := range arrangements {
		var lossSum, fracSum float64
		var trials int
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ai)*1000 + int64(trial)))
			c, err := core.New(cfg.K, cfg.D, rng, core.WithInsertMode(a.mode))
			if err != nil {
				return E8Result{}, err
			}
			ids := make([]core.NodeID, cfg.N)
			for i := range ids {
				ids[i] = c.Join()
			}
			var adversaries []core.NodeID
			if a.contiguous {
				// The burst arrives in the middle of the join sequence.
				start := cfg.N/2 - m/2
				adversaries = ids[start : start+m]
			} else {
				perm := rng.Perm(cfg.N)
				for _, i := range perm[:m] {
					adversaries = append(adversaries, ids[i])
				}
			}
			FailSet(c, adversaries)
			stats := MeasureConnectivity(c.Snapshot())
			if stats.Working == 0 {
				continue
			}
			lossSum += 1 - float64(stats.FullCount)/float64(stats.Working)
			fracSum += stats.MeanLossFrac
			trials++
		}
		row := E8Row{Arrangement: a.name}
		if trials > 0 {
			row.PLoss = lossSum / float64(trials)
			row.MeanLossFrac = fracSum / float64(trials)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
