package sim

import (
	"math"
	"math/rand"
	"testing"

	"ncast/internal/core"
)

func TestChurnValidation(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	c, err := core.New(8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChurn(c, ChurnConfig{P: -0.1}, rng); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewChurn(c, ChurnConfig{P: 1.5}, rng); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := NewChurn(c, ChurnConfig{RepairDelay: -1}, rng); err == nil {
		t.Error("negative repair delay accepted")
	}
	if _, err := NewChurn(c, ChurnConfig{MaxNodes: -1}, rng); err == nil {
		t.Error("negative cap accepted")
	}
}

func TestChurnPopulationCap(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	c, err := core.New(8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChurn(c, ChurnConfig{P: 0.1, MaxNodes: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ch.Advance()
		if c.NumNodes() > 51 { // transiently one over before eviction
			t.Fatalf("step %d: population %d exceeds cap", i, c.NumNodes())
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if ch.Step() != 500 {
		t.Fatalf("Step = %d", ch.Step())
	}
}

func TestChurnRepairDelay(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	c, err := core.New(8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChurn(c, ChurnConfig{P: 0.5, RepairDelay: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		ch.Advance()
	}
	// With repairs, failed rows older than the delay are gone: the failed
	// population stays bounded near p*RepairDelay.
	if got := c.NumFailed(); got > 15 {
		t.Fatalf("failed population %d not bounded by repair", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFailIIDAndFailSet(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	c, err := BuildCurtain(8, 2, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	failed := FailIID(c, 0.1, rng)
	if len(failed) == 0 || len(failed) > 60 {
		t.Fatalf("iid failures = %d, implausible for p=0.1, n=200", len(failed))
	}
	if c.NumFailed() != len(failed) {
		t.Fatal("NumFailed mismatch")
	}
	// FailSet skips already-failed and unknown ids.
	FailSet(c, append(failed[:2:2], core.NodeID(99999)))
	if c.NumFailed() != len(failed) {
		t.Fatal("FailSet double-failed or failed a ghost")
	}
}

func TestMeasureConnectivityFailureFree(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	c, err := BuildCurtain(12, 3, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	stats := MeasureConnectivity(c.Snapshot())
	if stats.Working != 80 || stats.FullCount != 80 || stats.MinConn != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MeanLossFrac != 0 || stats.VarLossFrac != 0 {
		t.Fatalf("loss on failure-free curtain: %+v", stats)
	}
}

func TestMeasureConnectivitySample(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	c, err := BuildCurtain(12, 3, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	FailIID(c, 0.2, rng)
	top := c.Snapshot()
	exact := MeasureConnectivity(top)

	// A budget that covers the population must be the exact sweep.
	if got := MeasureConnectivitySample(top, 10_000, 1); got != exact {
		t.Fatalf("oversized sample diverged: %+v vs %+v", got, exact)
	}
	// A non-positive budget means "no sampling".
	if got := MeasureConnectivitySample(top, -1, 1); got != exact {
		t.Fatalf("negative budget diverged: %+v vs %+v", got, exact)
	}

	// A real sample measures exactly maxNodes nodes, deterministically
	// per seed, and stays within the exact sweep's bounds.
	s1 := MeasureConnectivitySample(top, 40, 42)
	s2 := MeasureConnectivitySample(top, 40, 42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if s1.Working != 40 {
		t.Fatalf("sampled %d nodes, want 40", s1.Working)
	}
	if s1.MinConn < exact.MinConn || s1.FullCount > s1.Working {
		t.Fatalf("sample out of bounds: sample %+v exact %+v", s1, exact)
	}
}

func TestKSStatistic(t *testing.T) {
	t.Parallel()
	same := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(same, same); d != 0 {
		t.Fatalf("KS(same,same) = %v", d)
	}
	a := []float64{1, 1, 1}
	b := []float64{2, 2, 2}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS(disjoint) = %v, want 1", d)
	}
	if d := KSStatistic(nil, a); d != 0 {
		t.Fatalf("KS with empty = %v", d)
	}
	// Threshold sanity.
	if th := KSThreshold(100, 100); th < 0.1 || th > 0.5 {
		t.Fatalf("threshold = %v", th)
	}
	if th := KSThreshold(0, 5); th != 1 {
		t.Fatalf("degenerate threshold = %v", th)
	}
}

func TestRunE1(t *testing.T) {
	t.Parallel()
	cfg := E1Config{
		Configs: []KD{{8, 2}, {12, 3}},
		Sizes:   []int{50, 150},
		Seed:    1,
	}
	res, err := RunE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FracFullConn != 1 {
			t.Fatalf("k=%d d=%d N=%d: frac full = %v, want 1 (failure-free)",
				row.K, row.D, row.N, row.FracFullConn)
		}
		if row.MinConn != row.D {
			t.Fatalf("min conn = %d, want %d", row.MinConn, row.D)
		}
	}
	if res.Table().NumRows() != 4 {
		t.Fatal("table rows")
	}
}

func TestRunE2Theorem4Shape(t *testing.T) {
	t.Parallel()
	cfg := E2Config{
		K: 16, D: 2,
		Ps:           []float64{0.02, 0.05},
		Steps:        900,
		BurnIn:       300,
		MeasureEvery: 30,
		Seed:         2,
	}
	res, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Measurements == 0 {
			t.Fatal("no measurements")
		}
		// Theorem 4: E[B]/A <= (1+eps)pd. Allow generous sampling slack
		// but demand the right order of magnitude and the lower side too
		// (defects do occur, so b should not be ~0 at these p).
		if row.Ratio > 3.0 {
			t.Fatalf("p=%v: ratio E[B]/A / pd = %v, far above Theorem 4", row.P, row.Ratio)
		}
		if row.MeanB <= 0 {
			t.Fatalf("p=%v: mean b = %v, expected positive defect", row.P, row.MeanB)
		}
	}
	// b should grow with p.
	if res.Rows[1].MeanB <= res.Rows[0].MeanB {
		t.Fatalf("b not increasing in p: %v vs %v", res.Rows[0].MeanB, res.Rows[1].MeanB)
	}
}

func TestRunE3CollapseGrowsWithK(t *testing.T) {
	t.Parallel()
	cfg := E3Config{
		D:           2,
		Ks:          []int{4, 8},
		P:           0.28,
		Threshold:   0.5,
		Trials:      6,
		MaxSteps:    4000,
		CheckEvery:  10,
		Samples:     60,
		MaxNodes:    150,
		RepairDelay: 150,
		Seed:        3,
	}
	res, err := RunE3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	// Theorem 5 shape: collapse time grows (exponentially) with k.
	if res.Rows[1].MedianStep <= res.Rows[0].MedianStep {
		t.Fatalf("median collapse steps did not grow with k: %v -> %v",
			res.Rows[0].MedianStep, res.Rows[1].MedianStep)
	}
	if res.FitOK && res.Slope <= 0 {
		t.Fatalf("log collapse-time slope = %v, want positive", res.Slope)
	}
}

func TestRunE4Lemma6Bound(t *testing.T) {
	t.Parallel()
	cfg := E4Config{K: 10, D: 2, P: 0.25, Steps: 150, Seed: 4}
	res, err := RunE4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.MaxJump) > res.Bound+1e-9 {
		t.Fatalf("observed jump %d exceeds Lemma 6 bound %v", res.MaxJump, res.Bound)
	}
	// The extremal case attains the bound exactly.
	if math.Abs(float64(res.ExtremalJump)-res.Bound) > 1e-9 {
		t.Fatalf("extremal jump %d != bound %v", res.ExtremalJump, res.Bound)
	}
}

func TestRunE5Lemma1Invariance(t *testing.T) {
	t.Parallel()
	cfg := E5Config{K: 8, D: 2, N: 20, M: 10, P: 0.1, Trials: 120, Seed: 5}
	res, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invariant() {
		t.Fatalf("Lemma 1 invariance rejected: KS defect %v, KS server-deg %v, threshold %v",
			res.KSDefect, res.KSServerDeg, res.Threshold)
	}
}

func TestRunE6LocalityAndScaleInvariance(t *testing.T) {
	t.Parallel()
	cfg := E6Config{
		K: 16, D: 2, P: 0.03,
		Sizes:  []int{150, 600},
		Trials: 4,
		Seed:   6,
	}
	res, err := RunE6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Locality: losing connectivity without a failed parent must be
		// far rarer than overall loss.
		if row.PLossNoParent > 0.5*row.PLoss+0.01 {
			t.Fatalf("N=%d: P(loss|no parent failed)=%v not small vs P(loss)=%v",
				row.N, row.PLossNoParent, row.PLoss)
		}
		// P(loss) should be near the parent-failure probability ~ pd.
		if row.PLoss > 3*res.P*float64(res.D)+0.02 {
			t.Fatalf("N=%d: P(loss)=%v far above pd=%v", row.N, row.PLoss, res.P*float64(res.D))
		}
	}
	// Scalability: quadrupling N must not blow up the loss probability.
	small, large := res.Rows[0].PLoss, res.Rows[1].PLoss
	if large > 2*small+0.02 {
		t.Fatalf("P(loss) grew with N: %v -> %v", small, large)
	}
}

func TestRunE7ThroughputOrdering(t *testing.T) {
	t.Parallel()
	cfg := E7Config{
		N: 60, K: 10, D: 2, TreeFanout: 3, FECData: 1,
		Ps:             []float64{0, 0.1},
		Trials:         8,
		IncludeEdmonds: true,
		Seed:           7,
	}
	res, err := RunE7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	noFail, fail := res.Rows[0].Means, res.Rows[1].Means
	// With no failures RLNC and Edmonds deliver 1.0; FEC pays redundancy.
	if noFail["rlnc"] != 1 || noFail["edmonds-static"] != 1 {
		t.Fatalf("no-failure rates: %v", noFail)
	}
	if noFail["fec-1/2"] >= 1 {
		t.Fatalf("FEC rate %v did not pay redundancy", noFail["fec-1/2"])
	}
	// Under failures: the paper's ordering — RLNC >= static Edmonds,
	// RLNC > chain.
	if fail["rlnc"] < fail["edmonds-static"] {
		t.Fatalf("rlnc %v below edmonds-static %v", fail["rlnc"], fail["edmonds-static"])
	}
	if fail["rlnc"] <= fail["chain"] {
		t.Fatalf("rlnc %v not above chain %v", fail["rlnc"], fail["chain"])
	}
}

func TestRunE8AdversarialDefense(t *testing.T) {
	t.Parallel()
	cfg := E8Config{K: 10, D: 2, N: 200, P: 0.06, Trials: 6, Seed: 8}
	res, err := RunE8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack := res.Row("append/contiguous")
	defended := res.Row("random-insert/contiguous")
	reference := res.Row("append/random-subset")
	if attack == nil || defended == nil || reference == nil {
		t.Fatal("missing arrangements")
	}
	// §5: the contiguous attack on append-mode hurts more than the same
	// burst under random insertion, which behaves like random failures.
	if attack.MeanLossFrac <= defended.MeanLossFrac {
		t.Fatalf("attack loss %v not above defended loss %v",
			attack.MeanLossFrac, defended.MeanLossFrac)
	}
	if defended.MeanLossFrac > 3*reference.MeanLossFrac+0.02 {
		t.Fatalf("defended loss %v not comparable to iid reference %v",
			defended.MeanLossFrac, reference.MeanLossFrac)
	}
}

func TestRunE9DelayShapes(t *testing.T) {
	t.Parallel()
	cfg := E9Config{
		K: 8, D: 2,
		Sizes:  []int{100, 400},
		Trials: 2,
		Seed:   9,
	}
	res, err := RunE9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Curtain depth grows ~linearly: 4x nodes => ~4x depth (allow 2.5x).
	c0, c1 := res.Rows[0].CurtainMax, res.Rows[1].CurtainMax
	if c1 < 2.5*c0 {
		t.Fatalf("curtain depth not linear: %v -> %v", c0, c1)
	}
	// Random graph depth grows slowly: 4x nodes => well under 2x depth.
	r0, r1 := res.Rows[0].RandMax, res.Rows[1].RandMax
	if r1 > 2*r0 {
		t.Fatalf("random graph depth not logarithmic: %v -> %v", r0, r1)
	}
	// And the absolute separation at the larger size.
	if r1*2 > c1 {
		t.Fatalf("random graph depth %v not clearly below curtain %v", r1, c1)
	}
}

func TestRunE10DegreeSweep(t *testing.T) {
	t.Parallel()
	cfg := E10Config{
		KPerD: 8, Ds: []int{2, 8},
		N: 150, P: 0.04, Trials: 5, Seed: 10,
	}
	res, err := RunE10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// §7: expected loss ≈ p for every d.
		if row.MeanLoss > 3*res.P+0.02 || row.MeanLoss <= 0 {
			t.Fatalf("d=%d: mean loss %v implausible vs p=%v", row.D, row.MeanLoss, res.P)
		}
	}
	// Variance falls with d.
	if res.Rows[1].VarLoss >= res.Rows[0].VarLoss {
		t.Fatalf("variance did not fall with d: %v -> %v",
			res.Rows[0].VarLoss, res.Rows[1].VarLoss)
	}
}

func TestRunE11Heterogeneous(t *testing.T) {
	t.Parallel()
	cfg := E11Config{
		K: 16, DLow: 2, DHigh: 6, FracHigh: 0.3,
		N: 150, P: 0.03, Trials: 4, Seed: 11,
	}
	res, err := RunE11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("rows")
	}
	dsl, t1 := res.Rows[0], res.Rows[1]
	if dsl.Nodes == 0 || t1.Nodes == 0 {
		t.Fatal("empty class")
	}
	// Both classes retain most of their bandwidth.
	if dsl.DeliveredFrac < 0.85 || t1.DeliveredFrac < 0.85 {
		t.Fatalf("class delivery too low: dsl %v t1 %v", dsl.DeliveredFrac, t1.DeliveredFrac)
	}
	// T1 gets proportionally more absolute bandwidth (≈3x).
	if t1.AbsUnits < 2*dsl.AbsUnits {
		t.Fatalf("t1 abs units %v not well above dsl %v", t1.AbsUnits, dsl.AbsUnits)
	}
}

func TestRunE12FieldAblation(t *testing.T) {
	t.Parallel()
	cfg := DefaultE12Config()
	cfg.GenSizes = []int{16, 32}
	cfg.Trials = 5
	cfg.PacketSize = 256
	res, err := RunE12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(field string, h int) *E12Row {
		for i := range res.Rows {
			if res.Rows[i].Field == field && res.Rows[i].H == h {
				return &res.Rows[i]
			}
		}
		t.Fatalf("row %s/%d missing", field, h)
		return nil
	}
	// GF(2) wastes noticeably more packets than GF(256); GF(256) is near
	// optimal; GF(65536) at least as good.
	g2, g256, g65536 := get("GF(2)", 32), get("GF(256)", 32), get("GF(65536)", 32)
	if g2.MeanExtra <= g256.MeanExtra {
		t.Fatalf("GF(2) extra %v not above GF(256) %v", g2.MeanExtra, g256.MeanExtra)
	}
	if g256.MeanExtra > 0.5 {
		t.Fatalf("GF(256) extra %v not near optimal", g256.MeanExtra)
	}
	if g65536.MeanExtra > g256.MeanExtra+0.2 {
		t.Fatalf("GF(65536) extra %v worse than GF(256) %v", g65536.MeanExtra, g256.MeanExtra)
	}
	// Overhead ordering: GF(2) coefficients are 16x smaller than GF(256).
	if g2.OverheadBytes >= g256.OverheadBytes || g256.OverheadBytes >= g65536.OverheadBytes {
		t.Fatalf("overhead ordering wrong: %d %d %d",
			g2.OverheadBytes, g256.OverheadBytes, g65536.OverheadBytes)
	}
}

func TestRunE13CongestionEpisode(t *testing.T) {
	t.Parallel()
	cfg := E13Config{K: 12, D: 3, N: 80, FloorDegree: 1, Trials: 4, Seed: 13}
	res, err := RunE13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, congested, recovered := res.Phase("before"), res.Phase("congested"), res.Phase("recovered")
	if before == nil || congested == nil || recovered == nil {
		t.Fatal("missing phases")
	}
	if before.NodeConn != float64(cfg.D) {
		t.Fatalf("before conn = %v, want %d", before.NodeConn, cfg.D)
	}
	if congested.NodeConn != float64(cfg.FloorDegree) {
		t.Fatalf("congested conn = %v, want %d", congested.NodeConn, cfg.FloorDegree)
	}
	if recovered.NodeConn != float64(cfg.D) {
		t.Fatalf("recovered conn = %v, want %d", recovered.NodeConn, cfg.D)
	}
	// Bystanders unharmed throughout.
	for _, p := range res.Phases {
		if p.OthersFullFrac < 0.999 {
			t.Fatalf("phase %s: bystanders hurt: %v", p.Phase, p.OthersFullFrac)
		}
	}
}

func TestRunE14ConjectureShape(t *testing.T) {
	t.Parallel()
	cfg := E14Config{K: 16, D: 2, N: 300, P: 0.04, Trials: 4, Seed: 14}
	res, err := RunE14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != cfg.D+1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// kappa = 0 dominates and the two distributions agree closely there.
	r0 := res.Rows[0]
	if r0.PDeficit < 0.85 || r0.PParents < 0.85 {
		t.Fatalf("kappa=0 masses too small: %+v", r0)
	}
	if r0.Ratio < 0.95 || r0.Ratio > 1.05 {
		t.Fatalf("kappa=0 ratio %v outside [0.95,1.05]", r0.Ratio)
	}
	// kappa = 1: the conjecture says the ratio is near 1; allow slack for
	// finite-size effects but demand the right order of magnitude.
	r1 := res.Rows[1]
	if r1.PParents > 0 && (r1.Ratio < 0.5 || r1.Ratio > 2) {
		t.Fatalf("kappa=1 ratio %v far from 1", r1.Ratio)
	}
}

func TestRunE15GossipComparable(t *testing.T) {
	t.Parallel()
	cfg := E15Config{K: 12, D: 2, N: 200, P: 0.03, Trials: 3, ShuffleEvery: 10, Seed: 15}
	res, err := RunE15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gossipRow, curtain := res.Row("gossip"), res.Row("curtain")
	if gossipRow == nil || curtain == nil {
		t.Fatal("missing rows")
	}
	// The tracker-free overlay must keep essentially everyone connected
	// after purely local repair.
	if gossipRow.FracConnected < 0.99 {
		t.Fatalf("gossip connected fraction %v", gossipRow.FracConnected)
	}
	// And with logarithmic depth, far below the curtain's linear depth.
	if gossipRow.MaxDepth*2 > curtain.MaxDepth {
		t.Fatalf("gossip depth %v not clearly below curtain %v", gossipRow.MaxDepth, curtain.MaxDepth)
	}
	// Central designs with tracker repair stay fully healthy.
	if curtain.FracFullRate < 0.999 {
		t.Fatalf("curtain full-rate fraction %v after repair", curtain.FracFullRate)
	}
}
