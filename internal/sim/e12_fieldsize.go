package sim

import (
	"fmt"
	"math/rand"

	"ncast/internal/gf"
	"ncast/internal/metrics"
	"ncast/internal/rlnc"
)

// E12Config parameterises experiment E12 (the Chou–Wu–Jain practicality
// ablation underlying the paper's data plane): decode efficiency and
// per-packet overhead as a function of the coding field and generation
// size. Packets travel server -> recoder -> receiver, the minimal path
// that exercises re-mixing; the receiver counts how many packets it needs
// beyond the information-theoretic minimum h.
type E12Config struct {
	Fields   []gf.Field
	GenSizes []int
	// PacketSize is the payload length in bytes.
	PacketSize int
	Trials     int
	Seed       int64
}

// DefaultE12Config returns the standard field-size ablation.
func DefaultE12Config() E12Config {
	return E12Config{
		Fields:     []gf.Field{gf.F2, gf.F256, gf.F65536},
		GenSizes:   []int{16, 32, 64, 128},
		PacketSize: 1024,
		Trials:     10,
		Seed:       12,
	}
}

// E12Row is one (field, generation size) cell.
type E12Row struct {
	Field string
	H     int
	// MeanExtra is the mean number of packets beyond h needed to decode.
	MeanExtra float64
	// OverheadBytes is the per-packet header+coefficient overhead.
	OverheadBytes int
	// OverheadFrac is OverheadBytes / (OverheadBytes + PacketSize).
	OverheadFrac float64
}

// E12Result holds the ablation grid.
type E12Result struct {
	PacketSize int
	Rows       []E12Row
}

// Table renders the result.
func (r E12Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E12: field-size ablation (payload %d B, through one recoder)", r.PacketSize),
		"field", "h", "extra pkts to decode", "overhead B/pkt", "overhead frac")
	for _, row := range r.Rows {
		t.AddRow(row.Field, row.H, row.MeanExtra, row.OverheadBytes, row.OverheadFrac)
	}
	return t
}

// RunE12 executes experiment E12.
func RunE12(cfg E12Config) (E12Result, error) {
	res := E12Result{PacketSize: cfg.PacketSize}
	for fi, f := range cfg.Fields {
		for _, h := range cfg.GenSizes {
			var extra metrics.Summary
			for trial := 0; trial < cfg.Trials; trial++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(fi)*1000 + int64(h)*10 + int64(trial)))
				e, err := decodeCost(f, h, cfg.PacketSize, rng)
				if err != nil {
					return E12Result{}, err
				}
				extra.Add(float64(e))
			}
			oh := rlnc.OverheadBytes(f, h)
			res.Rows = append(res.Rows, E12Row{
				Field:         f.Name(),
				H:             h,
				MeanExtra:     extra.Mean(),
				OverheadBytes: oh,
				OverheadFrac:  float64(oh) / float64(oh+cfg.PacketSize),
			})
		}
	}
	return res, nil
}

// decodeCost pushes random packets through one recoder until the receiver
// decodes, returning how many packets beyond h the receiver consumed.
func decodeCost(f gf.Field, h, size int, rng *rand.Rand) (int, error) {
	src := make([][]byte, h)
	for i := range src {
		src[i] = make([]byte, size)
		rng.Read(src[i])
	}
	enc, err := rlnc.NewEncoder(f, 0, src)
	if err != nil {
		return 0, err
	}
	rec, err := rlnc.NewRecoder(f, 0, h, size)
	if err != nil {
		return 0, err
	}
	dec, err := rlnc.NewDecoder(f, 0, h, size)
	if err != nil {
		return 0, err
	}
	// Seed the recoder with enough rank, as an upstream node would be.
	for rec.Rank() < h {
		if _, err := rec.Add(enc.Packet(rng)); err != nil {
			return 0, err
		}
	}
	received := 0
	for !dec.Complete() {
		p, ok := rec.Packet(rng)
		if !ok {
			return 0, fmt.Errorf("sim: recoder empty")
		}
		if _, err := dec.Add(p); err != nil {
			return 0, err
		}
		received++
		if received > 50*h {
			return 0, fmt.Errorf("sim: decode not converging over %s", f.Name())
		}
	}
	return received - h, nil
}
