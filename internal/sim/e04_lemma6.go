package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E4Config parameterises experiment E4 (Lemma 6: a single arrival changes
// the total defect by at most (d²/k)·A, with equality attained by a failed
// node arriving at the very beginning). The runner measures the exact
// defect before and after every arrival of a stressed process and tracks
// the largest observed jump.
type E4Config struct {
	K     int
	D     int
	P     float64
	Steps int
	Seed  int64
}

// DefaultE4Config returns the standard Lemma 6 check.
func DefaultE4Config() E4Config {
	return E4Config{K: 12, D: 2, P: 0.2, Steps: 400, Seed: 4}
}

// E4Result reports the observed maximum jump against the bound.
type E4Result struct {
	K, D int
	// MaxJump is the largest observed |B' - B| over all arrivals.
	MaxJump int
	// Bound is Lemma 6's (d²/k)·A.
	Bound float64
	// ExtremalJump is |B' - B| for a single failed node arriving on an
	// empty curtain (the lemma's equality case).
	ExtremalJump int
	Steps        int
}

// Table renders the result.
func (r E4Result) Table() *metrics.Table {
	t := metrics.NewTable("E4: Lemma 6 — max single-arrival defect jump",
		"k", "d", "steps", "max |B'-B|", "bound (d^2/k)A", "extremal case")
	t.AddRow(r.K, r.D, r.Steps, r.MaxJump, r.Bound, r.ExtremalJump)
	return t
}

// RunE4 executes experiment E4.
func RunE4(cfg E4Config) (E4Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := E4Result{
		K: cfg.K, D: cfg.D, Steps: cfg.Steps,
		Bound: float64(cfg.D) * float64(cfg.D) / float64(cfg.K) * defect.Binomial(cfg.K, cfg.D),
	}

	// Extremal case: one failed node on an empty curtain.
	ce, err := core.New(cfg.K, cfg.D, rng)
	if err != nil {
		return E4Result{}, err
	}
	ce.JoinTagged(true)
	m, err := defect.NewMeasurer(ce.Snapshot(), cfg.D)
	if err != nil {
		return E4Result{}, err
	}
	dres, err := m.Exact()
	if err != nil {
		return E4Result{}, err
	}
	res.ExtremalJump = dres.TotalDefect()

	// Stressed process with per-arrival measurement.
	c, err := core.New(cfg.K, cfg.D, rng)
	if err != nil {
		return E4Result{}, err
	}
	// Pure arrival process: no repairs, no population cap, so every step
	// is exactly one row insertion — the operation Lemma 6 bounds.
	churn, err := NewChurn(c, ChurnConfig{P: cfg.P}, rng)
	if err != nil {
		return E4Result{}, err
	}
	prev := 0
	for step := 0; step < cfg.Steps; step++ {
		churn.Advance()
		m, err := defect.NewMeasurer(c.Snapshot(), cfg.D)
		if err != nil {
			return E4Result{}, err
		}
		dres, err := m.Exact()
		if err != nil {
			return E4Result{}, err
		}
		cur := dres.TotalDefect()
		jump := cur - prev
		if jump < 0 {
			jump = -jump
		}
		if jump > res.MaxJump {
			res.MaxJump = jump
		}
		prev = cur
	}
	return res, nil
}
