package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E6Config parameterises experiment E6 (§1/§7 scalability and locality
// claims: with iid failures of probability p, a working node loses
// connectivity with probability about p·d — essentially only through its
// own parents — and that probability does NOT grow with the network size).
// For each N, networks are built failure-free, failures are injected iid,
// and each working node's connectivity loss is attributed: does the node
// have a failed parent, or did it lose connectivity purely through deeper
// ancestors?
type E6Config struct {
	K      int
	D      int
	P      float64
	Sizes  []int
	Trials int
	Seed   int64
}

// DefaultE6Config returns the standard locality sweep.
func DefaultE6Config() E6Config {
	return E6Config{
		K:      32,
		D:      4,
		P:      0.02,
		Sizes:  []int{200, 500, 1000, 2000, 4000},
		Trials: 5,
		Seed:   6,
	}
}

// E6Row is one network size's measurements.
type E6Row struct {
	N int
	// PLoss is P(working node has connectivity < d).
	PLoss float64
	// PParentFail is P(working node has >= 1 failed parent) — the
	// unavoidable local term, approximately p·d.
	PParentFail float64
	// PLossNoParent is P(loss | no failed parent): the non-local leakage
	// that Theorem 4 says is negligible.
	PLossNoParent float64
	// MeanLossFrac is E[(d-conn)/d] over working nodes (≈ p, §7).
	MeanLossFrac float64
	Working      int
}

// E6Result holds the sweep.
type E6Result struct {
	K, D int
	P    float64
	Rows []E6Row
}

// Table renders the result.
func (r E6Result) Table() *metrics.Table {
	t := metrics.NewTable("E6: locality & scalability — P(connectivity loss) vs N",
		"N", "P(loss)", "P(parent failed)", "P(loss | no parent failed)", "E[loss frac]", "p*d ref")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.PLoss, row.PParentFail, row.PLossNoParent, row.MeanLossFrac, r.P*float64(r.D))
	}
	return t
}

// RunE6 executes experiment E6.
func RunE6(cfg E6Config) (E6Result, error) {
	res := E6Result{K: cfg.K, D: cfg.D, P: cfg.P}
	for ni, n := range cfg.Sizes {
		var loss, parentFail, lossNoParent, noParent, working int
		var lossFracSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ni)*1000 + int64(trial)))
			c, err := BuildCurtain(cfg.K, cfg.D, n, rng)
			if err != nil {
				return E6Result{}, err
			}
			FailIID(c, cfg.P, rng)
			top := c.Snapshot()
			conns := defect.NodeConnectivity(top, cfg.D)
			for _, id := range c.Nodes() {
				if c.IsFailed(id) {
					continue
				}
				gi := top.Index[id]
				working++
				conn := conns[gi]
				if conn > cfg.D {
					conn = cfg.D
				}
				lossFracSum += float64(cfg.D-conn) / float64(cfg.D)
				lost := conn < cfg.D
				if lost {
					loss++
				}
				parents, err := c.Parents(id)
				if err != nil {
					return E6Result{}, err
				}
				hasFailedParent := false
				for _, pid := range parents {
					if pid != core.ServerID && c.IsFailed(pid) {
						hasFailedParent = true
						break
					}
				}
				if hasFailedParent {
					parentFail++
				} else {
					noParent++
					if lost {
						lossNoParent++
					}
				}
			}
		}
		row := E6Row{N: n, Working: working}
		if working > 0 {
			row.PLoss = float64(loss) / float64(working)
			row.PParentFail = float64(parentFail) / float64(working)
			row.MeanLossFrac = lossFracSum / float64(working)
		}
		if noParent > 0 {
			row.PLossNoParent = float64(lossNoParent) / float64(noParent)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
