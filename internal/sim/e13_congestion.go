package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E13Config parameterises experiment E13 (§5 congestion handling: a
// congested node picks a child and a parent and joins them directly,
// reducing its degree; when the congestion clears it asks the server to
// turn a zero of its row back into a one). The runner walks one node
// through the full episode — congest (drop to a floor degree), then
// recover (regrow to d) — and measures the node's own rate plus the rest
// of the network's health at each phase.
type E13Config struct {
	K, D int
	N    int
	// FloorDegree is the degree the congested node backs off to.
	FloorDegree int
	Trials      int
	Seed        int64
}

// DefaultE13Config returns the standard congestion episode.
func DefaultE13Config() E13Config {
	return E13Config{K: 16, D: 4, N: 200, FloorDegree: 1, Trials: 8, Seed: 13}
}

// E13Phase is one phase's measurements.
type E13Phase struct {
	Phase string
	// NodeConn is the congested node's mean connectivity.
	NodeConn float64
	// NodeDegree is its mean degree.
	NodeDegree float64
	// OthersFullFrac is the fraction of other working nodes at full
	// connectivity (the episode must not hurt bystanders).
	OthersFullFrac float64
}

// E13Result holds the three phases.
type E13Result struct {
	K, D   int
	Phases []E13Phase
}

// Phase returns the named phase, or nil.
func (r E13Result) Phase(name string) *E13Phase {
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Table renders the result.
func (r E13Result) Table() *metrics.Table {
	t := metrics.NewTable("E13: congestion episode — degree backoff and regrowth (§5)",
		"phase", "node conn", "node degree", "others at full conn")
	for _, p := range r.Phases {
		t.AddRow(p.Phase, p.NodeConn, p.NodeDegree, p.OthersFullFrac)
	}
	return t
}

// RunE13 executes experiment E13.
func RunE13(cfg E13Config) (E13Result, error) {
	res := E13Result{K: cfg.K, D: cfg.D}
	type acc struct {
		conn, deg, others float64
		n                 int
	}
	accs := map[string]*acc{"before": {}, "congested": {}, "recovered": {}}

	measure := func(c *core.Curtain, id core.NodeID, name string) error {
		top := c.Snapshot()
		conns := defect.NodeConnectivity(top, cfg.D)
		d, err := c.Degree(id)
		if err != nil {
			return err
		}
		conn := conns[top.Index[id]]
		if conn > d {
			conn = d
		}
		full, others := 0, 0
		for _, oid := range c.Nodes() {
			if oid == id || c.IsFailed(oid) {
				continue
			}
			od, err := c.Degree(oid)
			if err != nil {
				return err
			}
			oc := conns[top.Index[oid]]
			others++
			if oc >= od {
				full++
			}
		}
		a := accs[name]
		a.conn += float64(conn)
		a.deg += float64(d)
		if others > 0 {
			a.others += float64(full) / float64(others)
		}
		a.n++
		return nil
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
		c, err := BuildCurtain(cfg.K, cfg.D, cfg.N/2, rng)
		if err != nil {
			return E13Result{}, err
		}
		id := c.Join() // the node that will congest, mid-curtain
		for i := 0; i < cfg.N/2; i++ {
			c.Join()
		}
		if err := measure(c, id, "before"); err != nil {
			return E13Result{}, err
		}
		for {
			d, err := c.Degree(id)
			if err != nil {
				return E13Result{}, err
			}
			if d <= cfg.FloorDegree {
				break
			}
			if _, err := c.ReduceDegree(id); err != nil {
				return E13Result{}, err
			}
		}
		if err := measure(c, id, "congested"); err != nil {
			return E13Result{}, err
		}
		for {
			d, err := c.Degree(id)
			if err != nil {
				return E13Result{}, err
			}
			if d >= cfg.D {
				break
			}
			if _, err := c.IncreaseDegree(id); err != nil {
				return E13Result{}, err
			}
		}
		if err := measure(c, id, "recovered"); err != nil {
			return E13Result{}, err
		}
	}

	for _, name := range []string{"before", "congested", "recovered"} {
		a := accs[name]
		p := E13Phase{Phase: name}
		if a.n > 0 {
			p.NodeConn = a.conn / float64(a.n)
			p.NodeDegree = a.deg / float64(a.n)
			p.OthersFullFrac = a.others / float64(a.n)
		}
		res.Phases = append(res.Phases, p)
	}
	return res, nil
}
