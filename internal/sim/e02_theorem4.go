package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E2Config parameterises experiment E2 (Theorem 4: before collapse,
// E[B^t]/A <= (1+eps)·p·d). The simulator runs the §4 arrival process —
// every arrival is pre-tagged failed with probability p — and measures the
// exact normalized defect b = B/A at intervals after burn-in. The paper
// predicts the steady-state mean of b to sit at the drift root
// a1 = pd/((1-p)(1-d²/k))·(1+eps), slightly above pd and far below the
// collapse region.
type E2Config struct {
	K     int
	D     int
	Ps    []float64
	Steps int
	// BurnIn is the number of arrivals ignored before measuring.
	BurnIn int
	// MeasureEvery spaces exact defect measurements (they cost C(k,d)
	// max-flows each).
	MeasureEvery int
	Seed         int64
}

// DefaultE2Config returns the standard Theorem 4 sweep.
func DefaultE2Config() E2Config {
	return E2Config{
		K:            24,
		D:            2,
		Ps:           []float64{0.005, 0.01, 0.02, 0.05},
		Steps:        2500,
		BurnIn:       800,
		MeasureEvery: 25,
		Seed:         2,
	}
}

// E2Row is the measured steady state for one p.
type E2Row struct {
	P float64
	// MeanB is the time-averaged normalized defect E[B]/A.
	MeanB float64
	// PD is the paper's reference level p·d.
	PD float64
	// Ratio is MeanB / PD, which Theorem 4 bounds by 1+eps.
	Ratio float64
	// FracDefective is the time-averaged probability a joining node picks
	// a defective tuple (Lemma 2).
	FracDefective float64
	Measurements  int
}

// E2Result holds the sweep.
type E2Result struct {
	K, D int
	Rows []E2Row
}

// Table renders the result.
func (r E2Result) Table() *metrics.Table {
	t := metrics.NewTable("E2: Theorem 4 — steady-state E[B]/A vs p·d",
		"k", "d", "p", "E[B]/A", "p*d", "ratio", "P(defective tuple)")
	for _, row := range r.Rows {
		t.AddRow(r.K, r.D, row.P, row.MeanB, row.PD, row.Ratio, row.FracDefective)
	}
	return t
}

// RunE2 executes experiment E2.
func RunE2(cfg E2Config) (E2Result, error) {
	res := E2Result{K: cfg.K, D: cfg.D}
	for i, p := range cfg.Ps {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1000))
		c, err := core.New(cfg.K, cfg.D, rng)
		if err != nil {
			return E2Result{}, err
		}
		// Pure §4 growth process: no repairs, no population cap. A cap
		// that evicts only working nodes would let failures accumulate
		// and inflate the standing failure density far beyond p.
		churn, err := NewChurn(c, ChurnConfig{P: p}, rng)
		if err != nil {
			return E2Result{}, err
		}
		var bSum, defSum float64
		count := 0
		for step := 0; step < cfg.Steps; step++ {
			churn.Advance()
			if step < cfg.BurnIn || (step-cfg.BurnIn)%cfg.MeasureEvery != 0 {
				continue
			}
			m, err := defect.NewMeasurer(c.Snapshot(), cfg.D)
			if err != nil {
				return E2Result{}, err
			}
			dres, err := m.Exact()
			if err != nil {
				return E2Result{}, err
			}
			bSum += dres.NormalizedDefect()
			defSum += dres.FractionDefective()
			count++
		}
		row := E2Row{P: p, PD: p * float64(cfg.D), Measurements: count}
		if count > 0 {
			row.MeanB = bSum / float64(count)
			row.FracDefective = defSum / float64(count)
		}
		if row.PD > 0 {
			row.Ratio = row.MeanB / row.PD
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
