package sim

import (
	"math"
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E3Config parameterises experiment E3 (Theorem 5: the expected number of
// steps before the defect process collapses is at least (1/ξ1)·e^{ξ2·k/d³}).
// The runner stresses the system with a large p (so collapses happen in
// observable time), sweeps k at fixed d, and records the median number of
// arrivals until the sampled normalized defect b crosses the collapse
// threshold. Theorem 5 predicts log(steps) to grow linearly in k/d³.
type E3Config struct {
	D  int
	Ks []int
	// P is the stress failure probability; it must be large enough that
	// collapse is reachable in MaxSteps but small enough that the drift
	// argument still applies (pd below ~0.5).
	P float64
	// Threshold is the b level counted as collapse (between the drift
	// roots a1 and a2; 0.5 approximates the unstable midpoint).
	Threshold float64
	// Trials is the number of independent runs per k.
	Trials int
	// MaxSteps truncates runs that refuse to collapse (recorded at cap).
	MaxSteps int
	// CheckEvery spaces the (sampled) defect measurements.
	CheckEvery int
	// Samples is the number of Monte-Carlo tuples per measurement.
	Samples int
	// MaxNodes caps the working population via Lemma 1 graceful leaves.
	MaxNodes int
	// RepairDelay removes failed rows that many arrivals after they
	// joined, making the process stationary: the standing failed set is
	// roughly the last p·RepairDelay arrivals, matching the paper's "p is
	// the probability that a node fails within the repair interval".
	RepairDelay int
	Seed        int64
}

// DefaultE3Config returns the standard Theorem 5 sweep.
func DefaultE3Config() E3Config {
	return E3Config{
		D:           2,
		Ks:          []int{4, 6, 8, 10, 12},
		P:           0.22,
		Threshold:   0.5,
		Trials:      12,
		MaxSteps:    30000,
		CheckEvery:  10,
		Samples:     80,
		MaxNodes:    250,
		RepairDelay: 250,
		Seed:        3,
	}
}

// E3Row is one k's collapse-time distribution.
type E3Row struct {
	K          int
	KOverD3    float64
	MedianStep float64
	MeanStep   float64
	Capped     int // trials that hit MaxSteps without collapsing
	Trials     int
}

// E3Result holds the sweep plus the log-linear fit.
type E3Result struct {
	D    int
	P    float64
	Rows []E3Row
	// Slope is the fitted slope of ln(median steps) against k/d³; Theorem
	// 5 predicts it positive (exponential growth).
	Slope float64
	FitOK bool
}

// Table renders the result.
func (r E3Result) Table() *metrics.Table {
	t := metrics.NewTable("E3: Theorem 5 — steps to collapse vs k (d fixed)",
		"k", "k/d^3", "median steps", "mean steps", "capped", "trials")
	for _, row := range r.Rows {
		t.AddRow(row.K, row.KOverD3, row.MedianStep, row.MeanStep, row.Capped, row.Trials)
	}
	t.AddRow("fit", "", "", "", "", "")
	t.AddRow("slope d ln(steps)/d(k/d^3)", r.Slope, "", "", "", "")
	return t
}

// RunE3 executes experiment E3.
func RunE3(cfg E3Config) (E3Result, error) {
	res := E3Result{D: cfg.D, P: cfg.P}
	var xs, ys []float64
	for ki, k := range cfg.Ks {
		var steps metrics.Summary
		capped := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ki)*10000 + int64(trial)))
			s, hitCap, err := runCollapseTrial(k, cfg, rng)
			if err != nil {
				return E3Result{}, err
			}
			if hitCap {
				capped++
			}
			steps.Add(float64(s))
		}
		row := E3Row{
			K:          k,
			KOverD3:    float64(k) / math.Pow(float64(cfg.D), 3),
			MedianStep: steps.Median(),
			MeanStep:   steps.Mean(),
			Capped:     capped,
			Trials:     cfg.Trials,
		}
		res.Rows = append(res.Rows, row)
		if row.MedianStep > 0 {
			xs = append(xs, row.KOverD3)
			ys = append(ys, math.Log(row.MedianStep))
		}
	}
	res.Slope, _, res.FitOK = metrics.LinearFit(xs, ys)
	return res, nil
}

// runCollapseTrial runs one arrival process until collapse or the step
// cap, returning the stopping step.
func runCollapseTrial(k int, cfg E3Config, rng *rand.Rand) (step int, hitCap bool, err error) {
	c, err := core.New(k, cfg.D, rng)
	if err != nil {
		return 0, false, err
	}
	churn, err := NewChurn(c, ChurnConfig{P: cfg.P, MaxNodes: cfg.MaxNodes, RepairDelay: cfg.RepairDelay}, rng)
	if err != nil {
		return 0, false, err
	}
	for step = 1; step <= cfg.MaxSteps; step++ {
		churn.Advance()
		if step%cfg.CheckEvery != 0 {
			continue
		}
		m, err := defect.NewMeasurer(c.Snapshot(), cfg.D)
		if err != nil {
			return 0, false, err
		}
		var b float64
		total := defect.Binomial(k, cfg.D)
		if float64(cfg.Samples) >= total {
			r, err := m.Exact()
			if err != nil {
				return 0, false, err
			}
			b = r.NormalizedDefect()
		} else {
			r, err := m.Sample(cfg.Samples, rng)
			if err != nil {
				return 0, false, err
			}
			b = r.NormalizedDefect()
		}
		if b >= cfg.Threshold*float64(cfg.D) {
			return step, false, nil
		}
	}
	return cfg.MaxSteps, true, nil
}
