package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/gossip"
	"ncast/internal/metrics"
)

// E15Config parameterises experiment E15 (§3/§7: "it is possible also to
// have a distributed protocol... which uses a gossip mechanism for a newly
// arriving node to find its parents" — "the specifics of the protocol are
// less important than the topological structure of the resulting overlay
// network"). The runner grows three overlays to the same size — the
// central curtain, the central §6 random graph, and the tracker-free
// gossip overlay — applies the same iid failure rate, runs the gossip
// overlay's purely local repair, and compares health.
type E15Config struct {
	K, D   int
	N      int
	P      float64
	Trials int
	// ShuffleEvery controls gossip view refresh frequency (in joins).
	ShuffleEvery int
	Seed         int64
}

// DefaultE15Config returns the standard decentralisation comparison.
func DefaultE15Config() E15Config {
	return E15Config{K: 16, D: 2, N: 500, P: 0.03, Trials: 6, ShuffleEvery: 10, Seed: 15}
}

// E15Row is one overlay design's health.
type E15Row struct {
	Design string
	// FracConnected is the fraction of working nodes with connectivity
	// >= 1 after failures (gossip: after local repair).
	FracConnected float64
	// FracFullRate is the fraction with connectivity >= d.
	FracFullRate float64
	// MaxDepth is the mean max hop depth (delay).
	MaxDepth float64
}

// E15Result holds the comparison.
type E15Result struct {
	K, D int
	P    float64
	Rows []E15Row
}

// Row returns the named design's row, or nil.
func (r E15Result) Row(design string) *E15Row {
	for i := range r.Rows {
		if r.Rows[i].Design == design {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the result.
func (r E15Result) Table() *metrics.Table {
	t := metrics.NewTable("E15: central curtain vs §6 random graph vs tracker-free gossip",
		"design", "frac connected", "frac full rate", "mean max depth")
	for _, row := range r.Rows {
		t.AddRow(row.Design, row.FracConnected, row.FracFullRate, row.MaxDepth)
	}
	return t
}

// RunE15 executes experiment E15.
func RunE15(cfg E15Config) (E15Result, error) {
	res := E15Result{K: cfg.K, D: cfg.D, P: cfg.P}
	accs := map[string]*healthAcc{"curtain": {}, "randgraph": {}, "gossip": {}}

	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)

		// Central curtain with tracker repair (failures repaired away).
		{
			rng := rand.New(rand.NewSource(seed))
			c, err := BuildCurtain(cfg.K, cfg.D, cfg.N, rng)
			if err != nil {
				return E15Result{}, err
			}
			failed := FailIID(c, cfg.P, rng)
			for _, id := range failed {
				if err := c.Repair(id); err != nil {
					return E15Result{}, err
				}
			}
			tally(accs["curtain"], c.Snapshot(), cfg.D)
		}

		// Central §6 random graph with tracker repair.
		{
			rng := rand.New(rand.NewSource(seed + 1000))
			g, err := core.NewRandGraph(cfg.K, cfg.D, rng)
			if err != nil {
				return E15Result{}, err
			}
			var ids []core.NodeID
			for i := 0; i < cfg.N; i++ {
				ids = append(ids, g.Join())
			}
			for _, id := range ids {
				if !g.IsFailed(id) && rng.Float64() < cfg.P {
					if err := g.Fail(id); err != nil {
						return E15Result{}, err
					}
					if err := g.Repair(id); err != nil {
						return E15Result{}, err
					}
				}
			}
			tally(accs["randgraph"], g.Snapshot(), cfg.D)
		}

		// Tracker-free gossip overlay with local repair.
		{
			rng := rand.New(rand.NewSource(seed + 2000))
			g, err := gossip.New(gossip.DefaultConfig(cfg.K, cfg.D), rng)
			if err != nil {
				return E15Result{}, err
			}
			var ids []core.NodeID
			for i := 0; i < cfg.N; i++ {
				ids = append(ids, g.Join())
				if cfg.ShuffleEvery > 0 && i%cfg.ShuffleEvery == 0 {
					g.Shuffle()
				}
			}
			for _, id := range ids {
				if !g.IsFailed(id) && rng.Float64() < cfg.P {
					if err := g.Fail(id); err != nil {
						return E15Result{}, err
					}
				}
			}
			g.Shuffle()
			g.RepairAll()
			tally(accs["gossip"], g.Snapshot(), cfg.D)
		}
	}

	for _, design := range []string{"curtain", "randgraph", "gossip"} {
		a := accs[design]
		row := E15Row{Design: design}
		if a.trials > 0 {
			row.FracConnected = a.conn / a.trials
			row.FracFullRate = a.full / a.trials
			row.MaxDepth = a.depth / a.trials
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// healthAcc accumulates overlay-health observations across trials.
type healthAcc struct{ conn, full, depth, trials float64 }

// tally accumulates one snapshot's health into an accumulator.
func tally(a *healthAcc, top *core.Topology, d int) {
	conns := defect.NodeConnectivity(top, d)
	working, connected, full := 0, 0, 0
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if !top.Working[gi] {
			continue
		}
		working++
		if conns[gi] >= 1 {
			connected++
		}
		if conns[gi] >= d {
			full++
		}
	}
	if working > 0 {
		a.conn += float64(connected) / float64(working)
		a.full += float64(full) / float64(working)
	}
	maxDepth, _ := depthStats(top)
	a.depth += maxDepth
	a.trials++
}
