package sim

import (
	"math"
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/metrics"
)

// E9Config parameterises experiment E9 (§6: delay vs cycles). The acyclic
// curtain keeps full network-coding throughput but its depth — the
// worst-case hop count from the server, i.e. the playback delay — grows
// linearly in N. The §6 random-graph insertion tolerates cycles and gets
// logarithmic depth. The runner sweeps N for both topologies and fits the
// growth laws.
type E9Config struct {
	K, D   int
	Sizes  []int
	Trials int
	Seed   int64
}

// DefaultE9Config returns the standard delay sweep.
func DefaultE9Config() E9Config {
	return E9Config{
		K:      16,
		D:      2,
		Sizes:  []int{100, 200, 400, 800, 1600},
		Trials: 3,
		Seed:   9,
	}
}

// E9Row is one size's depths.
type E9Row struct {
	N int
	// CurtainMax/CurtainMean are hop depths of the acyclic curtain.
	CurtainMax  float64
	CurtainMean float64
	// RandMax/RandMean are hop depths of the §6 random-graph topology.
	RandMax  float64
	RandMean float64
}

// E9Result holds the sweep plus growth fits.
type E9Result struct {
	K, D int
	Rows []E9Row
	// CurtainSlopePerN is the fitted slope of curtain max depth vs N
	// (expected positive: linear growth).
	CurtainSlopePerN float64
	// RandSlopePerLogN is the fitted slope of random-graph max depth vs
	// log2 N (expected small constant: logarithmic growth).
	RandSlopePerLogN float64
	// RandSlopePerN is the random graph's slope vs N (expected near 0).
	RandSlopePerN float64
}

// Table renders the result.
func (r E9Result) Table() *metrics.Table {
	t := metrics.NewTable("E9: delay (hop depth) — acyclic curtain vs §6 random graph",
		"N", "curtain max", "curtain mean", "randgraph max", "randgraph mean")
	for _, row := range r.Rows {
		t.AddRow(row.N, row.CurtainMax, row.CurtainMean, row.RandMax, row.RandMean)
	}
	t.AddRow("fits:", "", "", "", "")
	t.AddRow("curtain d(max)/dN", r.CurtainSlopePerN, "", "", "")
	t.AddRow("randgraph d(max)/dlog2N", r.RandSlopePerLogN, "", "", "")
	t.AddRow("randgraph d(max)/dN", r.RandSlopePerN, "", "", "")
	return t
}

// RunE9 executes experiment E9.
func RunE9(cfg E9Config) (E9Result, error) {
	res := E9Result{K: cfg.K, D: cfg.D}
	for ni, n := range cfg.Sizes {
		row := E9Row{N: n}
		var cMax, cMean, rMax, rMean metrics.Summary
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ni)*100 + int64(trial)))
			c, err := BuildCurtain(cfg.K, cfg.D, n, rng)
			if err != nil {
				return E9Result{}, err
			}
			maxD, meanD := depthStats(c.Snapshot())
			cMax.Add(maxD)
			cMean.Add(meanD)

			rg, err := core.NewRandGraph(cfg.K, cfg.D, rng)
			if err != nil {
				return E9Result{}, err
			}
			for i := 0; i < n; i++ {
				rg.Join()
			}
			maxD, meanD = depthStats(rg.Snapshot())
			rMax.Add(maxD)
			rMean.Add(meanD)
		}
		row.CurtainMax = cMax.Mean()
		row.CurtainMean = cMean.Mean()
		row.RandMax = rMax.Mean()
		row.RandMean = rMean.Mean()
		res.Rows = append(res.Rows, row)
	}

	var ns, logNs, curtainMaxes, randMaxes []float64
	for _, row := range res.Rows {
		ns = append(ns, float64(row.N))
		logNs = append(logNs, math.Log2(float64(row.N)))
		curtainMaxes = append(curtainMaxes, row.CurtainMax)
		randMaxes = append(randMaxes, row.RandMax)
	}
	res.CurtainSlopePerN, _, _ = metrics.LinearFit(ns, curtainMaxes)
	res.RandSlopePerLogN, _, _ = metrics.LinearFit(logNs, randMaxes)
	res.RandSlopePerN, _, _ = metrics.LinearFit(ns, randMaxes)
	return res, nil
}

// depthStats returns the max and mean BFS depth over reachable non-server
// nodes of a snapshot.
func depthStats(top *core.Topology) (maxDepth, meanDepth float64) {
	depths := top.Graph.Depths(0)
	var sum float64
	var count int
	for gi := 1; gi < len(depths); gi++ {
		d := depths[gi]
		if d < 0 {
			continue
		}
		if float64(d) > maxDepth {
			maxDepth = float64(d)
		}
		sum += float64(d)
		count++
	}
	if count > 0 {
		meanDepth = sum / float64(count)
	}
	return maxDepth, meanDepth
}
