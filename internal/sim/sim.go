// Package sim contains the experiment harness: the churn simulator that
// drives a curtain through the paper's §4 stochastic process, failure
// injectors, and one runner per experiment E1–E13 (see DESIGN.md for the
// claim-to-experiment index). Each runner takes a config with sensible
// defaults, is fully deterministic given its seed, and renders its results
// as a metrics.Table — the "table or figure" the paper itself never
// printed but whose shape its theorems predict.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/graph"
)

// ChurnConfig describes the §4 arrival process: at every step one node
// joins, pre-tagged failed with probability P (the paper's conceptual coin
// toss before joining). Failed rows are repaired (removed) RepairDelay
// steps after arrival when RepairDelay > 0; with RepairDelay == 0 failures
// persist, which is the pure process Theorems 4 and 5 analyze. When
// MaxNodes > 0, a uniformly random working node leaves gracefully whenever
// the population exceeds the cap — justified by Lemma 1, which makes
// graceful leaves distribution-neutral.
type ChurnConfig struct {
	P           float64
	RepairDelay int
	MaxNodes    int
}

// Churn drives a curtain through the arrival process.
type Churn struct {
	cfg     ChurnConfig
	curtain *core.Curtain
	rng     *rand.Rand
	step    int
	// pendingRepairs maps repair-due step -> failed node ids.
	pendingRepairs map[int][]core.NodeID
	working        []core.NodeID
}

// NewChurn wraps a curtain with the arrival process. The curtain should be
// freshly built; rng drives the failure coin and cap evictions.
func NewChurn(c *core.Curtain, cfg ChurnConfig, rng *rand.Rand) (*Churn, error) {
	if cfg.P < 0 || cfg.P > 1 {
		return nil, fmt.Errorf("sim: failure probability %v out of [0,1]", cfg.P)
	}
	if cfg.RepairDelay < 0 {
		return nil, fmt.Errorf("sim: negative repair delay %d", cfg.RepairDelay)
	}
	if cfg.MaxNodes < 0 {
		return nil, fmt.Errorf("sim: negative population cap %d", cfg.MaxNodes)
	}
	return &Churn{
		cfg:            cfg,
		curtain:        c,
		rng:            rng,
		pendingRepairs: make(map[int][]core.NodeID),
	}, nil
}

// Curtain returns the underlying overlay.
func (ch *Churn) Curtain() *core.Curtain { return ch.curtain }

// Step returns the number of arrivals processed.
func (ch *Churn) Step() int { return ch.step }

// Advance processes one arrival (one §4 time step) and any due repairs and
// cap evictions. It returns the id of the arrived node.
func (ch *Churn) Advance() core.NodeID {
	ch.step++
	failed := ch.rng.Float64() < ch.cfg.P
	id := ch.curtain.JoinTagged(failed)
	if failed && ch.cfg.RepairDelay > 0 {
		due := ch.step + ch.cfg.RepairDelay
		ch.pendingRepairs[due] = append(ch.pendingRepairs[due], id)
	}
	if !failed {
		ch.working = append(ch.working, id)
	}
	for _, rid := range ch.pendingRepairs[ch.step] {
		if ch.curtain.Contains(rid) && ch.curtain.IsFailed(rid) {
			if err := ch.curtain.Repair(rid); err != nil {
				panic(fmt.Sprintf("sim: repair of %d: %v", rid, err))
			}
		}
	}
	delete(ch.pendingRepairs, ch.step)
	for ch.cfg.MaxNodes > 0 && ch.curtain.NumNodes() > ch.cfg.MaxNodes && len(ch.working) > 0 {
		i := ch.rng.Intn(len(ch.working))
		id := ch.working[i]
		ch.working[i] = ch.working[len(ch.working)-1]
		ch.working = ch.working[:len(ch.working)-1]
		if !ch.curtain.Contains(id) || ch.curtain.IsFailed(id) {
			continue // stale entry (node failed after arrival); skip
		}
		if err := ch.curtain.Leave(id); err != nil {
			panic(fmt.Sprintf("sim: cap eviction of %d: %v", id, err))
		}
	}
	return id
}

// BuildCurtain joins n working nodes onto a fresh curtain.
func BuildCurtain(k, d, n int, rng *rand.Rand, opts ...core.Option) (*core.Curtain, error) {
	c, err := core.New(k, d, rng, opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		c.Join()
	}
	return c, nil
}

// FailIID tags each working node failed independently with probability p
// and returns the failed ids. This is the paper's iid failure model
// applied post-hoc to a built network ("p is the probability that a node
// fails non-ergodically within the repair interval").
func FailIID(c *core.Curtain, p float64, rng *rand.Rand) []core.NodeID {
	var failed []core.NodeID
	for _, id := range c.Nodes() {
		if !c.IsFailed(id) && rng.Float64() < p {
			if err := c.Fail(id); err != nil {
				panic(fmt.Sprintf("sim: fail %d: %v", id, err))
			}
			failed = append(failed, id)
		}
	}
	return failed
}

// FailSet tags the given nodes failed (adversarial batch failure, §5).
// Unknown or already-failed ids are skipped.
func FailSet(c *core.Curtain, ids []core.NodeID) {
	for _, id := range ids {
		if c.Contains(id) && !c.IsFailed(id) {
			if err := c.Fail(id); err != nil {
				panic(fmt.Sprintf("sim: fail %d: %v", id, err))
			}
		}
	}
}

// ConnectivityStats summarises per-node connectivity of working nodes.
type ConnectivityStats struct {
	// Working is the number of working nodes measured.
	Working int
	// FullCount is the number of working nodes with connectivity >= their
	// degree d.
	FullCount int
	// MeanLossFrac is the mean of (d - conn)/d over working nodes.
	MeanLossFrac float64
	// VarLossFrac is the sample variance of the loss fraction.
	VarLossFrac float64
	// MinConn is the minimum connectivity observed among working nodes.
	MinConn int
}

// connAccum folds per-node (in-degree, connectivity) observations into
// ConnectivityStats, capping each connectivity at the node's own d.
type connAccum struct {
	stats      ConnectivityStats
	sum, sumSq float64
}

func (a *connAccum) add(d, c int) {
	if c > d {
		c = d
	}
	a.stats.Working++
	if c >= d {
		a.stats.FullCount++
	}
	if a.stats.MinConn < 0 || c < a.stats.MinConn {
		a.stats.MinConn = c
	}
	loss := float64(d-c) / float64(d)
	a.sum += loss
	a.sumSq += loss * loss
}

func (a *connAccum) finish() ConnectivityStats {
	stats := a.stats
	if stats.Working > 0 {
		stats.MeanLossFrac = a.sum / float64(stats.Working)
		if stats.Working > 1 {
			m := stats.MeanLossFrac
			stats.VarLossFrac = (a.sumSq - float64(stats.Working)*m*m) / float64(stats.Working-1)
		}
	}
	if stats.MinConn < 0 {
		stats.MinConn = 0
	}
	return stats
}

// MeasureConnectivity computes connectivity statistics for every working
// node of the snapshot, each capped at its in-degree (its personal d).
func MeasureConnectivity(top *core.Topology) ConnectivityStats {
	conns := defect.NodeConnectivity(top, -1)
	acc := connAccum{stats: ConnectivityStats{MinConn: -1}}
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if !top.Working[gi] {
			continue
		}
		d := top.Graph.InDegree(gi)
		if d == 0 {
			continue
		}
		acc.add(d, conns[gi])
	}
	return acc.finish()
}

// MeasureConnectivitySample computes the same statistics over a uniform
// seeded sample of at most maxNodes working nodes. Exact measurement is
// one max-flow per node — fine at simulation sizes, intractable over a
// 100k-row live fleet — so the swarm drills sample. A non-positive
// maxNodes, or a population that fits within it, falls back to the
// exact sweep; each sampled node's flow search is capped at its own
// in-degree, which leaves every reported statistic unchanged (the exact
// path caps connectivity at d after the fact).
func MeasureConnectivitySample(top *core.Topology, maxNodes int, seed int64) ConnectivityStats {
	var nodes []int
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if top.Working[gi] && top.Graph.InDegree(gi) > 0 {
			nodes = append(nodes, gi)
		}
	}
	if maxNodes <= 0 || len(nodes) <= maxNodes {
		return MeasureConnectivity(top)
	}
	rng := rand.New(rand.NewSource(seed))
	fs := graph.NewFlowSolver(top.Effective())
	acc := connAccum{stats: ConnectivityStats{MinConn: -1}}
	for _, j := range rng.Perm(len(nodes))[:maxNodes] {
		gi := nodes[j]
		d := top.Graph.InDegree(gi)
		acc.add(d, fs.MaxFlow(0, gi, d))
	}
	return acc.finish()
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic between
// samples a and b: the max distance between their empirical CDFs.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Consume ALL values tied at the current point from both samples
		// before comparing CDFs; advancing one sample at a time across a
		// tie fabricates distance where the distributions agree.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		diff := float64(i)/float64(len(as)) - float64(j)/float64(len(bs))
		if diff < 0 {
			diff = -diff
		}
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSThreshold returns the critical value at significance alpha≈0.01 for a
// two-sample KS test with sample sizes n and m: c(α)·sqrt((n+m)/(n·m)),
// c(0.01) = 1.628.
func KSThreshold(n, m int) float64 {
	if n == 0 || m == 0 {
		return 1
	}
	return 1.628 * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}
